// Package repro is the root of a from-scratch Go reproduction of
// "Circuit Compilation Methodologies for Quantum Approximate Optimization
// Algorithm" (Alam, Ash-Saki, Ghosh; MICRO 2020).
//
// The public API lives in package repro/qaoac; the per-figure benchmark
// harness lives in bench_test.go alongside this file. See README.md for a
// tour and DESIGN.md for the system inventory.
package repro
