package optimize

import (
	"math"
	"testing"

	"repro/internal/graphs"
	"repro/internal/qaoa"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Errorf("minimum at %v, want (3,-1)", res.X)
	}
	if res.F > 1e-5 {
		t.Errorf("minimum value %v", res.F)
	}
	if res.Evals == 0 || res.Iters == 0 {
		t.Error("no work recorded")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxIter: 5000, TolF: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", res.X)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Cos(x[0]) }
	res, err := NelderMead(f, []float64{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-math.Pi) > 1e-3 {
		t.Errorf("cos minimum at %v, want π", res.X[0])
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Error("empty start accepted")
	}
}

func TestGridSearch(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0]-0.5) + math.Abs(x[1]+0.25) }
	res, err := GridSearch(f, []float64{-1, -1}, []float64{1, 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-9 || math.Abs(res.X[1]+0.25) > 1e-9 {
		t.Errorf("grid best at %v", res.X)
	}
	if res.Evals != 81 {
		t.Errorf("evals = %d, want 81", res.Evals)
	}
}

func TestGridSearchErrors(t *testing.T) {
	f := func([]float64) float64 { return 0 }
	if _, err := GridSearch(f, nil, nil, 5); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := GridSearch(f, []float64{0}, []float64{1, 2}, 5); err == nil {
		t.Error("mismatched bounds accepted")
	}
	if _, err := GridSearch(f, []float64{0}, []float64{1}, 1); err == nil {
		t.Error("single-step grid accepted")
	}
}

// MaximizeP1 must recover the known single-edge optimum ⟨C⟩ = 1.
func TestMaximizeP1SingleEdge(t *testing.T) {
	g := graphs.New(2)
	g.MustAddEdge(0, 1)
	obj := func(gamma, beta float64) float64 {
		return qaoa.ExpectationP1Analytic(g, gamma, beta)
	}
	_, _, val, err := MaximizeP1(obj, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(val-1) > 1e-6 {
		t.Errorf("single-edge max = %v, want 1", val)
	}
}

// On a triangle, the p=1 optimum is known to reach ratio ≥ 0.69 of the
// MaxCut optimum (the triangle achieves ⟨C⟩ well above the m/2 = 1.5
// uniform baseline).
func TestMaximizeP1Triangle(t *testing.T) {
	g := graphs.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	obj := func(gamma, beta float64) float64 {
		return qaoa.ExpectationP1Analytic(g, gamma, beta)
	}
	gamma, beta, val, err := MaximizeP1(obj, 24)
	if err != nil {
		t.Fatal(err)
	}
	if val <= 1.5 {
		t.Errorf("triangle max ⟨C⟩ = %v not above uniform 1.5", val)
	}
	// Returned angles must reproduce the returned value.
	if re := obj(gamma, beta); math.Abs(re-val) > 1e-9 {
		t.Errorf("angle/value mismatch: %v vs %v", re, val)
	}
}
