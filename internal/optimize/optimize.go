// Package optimize provides the derivative-free classical optimizers used
// in the QAOA quantum-classical loop: Nelder–Mead simplex descent and a
// coarse grid search used to seed it. The paper used SciPy's L-BFGS-B;
// these serve the identical role (finding optimal γ, β) without gradients,
// which suits simulator- or hardware-sampled objectives.
package optimize

import (
	"fmt"
	"math"
	"sort"
)

// Options tunes NelderMead. The zero value picks sensible defaults.
type Options struct {
	// MaxIter bounds the number of simplex iterations (default 400).
	MaxIter int
	// TolF stops when the simplex function-value spread drops below it
	// (default 1e-6, matching the paper's convergence limit).
	TolF float64
	// InitStep is the initial simplex edge length (default 0.25).
	InitStep float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 400
	}
	if o.TolF <= 0 {
		o.TolF = 1e-6
	}
	if o.InitStep <= 0 {
		o.InitStep = 0.25
	}
	return o
}

// Result reports an optimization outcome.
type Result struct {
	X     []float64 // best point found
	F     float64   // objective value at X
	Iters int       // iterations used
	Evals int       // objective evaluations
}

// NelderMead minimizes f starting from x0 using the standard simplex method
// (reflection 1, expansion 2, contraction 0.5, shrink 0.5).
func NelderMead(f func([]float64) float64, x0 []float64, opts Options) (Result, error) {
	n := len(x0)
	if n == 0 {
		return Result{}, fmt.Errorf("optimize: empty start point")
	}
	o := opts.withDefaults()
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	// Initial simplex: x0 plus a step along each axis.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += o.InitStep
		}
		pts[i] = p
		vals[i] = eval(p)
	}

	order := make([]int, n+1)
	iters := 0
	for ; iters < o.MaxIter; iters++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		best, worst, second := order[0], order[n], order[n-1]
		if math.Abs(vals[worst]-vals[best]) < o.TolF {
			break
		}

		// Centroid of all but the worst point.
		centroid := make([]float64, n)
		for _, i := range order[:n] {
			for d := 0; d < n; d++ {
				centroid[d] += pts[i][d]
			}
		}
		for d := range centroid {
			centroid[d] /= float64(n)
		}

		combine := func(alpha float64) []float64 {
			p := make([]float64, n)
			for d := 0; d < n; d++ {
				p[d] = centroid[d] + alpha*(centroid[d]-pts[worst][d])
			}
			return p
		}

		refl := combine(1)
		fr := eval(refl)
		switch {
		case fr < vals[best]:
			// Try to expand.
			exp := combine(2)
			if fe := eval(exp); fe < fr {
				pts[worst], vals[worst] = exp, fe
			} else {
				pts[worst], vals[worst] = refl, fr
			}
		case fr < vals[second]:
			pts[worst], vals[worst] = refl, fr
		default:
			// Contract toward the centroid.
			con := combine(-0.5)
			if fc := eval(con); fc < vals[worst] {
				pts[worst], vals[worst] = con, fc
			} else {
				// Shrink everything toward the best point.
				for _, i := range order[1:] {
					for d := 0; d < n; d++ {
						pts[i][d] = pts[best][d] + 0.5*(pts[i][d]-pts[best][d])
					}
					vals[i] = eval(pts[i])
				}
			}
		}
	}

	bi := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[bi] {
			bi = i
		}
	}
	return Result{X: append([]float64(nil), pts[bi]...), F: vals[bi], Iters: iters, Evals: evals}, nil
}

// GridSearch minimizes f over the axis-aligned box [lo,hi] with the given
// number of samples per dimension and returns the best grid point. Used to
// seed NelderMead over the periodic QAOA angle landscape, which has many
// local optima.
func GridSearch(f func([]float64) float64, lo, hi []float64, steps int) (Result, error) {
	n := len(lo)
	if n == 0 || len(hi) != n {
		return Result{}, fmt.Errorf("optimize: bounds length mismatch (%d vs %d)", len(lo), len(hi))
	}
	if steps < 2 {
		return Result{}, fmt.Errorf("optimize: need at least 2 steps per dimension, got %d", steps)
	}
	idx := make([]int, n)
	x := make([]float64, n)
	best := Result{F: math.Inf(1)}
	evals := 0
	for {
		for d := 0; d < n; d++ {
			x[d] = lo[d] + (hi[d]-lo[d])*float64(idx[d])/float64(steps-1)
		}
		v := f(x)
		evals++
		if v < best.F {
			best.F = v
			best.X = append(best.X[:0], x...)
		}
		// Odometer increment.
		d := 0
		for ; d < n; d++ {
			idx[d]++
			if idx[d] < steps {
				break
			}
			idx[d] = 0
		}
		if d == n {
			break
		}
	}
	best.X = append([]float64(nil), best.X...)
	best.Evals = evals
	return best, nil
}

// MaximizeP1 finds (γ, β) maximizing the given p=1 objective by a grid scan
// over γ ∈ [−π, π], β ∈ [−π/2, π/2] refined with Nelder–Mead. It returns
// the best angles and the (maximized) objective value.
func MaximizeP1(objective func(gamma, beta float64) float64, gridSteps int) (gamma, beta, value float64, err error) {
	neg := func(x []float64) float64 { return -objective(x[0], x[1]) }
	seed, err := GridSearch(neg, []float64{-math.Pi, -math.Pi / 2}, []float64{math.Pi, math.Pi / 2}, gridSteps)
	if err != nil {
		return 0, 0, 0, err
	}
	res, err := NelderMead(neg, seed.X, Options{MaxIter: 300, TolF: 1e-9, InitStep: 0.05})
	if err != nil {
		return 0, 0, 0, err
	}
	if res.F > seed.F {
		res = seed
	}
	return res.X[0], res.X[1], -res.F, nil
}
