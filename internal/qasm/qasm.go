// Package qasm serializes circuits to OpenQASM 2.0 and parses the subset of
// OpenQASM 2.0 this library emits, so compiled circuits can be exchanged
// with other toolchains (qiskit, tket) and reloaded for simulation.
//
// The exporter emits the qelib1 gate names (h, x, y, z, rx, ry, rz, u1, u2,
// u3, cx, cz, swap, rzz, barrier, measure); the CPhase cost gate maps to
// rzz. The importer accepts one statement per line, `pi`-expressions in
// parameters (e.g. -pi/4, 2*pi, 0.5*pi), and line (`//`) comments.
package qasm

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// Export renders c as an OpenQASM 2.0 program. Every qubit gets a matching
// classical bit; measure statements target the same index.
func Export(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NQubits)
	fmt.Fprintf(&b, "creg c[%d];\n", c.NQubits)
	for _, g := range c.Gates {
		b.WriteString(gateQASM(g))
		b.WriteByte('\n')
	}
	return b.String()
}

func gateQASM(g circuit.Gate) string {
	switch g.Kind {
	case circuit.H, circuit.X, circuit.Y, circuit.Z:
		return fmt.Sprintf("%s q[%d];", g.Kind, g.Q0)
	case circuit.RX, circuit.RY, circuit.RZ, circuit.U1:
		return fmt.Sprintf("%s(%.12g) q[%d];", g.Kind, g.Params[0], g.Q0)
	case circuit.U2:
		return fmt.Sprintf("u2(%.12g,%.12g) q[%d];", g.Params[0], g.Params[1], g.Q0)
	case circuit.U3:
		return fmt.Sprintf("u3(%.12g,%.12g,%.12g) q[%d];", g.Params[0], g.Params[1], g.Params[2], g.Q0)
	case circuit.CNOT:
		return fmt.Sprintf("cx q[%d],q[%d];", g.Q0, g.Q1)
	case circuit.CZ:
		return fmt.Sprintf("cz q[%d],q[%d];", g.Q0, g.Q1)
	case circuit.CPhase:
		return fmt.Sprintf("rzz(%.12g) q[%d],q[%d];", g.Params[0], g.Q0, g.Q1)
	case circuit.Swap:
		return fmt.Sprintf("swap q[%d],q[%d];", g.Q0, g.Q1)
	case circuit.Measure:
		return fmt.Sprintf("measure q[%d] -> c[%d];", g.Q0, g.Q0)
	case circuit.Barrier:
		return "barrier q;"
	default:
		panic("qasm: cannot export " + g.Kind.String())
	}
}

// Import parses an OpenQASM 2.0 program in the subset Export produces.
func Import(src string) (*circuit.Circuit, error) {
	var c *circuit.Circuit
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		stmts := strings.Split(line, ";")
		for _, stmt := range stmts {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			var err error
			c, err = parseStatement(c, stmt)
			if err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo+1, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func parseStatement(c *circuit.Circuit, stmt string) (*circuit.Circuit, error) {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"):
		return c, nil
	case strings.HasPrefix(stmt, "qreg"):
		var n int
		if _, err := fmt.Sscanf(stmt, "qreg q[%d]", &n); err != nil {
			return nil, fmt.Errorf("bad qreg %q", stmt)
		}
		if c != nil {
			return nil, fmt.Errorf("duplicate qreg")
		}
		return circuit.New(n), nil
	}
	if c == nil {
		return nil, fmt.Errorf("gate before qreg: %q", stmt)
	}
	g, err := parseGate(stmt)
	if err != nil {
		return nil, err
	}
	if g.Kind == circuit.Invalid { // "barrier q" — whole-register barrier
		c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.Barrier})
		return c, nil
	}
	if err := g.Validate(c.NQubits); err != nil {
		return nil, err
	}
	c.Gates = append(c.Gates, g)
	return c, nil
}

var nameToKind = map[string]circuit.Kind{
	"h": circuit.H, "x": circuit.X, "y": circuit.Y, "z": circuit.Z,
	"rx": circuit.RX, "ry": circuit.RY, "rz": circuit.RZ,
	"u1": circuit.U1, "u2": circuit.U2, "u3": circuit.U3,
	"cx": circuit.CNOT, "cz": circuit.CZ, "rzz": circuit.CPhase,
	"swap": circuit.Swap,
}

func parseGate(stmt string) (circuit.Gate, error) {
	if strings.HasPrefix(stmt, "barrier") {
		return circuit.Gate{Kind: circuit.Invalid}, nil
	}
	if strings.HasPrefix(stmt, "measure") {
		var q, cbit int
		if _, err := fmt.Sscanf(stmt, "measure q[%d] -> c[%d]", &q, &cbit); err != nil {
			return circuit.Gate{}, fmt.Errorf("bad measure %q", stmt)
		}
		return circuit.NewMeasure(q), nil
	}

	// Split "name(params) operands".
	head := stmt
	var paramsStr string
	if open := strings.IndexByte(stmt, '('); open >= 0 {
		closeIdx := strings.IndexByte(stmt, ')')
		if closeIdx < open {
			return circuit.Gate{}, fmt.Errorf("unbalanced parens in %q", stmt)
		}
		paramsStr = stmt[open+1 : closeIdx]
		head = stmt[:open] + stmt[closeIdx+1:]
	}
	fields := strings.Fields(head)
	if len(fields) != 2 {
		return circuit.Gate{}, fmt.Errorf("malformed gate %q", stmt)
	}
	kind, ok := nameToKind[fields[0]]
	if !ok {
		return circuit.Gate{}, fmt.Errorf("unsupported gate %q", fields[0])
	}

	// Parameters.
	var params [3]float64
	nWant := kind.NumParams()
	if nWant > 0 {
		parts := strings.Split(paramsStr, ",")
		if len(parts) != nWant {
			return circuit.Gate{}, fmt.Errorf("%s expects %d params, got %d", fields[0], nWant, len(parts))
		}
		for i, p := range parts {
			v, err := evalParam(strings.TrimSpace(p))
			if err != nil {
				return circuit.Gate{}, err
			}
			params[i] = v
		}
	} else if paramsStr != "" {
		return circuit.Gate{}, fmt.Errorf("%s takes no params", fields[0])
	}

	// Operands.
	ops := strings.Split(fields[1], ",")
	qubits := make([]int, len(ops))
	for i, op := range ops {
		var q int
		if _, err := fmt.Sscanf(strings.TrimSpace(op), "q[%d]", &q); err != nil {
			return circuit.Gate{}, fmt.Errorf("bad operand %q", op)
		}
		qubits[i] = q
	}
	switch kind.Arity() {
	case 1:
		if len(qubits) != 1 {
			return circuit.Gate{}, fmt.Errorf("%s expects 1 qubit", fields[0])
		}
		return circuit.Gate{Kind: kind, Q0: qubits[0], Q1: -1, Params: params}, nil
	case 2:
		if len(qubits) != 2 {
			return circuit.Gate{}, fmt.Errorf("%s expects 2 qubits", fields[0])
		}
		return circuit.Gate{Kind: kind, Q0: qubits[0], Q1: qubits[1], Params: params}, nil
	}
	return circuit.Gate{}, fmt.Errorf("unreachable arity for %q", fields[0])
}
