package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestExportHeaderAndGates(t *testing.T) {
	c := circuit.New(3).Append(
		circuit.NewH(0),
		circuit.NewCPhase(0, 1, math.Pi/4),
		circuit.NewCNOT(1, 2),
		circuit.NewSwap(0, 2),
		circuit.NewRX(1, 0.5),
		circuit.NewMeasure(2),
	)
	got := Export(c)
	for _, want := range []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"qreg q[3];",
		"creg c[3];",
		"h q[0];",
		"rzz(0.785398163397) q[0],q[1];",
		"cx q[1],q[2];",
		"swap q[0],q[2];",
		"rx(0.5) q[1];",
		"measure q[2] -> c[2];",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("export missing %q:\n%s", want, got)
		}
	}
}

func TestImportBasic(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
// a comment line
qreg q[2];
creg c[2];
h q[0]; // trailing comment
rzz(pi/4) q[0],q[1];
u3(0.1,0.2,0.3) q[1];
measure q[0] -> c[0];
`
	c, err := Import(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 2 {
		t.Fatalf("NQubits = %d", c.NQubits)
	}
	if c.Len() != 4 {
		t.Fatalf("gates = %d, want 4", c.Len())
	}
	zz := c.Gates[1]
	if zz.Kind != circuit.CPhase || math.Abs(zz.Params[0]-math.Pi/4) > 1e-12 {
		t.Errorf("rzz parsed as %v", zz)
	}
	u3 := c.Gates[2]
	if u3.Kind != circuit.U3 || u3.Params != [3]float64{0.1, 0.2, 0.3} {
		t.Errorf("u3 parsed as %v", u3)
	}
}

func TestImportErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no qreg", "h q[0];"},
		{"empty", ""},
		{"duplicate qreg", "qreg q[2];\nqreg q[3];"},
		{"unknown gate", "qreg q[2];\nfoo q[0];"},
		{"out of range", "qreg q[2];\nh q[5];"},
		{"bad params", "qreg q[2];\nrx() q[0];"},
		{"too many params", "qreg q[2];\nh(0.5) q[0];"},
		{"wrong qubit count", "qreg q[2];\ncx q[0];"},
		{"bad operand", "qreg q[2];\nh foo;"},
		{"bad measure", "qreg q[2];\nmeasure q[0];"},
		{"unbalanced parens", "qreg q[2];\nrx)0.5( q[0];"},
		{"same qubit twice", "qreg q[2];\ncx q[1],q[1];"},
	}
	for _, tc := range cases {
		if _, err := Import(tc.src); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.src)
		}
	}
}

func TestEvalParam(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"0.5", 0.5},
		{"pi", math.Pi},
		{"-pi", -math.Pi},
		{"pi/2", math.Pi / 2},
		{"-pi/4", -math.Pi / 4},
		{"2*pi", 2 * math.Pi},
		{"3*pi/2", 3 * math.Pi / 2},
		{"+1.25", 1.25},
		{"--2", 2},
		{"1e-3", 1e-3},
	}
	for _, tc := range cases {
		got, err := evalParam(tc.in)
		if err != nil {
			t.Errorf("evalParam(%q): %v", tc.in, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("evalParam(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "foo", "1/0", "2*", "/2", "1**2"} {
		if _, err := evalParam(bad); err == nil {
			t.Errorf("evalParam(%q) accepted", bad)
		}
	}
}

func TestBarrierRoundTrip(t *testing.T) {
	c := circuit.New(2).Append(circuit.NewH(0))
	c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.Barrier})
	c.Append(circuit.NewH(1))
	back, err := Import(Export(c))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Gates[1].Kind != circuit.Barrier {
		t.Errorf("barrier lost in round trip: %v", back.Gates)
	}
}

// Property: export → import is the identity on gate sequences (angles to
// 1e-10) and the reloaded circuit simulates identically.
func TestRoundTripProperty(t *testing.T) {
	kinds := []func(rng *rand.Rand, n int) circuit.Gate{
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewH(r.Intn(n)) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewX(r.Intn(n)) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewRZ(r.Intn(n), r.Float64()*7-3.5) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewRY(r.Intn(n), r.Float64()*7-3.5) },
		func(r *rand.Rand, n int) circuit.Gate {
			return circuit.NewU3(r.Intn(n), r.Float64(), r.Float64(), r.Float64())
		},
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := twoDistinct(n, r)
			return circuit.NewCNOT(a, b)
		},
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := twoDistinct(n, r)
			return circuit.NewCPhase(a, b, r.Float64()*7-3.5)
		},
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := twoDistinct(n, r)
			return circuit.NewSwap(a, b)
		},
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := circuit.New(n)
		for i := 0; i < 15; i++ {
			c.Append(kinds[rng.Intn(len(kinds))](rng, n))
		}
		back, err := Import(Export(c))
		if err != nil {
			return false
		}
		if back.NQubits != n || back.Len() != c.Len() {
			return false
		}
		for i := range c.Gates {
			a, b := c.Gates[i], back.Gates[i]
			if a.Kind != b.Kind || a.Q0 != b.Q0 || a.Q1 != b.Q1 {
				return false
			}
			for p := 0; p < 3; p++ {
				if math.Abs(a.Params[p]-b.Params[p]) > 1e-10 {
					return false
				}
			}
		}
		sa := sim.NewState(n).Run(c)
		sb := sim.NewState(n).Run(back)
		return math.Abs(sim.FidelityOverlap(sa, sb)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func twoDistinct(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}
