package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// evalParam evaluates the restricted OpenQASM parameter grammar:
// optionally-signed products/quotients of numbers and `pi`, e.g.
// "0.5", "-pi/4", "2*pi", "3*pi/2".
func evalParam(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty parameter")
	}
	neg := false
	for strings.HasPrefix(s, "-") || strings.HasPrefix(s, "+") {
		if s[0] == '-' {
			neg = !neg
		}
		s = strings.TrimSpace(s[1:])
	}

	val := 1.0
	op := byte('*')
	for {
		idx := strings.IndexAny(s, "*/")
		var tok string
		if idx == -1 {
			tok, s = s, ""
		} else {
			tok = s[:idx]
		}
		t, err := evalAtom(strings.TrimSpace(tok))
		if err != nil {
			return 0, err
		}
		switch op {
		case '*':
			val *= t
		case '/':
			if t == 0 {
				return 0, fmt.Errorf("division by zero in parameter")
			}
			val /= t
		}
		if idx == -1 {
			break
		}
		op = s[idx]
		s = s[idx+1:]
		if strings.TrimSpace(s) == "" {
			return 0, fmt.Errorf("dangling operator in parameter")
		}
	}
	if neg {
		val = -val
	}
	return val, nil
}

func evalAtom(tok string) (float64, error) {
	if tok == "pi" {
		return math.Pi, nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad parameter token %q", tok)
	}
	return v, nil
}
