// Package metrics aggregates compiled-circuit quality measurements —
// depth, gate count, compilation time, success probability — across
// instance sets and computes the ratio statistics the paper reports.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Sample records the quality metrics of one compiled circuit.
type Sample struct {
	Depth       int
	GateCount   int
	SwapCount   int
	CompileTime time.Duration
	// RouteTime is the backend (SWAP-insertion) share of CompileTime.
	RouteTime   time.Duration
	SuccessProb float64
}

// Aggregate summarizes a set of samples.
type Aggregate struct {
	N           int
	Depth       Stat
	GateCount   Stat
	SwapCount   Stat
	CompileSec  Stat
	RouteSec    Stat
	SuccessProb Stat
}

// Stat holds a mean and standard deviation.
type Stat struct {
	Mean, Std float64
}

// Collect aggregates samples into per-metric statistics.
func Collect(samples []Sample) Aggregate {
	n := len(samples)
	agg := Aggregate{N: n}
	if n == 0 {
		return agg
	}
	depth := make([]float64, n)
	gates := make([]float64, n)
	swaps := make([]float64, n)
	secs := make([]float64, n)
	routeSecs := make([]float64, n)
	succ := make([]float64, n)
	for i, s := range samples {
		depth[i] = float64(s.Depth)
		gates[i] = float64(s.GateCount)
		swaps[i] = float64(s.SwapCount)
		secs[i] = s.CompileTime.Seconds()
		routeSecs[i] = s.RouteTime.Seconds()
		succ[i] = s.SuccessProb
	}
	agg.Depth = NewStat(depth)
	agg.GateCount = NewStat(gates)
	agg.SwapCount = NewStat(swaps)
	agg.CompileSec = NewStat(secs)
	agg.RouteSec = NewStat(routeSecs)
	agg.SuccessProb = NewStat(succ)
	return agg
}

// NewStat computes mean and (population) standard deviation of xs.
func NewStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - mean
		sq += d * d
	}
	return Stat{Mean: mean, Std: math.Sqrt(sq / float64(len(xs)))}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 { return NewStat(xs).Mean }

// Ratio returns a/b, or NaN when b is zero — the "X vs NAIVE" ratios of
// Figs. 7–9.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// PercentChange returns 100·(b−a)/a: positive when b exceeds a.
func PercentChange(a, b float64) float64 {
	if a == 0 {
		return math.NaN()
	}
	return 100 * (b - a) / a
}

// String renders the aggregate compactly.
func (a Aggregate) String() string {
	return fmt.Sprintf("n=%d depth=%.1f±%.1f gates=%.1f±%.1f swaps=%.1f time=%.3fs success=%.4f",
		a.N, a.Depth.Mean, a.Depth.Std, a.GateCount.Mean, a.GateCount.Std,
		a.SwapCount.Mean, a.CompileSec.Mean, a.SuccessProb.Mean)
}
