package metrics

import (
	"math"
	"testing"
	"time"
)

func TestNewStat(t *testing.T) {
	s := NewStat([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", s.Std)
	}
	if z := NewStat(nil); z.Mean != 0 || z.Std != 0 {
		t.Errorf("empty stat = %+v", z)
	}
	if one := NewStat([]float64{3.5}); one.Mean != 3.5 || one.Std != 0 {
		t.Errorf("single stat = %+v", one)
	}
}

func TestCollect(t *testing.T) {
	samples := []Sample{
		{Depth: 10, GateCount: 100, SwapCount: 3, CompileTime: 100 * time.Millisecond, SuccessProb: 0.5},
		{Depth: 20, GateCount: 200, SwapCount: 5, CompileTime: 300 * time.Millisecond, SuccessProb: 0.7},
	}
	agg := Collect(samples)
	if agg.N != 2 {
		t.Fatalf("N = %d", agg.N)
	}
	if agg.Depth.Mean != 15 || agg.GateCount.Mean != 150 || agg.SwapCount.Mean != 4 {
		t.Errorf("means: %+v", agg)
	}
	if math.Abs(agg.CompileSec.Mean-0.2) > 1e-12 {
		t.Errorf("time mean = %v", agg.CompileSec.Mean)
	}
	if math.Abs(agg.SuccessProb.Mean-0.6) > 1e-12 {
		t.Errorf("success mean = %v", agg.SuccessProb.Mean)
	}
	if empty := Collect(nil); empty.N != 0 {
		t.Error("empty collect N != 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0); !math.IsNaN(got) {
		t.Errorf("Ratio by zero = %v, want NaN", got)
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(10, 8); got != -20 {
		t.Errorf("PercentChange = %v, want -20", got)
	}
	if got := PercentChange(10, 15); got != 50 {
		t.Errorf("PercentChange = %v, want 50", got)
	}
	if got := PercentChange(0, 1); !math.IsNaN(got) {
		t.Errorf("PercentChange from zero = %v, want NaN", got)
	}
}

func TestAggregateString(t *testing.T) {
	agg := Collect([]Sample{{Depth: 5, GateCount: 50, SuccessProb: 0.9}})
	s := agg.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}
