// Package graphs provides the undirected-graph substrate used throughout the
// QAOA compilation study: problem graphs for MaxCut instances, hardware
// coupling graphs, random-graph workload generators, all-pairs shortest
// paths, and an exact MaxCut solver for computing approximation ratios.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected.
// Vertices are dense integers in [0, N). Edges may carry a float64 weight;
// unweighted algorithms treat every edge as weight 1.
package graphs

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between vertices U and V with an optional
// weight. Invariant maintained by Graph: U < V.
type Edge struct {
	U, V   int
	Weight float64
}

// Canonical returns the edge with endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graphs: vertex %d not an endpoint of edge (%d,%d)", v, e.U, e.V))
}

// Graph is a simple undirected graph over vertices 0..N-1.
//
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n     int
	adj   [][]int        // adjacency lists, kept sorted
	edges []Edge         // canonical edge list in insertion order
	index map[[2]int]int // canonical endpoints -> index into edges
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graphs: negative vertex count")
	}
	return &Graph{
		n:     n,
		adj:   make([][]int, n),
		index: make(map[[2]int]int),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.AddWeightedEdge(e.U, e.V, e.Weight)
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list in insertion order. The returned slice must
// not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the sorted adjacency list of v. The returned slice must
// not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := g.index[[2]int{u, v}]
	return ok
}

// EdgeWeight returns the weight of edge (u,v) and whether the edge exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u > v {
		u, v = v, u
	}
	i, ok := g.index[[2]int{u, v}]
	if !ok {
		return 0, false
	}
	return g.edges[i].Weight, true
}

// AddEdge inserts the unweighted (weight 1) edge (u,v). Inserting an edge
// that already exists, a self-loop, or an edge with an out-of-range endpoint
// is an error.
func (g *Graph) AddEdge(u, v int) error { return g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge inserts edge (u,v) with weight w.
func (g *Graph) AddWeightedEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graphs: edge (%d,%d) out of range for %d vertices", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graphs: self-loop at vertex %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if _, dup := g.index[key]; dup {
		return fmt.Errorf("graphs: duplicate edge (%d,%d)", u, v)
	}
	g.index[key] = len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w})
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge but panics on error; intended for statically-known
// topologies such as hardware coupling graphs.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// SetEdgeWeight updates the weight of an existing edge.
func (g *Graph) SetEdgeWeight(u, v int, w float64) error {
	if u > v {
		u, v = v, u
	}
	i, ok := g.index[[2]int{u, v}]
	if !ok {
		return fmt.Errorf("graphs: no edge (%d,%d)", u, v)
	}
	g.edges[i].Weight = w
	return nil
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.Weight
	}
	return s
}

// MaxDegree returns the largest vertex degree (0 for an edgeless graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// IsConnected reports whether the graph is connected (the empty and the
// single-vertex graphs count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// Triangles returns, for each edge index i, the number of common neighbours
// of the edge's endpoints (the number of triangles through that edge). Used
// by the analytic p=1 MaxCut expectation.
func (g *Graph) Triangles() []int {
	tri := make([]int, len(g.edges))
	for i, e := range g.edges {
		tri[i] = countCommon(g.adj[e.U], g.adj[e.V])
	}
	return tri
}

// String renders the graph as "n=<N> m=<M> edges=[...]".
func (g *Graph) String() string {
	s := fmt.Sprintf("n=%d m=%d edges=[", g.n, g.m())
	for i, e := range g.edges {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("(%d,%d)", e.U, e.V)
	}
	return s + "]"
}

func (g *Graph) m() int { return len(g.edges) }

// insertSorted inserts x into sorted slice s keeping it sorted.
func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// countCommon counts elements present in both sorted slices.
func countCommon(a, b []int) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
