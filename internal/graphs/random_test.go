package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Errorf("G(10,0) has %d edges", g.M())
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestErdosRenyiEdgeCountConcentration(t *testing.T) {
	// Mean edge count over many samples should be near p * C(n,2).
	rng := rand.New(rand.NewSource(2))
	const n, p, samples = 20, 0.3, 200
	total := 0
	for i := 0; i < samples; i++ {
		total += ErdosRenyi(n, p, rng).M()
	}
	mean := float64(total) / samples
	want := p * float64(n*(n-1)/2)
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean edges = %.1f, want within 10%% of %.1f", mean, want)
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyiConnected(15, 0.3, rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("ErdosRenyiConnected returned a disconnected graph")
	}
	if _, err := ErdosRenyiConnected(10, 0, rng, 5); err == nil {
		t.Error("expected failure for p=0")
	}
}

func TestErdosRenyiExactEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := ErdosRenyiExactEdges(8, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 8 {
		t.Errorf("M = %d, want 8", g.M())
	}
	if _, err := ErdosRenyiExactEdges(4, 7, rng); err == nil {
		t.Error("expected error: 7 edges impossible on 4 vertices")
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, d int }{{12, 3}, {20, 3}, {20, 8}, {36, 15}, {14, 6}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): Degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if g.M() != tc.n*tc.d/2 {
			t.Fatalf("RandomRegular(%d,%d): M = %d, want %d", tc.n, tc.d, g.M(), tc.n*tc.d/2)
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
	g, err := RandomRegular(7, 0, rng)
	if err != nil || g.M() != 0 {
		t.Errorf("0-regular: %v, M=%d", err, g.M())
	}
}

// Property: every generated random graph is simple — no vertex appears
// twice in its own adjacency list and adjacency is symmetric.
func TestRandomGraphsSimpleProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(15)
		var g *Graph
		if seed%2 == 0 {
			g = ErdosRenyi(n, 0.2+0.6*rng.Float64(), rng)
		} else {
			d := 3
			if n%2 == 1 {
				d = 4
			}
			var err error
			g, err = RandomRegular(n, d, rng)
			if err != nil {
				return false
			}
		}
		for v := 0; v < g.N(); v++ {
			nb := g.Neighbors(v)
			for i, w := range nb {
				if w == v {
					return false // self-loop
				}
				if i > 0 && nb[i-1] >= w {
					return false // duplicate or unsorted
				}
				if !g.HasEdge(w, v) {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
