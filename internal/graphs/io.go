package graphs

import (
	"bufio"
	"fmt"
	"strings"
)

// ParseEdgeList reads a graph from the simple text format
//
//	# comment
//	n <vertices>
//	<u> <v> [weight]
//
// one edge per line. Weight defaults to 1. Used by the CLI to accept custom
// problem instances.
func ParseEdgeList(src string) (*Graph, error) {
	var g *Graph
	scanner := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if g != nil {
				return nil, fmt.Errorf("graphs: line %d: duplicate vertex-count line", lineNo)
			}
			var n int
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphs: line %d: want \"n <count>\"", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n <= 0 {
				return nil, fmt.Errorf("graphs: line %d: bad vertex count %q", lineNo, fields[1])
			}
			g = New(n)
			continue
		}
		if g == nil {
			return nil, fmt.Errorf("graphs: line %d: edge before the \"n <count>\" line", lineNo)
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graphs: line %d: want \"u v [weight]\"", lineNo)
		}
		var u, v int
		if _, err := fmt.Sscanf(fields[0], "%d", &u); err != nil {
			return nil, fmt.Errorf("graphs: line %d: bad vertex %q", lineNo, fields[0])
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil {
			return nil, fmt.Errorf("graphs: line %d: bad vertex %q", lineNo, fields[1])
		}
		w := 1.0
		if len(fields) == 3 {
			if _, err := fmt.Sscanf(fields[2], "%g", &w); err != nil {
				return nil, fmt.Errorf("graphs: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		if err := g.AddWeightedEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("graphs: line %d: %w", lineNo, err)
		}
	}
	if g == nil {
		return nil, fmt.Errorf("graphs: no vertex-count line found")
	}
	return g, nil
}

// FormatEdgeList renders g in the ParseEdgeList text format; unit weights
// are omitted.
func FormatEdgeList(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n %d\n", g.N())
	for _, e := range g.Edges() {
		if e.Weight == 1 {
			fmt.Fprintf(&b, "%d %d\n", e.U, e.V)
		} else {
			fmt.Fprintf(&b, "%d %d %g\n", e.U, e.V, e.Weight)
		}
	}
	return b.String()
}
