package graphs

import "fmt"

// EdgeColoring computes a proper edge coloring of g with at most Δ+1 colors
// using the Misra–Gries constructive proof of Vizing's theorem. Colors are
// 1-based; the returned slice is indexed by edge index (g.Edges() order).
//
// For QAOA this is the optimal-layer-count scheduler: edges of one color
// class form a matching, so the cost layer executes in at most Δ+1 time
// steps — the guarantee IP's first-fit heuristic only approximates (MOQ = Δ
// is the lower bound; Vizing says Δ+1 always suffices).
func EdgeColoring(g *Graph) ([]int, error) {
	maxColors := g.MaxDegree() + 1
	if g.M() == 0 {
		return nil, nil
	}
	n := g.N()
	// at[v][c] = neighbour joined to v by the edge of color c, or -1.
	at := make([][]int, n)
	for v := range at {
		at[v] = make([]int, maxColors+1)
		for c := range at[v] {
			at[v][c] = -1
		}
	}
	colorOf := make(map[[2]int]int, g.M())

	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	setColor := func(a, b, c int) {
		colorOf[key(a, b)] = c
		at[a][c], at[b][c] = b, a
	}
	unsetColor := func(a, b int) {
		c := colorOf[key(a, b)]
		delete(colorOf, key(a, b))
		at[a][c], at[b][c] = -1, -1
	}
	free := func(v int) int {
		for c := 1; c <= maxColors; c++ {
			if at[v][c] == -1 {
				return c
			}
		}
		panic("graphs: no free color within Δ+1 (impossible)")
	}
	isFree := func(v, c int) bool { return at[v][c] == -1 }

	// invertPath flips colors c and d along the maximal alternating path
	// starting at u with color d.
	invertPath := func(u, c, d int) {
		x, col := u, d
		type step struct{ a, b, from, to int }
		var steps []step
		visited := map[int]bool{u: true}
		for {
			y := at[x][col]
			if y == -1 {
				break
			}
			other := c
			if col == c {
				other = d
			}
			steps = append(steps, step{x, y, col, other})
			if visited[y] {
				break // cycle (cannot happen for a cd-path from an endpoint)
			}
			visited[y] = true
			x, col = y, other
		}
		for _, s := range steps {
			unsetColor(s.a, s.b)
		}
		for _, s := range steps {
			setColor(s.a, s.b, s.to)
		}
	}

	for _, e := range g.Edges() {
		u, v := e.U, e.V
		// Maximal fan of u starting at v.
		fan := []int{v}
		inFan := map[int]bool{v: true}
		for {
			extended := false
			last := fan[len(fan)-1]
			for _, w := range g.Neighbors(u) {
				if inFan[w] {
					continue
				}
				cw, ok := colorOf[key(u, w)]
				if !ok {
					continue
				}
				if isFree(last, cw) {
					fan = append(fan, w)
					inFan[w] = true
					extended = true
					break
				}
			}
			if !extended {
				break
			}
		}

		c := free(u)
		d := free(fan[len(fan)-1])
		if c != d {
			invertPath(u, c, d)
		}
		// Find the first fan prefix whose tip has d free (exists by the
		// Misra–Gries lemma after the inversion).
		w := -1
		for i := range fan {
			// Check fan validity of the prefix up to i under current colors.
			validPrefix := true
			for j := 0; j < i; j++ {
				cw, ok := colorOf[key(u, fan[j+1])]
				if !ok || !isFree(fan[j], cw) {
					validPrefix = false
					break
				}
			}
			if validPrefix && isFree(fan[i], d) {
				w = i
				break
			}
		}
		if w == -1 {
			return nil, fmt.Errorf("graphs: edge coloring invariant violated at edge (%d,%d)", u, v)
		}
		// Rotate the prefix: each fan edge takes its successor's color.
		for j := 0; j < w; j++ {
			cNext := colorOf[key(u, fan[j+1])]
			unsetColor(u, fan[j+1])
			if j == 0 {
				// (u, fan[0]) = (u, v) is the uncolored edge being placed.
				setColor(u, fan[0], cNext)
			} else {
				setColor(u, fan[j], cNext)
			}
		}
		setColor(u, fan[w], d)
	}

	out := make([]int, g.M())
	for i, e := range g.Edges() {
		c, ok := colorOf[key(e.U, e.V)]
		if !ok {
			return nil, fmt.Errorf("graphs: edge (%d,%d) left uncolored", e.U, e.V)
		}
		out[i] = c
	}
	return out, nil
}
