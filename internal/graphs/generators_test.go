package graphs

import (
	"math/rand"
	"testing"
)

func TestNamedGraphs(t *testing.T) {
	if g := Complete(5); g.M() != 10 || g.MaxDegree() != 4 {
		t.Errorf("K5: m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Cycle(6); g.M() != 6 || g.MaxDegree() != 2 {
		t.Errorf("C6: m=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Cycle(2); g.M() != 0 {
		t.Error("C2 should be edgeless (no multi-edges)")
	}
	if g := Path(5); g.M() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("P5 malformed")
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Errorf("star malformed")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Errorf("K(3,4) malformed")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// beta=0: pure ring lattice, n*k/2 edges, all degrees k.
	g, err := WattsStrogatz(12, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 24 {
		t.Errorf("lattice edges = %d, want 24", g.M())
	}
	for v := 0; v < 12; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("lattice degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// beta=1: heavy rewiring keeps the edge count.
	g2, err := WattsStrogatz(14, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 28 {
		t.Errorf("rewired edges = %d, want 28", g2.M())
	}
	// Simple-graph invariants survive rewiring.
	for v := 0; v < g2.N(); v++ {
		nb := g2.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] || nb[i] == v {
				t.Fatalf("rewired graph not simple at %d: %v", v, nb)
			}
		}
	}
	if _, err := WattsStrogatz(10, 3, 0.5, rng); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(4, 4, 0.5, rng); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := BarabasiAlbert(30, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Edge count: m seed edges + (n−m−1)·m.
	want := 2 + 27*2
	if g.M() != want {
		t.Errorf("BA edges = %d, want %d", g.M(), want)
	}
	if !g.IsConnected() {
		t.Error("BA graph disconnected")
	}
	// Scale-free signature: max degree well above the attachment count.
	if g.MaxDegree() < 2*2 {
		t.Errorf("no hubs formed: Δ = %d", g.MaxDegree())
	}
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("m >= n accepted")
	}
}

func TestMaxCutAnnealMatchesExactOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyi(12, 0.4, rng)
		exact, _, err := MaxCutExact(g)
		if err != nil {
			t.Fatal(err)
		}
		got, assign := MaxCutAnneal(g, 150, rng)
		if got > exact {
			t.Fatalf("anneal %d exceeds exact %d", got, exact)
		}
		if int(CutValue(g, assign)) != got {
			t.Fatalf("reported cut %d != assignment cut %v", got, CutValue(g, assign))
		}
		if got < exact-1 {
			t.Errorf("trial %d: anneal %d far below exact %d", trial, got, exact)
		}
	}
}

func TestMaxCutAnnealBeatsGreedyOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	annealWins, greedyWins := 0, 0
	for trial := 0; trial < 15; trial++ {
		g := ErdosRenyi(40, 0.3, rng)
		a, _ := MaxCutAnneal(g, 200, rng)
		gr, _ := MaxCutGreedy(g)
		if a > gr {
			annealWins++
		} else if gr > a {
			greedyWins++
		}
	}
	if annealWins < greedyWins {
		t.Errorf("anneal won %d, greedy won %d", annealWins, greedyWins)
	}
}

func TestMaxCutAnnealEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if cut, assign := MaxCutAnneal(New(0), 10, rng); cut != 0 || assign != nil {
		t.Error("empty graph")
	}
	if cut, _ := MaxCutAnneal(New(3), 10, rng); cut != 0 {
		t.Error("edgeless graph")
	}
	// Bipartite: the anneal must find the perfect cut.
	g := CompleteBipartite(4, 4)
	if cut, _ := MaxCutAnneal(g, 200, rng); cut != 16 {
		t.Errorf("K(4,4) anneal cut = %d, want 16", cut)
	}
}
