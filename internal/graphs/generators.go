package graphs

import (
	"fmt"
	"math/rand"
	"sort"
)

// Named and structured graph constructors, used as additional QAOA
// workloads and in tests.

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Cycle returns C_n.
func Cycle(n int) *Graph {
	g := New(n)
	if n < 3 {
		return g
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns P_n (n vertices, n−1 edges).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Star returns K_{1,n−1} with vertex 0 at the center.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a−1} and {a..a+b−1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// WattsStrogatz samples a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbours (k even), with each edge
// rewired to a uniform random endpoint with probability beta. Small-world
// instances stress QAIM differently from ER/regular workloads — mostly
// local structure plus a few long chords.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*Graph, error) {
	if k%2 != 0 || k < 2 || k >= n {
		return nil, fmt.Errorf("graphs: watts-strogatz needs even 2 ≤ k < n, got k=%d n=%d", k, n)
	}
	g := New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + j) % n
			if !g.HasEdge(v, w) {
				g.MustAddEdge(v, w)
			}
		}
	}
	// Rewire each lattice edge with probability beta.
	for _, e := range append([]Edge(nil), g.Edges()...) {
		if rng.Float64() >= beta {
			continue
		}
		// Replace (u,v) with (u,w) for a random w avoiding loops/dups.
		for attempts := 0; attempts < 2*n; attempts++ {
			w := rng.Intn(n)
			if w == e.U || g.HasEdge(e.U, w) {
				continue
			}
			removeEdge(g, e.U, e.V)
			g.MustAddEdge(e.U, w)
			break
		}
	}
	return g, nil
}

// BarabasiAlbert samples a preferential-attachment scale-free graph: each
// new vertex attaches to m existing vertices with probability proportional
// to their degree. Scale-free instances have hub qubits — the worst case
// for layer packing (MOQ is large).
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graphs: barabasi-albert needs 1 ≤ m < n, got m=%d n=%d", m, n)
	}
	g := New(n)
	// Seed: star on the first m+1 vertices.
	var stubs []int
	for i := 1; i <= m; i++ {
		g.MustAddEdge(0, i)
		stubs = append(stubs, 0, i)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			w := stubs[rng.Intn(len(stubs))]
			if w != v && !chosen[w] {
				chosen[w] = true
			}
		}
		// Attach in sorted order: map iteration order would leak into the
		// edge list and the stub pool (and through it into every later
		// rng.Intn draw), making the graph differ run to run per seed.
		picked := make([]int, 0, m)
		for w := range chosen {
			picked = append(picked, w)
		}
		sort.Ints(picked)
		for _, w := range picked {
			g.MustAddEdge(v, w)
			stubs = append(stubs, v, w)
		}
	}
	return g, nil
}

// removeEdge deletes an edge by rebuilding — acceptable for the rewiring
// generator's scale; the core Graph type stays append-only elsewhere.
func removeEdge(g *Graph, u, v int) {
	if u > v {
		u, v = v, u
	}
	rebuilt := New(g.N())
	for _, e := range g.Edges() {
		if e.U == u && e.V == v {
			continue
		}
		if err := rebuilt.AddWeightedEdge(e.U, e.V, e.Weight); err != nil {
			panic(err)
		}
	}
	*g = *rebuilt
}
