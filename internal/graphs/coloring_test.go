package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func validColoring(g *Graph, colors []int, maxColors int) bool {
	if len(colors) != g.M() {
		return false
	}
	// Proper: no two edges sharing a vertex share a color.
	seen := make(map[[2]int]bool) // (vertex, color)
	for i, e := range g.Edges() {
		c := colors[i]
		if c < 1 || c > maxColors {
			return false
		}
		for _, v := range []int{e.U, e.V} {
			if seen[[2]int{v, c}] {
				return false
			}
			seen[[2]int{v, c}] = true
		}
	}
	return true
}

func TestEdgeColoringSmallKnown(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"single edge", func() *Graph { g := New(2); g.MustAddEdge(0, 1); return g }},
		{"path3", pathGraphBuilder(4)},
		{"triangle", func() *Graph {
			g := New(3)
			g.MustAddEdge(0, 1)
			g.MustAddEdge(1, 2)
			g.MustAddEdge(0, 2)
			return g
		}},
		{"star", func() *Graph {
			g := New(5)
			for i := 1; i < 5; i++ {
				g.MustAddEdge(0, i)
			}
			return g
		}},
		{"K4", func() *Graph {
			g := New(4)
			for u := 0; u < 4; u++ {
				for v := u + 1; v < 4; v++ {
					g.MustAddEdge(u, v)
				}
			}
			return g
		}},
	}
	for _, tc := range cases {
		g := tc.build()
		colors, err := EdgeColoring(g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !validColoring(g, colors, g.MaxDegree()+1) {
			t.Errorf("%s: invalid coloring %v", tc.name, colors)
		}
	}
}

func pathGraphBuilder(n int) func() *Graph {
	return func() *Graph {
		g := New(n)
		for i := 0; i+1 < n; i++ {
			g.MustAddEdge(i, i+1)
		}
		return g
	}
}

func TestEdgeColoringEmpty(t *testing.T) {
	colors, err := EdgeColoring(New(5))
	if err != nil || colors != nil {
		t.Errorf("empty graph: %v, %v", colors, err)
	}
}

// A star's edges all share the center: exactly Δ colors are forced and
// sufficient.
func TestEdgeColoringStarUsesDegreeColors(t *testing.T) {
	g := New(6)
	for i := 1; i < 6; i++ {
		g.MustAddEdge(0, i)
	}
	colors, err := EdgeColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, c := range colors {
		distinct[c] = true
	}
	if len(distinct) != 5 {
		t.Errorf("star colored with %d colors, want 5", len(distinct))
	}
}

// Property: Misra–Gries always yields a proper coloring within Δ+1 colors —
// Vizing's theorem, constructively.
func TestEdgeColoringVizingProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g *Graph
		if seed%2 == 0 {
			g = ErdosRenyi(4+rng.Intn(16), 0.2+0.6*rng.Float64(), rng)
		} else {
			n := 6 + 2*rng.Intn(8)
			d := 3 + rng.Intn(4)
			if d >= n {
				d = n - 1
			}
			if n*d%2 == 1 {
				d--
			}
			var err error
			g, err = RandomRegular(n, d, rng)
			if err != nil {
				return false
			}
		}
		colors, err := EdgeColoring(g)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return validColoring(g, colors, g.MaxDegree()+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The color classes form a layer schedule at least as tight as MOQ+1.
func TestEdgeColoringLayerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := MustRandomRegular(16, 5, rng)
		colors, err := EdgeColoring(g)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for _, c := range colors {
			if c > max {
				max = c
			}
		}
		if max > g.MaxDegree()+1 {
			t.Fatalf("trial %d: %d colors exceed Δ+1 = %d", trial, max, g.MaxDegree()+1)
		}
	}
}
