package graphs

import (
	"fmt"
	"math/bits"
)

// CutValue returns the (weighted) cut value of the partition encoded by
// assign: vertex v is on side assign[v] (false/true). An edge contributes
// its weight when its endpoints lie on different sides.
func CutValue(g *Graph, assign []bool) float64 {
	var cut float64
	for _, e := range g.Edges() {
		if assign[e.U] != assign[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// CutValueBits returns the cut value of the partition encoded in the low
// g.N() bits of x (bit v set means vertex v on side 1). Weights are ignored;
// each crossing edge counts 1 — matching the unweighted MaxCut objective the
// paper's QAOA instances optimize.
func CutValueBits(g *Graph, x uint64) int {
	cut := 0
	for _, e := range g.Edges() {
		if (x>>uint(e.U))&1 != (x>>uint(e.V))&1 {
			cut++
		}
	}
	return cut
}

// MaxCutExact computes the exact unweighted MaxCut by exhaustive search over
// all 2^(n-1) partitions (vertex 0 is fixed on side 0 by the cut symmetry).
// It errors for n > 26 where exhaustive search is no longer sensible.
func MaxCutExact(g *Graph) (best int, bestAssign uint64, err error) {
	n := g.N()
	if n > 26 {
		return 0, 0, fmt.Errorf("graphs: exact MaxCut limited to 26 vertices, got %d", n)
	}
	if n == 0 {
		return 0, 0, nil
	}
	edges := g.Edges()
	masksU := make([]uint64, len(edges))
	masksV := make([]uint64, len(edges))
	for i, e := range edges {
		masksU[i] = 1 << uint(e.U)
		masksV[i] = 1 << uint(e.V)
	}
	total := uint64(1) << uint(n-1)
	for x := uint64(0); x < total; x++ {
		cut := 0
		for i := range edges {
			if (x&masksU[i] != 0) != (x&masksV[i] != 0) {
				cut++
			}
		}
		if cut > best {
			best = cut
			bestAssign = x
		}
	}
	return best, bestAssign, nil
}

// MaxCutGreedy returns a lower bound on MaxCut using a single
// deterministic greedy sweep followed by 1-swap local search. Used as a
// sanity floor for instances too large for MaxCutExact.
func MaxCutGreedy(g *Graph) (int, []bool) {
	n := g.N()
	assign := make([]bool, n)
	// Greedy placement: each vertex goes to the side that cuts more of its
	// already-placed neighbours.
	for v := 0; v < n; v++ {
		same, diff := 0, 0
		for _, w := range g.Neighbors(v) {
			if w < v {
				if assign[w] {
					diff++
				} else {
					same++
				}
			}
		}
		assign[v] = same >= diff
	}
	// 1-flip local search to a local optimum.
	improved := true
	for improved {
		improved = false
		for v := 0; v < n; v++ {
			gain := 0
			for _, w := range g.Neighbors(v) {
				if assign[v] == assign[w] {
					gain++
				} else {
					gain--
				}
			}
			if gain > 0 {
				assign[v] = !assign[v]
				improved = true
			}
		}
	}
	cut := 0
	for _, e := range g.Edges() {
		if assign[e.U] != assign[e.V] {
			cut++
		}
	}
	return cut, assign
}

// PopcountCut is a helper for tests: cut value of x computed edge-by-edge
// using XOR and popcount over per-edge masks.
func PopcountCut(edgeMasks []uint64, x uint64) int {
	cut := 0
	for _, m := range edgeMasks {
		if bits.OnesCount64(x&m)%2 == 1 {
			cut++
		}
	}
	return cut
}

// EdgeMasks returns a two-bit mask per edge (bits at both endpoints),
// suitable for PopcountCut.
func EdgeMasks(g *Graph) []uint64 {
	masks := make([]uint64, g.M())
	for i, e := range g.Edges() {
		masks[i] = 1<<uint(e.U) | 1<<uint(e.V)
	}
	return masks
}
