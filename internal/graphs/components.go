package graphs

import "sort"

// Components returns the connected components of g as sorted vertex lists,
// ordered largest first (ties by smallest contained vertex). A connected
// graph yields a single component covering every vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.SliceStable(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) > len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
	return comps
}

// LargestComponent returns the vertex list of the largest connected
// component (sorted ascending). For a connected graph this is every vertex.
func (g *Graph) LargestComponent() []int {
	comps := g.Components()
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}
