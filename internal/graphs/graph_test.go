package graphs

import (
	"math/rand"
	"testing"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M = %d, want 0", g.M())
	}
	for v := 0; v < 5; v++ {
		if d := g.Degree(v); d != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, d)
		}
	}
}

func TestAddEdgeBasic(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing in one orientation")
	}
	if !g.HasEdge(1, 2) {
		t.Error("edge (1,2) missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge (0,2)")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, tc := range cases {
		if err := g.AddEdge(tc.u, tc.v); err == nil {
			t.Errorf("%s: AddEdge(%d,%d) succeeded, want error", tc.name, tc.u, tc.v)
		}
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestEdgeCanonicalAndOther(t *testing.T) {
	e := Edge{U: 3, V: 1}.Canonical()
	if e.U != 1 || e.V != 3 {
		t.Fatalf("Canonical = (%d,%d), want (1,3)", e.U, e.V)
	}
	if got := e.Other(1); got != 3 {
		t.Errorf("Other(1) = %d, want 3", got)
	}
	if got := e.Other(3); got != 1 {
		t.Errorf("Other(3) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint did not panic")
		}
	}()
	e.Other(2)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		g.MustAddEdge(3, v)
	}
	nb := g.Neighbors(3)
	want := []int{1, 2, 4, 5}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(3) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(3) = %v, want %v", nb, want)
		}
	}
}

func TestEdgeWeight(t *testing.T) {
	g := New(3)
	if err := g.AddWeightedEdge(0, 2, 1.25); err != nil {
		t.Fatal(err)
	}
	w, ok := g.EdgeWeight(2, 0)
	if !ok || w != 1.25 {
		t.Fatalf("EdgeWeight = (%v,%v), want (1.25,true)", w, ok)
	}
	if err := g.SetEdgeWeight(0, 2, 3.5); err != nil {
		t.Fatal(err)
	}
	if w, _ := g.EdgeWeight(0, 2); w != 3.5 {
		t.Errorf("after SetEdgeWeight: %v, want 3.5", w)
	}
	if err := g.SetEdgeWeight(0, 1, 1); err == nil {
		t.Error("SetEdgeWeight on missing edge succeeded")
	}
	if _, ok := g.EdgeWeight(0, 1); ok {
		t.Error("EdgeWeight reported missing edge present")
	}
}

func TestClone(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	c := g.Clone()
	c.MustAddEdge(2, 3)
	if err := c.SetEdgeWeight(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("original M changed to %d", g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("original weight changed to %v", w)
	}
	if c.M() != 3 {
		t.Errorf("clone M = %d, want 3", c.M())
	}
}

func TestIsConnected(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  bool
	}{
		{"empty", 0, nil, true},
		{"single", 1, nil, true},
		{"two isolated", 2, nil, false},
		{"path", 3, [][2]int{{0, 1}, {1, 2}}, true},
		{"two components", 4, [][2]int{{0, 1}, {2, 3}}, false},
		{"cycle", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, true},
	}
	for _, tc := range cases {
		g := New(tc.n)
		for _, e := range tc.edges {
			g.MustAddEdge(e[0], e[1])
		}
		if got := g.IsConnected(); got != tc.want {
			t.Errorf("%s: IsConnected = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g := New(5)
	if g.MaxDegree() != 0 {
		t.Error("MaxDegree of edgeless graph not 0")
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 2)
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
}

func TestTriangles(t *testing.T) {
	// Triangle 0-1-2 plus pendant edge 2-3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	tri := g.Triangles()
	want := map[[2]int]int{{0, 1}: 1, {1, 2}: 1, {0, 2}: 1, {2, 3}: 0}
	for i, e := range g.Edges() {
		if tri[i] != want[[2]int{e.U, e.V}] {
			t.Errorf("triangles through (%d,%d) = %d, want %d", e.U, e.V, tri[i], want[[2]int{e.U, e.V}])
		}
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if err := g.AddWeightedEdge(1, 2, 2.5); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalWeight(); got != 3.5 {
		t.Errorf("TotalWeight = %v, want 3.5", got)
	}
}

func TestGraphString(t *testing.T) {
	g := New(3)
	g.MustAddEdge(2, 0)
	s := g.String()
	if s != "n=3 m=1 edges=[(0,2)]" {
		t.Errorf("String = %q", s)
	}
}

func TestCloneIndependentRNGUsage(t *testing.T) {
	// Two graphs generated with the same seed must be identical.
	a := ErdosRenyi(12, 0.4, rand.New(rand.NewSource(7)))
	b := ErdosRenyi(12, 0.4, rand.New(rand.NewSource(7)))
	if a.M() != b.M() {
		t.Fatalf("same-seed ER graphs differ: %d vs %d edges", a.M(), b.M())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("edge (%d,%d) missing from same-seed twin", e.U, e.V)
		}
	}
}
