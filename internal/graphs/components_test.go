package graphs

import (
	"reflect"
	"testing"
)

func TestComponentsConnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("connected graph: got %d components", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1, 2, 3}) {
		t.Fatalf("component = %v", comps[0])
	}
}

func TestComponentsSplit(t *testing.T) {
	// {0,1} + {2,3,4} + isolated {5}
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	comps := g.Components()
	want := [][]int{{2, 3, 4}, {0, 1}, {5}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v (largest first)", comps, want)
	}
	if lc := g.LargestComponent(); !reflect.DeepEqual(lc, []int{2, 3, 4}) {
		t.Fatalf("LargestComponent = %v", lc)
	}
}

func TestComponentsTieBreak(t *testing.T) {
	// Two components of equal size: the one containing the smallest vertex
	// sorts first, keeping the order deterministic.
	g := New(4)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 1)
	comps := g.Components()
	want := [][]int{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestComponentsEmptyGraph(t *testing.T) {
	g := New(0)
	if comps := g.Components(); len(comps) != 0 {
		t.Fatalf("empty graph: got %v", comps)
	}
	if lc := g.LargestComponent(); lc != nil {
		t.Fatalf("empty graph LargestComponent = %v", lc)
	}
}
