package graphs

import (
	"math/rand"
	"testing"
)

func TestParseEdgeListBasic(t *testing.T) {
	src := `
# a triangle with one weighted edge
n 3
0 1
1 2 2.5
0 2
`
	g, err := ParseEdgeList(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
	if w, _ := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight = %v", w)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("default weight = %v", w)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no header", "0 1\n"},
		{"empty", ""},
		{"duplicate header", "n 3\nn 4\n"},
		{"bad count", "n x\n"},
		{"zero count", "n 0\n"},
		{"bad vertex", "n 2\na 1\n"},
		{"too many fields", "n 2\n0 1 2 3\n"},
		{"out of range", "n 2\n0 5\n"},
		{"self loop", "n 2\n1 1\n"},
		{"duplicate edge", "n 2\n0 1\n1 0\n"},
		{"bad weight", "n 2\n0 1 w\n"},
	}
	for _, tc := range cases {
		if _, err := ParseEdgeList(tc.src); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.src)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := ErdosRenyi(10, 0.4, rng)
	if err := g.SetEdgeWeight(g.Edges()[0].U, g.Edges()[0].V, 3.25); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEdgeList(FormatEdgeList(g))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		w, ok := back.EdgeWeight(e.U, e.V)
		if !ok || w != e.Weight {
			t.Fatalf("edge (%d,%d) weight %v lost (got %v,%v)", e.U, e.V, e.Weight, w, ok)
		}
	}
}
