package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCutValue(t *testing.T) {
	g := New(4) // square
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	cases := []struct {
		assign []bool
		want   float64
	}{
		{[]bool{false, false, false, false}, 0},
		{[]bool{true, true, true, true}, 0},
		{[]bool{false, true, false, true}, 4},
		{[]bool{false, false, true, true}, 2},
	}
	for _, tc := range cases {
		if got := CutValue(g, tc.assign); got != tc.want {
			t.Errorf("CutValue(%v) = %v, want %v", tc.assign, got, tc.want)
		}
	}
}

func TestCutValueBitsMatchesCutValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ErdosRenyi(10, 0.5, rng)
	for trial := 0; trial < 100; trial++ {
		x := rng.Uint64() & ((1 << 10) - 1)
		assign := make([]bool, 10)
		for v := 0; v < 10; v++ {
			assign[v] = (x>>uint(v))&1 == 1
		}
		if float64(CutValueBits(g, x)) != CutValue(g, assign) {
			t.Fatalf("bit/bool cut mismatch for x=%b", x)
		}
	}
}

func TestMaxCutExactKnown(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  int
	}{
		{"single edge", 2, [][2]int{{0, 1}}, 1},
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 2},
		{"square", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4},
		{"K4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4},
		{"K5", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}, 6},
		{"C5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 4},
		{"path4", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, 3},
		{"edgeless", 3, nil, 0},
	}
	for _, tc := range cases {
		g := New(tc.n)
		for _, e := range tc.edges {
			g.MustAddEdge(e[0], e[1])
		}
		got, assign, err := MaxCutExact(g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: MaxCutExact = %d, want %d", tc.name, got, tc.want)
		}
		if got != CutValueBits(g, assign) {
			t.Errorf("%s: returned assignment has cut %d, reported %d", tc.name, CutValueBits(g, assign), got)
		}
	}
}

func TestMaxCutExactTooLarge(t *testing.T) {
	if _, _, err := MaxCutExact(New(27)); err == nil {
		t.Error("27-vertex exact MaxCut accepted")
	}
}

// Property: greedy cut never exceeds the exact optimum, and the exact
// optimum is at least half the edge count (classic 1/2 bound).
func TestMaxCutBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9)
		g := ErdosRenyi(n, 0.5, rng)
		exact, _, err := MaxCutExact(g)
		if err != nil {
			return false
		}
		greedy, assign := MaxCutGreedy(g)
		if greedy > exact {
			return false
		}
		if int(CutValue(g, assign)) != greedy {
			return false
		}
		if 2*exact < g.M() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEdgeMasksPopcountCut(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := ErdosRenyi(12, 0.4, rng)
	masks := EdgeMasks(g)
	for trial := 0; trial < 50; trial++ {
		x := rng.Uint64() & ((1 << 12) - 1)
		if PopcountCut(masks, x) != CutValueBits(g, x) {
			t.Fatalf("PopcountCut disagrees with CutValueBits for x=%b", x)
		}
	}
}

func TestMaxCutGreedyBipartiteIsExact(t *testing.T) {
	// Complete bipartite K(3,3): greedy local search must reach the full cut 9.
	g := New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			g.MustAddEdge(u, v)
		}
	}
	got, _ := MaxCutGreedy(g)
	if got != 9 {
		t.Errorf("greedy cut on K(3,3) = %d, want 9", got)
	}
}
