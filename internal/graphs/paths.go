package graphs

import "math"

// Inf is the distance reported between disconnected vertex pairs.
var Inf = math.Inf(1)

// DistanceMatrix holds all-pairs shortest-path distances. D[i][j] is the
// length of the shortest path from i to j (Inf if disconnected), and
// Next[i][j] is the first hop on one such shortest path (-1 if none). The
// matrix is produced once per hardware graph (Floyd–Warshall, as in the
// paper) and consulted from memory during compilation.
type DistanceMatrix struct {
	D    [][]float64
	Next [][]int
}

// FloydWarshall computes all-pairs shortest paths. If weighted is true, the
// stored edge weights are used; otherwise every edge counts as 1 hop. The
// variation-aware pass (VIC) runs this on a graph whose edge weights are the
// inverse CPHASE success rates.
func FloydWarshall(g *Graph, weighted bool) *DistanceMatrix {
	n := g.N()
	d := make([][]float64, n)
	next := make([][]int, n)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
		next[i] = make([]int, n)
		for j := 0; j < n; j++ {
			d[i][j] = Inf
			next[i][j] = -1
		}
		d[i][i] = 0
		next[i][i] = i
	}
	for _, e := range g.Edges() {
		w := 1.0
		if weighted {
			w = e.Weight
		}
		if w < d[e.U][e.V] {
			d[e.U][e.V], d[e.V][e.U] = w, w
			next[e.U][e.V], next[e.V][e.U] = e.V, e.U
		}
	}
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			di := d[i]
			ni := next[i]
			for j := 0; j < n; j++ {
				if via := dik + dk[j]; via < di[j] {
					di[j] = via
					ni[j] = next[i][k]
				}
			}
		}
	}
	return &DistanceMatrix{D: d, Next: next}
}

// Dist returns the shortest-path distance between u and v.
func (m *DistanceMatrix) Dist(u, v int) float64 { return m.D[u][v] }

// Path reconstructs one shortest path from u to v inclusive of both
// endpoints. It returns nil if v is unreachable from u.
func (m *DistanceMatrix) Path(u, v int) []int {
	if m.Next[u][v] == -1 {
		return nil
	}
	path := []int{u}
	for u != v {
		u = m.Next[u][v]
		path = append(path, u)
	}
	return path
}

// BFSDistances returns single-source unweighted (hop) distances from src;
// unreachable vertices get -1. Used as an independent oracle for testing
// Floyd–Warshall and for local neighbourhood queries.
func BFSDistances(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// NeighborhoodSize returns the number of distinct vertices at hop-distance
// between 1 and radius from v. radius=2 yields the paper's "connectivity
// strength" (first plus second neighbours).
func NeighborhoodSize(g *Graph, v, radius int) int {
	dist := BFSDistances(g, v)
	count := 0
	for w, d := range dist {
		if w != v && d > 0 && d <= radius {
			count++
		}
	}
	return count
}
