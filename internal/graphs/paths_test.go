package graphs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestFloydWarshallPath(t *testing.T) {
	g := pathGraph(5)
	m := FloydWarshall(g, false)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := math.Abs(float64(i - j))
			if m.Dist(i, j) != want {
				t.Errorf("Dist(%d,%d) = %v, want %v", i, j, m.Dist(i, j), want)
			}
		}
	}
	p := m.Path(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("Path(0,4) = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path(0,4) = %v, want %v", p, want)
		}
	}
}

func TestFloydWarshallDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	m := FloydWarshall(g, false)
	if !math.IsInf(m.Dist(0, 3), 1) {
		t.Errorf("Dist(0,3) = %v, want +Inf", m.Dist(0, 3))
	}
	if p := m.Path(0, 3); p != nil {
		t.Errorf("Path(0,3) = %v, want nil", p)
	}
}

func TestFloydWarshallWeighted(t *testing.T) {
	// Triangle where the direct edge is heavier than the two-hop detour.
	g := New(3)
	if err := g.AddWeightedEdge(0, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	m := FloydWarshall(g, true)
	if m.Dist(0, 2) != 2 {
		t.Errorf("weighted Dist(0,2) = %v, want 2 (via 1)", m.Dist(0, 2))
	}
	p := m.Path(0, 2)
	if len(p) != 3 || p[1] != 1 {
		t.Errorf("weighted Path(0,2) = %v, want [0 1 2]", p)
	}
	// Unweighted view of the same graph: direct hop wins.
	mu := FloydWarshall(g, false)
	if mu.Dist(0, 2) != 1 {
		t.Errorf("unweighted Dist(0,2) = %v, want 1", mu.Dist(0, 2))
	}
}

// Property: Floyd–Warshall hop distances agree with BFS on random graphs.
func TestFloydWarshallMatchesBFS(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		g := ErdosRenyi(n, 0.3, rng)
		m := FloydWarshall(g, false)
		for src := 0; src < n; src++ {
			bfs := BFSDistances(g, src)
			for v := 0; v < n; v++ {
				fw := m.Dist(src, v)
				if bfs[v] == -1 {
					if !math.IsInf(fw, 1) {
						return false
					}
				} else if fw != float64(bfs[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every reconstructed path is a real path of the right length.
func TestPathReconstructionValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := ErdosRenyi(n, 0.4, rng)
		m := FloydWarshall(g, false)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				p := m.Path(u, v)
				if p == nil {
					if !math.IsInf(m.Dist(u, v), 1) {
						return false
					}
					continue
				}
				if p[0] != u || p[len(p)-1] != v {
					return false
				}
				if float64(len(p)-1) != m.Dist(u, v) {
					return false
				}
				for i := 0; i+1 < len(p); i++ {
					if !g.HasEdge(p[i], p[i+1]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoodSize(t *testing.T) {
	// Star: center 0 connected to 1..4; vertex 1 additionally to 5.
	g := New(6)
	for v := 1; v <= 4; v++ {
		g.MustAddEdge(0, v)
	}
	g.MustAddEdge(1, 5)
	if got := NeighborhoodSize(g, 0, 1); got != 4 {
		t.Errorf("radius-1 size of center = %d, want 4", got)
	}
	if got := NeighborhoodSize(g, 0, 2); got != 5 {
		t.Errorf("radius-2 size of center = %d, want 5", got)
	}
	if got := NeighborhoodSize(g, 5, 2); got != 2 {
		t.Errorf("radius-2 size of leaf 5 = %d, want 2 (1 and 0)", got)
	}
	if got := NeighborhoodSize(g, 5, 3); got != 5 {
		t.Errorf("radius-3 size of leaf 5 = %d, want 5", got)
	}
}
