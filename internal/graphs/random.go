package graphs

import (
	"fmt"
	"math/rand"
)

// ErdosRenyi samples G(n, p): each of the n(n-1)/2 possible edges is
// included independently with probability p. The rng must be non-nil so
// experiments stay reproducible.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// ErdosRenyiConnected samples G(n,p) conditioned on the graph having at
// least one edge per vertex participating in the largest workload use-case;
// it simply resamples until the graph is connected (up to maxTries).
// QAOA-MaxCut instances on disconnected graphs are still valid, but the
// paper's workloads are effectively connected for the densities studied.
func ErdosRenyiConnected(n int, p float64, rng *rand.Rand, maxTries int) (*Graph, error) {
	for t := 0; t < maxTries; t++ {
		g := ErdosRenyi(n, p, rng)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphs: no connected G(%d,%.3f) sample in %d tries", n, p, maxTries)
}

// ErdosRenyiExactEdges samples a uniform graph on n vertices with exactly m
// edges (the G(n,m) model). Used by the §VI comparison against Venturelli et
// al. (8-node graphs with exactly 8 edges).
func ErdosRenyiExactEdges(n, m int, rng *rand.Rand) (*Graph, error) {
	max := n * (n - 1) / 2
	if m > max {
		return nil, fmt.Errorf("graphs: %d edges exceed maximum %d for %d vertices", m, max, n)
	}
	g := New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g, nil
}

// RandomRegular samples a random d-regular graph on n vertices using the
// configuration (pairing) model with stub re-matching (the algorithm used by
// networkx, after Kim & Vu): stubs are shuffled and paired; pairs that would
// form a self-loop or parallel edge return their stubs to the pool and the
// remaining stubs are re-shuffled. The attempt restarts from scratch if the
// leftover stubs can no longer be completed. This converges quickly for the
// densities used in the paper (d ≤ 15, n ≤ 36).
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graphs: degree %d invalid for %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graphs: n*d = %d*%d is odd; no %d-regular graph on %d vertices", n, d, d, n)
	}
	if d == 0 {
		return New(n), nil
	}
	const maxRestarts = 2000
	for t := 0; t < maxRestarts; t++ {
		if g := tryRegular(n, d, rng); g != nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphs: pairing model failed to produce a simple %d-regular graph on %d vertices", d, n)
}

// tryRegular performs one attempt of the stub-matching construction and
// returns nil when the attempt dead-ends.
func tryRegular(n, d int, rng *rand.Rand) *Graph {
	g := New(n)
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	leftover := make([]int, 0, n*d)
	for len(stubs) > 0 {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		leftover = leftover[:0]
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				leftover = append(leftover, u, v)
				continue
			}
			g.MustAddEdge(u, v)
		}
		if len(leftover) == len(stubs) {
			// No progress: check whether any suitable pair remains.
			if !anySuitablePair(g, leftover) {
				return nil
			}
		}
		stubs, leftover = append(stubs[:0], leftover...), stubs
	}
	return g
}

// anySuitablePair reports whether some pair of distinct stubs could still be
// joined without creating a self-loop or duplicate edge.
func anySuitablePair(g *Graph, stubs []int) bool {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !g.HasEdge(stubs[i], stubs[j]) {
				return true
			}
		}
	}
	return false
}

// MustRandomRegular is RandomRegular but panics on error; for workload
// generation with parameters known to be feasible.
func MustRandomRegular(n, d int, rng *rand.Rand) *Graph {
	g, err := RandomRegular(n, d, rng)
	if err != nil {
		panic(err)
	}
	return g
}
