package graphs

import (
	"math"
	"math/rand"
)

// MaxCutAnneal approximates MaxCut by simulated annealing with single-spin
// flips under a geometric cooling schedule, followed by the same 1-flip
// local search MaxCutGreedy uses. It serves as the optimum estimate for
// instances beyond MaxCutExact's 26-vertex exhaustive limit (e.g. the
// 36-node grid workloads) so approximation ratios stay meaningful at scale.
func MaxCutAnneal(g *Graph, sweeps int, rng *rand.Rand) (int, []bool) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	if sweeps <= 0 {
		sweeps = 200
	}
	assign := make([]bool, n)
	for v := range assign {
		assign[v] = rng.Intn(2) == 1
	}
	// gain(v): cut change if v flips.
	gain := func(v int) int {
		d := 0
		for _, w := range g.Neighbors(v) {
			if assign[v] == assign[w] {
				d++
			} else {
				d--
			}
		}
		return d
	}
	cut := 0
	for _, e := range g.Edges() {
		if assign[e.U] != assign[e.V] {
			cut++
		}
	}
	best := cut
	bestAssign := append([]bool(nil), assign...)

	tHot := float64(g.MaxDegree()) + 1
	tCold := 0.05
	for s := 0; s < sweeps; s++ {
		temp := tHot * math.Pow(tCold/tHot, float64(s)/float64(sweeps-1+1))
		for k := 0; k < n; k++ {
			v := rng.Intn(n)
			d := gain(v)
			if d >= 0 || rng.Float64() < math.Exp(float64(d)/temp) {
				assign[v] = !assign[v]
				cut += d
				if cut > best {
					best = cut
					copy(bestAssign, assign)
				}
			}
		}
	}

	// Polish the best configuration to a 1-flip local optimum.
	copy(assign, bestAssign)
	improved := true
	for improved {
		improved = false
		for v := 0; v < n; v++ {
			if d := gain(v); d > 0 {
				assign[v] = !assign[v]
				best += d
				improved = true
			}
		}
	}
	return best, assign
}
