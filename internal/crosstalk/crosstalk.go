// Package crosstalk implements the post-compilation mitigation the paper
// sketches in §VI: only a small subset of coupler pairs on real devices is
// strongly crosstalk-prone (Murali et al., ASPLOS'20, found 5 of 221 on IBM
// Poughkeepsie), and parallel two-qubit gates on those pairs should be
// serialized when the gate pulses are scheduled. The scheduler here
// re-times a compiled circuit's gates so that no two gates occupying a
// prone coupler pair share a time step, at the cost of extra depth only
// where needed.
package crosstalk

import (
	"repro/internal/circuit"
)

// edgeKey canonicalizes an undirected coupler.
func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// PronePairs is a set of unordered pairs of couplers that interfere when
// driven simultaneously.
type PronePairs struct {
	pairs map[[2][2]int]bool
}

// NewPronePairs returns an empty set.
func NewPronePairs() *PronePairs {
	return &PronePairs{pairs: make(map[[2][2]int]bool)}
}

// Add marks the coupler pair (a0,a1)–(b0,b1) as crosstalk-prone. Order of
// the couplers and of the endpoints within each coupler is irrelevant.
func (p *PronePairs) Add(a0, a1, b0, b1 int) {
	ka, kb := edgeKey(a0, a1), edgeKey(b0, b1)
	if kb[0] < ka[0] || (kb[0] == ka[0] && kb[1] < ka[1]) {
		ka, kb = kb, ka
	}
	p.pairs[[2][2]int{ka, kb}] = true
}

// Len returns the number of prone pairs.
func (p *PronePairs) Len() int { return len(p.pairs) }

// Prone reports whether the two couplers interfere.
func (p *PronePairs) Prone(a0, a1, b0, b1 int) bool {
	ka, kb := edgeKey(a0, a1), edgeKey(b0, b1)
	if kb[0] < ka[0] || (kb[0] == ka[0] && kb[1] < ka[1]) {
		ka, kb = kb, ka
	}
	return p.pairs[[2][2]int{ka, kb}]
}

// Schedule assigns each gate of the compiled circuit a time step using ASAP
// scheduling extended with the crosstalk constraint: a two-qubit gate may
// not share a step with another two-qubit gate whose coupler forms a prone
// pair with its own. It returns the per-gate step assignment (len =
// c.Len(); barriers get the step they synchronize to) and the resulting
// schedule depth.
func Schedule(c *circuit.Circuit, prone *PronePairs) (steps []int, depth int) {
	steps = make([]int, len(c.Gates))
	level := make([]int, c.NQubits)
	// twoQAt[t] lists the couplers of two-qubit gates scheduled at step t+1.
	var twoQAt [][][2]int

	place2q := func(q0, q1, earliest int) int {
		t := earliest
		for {
			conflict := false
			if prone != nil && t-1 < len(twoQAt) {
				for _, e := range twoQAt[t-1] {
					if prone.Prone(q0, q1, e[0], e[1]) {
						conflict = true
						break
					}
				}
			}
			if !conflict {
				break
			}
			t++
		}
		for len(twoQAt) < t {
			twoQAt = append(twoQAt, nil)
		}
		twoQAt[t-1] = append(twoQAt[t-1], edgeKey(q0, q1))
		return t
	}

	for i, g := range c.Gates {
		switch g.Arity() {
		case 0: // barrier: synchronize all qubits
			max := 0
			for _, l := range level {
				if l > max {
					max = l
				}
			}
			for q := range level {
				level[q] = max
			}
			steps[i] = max
		case 1:
			level[g.Q0]++
			steps[i] = level[g.Q0]
		case 2:
			earliest := level[g.Q0]
			if level[g.Q1] > earliest {
				earliest = level[g.Q1]
			}
			earliest++
			t := place2q(g.Q0, g.Q1, earliest)
			level[g.Q0], level[g.Q1] = t, t
			steps[i] = t
		}
		if steps[i] > depth {
			depth = steps[i]
		}
	}
	return steps, depth
}

// Depth returns the crosstalk-aware schedule depth of c.
func Depth(c *circuit.Circuit, prone *PronePairs) int {
	_, d := Schedule(c, prone)
	return d
}

// AdjacentCouplerPairs returns every pair of distinct couplers of the
// device coupling graph that share a qubit or are joined by an edge —
// the physically plausible candidates for crosstalk (spectator-qubit
// interference). Useful for building synthetic prone sets in experiments.
func AdjacentCouplerPairs(edges [][2]int, adjacency func(a, b int) bool) [][2][2]int {
	var out [][2][2]int
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := edges[i], edges[j]
			if sharesQubit(a, b) || coupled(a, b, adjacency) {
				out = append(out, [2][2]int{a, b})
			}
		}
	}
	return out
}

func sharesQubit(a, b [2]int) bool {
	return a[0] == b[0] || a[0] == b[1] || a[1] == b[0] || a[1] == b[1]
}

func coupled(a, b [2]int, adjacency func(x, y int) bool) bool {
	for _, x := range a {
		for _, y := range b {
			if adjacency(x, y) {
				return true
			}
		}
	}
	return false
}
