package crosstalk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

func TestPronePairsSetSemantics(t *testing.T) {
	p := NewPronePairs()
	p.Add(0, 1, 2, 3)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	// All orientations must hit.
	for _, q := range [][4]int{
		{0, 1, 2, 3}, {1, 0, 2, 3}, {0, 1, 3, 2}, {2, 3, 0, 1}, {3, 2, 1, 0},
	} {
		if !p.Prone(q[0], q[1], q[2], q[3]) {
			t.Errorf("Prone(%v) = false", q)
		}
	}
	if p.Prone(0, 1, 4, 5) {
		t.Error("unrelated pair reported prone")
	}
	// Duplicate insertion is idempotent.
	p.Add(3, 2, 1, 0)
	if p.Len() != 1 {
		t.Errorf("Len after duplicate = %d", p.Len())
	}
}

func TestScheduleNoProneMatchesASAP(t *testing.T) {
	c := circuit.New(4).Append(
		circuit.NewH(0),
		circuit.NewCNOT(0, 1),
		circuit.NewCNOT(2, 3),
		circuit.NewCNOT(1, 2),
	)
	if got := Depth(c, NewPronePairs()); got != c.Depth() {
		t.Errorf("no-prone depth %d, ASAP depth %d", got, c.Depth())
	}
	if got := Depth(c, nil); got != c.Depth() {
		t.Errorf("nil-prone depth %d, ASAP depth %d", got, c.Depth())
	}
}

func TestScheduleSerializesProneGates(t *testing.T) {
	// Two disjoint CNOTs that would run in parallel; marking their couplers
	// prone must push one a step later.
	c := circuit.New(4).Append(circuit.NewCNOT(0, 1), circuit.NewCNOT(2, 3))
	if c.Depth() != 1 {
		t.Fatal("test setup: expected parallel CNOTs")
	}
	p := NewPronePairs()
	p.Add(0, 1, 2, 3)
	steps, depth := Schedule(c, p)
	if depth != 2 {
		t.Errorf("prone depth = %d, want 2", depth)
	}
	if steps[0] == steps[1] {
		t.Errorf("prone gates share step %d", steps[0])
	}
}

func TestScheduleOnlyAffectedPairsPay(t *testing.T) {
	// Three disjoint CNOTs; only the first two are prone — the third stays
	// at step 1.
	c := circuit.New(6).Append(
		circuit.NewCNOT(0, 1),
		circuit.NewCNOT(2, 3),
		circuit.NewCNOT(4, 5),
	)
	p := NewPronePairs()
	p.Add(0, 1, 2, 3)
	steps, depth := Schedule(c, p)
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
	if steps[2] != 1 {
		t.Errorf("unaffected gate at step %d, want 1", steps[2])
	}
}

func TestScheduleBarrier(t *testing.T) {
	c := circuit.New(2).Append(circuit.NewH(0))
	c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.Barrier})
	c.Append(circuit.NewH(1))
	if got := Depth(c, nil); got != 2 {
		t.Errorf("barrier depth = %d, want 2", got)
	}
}

// Property: a crosstalk-aware schedule is always valid — qubits never
// double-booked in a step, prone couplers never concurrent, and depth is
// bounded between the ASAP depth and the fully-serial two-qubit count.
func TestScheduleValidityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := device.Grid(3, 3)
		g := graphs.ErdosRenyi(7, 0.4, rng)
		prob := &qaoa.Problem{G: g, MaxCut: 1}
		res, err := compile.Compile(prob,
			qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}},
			dev, compile.PresetIC.Options(rng))
		if err != nil {
			return false
		}
		c := res.Circuit
		// Random prone set over adjacent coupler pairs.
		var edges [][2]int
		for _, e := range dev.Coupling.Edges() {
			edges = append(edges, [2]int{e.U, e.V})
		}
		cands := AdjacentCouplerPairs(edges, dev.Connected)
		p := NewPronePairs()
		for _, pr := range cands {
			if rng.Float64() < 0.3 {
				p.Add(pr[0][0], pr[0][1], pr[1][0], pr[1][1])
			}
		}
		steps, depth := Schedule(c, p)
		if depth < c.Depth() {
			return false
		}
		// Validate step assignments.
		type slot struct{ step, qubit int }
		seen := make(map[slot]bool)
		byStep := make(map[int][][2]int)
		for i, gate := range c.Gates {
			if gate.Kind == circuit.Barrier {
				continue
			}
			for _, q := range gate.Qubits() {
				s := slot{steps[i], q}
				if seen[s] {
					return false // qubit double-booked
				}
				seen[s] = true
			}
			if gate.Arity() == 2 {
				byStep[steps[i]] = append(byStep[steps[i]], [2]int{gate.Q0, gate.Q1})
			}
		}
		for _, gs := range byStep {
			for i := 0; i < len(gs); i++ {
				for j := i + 1; j < len(gs); j++ {
					if p.Prone(gs[i][0], gs[i][1], gs[j][0], gs[j][1]) {
						return false // prone pair concurrent
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAdjacentCouplerPairs(t *testing.T) {
	// Path 0-1-2-3: couplers (0,1),(1,2),(2,3). (0,1)&(1,2) share qubit 1;
	// (1,2)&(2,3) share qubit 2; (0,1)&(2,3) joined by edge (1,2).
	dev := device.Linear(4)
	var edges [][2]int
	for _, e := range dev.Coupling.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	got := AdjacentCouplerPairs(edges, dev.Connected)
	if len(got) != 3 {
		t.Errorf("adjacent pairs = %d, want 3 (%v)", len(got), got)
	}
}
