// Package chaostest subjects the qaoad serve stack to combined failure
// modes — injected pass faults and panics, seeded device degradation,
// random client disconnects, deadline storms, concurrent calibration
// reloads — and asserts the robustness invariants hold: every response is
// a well-formed success or typed error, equal cache keys always carry
// byte-identical circuits, the metric registry stays clean, flights drain,
// and no goroutines leak. CI runs this package with -race.
package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/serve"
)

// chaosHarness is one fully-wired chaotic server: fault-injecting hook,
// healthy and degraded devices, aggressive breaker so every state is
// exercised within a short test.
func chaosHarness(t *testing.T, faults *faultinject.PassFaults) (*serve.Server, *httptest.Server, *obsv.Collector) {
	t.Helper()
	degraded, _, err := faultinject.Spec{Seed: 5, DeadQubits: 3, DropEdgeFrac: 0.1}.Apply(device.Falcon27())
	if err != nil {
		t.Fatal(err)
	}
	col := obsv.New()
	s := serve.New(serve.Config{
		Devices: map[string]*device.Device{
			"tokyo":           device.Tokyo20(),
			"melbourne":       device.Melbourne15(),
			"falcon-degraded": degraded,
		},
		Workers:         3,
		Queue:           4,
		DefaultDeadline: 10 * time.Second,
		CompileBudget:   10 * time.Second,
		Retries:         1,
		Backoff:         500 * time.Microsecond,
		Breaker: serve.BreakerConfig{
			Window: time.Second, MinRequests: 6, FailureRate: 0.6,
			Cooldown: 30 * time.Millisecond, HalfOpenProbes: 2,
		},
		Hook: faults.Hook(),
		Obs:  col,
	})
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	return s, ts, col
}

// chaosRequest builds a deterministic random compile document.
func chaosRequest(rng *rand.Rand) serve.CompileRequest {
	devices := []string{"tokyo", "melbourne", "falcon-degraded"}
	policies := []string{"NAIVE", "GreedyV", "QAIM", "IP", "IC", "VIC"}
	n := 4 + rng.Intn(8)
	seen := map[[2]int]bool{}
	var edges [][2]int
	for v := 0; v < n; v++ {
		e := [2]int{v, (v + 1) % n}
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		seen[e] = true
		edges = append(edges, e)
	}
	for c := 0; c < n/3; c++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return serve.CompileRequest{
		DeviceName: devices[rng.Intn(len(devices))],
		Circuit:    serve.CircuitDoc{N: n, Edges: edges},
		Config: serve.ConfigDoc{
			Policy: policies[rng.Intn(len(policies))],
			Seed:   int64(rng.Intn(32) + 1),
		},
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// baseline (plus slack for runtime helpers), failing after 10s. Retried
// because finished handlers and connections unwind asynchronously.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosStorm is the main harness: concurrent clients firing randomized
// requests while pass faults, panics, latency, short deadlines, client
// disconnects and calibration reloads all happen at once.
func TestChaosStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := &faultinject.PassFaults{ErrorEvery: 11, PanicEvery: 29, Latency: 300 * time.Microsecond}
	s, ts, col := chaosHarness(t, faults)

	const clients = 12
	const perClient = 10
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[int]int{}
		kinds    = map[string]int{}
		// byKey records every 200's circuit per cache key: equal keys MUST
		// carry byte-identical circuits, chaos or not.
		byKey = map[string]string{}
	)
	client := &http.Client{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				doc := chaosRequest(rng)
				mode := rng.Intn(6)
				switch mode {
				case 0: // deadline storm
					doc.Config.DeadlineMS = int64(1 + rng.Intn(15))
				case 1: // client disconnect mid-flight
				}
				body, err := json.Marshal(doc)
				if err != nil {
					t.Error(err)
					return
				}
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if mode == 1 {
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(rng.Intn(8)+1)*time.Millisecond)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				resp, err := client.Do(req)
				cancel()
				if err != nil {
					// Disconnected client: the server must absorb it; nothing
					// to assert on this response.
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					var ok serve.CompileResponse
					if err := json.Unmarshal(data, &ok); err != nil {
						t.Errorf("bad 200 body: %v", err)
						continue
					}
					if ok.Circuit == "" || ok.Depth <= 0 || len(ok.FinalLayout) != doc.Circuit.N {
						t.Errorf("partial success payload: depth=%d gates=%d layout=%d",
							ok.Depth, ok.Gates, len(ok.FinalLayout))
					}
					mu.Lock()
					if prev, seen := byKey[ok.CacheKey]; seen && prev != ok.Circuit {
						t.Errorf("cache corruption: key %.12s served two different circuits", ok.CacheKey)
					} else {
						byKey[ok.CacheKey] = ok.Circuit
					}
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout, http.StatusInternalServerError:
					var fail serve.ErrorResponse
					if err := json.Unmarshal(data, &fail); err != nil || fail.Kind == "" {
						t.Errorf("status %d with malformed error body: %s", resp.StatusCode, data)
					}
					mu.Lock()
					kinds[fail.Kind]++
					mu.Unlock()
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, data)
				}
			}
		}(c)
	}

	// Inspector scraper: GET /debug/requests mid-storm must always return a
	// well-formed page (no torn reads, no races with handlers mutating
	// records), in both JSON and text form. Runs until the storm ends.
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; ; i++ {
			select {
			case <-stopScrape:
				return
			case <-time.After(5 * time.Millisecond):
			}
			url := ts.URL + "/debug/requests"
			if i%3 == 2 {
				url += "?format=text"
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("inspector scrape: %v", err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("inspector scrape: status %d", resp.StatusCode)
				return
			}
			if i%3 == 2 {
				if !bytes.Contains(data, []byte("ACTIVE")) {
					t.Errorf("inspector text page malformed: %.200s", data)
				}
				continue
			}
			var page struct {
				Total  uint64                   `json:"total_requests"`
				Active []map[string]interface{} `json:"active"`
				Recent []map[string]interface{} `json:"recent"`
			}
			if err := json.Unmarshal(data, &page); err != nil {
				t.Errorf("inspector page not JSON: %v\n%.200s", err, data)
				return
			}
			if int(page.Total) < len(page.Active) {
				t.Errorf("inspector invariant broken: total %d < active %d", page.Total, len(page.Active))
			}
			for _, r := range page.Active {
				if r["id"] == "" || r["id"] == nil {
					t.Errorf("active record without id: %v", r)
				}
			}
		}
	}()

	// Calibration reloader: concurrent epoch bumps + cache invalidation
	// while the storm runs.
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		doc, err := device.Melbourne15().MarshalJSON()
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			time.Sleep(10 * time.Millisecond)
			resp, err := http.Post(ts.URL+"/v1/devices/melbourne/calibration", "application/json", bytes.NewReader(doc))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("calibration reload %d: status %d", i, resp.StatusCode)
			}
		}
	}()

	wg.Wait()
	<-reloadDone
	close(stopScrape)
	<-scrapeDone
	t.Logf("statuses: %v kinds: %v faults-injected-calls: %d", statuses, kinds, faults.Calls())

	// Every request the storm fired must have registered with the inspector.
	if clients*perClient > 0 {
		if _, recent := s.InspectorSnapshot(); len(recent) == 0 {
			t.Error("inspector saw no finished requests after the storm")
		}
	}

	// The storm must have actually exercised the machinery.
	if statuses[http.StatusOK] == 0 {
		t.Error("chaos produced zero successes — nothing was exercised")
	}
	if col.Counter(obsv.CntServeRequests) == 0 || col.Counter(obsv.CntServeCompiles) == 0 {
		t.Error("serve counters flat — storm did not reach the server")
	}
	// Every recorded metric name must be registered (the obsv gate).
	if bad := col.Snapshot().Unregistered(); len(bad) != 0 {
		t.Errorf("unregistered metric names: %v", bad)
	}
	// Shed accounting never under-counts: clients can miss a 429 (they
	// disconnected first) but can never observe more than the server shed.
	if observed := int64(statuses[http.StatusTooManyRequests]); observed > col.Counter(obsv.CntServeShed) {
		t.Errorf("clients saw %d 429s, server counted %d", observed, col.Counter(obsv.CntServeShed))
	}

	// After the storm the server still serves clean traffic and the cache
	// is intact: a fresh healthy request compiles (or hits) fine, twice,
	// identically. Faults stay armed (mutating them here would race with
	// detached flights still calling the hook), so retry through transient
	// failures and breaker cooldowns until the server recovers.
	sane := serve.CompileRequest{
		DeviceName: "tokyo",
		Circuit:    serve.CircuitDoc{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}},
		Config:     serve.ConfigDoc{Policy: "IC", Seed: 77},
	}
	saneBody, err := json.Marshal(sane)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	deadline := time.Now().Add(10 * time.Second)
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(saneBody))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var ok serve.CompileResponse
			if err := json.Unmarshal(data, &ok); err != nil {
				t.Fatal(err)
			}
			if first == "" {
				first = ok.Circuit
				continue // once more, for the identity check
			}
			if ok.Circuit != first || !ok.Cached {
				t.Error("post-chaos repeat compile not served identically from cache")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after chaos: status %d %s", resp.StatusCode, data)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Drain under a deadline, then everything must unwind.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	// No leaked inspector records: every request that registered must have
	// deregistered by the time the server drained.
	if n := s.ActiveRequests(); n != 0 {
		t.Errorf("inspector leaks %d active records after drain", n)
	}
	ts.Close()
	s.Close()
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	checkNoGoroutineLeak(t, baseline)
}

// TestDeadlineStormDrainsClean fires nothing but near-expired deadlines at
// slow compiles: every request must resolve to a typed timeout (or shed),
// the detached flights must finish server-side, and Drain must return
// without hitting its deadline.
func TestDeadlineStormDrainsClean(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := &faultinject.PassFaults{Latency: 5 * time.Millisecond}
	s, ts, col := chaosHarness(t, faults)

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + c)))
			for i := 0; i < 6; i++ {
				doc := chaosRequest(rng)
				doc.Config.DeadlineMS = 1
				body, err := json.Marshal(doc)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusGatewayTimeout, http.StatusTooManyRequests, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
	t.Logf("statuses: %v deadline-exceeded: %d", statuses, col.Counter(obsv.CntServeDeadlineExceeded))
	if col.Counter(obsv.CntServeDeadlineExceeded) == 0 {
		t.Error("no request timed out under a 1ms deadline storm — storm ineffective")
	}

	// Abandoned flights keep running detached; Drain must still converge
	// well inside its budget.
	start := time.Now()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Errorf("drain after deadline storm: %v", err)
	}
	if n := s.ActiveRequests(); n != 0 {
		t.Errorf("inspector leaks %d active records after deadline storm", n)
	}
	t.Logf("drained in %s", time.Since(start).Round(time.Millisecond))
	ts.Close()
	s.Close()
	http.DefaultClient.CloseIdleConnections()
	checkNoGoroutineLeak(t, baseline)
}

// TestDrainDeadlineAbortsStuckFlights wedges a compile inside a pass that
// ignores its context (a 3s uninterruptible sleep) and verifies an
// expiring drain returns within its grace period instead of hanging
// shutdown until the pass finishes. The wedged goroutine unwinds once its
// sleep ends and it observes the canceled lifecycle context, which the
// leak check confirms.
func TestDrainDeadlineAbortsStuckFlights(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := &faultinject.PassFaults{Latency: 3 * time.Second}
	s, ts, _ := chaosHarness(t, faults)

	body, err := json.Marshal(serve.CompileRequest{
		DeviceName: "tokyo",
		Circuit:    serve.CircuitDoc{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}},
		Config:     serve.ConfigDoc{Policy: "IC", Seed: 1, DeadlineMS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (flight wedged server-side)", resp.StatusCode)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Drain(dctx)
	if err == nil {
		t.Error("drain reported success despite a wedged flight")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("drain took %s; deadline+grace should have returned well under 1s", elapsed)
	}
	ts.Close()
	s.Close()
	http.DefaultClient.CloseIdleConnections()
	checkNoGoroutineLeak(t, baseline)
}
