package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// lockedBuffer is a concurrency-safe log sink: the handler goroutine may
// emit the wide-event line after the response is already on the wire, so
// the test polls Lines under the lock.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// waitForLines polls until the log sink holds at least n lines (the
// canonical line is emitted asynchronously with the response tail).
func waitForLines(t *testing.T, b *lockedBuffer, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lines := b.Lines(); len(lines) >= n {
			return lines
		}
		if time.Now().After(deadline) {
			t.Fatalf("log sink never reached %d lines: %q", n, b.Lines())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRequestIDJoinsAllFourSurfaces is the tentpole invariant: one request
// ID joins the response header, the canonical log line, the inspector
// record and the compile trace meta event.
func TestRequestIDJoinsAllFourSurfaces(t *testing.T) {
	logSink := &lockedBuffer{}
	s, ts, _ := newTestServer(t, Config{
		Workers:       2,
		Log:           obsv.NewLogger(logSink),
		TraceRequests: true,
	})

	body, err := json.Marshal(ringRequest("tokyo", 6, 3, "IC"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}

	// Surface 1: the response header.
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("response carries no X-Request-ID")
	}

	// Surface 2: the canonical log line.
	line := waitForLines(t, logSink, 1)[0]
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("log line is not one JSON object: %v\n%s", err, line)
	}
	if ev["msg"] != obsv.WideEventMsgRequest {
		t.Errorf("log msg = %v, want %q", ev["msg"], obsv.WideEventMsgRequest)
	}
	if ev[obsv.FieldReqID] != id {
		t.Errorf("log req_id = %v, header id = %s", ev[obsv.FieldReqID], id)
	}
	if ev[obsv.FieldOutcome] != "ok" {
		t.Errorf("log outcome = %v, want ok", ev[obsv.FieldOutcome])
	}

	// Surface 3: the inspector record.
	_, recent := s.InspectorSnapshot()
	if len(recent) != 1 {
		t.Fatalf("inspector holds %d recent records, want 1", len(recent))
	}
	rec := recent[0]
	if rec.ID != id {
		t.Errorf("inspector id = %s, header id = %s", rec.ID, id)
	}
	if rec.Outcome != "ok" || rec.HTTPStatus != http.StatusOK {
		t.Errorf("inspector record outcome=%s status=%d, want ok/200", rec.Outcome, rec.HTTPStatus)
	}

	// Surface 4: the trace meta event of the compile flight.
	if len(rec.Trace) == 0 {
		t.Fatal("TraceRequests produced no trace on the inspector record")
	}
	var meta *trace.MetaInfo
	for _, e := range rec.Trace {
		if e.Kind == trace.KindMeta {
			meta = e.Meta
			break
		}
	}
	if meta == nil {
		t.Fatal("trace has no meta event")
	}
	if meta.RequestID != id {
		t.Errorf("trace meta request_id = %s, header id = %s", meta.RequestID, id)
	}
}

func TestClientRequestIDHonoredInvalidReplaced(t *testing.T) {
	logSink := &lockedBuffer{}
	_, ts, _ := newTestServer(t, Config{Workers: 2, Log: obsv.NewLogger(logSink)})
	post := func(id string) *http.Response {
		t.Helper()
		body, err := json.Marshal(ringRequest("tokyo", 4, 9, "NAIVE"))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if got := post("client-abc.123_x").Header.Get("X-Request-ID"); got != "client-abc.123_x" {
		t.Errorf("well-formed client ID not honored: got %s", got)
	}
	for _, bad := range []string{"has space", "ünïcode", strings.Repeat("x", 65)} {
		got := post(bad).Header.Get("X-Request-ID")
		if got == bad || !strings.HasPrefix(got, "req-") {
			t.Errorf("malformed client ID %q not replaced: got %s", bad, got)
		}
	}
}

// TestServePresetNamesMatchCompilePresets pins the per-preset metric
// registry to the compiler's preset set: adding a preset without extending
// the registry builders fails here, not as an "other"-bucketed mystery
// series in production.
func TestServePresetNamesMatchCompilePresets(t *testing.T) {
	if len(obsv.ServePresetNames) != len(compile.Presets) {
		t.Fatalf("registry tracks %d presets, compiler has %d",
			len(obsv.ServePresetNames), len(compile.Presets))
	}
	for i, p := range compile.Presets {
		if obsv.ServePresetNames[i] != p.String() {
			t.Errorf("registry preset %d = %q, compiler = %q", i, obsv.ServePresetNames[i], p)
		}
	}
	// The name builders must resolve every real preset to a dedicated
	// series, never the "other" bucket.
	for _, p := range compile.Presets {
		if name := obsv.HistServePresetMS(p.String()); strings.Contains(name, "other") {
			t.Errorf("preset %s falls into the other bucket: %s", p, name)
		}
	}
}

// TestMetricsExposeHistogramsAndSLO drives requests through the full stack
// and asserts the shared-listener /metrics page carries the histogram
// exposition and the SLO burn-rate gauges.
func TestMetricsExposeHistogramsAndSLO(t *testing.T) {
	_, ts, col := newTestServer(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		status, _, _ := postCompile(t, ts.URL, ringRequest("tokyo", 5, 7, "IP"))
		if status != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, status)
		}
	}
	if got := col.Snapshot().Hist(obsv.HistServeRequestMS); got == nil || got.Count < 3 {
		t.Fatalf("request histogram missing or undercounted: %+v", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(data)
	for _, want := range []string{
		`qaoa_serve_request_ms_bucket{le="`,
		`qaoa_serve_request_ms_bucket{le="+Inf"}`,
		"qaoa_serve_request_ms_sum",
		"qaoa_serve_request_ms_count",
		`qaoa_slo_availability_burn_rate{preset="all"}`,
		`qaoa_slo_latency_burn_rate{preset="all"}`,
		`qaoa_slo_availability_burn_rate{preset="IP"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestInspectorRingAndEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2, RecentRequests: 2})
	// Three requests through a ring of two: the oldest must be evicted.
	var ids []string
	for i := 0; i < 3; i++ {
		body, err := json.Marshal(ringRequest("tokyo", 4, int64(20+i), "NAIVE"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ids = append(ids, resp.Header.Get("X-Request-ID"))
	}

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Total  uint64          `json:"total_requests"`
		Active []RequestRecord `json:"active"`
		Recent []RequestRecord `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Total != 3 || len(page.Active) != 0 || len(page.Recent) != 2 {
		t.Fatalf("page total=%d active=%d recent=%d, want 3/0/2",
			page.Total, len(page.Active), len(page.Recent))
	}
	// Newest first, oldest evicted.
	if page.Recent[0].ID != ids[2] || page.Recent[1].ID != ids[1] {
		t.Errorf("ring order %s,%s; want %s,%s", page.Recent[0].ID, page.Recent[1].ID, ids[2], ids[1])
	}

	text, err := http.Get(ts.URL + "/debug/requests?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(text.Body)
	text.Body.Close()
	for _, want := range []string{"ACTIVE", "RECENT", ids[2]} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text page missing %q:\n%s", want, body)
		}
	}
}

func TestInspectorUpdateAfterEndIsNoop(t *testing.T) {
	ins := newInspector(4)
	ins.begin(RequestRecord{ID: "a", started: time.Now()})
	ins.end("a", RequestRecord{ID: "a", Outcome: "ok"})
	ins.update("a", func(r *RequestRecord) { r.Outcome = "mutated" })
	_, recent := ins.snapshot(time.Now())
	if len(recent) != 1 || recent[0].Outcome != "ok" {
		t.Errorf("update after end mutated the finished record: %+v", recent)
	}
	if ins.activeCount() != 0 {
		t.Errorf("activeCount = %d after end", ins.activeCount())
	}
}
