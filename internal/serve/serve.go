// Package serve implements qaoad, the QAOA compilation-as-a-service
// daemon: an HTTP/JSON server compiling the device/circuit/config trio of
// the original QAOA-Compiler input into hardware-compliant circuits, built
// for sustained multi-tenant traffic. Robustness is the core of the
// design, not a wrapper:
//
//   - a compiled-circuit LRU cache keyed on (canonical graph hash, device
//     revision, preset, calibration epoch), with singleflight deduplication
//     so concurrent identical requests compile exactly once and every
//     waiter receives byte-identical circuits;
//   - admission control: a bounded worker pool plus a bounded wait queue;
//     anything beyond both is shed immediately with 429 + Retry-After;
//   - per-preset circuit breakers that trip on failure-rate spikes (e.g. a
//     degraded device making VIC fail persistently) and route traffic down
//     the paper's own degradation ladder VIC → IC → IP → NAIVE while
//     half-open probes test recovery;
//   - per-request deadlines bounding each client's wait, a server-side
//     compile budget bounding each flight, and the retry/backoff ladder of
//     compile.CompileSpecResilient absorbing transient pass faults;
//   - graceful shutdown: readiness flips before the listener stops, then
//     in-flight flights drain under a deadline, then the lifecycle context
//     is cancelled and aborts whatever remains.
//
// See DESIGN.md §10 for the full robustness model.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/qaoa"
	"repro/internal/qasm"
	"repro/internal/trace"
)

// Config parameterizes a Server. The zero value is usable: sensible
// defaults are applied by New.
type Config struct {
	// Devices are the named devices available to device_name requests.
	// Nil installs the standard evaluation set (tokyo, melbourne,
	// falcon27, grid6x6).
	Devices map[string]*device.Device
	// Workers bounds concurrent compile flights (default 4).
	Workers int
	// Queue bounds flights waiting for a worker; beyond it requests are
	// shed (default 4×Workers).
	Queue int
	// QueueTimeout bounds how long a flight may wait for a worker before
	// it is shed (default DefaultDeadline).
	QueueTimeout time.Duration
	// CacheSize is the compiled-circuit LRU capacity (default 1024).
	CacheSize int
	// DefaultDeadline is the client wait budget when a request carries no
	// deadline_ms (default 30s). MaxDeadline caps client-supplied
	// deadlines (default 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CompileBudget bounds one compile flight wall-clock, independent of
	// any client's patience (default 1m).
	CompileBudget time.Duration
	// Retries, Backoff and AttemptTimeout configure the server-side
	// retry policy handed to compile.CompileSpecResilient (defaults: 1
	// retry per rung, 5ms backoff, AttemptTimeout = CompileBudget/2).
	Retries        int
	Backoff        time.Duration
	AttemptTimeout time.Duration
	// Breaker tunes the per-preset circuit breakers.
	Breaker BreakerConfig
	// Obs receives the serve/* metrics; nil disables collection.
	Obs *obsv.Collector
	// Now is the breaker clock (default time.Now); injectable for tests.
	Now func() time.Time
	// Hook is threaded into every compilation — the fault-injection seam
	// the chaos harness uses. Nil in production.
	Hook compile.Hook
	// Progress optionally feeds the /healthz progress payload.
	Progress obsv.ProgressFunc
	// Log receives one canonical wide-event line per request (build with
	// obsv.NewLogger); nil disables request logging.
	Log *slog.Logger
	// RecentRequests sizes the /debug/requests finished-request ring
	// (default 64).
	RecentRequests int
	// TraceRequests attaches a decision-level tracer to every compile
	// flight and stores the events on the inspector record — expensive, for
	// debugging sessions, not sustained production traffic.
	TraceRequests bool
	// SLO configures the burn-rate gauges on /metrics (zero fields take the
	// obsv.SLOConfig defaults).
	SLO obsv.SLOConfig
}

func (c Config) withDefaults() Config {
	if c.Devices == nil {
		c.Devices = map[string]*device.Device{
			"tokyo":     device.Tokyo20(),
			"melbourne": device.Melbourne15(),
			"falcon27":  device.Falcon27(),
			"grid6x6":   device.Grid(6, 6),
		}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.CompileBudget <= 0 {
		c.CompileBudget = time.Minute
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = c.DefaultDeadline
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = c.CompileBudget / 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// errAllBreakersOpen is the whole-ladder rejection: every rung's breaker
// is open, so no preset can even be attempted.
var errAllBreakersOpen = errors.New("serve: circuit breaker open for every preset of the ladder")

// Server is the qaoad compile service. Construct with New, mount Handler
// on an HTTP server, and call MarkReady once warm-up (if any) completes.
type Server struct {
	cfg       Config
	obs       *obsv.Collector
	log       *slog.Logger
	devices   *registry
	cache     *lru[*outcome]
	skels     *lru[*skelEntry]
	flights   *flightGroup
	adm       *admission
	breakers  *breakerSet
	inspector *inspector
	mux       *http.ServeMux

	idBase string
	reqSeq atomic.Uint64

	ready    atomic.Bool
	draining atomic.Bool

	baseCtx  context.Context
	cancel   context.CancelFunc
	flightWG sync.WaitGroup
}

// New builds a Server. The server starts not-ready: run any warm-up you
// want, then call MarkReady; /readyz reports 503 until then (and again
// while draining).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		obs:       cfg.Obs,
		log:       cfg.Log,
		devices:   newRegistry(),
		cache:     newCache(cfg.CacheSize, cfg.Obs),
		skels:     newSkelCache(cfg.CacheSize, cfg.Obs),
		flights:   newFlightGroup(),
		adm:       newAdmission(cfg.Workers, cfg.Queue, cfg.Obs),
		breakers:  newBreakerSet(cfg.Breaker, cfg.Now, cfg.Obs),
		inspector: newInspector(cfg.RecentRequests),
		// The ID base makes request IDs unique across restarts of the same
		// service without any coordination; the per-process counter makes
		// them unique within one.
		idBase: fmt.Sprintf("req-%08x", uint32(time.Now().UnixNano())),
	}
	for name, dev := range cfg.Devices {
		s.devices.register(name, dev)
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	obsHandler := obsv.NewHandler(cfg.Obs, cfg.Progress, s.Readiness)
	obsHandler.SetSLO(cfg.SLO)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/devices/{name}/calibration", s.handleCalibration)
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /debug/requests", s.inspector.handle)
	s.mux.Handle("/", obsHandler)
	return s
}

// ActiveRequests reports how many compile requests are currently registered
// with the live inspector — zero once the server has drained.
func (s *Server) ActiveRequests() int { return s.inspector.activeCount() }

// InspectorSnapshot returns copies of the inspector's active and recent
// request records, as /debug/requests would serve them.
func (s *Server) InspectorSnapshot() (active, recent []RequestRecord) {
	return s.inspector.snapshot(time.Now())
}

// mintRequestID returns the request's ID: a well-formed client-supplied
// X-Request-ID is honored (so callers can join service logs to their own),
// anything else gets a fresh server-minted ID.
func (s *Server) mintRequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%06d", s.idBase, s.reqSeq.Add(1))
}

// validRequestID bounds what the service echoes back into headers, logs and
// inspector pages: 1..64 chars of [A-Za-z0-9._-].
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Handler returns the server's HTTP handler (compile API + observability
// endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// MarkReady flips /readyz to 200 and starts admitting compile requests.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Readiness implements the /readyz probe: not ready while warming up or
// draining.
func (s *Server) Readiness() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if !s.ready.Load() {
		return false, "warming up"
	}
	return true, ""
}

// drainGrace bounds how long Drain waits, after aborting stragglers, for
// their goroutines to observe the canceled lifecycle context and unwind.
const drainGrace = 250 * time.Millisecond

// Drain stops admitting new compile requests (readiness goes false, new
// compiles get 503) and waits for in-flight compile flights to finish,
// bounded by ctx. On ctx expiry the remaining flights are aborted through
// the lifecycle context and Drain returns the ctx error. A flight wedged
// in a pass that ignores its context cannot be aborted in-process; Drain
// gives it drainGrace to unwind and then returns anyway, on the premise
// that the caller is about to exit the process.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.flightWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.cancel() // abort stragglers; their waiters get the ctx error
	select {
	case <-done:
	case <-time.After(drainGrace):
	}
	return fmt.Errorf("serve: drain deadline: %w", ctx.Err())
}

// Close aborts every in-flight flight immediately. Safe after Drain.
func (s *Server) Close() { s.cancel() }

// CacheLen reports the number of cached compiled circuits.
func (s *Server) CacheLen() int { return s.cache.len() }

// SkeletonCacheLen reports the number of cached routed skeletons.
func (s *Server) SkeletonCacheLen() int { return s.skels.len() }

// RegisterDevice adds (or replaces) a named device at calibration epoch 0
// and invalidates any cache entries — compiled outcomes and routed
// skeletons — of the name's previous registration.
func (s *Server) RegisterDevice(name string, dev *device.Device) {
	s.devices.register(name, dev)
	s.cache.invalidateDevice(name)
	s.skels.invalidateDevice(name)
}

// ReloadCalibration installs a new calibration for a registered device,
// bumping its calibration epoch and invalidating exactly the cache entries
// compiled against that device, across both tiers. It returns the new
// epoch and how many entries were invalidated (outcomes plus skeletons).
func (s *Server) ReloadCalibration(name string, cal *device.Calibration) (epoch int64, invalidated int, err error) {
	epoch, err = s.devices.reload(name, cal)
	if err != nil {
		return 0, 0, err
	}
	invalidated = s.cache.invalidateDevice(name)
	invalidated += s.skels.invalidateDevice(name)
	s.obs.Inc(obsv.CntServeCalibReloads)
	return epoch, invalidated, nil
}

// reqState is the handler-local observable state of one request: the
// record-in-progress plus its start instant. It is owned by the handler
// goroutine; the inspector only ever receives copies.
type reqState struct {
	rec   RequestRecord
	start time.Time
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.obs.Inc(obsv.CntServeRequests)
	span := s.obs.StartSpan(obsv.SpanServeRequest)
	defer span.End()

	id := s.mintRequestID(r)
	w.Header().Set("X-Request-ID", id)
	start := time.Now()
	rs := &reqState{start: start, rec: RequestRecord{
		ID:        id,
		StartedAt: start.UTC().Format(time.RFC3339Nano),
		started:   start,
	}}
	s.inspector.begin(rs.rec)

	if ok, reason := s.Readiness(); !ok {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Status: "error", Kind: "draining", Error: "server not accepting work: " + reason})
		s.finishRequest(rs, http.StatusServiceUnavailable, "draining", reason)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyLen)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.obs.Inc(obsv.CntServeBadRequests)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "decoding request: " + err.Error()})
		s.finishRequest(rs, http.StatusBadRequest, "bad_request", "decoding request: "+err.Error())
		return
	}
	p, err := s.parseRequest(&req)
	if err != nil {
		s.obs.Inc(obsv.CntServeBadRequests)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		s.finishRequest(rs, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	rs.rec.Device = p.devName
	rs.rec.Preset = p.preset.String()
	s.obs.Inc(obsv.CntServePresetRequests(rs.rec.Preset))
	s.inspector.update(id, func(rec *RequestRecord) {
		rec.Device = rs.rec.Device
		rec.Preset = rs.rec.Preset
	})

	if out, ok := s.cache.get(p.key); ok {
		s.obs.Inc(obsv.CntServeOK)
		rs.rec.CacheHit = true
		rs.fillOutcome(out)
		writeJSON(w, http.StatusOK, buildResponse(p, out, true))
		s.finishRequest(rs, http.StatusOK, "ok", "")
		return
	}

	// Skeleton tier: a full-key miss with a cached routed skeleton for the
	// same angle-free structure is still a cache hit — binding the angles
	// costs microseconds, not a routing pass. The bound outcome fills the
	// full-key tier so the exact-angle repeat is a first-tier hit.
	if p.skelKey != "" {
		if se, ok := s.skels.get(p.skelKey); ok {
			out, err := s.bindOutcome(p, se)
			if err != nil {
				s.obs.Inc(obsv.CntServeErrors)
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Status: "error", Kind: "compile_failed", Error: err.Error()})
				s.finishRequest(rs, http.StatusInternalServerError, "compile_failed", err.Error())
				return
			}
			s.cache.put(p.key, p.deviceID, out)
			s.obs.Inc(obsv.CntServeOK)
			rs.rec.CacheHit = true
			rs.rec.SkeletonHit = true
			rs.fillOutcome(out)
			writeJSON(w, http.StatusOK, buildResponse(p, out, true))
			s.finishRequest(rs, http.StatusOK, "ok", "")
			return
		}
	}

	// Client wait budget: request deadline_ms, clamped, else the default.
	wait := s.cfg.DefaultDeadline
	if p.wait > 0 {
		wait = p.wait
	}
	if wait > s.cfg.MaxDeadline {
		wait = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	f, leader := s.flights.join(p.flightKey())
	if leader {
		s.flightWG.Add(1)
		go s.runFlight(p, f, id)
	} else {
		s.obs.Inc(obsv.CntServeSingleflightShared)
		rs.rec.Shared = true
	}

	select {
	case <-f.done:
		s.respondFlight(w, p, f, rs)
	case <-ctx.Done():
		if r.Context().Err() != nil {
			// The client went away; nobody is listening to this response.
			s.obs.Inc(obsv.CntServeClientGone)
			s.finishRequest(rs, 0, "client_gone", "")
			return
		}
		s.obs.Inc(obsv.CntServeDeadlineExceeded)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Status: "error", Kind: "deadline", Error: "deadline exceeded waiting for compilation (the flight continues server-side)"})
		s.finishRequest(rs, http.StatusGatewayTimeout, "deadline", "deadline exceeded waiting for compilation")
	}
}

// fillOutcome copies a compiled outcome's observable facts onto the request
// record.
func (rs *reqState) fillOutcome(out *outcome) {
	rs.rec.PresetEffective = out.effective
	rs.rec.Attempts = out.attempts
	rs.rec.FallbackDepth = out.fallbackDepth
	rs.rec.MapMS = durMS(out.mapTime)
	rs.rec.OrderMS = durMS(out.orderTime)
	rs.rec.RouteMS = durMS(out.routeTime)
	rs.rec.Swaps = out.swaps
	rs.rec.Depth = out.depth
	rs.rec.Gates = out.gates
	rs.rec.Trace = out.trace
}

// finishRequest closes out one request's observability: final inspector
// record, latency histograms, per-preset availability accounting, and the
// canonical wide-event log line. Called exactly once per request, after the
// response was written.
func (s *Server) finishRequest(rs *reqState, status int, outcome, errMsg string) {
	rec := &rs.rec
	rec.DurationMS = durMS(time.Since(rs.start))
	rec.Outcome = outcome
	rec.HTTPStatus = status
	rec.Err = errMsg
	s.inspector.end(rec.ID, rs.rec)

	s.obs.Observe(obsv.HistServeRequestMS, rec.DurationMS)
	if rec.Preset != "" {
		s.obs.Observe(obsv.HistServePresetMS(rec.Preset), rec.DurationMS)
		if outcome == "compile_failed" {
			s.obs.Inc(obsv.CntServePresetErrors(rec.Preset))
		}
	}
	if outcome == "ok" {
		if rec.CacheHit {
			s.obs.Observe(obsv.HistServeRequestCachedMS, rec.DurationMS)
		} else {
			s.obs.Observe(obsv.HistServeRequestUncachedMS, rec.DurationMS)
		}
	}

	if s.log == nil {
		return
	}
	ev := (&obsv.WideEvent{}).
		Str(obsv.FieldReqID, rec.ID).
		Str(obsv.FieldDevice, rec.Device).
		Str(obsv.FieldPreset, rec.Preset).
		Str(obsv.FieldPresetUsed, rec.PresetEffective).
		Bool(obsv.FieldCacheHit, rec.CacheHit).
		Bool(obsv.FieldSkeletonHit, rec.SkeletonHit).
		Bool(obsv.FieldShared, rec.Shared).
		Float(obsv.FieldQueueWaitMS, rec.QueueWaitMS).
		Str(obsv.FieldBreakerState, rec.Breaker).
		Int(obsv.FieldFallbackDepth, int64(rec.FallbackDepth)).
		Int(obsv.FieldAttempts, int64(rec.Attempts)).
		Float(obsv.FieldMapMS, rec.MapMS).
		Float(obsv.FieldOrderMS, rec.OrderMS).
		Float(obsv.FieldRouteMS, rec.RouteMS).
		Float(obsv.FieldDurationMS, rec.DurationMS).
		Str(obsv.FieldOutcome, rec.Outcome).
		Int(obsv.FieldHTTPStatus, int64(rec.HTTPStatus)).
		Int(obsv.FieldSwaps, int64(rec.Swaps)).
		Int(obsv.FieldDepth, int64(rec.Depth)).
		Int(obsv.FieldGates, int64(rec.Gates))
	if rec.Err != "" {
		ev.Str(obsv.FieldErr, rec.Err)
	}
	ev.Emit(s.log, obsv.WideEventMsgRequest)
}

// respondFlight translates a finished flight into this waiter's HTTP
// response. Counters are per response, so shed/error accounting matches
// what clients observed exactly.
func (s *Server) respondFlight(w http.ResponseWriter, p *parsedRequest, f *flight, rs *reqState) {
	rs.rec.QueueWaitMS = durMS(f.queueWait)
	rs.rec.Breaker = f.breaker
	switch {
	case f.err == nil:
		out := f.out
		if out == nil && f.skel != nil {
			// Skeleton flight: this waiter binds its own angles — possibly
			// different from every other waiter's — and caches the bound
			// outcome under its own full key.
			var err error
			out, err = s.bindOutcome(p, f.skel)
			if err != nil {
				s.obs.Inc(obsv.CntServeErrors)
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Status: "error", Kind: "compile_failed", Error: err.Error()})
				s.finishRequest(rs, http.StatusInternalServerError, "compile_failed", err.Error())
				return
			}
			s.cache.put(p.key, p.deviceID, out)
		}
		s.obs.Inc(obsv.CntServeOK)
		rs.fillOutcome(out)
		writeJSON(w, http.StatusOK, buildResponse(p, out, false))
		s.finishRequest(rs, http.StatusOK, "ok", "")
	case errors.Is(f.err, errShed):
		s.obs.Inc(obsv.CntServeShed)
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Status: "error", Kind: "shed", Error: "compile queue full"})
		s.finishRequest(rs, http.StatusTooManyRequests, "shed", f.err.Error())
	case errors.Is(f.err, errAllBreakersOpen):
		s.obs.Inc(obsv.CntServeBreakerRejected)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Status: "error", Kind: "breaker_open", Error: f.err.Error()})
		s.finishRequest(rs, http.StatusServiceUnavailable, "breaker_open", f.err.Error())
	case errors.Is(f.err, context.DeadlineExceeded), errors.Is(f.err, context.Canceled):
		s.obs.Inc(obsv.CntServeDeadlineExceeded)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Status: "error", Kind: "deadline", Error: f.err.Error()})
		s.finishRequest(rs, http.StatusGatewayTimeout, "deadline", f.err.Error())
	default:
		s.obs.Inc(obsv.CntServeErrors)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Status: "error", Kind: "compile_failed", Error: f.err.Error()})
		s.finishRequest(rs, http.StatusInternalServerError, "compile_failed", f.err.Error())
	}
}

// runFlight is the singleflight leader: admission, breaker routing, the
// resilient compile itself, cache fill, waiter wake-up. It runs detached
// from any single request's context — clients bound their own wait, never
// each other's compile — under the server lifecycle context and compile
// budget. reqID is the ID of the request that opened the flight; it is
// threaded through the compile context so the trace stream's meta event
// joins the flight back to that request (waiters of the same flight share
// the leader's compilation and therefore its trace).
//
// Skeleton-eligible flights (every non-optimize request) compile the
// angle-free routed skeleton and publish it on the flight; each waiter then
// binds its own angles in respondFlight. Optimize flights keep the concrete
// compile and publish the finished outcome.
func (s *Server) runFlight(p *parsedRequest, f *flight, reqID string) {
	defer s.flightWG.Done()
	fkey := p.flightKey()

	qstart := time.Now()
	qctx, qcancel := context.WithTimeout(s.baseCtx, s.cfg.QueueTimeout)
	release, err := s.adm.acquire(qctx)
	qcancel()
	f.queueWait = time.Since(qstart)
	s.obs.Observe(obsv.HistServeQueueWaitMS, durMS(f.queueWait))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Waiting a full queue timeout without reaching a worker is
			// overload, same as an instantly full queue.
			err = errShed
		}
		s.flights.finish(fkey, f, nil, err)
		return
	}
	defer release()

	start, rerouted, ok := s.breakers.route(p.preset)
	if state, _, _ := s.breakers.byPreset[p.preset].snapshot(); state != "" {
		f.breaker = state
	}
	if !ok {
		s.flights.finish(fkey, f, nil, errAllBreakersOpen)
		return
	}

	s.obs.Inc(obsv.CntServeCompiles)
	cspan := s.obs.StartSpan(obsv.SpanServeCompile)
	cctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.CompileBudget)
	defer cancel()
	cctx = obsv.WithRequestID(cctx, reqID)
	var tr *trace.Tracer
	if s.cfg.TraceRequests {
		tr = trace.New()
	}
	fo := compile.FallbackOptions{
		Retries:        s.cfg.Retries,
		Backoff:        s.cfg.Backoff,
		AttemptTimeout: s.cfg.AttemptTimeout,
		Seed:           p.seed,
		PackingLimit:   p.packing,
		Optimize:       p.optimize,
		Hook:           s.cfg.Hook,
		Obs:            s.obs,
		Trace:          tr,
	}
	var out *outcome
	var fb *compile.FallbackInfo
	if p.skelKey != "" {
		var sk *compile.Skeleton
		sk, err = compile.CompileSkeletonResilient(cctx, p.paramSpec, p.dev, start, fo)
		if err == nil {
			fb = sk.Fallback()
			f.skel = &skelEntry{skel: sk, start: start, rerouted: rerouted, trace: tr.Events()}
			s.skels.put(p.skelKey, p.deviceID, f.skel)
		}
	} else {
		var res *compile.Result
		res, err = compile.CompileSpecResilient(cctx, p.spec, p.dev, start, fo)
		if err == nil {
			fb = res.Fallback
			out = buildOutcome(p, res, start, rerouted, tr.Events())
			s.cache.put(p.key, p.deviceID, out)
		}
	}
	cspan.End()

	s.breakers.observe(fb, attemptsOf(fb, err, start))
	if err != nil {
		s.flights.finish(fkey, f, nil, err)
		return
	}
	s.flights.finish(fkey, f, out, nil)
}

// bindBufs pools bind buffers across requests: a bind writes the angles
// into a reused preallocated gate buffer, and buildOutcome copies
// everything it keeps, so the buffer is safe to recycle as soon as the
// outcome is built.
var bindBufs = sync.Pool{New: func() any { return new(compile.BindBuffer) }}

// bindOutcome materializes one request's angles over a cached routed
// skeleton and freezes the result into an immutable outcome — the
// skeleton-tier equivalent of a compile flight, minus all the routing work.
func (s *Server) bindOutcome(p *parsedRequest, se *skelEntry) (*outcome, error) {
	buf := bindBufs.Get().(*compile.BindBuffer)
	defer bindBufs.Put(buf)
	res, err := se.skel.BindTo(buf, qaoa.Params{Gamma: p.gamma, Beta: p.beta})
	if err != nil {
		return nil, err
	}
	//lint:allow poolsafe: buildOutcome deep-copies everything it keeps (strings, fresh layout slices); nothing in the outcome aliases buf — TestBindOutcomeCopiesPooledBuffer guards this
	return buildOutcome(p, res, se.start, se.rerouted, se.trace), nil
}

// attemptsOf extracts the failed-attempt list from a compile's fallback
// info or error so every failure is charged to the preset that produced
// it. A failure that carries no attempt breakdown (e.g. a deadline abort
// before any rung finished) is charged to the starting rung.
func attemptsOf(fb *compile.FallbackInfo, err error, start compile.Preset) []compile.Attempt {
	if fb != nil {
		return fb.Attempts
	}
	var ladderErr *compile.LadderError
	if errors.As(err, &ladderErr) {
		return ladderErr.Attempts
	}
	if err != nil {
		return []compile.Attempt{{Preset: start, Err: err.Error()}}
	}
	return nil
}

// buildOutcome freezes a compile result into the immutable cached
// artifact.
func buildOutcome(p *parsedRequest, res *compile.Result, start compile.Preset, rerouted bool, trEvents []trace.Event) *outcome {
	out := &outcome{
		circuitText:   res.Circuit.String(),
		qasm:          qasm.Export(res.Native),
		swaps:         res.SwapCount,
		depth:         res.Depth,
		gates:         res.GateCount,
		initial:       layoutSlice(res.Initial),
		final:         layoutSlice(res.Final),
		requested:     p.preset.String(),
		effective:     res.Fallback.Effective.String(),
		deviceName:    p.devName,
		deviceID:      p.deviceID,
		attempts:      len(res.Fallback.Attempts),
		fallbackDepth: fallbackDepth(res.Fallback.Attempts),
		mapTime:       res.MapTime,
		orderTime:     res.OrderTime,
		routeTime:     res.RouteTime,
		compileTime:   res.CompileTime,
		trace:         trEvents,
	}
	out.degraded = rerouted || res.Fallback.Degraded
	switch {
	case res.Fallback.Degraded && res.Fallback.Reason != "":
		out.degradedWhy = res.Fallback.Reason
	case rerouted:
		out.degradedWhy = fmt.Sprintf("circuit breaker open for %s; started at %s", p.preset, start)
	}
	return out
}

// fallbackDepth counts how many rungs of the degradation ladder the
// compilation descended: the number of distinct presets attempted beyond
// the first (0 = no fallback).
func fallbackDepth(attempts []compile.Attempt) int {
	seen := make(map[compile.Preset]bool, len(attempts))
	for _, a := range attempts {
		seen[a.Preset] = true
	}
	if len(seen) == 0 {
		return 0
	}
	return len(seen) - 1
}

func layoutSlice(l interface {
	NLogical() int
	Phys(int) int
}) []int {
	out := make([]int, l.NLogical())
	for q := range out {
		out[q] = l.Phys(q)
	}
	return out
}

func buildResponse(p *parsedRequest, out *outcome, cached bool) CompileResponse {
	resp := CompileResponse{
		Status:          "ok",
		CacheKey:        p.key,
		Cached:          cached,
		Device:          out.deviceName,
		PresetRequested: out.requested,
		PresetEffective: out.effective,
		Degraded:        out.degraded,
		DegradedReason:  out.degradedWhy,
		Attempts:        out.attempts,
		Swaps:           out.swaps,
		Depth:           out.depth,
		Gates:           out.gates,
		InitialLayout:   out.initial,
		FinalLayout:     out.final,
		Circuit:         out.circuitText,
	}
	if p.emitQASM {
		resp.QASM = out.qasm
	}
	return resp
}

// handleCalibration accepts a full device document (the same schema as an
// inline request device) and installs its calibration on the named
// registered device, bumping the calibration epoch. The document's
// coupling map must match the registered device.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyLen)
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "decoding calibration document: " + err.Error()})
		return
	}
	doc, err := device.FromJSON(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	cur, _, err := s.devices.get(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	if doc.Calib == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "calibration document carries no calibration section"})
		return
	}
	if doc.NQubits() != cur.NQubits() {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request",
			Error: fmt.Sprintf("calibration document has %d qubits, device %s has %d", doc.NQubits(), name, cur.NQubits())})
		return
	}
	epoch, invalidated, err := s.ReloadCalibration(name, doc.Calib)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status      string `json:"status"`
		Device      string `json:"device"`
		Epoch       int64  `json:"epoch"`
		Invalidated int    `json:"invalidated"`
	}{"ok", name, epoch, invalidated})
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	type devInfo struct {
		Name   string `json:"name"`
		Qubits int    `json:"qubits"`
		Epoch  int64  `json:"epoch"`
		Calib  bool   `json:"calibrated"`
	}
	var out []devInfo
	for _, name := range s.devices.names() {
		dev, epoch, err := s.devices.get(name)
		if err != nil {
			continue
		}
		out = append(out, devInfo{Name: name, Qubits: dev.NQubits(), Epoch: epoch, Calib: dev.Calib != nil})
	}
	writeJSON(w, http.StatusOK, struct {
		Devices []devInfo `json:"devices"`
	}{out})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	type breakerInfo struct {
		State     string `json:"state"`
		Successes int    `json:"successes"`
		Failures  int    `json:"failures"`
	}
	breakers := make(map[string]breakerInfo, len(compile.Presets))
	for _, p := range compile.Presets {
		state, succ, fail := s.breakers.byPreset[p].snapshot()
		breakers[p.String()] = breakerInfo{State: state, Successes: succ, Failures: fail}
	}
	ready, reason := s.Readiness()
	writeJSON(w, http.StatusOK, struct {
		Ready       bool                   `json:"ready"`
		Reason      string                 `json:"reason,omitempty"`
		CacheLen    int                    `json:"cache_entries"`
		SkelLen     int                    `json:"skeleton_entries"`
		QueueDepth  int                    `json:"queue_depth"`
		Breakers    map[string]breakerInfo `json:"breakers"`
		DeviceNames []string               `json:"devices"`
	}{ready, reason, s.cache.len(), s.skels.len(), s.adm.queueDepth(), breakers, s.devices.names()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
