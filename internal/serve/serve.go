// Package serve implements qaoad, the QAOA compilation-as-a-service
// daemon: an HTTP/JSON server compiling the device/circuit/config trio of
// the original QAOA-Compiler input into hardware-compliant circuits, built
// for sustained multi-tenant traffic. Robustness is the core of the
// design, not a wrapper:
//
//   - a compiled-circuit LRU cache keyed on (canonical graph hash, device
//     revision, preset, calibration epoch), with singleflight deduplication
//     so concurrent identical requests compile exactly once and every
//     waiter receives byte-identical circuits;
//   - admission control: a bounded worker pool plus a bounded wait queue;
//     anything beyond both is shed immediately with 429 + Retry-After;
//   - per-preset circuit breakers that trip on failure-rate spikes (e.g. a
//     degraded device making VIC fail persistently) and route traffic down
//     the paper's own degradation ladder VIC → IC → IP → NAIVE while
//     half-open probes test recovery;
//   - per-request deadlines bounding each client's wait, a server-side
//     compile budget bounding each flight, and the retry/backoff ladder of
//     compile.CompileSpecResilient absorbing transient pass faults;
//   - graceful shutdown: readiness flips before the listener stops, then
//     in-flight flights drain under a deadline, then the lifecycle context
//     is cancelled and aborts whatever remains.
//
// See DESIGN.md §10 for the full robustness model.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/qasm"
)

// Config parameterizes a Server. The zero value is usable: sensible
// defaults are applied by New.
type Config struct {
	// Devices are the named devices available to device_name requests.
	// Nil installs the standard evaluation set (tokyo, melbourne,
	// falcon27, grid6x6).
	Devices map[string]*device.Device
	// Workers bounds concurrent compile flights (default 4).
	Workers int
	// Queue bounds flights waiting for a worker; beyond it requests are
	// shed (default 4×Workers).
	Queue int
	// QueueTimeout bounds how long a flight may wait for a worker before
	// it is shed (default DefaultDeadline).
	QueueTimeout time.Duration
	// CacheSize is the compiled-circuit LRU capacity (default 1024).
	CacheSize int
	// DefaultDeadline is the client wait budget when a request carries no
	// deadline_ms (default 30s). MaxDeadline caps client-supplied
	// deadlines (default 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CompileBudget bounds one compile flight wall-clock, independent of
	// any client's patience (default 1m).
	CompileBudget time.Duration
	// Retries, Backoff and AttemptTimeout configure the server-side
	// retry policy handed to compile.CompileSpecResilient (defaults: 1
	// retry per rung, 5ms backoff, AttemptTimeout = CompileBudget/2).
	Retries        int
	Backoff        time.Duration
	AttemptTimeout time.Duration
	// Breaker tunes the per-preset circuit breakers.
	Breaker BreakerConfig
	// Obs receives the serve/* metrics; nil disables collection.
	Obs *obsv.Collector
	// Now is the breaker clock (default time.Now); injectable for tests.
	Now func() time.Time
	// Hook is threaded into every compilation — the fault-injection seam
	// the chaos harness uses. Nil in production.
	Hook compile.Hook
	// Progress optionally feeds the /healthz progress payload.
	Progress obsv.ProgressFunc
}

func (c Config) withDefaults() Config {
	if c.Devices == nil {
		c.Devices = map[string]*device.Device{
			"tokyo":     device.Tokyo20(),
			"melbourne": device.Melbourne15(),
			"falcon27":  device.Falcon27(),
			"grid6x6":   device.Grid(6, 6),
		}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.CompileBudget <= 0 {
		c.CompileBudget = time.Minute
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = c.DefaultDeadline
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = c.CompileBudget / 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// errAllBreakersOpen is the whole-ladder rejection: every rung's breaker
// is open, so no preset can even be attempted.
var errAllBreakersOpen = errors.New("serve: circuit breaker open for every preset of the ladder")

// Server is the qaoad compile service. Construct with New, mount Handler
// on an HTTP server, and call MarkReady once warm-up (if any) completes.
type Server struct {
	cfg      Config
	obs      *obsv.Collector
	devices  *registry
	cache    *cache
	flights  *flightGroup
	adm      *admission
	breakers *breakerSet
	mux      *http.ServeMux

	ready    atomic.Bool
	draining atomic.Bool

	baseCtx  context.Context
	cancel   context.CancelFunc
	flightWG sync.WaitGroup
}

// New builds a Server. The server starts not-ready: run any warm-up you
// want, then call MarkReady; /readyz reports 503 until then (and again
// while draining).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		devices:  newRegistry(),
		cache:    newCache(cfg.CacheSize, cfg.Obs),
		flights:  newFlightGroup(),
		adm:      newAdmission(cfg.Workers, cfg.Queue, cfg.Obs),
		breakers: newBreakerSet(cfg.Breaker, cfg.Now, cfg.Obs),
	}
	for name, dev := range cfg.Devices {
		s.devices.register(name, dev)
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())

	obsHandler := obsv.NewHandler(cfg.Obs, cfg.Progress, s.Readiness)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/devices/{name}/calibration", s.handleCalibration)
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.Handle("/", obsHandler)
	return s
}

// Handler returns the server's HTTP handler (compile API + observability
// endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// MarkReady flips /readyz to 200 and starts admitting compile requests.
func (s *Server) MarkReady() { s.ready.Store(true) }

// Readiness implements the /readyz probe: not ready while warming up or
// draining.
func (s *Server) Readiness() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if !s.ready.Load() {
		return false, "warming up"
	}
	return true, ""
}

// drainGrace bounds how long Drain waits, after aborting stragglers, for
// their goroutines to observe the canceled lifecycle context and unwind.
const drainGrace = 250 * time.Millisecond

// Drain stops admitting new compile requests (readiness goes false, new
// compiles get 503) and waits for in-flight compile flights to finish,
// bounded by ctx. On ctx expiry the remaining flights are aborted through
// the lifecycle context and Drain returns the ctx error. A flight wedged
// in a pass that ignores its context cannot be aborted in-process; Drain
// gives it drainGrace to unwind and then returns anyway, on the premise
// that the caller is about to exit the process.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.flightWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.cancel() // abort stragglers; their waiters get the ctx error
	select {
	case <-done:
	case <-time.After(drainGrace):
	}
	return fmt.Errorf("serve: drain deadline: %w", ctx.Err())
}

// Close aborts every in-flight flight immediately. Safe after Drain.
func (s *Server) Close() { s.cancel() }

// CacheLen reports the number of cached compiled circuits.
func (s *Server) CacheLen() int { return s.cache.len() }

// RegisterDevice adds (or replaces) a named device at calibration epoch 0
// and invalidates any cache entries of the name's previous registration.
func (s *Server) RegisterDevice(name string, dev *device.Device) {
	s.devices.register(name, dev)
	s.cache.invalidateDevice(name)
}

// ReloadCalibration installs a new calibration for a registered device,
// bumping its calibration epoch and invalidating exactly the cache entries
// compiled against that device. It returns the new epoch and how many
// entries were invalidated.
func (s *Server) ReloadCalibration(name string, cal *device.Calibration) (epoch int64, invalidated int, err error) {
	epoch, err = s.devices.reload(name, cal)
	if err != nil {
		return 0, 0, err
	}
	invalidated = s.cache.invalidateDevice(name)
	s.obs.Inc(obsv.CntServeCalibReloads)
	return epoch, invalidated, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.obs.Inc(obsv.CntServeRequests)
	span := s.obs.StartSpan(obsv.SpanServeRequest)
	defer span.End()

	if ok, reason := s.Readiness(); !ok {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Status: "error", Kind: "draining", Error: "server not accepting work: " + reason})
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyLen)
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.obs.Inc(obsv.CntServeBadRequests)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "decoding request: " + err.Error()})
		return
	}
	p, err := s.parseRequest(&req)
	if err != nil {
		s.obs.Inc(obsv.CntServeBadRequests)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}

	if out, ok := s.cache.get(p.key); ok {
		s.obs.Inc(obsv.CntServeOK)
		writeJSON(w, http.StatusOK, buildResponse(p, out, true))
		return
	}

	// Client wait budget: request deadline_ms, clamped, else the default.
	wait := s.cfg.DefaultDeadline
	if p.wait > 0 {
		wait = p.wait
	}
	if wait > s.cfg.MaxDeadline {
		wait = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()

	f, leader := s.flights.join(p.key)
	if leader {
		s.flightWG.Add(1)
		go s.runFlight(p, f)
	} else {
		s.obs.Inc(obsv.CntServeSingleflightShared)
	}

	select {
	case <-f.done:
		s.respondFlight(w, p, f)
	case <-ctx.Done():
		if r.Context().Err() != nil {
			// The client went away; nobody is listening to this response.
			s.obs.Inc(obsv.CntServeClientGone)
			return
		}
		s.obs.Inc(obsv.CntServeDeadlineExceeded)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Status: "error", Kind: "deadline", Error: "deadline exceeded waiting for compilation (the flight continues server-side)"})
	}
}

// respondFlight translates a finished flight into this waiter's HTTP
// response. Counters are per response, so shed/error accounting matches
// what clients observed exactly.
func (s *Server) respondFlight(w http.ResponseWriter, p *parsedRequest, f *flight) {
	switch {
	case f.err == nil:
		s.obs.Inc(obsv.CntServeOK)
		writeJSON(w, http.StatusOK, buildResponse(p, f.out, false))
	case errors.Is(f.err, errShed):
		s.obs.Inc(obsv.CntServeShed)
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Status: "error", Kind: "shed", Error: "compile queue full"})
	case errors.Is(f.err, errAllBreakersOpen):
		s.obs.Inc(obsv.CntServeBreakerRejected)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Status: "error", Kind: "breaker_open", Error: f.err.Error()})
	case errors.Is(f.err, context.DeadlineExceeded), errors.Is(f.err, context.Canceled):
		s.obs.Inc(obsv.CntServeDeadlineExceeded)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Status: "error", Kind: "deadline", Error: f.err.Error()})
	default:
		s.obs.Inc(obsv.CntServeErrors)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Status: "error", Kind: "compile_failed", Error: f.err.Error()})
	}
}

// runFlight is the singleflight leader: admission, breaker routing, the
// resilient compile itself, cache fill, waiter wake-up. It runs detached
// from any single request's context — clients bound their own wait, never
// each other's compile — under the server lifecycle context and compile
// budget.
func (s *Server) runFlight(p *parsedRequest, f *flight) {
	defer s.flightWG.Done()

	qctx, qcancel := context.WithTimeout(s.baseCtx, s.cfg.QueueTimeout)
	release, err := s.adm.acquire(qctx)
	qcancel()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Waiting a full queue timeout without reaching a worker is
			// overload, same as an instantly full queue.
			err = errShed
		}
		s.flights.finish(p.key, f, nil, err)
		return
	}
	defer release()

	start, rerouted, ok := s.breakers.route(p.preset)
	if !ok {
		s.flights.finish(p.key, f, nil, errAllBreakersOpen)
		return
	}

	s.obs.Inc(obsv.CntServeCompiles)
	cspan := s.obs.StartSpan(obsv.SpanServeCompile)
	cctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.CompileBudget)
	defer cancel()
	fo := compile.FallbackOptions{
		Retries:        s.cfg.Retries,
		Backoff:        s.cfg.Backoff,
		AttemptTimeout: s.cfg.AttemptTimeout,
		Seed:           p.seed,
		PackingLimit:   p.packing,
		Optimize:       p.optimize,
		Hook:           s.cfg.Hook,
		Obs:            s.obs,
	}
	res, err := compile.CompileSpecResilient(cctx, p.spec, p.dev, start, fo)
	cspan.End()

	s.breakers.observe(res, attemptsOf(res, err, start))
	if err != nil {
		s.flights.finish(p.key, f, nil, err)
		return
	}
	out := buildOutcome(p, res, start, rerouted)
	s.cache.put(p.key, p.deviceID, out)
	s.flights.finish(p.key, f, out, nil)
}

// attemptsOf extracts the failed-attempt list from a compile result or
// error so every failure is charged to the preset that produced it. A
// failure that carries no attempt breakdown (e.g. a deadline abort before
// any rung finished) is charged to the starting rung.
func attemptsOf(res *compile.Result, err error, start compile.Preset) []compile.Attempt {
	if res != nil && res.Fallback != nil {
		return res.Fallback.Attempts
	}
	var ladderErr *compile.LadderError
	if errors.As(err, &ladderErr) {
		return ladderErr.Attempts
	}
	if err != nil {
		return []compile.Attempt{{Preset: start, Err: err.Error()}}
	}
	return nil
}

// buildOutcome freezes a compile result into the immutable cached
// artifact.
func buildOutcome(p *parsedRequest, res *compile.Result, start compile.Preset, rerouted bool) *outcome {
	out := &outcome{
		circuitText: res.Circuit.String(),
		qasm:        qasm.Export(res.Native),
		swaps:       res.SwapCount,
		depth:       res.Depth,
		gates:       res.GateCount,
		initial:     layoutSlice(res.Initial),
		final:       layoutSlice(res.Final),
		requested:   p.preset.String(),
		effective:   res.Fallback.Effective.String(),
		deviceName:  p.devName,
		deviceID:    p.deviceID,
		attempts:    len(res.Fallback.Attempts),
	}
	out.degraded = rerouted || res.Fallback.Degraded
	switch {
	case res.Fallback.Degraded && res.Fallback.Reason != "":
		out.degradedWhy = res.Fallback.Reason
	case rerouted:
		out.degradedWhy = fmt.Sprintf("circuit breaker open for %s; started at %s", p.preset, start)
	}
	return out
}

func layoutSlice(l interface {
	NLogical() int
	Phys(int) int
}) []int {
	out := make([]int, l.NLogical())
	for q := range out {
		out[q] = l.Phys(q)
	}
	return out
}

func buildResponse(p *parsedRequest, out *outcome, cached bool) CompileResponse {
	resp := CompileResponse{
		Status:          "ok",
		CacheKey:        p.key,
		Cached:          cached,
		Device:          out.deviceName,
		PresetRequested: out.requested,
		PresetEffective: out.effective,
		Degraded:        out.degraded,
		DegradedReason:  out.degradedWhy,
		Attempts:        out.attempts,
		Swaps:           out.swaps,
		Depth:           out.depth,
		Gates:           out.gates,
		InitialLayout:   out.initial,
		FinalLayout:     out.final,
		Circuit:         out.circuitText,
	}
	if p.emitQASM {
		resp.QASM = out.qasm
	}
	return resp
}

// handleCalibration accepts a full device document (the same schema as an
// inline request device) and installs its calibration on the named
// registered device, bumping the calibration epoch. The document's
// coupling map must match the registered device.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyLen)
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "decoding calibration document: " + err.Error()})
		return
	}
	doc, err := device.FromJSON(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	cur, _, err := s.devices.get(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	if doc.Calib == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: "calibration document carries no calibration section"})
		return
	}
	if doc.NQubits() != cur.NQubits() {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request",
			Error: fmt.Sprintf("calibration document has %d qubits, device %s has %d", doc.NQubits(), name, cur.NQubits())})
		return
	}
	epoch, invalidated, err := s.ReloadCalibration(name, doc.Calib)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Status: "error", Kind: "bad_request", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status      string `json:"status"`
		Device      string `json:"device"`
		Epoch       int64  `json:"epoch"`
		Invalidated int    `json:"invalidated"`
	}{"ok", name, epoch, invalidated})
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	type devInfo struct {
		Name   string `json:"name"`
		Qubits int    `json:"qubits"`
		Epoch  int64  `json:"epoch"`
		Calib  bool   `json:"calibrated"`
	}
	var out []devInfo
	for _, name := range s.devices.names() {
		dev, epoch, err := s.devices.get(name)
		if err != nil {
			continue
		}
		out = append(out, devInfo{Name: name, Qubits: dev.NQubits(), Epoch: epoch, Calib: dev.Calib != nil})
	}
	writeJSON(w, http.StatusOK, struct {
		Devices []devInfo `json:"devices"`
	}{out})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	type breakerInfo struct {
		State     string `json:"state"`
		Successes int    `json:"successes"`
		Failures  int    `json:"failures"`
	}
	breakers := make(map[string]breakerInfo, len(compile.Presets))
	for _, p := range compile.Presets {
		state, succ, fail := s.breakers.byPreset[p].snapshot()
		breakers[p.String()] = breakerInfo{State: state, Successes: succ, Failures: fail}
	}
	ready, reason := s.Readiness()
	writeJSON(w, http.StatusOK, struct {
		Ready       bool                   `json:"ready"`
		Reason      string                 `json:"reason,omitempty"`
		CacheLen    int                    `json:"cache_entries"`
		QueueDepth  int                    `json:"queue_depth"`
		Breakers    map[string]breakerInfo `json:"breakers"`
		DeviceNames []string               `json:"devices"`
	}{ready, reason, s.cache.len(), s.adm.queueDepth(), breakers, s.devices.names()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
