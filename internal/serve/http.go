package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obsv"
)

// Hardened listener defaults shared by every binary that serves HTTP
// (qaoad, qaoa-exp -listen, qaoa-bench -listen). ReadHeaderTimeout closes
// slow-loris connections that trickle header bytes forever;
// IdleTimeout reclaims keep-alive connections of departed clients.
const (
	readHeaderTimeout = 5 * time.Second
	idleTimeout       = 2 * time.Minute
)

// NewHTTPServer wraps h in an http.Server with the hardened timeouts.
// Deliberately no ReadTimeout/WriteTimeout: request bodies are bounded by
// MaxBytesReader and response time by the per-request deadlines, so whole-
// connection timeouts would only add a second, coarser limit that kills
// legitimate slow compiles.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// ObsServer is a running observability endpoint (/metrics, /healthz,
// /readyz, /debug/pprof) with explicit readiness control and graceful
// shutdown — the hardened replacement for the bare listener the -listen
// flags used to return.
type ObsServer struct {
	srv     *http.Server
	ln      net.Listener
	handler *obsv.Handler

	mu     sync.Mutex
	ready  bool
	reason string
}

// ServeObs starts an observability server on addr (":0" picks a free
// port). The server starts not-ready ("warming up"); call SetReady(true,
// "") once the process is serving its purpose, SetReady(false, "draining")
// when shutdown begins, and Shutdown to stop. progress may be nil.
func ServeObs(addr string, col *obsv.Collector, progress obsv.ProgressFunc) (*ObsServer, error) {
	o := &ObsServer{reason: "warming up"}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	o.ln = ln
	o.handler = obsv.NewHandler(col, progress, o.Readiness)
	o.srv = NewHTTPServer(o.handler)
	//lint:allow leakcheck: Serve returns on Shutdown/Close; nothing useful to do with the error
	go o.srv.Serve(ln)
	return o, nil
}

// Handle mounts an additional route next to the standard observability
// endpoints (e.g. a binary-specific debug page). Call before the first
// request touches the pattern.
func (o *ObsServer) Handle(pattern string, h http.Handler) {
	o.handler.Mux().Handle(pattern, h)
}

// SetSLO enables SLO burn-rate gauges on this server's /metrics page.
func (o *ObsServer) SetSLO(cfg obsv.SLOConfig) { o.handler.SetSLO(cfg) }

// Addr is the bound listen address (useful with ":0").
func (o *ObsServer) Addr() net.Addr { return o.ln.Addr() }

// SetReady flips the /readyz state. reason is reported while not ready.
func (o *ObsServer) SetReady(ready bool, reason string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ready, o.reason = ready, reason
}

// Readiness implements obsv.ReadyFunc over the SetReady state.
func (o *ObsServer) Readiness() (bool, string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ready, o.reason
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight responses finish within ctx. Idempotent.
func (o *ObsServer) Shutdown(ctx context.Context) error {
	o.SetReady(false, "draining")
	return o.srv.Shutdown(ctx)
}
