package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
)

// newTestServer builds a ready server plus its HTTP test harness.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obsv.Collector) {
	t.Helper()
	col := cfg.Obs
	if col == nil {
		col = obsv.New()
		cfg.Obs = col
	}
	s := New(cfg)
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		s.Close()
	})
	return s, ts, col
}

func ringRequest(devName string, n int, seed int64, policy string) CompileRequest {
	edges := make([][2]int, n)
	for v := 0; v < n; v++ {
		edges[v] = [2]int{v, (v + 1) % n}
	}
	return CompileRequest{
		DeviceName: devName,
		Circuit:    CircuitDoc{N: n, Edges: edges},
		Config:     ConfigDoc{Policy: policy, Seed: seed},
	}
}

func postCompile(t *testing.T, url string, req CompileRequest) (int, CompileResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ok CompileResponse
	var fail ErrorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ok); err != nil {
			t.Fatalf("decoding success body: %v\n%s", err, data)
		}
	} else if err := json.Unmarshal(data, &fail); err != nil {
		t.Fatalf("decoding error body (status %d): %v\n%s", resp.StatusCode, err, data)
	}
	return resp.StatusCode, ok, fail
}

func TestCompileEndToEnd(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	st, got, _ := postCompile(t, ts.URL, ringRequest("tokyo", 6, 3, "IC"))
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if got.Cached {
		t.Error("first compile reported cached")
	}
	if got.PresetEffective != "IC" || got.PresetRequested != "IC" || got.Degraded {
		t.Errorf("presets: %+v", got)
	}
	if got.Circuit == "" || got.Depth <= 0 || got.Gates <= 0 {
		t.Errorf("missing circuit payload: depth=%d gates=%d", got.Depth, got.Gates)
	}
	if len(got.InitialLayout) != 6 || len(got.FinalLayout) != 6 {
		t.Errorf("layouts: %v / %v", got.InitialLayout, got.FinalLayout)
	}
	if got.QASM != "" {
		t.Error("qasm included without emit_qasm")
	}

	// Same document again: cache hit, byte-identical circuit.
	st2, got2, _ := postCompile(t, ts.URL, ringRequest("tokyo", 6, 3, "IC"))
	if st2 != http.StatusOK || !got2.Cached {
		t.Fatalf("second request: status %d cached %v", st2, got2.Cached)
	}
	if got2.Circuit != got.Circuit || got2.CacheKey != got.CacheKey {
		t.Error("cached circuit differs from compiled one")
	}

	// emit_qasm produces the export but must not fork the cache key.
	req := ringRequest("tokyo", 6, 3, "IC")
	req.Config.EmitQASM = true
	st3, got3, _ := postCompile(t, ts.URL, req)
	if st3 != http.StatusOK || !got3.Cached || !strings.HasPrefix(got3.QASM, "OPENQASM 2.0;") {
		t.Errorf("emit_qasm request: status %d cached %v qasm %.30q", st3, got3.Cached, got3.QASM)
	}
}

func TestSingleflightSharesOneCompile(t *testing.T) {
	// The latency hook keeps the flight open long enough for every waiter
	// to join it.
	hook := compile.Hook(func(string) error { time.Sleep(5 * time.Millisecond); return nil })
	_, ts, col := newTestServer(t, Config{Hook: hook})

	const waiters = 8
	var wg sync.WaitGroup
	circuits := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, got, _ := postCompile(t, ts.URL, ringRequest("tokyo", 8, 5, "IC"))
			if st != http.StatusOK {
				t.Errorf("waiter %d: status %d", i, st)
				return
			}
			circuits[i] = got.Circuit
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if circuits[i] != circuits[0] {
			t.Fatalf("waiter %d received a different circuit", i)
		}
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 1 {
		t.Errorf("%d compiles for %d identical concurrent requests, want 1", n, waiters)
	}
	if n := col.Counter(obsv.CntServeSingleflightShared); n != waiters-1 {
		t.Errorf("singleflight shared %d, want %d", n, waiters-1)
	}
}

func TestCacheKeyCanonicalizesEdgeOrder(t *testing.T) {
	_, ts, col := newTestServer(t, Config{})
	a := CompileRequest{
		DeviceName: "tokyo",
		Circuit:    CircuitDoc{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}},
		Config:     ConfigDoc{Policy: "IC", Seed: 2},
	}
	b := CompileRequest{
		DeviceName: "tokyo",
		// Same graph: reversed pairs, shuffled listing.
		Circuit: CircuitDoc{N: 4, Edges: [][2]int{{3, 0}, {3, 2}, {2, 1}, {1, 0}}},
		Config:  ConfigDoc{Policy: "IC", Seed: 2},
	}
	_, ra, _ := postCompile(t, ts.URL, a)
	st, rb, _ := postCompile(t, ts.URL, b)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if ra.CacheKey != rb.CacheKey {
		t.Error("equal graphs in different listing order got different cache keys")
	}
	if !rb.Cached || rb.Circuit != ra.Circuit {
		t.Error("canonicalized request missed the cache or differed")
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 1 {
		t.Errorf("%d compiles, want 1", n)
	}

	// A different seed is a different artifact.
	c := a
	c.Config.Seed = 3
	_, rc, _ := postCompile(t, ts.URL, c)
	if rc.CacheKey == ra.CacheKey || rc.Cached {
		t.Error("different seed shared the cache entry")
	}
}

func TestCalibrationReloadInvalidatesExactlyAffectedEntries(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})

	stM, gotM, _ := postCompile(t, ts.URL, ringRequest("melbourne", 6, 3, "IC"))
	stT, gotT, _ := postCompile(t, ts.URL, ringRequest("tokyo", 6, 3, "IC"))
	if stM != http.StatusOK || stT != http.StatusOK {
		t.Fatalf("seed compiles: %d %d", stM, stT)
	}
	if s.CacheLen() != 2 {
		t.Fatalf("cache length %d, want 2", s.CacheLen())
	}

	// Reload melbourne's calibration via the API (the document is a full
	// device doc; its calibration section is installed).
	doc, err := device.Melbourne15().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/devices/melbourne/calibration", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rl struct {
		Epoch       int64 `json:"epoch"`
		Invalidated int   `json:"invalidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	// Both of melbourne's entries go: the compiled outcome and the routed
	// skeleton that produced it.
	if resp.StatusCode != http.StatusOK || rl.Epoch != 1 || rl.Invalidated != 2 {
		t.Fatalf("reload: status %d epoch %d invalidated %d", resp.StatusCode, rl.Epoch, rl.Invalidated)
	}
	if s.SkeletonCacheLen() != 1 {
		t.Fatalf("skeleton cache length %d after reload, want 1 (tokyo's survives)", s.SkeletonCacheLen())
	}

	// Tokyo's entry survived; melbourne recompiles under the new epoch and
	// must not see the old entry.
	_, gotT2, _ := postCompile(t, ts.URL, ringRequest("tokyo", 6, 3, "IC"))
	if !gotT2.Cached || gotT2.CacheKey != gotT.CacheKey {
		t.Error("unrelated device's cache entry was invalidated")
	}
	_, gotM2, _ := postCompile(t, ts.URL, ringRequest("melbourne", 6, 3, "IC"))
	if gotM2.Cached {
		t.Error("melbourne served a stale pre-reload entry")
	}
	if gotM2.CacheKey == gotM.CacheKey {
		t.Error("cache key did not change across calibration epochs")
	}
}

func TestInlineDeviceRevisionsNeverShareEntries(t *testing.T) {
	_, ts, col := newTestServer(t, Config{})
	mkReq := func(dev *device.Device) CompileRequest {
		doc, err := dev.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		r := ringRequest("", 6, 3, "IC")
		r.Device = doc
		return r
	}
	devA := device.Melbourne15()
	devB := device.Melbourne15()
	// devB is the same topology with one drifted error rate — a different
	// device revision.
	for k, v := range devB.Calib.CNOTError {
		devB.Calib.CNOTError[k] = v * 1.5
		break
	}
	_, ra, _ := postCompile(t, ts.URL, mkReq(devA))
	st, rb, _ := postCompile(t, ts.URL, mkReq(devB))
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if ra.CacheKey == rb.CacheKey || rb.Cached {
		t.Error("distinct device revisions shared a cache entry")
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 2 {
		t.Errorf("%d compiles, want 2", n)
	}
	// Identical revision does hit.
	_, ra2, _ := postCompile(t, ts.URL, mkReq(device.Melbourne15()))
	if !ra2.Cached || ra2.CacheKey != ra.CacheKey {
		t.Error("identical inline device revision missed the cache")
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	hook := compile.Hook(func(string) error { time.Sleep(10 * time.Millisecond); return nil })
	_, ts, col := newTestServer(t, Config{Workers: 2, Queue: 4, Hook: hook})

	const n = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	retryAfterOK := true
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(ringRequest("tokyo", 4, int64(i+1), "IC"))
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				retryAfterOK = false
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no sheds under %d concurrent slow compiles on workers=2 queue=4: %v", n, codes)
	}
	if codes[http.StatusOK]+codes[http.StatusTooManyRequests] != n {
		t.Errorf("unexpected statuses: %v", codes)
	}
	if !retryAfterOK {
		t.Error("shed response missing Retry-After")
	}
	// Shed accounting is exact: the counter equals the 429s clients saw.
	if got := col.Counter(obsv.CntServeShed); got != int64(codes[http.StatusTooManyRequests]) {
		t.Errorf("serve/shed %d != client-observed 429s %d", got, codes[http.StatusTooManyRequests])
	}
}

func TestDeadlineBoundsWaitNotFlight(t *testing.T) {
	hook := compile.Hook(func(string) error { time.Sleep(30 * time.Millisecond); return nil })
	_, ts, col := newTestServer(t, Config{Hook: hook})

	req := ringRequest("tokyo", 4, 9, "IC")
	req.Config.DeadlineMS = 1
	st, _, fail := postCompile(t, ts.URL, req)
	if st != http.StatusGatewayTimeout || fail.Kind != "deadline" {
		t.Fatalf("status %d kind %q, want 504 deadline", st, fail.Kind)
	}
	if n := col.Counter(obsv.CntServeDeadlineExceeded); n != 1 {
		t.Errorf("deadline counter %d", n)
	}

	// The flight kept running server-side; once it lands, a patient client
	// gets the cached artifact without a recompile.
	deadline := time.Now().Add(5 * time.Second)
	for {
		req.Config.DeadlineMS = 2000
		st2, got2, _ := postCompile(t, ts.URL, req)
		if st2 == http.StatusOK {
			if !got2.Cached && col.Counter(obsv.CntServeCompiles) > 1 {
				t.Errorf("abandoned flight's result was recompiled")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never completed after client deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCompileFailureReturnsTypedError(t *testing.T) {
	hook := compile.Hook(func(string) error { return fmt.Errorf("injected: pass exploded") })
	_, ts, col := newTestServer(t, Config{Hook: hook, Retries: 1, Backoff: time.Millisecond})
	st, _, fail := postCompile(t, ts.URL, ringRequest("tokyo", 4, 9, "IC"))
	if st != http.StatusInternalServerError || fail.Kind != "compile_failed" {
		t.Fatalf("status %d kind %q, want 500 compile_failed", st, fail.Kind)
	}
	if !strings.Contains(fail.Error, "all fallbacks") {
		t.Errorf("error lacks ladder detail: %q", fail.Error)
	}
	if n := col.Counter(obsv.CntServeErrors); n != 1 {
		t.Errorf("error counter %d", n)
	}
}

func TestReadinessLifecycle(t *testing.T) {
	col := obsv.New()
	s := New(Config{Obs: col})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	readyStatus := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Warming up: not ready, compiles refused with 503 draining kind.
	if st := readyStatus(); st != http.StatusServiceUnavailable {
		t.Errorf("/readyz during warm-up: %d", st)
	}
	st, _, fail := postCompile(t, ts.URL, ringRequest("tokyo", 4, 1, "IC"))
	if st != http.StatusServiceUnavailable || fail.Kind != "draining" {
		t.Errorf("compile during warm-up: %d %q", st, fail.Kind)
	}

	s.MarkReady()
	if st := readyStatus(); st != http.StatusOK {
		t.Errorf("/readyz when ready: %d", st)
	}
	if st, _, _ := postCompile(t, ts.URL, ringRequest("tokyo", 4, 1, "IC")); st != http.StatusOK {
		t.Errorf("compile when ready: %d", st)
	}

	// /healthz stays 200 through every phase — liveness, not readiness.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := readyStatus(); st != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %d", st)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: %d", resp.StatusCode)
	}
	if st, _, f := postCompile(t, ts.URL, ringRequest("tokyo", 4, 2, "IC")); st != http.StatusServiceUnavailable || f.Kind != "draining" {
		t.Errorf("compile while draining: %d %q", st, f.Kind)
	}
}

func TestParseRequestRejectsBadDocuments(t *testing.T) {
	_, ts, col := newTestServer(t, Config{})
	ring := func(mut func(*CompileRequest)) CompileRequest {
		r := ringRequest("tokyo", 4, 1, "IC")
		mut(&r)
		return r
	}
	cases := []struct {
		name string
		req  CompileRequest
	}{
		{"no device", ring(func(r *CompileRequest) { r.DeviceName = "" })},
		{"unknown device", ring(func(r *CompileRequest) { r.DeviceName = "nonesuch" })},
		{"unknown policy", ring(func(r *CompileRequest) { r.Config.Policy = "SUPERB" })},
		{"zero qubits", ring(func(r *CompileRequest) { r.Circuit.N = 0 })},
		{"no edges", ring(func(r *CompileRequest) { r.Circuit.Edges = nil })},
		{"self loop", ring(func(r *CompileRequest) { r.Circuit.Edges[0] = [2]int{1, 1} })},
		{"out of range", ring(func(r *CompileRequest) { r.Circuit.Edges[0] = [2]int{0, 9} })},
		{"duplicate edge", ring(func(r *CompileRequest) { r.Circuit.Edges[1] = [2]int{1, 0} })},
		{"weights mismatch", ring(func(r *CompileRequest) { r.Circuit.Weights = []float64{1} })},
		{"negative deadline", ring(func(r *CompileRequest) { r.Config.DeadlineMS = -1 })},
		{"gamma length", ring(func(r *CompileRequest) { r.Config.Gamma = []float64{0.1, 0.2} })},
		{"too many levels", ring(func(r *CompileRequest) { r.Config.P = maxLevels + 1 })},
		{"oversized n", ring(func(r *CompileRequest) { r.Circuit.N = maxQubits + 1 })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, _, fail := postCompile(t, ts.URL, tc.req)
			if st != http.StatusBadRequest || fail.Kind != "bad_request" {
				t.Errorf("status %d kind %q, want 400 bad_request", st, fail.Kind)
			}
		})
	}
	if n := col.Counter(obsv.CntServeBadRequests); n != int64(len(cases)) {
		t.Errorf("bad-request counter %d, want %d", n, len(cases))
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 0 {
		t.Errorf("bad requests triggered %d compiles", n)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(BreakerConfig{Window: 10 * time.Second, MinRequests: 4, FailureRate: 0.5,
		Cooldown: 5 * time.Second, HalfOpenProbes: 2}, clock)

	// Below MinRequests nothing trips, whatever the rate.
	for i := 0; i < 3; i++ {
		if b.record(false) {
			t.Fatal("tripped below MinRequests")
		}
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker refused")
	}
	// Fourth failure: 4/4 failed ≥ 50% → open.
	if !b.record(false) {
		t.Fatal("did not trip at the threshold")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted during cooldown")
	}

	// Cooldown elapses → half-open with a bounded probe budget.
	now = now.Add(6 * time.Second)
	ok1, probe1 := b.allow()
	ok2, probe2 := b.allow()
	ok3, _ := b.allow()
	if !ok1 || !probe1 || !ok2 || !probe2 {
		t.Fatalf("half-open probes: %v/%v %v/%v", ok1, probe1, ok2, probe2)
	}
	if ok3 {
		t.Fatal("half-open admitted beyond the probe budget")
	}

	// A probe failure re-opens for another cooldown.
	if !b.record(false) {
		t.Fatal("half-open failure did not re-open")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("re-opened breaker admitted")
	}

	// Cooldown again, this time the probe succeeds → closed, fresh window.
	now = now.Add(6 * time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("expected a half-open probe")
	}
	if b.record(true) {
		t.Fatal("success reported as a trip")
	}
	if state, succ, fail := b.snapshot(); state != "closed" || succ != 0 || fail != 0 {
		t.Fatalf("after recovery: %s %d/%d", state, succ, fail)
	}

	// Window rotation: stale outcomes do not linger. 3 failures, then the
	// window expires; the next failure starts a fresh count and must not
	// trip on stale history.
	for i := 0; i < 3; i++ {
		b.record(false)
	}
	now = now.Add(11 * time.Second)
	if b.record(false) {
		t.Fatal("tripped on outcomes from an expired window")
	}
}

func TestBreakerRoutesDownLadder(t *testing.T) {
	now := time.Unix(2000, 0)
	col := obsv.New()
	bs := newBreakerSet(BreakerConfig{MinRequests: 2, FailureRate: 0.5, Cooldown: time.Hour},
		func() time.Time { return now }, col)

	// Healthy: VIC requests start at VIC.
	if start, rerouted, ok := bs.route(compile.PresetVIC); !ok || rerouted || start != compile.PresetVIC {
		t.Fatalf("healthy route: %v %v %v", start, rerouted, ok)
	}

	// Trip VIC via observed failed attempts.
	bs.observe(nil, []compile.Attempt{{Preset: compile.PresetVIC, Err: "x"}, {Preset: compile.PresetVIC, Err: "x"}})
	start, rerouted, ok := bs.route(compile.PresetVIC)
	if !ok || !rerouted || start != compile.PresetIC {
		t.Fatalf("route with VIC open: %v %v %v", start, rerouted, ok)
	}
	if n := col.Counter(obsv.CntServeBreakerRerouted); n != 1 {
		t.Errorf("rerouted counter %d", n)
	}

	// Trip the whole ladder → no route.
	for _, p := range []compile.Preset{compile.PresetIC, compile.PresetIP, compile.PresetNaive} {
		bs.observe(nil, []compile.Attempt{{Preset: p, Err: "x"}, {Preset: p, Err: "x"}})
	}
	if _, _, ok := bs.route(compile.PresetVIC); ok {
		t.Fatal("routed despite every rung open")
	}
	if n := col.Counter(obsv.CntServeBreakerOpens); n != 4 {
		t.Errorf("breaker opens %d, want 4", n)
	}
}

func TestAllBreakersOpenReturns503(t *testing.T) {
	// Persistent pass failures fail whole ladders; with a tiny breaker
	// window every rung opens quickly and requests are rejected up front.
	hook := compile.Hook(func(string) error { return fmt.Errorf("injected: hard down") })
	_, ts, col := newTestServer(t, Config{
		Hook:    hook,
		Retries: 0,
		Breaker: BreakerConfig{MinRequests: 1, FailureRate: 0.01, Cooldown: time.Hour},
	})

	// First request fails the ladder and trips every rung's breaker.
	st, _, fail := postCompile(t, ts.URL, ringRequest("tokyo", 4, 1, "IC"))
	if st != http.StatusInternalServerError || fail.Kind != "compile_failed" {
		t.Fatalf("first request: %d %q", st, fail.Kind)
	}
	// Now nothing is admitted: breaker_open 503 without compiling.
	before := col.Counter(obsv.CntServeCompiles)
	st2, _, fail2 := postCompile(t, ts.URL, ringRequest("tokyo", 4, 2, "IC"))
	if st2 != http.StatusServiceUnavailable || fail2.Kind != "breaker_open" {
		t.Fatalf("second request: %d %q", st2, fail2.Kind)
	}
	if col.Counter(obsv.CntServeCompiles) != before {
		t.Error("breaker-rejected request still compiled")
	}
	if n := col.Counter(obsv.CntServeBreakerRejected); n != 1 {
		t.Errorf("breaker_rejected counter %d", n)
	}
}

func TestStatusAndDevicesEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Ready    bool                       `json:"ready"`
		Breakers map[string]json.RawMessage `json:"breakers"`
		Devices  []string                   `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if !status.Ready || len(status.Breakers) != len(compile.Presets) {
		t.Errorf("status: %+v", status)
	}
	want := []string{"falcon27", "grid6x6", "melbourne", "tokyo"}
	if fmt.Sprint(status.Devices) != fmt.Sprint(want) {
		t.Errorf("devices %v, want %v", status.Devices, want)
	}

	resp2, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var devs struct {
		Devices []struct {
			Name  string `json:"name"`
			Epoch int64  `json:"epoch"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&devs); err != nil {
		t.Fatal(err)
	}
	if len(devs.Devices) != 4 {
		t.Errorf("devices: %+v", devs)
	}
}

func TestMetricNamesPassRegistry(t *testing.T) {
	// Drive every serve counter path at least once, then verify the
	// collector holds no unregistered names — the same gate CI applies.
	hook := compile.Hook(func(string) error { time.Sleep(time.Millisecond); return nil })
	_, ts, col := newTestServer(t, Config{Hook: hook, Workers: 1, Queue: 0})
	postCompile(t, ts.URL, ringRequest("tokyo", 4, 1, "IC"))
	postCompile(t, ts.URL, ringRequest("tokyo", 4, 1, "IC"))
	postCompile(t, ts.URL, CompileRequest{})
	snap := col.Snapshot()
	if bad := snap.Unregistered(); len(bad) != 0 {
		t.Errorf("unregistered metric names recorded: %v", bad)
	}
}

// angleRequest is ringRequest with explicit per-level angles.
func angleRequest(devName string, n int, seed int64, policy string, gamma, beta []float64) CompileRequest {
	r := ringRequest(devName, n, seed, policy)
	r.Config.P = len(gamma)
	r.Config.Gamma = gamma
	r.Config.Beta = beta
	return r
}

// An angle-tuning client — same structure, different angles per request —
// pays exactly one routing pass: the second request misses the full-key
// tier but hits the skeleton tier and binds.
func TestDistinctAnglesHitSkeletonTier(t *testing.T) {
	s, ts, col := newTestServer(t, Config{})

	st1, got1, _ := postCompile(t, ts.URL, angleRequest("tokyo", 6, 3, "IC", []float64{0.5}, []float64{0.2}))
	if st1 != http.StatusOK || got1.Cached {
		t.Fatalf("first request: status %d cached %v", st1, got1.Cached)
	}
	st2, got2, _ := postCompile(t, ts.URL, angleRequest("tokyo", 6, 3, "IC", []float64{0.9}, []float64{0.1}))
	if st2 != http.StatusOK {
		t.Fatalf("second request: status %d", st2)
	}
	if !got2.Cached {
		t.Error("distinct-angle request was not served from the skeleton tier")
	}
	if got2.CacheKey == got1.CacheKey {
		t.Error("distinct angles shared a full cache key")
	}
	if got2.Circuit == got1.Circuit {
		t.Error("distinct angles produced identical circuits")
	}
	// Identical routing: the angles only change rotation phases.
	if got2.Swaps != got1.Swaps || got2.Depth != got1.Depth || got2.Gates != got1.Gates {
		t.Errorf("routed metrics differ across angles: %+v vs %+v", got2, got1)
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 1 {
		t.Errorf("%d compile flights, want 1", n)
	}
	if n := col.Counter(obsv.CntServeSkeletonHits); n != 1 {
		t.Errorf("skeleton hits = %d, want 1", n)
	}
	if s.CacheLen() != 2 || s.SkeletonCacheLen() != 1 {
		t.Errorf("cache lens: full %d skel %d, want 2/1", s.CacheLen(), s.SkeletonCacheLen())
	}

	// The bound outcome filled the full-key tier: the exact repeat is a
	// first-tier hit, not another bind.
	st3, got3, _ := postCompile(t, ts.URL, angleRequest("tokyo", 6, 3, "IC", []float64{0.9}, []float64{0.1}))
	if st3 != http.StatusOK || !got3.Cached || got3.Circuit != got2.Circuit {
		t.Fatalf("repeat request: status %d cached %v", st3, got3.Cached)
	}
	if n := col.Counter(obsv.CntServeSkeletonHits); n != 1 {
		t.Errorf("skeleton hits after full-tier hit = %d, want still 1", n)
	}
}

// A skeleton-tier bind must be byte-identical to the circuit a cold server
// compiles directly for the same document — the service-level form of the
// Bind/Compile oracle contract.
func TestSkeletonBindMatchesDirectCompile(t *testing.T) {
	req := angleRequest("melbourne", 8, 7, "IC", []float64{0.8, 0.4}, []float64{0.4, 0.2})

	_, ts1, _ := newTestServer(t, Config{})
	st, direct, _ := postCompile(t, ts1.URL, req)
	if st != http.StatusOK {
		t.Fatalf("direct compile: status %d", st)
	}

	_, ts2, col2 := newTestServer(t, Config{})
	// Warm the skeleton tier with different angles, then bind the target's.
	if st, _, _ := postCompile(t, ts2.URL, angleRequest("melbourne", 8, 7, "IC", []float64{0.1, 0.2}, []float64{0.3, 0.4})); st != http.StatusOK {
		t.Fatalf("warm compile: status %d", st)
	}
	st, bound, _ := postCompile(t, ts2.URL, req)
	if st != http.StatusOK || !bound.Cached {
		t.Fatalf("bound compile: status %d cached %v", st, bound.Cached)
	}
	if n := col2.Counter(obsv.CntServeSkeletonHits); n != 1 {
		t.Fatalf("skeleton hits = %d, want 1", n)
	}
	if bound.Circuit != direct.Circuit || bound.CacheKey != direct.CacheKey {
		t.Error("skeleton-bound circuit differs from direct compile")
	}
	if bound.Swaps != direct.Swaps || bound.Depth != direct.Depth || bound.Gates != direct.Gates {
		t.Errorf("bound metrics %+v differ from direct %+v", bound, direct)
	}
}

// Optimize requests are angle-dependent post-bind, so they bypass the
// skeleton tier entirely.
func TestOptimizeRequestsBypassSkeletonTier(t *testing.T) {
	s, ts, col := newTestServer(t, Config{})
	req := angleRequest("tokyo", 6, 3, "IC", []float64{0.5}, []float64{0.2})
	req.Config.Optimize = true
	if st, _, _ := postCompile(t, ts.URL, req); st != http.StatusOK {
		t.Fatalf("optimize compile failed")
	}
	req2 := angleRequest("tokyo", 6, 3, "IC", []float64{0.9}, []float64{0.1})
	req2.Config.Optimize = true
	if st, got, _ := postCompile(t, ts.URL, req2); st != http.StatusOK || got.Cached {
		t.Fatalf("second optimize request: status %d cached %v", st, got.Cached)
	}
	if s.SkeletonCacheLen() != 0 {
		t.Errorf("skeleton cache has %d entries for optimize traffic, want 0", s.SkeletonCacheLen())
	}
	if n := col.Counter(obsv.CntServeSkeletonHits) + col.Counter(obsv.CntServeSkeletonMisses); n != 0 {
		t.Errorf("skeleton tier touched %d times by optimize traffic, want 0", n)
	}
	if n := col.Counter(obsv.CntServeCompiles); n != 2 {
		t.Errorf("%d compile flights, want 2", n)
	}
}

// Concurrent distinct-angle requests over one structure share a single
// skeleton flight: one routing pass, every waiter binds its own angles.
func TestDistinctAngleSingleflight(t *testing.T) {
	hook := compile.Hook(func(string) error { time.Sleep(5 * time.Millisecond); return nil })
	_, ts, col := newTestServer(t, Config{Workers: 1, Hook: hook})
	const n = 6
	var wg sync.WaitGroup
	circuits := make([]string, n)
	status := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := angleRequest("tokyo", 6, 3, "IC", []float64{0.1 * float64(i+1)}, []float64{0.05 * float64(i+1)})
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			status[i] = resp.StatusCode
			var ok CompileResponse
			if resp.StatusCode == http.StatusOK {
				if json.NewDecoder(resp.Body).Decode(&ok) == nil {
					circuits[i] = ok.Circuit
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status[i])
		}
		if circuits[i] == "" {
			t.Fatalf("request %d: empty circuit", i)
		}
		for j := 0; j < i; j++ {
			if circuits[i] == circuits[j] {
				t.Errorf("requests %d and %d with distinct angles got identical circuits", i, j)
			}
		}
	}
	if got := col.Counter(obsv.CntServeCompiles); got != 1 {
		t.Errorf("%d compile flights for %d distinct-angle requests, want 1", got, n)
	}
}

// The skeleton tier binds every request's angles into one pooled
// BindBuffer, so an outcome must not alias the buffer: the next bind
// overwrites it. bindOutcome's contract (and its //lint:allow poolsafe
// escape) is that buildOutcome deep-copies everything it keeps — this
// test rebinds with different angles and asserts the first outcome is
// bitwise untouched.
func TestBindOutcomeCopiesPooledBuffer(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	if st, _, _ := postCompile(t, ts.URL, angleRequest("tokyo", 6, 3, "IC", []float64{0.1}, []float64{0.2})); st != http.StatusOK {
		t.Fatal("warm compile failed")
	}

	req1 := angleRequest("tokyo", 6, 3, "IC", []float64{0.5}, []float64{0.2})
	req2 := angleRequest("tokyo", 6, 3, "IC", []float64{0.9}, []float64{0.7})
	p1, err := s.parseRequest(&req1)
	if err != nil {
		t.Fatalf("parse req1: %v", err)
	}
	p2, err := s.parseRequest(&req2)
	if err != nil {
		t.Fatalf("parse req2: %v", err)
	}
	se, ok := s.skels.get(p1.skelKey)
	if !ok {
		t.Fatalf("skeleton entry not cached under %q", p1.skelKey)
	}

	out1, err := s.bindOutcome(p1, se)
	if err != nil {
		t.Fatalf("first bind: %v", err)
	}
	circuit1 := out1.circuitText
	qasm1 := out1.qasm
	initial1 := append([]int(nil), out1.initial...)
	final1 := append([]int(nil), out1.final...)

	out2, err := s.bindOutcome(p2, se)
	if err != nil {
		t.Fatalf("second bind: %v", err)
	}
	if out2.circuitText == circuit1 {
		t.Fatal("distinct angles bound to identical circuits; the test is not exercising a rebind")
	}
	if out1.circuitText != circuit1 || out1.qasm != qasm1 {
		t.Error("first outcome's circuit changed after the pooled buffer was rebound")
	}
	for i := range initial1 {
		if out1.initial[i] != initial1[i] {
			t.Fatalf("first outcome's initial layout changed after rebind at %d", i)
		}
	}
	for i := range final1 {
		if out1.final[i] != final1[i] {
			t.Fatalf("first outcome's final layout changed after rebind at %d", i)
		}
	}
}
