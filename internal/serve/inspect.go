package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Live request inspector: the answer to "what is this server doing right
// now, and what did it just do?". Every compile request registers here at
// arrival and moves into a fixed-size ring of recently finished requests at
// completion, so GET /debug/requests shows the active set plus the recent
// history without any log pipeline. Records share the wide-event field
// vocabulary (obsv.Field*), and a record's ID equals the X-Request-ID
// header, the req_id of the canonical log line and the request_id of the
// trace meta event — one ID joins all four surfaces.

// RequestRecord is one request's observable state, as served by
// /debug/requests. JSON field names match the wide-event field registry
// where the two overlap.
type RequestRecord struct {
	ID        string `json:"id"`
	StartedAt string `json:"started_at"`
	// AgeMS is filled at snapshot time for active requests (how long the
	// request has been in flight when the inspector was read).
	AgeMS           float64 `json:"age_ms,omitempty"`
	Device          string  `json:"device,omitempty"`
	Preset          string  `json:"preset,omitempty"`
	PresetEffective string  `json:"preset_effective,omitempty"`
	CacheHit        bool    `json:"cache_hit"`
	SkeletonHit     bool    `json:"skeleton_hit,omitempty"`
	Shared          bool    `json:"singleflight_shared,omitempty"`
	QueueWaitMS     float64 `json:"queue_wait_ms,omitempty"`
	Breaker         string  `json:"breaker,omitempty"`
	FallbackDepth   int     `json:"fallback_depth,omitempty"`
	Attempts        int     `json:"attempts,omitempty"`
	MapMS           float64 `json:"map_ms,omitempty"`
	OrderMS         float64 `json:"order_ms,omitempty"`
	RouteMS         float64 `json:"route_ms,omitempty"`
	DurationMS      float64 `json:"duration_ms,omitempty"`
	Outcome         string  `json:"outcome,omitempty"`
	HTTPStatus      int     `json:"http_status,omitempty"`
	Err             string  `json:"err,omitempty"`
	Swaps           int     `json:"swaps,omitempty"`
	Depth           int     `json:"depth,omitempty"`
	Gates           int     `json:"gates,omitempty"`
	// Trace carries the compile's decision-level trace events when the
	// server runs with Config.TraceRequests (cache hits replay the events
	// of the compile that filled the entry).
	Trace []trace.Event `json:"trace,omitempty"`

	started time.Time
}

// inspector tracks active requests and a ring of recently finished ones.
// All record state lives behind the mutex: handlers never share record
// pointers with readers, so /debug/requests can be scraped mid-storm under
// the race detector.
type inspector struct {
	mu     sync.Mutex
	active map[string]*RequestRecord
	ring   []RequestRecord // ring[next-1] is the newest finished record
	next   int
	filled bool
	total  uint64
}

func newInspector(recent int) *inspector {
	if recent <= 0 {
		recent = 64
	}
	return &inspector{active: make(map[string]*RequestRecord), ring: make([]RequestRecord, 0, recent)}
}

// begin registers an arriving request in the active set.
func (ins *inspector) begin(rec RequestRecord) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	r := rec
	ins.active[rec.ID] = &r
	ins.total++
}

// update mutates the active record (parse results arriving after begin).
// No-op when the request already finished.
func (ins *inspector) update(id string, f func(*RequestRecord)) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if r, ok := ins.active[id]; ok {
		f(r)
	}
}

// end removes the request from the active set and pushes its final record
// onto the recent ring, overwriting the oldest entry once full.
func (ins *inspector) end(id string, final RequestRecord) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	delete(ins.active, id)
	if cap(ins.ring) == 0 {
		return
	}
	if len(ins.ring) < cap(ins.ring) {
		ins.ring = append(ins.ring, final)
		ins.next = len(ins.ring) % cap(ins.ring)
		ins.filled = len(ins.ring) == cap(ins.ring)
		return
	}
	ins.ring[ins.next] = final
	ins.next = (ins.next + 1) % cap(ins.ring)
}

// snapshot copies the active set (sorted by start time, oldest first, with
// AgeMS filled) and the recent ring (newest first).
func (ins *inspector) snapshot(now time.Time) (active, recent []RequestRecord) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	active = make([]RequestRecord, 0, len(ins.active))
	for _, r := range ins.active {
		c := *r
		c.AgeMS = durMS(now.Sub(c.started))
		active = append(active, c)
	}
	sort.Slice(active, func(i, j int) bool {
		if !active[i].started.Equal(active[j].started) {
			return active[i].started.Before(active[j].started)
		}
		return active[i].ID < active[j].ID
	})
	n := len(ins.ring)
	recent = make([]RequestRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the newest entry.
		idx := (ins.next - 1 - i + n) % n
		recent = append(recent, ins.ring[idx])
	}
	return active, recent
}

// activeCount reports how many requests are currently registered — the
// chaos harness asserts this drains to zero after a storm (no leaked
// records).
func (ins *inspector) activeCount() int {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return len(ins.active)
}

// totalCount reports how many requests ever registered.
func (ins *inspector) totalCount() uint64 {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return ins.total
}

// inspectorPage is the JSON body of GET /debug/requests.
type inspectorPage struct {
	Total  uint64          `json:"total_requests"`
	Active []RequestRecord `json:"active"`
	Recent []RequestRecord `json:"recent"`
}

// handle serves GET /debug/requests: JSON by default, a terminal-friendly
// table with ?format=text.
func (ins *inspector) handle(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	active, recent := ins.snapshot(now)
	page := inspectorPage{Total: ins.totalCount(), Active: active, Recent: recent}
	if active == nil {
		page.Active = []RequestRecord{}
	}
	if recent == nil {
		page.Recent = []RequestRecord{}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeInspectorText(w, page)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

func writeInspectorText(w http.ResponseWriter, page inspectorPage) {
	fmt.Fprintf(w, "requests: %d total, %d active, %d recent\n\n", page.Total, len(page.Active), len(page.Recent))
	fmt.Fprintf(w, "ACTIVE\n")
	if len(page.Active) == 0 {
		fmt.Fprintf(w, "  (none)\n")
	}
	for _, r := range page.Active {
		fmt.Fprintf(w, "  %-28s age=%8.1fms preset=%-8s device=%s\n", r.ID, r.AgeMS, orDash(r.Preset), orDash(r.Device))
	}
	fmt.Fprintf(w, "\nRECENT (newest first)\n")
	if len(page.Recent) == 0 {
		fmt.Fprintf(w, "  (none)\n")
	}
	for _, r := range page.Recent {
		cache := "miss"
		if r.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(w, "  %-28s %4d %-14s %8.1fms cache=%-4s preset=%s->%s queue=%.1fms attempts=%d\n",
			r.ID, r.HTTPStatus, r.Outcome, r.DurationMS, cache,
			orDash(r.Preset), orDash(r.PresetEffective), r.QueueWaitMS, r.Attempts)
		if r.Err != "" {
			fmt.Fprintf(w, "      err: %s\n", strings.ReplaceAll(r.Err, "\n", " "))
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// durMS converts a duration to fractional milliseconds, the time unit every
// latency surface of the service shares.
func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
