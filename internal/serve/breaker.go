package serve

import (
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/obsv"
)

// BreakerConfig tunes the per-preset circuit breakers.
type BreakerConfig struct {
	// Window is the rolling failure-rate observation window (default 10s).
	Window time.Duration
	// MinRequests is the minimum number of outcomes inside the window
	// before the failure rate is trusted (default 8).
	MinRequests int
	// FailureRate opens the breaker when at least this fraction of the
	// window's outcomes failed (default 0.5).
	FailureRate float64
	// Cooldown is how long an open breaker rejects before moving to
	// half-open (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes is how many trial requests a half-open breaker admits
	// before deciding (default 2).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 8
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one preset's circuit breaker. Closed: outcomes accumulate in
// a fixed observation window; when the window holds enough outcomes and
// the failure rate crosses the threshold the breaker opens. Open: every
// request is refused until the cooldown elapses, then the breaker turns
// half-open. Half-open: a bounded number of probes run; the first success
// closes the breaker, any failure re-opens it for another cooldown.
//
// The wall clock is injected (now) so state transitions are exactly
// testable; the production server passes time.Now.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu          sync.Mutex
	state       breakerState
	windowStart time.Time
	succ, fail  int
	openedAt    time.Time
	probes      int // probes admitted in the current half-open period
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow reports whether a request may run under this breaker right now.
// probe is true when the admission is a half-open trial.
func (b *breaker) allow() (admitted, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probes = 0
		fallthrough
	case breakerHalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return false, false
		}
		b.probes++
		return true, true
	}
	return true, false
}

// record folds one outcome into the breaker and returns true when the
// outcome tripped it open (for the serve/breaker_opens counter).
func (b *breaker) record(success bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case breakerHalfOpen:
		if success {
			b.state = breakerClosed
			b.succ, b.fail = 0, 0
			b.windowStart = now
			return false
		}
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerOpen:
		// Late outcome of a request admitted before the trip; ignore.
		return false
	}
	// Closed: rotate the window, then count.
	if b.windowStart.IsZero() || now.Sub(b.windowStart) > b.cfg.Window {
		b.windowStart = now
		b.succ, b.fail = 0, 0
	}
	if success {
		b.succ++
		return false
	}
	b.fail++
	total := b.succ + b.fail
	if total >= b.cfg.MinRequests && float64(b.fail) >= b.cfg.FailureRate*float64(total) {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	return false
}

// snapshot returns the current state for the /v1/status endpoint.
func (b *breaker) snapshot() (state string, succ, fail int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.succ, b.fail
}

// breakerSet holds one breaker per compilation preset.
type breakerSet struct {
	byPreset map[compile.Preset]*breaker
	obs      *obsv.Collector
}

func newBreakerSet(cfg BreakerConfig, now func() time.Time, obs *obsv.Collector) *breakerSet {
	s := &breakerSet{byPreset: make(map[compile.Preset]*breaker, len(compile.Presets)), obs: obs}
	for _, p := range compile.Presets {
		s.byPreset[p] = newBreaker(cfg, now)
	}
	return s
}

// route returns the first rung of the preset's degradation ladder whose
// breaker admits traffic. ok is false when every rung is open — the
// whole-service 503. rerouted is true when the chosen rung is below the
// requested preset.
func (s *breakerSet) route(requested compile.Preset) (start compile.Preset, rerouted, ok bool) {
	for _, p := range compile.Ladder(requested) {
		admitted, probe := s.byPreset[p].allow()
		if !admitted {
			continue
		}
		if probe {
			s.obs.Inc(obsv.CntServeBreakerProbes)
		}
		if p != requested {
			s.obs.Inc(obsv.CntServeBreakerRerouted)
		}
		return p, p != requested, true
	}
	return 0, false, false
}

// observe folds a finished compilation into the breakers: every failed
// attempt counts against its preset, the effective preset of a successful
// result counts for it.
func (s *breakerSet) observe(fb *compile.FallbackInfo, attempts []compile.Attempt) {
	for _, a := range attempts {
		if b, ok := s.byPreset[a.Preset]; ok {
			if b.record(false) {
				s.obs.Inc(obsv.CntServeBreakerOpens)
			}
		}
	}
	if fb != nil {
		if b, ok := s.byPreset[fb.Effective]; ok {
			b.record(true)
		}
	}
}
