package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
)

// CompileRequest is the JSON body of POST /v1/compile: the same
// device/circuit/config trio the original QAOA-Compiler takes as input
// files, folded into one document. Exactly one of Device (a full inline
// device description) or DeviceName (a device registered with the server)
// must be set.
type CompileRequest struct {
	// Device is an inline device document in the internal/device JSON
	// schema (coupling map + optional calibration).
	Device json.RawMessage `json:"device,omitempty"`
	// DeviceName names a device registered with the server ("tokyo",
	// "melbourne", ...). Registered devices participate in calibration
	// epochs: reloading calibration bumps the epoch and invalidates the
	// affected cache entries.
	DeviceName string `json:"device_name,omitempty"`
	// Circuit is the problem description: the ZZ interactions of the cost
	// Hamiltonian.
	Circuit CircuitDoc `json:"circuit"`
	// Config is the compiler configuration.
	Config ConfigDoc `json:"config"`
}

// CircuitDoc describes the problem QAOA circuit: n logical qubits and the
// required ZZ interactions between qubit pairs (the cost Hamiltonian),
// mirroring QAOA-Compiler's circuit_json. Weights scale the per-level
// gamma; omitted or zero weights default to 1 (plain MaxCut).
type CircuitDoc struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
	// Weights has one entry per edge when present.
	Weights []float64 `json:"weights,omitempty"`
}

// ConfigDoc mirrors QAOA-Compiler's config_json: target p-level, packing
// limit, compilation policy and seed, plus the service-level knobs
// (deadline, resilience).
type ConfigDoc struct {
	// Policy is the compilation preset: NAIVE | GreedyV | QAIM | IP | IC |
	// VIC (default IC).
	Policy string `json:"policy,omitempty"`
	// P is the number of QAOA levels (default 1).
	P int `json:"p,omitempty"`
	// Gamma and Beta are the per-level angles. When omitted they default to
	// the fixed schedule gamma[l]=0.8/(l+1), beta[l]=0.4/(l+1) — the same
	// angles the qaoac CLI uses — so a pure-compilation client need not
	// care about angles at all.
	Gamma []float64 `json:"gamma,omitempty"`
	Beta  []float64 `json:"beta,omitempty"`
	// PackingLimit caps CPhase gates per formed layer (0 = unlimited).
	PackingLimit int `json:"packing_limit,omitempty"`
	// Seed drives every random choice of the compilation (default 1), so a
	// request is a pure function of its document.
	Seed int64 `json:"seed,omitempty"`
	// Optimize applies peephole rewrites to the compiled circuits.
	Optimize bool `json:"optimize,omitempty"`
	// DeadlineMS bounds how long this client waits for the result. The
	// compile flight itself runs under the server's compile budget; the
	// deadline bounds only this request's wait, so an impatient client can
	// never abort a compilation other waiters still want (see DESIGN §10).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// EmitQASM includes the OpenQASM 2.0 export of the native circuit in
	// the response.
	EmitQASM bool `json:"emit_qasm,omitempty"`
}

// CompileResponse is the JSON body of a successful POST /v1/compile.
type CompileResponse struct {
	Status string `json:"status"`
	// CacheKey identifies the compiled artifact: requests with equal keys
	// receive byte-identical circuits.
	CacheKey string `json:"cache_key"`
	// Cached is true when the result was served from the compiled-circuit
	// cache (including singleflight waiters of the same flight).
	Cached bool   `json:"cached"`
	Device string `json:"device"`
	// PresetRequested and PresetEffective record graceful degradation: they
	// differ when the fallback ladder or an open circuit breaker routed the
	// request to a cheaper preset.
	PresetRequested string `json:"preset_requested"`
	PresetEffective string `json:"preset_effective"`
	Degraded        bool   `json:"degraded,omitempty"`
	DegradedReason  string `json:"degraded_reason,omitempty"`
	Attempts        int    `json:"attempts,omitempty"`

	Swaps         int    `json:"swaps"`
	Depth         int    `json:"depth"`
	Gates         int    `json:"gates"`
	InitialLayout []int  `json:"initial_layout"`
	FinalLayout   []int  `json:"final_layout"`
	Circuit       string `json:"circuit"`
	QASM          string `json:"qasm,omitempty"`
}

// ErrorResponse is the JSON body of a failed request. Kind is machine
// matchable: bad_request | shed | breaker_open | deadline | compile_failed
// | draining.
type ErrorResponse struct {
	Status string `json:"status"`
	Kind   string `json:"kind"`
	Error  string `json:"error"`
}

// parsedRequest is a validated, canonicalized compile request ready to key
// the cache and drive a flight.
type parsedRequest struct {
	spec     compile.Spec
	dev      *device.Device
	deviceID string // registered "name@epoch" or "inline:<fingerprint>"
	devName  string
	preset   compile.Preset
	seed     int64
	packing  int
	optimize bool
	emitQASM bool
	key      string        // full cache/singleflight key (includes angles)
	wait     time.Duration // client wait budget (0 = server default)

	// Parameterized-compilation view of the same request: the angle-free
	// structure, the angles to bind, and the angle-free skeleton-tier key.
	// Unused (skelKey empty) for optimize requests — peephole rewriting is
	// angle-dependent, so those can only be cached post-bind.
	paramSpec compile.ParamSpec
	gamma     []float64
	beta      []float64
	skelKey   string
}

// flightKey keys the singleflight group: skeleton-eligible requests
// deduplicate on the angle-free key, so concurrent distinct-angle requests
// over the same structure share a single routing pass and each waiter binds
// its own angles.
func (p *parsedRequest) flightKey() string {
	if p.skelKey != "" {
		return p.skelKey
	}
	return p.key
}

// parseRequest validates and canonicalizes req against the device registry.
// Canonicalization sorts the ZZ terms by (u,v), so two documents listing
// the same edges in different order compile to the same circuit and share
// one cache entry.
func (s *Server) parseRequest(req *CompileRequest) (*parsedRequest, error) {
	p := &parsedRequest{}

	// Device: inline document or registered name.
	switch {
	case len(req.Device) > 0 && req.DeviceName != "":
		return nil, fmt.Errorf("device and device_name are mutually exclusive")
	case len(req.Device) > 0:
		dev, err := device.FromJSON(req.Device)
		if err != nil {
			return nil, err
		}
		fp, err := deviceFingerprint(dev)
		if err != nil {
			return nil, err
		}
		p.dev, p.deviceID, p.devName = dev, "inline:"+fp, dev.Name
	case req.DeviceName != "":
		dev, epoch, err := s.devices.get(req.DeviceName)
		if err != nil {
			return nil, err
		}
		p.dev = dev
		p.devName = req.DeviceName
		p.deviceID = fmt.Sprintf("%s@%d", req.DeviceName, epoch)
	default:
		return nil, fmt.Errorf("one of device or device_name is required")
	}

	// Config.
	cfg := req.Config
	p.preset = compile.PresetIC
	if cfg.Policy != "" {
		var ok bool
		p.preset, ok = presetByName(cfg.Policy)
		if !ok {
			return nil, fmt.Errorf("unknown policy %q", cfg.Policy)
		}
	}
	levels := cfg.P
	if levels == 0 {
		levels = 1
	}
	if levels < 0 || levels > maxLevels {
		return nil, fmt.Errorf("p %d outside [1,%d]", levels, maxLevels)
	}
	gamma, beta := cfg.Gamma, cfg.Beta
	if gamma == nil && beta == nil {
		gamma = make([]float64, levels)
		beta = make([]float64, levels)
		for l := 0; l < levels; l++ {
			gamma[l] = 0.8 / float64(l+1)
			beta[l] = 0.4 / float64(l+1)
		}
	}
	if len(gamma) != levels || len(beta) != levels {
		return nil, fmt.Errorf("gamma/beta lengths (%d,%d) must both equal p=%d", len(gamma), len(beta), levels)
	}
	p.seed = cfg.Seed
	if p.seed == 0 {
		p.seed = 1
	}
	if cfg.PackingLimit < 0 {
		return nil, fmt.Errorf("packing_limit %d negative", cfg.PackingLimit)
	}
	p.packing = cfg.PackingLimit
	p.optimize = cfg.Optimize
	p.emitQASM = cfg.EmitQASM
	if cfg.DeadlineMS < 0 {
		return nil, fmt.Errorf("deadline_ms %d negative", cfg.DeadlineMS)
	}
	if cfg.DeadlineMS > 0 {
		p.wait = time.Duration(cfg.DeadlineMS) * time.Millisecond
	}

	// Circuit → canonical spec.
	c := req.Circuit
	if c.N <= 0 {
		return nil, fmt.Errorf("circuit.n must be positive")
	}
	if c.N > maxQubits {
		return nil, fmt.Errorf("circuit.n %d exceeds the service limit %d", c.N, maxQubits)
	}
	if len(c.Edges) == 0 {
		return nil, fmt.Errorf("circuit.edges must be non-empty")
	}
	if c.Weights != nil && len(c.Weights) != len(c.Edges) {
		return nil, fmt.Errorf("circuit.weights has %d entries for %d edges", len(c.Weights), len(c.Edges))
	}
	type wedge struct {
		u, v int
		w    float64
	}
	canon := make([]wedge, len(c.Edges))
	for i, e := range c.Edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= c.N || u == v {
			return nil, fmt.Errorf("circuit edge (%d,%d) invalid for n=%d", e[0], e[1], c.N)
		}
		w := 1.0
		if c.Weights != nil && c.Weights[i] != 0 {
			w = c.Weights[i]
		}
		canon[i] = wedge{u, v, w}
	}
	sort.Slice(canon, func(a, b int) bool {
		if canon[a].u != canon[b].u {
			return canon[a].u < canon[b].u
		}
		if canon[a].v != canon[b].v {
			return canon[a].v < canon[b].v
		}
		return canon[a].w < canon[b].w
	})
	for i := 1; i < len(canon); i++ {
		if canon[i].u == canon[i-1].u && canon[i].v == canon[i-1].v {
			return nil, fmt.Errorf("duplicate circuit edge (%d,%d)", canon[i].u, canon[i].v)
		}
	}

	p.spec = compile.Spec{N: c.N, Levels: make([]compile.LevelSpec, levels)}
	for l := 0; l < levels; l++ {
		terms := make([]compile.ZZTerm, len(canon))
		for i, e := range canon {
			terms[i] = compile.ZZTerm{U: e.u, V: e.v, Theta: -gamma[l] * e.w}
		}
		p.spec.Levels[l] = compile.LevelSpec{ZZ: terms, MixerBeta: beta[l]}
	}
	if err := p.spec.Validate(); err != nil {
		return nil, err
	}

	// The same request, angle-free: the skeleton tier compiles this once per
	// structure and binds gamma/beta per request. The term order matches the
	// spec's, so a bound skeleton is byte-identical to the direct compile.
	p.gamma, p.beta = gamma, beta
	p.paramSpec = compile.ParamSpec{N: c.N, P: levels, Terms: make([]compile.WeightedTerm, len(canon))}
	for i, e := range canon {
		p.paramSpec.Terms[i] = compile.WeightedTerm{U: e.u, V: e.v, Weight: e.w}
	}

	// Cache key: canonical graph hash × device(+epoch) × preset × config.
	h := sha256.New()
	fmt.Fprintf(h, "dev=%s\npreset=%s\nseed=%d\npacking=%d\noptimize=%t\nn=%d\np=%d\n",
		p.deviceID, p.preset, p.seed, p.packing, p.optimize, c.N, levels)
	for l := 0; l < levels; l++ {
		fmt.Fprintf(h, "level=%d gamma=%g beta=%g\n", l, gamma[l], beta[l])
	}
	for _, e := range canon {
		fmt.Fprintf(h, "%d %d %g\n", e.u, e.v, e.w)
	}
	p.key = hex.EncodeToString(h.Sum(nil))

	// Skeleton-tier key: the full key's layout minus the angle lines, plus a
	// marker so the two keyspaces can never collide. Optimize requests get
	// no skeleton key — their gate structure depends on the angles.
	if !p.optimize {
		h = sha256.New()
		fmt.Fprintf(h, "skeleton\ndev=%s\npreset=%s\nseed=%d\npacking=%d\nn=%d\np=%d\n",
			p.deviceID, p.preset, p.seed, p.packing, c.N, levels)
		for _, e := range canon {
			fmt.Fprintf(h, "%d %d %g\n", e.u, e.v, e.w)
		}
		p.skelKey = hex.EncodeToString(h.Sum(nil))
	}
	return p, nil
}

// deviceFingerprint hashes the canonical JSON serialization of dev —
// coupling map and calibration — so an inline device with any different
// revision (one drifted error rate is enough) can never share cache
// entries with another.
func deviceFingerprint(dev *device.Device) (string, error) {
	data, err := dev.MarshalJSON()
	if err != nil {
		return "", fmt.Errorf("fingerprinting device: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// presetByName resolves a policy string case-insensitively.
func presetByName(name string) (compile.Preset, bool) {
	for _, p := range compile.Presets {
		if strings.EqualFold(p.String(), name) {
			return p, true
		}
	}
	return 0, false
}

// Request shape limits: a compile server must bound the work one document
// can demand before admission control ever sees it.
const (
	maxLevels  = 32
	maxQubits  = 1024
	maxBodyLen = 8 << 20 // 8 MiB request body cap
)
