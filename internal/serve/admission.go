package serve

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obsv"
)

// errShed is returned by admission.acquire when both the worker pool and
// the bounded wait queue are full — the load-shedding signal that becomes
// a 429 with Retry-After. Shedding at admission keeps the tail of the
// latency distribution bounded: past the queue there is no place where a
// request can wait invisibly.
var errShed = errors.New("serve: admission queue full")

// admission is a bounded work queue: at most workers compiles run
// concurrently and at most queue flights wait for a slot; anything beyond
// that is shed immediately. Only flight leaders pass through admission —
// singleflight waiters of an admitted flight cost nothing.
type admission struct {
	sem chan struct{}

	mu      sync.Mutex
	waiting int
	queue   int

	obs *obsv.Collector
}

func newAdmission(workers, queue int, obs *obsv.Collector) *admission {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{sem: make(chan struct{}, workers), queue: queue, obs: obs}
}

// acquire obtains a worker slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success; errShed when the
// queue is full; or ctx.Err() when the caller's context ends first.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.sem <- struct{}{}:
		a.obs.Set(obsv.GaugeServeInflight, float64(len(a.sem)))
		return a.release, nil
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.queue {
		a.mu.Unlock()
		return nil, errShed
	}
	a.waiting++
	a.obs.Set(obsv.GaugeServeQueueDepth, float64(a.waiting))
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.obs.Set(obsv.GaugeServeQueueDepth, float64(a.waiting))
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		a.obs.Set(obsv.GaugeServeInflight, float64(len(a.sem)))
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) release() {
	<-a.sem
	a.obs.Set(obsv.GaugeServeInflight, float64(len(a.sem)))
}

// queueDepth reports how many flights are waiting for a worker slot.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// retryAfterSeconds estimates when capacity frees up: one queue drain
// period per full queue, at least one second. Deterministic given the
// queue state, so shed accounting and client backoff reproduce in tests.
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	workers := cap(a.sem)
	if workers == 0 {
		return 1
	}
	s := (a.waiting + workers - 1) / workers
	if s < 1 {
		s = 1
	}
	return s
}
