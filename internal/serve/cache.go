package serve

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// outcome is one compiled artifact: the immutable payload a cache entry
// holds and every waiter of a flight receives. Nothing in it is ever
// mutated after construction, which is what makes "byte-identical circuits
// to all waiters" a structural guarantee rather than a test-only
// observation.
type outcome struct {
	circuitText string
	qasm        string
	swaps       int
	depth       int
	gates       int
	initial     []int
	final       []int
	effective   string
	requested   string
	degraded    bool
	degradedWhy string
	attempts    int
	deviceName  string
	deviceID    string
	// Observability facts of the compile that produced the artifact: how
	// far the fallback ladder descended and the per-pass durations, surfaced
	// on wide-event lines and inspector records (cache hits report the
	// original compile's pass times).
	fallbackDepth int
	mapTime       time.Duration
	orderTime     time.Duration
	routeTime     time.Duration
	compileTime   time.Duration
	// trace holds the compile's decision-level events when the server runs
	// with Config.TraceRequests; nil otherwise.
	trace []trace.Event
}

// skelEntry is one cached routed skeleton plus the compile-time facts every
// binding of it shares: the breaker-chosen starting preset, whether the
// request was rerouted, and the compile's decision trace. A skeleton entry
// serves every angle set over the same (graph, device revision, preset,
// seed, packing) — binding writes the angles into a pooled buffer without
// repeating any routing work.
type skelEntry struct {
	skel     *compile.Skeleton
	start    compile.Preset
	rerouted bool
	trace    []trace.Event
}

// cacheCounters names the obsv counters one LRU tier reports to, so the
// compiled-circuit tier and the skeleton tier stay separately observable.
type cacheCounters struct {
	hits, misses, evictions, invalidations string
}

// lru is a mutex-guarded LRU keyed by the canonical request hash. Each
// entry remembers its deviceID so calibration reloads can invalidate
// exactly the entries of the affected device revision. The server runs two
// tiers: the full-key tier holds immutable compiled outcomes, the
// angle-free tier holds routed skeletons.
type lru[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
	obs   *obsv.Collector
	cnt   cacheCounters
}

type cacheEntry[V any] struct {
	key      string
	deviceID string
	val      V
}

func newLRU[V any](max int, obs *obsv.Collector, cnt cacheCounters) *lru[V] {
	if max <= 0 {
		max = 1024
	}
	return &lru[V]{max: max, ll: list.New(), items: make(map[string]*list.Element), obs: obs, cnt: cnt}
}

// newCache builds the compiled-circuit tier.
func newCache(max int, obs *obsv.Collector) *lru[*outcome] {
	return newLRU[*outcome](max, obs, cacheCounters{
		hits:          obsv.CntServeCacheHits,
		misses:        obsv.CntServeCacheMisses,
		evictions:     obsv.CntServeCacheEvictions,
		invalidations: obsv.CntServeCacheInvalidations,
	})
}

// newSkelCache builds the angle-free skeleton tier.
func newSkelCache(max int, obs *obsv.Collector) *lru[*skelEntry] {
	return newLRU[*skelEntry](max, obs, cacheCounters{
		hits:          obsv.CntServeSkeletonHits,
		misses:        obsv.CntServeSkeletonMisses,
		evictions:     obsv.CntServeSkeletonEvictions,
		invalidations: obsv.CntServeSkeletonInvalidations,
	})
}

func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.obs.Inc(c.cnt.misses) //lint:allow obsvnames: registry constant injected via cacheCounters
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.obs.Inc(c.cnt.hits) //lint:allow obsvnames: registry constant injected via cacheCounters
	return el.Value.(*cacheEntry[V]).val, true
}

func (c *lru[V]) put(key, deviceID string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry[V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry[V]{key: key, deviceID: deviceID, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry[V]).key)
		c.obs.Inc(c.cnt.evictions) //lint:allow obsvnames: registry constant injected via cacheCounters
	}
}

// invalidateDevice drops every entry compiled against any epoch of the
// named registered device, returning how many were dropped. Entries of
// other devices are untouched.
func (c *lru[V]) invalidateDevice(name string) int {
	prefix := name + "@"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry[V])
		if strings.HasPrefix(e.deviceID, prefix) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	c.obs.Add(c.cnt.invalidations, int64(n)) //lint:allow obsvnames: registry constant injected via cacheCounters
	return n
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-progress compilation shared by every concurrent request
// with the same cache key — singleflight deduplication. done is closed
// exactly once, after out/err are set.
//
// Two flavors exist. An optimize flight is keyed on the full request hash
// and carries a finished outcome. A skeleton flight is keyed on the
// angle-free hash and carries the routed skeleton instead: every waiter —
// each possibly holding different angles — binds its own parameters and
// caches the result under its own full key, so one routing pass serves the
// whole angle sweep that piled up behind it.
type flight struct {
	done chan struct{}
	out  *outcome
	skel *skelEntry
	err  error
	// queueWait and breaker are set by the leader before finish closes
	// done; waiters read them afterwards (the channel close orders the
	// accesses).
	queueWait time.Duration
	breaker   string
}

// flightGroup deduplicates concurrent compiles by key.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the flight for key, creating it when absent. leader is true
// for the caller that must run the compilation and finish the flight.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the flight's result, wakes every waiter, and removes the
// flight from the group. The leader must call put on the cache before
// finish, so a request arriving after removal hits the cache instead of
// starting a duplicate flight.
func (g *flightGroup) finish(key string, f *flight, out *outcome, err error) {
	f.out, f.err = out, err
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
}

// registry holds the named devices the server compiles against, each with
// a monotonically increasing calibration epoch. Devices are swapped
// copy-on-write on calibration reload: in-flight compilations keep the
// snapshot they started with, new requests see the new epoch.
type registry struct {
	mu      sync.RWMutex
	devices map[string]*regDevice
}

type regDevice struct {
	dev   *device.Device
	epoch int64
}

func newRegistry() *registry {
	return &registry{devices: make(map[string]*regDevice)}
}

// register adds (or replaces) a named device at epoch 0.
func (r *registry) register(name string, dev *device.Device) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices[name] = &regDevice{dev: dev}
}

func (r *registry) get(name string) (*device.Device, int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rd, ok := r.devices[name]
	if !ok {
		return nil, 0, fmt.Errorf("unknown device %q", name)
	}
	return rd.dev, rd.epoch, nil
}

// names returns the registered device names, sorted.
func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.devices))
	for n := range r.devices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// reload validates and attaches cal to a fresh copy of the named device and
// bumps its calibration epoch — the service form of the
// SetCalibration-invalidates-caches discipline. The returned epoch is the
// new one.
func (r *registry) reload(name string, cal *device.Calibration) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd, ok := r.devices[name]
	if !ok {
		return 0, fmt.Errorf("unknown device %q", name)
	}
	// Fresh Device so in-flight compiles keep their consistent snapshot;
	// SetCalibration validates and leaves the new device's distance caches
	// empty (built lazily on first use).
	next := &device.Device{Name: rd.dev.Name, Coupling: rd.dev.Coupling, Calib: rd.dev.Calib}
	if err := next.SetCalibration(cal); err != nil {
		return 0, err
	}
	rd.dev = next
	rd.epoch++
	return rd.epoch, nil
}
