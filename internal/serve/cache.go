package serve

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/trace"
)

// outcome is one compiled artifact: the immutable payload a cache entry
// holds and every waiter of a flight receives. Nothing in it is ever
// mutated after construction, which is what makes "byte-identical circuits
// to all waiters" a structural guarantee rather than a test-only
// observation.
type outcome struct {
	circuitText string
	qasm        string
	swaps       int
	depth       int
	gates       int
	initial     []int
	final       []int
	effective   string
	requested   string
	degraded    bool
	degradedWhy string
	attempts    int
	deviceName  string
	deviceID    string
	// Observability facts of the compile that produced the artifact: how
	// far the fallback ladder descended and the per-pass durations, surfaced
	// on wide-event lines and inspector records (cache hits report the
	// original compile's pass times).
	fallbackDepth int
	mapTime       time.Duration
	orderTime     time.Duration
	routeTime     time.Duration
	compileTime   time.Duration
	// trace holds the compile's decision-level events when the server runs
	// with Config.TraceRequests; nil otherwise.
	trace []trace.Event
}

// cache is a mutex-guarded LRU of compiled outcomes keyed by the canonical
// request hash. Each entry remembers its deviceID so calibration reloads
// can invalidate exactly the entries of the affected device revision.
type cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
	obs   *obsv.Collector
}

type cacheEntry struct {
	key      string
	deviceID string
	out      *outcome
}

func newCache(max int, obs *obsv.Collector) *cache {
	if max <= 0 {
		max = 1024
	}
	return &cache{max: max, ll: list.New(), items: make(map[string]*list.Element), obs: obs}
}

func (c *cache) get(key string) (*outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.obs.Inc(obsv.CntServeCacheMisses)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.obs.Inc(obsv.CntServeCacheHits)
	return el.Value.(*cacheEntry).out, true
}

func (c *cache) put(key, deviceID string, out *outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).out = out
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, deviceID: deviceID, out: out})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.obs.Inc(obsv.CntServeCacheEvictions)
	}
}

// invalidateDevice drops every entry compiled against any epoch of the
// named registered device, returning how many were dropped. Entries of
// other devices are untouched.
func (c *cache) invalidateDevice(name string) int {
	prefix := name + "@"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if strings.HasPrefix(e.deviceID, prefix) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	c.obs.Add(obsv.CntServeCacheInvalidations, int64(n))
	return n
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-progress compilation shared by every concurrent request
// with the same cache key — singleflight deduplication. done is closed
// exactly once, after out/err are set.
type flight struct {
	done chan struct{}
	out  *outcome
	err  error
	// queueWait and breaker are set by the leader before finish closes
	// done; waiters read them afterwards (the channel close orders the
	// accesses).
	queueWait time.Duration
	breaker   string
}

// flightGroup deduplicates concurrent compiles by key.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join returns the flight for key, creating it when absent. leader is true
// for the caller that must run the compilation and finish the flight.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the flight's result, wakes every waiter, and removes the
// flight from the group. The leader must call put on the cache before
// finish, so a request arriving after removal hits the cache instead of
// starting a duplicate flight.
func (g *flightGroup) finish(key string, f *flight, out *outcome, err error) {
	f.out, f.err = out, err
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
}

// registry holds the named devices the server compiles against, each with
// a monotonically increasing calibration epoch. Devices are swapped
// copy-on-write on calibration reload: in-flight compilations keep the
// snapshot they started with, new requests see the new epoch.
type registry struct {
	mu      sync.RWMutex
	devices map[string]*regDevice
}

type regDevice struct {
	dev   *device.Device
	epoch int64
}

func newRegistry() *registry {
	return &registry{devices: make(map[string]*regDevice)}
}

// register adds (or replaces) a named device at epoch 0.
func (r *registry) register(name string, dev *device.Device) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices[name] = &regDevice{dev: dev}
}

func (r *registry) get(name string) (*device.Device, int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rd, ok := r.devices[name]
	if !ok {
		return nil, 0, fmt.Errorf("unknown device %q", name)
	}
	return rd.dev, rd.epoch, nil
}

// names returns the registered device names, sorted.
func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.devices))
	for n := range r.devices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// reload validates and attaches cal to a fresh copy of the named device and
// bumps its calibration epoch — the service form of the
// SetCalibration-invalidates-caches discipline. The returned epoch is the
// new one.
func (r *registry) reload(name string, cal *device.Calibration) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rd, ok := r.devices[name]
	if !ok {
		return 0, fmt.Errorf("unknown device %q", name)
	}
	// Fresh Device so in-flight compiles keep their consistent snapshot;
	// SetCalibration validates and leaves the new device's distance caches
	// empty (built lazily on first use).
	next := &device.Device{Name: rd.dev.Name, Coupling: rd.dev.Coupling, Calib: rd.dev.Calib}
	if err := next.SetCalibration(cal); err != nil {
		return 0, err
	}
	rd.dev = next
	rd.epoch++
	return rd.epoch, nil
}
