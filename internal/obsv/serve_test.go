package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpointExposesCollector(t *testing.T) {
	c := New()
	c.Add(CntCompileSwaps, 12)
	c.Inc(CntCompilations)
	c.Set("fig7/ratio", 0.8)
	c.RecordSpan(SpanCompileMap, 3*time.Millisecond)

	h := NewHandler(c, nil, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"qaoa_compile_swaps_total 12",
		"qaoa_compile_compilations_total 1",
		"qaoa_fig7_ratio 0.8",
		"qaoa_compile_map_count 1",
		"qaoa_compile_map_seconds_sum 0.003",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	// Live: a second scrape must see new increments.
	c.Add(CntCompileSwaps, 3)
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "qaoa_compile_swaps_total 15") {
		t.Errorf("second scrape not live:\n%s", body2)
	}
}

func TestMetricsEndpointNilCollector(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("nil-collector /metrics returned %d", resp.StatusCode)
	}
}

func TestHealthzReportsProgress(t *testing.T) {
	progress := func() Progress { return Progress{Phase: "fig7", Done: 3, Total: 10} }
	srv := httptest.NewServer(NewHandler(New(), progress, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Status   string    `json:"status"`
		UptimeMS int64     `json:"uptime_ms"`
		Progress *Progress `json:"progress"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" {
		t.Errorf("status %q", got.Status)
	}
	if got.Progress == nil || got.Progress.Phase != "fig7" || got.Progress.Done != 3 || got.Progress.Total != 10 {
		t.Errorf("progress = %+v", got.Progress)
	}
}

func TestPprofIndexServed(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ returned %d", resp.StatusCode)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	c := New()
	c.Inc(CntCompilations)
	ln, err := NewHandler(c, nil, nil).Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "qaoa_compile_compilations_total 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"compile/swaps":    "qaoa_compile_swaps",
		"fig7/ratio":       "qaoa_fig7_ratio",
		"a-b.c d":          "qaoa_a_b_c_d",
		"already_fine_123": "qaoa_already_fine_123",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
