package obsv

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Canonical wide-event logging: instead of scattering a request's story
// across many small log lines, each request emits exactly one JSON object
// carrying everything an operator needs to answer "why was this request
// slow?" — id, preset, cache hit/miss, queue wait, breaker state, fallback
// depth, per-pass durations, outcome. One line per request keeps log
// volume proportional to traffic, makes every line self-joining (grep one
// req_id, get the whole story), and lets the CI log-schema gate parse a
// single sample line to validate the producer.
//
// Field names are registry constants (names.go, Field*); the qaoalint
// obsvnames analyzer rejects literals at WideEvent call sites exactly as
// it does for metric names.

// NewLogger builds the stdlib log/slog JSON logger every binary shares:
// one JSON object per line on w, millisecond timestamps, no source
// locations (wide events identify themselves by their fields, not by call
// sites). A nil writer yields a disabled logger that discards everything,
// so call sites need no nil checks.
func NewLogger(w io.Writer) *slog.Logger {
	if w == nil {
		return slog.New(discardHandler{})
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// discardHandler is a slog.Handler that drops everything (slog.DiscardHandler
// arrives only in go 1.24; this module builds at 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// WideEvent accumulates the attributes of one canonical log line. The zero
// value is ready to use. It is not safe for concurrent use: one request
// handler owns one event.
type WideEvent struct {
	attrs []slog.Attr
}

// Str adds a string field. Field names must be Field* registry constants.
func (e *WideEvent) Str(name, v string) *WideEvent {
	e.attrs = append(e.attrs, slog.String(name, v))
	return e
}

// Int adds an integer field.
func (e *WideEvent) Int(name string, v int64) *WideEvent {
	e.attrs = append(e.attrs, slog.Int64(name, v))
	return e
}

// Float adds a float field.
func (e *WideEvent) Float(name string, v float64) *WideEvent {
	e.attrs = append(e.attrs, slog.Float64(name, v))
	return e
}

// Bool adds a boolean field.
func (e *WideEvent) Bool(name string, v bool) *WideEvent {
	e.attrs = append(e.attrs, slog.Bool(name, v))
	return e
}

// DurMS adds a duration field in (fractional) milliseconds — the one time
// unit every latency surface of the pipeline shares.
func (e *WideEvent) DurMS(name string, d time.Duration) *WideEvent {
	e.attrs = append(e.attrs, slog.Float64(name, float64(d.Microseconds())/1000.0))
	return e
}

// Unregistered returns the attached field names missing from the field
// registry — the runtime half of the wide-event schema gate (the static
// half is the obsvnames analyzer).
func (e *WideEvent) Unregistered() []string {
	var out []string
	for _, a := range e.attrs {
		if !FieldRegistered(a.Key) {
			out = append(out, a.Key)
		}
	}
	return out
}

// Emit writes the event as one log line under msg at info level. A nil
// logger discards the event.
func (e *WideEvent) Emit(l *slog.Logger, msg string) {
	if l == nil {
		return
	}
	l.LogAttrs(context.Background(), slog.LevelInfo, msg, e.attrs...)
}

// WideEventMsgRequest is the canonical msg value of per-request wide
// events; the CI log-schema gate selects sample lines by it.
const WideEventMsgRequest = "request"
