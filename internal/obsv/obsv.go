// Package obsv is the compiler's observability layer: a lightweight,
// allocation-conscious collector of span timings, monotonic counters and
// gauges that the compilation pipeline (compile, router, device, exp, loop,
// sim) reports into, plus a stable machine-readable JSON Report emitted as
// BENCH_<rev>.json by the benchmark harness and the -metrics-out flag of
// the command-line tools.
//
// The collector is nil-safe: every method on a nil *Collector is a no-op
// that performs no allocation and reads no clock, so instrumented code
// costs nothing when observability is disabled. A non-nil Collector is safe
// for concurrent use by the sweep harness's instance fan-out.
package obsv

import (
	"sort"
	"sync"
	"time"
)

// Collector accumulates counters, gauges and span statistics. The zero
// value is not usable; construct with New. A nil *Collector is a valid
// disabled collector: all methods no-op.
type Collector struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	spans    map[string]*spanAccum
	hists    map[string]*Histogram
}

type spanAccum struct {
	count           int64
	total, min, max time.Duration
}

// New returns an empty enabled collector.
func New() *Collector {
	return &Collector{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		spans:    make(map[string]*spanAccum),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the collector records anything (i.e. is non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// Add increments the named monotonic counter by delta. No-op on nil.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one. No-op on nil.
func (c *Collector) Inc(name string) { c.Add(name, 1) }

// Set records the named gauge's current value, overwriting any previous
// one. By convention gauges never carry wall-clock readings (those belong
// in spans), so reports stay byte-comparable after StripTimings. No-op on
// nil.
func (c *Collector) Set(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// RecordSpan folds a pre-measured duration into the named span's
// statistics. No-op on nil.
func (c *Collector) RecordSpan(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.spans[name]
	if s == nil {
		s = &spanAccum{min: d, max: d}
		c.spans[name] = s
	}
	s.count++
	s.total += d
	if d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	c.mu.Unlock()
}

// Span is an in-flight timed region started by StartSpan. The zero Span
// (from a nil collector) is inert.
type Span struct {
	c     *Collector
	name  string
	start time.Time
}

// StartSpan begins timing a named region; call End on the returned Span to
// record it. On a nil collector no clock is read and End is a no-op.
func (c *Collector) StartSpan(name string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, name: name, start: time.Now()}
}

// End records the span's elapsed time and returns it (0 for an inert span).
func (s Span) End() time.Duration {
	if s.c == nil {
		return 0
	}
	d := time.Since(s.start)
	s.c.RecordSpan(s.name, d)
	return d
}

// Observe adds one value to the named histogram, creating it over the
// canonical log-linear latency bounds (DefaultLatencyBounds) on first use.
// All collector histograms share that one boundary scheme: it is what
// makes every exported distribution mergeable and the BENCH JSON
// byte-stable. No-op on nil.
func (c *Collector) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = NewHistogram(DefaultLatencyBounds())
		c.hists[name] = h
	}
	c.mu.Unlock()
	h.Observe(v)
}

// HistogramStatOf snapshots the named histogram (zero-valued stat with a
// nil Bounds slice when absent or nil collector).
func (c *Collector) HistogramStatOf(name string) HistogramStat {
	if c == nil {
		return HistogramStat{Name: name}
	}
	c.mu.Lock()
	h := c.hists[name]
	c.mu.Unlock()
	if h == nil {
		return HistogramStat{Name: name}
	}
	return h.Stat(name)
}

// Counter returns the named counter's current value (0 when absent or nil).
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Gauge returns the named gauge and whether it has been set.
func (c *Collector) Gauge(name string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.gauges[name]
	return v, ok
}

// Reset clears every counter, gauge and span. No-op on nil.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters = make(map[string]int64)
	c.gauges = make(map[string]float64)
	c.spans = make(map[string]*spanAccum)
	c.hists = make(map[string]*Histogram)
	c.mu.Unlock()
}

// SpanStat is the aggregated statistics of one named span, in seconds.
type SpanStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	MinSec   float64 `json:"min_sec"`
	MaxSec   float64 `json:"max_sec"`
}

// Snapshot is a point-in-time copy of the collector's state with
// deterministic ordering (span and histogram lists sorted by name).
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Spans    []SpanStat
	Hists    []HistogramStat
}

// Snapshot copies the collector's current state. A nil collector yields a
// zero Snapshot.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(c.counters)),
		Gauges:   make(map[string]float64, len(c.gauges)),
		Spans:    make([]SpanStat, 0, len(c.spans)),
		Hists:    make([]HistogramStat, 0, len(c.hists)),
	}
	for k, v := range c.counters {
		snap.Counters[k] = v
	}
	for k, v := range c.gauges {
		snap.Gauges[k] = v
	}
	for name, s := range c.spans {
		snap.Spans = append(snap.Spans, SpanStat{
			Name:     name,
			Count:    s.count,
			TotalSec: s.total.Seconds(),
			MeanSec:  s.total.Seconds() / float64(s.count),
			MinSec:   s.min.Seconds(),
			MaxSec:   s.max.Seconds(),
		})
	}
	for name, h := range c.hists {
		snap.Hists = append(snap.Hists, h.Stat(name))
	}
	sort.Slice(snap.Spans, func(i, j int) bool { return snap.Spans[i].Name < snap.Spans[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}

// Hist returns the named histogram of the snapshot, or nil if nothing was
// observed under that name.
func (s Snapshot) Hist(name string) *HistogramStat {
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			return &s.Hists[i]
		}
	}
	return nil
}
