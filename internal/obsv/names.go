package obsv

import "sort"

// Every counter, gauge and span name the pipeline records is declared here
// and listed in the registry below. Producers must reference these
// constants instead of string literals: the registry is what the bench
// Compare gate, the Prometheus endpoint and the dashboards key on, so a
// typo in a producer would silently fork a metric. The pipeline test
// (obsv_names_test.go at the module root) runs the instrumented paths and
// fails on any recorded name the registry does not know.

// Span names (timed regions).
const (
	SpanCompileTotal    = "compile/total"
	SpanCompileMap      = "compile/map"
	SpanCompileOrder    = "compile/order"
	SpanCompileRoute    = "compile/route"
	SpanCompileStitch   = "compile/stitch"
	SpanExpInstance     = "exp/instance"
	SpanLoopExpectation = "loop/expectation"
	SpanSimIdealRun     = "sim/ideal_run"
	SpanSimSampleNoisy  = "sim/sample_noisy"
	SpanServeRequest    = "serve/request"
	SpanServeCompile    = "serve/compile_flight"
)

// Counter names (monotonic).
const (
	CntCompilations        = "compile/compilations"
	CntCompileSwaps        = "compile/swaps"
	CntCompileGates        = "compile/gates"
	CntCompileDepthTotal   = "compile/depth_total"
	CntCompileLayers       = "compile/layers"
	CntCompileResilient    = "compile/resilient"
	CntFallbackAttempts    = "compile/fallback_attempts"
	CntFallbackDepthTotal  = "compile/fallback_depth_total"
	CntFallbackDegraded    = "compile/fallback_degraded"
	CntRouterTrials        = "router/trials"
	CntRouterRoutes        = "router/routes"
	CntRouterLayers        = "router/layers"
	CntRouterSwaps         = "router/swaps"
	CntRouterForcedPaths   = "router/forced_paths"
	CntRouterScoreEvals    = "router/score_evals"
	CntCompileDistUpdates  = "compile/dist_updates"
	CntDeviceHopDistBuilds = "device/hopdist_builds"
	CntDeviceHopDistHits   = "device/hopdist_hits"
	CntDeviceRelDistBuilds = "device/reldist_builds"
	CntDeviceRelDistHits   = "device/reldist_hits"
	CntDeviceInvalidations = "device/cache_invalidations"
	CntExpInstances        = "exp/instances"
	CntExpRetries          = "exp/retries"
	CntExpFailures         = "exp/failures"
	CntLoopEvaluations     = "loop/evaluations"
	CntSimRuns             = "sim/runs"
	CntSimGates            = "sim/gates"
	CntSimAmpOps           = "sim/amp_ops"
	CntSimNoisyShots       = "sim/noisy_shots"
	CntSimTrajectories     = "sim/trajectories"
	CntSimFusedOps         = "sim/fused_ops"
	CntSimIdealReuses      = "sim/ideal_reuses"
	CntSimReplays          = "sim/replays"
	CntSimReplayGates      = "sim/replay_gates"
	CntSimCheckpoints      = "sim/checkpoints"
	CntSimCutTableBuilds   = "sim/cut_table_builds"
	CntTraceEvents         = "trace/events"

	// qaoad compile-service counters (internal/serve).
	CntServeRequests           = "serve/requests"
	CntServeOK                 = "serve/ok"
	CntServeErrors             = "serve/errors"
	CntServeBadRequests        = "serve/bad_requests"
	CntServeShed               = "serve/shed"
	CntServeDeadlineExceeded   = "serve/deadline_exceeded"
	CntServeClientGone         = "serve/client_gone"
	CntServeCacheHits          = "serve/cache_hits"
	CntServeCacheMisses        = "serve/cache_misses"
	CntServeCacheEvictions     = "serve/cache_evictions"
	CntServeCacheInvalidations = "serve/cache_invalidations"
	CntServeSingleflightShared = "serve/singleflight_shared"
	CntServeCompiles           = "serve/compiles"
	CntServeBreakerOpens       = "serve/breaker_opens"
	CntServeBreakerRejected    = "serve/breaker_rejected"
	CntServeBreakerRerouted    = "serve/breaker_rerouted"
	CntServeBreakerProbes      = "serve/breaker_probes"
	CntServeCalibReloads       = "serve/calib_reloads"
)

// Gauge names (point-in-time values; never wall-clock readings).
const (
	GaugeServeInflight   = "serve/inflight"
	GaugeServeQueueDepth = "serve/queue_depth"
)

// NameKind classifies a registered metric name.
type NameKind int

// Registered metric kinds.
const (
	KindCounter NameKind = iota
	KindGauge
	KindSpan
)

// String names the kind.
func (k NameKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSpan:
		return "span"
	}
	return "unknown"
}

// registry is the complete set of names the pipeline may record.
var registry = map[string]NameKind{
	SpanCompileTotal:    KindSpan,
	SpanCompileMap:      KindSpan,
	SpanCompileOrder:    KindSpan,
	SpanCompileRoute:    KindSpan,
	SpanCompileStitch:   KindSpan,
	SpanExpInstance:     KindSpan,
	SpanLoopExpectation: KindSpan,
	SpanSimIdealRun:     KindSpan,
	SpanSimSampleNoisy:  KindSpan,

	CntCompilations:        KindCounter,
	CntCompileSwaps:        KindCounter,
	CntCompileGates:        KindCounter,
	CntCompileDepthTotal:   KindCounter,
	CntCompileLayers:       KindCounter,
	CntCompileResilient:    KindCounter,
	CntFallbackAttempts:    KindCounter,
	CntFallbackDepthTotal:  KindCounter,
	CntFallbackDegraded:    KindCounter,
	CntRouterTrials:        KindCounter,
	CntRouterRoutes:        KindCounter,
	CntRouterLayers:        KindCounter,
	CntRouterSwaps:         KindCounter,
	CntRouterForcedPaths:   KindCounter,
	CntRouterScoreEvals:    KindCounter,
	CntCompileDistUpdates:  KindCounter,
	CntDeviceHopDistBuilds: KindCounter,
	CntDeviceHopDistHits:   KindCounter,
	CntDeviceRelDistBuilds: KindCounter,
	CntDeviceRelDistHits:   KindCounter,
	CntDeviceInvalidations: KindCounter,
	CntExpInstances:        KindCounter,
	CntExpRetries:          KindCounter,
	CntExpFailures:         KindCounter,
	CntLoopEvaluations:     KindCounter,
	CntSimRuns:             KindCounter,
	CntSimGates:            KindCounter,
	CntSimAmpOps:           KindCounter,
	CntSimNoisyShots:       KindCounter,
	CntSimTrajectories:     KindCounter,
	CntSimFusedOps:         KindCounter,
	CntSimIdealReuses:      KindCounter,
	CntSimReplays:          KindCounter,
	CntSimReplayGates:      KindCounter,
	CntSimCheckpoints:      KindCounter,
	CntSimCutTableBuilds:   KindCounter,
	CntTraceEvents:         KindCounter,

	SpanServeRequest: KindSpan,
	SpanServeCompile: KindSpan,

	CntServeRequests:           KindCounter,
	CntServeOK:                 KindCounter,
	CntServeErrors:             KindCounter,
	CntServeBadRequests:        KindCounter,
	CntServeShed:               KindCounter,
	CntServeDeadlineExceeded:   KindCounter,
	CntServeClientGone:         KindCounter,
	CntServeCacheHits:          KindCounter,
	CntServeCacheMisses:        KindCounter,
	CntServeCacheEvictions:     KindCounter,
	CntServeCacheInvalidations: KindCounter,
	CntServeSingleflightShared: KindCounter,
	CntServeCompiles:           KindCounter,
	CntServeBreakerOpens:       KindCounter,
	CntServeBreakerRejected:    KindCounter,
	CntServeBreakerRerouted:    KindCounter,
	CntServeBreakerProbes:      KindCounter,
	CntServeCalibReloads:       KindCounter,

	GaugeServeInflight:   KindGauge,
	GaugeServeQueueDepth: KindGauge,
}

// NameRegistered reports whether name is a known metric name.
func NameRegistered(name string) bool {
	_, ok := registry[name]
	return ok
}

// NameKindOf returns the registered kind of name (and false when unknown).
func NameKindOf(name string) (NameKind, bool) {
	k, ok := registry[name]
	return k, ok
}

// RegisteredNames returns every registered name, sorted.
func RegisteredNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Unregistered returns every name recorded in the snapshot that the
// registry does not know, sorted — the drift detector the pipeline test
// asserts empty.
func (s Snapshot) Unregistered() []string {
	var out []string
	for n := range s.Counters {
		if k, ok := registry[n]; !ok || k != KindCounter {
			out = append(out, n)
		}
	}
	for n := range s.Gauges {
		if k, ok := registry[n]; !ok || k != KindGauge {
			out = append(out, n)
		}
	}
	for _, sp := range s.Spans {
		if k, ok := registry[sp.Name]; !ok || k != KindSpan {
			out = append(out, sp.Name)
		}
	}
	sort.Strings(out)
	return out
}
