package obsv

import "sort"

// Every counter, gauge and span name the pipeline records is declared here
// and listed in the registry below. Producers must reference these
// constants instead of string literals: the registry is what the bench
// Compare gate, the Prometheus endpoint and the dashboards key on, so a
// typo in a producer would silently fork a metric. The pipeline test
// (obsv_names_test.go at the module root) runs the instrumented paths and
// fails on any recorded name the registry does not know.

// Span names (timed regions).
const (
	SpanCompileTotal    = "compile/total"
	SpanCompileMap      = "compile/map"
	SpanCompileOrder    = "compile/order"
	SpanCompileRoute    = "compile/route"
	SpanCompileStitch   = "compile/stitch"
	SpanExpInstance     = "exp/instance"
	SpanLoopExpectation = "loop/expectation"
	SpanSimIdealRun     = "sim/ideal_run"
	SpanSimSampleNoisy  = "sim/sample_noisy"
	SpanServeRequest    = "serve/request"
	SpanServeCompile    = "serve/compile_flight"
)

// Counter names (monotonic).
const (
	CntCompilations        = "compile/compilations"
	CntSkeletonCompiles    = "compile/skeleton_compiles"
	CntCompileBinds        = "compile/binds"
	CntCompileSwaps        = "compile/swaps"
	CntCompileGates        = "compile/gates"
	CntCompileDepthTotal   = "compile/depth_total"
	CntCompileLayers       = "compile/layers"
	CntCompileResilient    = "compile/resilient"
	CntFallbackAttempts    = "compile/fallback_attempts"
	CntFallbackDepthTotal  = "compile/fallback_depth_total"
	CntFallbackDegraded    = "compile/fallback_degraded"
	CntRouterTrials        = "router/trials"
	CntRouterRoutes        = "router/routes"
	CntRouterLayers        = "router/layers"
	CntRouterSwaps         = "router/swaps"
	CntRouterForcedPaths   = "router/forced_paths"
	CntRouterScoreEvals    = "router/score_evals"
	CntCompileDistUpdates  = "compile/dist_updates"
	CntDeviceHopDistBuilds = "device/hopdist_builds"
	CntDeviceHopDistHits   = "device/hopdist_hits"
	CntDeviceRelDistBuilds = "device/reldist_builds"
	CntDeviceRelDistHits   = "device/reldist_hits"
	CntDeviceInvalidations = "device/cache_invalidations"
	CntExpInstances        = "exp/instances"
	CntExpRetries          = "exp/retries"
	CntExpFailures         = "exp/failures"
	CntLoopEvaluations     = "loop/evaluations"
	CntSimRuns             = "sim/runs"
	CntSimGates            = "sim/gates"
	CntSimAmpOps           = "sim/amp_ops"
	CntSimNoisyShots       = "sim/noisy_shots"
	CntSimTrajectories     = "sim/trajectories"
	CntSimFusedOps         = "sim/fused_ops"
	CntSimIdealReuses      = "sim/ideal_reuses"
	CntSimReplays          = "sim/replays"
	CntSimReplayGates      = "sim/replay_gates"
	CntSimCheckpoints      = "sim/checkpoints"
	CntSimCutTableBuilds   = "sim/cut_table_builds"
	CntTraceEvents         = "trace/events"

	// qaoad compile-service counters (internal/serve).
	CntServeRequests           = "serve/requests"
	CntServeOK                 = "serve/ok"
	CntServeErrors             = "serve/errors"
	CntServeBadRequests        = "serve/bad_requests"
	CntServeShed               = "serve/shed"
	CntServeDeadlineExceeded   = "serve/deadline_exceeded"
	CntServeClientGone         = "serve/client_gone"
	CntServeCacheHits          = "serve/cache_hits"
	CntServeCacheMisses        = "serve/cache_misses"
	CntServeCacheEvictions     = "serve/cache_evictions"
	CntServeCacheInvalidations = "serve/cache_invalidations"
	CntServeSingleflightShared = "serve/singleflight_shared"
	// Skeleton-tier cache counters: the tier is keyed without angles, so
	// an angle-sweeping client hits it on every point after the first.
	CntServeSkeletonHits          = "serve/skeleton_hits"
	CntServeSkeletonMisses        = "serve/skeleton_misses"
	CntServeSkeletonEvictions     = "serve/skeleton_evictions"
	CntServeSkeletonInvalidations = "serve/skeleton_invalidations"
	CntServeCompiles              = "serve/compiles"
	CntServeBreakerOpens          = "serve/breaker_opens"
	CntServeBreakerRejected       = "serve/breaker_rejected"
	CntServeBreakerRerouted       = "serve/breaker_rerouted"
	CntServeBreakerProbes         = "serve/breaker_probes"
	CntServeCalibReloads          = "serve/calib_reloads"
)

// Gauge names (point-in-time values; never wall-clock readings).
const (
	GaugeServeInflight   = "serve/inflight"
	GaugeServeQueueDepth = "serve/queue_depth"
)

// Histogram names (fixed-boundary latency distributions in milliseconds,
// over DefaultLatencyBounds). The server-side request histograms are the
// source of truth for latency percentiles: load generators cross-check
// their client-observed quantiles against these, never the reverse.
const (
	// HistServeRequestMS is every POST /v1/compile request's total
	// server-side duration; the Cached/Uncached variants split it by
	// whether the response came from the compiled-circuit cache (a cache
	// hit or a shared singleflight) or paid for a compile flight.
	HistServeRequestMS         = "serve/request_ms"
	HistServeRequestCachedMS   = "serve/request_cached_ms"
	HistServeRequestUncachedMS = "serve/request_uncached_ms"
	// HistServeQueueWaitMS is how long admitted flights waited for a
	// worker slot (leaders only; singleflight waiters never queue).
	HistServeQueueWaitMS = "serve/queue_wait_ms"
)

// ServePresetNames are the compile presets the service tracks per-preset
// latency and SLO state for, in the paper's order. internal/serve asserts
// this list matches compile.Presets (obsv cannot import compile).
var ServePresetNames = []string{"NAIVE", "GreedyV", "QAIM", "IP", "IC", "VIC"}

// HistServePresetMS returns the registered per-preset request-latency
// histogram name ("serve/preset_ms/IC", ...). Unknown presets map to the
// registered catch-all "serve/preset_ms/other" rather than forking an
// unregistered series.
func HistServePresetMS(preset string) string {
	for _, p := range ServePresetNames {
		if p == preset {
			return "serve/preset_ms/" + p
		}
	}
	return "serve/preset_ms/other"
}

// CntServePresetRequests and CntServePresetErrors return the registered
// per-preset availability counters backing the SLO burn-rate computation:
// requests is every response attributed to the preset, errors the subset
// that failed the availability SLO (5xx server faults; shed and deadline
// responses are well-behaved overload, not availability violations).
func CntServePresetRequests(preset string) string {
	for _, p := range ServePresetNames {
		if p == preset {
			return "serve/preset_requests/" + p
		}
	}
	return "serve/preset_requests/other"
}

// CntServePresetErrors is documented with CntServePresetRequests.
func CntServePresetErrors(preset string) string {
	for _, p := range ServePresetNames {
		if p == preset {
			return "serve/preset_errors/" + p
		}
	}
	return "serve/preset_errors/other"
}

// Canonical wide-event log field names. Every field of the one-line
// per-request JSON log object is declared here: dashboards and the CI
// log-schema gate key on these strings, so a typo at a producer would
// silently fork a field the way an unregistered metric would fork a
// series. The qaoalint obsvnames analyzer enforces that WideEvent
// producers use these constants.
const (
	FieldReqID         = "req_id"
	FieldDevice        = "device"
	FieldPreset        = "preset"
	FieldPresetUsed    = "preset_effective"
	FieldCacheHit      = "cache_hit"
	FieldSkeletonHit   = "skeleton_hit"
	FieldShared        = "singleflight_shared"
	FieldQueueWaitMS   = "queue_wait_ms"
	FieldBreakerState  = "breaker"
	FieldFallbackDepth = "fallback_depth"
	FieldAttempts      = "attempts"
	FieldMapMS         = "map_ms"
	FieldOrderMS       = "order_ms"
	FieldRouteMS       = "route_ms"
	FieldDurationMS    = "duration_ms"
	FieldOutcome       = "outcome"
	FieldHTTPStatus    = "http_status"
	FieldErr           = "err"
	FieldSwaps         = "swaps"
	FieldDepth         = "depth"
	FieldGates         = "gates"
	// Fields of the load-generator and sweep summary events.
	FieldPhase     = "phase"
	FieldRequests  = "requests"
	FieldReqPerSec = "req_per_sec"
	FieldP50MS     = "p50_ms"
	FieldP99MS     = "p99_ms"
	FieldShed      = "shed"
	FieldHTTP5xx   = "http_5xx"
)

// NameKind classifies a registered metric name.
type NameKind int

// Registered metric kinds.
const (
	KindCounter NameKind = iota
	KindGauge
	KindSpan
	KindHistogram
)

// String names the kind.
func (k NameKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSpan:
		return "span"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// registry is the complete set of names the pipeline may record.
var registry = map[string]NameKind{
	SpanCompileTotal:    KindSpan,
	SpanCompileMap:      KindSpan,
	SpanCompileOrder:    KindSpan,
	SpanCompileRoute:    KindSpan,
	SpanCompileStitch:   KindSpan,
	SpanExpInstance:     KindSpan,
	SpanLoopExpectation: KindSpan,
	SpanSimIdealRun:     KindSpan,
	SpanSimSampleNoisy:  KindSpan,

	CntCompilations:        KindCounter,
	CntSkeletonCompiles:    KindCounter,
	CntCompileBinds:        KindCounter,
	CntCompileSwaps:        KindCounter,
	CntCompileGates:        KindCounter,
	CntCompileDepthTotal:   KindCounter,
	CntCompileLayers:       KindCounter,
	CntCompileResilient:    KindCounter,
	CntFallbackAttempts:    KindCounter,
	CntFallbackDepthTotal:  KindCounter,
	CntFallbackDegraded:    KindCounter,
	CntRouterTrials:        KindCounter,
	CntRouterRoutes:        KindCounter,
	CntRouterLayers:        KindCounter,
	CntRouterSwaps:         KindCounter,
	CntRouterForcedPaths:   KindCounter,
	CntRouterScoreEvals:    KindCounter,
	CntCompileDistUpdates:  KindCounter,
	CntDeviceHopDistBuilds: KindCounter,
	CntDeviceHopDistHits:   KindCounter,
	CntDeviceRelDistBuilds: KindCounter,
	CntDeviceRelDistHits:   KindCounter,
	CntDeviceInvalidations: KindCounter,
	CntExpInstances:        KindCounter,
	CntExpRetries:          KindCounter,
	CntExpFailures:         KindCounter,
	CntLoopEvaluations:     KindCounter,
	CntSimRuns:             KindCounter,
	CntSimGates:            KindCounter,
	CntSimAmpOps:           KindCounter,
	CntSimNoisyShots:       KindCounter,
	CntSimTrajectories:     KindCounter,
	CntSimFusedOps:         KindCounter,
	CntSimIdealReuses:      KindCounter,
	CntSimReplays:          KindCounter,
	CntSimReplayGates:      KindCounter,
	CntSimCheckpoints:      KindCounter,
	CntSimCutTableBuilds:   KindCounter,
	CntTraceEvents:         KindCounter,

	SpanServeRequest: KindSpan,
	SpanServeCompile: KindSpan,

	CntServeRequests:              KindCounter,
	CntServeOK:                    KindCounter,
	CntServeErrors:                KindCounter,
	CntServeBadRequests:           KindCounter,
	CntServeShed:                  KindCounter,
	CntServeDeadlineExceeded:      KindCounter,
	CntServeClientGone:            KindCounter,
	CntServeCacheHits:             KindCounter,
	CntServeCacheMisses:           KindCounter,
	CntServeCacheEvictions:        KindCounter,
	CntServeCacheInvalidations:    KindCounter,
	CntServeSingleflightShared:    KindCounter,
	CntServeSkeletonHits:          KindCounter,
	CntServeSkeletonMisses:        KindCounter,
	CntServeSkeletonEvictions:     KindCounter,
	CntServeSkeletonInvalidations: KindCounter,
	CntServeCompiles:              KindCounter,
	CntServeBreakerOpens:          KindCounter,
	CntServeBreakerRejected:       KindCounter,
	CntServeBreakerRerouted:       KindCounter,
	CntServeBreakerProbes:         KindCounter,
	CntServeCalibReloads:          KindCounter,

	GaugeServeInflight:   KindGauge,
	GaugeServeQueueDepth: KindGauge,

	HistServeRequestMS:         KindHistogram,
	HistServeRequestCachedMS:   KindHistogram,
	HistServeRequestUncachedMS: KindHistogram,
	HistServeQueueWaitMS:       KindHistogram,
}

// The per-preset series (latency histogram + availability counters per
// evaluated preset, plus the "other" catch-alls) are registered
// programmatically: one entry per preset name, derived through the same
// builder functions the producers call.
func init() {
	for _, p := range append(append([]string(nil), ServePresetNames...), "other") {
		registry[HistServePresetMS(p)] = KindHistogram
		registry[CntServePresetRequests(p)] = KindCounter
		registry[CntServePresetErrors(p)] = KindCounter
	}
}

// fieldRegistry is the complete set of canonical wide-event log fields.
var fieldRegistry = map[string]bool{
	FieldReqID:         true,
	FieldDevice:        true,
	FieldPreset:        true,
	FieldPresetUsed:    true,
	FieldCacheHit:      true,
	FieldSkeletonHit:   true,
	FieldShared:        true,
	FieldQueueWaitMS:   true,
	FieldBreakerState:  true,
	FieldFallbackDepth: true,
	FieldAttempts:      true,
	FieldMapMS:         true,
	FieldOrderMS:       true,
	FieldRouteMS:       true,
	FieldDurationMS:    true,
	FieldOutcome:       true,
	FieldHTTPStatus:    true,
	FieldErr:           true,
	FieldSwaps:         true,
	FieldDepth:         true,
	FieldGates:         true,
	FieldPhase:         true,
	FieldRequests:      true,
	FieldReqPerSec:     true,
	FieldP50MS:         true,
	FieldP99MS:         true,
	FieldShed:          true,
	FieldHTTP5xx:       true,
}

// FieldRegistered reports whether name is a canonical wide-event field.
func FieldRegistered(name string) bool { return fieldRegistry[name] }

// RegisteredFields returns every wide-event field name, sorted.
func RegisteredFields() []string {
	out := make([]string, 0, len(fieldRegistry))
	for n := range fieldRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NameRegistered reports whether name is a known metric name.
func NameRegistered(name string) bool {
	_, ok := registry[name]
	return ok
}

// NameKindOf returns the registered kind of name (and false when unknown).
func NameKindOf(name string) (NameKind, bool) {
	k, ok := registry[name]
	return k, ok
}

// RegisteredNames returns every registered name, sorted.
func RegisteredNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Unregistered returns every name recorded in the snapshot that the
// registry does not know, sorted — the drift detector the pipeline test
// asserts empty.
func (s Snapshot) Unregistered() []string {
	var out []string
	for n := range s.Counters {
		if k, ok := registry[n]; !ok || k != KindCounter {
			out = append(out, n)
		}
	}
	for n := range s.Gauges {
		if k, ok := registry[n]; !ok || k != KindGauge {
			out = append(out, n)
		}
	}
	for _, sp := range s.Spans {
		if k, ok := registry[sp.Name]; !ok || k != KindSpan {
			out = append(out, sp.Name)
		}
	}
	for _, h := range s.Hists {
		if k, ok := registry[h.Name]; !ok || k != KindHistogram {
			out = append(out, h.Name)
		}
	}
	sort.Strings(out)
	return out
}
