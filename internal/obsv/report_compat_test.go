package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// A report produced by a newer minor revision may carry fields this build
// does not know. Parsing must ignore them and preserve everything it does
// know — forward compatibility within a schema version.
func TestParseReportIgnoresUnknownFields(t *testing.T) {
	in := fmt.Sprintf(`{
		"schema": %d,
		"tool": "qaoa-bench",
		"revision": "abc",
		"future_top_level": {"nested": true},
		"benchmarks": [
			{"name": "fig7/IC", "compile_sec": 0.5, "swaps": 12, "depth": 40, "gates": 100,
			 "future_metric": 3.14}
		],
		"counters": {"compile/swaps": 12}
	}`, SchemaVersion)
	r, err := ParseReport([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Tool != "qaoa-bench" || r.Revision != "abc" {
		t.Errorf("known fields lost: %+v", r)
	}
	b, ok := r.Benchmark("fig7/IC")
	if !ok {
		t.Fatal("benchmark lost")
	}
	if b.Swaps != 12 || b.Depth != 40 || b.Gates != 100 {
		t.Errorf("benchmark fields lost: %+v", b)
	}
	if r.Counters["compile/swaps"] != 12 {
		t.Errorf("counters lost: %v", r.Counters)
	}
	// Round-trip through this build keeps the known content intact.
	out, err := r.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if b2, ok := r2.Benchmark("fig7/IC"); !ok || b2 != b {
		t.Errorf("round-trip changed the benchmark: %+v vs %+v", b2, b)
	}
}

// The histogram and server-quantile additions ride on the existing schema
// version as omitempty fields: reports written before them still parse
// (nil Histograms, zero quantiles), and a reader built before them decodes
// a new report cleanly, ignoring what it does not know — both directions of
// compatibility, no schema bump.
func TestReportHistogramFieldsCompatBothWays(t *testing.T) {
	// Old report, new reader: no histograms key anywhere.
	old := fmt.Sprintf(`{"schema": %d, "tool": "qaoad", "revision": "r0",
		"benchmarks": [{"name": "serve/cached", "p50_ms": 1.5}]}`, SchemaVersion)
	r, err := ParseReport([]byte(old))
	if err != nil {
		t.Fatal(err)
	}
	if r.Histograms != nil {
		t.Errorf("old report decoded with histograms: %v", r.Histograms)
	}
	if b, ok := r.Benchmark("serve/cached"); !ok || b.ServerP50MS != 0 {
		t.Errorf("old benchmark gained server quantiles: %+v", b)
	}

	// New report, old reader: decode into a struct frozen at the pre-
	// histogram shape. encoding/json drops unknown fields, so the old
	// binary keeps working on new artifacts.
	c := New()
	c.Observe(HistServeRequestMS, 2.5)
	cur := NewReport("qaoad", "r1", nil)
	cur.AttachCollector(c)
	cur.Benchmarks = append(cur.Benchmarks, Benchmark{Name: "serve/cached", P50MS: 1.5, ServerP50MS: 2})
	data, err := cur.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var oldReader struct {
		Schema     int    `json:"schema"`
		Tool       string `json:"tool"`
		Benchmarks []struct {
			Name  string  `json:"name"`
			P50MS float64 `json:"p50_ms"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &oldReader); err != nil {
		t.Fatalf("old reader failed on new report: %v", err)
	}
	if oldReader.Schema != SchemaVersion || len(oldReader.Benchmarks) != 1 || oldReader.Benchmarks[0].P50MS != 1.5 {
		t.Errorf("old reader misread the new report: %+v", oldReader)
	}
	// And this build still round-trips its own artifact.
	r2, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Histograms) != 1 || r2.Histograms[0].Name != HistServeRequestMS {
		t.Errorf("new report lost its histograms: %+v", r2.Histograms)
	}
}

// A baseline written by a newer schema must fail with a clear error naming
// both versions — never a panic, never a silent misread.
func TestParseReportNewerSchemaClearError(t *testing.T) {
	in := `{"schema": 99, "tool": "qaoa-bench", "benchmarks": [{"name": "x"}]}`
	r, err := ParseReport([]byte(in))
	if err == nil {
		t.Fatalf("newer schema accepted: %+v", r)
	}
	msg := err.Error()
	if !strings.Contains(msg, "99") || !strings.Contains(msg, strconv.Itoa(SchemaVersion)) {
		t.Errorf("schema error does not name both versions: %v", err)
	}
}

// Compare must not panic when handed reports decoded from foreign JSON with
// missing or unknown sections (e.g. a newer-schema baseline force-decoded by
// an operator bypassing ParseReport).
func TestCompareNoPanicOnForeignReports(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Compare panicked: %v", r)
		}
	}()
	var base, cur Report
	if err := json.Unmarshal([]byte(`{"schema": 99, "benchmarks": [{"name": "a", "swaps": 5}], "future": 1}`), &base); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"schema": 1}`), &cur); err != nil {
		t.Fatal(err)
	}
	regs := Compare(&base, &cur, CompareOptions{})
	// "a" is missing from cur: that is a reported regression, not a crash.
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Errorf("Compare = %v, want one missing-benchmark regression", regs)
	}
	// Nil-benchmark shapes must not crash either.
	_ = Compare(&Report{}, &Report{}, CompareOptions{})
}

func TestWriteFileCreatesParentDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "BENCH_test.json")
	r := NewReport("test", "dev", nil)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReport(data); err != nil {
		t.Errorf("written report does not parse: %v", err)
	}
}

func TestWriteFileWrapsFailureWithPath(t *testing.T) {
	dir := t.TempDir()
	// A file where a parent directory is needed makes MkdirAll fail.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(blocker, "sub", "BENCH.json")
	err := NewReport("test", "dev", nil).WriteFile(target)
	if err == nil {
		t.Fatal("write through a file succeeded")
	}
	if !strings.Contains(err.Error(), target) {
		t.Errorf("error does not name the target path: %v", err)
	}
}
