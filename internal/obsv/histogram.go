package obsv

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a fixed-boundary latency/size distribution with exact
// integer bucket counts — the server-side source of truth for request
// latency percentiles (replacing load-generator-only measurements).
//
// The boundary scheme is chosen at construction and never changes, so two
// histograms with equal bounds are mergeable by plain count addition and
// their JSON serialization is a pure function of the observed values:
// byte-identical across runs, GOMAXPROCS settings and merge orders
// (addition commutes). There is no rebucketing, no decay and no sampling —
// determinism is the point.
//
// Concurrency: Observe and Merge are safe for concurrent use; counts are
// guarded by a mutex (the serve hot path observes once per request, so a
// sharded design would be over-engineering at the measured throughputs).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; values > bounds[last] land in the overflow bucket
	counts []int64   // len(bounds)+1: counts[i] is values <= bounds[i], last is overflow
	count  int64
	// sumMilli accumulates the sum in integer 1/1000-unit quanta. Integer
	// addition commutes exactly, so the serialized Sum is independent of
	// observation and merge order — float64 accumulation would drift in the
	// last ULP with goroutine interleaving and break the byte-identical
	// contract. For millisecond histograms the quantum is one microsecond,
	// the resolution the serve hot path measures at anyway.
	sumMilli int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on empty or non-ascending bounds: boundary schemes are
// compile-time decisions, not runtime data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not ascending at %d: %g <= %g", i, bounds[i], bounds[i-1]))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// DefaultLatencyBounds returns the canonical log-linear millisecond bucket
// scheme shared by every latency histogram of the pipeline: nine linear
// steps per decade from 0.01 ms to 90 000 ms (90 s), 63 buckets plus
// overflow. Log-linear keeps relative quantile error bounded (a quantile
// is pinned to within ~11% of its true value) while the fixed boundaries
// keep the JSON byte-stable. Every bound is of the form m/100, m/10 or
// m*10^k for integer m in 1..9, so each is the float64 nearest the exact
// decimal and renders as the short decimal in JSON.
func DefaultLatencyBounds() []float64 {
	out := make([]float64, 0, 63)
	for m := 1; m <= 9; m++ {
		out = append(out, float64(m)/100)
	}
	for m := 1; m <= 9; m++ {
		out = append(out, float64(m)/10)
	}
	for scale := 1.0; scale <= 10000; scale *= 10 {
		for m := 1; m <= 9; m++ {
			out = append(out, float64(m)*scale)
		}
	}
	return out
}

// Observe adds one value to the distribution. NaN is ignored (a NaN
// latency is an upstream bug, not a data point); negative values land in
// the first bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := bucketIndex(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sumMilli += int64(math.Round(v * 1000))
	h.mu.Unlock()
}

// bucketIndex returns the index of the bucket v falls in: the first bound
// >= v, or len(bounds) for the overflow bucket. Binary search keeps the
// hot path O(log buckets).
func bucketIndex(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Merge folds o's counts into h. Both histograms must share identical
// bounds (the fixed-boundary contract is what makes merging exact); a
// mismatch is an error, never a silent rebucket.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	stat := o.statLocked("")
	o.mu.Unlock()
	return h.MergeStat(stat)
}

// MergeStat folds a serialized snapshot (e.g. scraped from another
// process) into h under the same equal-bounds contract as Merge.
func (h *Histogram) MergeStat(stat HistogramStat) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(stat.Bounds) != len(h.bounds) {
		return fmt.Errorf("obsv: merging histogram with %d bounds into %d", len(stat.Bounds), len(h.bounds))
	}
	for i, b := range stat.Bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("obsv: merging histogram with bound %g at %d, want %g", b, i, h.bounds[i])
		}
	}
	if len(stat.Counts) != len(h.counts) {
		return fmt.Errorf("obsv: merging histogram with %d counts into %d", len(stat.Counts), len(h.counts))
	}
	for i, c := range stat.Counts {
		h.counts[i] += c
	}
	h.count += stat.Count
	h.sumMilli += int64(math.Round(stat.Sum * 1000))
	return nil
}

// Count returns the number of observed values.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values, quantized to 1/1000 of the unit
// (see sumMilli).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return float64(h.sumMilli) / 1000
}

// Quantile returns the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding the nearest-rank sample — a deterministic value from
// the fixed boundary set, pessimistic by at most one bucket width. An
// empty histogram or a rank in the overflow bucket returns +Inf's stand-in
// of the last bound (there is no finite upper bound beyond it).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantile(h.bounds, h.counts, h.count, q)
}

// Stat snapshots the histogram under the given name for reports and
// endpoints.
func (h *Histogram) Stat(name string) HistogramStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.statLocked(name)
}

func (h *Histogram) statLocked(name string) HistogramStat {
	return HistogramStat{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    float64(h.sumMilli) / 1000,
	}
}

// HistogramStat is the serialized form of one histogram: the full bucket
// scheme and exact counts, so any reader can recompute quantiles, merge
// across reports, or re-expose the distribution without loss. Counts has
// one more entry than Bounds (the final overflow bucket).
type HistogramStat struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile computes the q-th quantile of the serialized distribution, with
// the same bucket-upper-bound convention as Histogram.Quantile.
func (s HistogramStat) Quantile(q float64) float64 {
	return quantile(s.Bounds, s.Counts, s.Count, q)
}

// BucketIndex returns the index of the bucket v falls in under s's bounds
// (len(Bounds) for the overflow bucket) — the unit of the "within one
// bucket" agreement checks between client- and server-side measurements.
func (s HistogramStat) BucketIndex(v float64) int { return bucketIndex(s.Bounds, v) }

// quantile is the shared nearest-rank implementation: find the bucket
// containing the ceil(q*count)-th observation and return its upper bound.
func quantile(bounds []float64, counts []int64, count int64, q float64) float64 {
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// QuantileFromBuckets recomputes a quantile from raw (bounds, counts)
// pairs — the form a Prometheus scrape yields. counts may have the same
// length as bounds (no overflow information) or one more.
func QuantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	return quantile(bounds, counts, total, q)
}
