package obsv

import (
	"fmt"
	"sort"
)

// Per-preset SLO tracking. Two objectives per preset, both computed from
// data the collector already holds (availability counters, latency
// histograms), so the SLO surface adds no new recording paths:
//
//   - availability: fraction of requests that did not fail with a server
//     fault (5xx). Shed (429) and deadline (504) responses are deliberate,
//     well-behaved overload handling and do not burn availability budget.
//   - latency: fraction of requests answered within LatencyThresholdMS.
//
// Burn rate is the standard SRE normalization: observed bad fraction
// divided by allowed bad fraction (1 - target). Burn 0 means a clean
// window, 1 means spending budget exactly as fast as allowed, >1 means the
// objective is being violated; the load-generator gate requires
// availability burn 0 under its throughput gate.

// SLOConfig defines the service-level objectives.
type SLOConfig struct {
	// AvailabilityTarget is the minimum fraction of non-5xx responses
	// (default 0.999).
	AvailabilityTarget float64
	// LatencyThresholdMS / LatencyTarget: at least LatencyTarget of
	// requests must finish within LatencyThresholdMS (defaults 250 ms,
	// 0.99).
	LatencyThresholdMS float64
	LatencyTarget      float64
}

// WithDefaults fills zero fields with the default objectives.
func (c SLOConfig) WithDefaults() SLOConfig {
	if c.AvailabilityTarget == 0 {
		c.AvailabilityTarget = 0.999
	}
	if c.LatencyThresholdMS == 0 {
		c.LatencyThresholdMS = 250
	}
	if c.LatencyTarget == 0 {
		c.LatencyTarget = 0.99
	}
	return c
}

// SLOStatus is the computed state of one preset's objectives (or the
// service-wide aggregate under Preset "all").
type SLOStatus struct {
	Preset           string  `json:"preset"`
	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Slow             int64   `json:"slow"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// burnRate normalizes an observed bad fraction by the allowed one.
func burnRate(bad, total int64, target float64) float64 {
	if total == 0 {
		return 0
	}
	allowed := 1 - target
	if allowed <= 0 {
		allowed = 1e-9 // a 100% target makes any violation an immediate infinite burn; clamp to something printable
	}
	return (float64(bad) / float64(total)) / allowed
}

// slowAbove counts histogram observations strictly above the threshold:
// every bucket whose upper bound exceeds it. The bucket granularity makes
// the count pessimistic by at most one bucket, consistent with the
// bucket-upper-bound quantile convention.
func slowAbove(h HistogramStat, thresholdMS float64) int64 {
	var slow int64
	for i, c := range h.Counts {
		if i >= len(h.Bounds) || h.Bounds[i] > thresholdMS {
			slow += c
		}
	}
	return slow
}

// ComputeSLO derives the per-preset and aggregate SLO state from a
// collector snapshot. Presets with no traffic are omitted; the aggregate
// "all" row (from the serve/requests counters and the service-wide request
// histogram) is always present when any request was served. Results are
// sorted by preset name with "all" first.
func ComputeSLO(snap Snapshot, cfg SLOConfig) []SLOStatus {
	cfg = cfg.WithDefaults()
	hists := make(map[string]HistogramStat, len(snap.Hists))
	for _, h := range snap.Hists {
		hists[h.Name] = h
	}
	var out []SLOStatus
	if total := snap.Counters[CntServeRequests]; total > 0 {
		errs := snap.Counters[CntServeErrors]
		slow := slowAbove(hists[HistServeRequestMS], cfg.LatencyThresholdMS)
		out = append(out, SLOStatus{
			Preset: "all", Requests: total, Errors: errs, Slow: slow,
			AvailabilityBurn: burnRate(errs, total, cfg.AvailabilityTarget),
			LatencyBurn:      burnRate(slow, total, cfg.LatencyTarget),
		})
	}
	for _, p := range append(append([]string(nil), ServePresetNames...), "other") {
		total := snap.Counters[CntServePresetRequests(p)]
		if total == 0 {
			continue
		}
		errs := snap.Counters[CntServePresetErrors(p)]
		slow := slowAbove(hists[HistServePresetMS(p)], cfg.LatencyThresholdMS)
		out = append(out, SLOStatus{
			Preset: p, Requests: total, Errors: errs, Slow: slow,
			AvailabilityBurn: burnRate(errs, total, cfg.AvailabilityTarget),
			LatencyBurn:      burnRate(slow, total, cfg.LatencyTarget),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Preset == "all") != (out[j].Preset == "all") {
			return out[i].Preset == "all"
		}
		return out[i].Preset < out[j].Preset
	})
	return out
}

// WriteSLOText renders the SLO state in the Prometheus text exposition
// format: qaoa_slo_availability_burn_rate{preset="..."} and
// qaoa_slo_latency_burn_rate{preset="..."} gauges, deterministically
// ordered. It composes with WriteMetricsText on the same /metrics page.
func WriteSLOText(w interface{ Write([]byte) (int, error) }, snap Snapshot, cfg SLOConfig) {
	statuses := ComputeSLO(snap, cfg)
	if len(statuses) == 0 {
		return
	}
	writeSeries := func(metric string, value func(SLOStatus) float64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", metric)
		for _, s := range statuses {
			// %q escapes quotes/backslashes/newlines — a superset of what the
			// Prometheus label grammar requires.
			fmt.Fprintf(w, "%s{preset=%q} %g\n", metric, s.Preset, value(s))
		}
	}
	writeSeries("qaoa_slo_availability_burn_rate", func(s SLOStatus) float64 { return s.AvailabilityBurn })
	writeSeries("qaoa_slo_latency_burn_rate", func(s SLOStatus) float64 { return s.LatencyBurn })
}
