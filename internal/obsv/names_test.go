package obsv

import (
	"testing"
	"time"
)

func TestRegistryKnowsEveryExportedName(t *testing.T) {
	names := RegisteredNames()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("name %q listed twice", n)
		}
		seen[n] = true
		if !NameRegistered(n) {
			t.Errorf("RegisteredNames lists %q but NameRegistered denies it", n)
		}
		if _, ok := NameKindOf(n); !ok {
			t.Errorf("no kind for registered name %q", n)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestUnregisteredDetectsDrift(t *testing.T) {
	c := New()
	c.Inc(CntCompilations)
	c.RecordSpan(SpanCompileMap, time.Millisecond)
	if got := c.Snapshot().Unregistered(); len(got) != 0 {
		t.Errorf("registered names flagged: %v", got)
	}

	c.Inc("compile/typo_counter")
	c.RecordSpan("typo/span", time.Millisecond)
	got := c.Snapshot().Unregistered()
	if len(got) != 2 {
		t.Fatalf("Unregistered = %v, want the two typos", got)
	}
	if got[0] != "compile/typo_counter" || got[1] != "typo/span" {
		t.Errorf("Unregistered = %v (want sorted typo names)", got)
	}
}

func TestUnregisteredCatchesKindMismatch(t *testing.T) {
	c := New()
	// Recording a registered span name as a counter is drift too: the
	// Prometheus endpoint would expose it under the wrong type.
	c.Inc(SpanCompileMap)
	got := c.Snapshot().Unregistered()
	if len(got) != 1 || got[0] != SpanCompileMap {
		t.Errorf("Unregistered = %v, want the miskinded span name", got)
	}
}

func TestNameKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" || KindSpan.String() != "span" {
		t.Error("NameKind strings wrong")
	}
}
