package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// latencySample builds a deterministic log-uniform latency sample spanning
// the full bucket range, including sub-bound and overflow values.
func latencySample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// 10^[-3, 5.3): from below the first bound (0.01) to past the last
		// (90000), exercising underflow clamping and the overflow bucket.
		out = append(out, math.Pow(10, -3+rng.Float64()*8.3))
	}
	return out
}

func TestDefaultLatencyBoundsShape(t *testing.T) {
	b := DefaultLatencyBounds()
	if len(b) != 63 {
		t.Fatalf("got %d bounds, want 63", len(b))
	}
	if b[0] != 0.01 || b[len(b)-1] != 90000 {
		t.Errorf("range [%g, %g], want [0.01, 90000]", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	// Every bound must render as its short decimal so the JSON is readable
	// and byte-stable across platforms.
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("000000")) || bytes.Contains(data, []byte("999999")) {
		t.Errorf("bounds do not render as short decimals: %s", data)
	}
}

// TestHistogramDeterministicJSON is the core determinism contract: the same
// multiset of observations must serialize byte-identically regardless of
// goroutine interleaving, GOMAXPROCS or observation order. CI runs this
// under -race.
func TestHistogramDeterministicJSON(t *testing.T) {
	values := latencySample(5000, 42)
	encode := func(procs int, order []float64) []byte {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		c := New()
		var wg sync.WaitGroup
		const workers = 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(order); i += workers {
					c.Observe(HistServeRequestMS, order[i])
				}
			}(w)
		}
		wg.Wait()
		data, err := json.Marshal(c.Snapshot().Hists)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	reversed := make([]float64, len(values))
	for i, v := range values {
		reversed[len(values)-1-i] = v
	}
	base := encode(runtime.GOMAXPROCS(0), values)
	for _, alt := range [][]byte{
		encode(1, values),
		encode(2, reversed),
		encode(runtime.NumCPU(), reversed),
	} {
		if !bytes.Equal(base, alt) {
			t.Fatalf("histogram JSON differs across GOMAXPROCS/order:\n%s\nvs\n%s", base, alt)
		}
	}
}

func TestHistogramMergeAssociativeAndCommutative(t *testing.T) {
	parts := [][]float64{
		latencySample(700, 1),
		latencySample(900, 2),
		latencySample(1100, 3),
	}
	fill := func(vals ...[]float64) *Histogram {
		h := NewHistogram(DefaultLatencyBounds())
		for _, vs := range vals {
			for _, v := range vs {
				h.Observe(v)
			}
		}
		return h
	}
	mergeOf := func(order ...int) HistogramStat {
		t.Helper()
		acc := NewHistogram(DefaultLatencyBounds())
		for _, i := range order {
			if err := acc.Merge(fill(parts[i])); err != nil {
				t.Fatal(err)
			}
		}
		return acc.Stat("m")
	}

	direct := fill(parts...).Stat("m")
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		if got := mergeOf(order...); !reflect.DeepEqual(got, direct) {
			t.Fatalf("merge order %v differs from direct fill", order)
		}
	}

	// ((A+B)+C) == (A+(B+C)): associativity via intermediate histograms.
	ab := fill(parts[0], parts[1])
	if err := ab.Merge(fill(parts[2])); err != nil {
		t.Fatal(err)
	}
	bc := fill(parts[1], parts[2])
	a := fill(parts[0])
	if err := a.Merge(bc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ab.Stat("m"), a.Stat("m")) {
		t.Fatal("merge is not associative")
	}
}

func TestHistogramMergeRejectsForeignBounds(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if err := h.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
	if err := h.MergeStat(HistogramStat{Bounds: DefaultLatencyBounds(), Counts: []int64{1}}); err == nil {
		t.Fatal("merging stat with truncated counts did not error")
	}
}

// TestQuantileAgainstSortedOracle pins the quantile contract: the reported
// value is exactly the upper bound of the bucket holding the nearest-rank
// sample of the sorted data.
func TestQuantileAgainstSortedOracle(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000, 4096} {
		values := latencySample(n, int64(n))
		h := NewHistogram(DefaultLatencyBounds())
		for _, v := range values {
			h.Observe(v)
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		stat := h.Stat("q")
		bounds := DefaultLatencyBounds()
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			oracle := sorted[rank-1]
			idx := stat.BucketIndex(oracle)
			want := bounds[len(bounds)-1]
			if idx < len(bounds) {
				want = bounds[idx]
			}
			if got := h.Quantile(q); got != want {
				t.Errorf("n=%d q=%g: got %g, oracle %g lives in bucket %d (upper bound %g)",
					n, q, got, oracle, idx, want)
			}
			if got := stat.Quantile(q); got != want {
				t.Errorf("n=%d q=%g: stat quantile %g, want %g", n, q, got, want)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN was counted as an observation")
	}
	h.Observe(-3)
	if got := h.Quantile(1); got != 0.01 {
		t.Errorf("negative value quantile = %g, want first bound 0.01", got)
	}
	h.Observe(1e9) // far past the last bound: overflow bucket
	if got := h.Quantile(1); got != 90000 {
		t.Errorf("overflow quantile = %g, want last bound 90000", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 3 values <=1, 1 value in (1,2], none beyond.
	if got := QuantileFromBuckets(bounds, []int64{3, 1, 0}, 0.5); got != 1 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := QuantileFromBuckets(bounds, []int64{3, 1, 0}, 1); got != 2 {
		t.Errorf("p100 = %g, want 2", got)
	}
	// Scrapes without an overflow entry (len(counts) == len(bounds)) work.
	if got := QuantileFromBuckets(bounds, []int64{0, 0, 5}, 0.9); got != 4 {
		t.Errorf("p90 = %g, want 4", got)
	}
}

// TestCollectorHistogramsInReport verifies the report pipeline carries
// histograms: AttachCollector embeds them sorted by name and StripTimings
// zeroes the wall-clock-derived counts while keeping the boundary scheme.
func TestCollectorHistogramsInReport(t *testing.T) {
	c := New()
	c.Observe(HistServeRequestMS, 3.5)
	c.Observe(HistServeRequestMS, 7.0)
	c.Observe(HistServeQueueWaitMS, 0.2)
	rep := NewReport("test", "r1", nil)
	rep.AttachCollector(c)
	if len(rep.Histograms) != 2 {
		t.Fatalf("report has %d histograms, want 2", len(rep.Histograms))
	}
	if rep.Histograms[0].Name > rep.Histograms[1].Name {
		t.Error("report histograms not sorted by name")
	}
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Histograms, rep.Histograms) {
		t.Error("histograms did not survive the JSON round trip")
	}

	parsed.StripTimings()
	for _, h := range parsed.Histograms {
		if h.Count != 0 || h.Sum != 0 {
			t.Errorf("StripTimings left counts in %s", h.Name)
		}
		if len(h.Bounds) == 0 {
			t.Errorf("StripTimings dropped the boundary scheme of %s", h.Name)
		}
	}
}
