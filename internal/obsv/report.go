package obsv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on any
// backwards-incompatible change to Report or Benchmark.
//
// Version history:
//
//	1 — compile-time/structural records only.
//	2 — adds per-record simulation time (sim_sec, sim_units) and the
//	    sim_time Compare gate; the simulator's noisy-trajectory RNG
//	    streams also changed, shifting sampled ARG values.
const SchemaVersion = 2

// Benchmark is one named measurement of the report: typically one
// figure×preset point of the benchmark suite, aggregated over Instances
// compiled instances. Times are means in seconds; Swaps/Depth/Gates are
// means over the instance set (deterministic under fixed seeds).
type Benchmark struct {
	Name      string `json:"name"`
	Instances int    `json:"instances,omitempty"`
	// CompileSec is the mean wall-clock compile time; MapSec, OrderSec and
	// RouteSec break it into the mapping, ordering/layer-formation and
	// SWAP-insertion passes.
	CompileSec float64 `json:"compile_sec"`
	MapSec     float64 `json:"map_sec"`
	OrderSec   float64 `json:"order_sec"`
	RouteSec   float64 `json:"route_sec"`
	// CompileUnits is CompileSec divided by the report's TimeUnitSec — a
	// machine-speed-normalized compile time that stays comparable across
	// hosts (see Report.TimeUnitSec). 0 when no calibration ran.
	CompileUnits float64 `json:"compile_units,omitempty"`
	// SimSec is the wall-clock time of the record's simulation workload
	// (the ideal + noisy ARG measurement); SimUnits is the
	// machine-normalized form (SimSec / TimeUnitSec, like CompileUnits).
	// 0 when not measured.
	SimSec   float64 `json:"sim_sec,omitempty"`
	SimUnits float64 `json:"sim_units,omitempty"`
	Swaps    float64 `json:"swaps"`
	Depth    float64 `json:"depth"`
	Gates    float64 `json:"gates"`
	// ARGPct is the approximation-ratio gap (percent) measured on the
	// record's reduced noisy-simulation workload; 0 when not measured.
	ARGPct float64 `json:"arg_pct,omitempty"`
	// SuccessProb is the estimated circuit success probability on the
	// calibrated device; 0 when not measured.
	SuccessProb float64 `json:"success_prob,omitempty"`

	// Service-load fields, set only by qaoad-load records. All omitempty,
	// so their addition needs no schema bump (older readers ignore them,
	// older reports simply lack them).
	//
	// ReqPerSec is the sustained request throughput of the measured phase;
	// P50MS/P99MS are client-observed latency percentiles in milliseconds.
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	P50MS     float64 `json:"p50_ms,omitempty"`
	P99MS     float64 `json:"p99_ms,omitempty"`
	// Shed counts 429 load-shed responses, HTTP5xx the server-fault
	// responses, observed by the client during the phase.
	Shed    int64 `json:"shed,omitempty"`
	HTTP5xx int64 `json:"http_5xx,omitempty"`
	// ServerP50MS/ServerP99MS are the server-side latency quantiles for the
	// phase, read from the service's request histogram on /metrics. Recorded
	// next to the client-observed P50MS/P99MS so the two vantage points can
	// be cross-checked (they must agree within one histogram bucket).
	ServerP50MS float64 `json:"server_p50_ms,omitempty"`
	ServerP99MS float64 `json:"server_p99_ms,omitempty"`
	// SkeletonHitRate is the fraction of the angle-sweep phase's
	// second-and-later requests per structure that were served by binding a
	// cached routed skeleton (qaoad-load's sweep phase; 0 when not run).
	SkeletonHitRate float64 `json:"skeleton_hit_rate,omitempty"`

	// Parameterized-compilation evidence fields, set by the qaoa-bench
	// -parambind records. Evaluations is the number of objective
	// evaluations (loop) or grid points (sweep) the record's workload ran;
	// Compilations, SkeletonCompiles and Binds are the compile-work
	// counter deltas over that workload. All deterministic under the fixed
	// seed, so a before/after pair proves the compile-work reduction
	// exactly. All omitempty — no schema bump.
	Evaluations      int64 `json:"evaluations,omitempty"`
	Compilations     int64 `json:"compilations,omitempty"`
	SkeletonCompiles int64 `json:"skeleton_compiles,omitempty"`
	Binds            int64 `json:"binds,omitempty"`
}

// Report is the stable machine-readable metrics artifact. It combines the
// benchmark records with a full dump of the collector (counters, gauges,
// span statistics).
type Report struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	Revision string `json:"revision"`
	// CreatedAt is RFC 3339 UTC; zeroed by StripTimings so reports can be
	// compared byte for byte.
	CreatedAt string `json:"created_at,omitempty"`
	// TimeUnitSec is the duration of the fixed CPU-bound calibration
	// workload on the producing machine (seconds). Dividing wall-clock
	// compile times by it yields machine-normalized "compile units", which
	// is what Compare gates on when both reports carry a calibration.
	TimeUnitSec float64            `json:"time_unit_sec,omitempty"`
	Benchmarks  []Benchmark        `json:"benchmarks,omitempty"`
	Counters    map[string]int64   `json:"counters,omitempty"`
	Gauges      map[string]float64 `json:"gauges,omitempty"`
	Spans       []SpanStat         `json:"spans,omitempty"`
	// Histograms carries the collector's latency histograms (exact bucket
	// counts, deterministic bounds). omitempty: older readers ignore it,
	// older reports simply lack it — no schema bump needed.
	Histograms []HistogramStat `json:"histograms,omitempty"`
}

// NewReport builds a report stamped with the current UTC time, carrying a
// snapshot of c (nil c yields empty counter/gauge/span sections).
func NewReport(tool, revision string, c *Collector) *Report {
	r := &Report{
		Schema:    SchemaVersion,
		Tool:      tool,
		Revision:  revision,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	r.AttachCollector(c)
	return r
}

// AttachCollector replaces the report's counter, gauge and span sections
// with a fresh snapshot of c — call it after the instrumented work ran when
// the report object had to exist beforehand (nil c clears the sections).
func (r *Report) AttachCollector(c *Collector) {
	snap := c.Snapshot()
	r.Spans = snap.Spans
	r.Histograms = snap.Hists
	r.Counters = nil
	r.Gauges = nil
	if len(snap.Counters) > 0 {
		r.Counters = snap.Counters
	}
	if len(snap.Gauges) > 0 {
		r.Gauges = snap.Gauges
	}
}

// AddBenchmark appends one benchmark record.
func (r *Report) AddBenchmark(b Benchmark) { r.Benchmarks = append(r.Benchmarks, b) }

// Benchmark returns the named record and whether it exists.
func (r *Report) Benchmark(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// MarshalIndent renders the report as stable, human-diffable JSON:
// benchmarks and spans sorted by name, map keys sorted (encoding/json's
// default), trailing newline.
func (r *Report) MarshalIndent() ([]byte, error) {
	sort.Slice(r.Benchmarks, func(i, j int) bool { return r.Benchmarks[i].Name < r.Benchmarks[j].Name })
	sort.Slice(r.Spans, func(i, j int) bool { return r.Spans[i].Name < r.Spans[j].Name })
	sort.Slice(r.Histograms, func(i, j int) bool { return r.Histograms[i].Name < r.Histograms[j].Name })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path (0644), creating missing parent
// directories. Every failure is wrapped with the target path so a CLI can
// print it and exit non-zero without further decoration.
func (r *Report) WriteFile(path string) error {
	data, err := r.MarshalIndent()
	if err != nil {
		return fmt.Errorf("obsv: encoding report for %s: %w", path, err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obsv: writing report %s: %w", path, err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obsv: writing report %s: %w", path, err)
	}
	return nil
}

// ParseReport decodes a report and checks its schema version.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obsv: parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("obsv: report schema %d, this build reads %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ReadReportFile loads and parses a report from disk.
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseReport(data)
}

// DefaultFilename is the conventional artifact name for a revision:
// BENCH_<rev>.json with rev sanitized to [A-Za-z0-9._-] ("dev" when empty).
func DefaultFilename(revision string) string {
	if revision == "" {
		revision = "dev"
	}
	var b strings.Builder
	for _, c := range revision {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	return "BENCH_" + b.String() + ".json"
}

// StripTimings zeroes every wall-clock-derived field — the creation stamp,
// the time-unit calibration, per-benchmark pass times and span durations —
// leaving only the deterministic content (counters, gauges, span counts,
// structural metrics). Two reports produced from the same seeds must be
// byte-identical after StripTimings.
func (r *Report) StripTimings() {
	r.CreatedAt = ""
	r.TimeUnitSec = 0
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		b.CompileSec, b.MapSec, b.OrderSec, b.RouteSec, b.CompileUnits = 0, 0, 0, 0, 0
		b.SimSec, b.SimUnits = 0, 0
		b.ReqPerSec, b.P50MS, b.P99MS, b.ServerP50MS, b.ServerP99MS = 0, 0, 0, 0, 0
	}
	for i := range r.Spans {
		s := &r.Spans[i]
		s.TotalSec, s.MeanSec, s.MinSec, s.MaxSec = 0, 0, 0, 0
	}
	for i := range r.Histograms {
		h := &r.Histograms[i]
		// Bucket counts are wall-clock-derived (which bucket a request lands
		// in depends on machine speed); the bounds are deterministic and stay.
		for j := range h.Counts {
			h.Counts[j] = 0
		}
		h.Count, h.Sum = 0, 0
	}
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		b.ServerP50MS, b.ServerP99MS = 0, 0
	}
}

// Regression is one benchmark metric that worsened beyond its threshold.
type Regression struct {
	Benchmark string  // record name
	Metric    string  // "compile_time", "sim_time", "swaps", "depth", "missing", or a gated counter name
	Base, New float64 // baseline and current values
	Limit     float64 // allowed maximum (base scaled by the threshold)
}

// String renders the regression for CI logs.
func (g Regression) String() string {
	if g.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but missing from the current report", g.Benchmark)
	}
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (limit %.4g)", g.Benchmark, g.Metric, g.Base, g.New, g.Limit)
}

// CompareOptions tunes the regression gate. Thresholds are fractions: 0.15
// fails any metric that worsens by more than 15% over the baseline.
type CompareOptions struct {
	// TimeThreshold gates compile time. When both reports carry a
	// TimeUnitSec calibration the comparison uses machine-normalized
	// compile units; otherwise raw seconds. Default 0.15.
	TimeThreshold float64
	// CountThreshold gates SWAP count and depth (deterministic under fixed
	// seeds, so any drift is a real change). Default 0.15.
	CountThreshold float64
	// TimeSlack is an absolute grace added to the compile-time limit, in the
	// gated unit (compile units when normalized, raw seconds otherwise).
	// Sub-millisecond records jitter by far more than any sane relative
	// threshold, so the relative gate alone would flake on them; the slack
	// keeps tiny records quiet while leaving slow records fully gated.
	// Default 0.05; negative disables.
	TimeSlack float64
	// SimThreshold gates sim_time the way TimeThreshold gates
	// compile_time. Wall-clock simulation time jitters far more than the
	// deterministic compile metrics (sub-second records, CPU-quota bursts
	// on shared runners), so it is only a catastrophic backstop with a
	// wide default (0.75); the precise simulation gate is the
	// deterministic work-counter comparison (see simWorkCounters), which
	// is exact under the suite's fixed seeds and immune to machine noise.
	SimThreshold float64
}

// simWorkCounters are the simulator cost counters gated by Compare. They
// are deterministic under fixed suite seeds — fused-op and amplitude-pass
// counts, trajectory replays and replayed gates — so any increase is a
// real algorithmic regression (e.g. lost fusion or checkpoint reuse), not
// scheduling noise.
var simWorkCounters = []string{
	CntSimFusedOps,
	CntSimAmpOps,
	CntSimReplays,
	CntSimReplayGates,
}

// compileWorkCounters are the compiler cost counters gated by Compare, the
// compile-side mirror of simWorkCounters: stochastic trials run, SWAPs
// inserted across all trials, candidate score evaluations and incremental
// distance updates. All are pure functions of the suite seeds — immune to
// machine speed and GOMAXPROCS — so the tight CountThreshold gate catches
// algorithmic regressions (a lost incremental update, a widened candidate
// scan) that the loose wall-clock backstop would miss.
var compileWorkCounters = []string{
	CntRouterTrials,
	CntRouterSwaps,
	CntRouterScoreEvals,
	CntCompileDistUpdates,
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.TimeThreshold == 0 {
		o.TimeThreshold = 0.15
	}
	if o.CountThreshold == 0 {
		o.CountThreshold = 0.15
	}
	if o.TimeSlack == 0 {
		o.TimeSlack = 0.05
	}
	if o.SimThreshold == 0 {
		o.SimThreshold = 0.75
	}
	if o.TimeSlack < 0 {
		o.TimeSlack = 0
	}
	return o
}

// Compare gates cur against base: every benchmark present in the baseline
// must still exist and must not regress compile time, simulation time,
// SWAP count or depth beyond the thresholds; the deterministic simulator
// and compiler work counters (simWorkCounters, compileWorkCounters) are
// gated run-wide at CountThreshold.
// Records only in cur (new benchmarks) pass freely.
// An empty result means the gate passes.
func Compare(base, cur *Report, opts CompareOptions) []Regression {
	opts = opts.withDefaults()
	var out []Regression
	useUnits := base.TimeUnitSec > 0 && cur.TimeUnitSec > 0
	for _, b := range base.Benchmarks {
		c, ok := cur.Benchmark(b.Name)
		if !ok {
			out = append(out, Regression{Benchmark: b.Name, Metric: "missing"})
			continue
		}
		baseTime, curTime := b.CompileSec, c.CompileSec
		if useUnits {
			baseTime, curTime = b.CompileUnits, c.CompileUnits
		}
		out = appendRegression(out, b.Name, "compile_time", baseTime, curTime, opts.TimeThreshold, opts.TimeSlack)
		baseSim, curSim := b.SimSec, c.SimSec
		if useUnits {
			baseSim, curSim = b.SimUnits, c.SimUnits
		}
		if baseSim > 0 { // 0 means the baseline never measured simulation
			out = appendRegression(out, b.Name, "sim_time", baseSim, curSim, opts.SimThreshold, opts.TimeSlack)
		}
		out = appendRegression(out, b.Name, "swaps", b.Swaps, c.Swaps, opts.CountThreshold, 0)
		out = appendRegression(out, b.Name, "depth", b.Depth, c.Depth, opts.CountThreshold, 0)
	}
	for _, name := range simWorkCounters {
		bv, ok := base.Counters[name]
		if !ok || bv == 0 {
			continue // baseline predates the counter; nothing to gate against
		}
		out = appendRegression(out, "counters", name, float64(bv),
			float64(cur.Counters[name]), opts.CountThreshold, 0)
	}
	for _, name := range compileWorkCounters {
		bv, ok := base.Counters[name]
		if !ok || bv == 0 {
			continue // baseline predates the counter; nothing to gate against
		}
		out = appendRegression(out, "counters", name, float64(bv),
			float64(cur.Counters[name]), opts.CountThreshold, 0)
	}
	return out
}

// appendRegression adds a Regression when cur exceeds base by more than the
// threshold fraction plus the absolute slack. A zero baseline is gated
// absolutely against threshold+slack (so 0 -> 0.1 swaps still passes a 0.15
// gate, while a genuine jump from zero fails).
func appendRegression(out []Regression, name, metric string, base, cur, threshold, slack float64) []Regression {
	limit := base*(1+threshold) + slack
	if base == 0 {
		limit = threshold + slack
	}
	if cur > limit {
		out = append(out, Regression{Benchmark: name, Metric: metric, Base: base, New: cur, Limit: limit})
	}
	return out
}
