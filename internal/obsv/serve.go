package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Progress is a point-in-time description of a long-running sweep, served by
// the /healthz endpoint so an operator can see how far along a run is without
// waiting for the final report.
type Progress struct {
	// Phase names what is currently running (e.g. "fig7", "fig9a", "bench").
	Phase string `json:"phase,omitempty"`
	// Done and Total count finished vs planned work items in the current
	// phase; Total 0 means the size is unknown.
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
}

// ProgressFunc reports live sweep progress for /healthz. It must be safe for
// concurrent calls; nil means no progress is reported.
type ProgressFunc func() Progress

// ReadyFunc reports whether the process is ready to take traffic, with a
// human-readable reason when it is not (e.g. "warming up", "draining"). It
// must be safe for concurrent calls; nil means always ready. Liveness
// (/healthz) and readiness (/readyz) are deliberately distinct probes: a
// draining or warming server is alive but must not receive new work, so
// orchestrators restart on failed liveness and only unroute on failed
// readiness.
type ReadyFunc func() (bool, string)

// Handler serves the live state of one Collector over HTTP:
//
//	/metrics      Prometheus text exposition of counters, gauges and spans
//	/healthz      JSON liveness + sweep progress (200 while the process runs)
//	/readyz       JSON readiness (503 while warming up or draining)
//	/debug/pprof  the standard runtime profiles
//
// Build one with NewHandler and mount it on any server, or use Serve for the
// common listen-and-go case.
type Handler struct {
	col      *Collector
	progress ProgressFunc
	ready    ReadyFunc
	start    time.Time
	mux      *http.ServeMux

	mu  sync.Mutex
	slo *SLOConfig
}

// NewHandler builds a Handler over col (nil col serves empty metrics — the
// endpoint stays useful as a liveness probe even with observability off).
// ready gates /readyz; nil reports always ready.
func NewHandler(col *Collector, progress ProgressFunc, ready ReadyFunc) *Handler {
	h := &Handler{col: col, progress: progress, ready: ready, start: time.Now(), mux: http.NewServeMux()}
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/readyz", h.readyz)
	h.mux.HandleFunc("/debug/pprof/", pprof.Index)
	h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return h
}

// Mux exposes the underlying mux so servers can mount additional routes
// next to the standard observability endpoints.
func (h *Handler) Mux() *http.ServeMux { return h.mux }

// SetSLO enables SLO burn-rate gauges on /metrics, computed from the
// collector's availability counters and latency histograms at scrape time
// (see ComputeSLO). Safe to call concurrently with scrapes.
func (h *Handler) SetSLO(cfg SLOConfig) {
	cfg = cfg.WithDefaults()
	h.mu.Lock()
	h.slo = &cfg
	h.mu.Unlock()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := h.col.Snapshot()
	WriteMetricsText(w, snap)
	h.mu.Lock()
	slo := h.slo
	h.mu.Unlock()
	if slo != nil {
		WriteSLOText(w, snap, *slo)
	}
}

func (h *Handler) healthz(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		Status   string    `json:"status"`
		UptimeMS int64     `json:"uptime_ms"`
		Progress *Progress `json:"progress,omitempty"`
	}{Status: "ok", UptimeMS: time.Since(h.start).Milliseconds()}
	if h.progress != nil {
		p := h.progress()
		resp.Progress = &p
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (h *Handler) readyz(w http.ResponseWriter, _ *http.Request) {
	ok, reason := true, ""
	if h.ready != nil {
		ok, reason = h.ready()
	}
	resp := struct {
		Status string `json:"status"`
		Reason string `json:"reason,omitempty"`
	}{Status: "ready"}
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		resp.Status = "not ready"
		resp.Reason = reason
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// Serve starts an HTTP server for the handler on addr (":0" picks a free
// port) and returns the listener, whose Addr reveals the bound port. The
// server runs until the listener is closed; serving errors after that are
// discarded. Errors binding the address are returned immediately.
func (h *Handler) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	//lint:allow leakcheck: the goroutine ends when the returned listener is closed; srv.Serve's error is discarded by design
	go func() {
		// Hardened against slow or abandoned clients; see internal/serve
		// for the full rationale.
		srv := &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		srv.Serve(ln) // returns on ln.Close; nothing useful to do with the error
	}()
	return ln, nil
}

// WriteMetricsText renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered. Counters become
// qaoa_<name>_total, gauges qaoa_<name>, and every span expands to
// qaoa_<name>_count, qaoa_<name>_seconds_sum, qaoa_<name>_seconds_min and
// qaoa_<name>_seconds_max; non-alphanumeric name characters map to '_'.
func WriteMetricsText(w interface{ Write([]byte) (int, error) }, snap Snapshot) {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m, m, snap.Gauges[name])
	}
	for _, s := range snap.Spans { // already sorted by name
		base := promName(s.Name)
		fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", base, base, s.Count)
		fmt.Fprintf(w, "# TYPE %s_seconds_sum counter\n%s_seconds_sum %g\n", base, base, s.TotalSec)
		fmt.Fprintf(w, "# TYPE %s_seconds_min gauge\n%s_seconds_min %g\n", base, base, s.MinSec)
		fmt.Fprintf(w, "# TYPE %s_seconds_max gauge\n%s_seconds_max %g\n", base, base, s.MaxSec)
	}
	for _, h := range snap.Hists { // already sorted by name
		base := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", base, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", base, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
	}
}

// promName maps an internal metric name to a valid Prometheus metric name:
// the qaoa_ prefix plus the name with every character outside
// [a-zA-Z0-9_] replaced by '_' (so "compile/swaps" → "qaoa_compile_swaps").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("qaoa_") + len(name))
	b.WriteString("qaoa_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
