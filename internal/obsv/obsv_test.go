package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Add("x", 3)
	c.Inc("x")
	c.Set("g", 1.5)
	c.RecordSpan("s", time.Second)
	sp := c.StartSpan("s")
	if d := sp.End(); d != 0 {
		t.Fatalf("inert span measured %v", d)
	}
	c.Reset()
	if got := c.Counter("x"); got != 0 {
		t.Fatalf("nil counter = %d", got)
	}
	if _, ok := c.Gauge("g"); ok {
		t.Fatal("nil gauge exists")
	}
	snap := c.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Spans != nil {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
}

func TestCountersGaugesSpans(t *testing.T) {
	c := New()
	c.Add("swaps", 5)
	c.Inc("swaps")
	c.Set("depth", 40)
	c.Set("depth", 41) // overwrite
	c.RecordSpan("route", 2*time.Millisecond)
	c.RecordSpan("route", 4*time.Millisecond)
	if got := c.Counter("swaps"); got != 6 {
		t.Fatalf("swaps = %d, want 6", got)
	}
	if v, ok := c.Gauge("depth"); !ok || v != 41 {
		t.Fatalf("depth = %v,%v", v, ok)
	}
	snap := c.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %d", len(snap.Spans))
	}
	s := snap.Spans[0]
	if s.Name != "route" || s.Count != 2 {
		t.Fatalf("span = %+v", s)
	}
	if s.MinSec != 0.002 || s.MaxSec != 0.004 || s.TotalSec != 0.006 {
		t.Fatalf("span stats = %+v", s)
	}
	if s.MeanSec != 0.003 {
		t.Fatalf("mean = %v", s.MeanSec)
	}

	c.Reset()
	if got := c.Counter("swaps"); got != 0 {
		t.Fatalf("after reset swaps = %d", got)
	}
}

func TestStartSpanRecords(t *testing.T) {
	c := New()
	sp := c.StartSpan("map")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("elapsed = %v", d)
	}
	snap := c.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Count != 1 || snap.Spans[0].TotalSec <= 0 {
		t.Fatalf("snapshot = %+v", snap.Spans)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	const workers, per = 16, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add("n", 1)
				c.Set("g", float64(w))
				c.RecordSpan("s", time.Microsecond)
				sp := c.StartSpan("t")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Counter("n"); got != workers*per {
		t.Fatalf("n = %d, want %d", got, workers*per)
	}
	snap := c.Snapshot()
	for _, s := range snap.Spans {
		if s.Count != workers*per {
			t.Fatalf("span %s count = %d, want %d", s.Name, s.Count, workers*per)
		}
	}
}

func TestReportRoundTripAndStability(t *testing.T) {
	c := New()
	c.Add("router/swaps", 12)
	c.Set("fig7/ratio", 0.8)
	c.RecordSpan("compile/map", 3*time.Millisecond)
	r := NewReport("test", "abc123", c)
	r.AddBenchmark(Benchmark{Name: "fig7/QAIM", Instances: 4, CompileSec: 0.1, Swaps: 9, Depth: 40, Gates: 200})
	r.AddBenchmark(Benchmark{Name: "fig7/NAIVE", Instances: 4, CompileSec: 0.2, Swaps: 20, Depth: 60, Gates: 300})

	data, err := r.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("no trailing newline")
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "test" || back.Revision != "abc123" || len(back.Benchmarks) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	// Benchmarks sorted by name in the serialized form.
	if back.Benchmarks[0].Name != "fig7/NAIVE" {
		t.Fatalf("not sorted: %s first", back.Benchmarks[0].Name)
	}
	if b, ok := back.Benchmark("fig7/QAIM"); !ok || b.Swaps != 9 {
		t.Fatalf("lookup = %+v,%v", b, ok)
	}
	if got := back.Counters["router/swaps"]; got != 12 {
		t.Fatalf("counter = %d", got)
	}

	// Marshaling the parsed report again is byte-identical (stable artifact).
	again, err := back.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("marshal not stable:\n%s\n---\n%s", data, again)
	}
}

func TestParseReportRejectsWrongSchema(t *testing.T) {
	data, _ := json.Marshal(map[string]any{"schema": SchemaVersion + 1, "tool": "x"})
	if _, err := ParseReport(data); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ParseReport([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestStripTimingsMakesReportsComparable(t *testing.T) {
	build := func(compileSec float64) *Report {
		c := New()
		c.Add("compile/swaps", 7)
		c.RecordSpan("compile/route", time.Duration(compileSec*float64(time.Second)))
		r := NewReport("t", "r1", c)
		r.TimeUnitSec = compileSec / 10
		r.AddBenchmark(Benchmark{Name: "b", CompileSec: compileSec, MapSec: 0.01, OrderSec: 0.01, RouteSec: 0.01, CompileUnits: 10, Swaps: 3, Depth: 12, Gates: 50})
		return r
	}
	a, b := build(0.5), build(0.9)
	a.StripTimings()
	b.StripTimings()
	da, err := a.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("stripped reports differ:\n%s\n---\n%s", da, db)
	}
	if strings.Contains(string(da), "created_at") {
		t.Fatal("created_at survived StripTimings")
	}
}

func TestDefaultFilename(t *testing.T) {
	if got := DefaultFilename(""); got != "BENCH_dev.json" {
		t.Fatalf("empty rev = %q", got)
	}
	if got := DefaultFilename("v1.2/dirty branch"); got != "BENCH_v1.2-dirty-branch.json" {
		t.Fatalf("sanitized = %q", got)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	base.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1, CompileUnits: 1, Swaps: 10, Depth: 40})
	base.AddBenchmark(Benchmark{Name: "fig9/IC", CompileSec: 2, CompileUnits: 2, Swaps: 8, Depth: 30})

	cur := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	cur.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1.05, CompileUnits: 1.05, Swaps: 10, Depth: 40})
	cur.AddBenchmark(Benchmark{Name: "fig9/IC", CompileSec: 2, CompileUnits: 2, Swaps: 8, Depth: 30})
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("clean compare regressed: %v", regs)
	}

	// Swap-count regression beyond 15%.
	cur2 := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	cur2.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1, CompileUnits: 1, Swaps: 12, Depth: 40})
	cur2.AddBenchmark(Benchmark{Name: "fig9/IC", CompileSec: 2, CompileUnits: 2, Swaps: 8, Depth: 30})
	regs := Compare(base, cur2, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "swaps" || regs[0].Benchmark != "fig7/QAIM" {
		t.Fatalf("swap regression = %v", regs)
	}
	if !strings.Contains(regs[0].String(), "swaps regressed") {
		t.Fatalf("message = %q", regs[0].String())
	}

	// Normalized time shields a slower machine: raw seconds doubled but the
	// time unit doubled too, so compile units are unchanged.
	slow := &Report{Schema: SchemaVersion, TimeUnitSec: 2}
	slow.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 2, CompileUnits: 1, Swaps: 10, Depth: 40})
	slow.AddBenchmark(Benchmark{Name: "fig9/IC", CompileSec: 4, CompileUnits: 2, Swaps: 8, Depth: 30})
	if regs := Compare(base, slow, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("normalized compare regressed: %v", regs)
	}

	// Missing benchmark is reported.
	missing := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	missing.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1, CompileUnits: 1, Swaps: 10, Depth: 40})
	regs = Compare(base, missing, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("missing = %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Fatalf("message = %q", regs[0].String())
	}

	// Custom thresholds loosen the gate.
	if regs := Compare(base, cur2, CompareOptions{CountThreshold: 0.5}); len(regs) != 0 {
		t.Fatalf("loose threshold still regressed: %v", regs)
	}

	// The absolute time slack keeps microsecond-scale records quiet: 3x
	// slower, but within 0.05 units of the baseline.
	tiny := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	tiny.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1, CompileUnits: 0.01, Swaps: 10, Depth: 40})
	tinyCur := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	tinyCur.AddBenchmark(Benchmark{Name: "fig7/QAIM", CompileSec: 1, CompileUnits: 0.03, Swaps: 10, Depth: 40})
	if regs := Compare(tiny, tinyCur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("slack did not absorb tiny-record jitter: %v", regs)
	}
	// ... but a regression past the slack still fails.
	tinyCur.Benchmarks[0].CompileUnits = 0.1
	if regs := Compare(tiny, tinyCur, CompareOptions{}); len(regs) != 1 || regs[0].Metric != "compile_time" {
		t.Fatalf("slack swallowed a real regression: %v", regs)
	}

	// Zero baseline gates absolutely against the threshold.
	zb := &Report{Schema: SchemaVersion}
	zb.AddBenchmark(Benchmark{Name: "z", Swaps: 0, Depth: 0})
	zc := &Report{Schema: SchemaVersion}
	zc.AddBenchmark(Benchmark{Name: "z", Swaps: 5, Depth: 0})
	regs = Compare(zb, zc, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "swaps" {
		t.Fatalf("zero-baseline = %v", regs)
	}
}

func TestCompareSimGates(t *testing.T) {
	base := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	base.AddBenchmark(Benchmark{Name: "fig7/QAIM", SimSec: 10, SimUnits: 10, Swaps: 1, Depth: 1})
	base.Counters = map[string]int64{CntSimAmpOps: 1000, CntSimReplayGates: 200}

	// Wall-clock sim jitter below the wide default threshold passes...
	cur := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	cur.AddBenchmark(Benchmark{Name: "fig7/QAIM", SimSec: 16, SimUnits: 16, Swaps: 1, Depth: 1})
	cur.Counters = map[string]int64{CntSimAmpOps: 1000, CntSimReplayGates: 200}
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("sim jitter within threshold regressed: %v", regs)
	}
	// ... but a catastrophic slowdown fails.
	cur.Benchmarks[0].SimUnits = 20
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "sim_time" {
		t.Fatalf("sim_time regression = %v", regs)
	}

	// The deterministic work counters gate tightly: +16% amp ops fails at
	// the default 15% count threshold even with wall time unchanged.
	cur2 := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	cur2.AddBenchmark(Benchmark{Name: "fig7/QAIM", SimSec: 10, SimUnits: 10, Swaps: 1, Depth: 1})
	cur2.Counters = map[string]int64{CntSimAmpOps: 1160, CntSimReplayGates: 200}
	regs = Compare(base, cur2, CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != CntSimAmpOps || regs[0].Benchmark != "counters" {
		t.Fatalf("counter regression = %v", regs)
	}

	// A baseline without the counters (schema-1 vintage) gates nothing.
	old := &Report{Schema: SchemaVersion, TimeUnitSec: 1}
	old.AddBenchmark(Benchmark{Name: "fig7/QAIM", Swaps: 1, Depth: 1})
	if regs := Compare(old, cur2, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("counter-less baseline regressed: %v", regs)
	}
}
