package obsv

import "context"

// Request-ID context propagation. The serving layer mints one ID per HTTP
// request and threads it here; every layer below — the compile passes, the
// router, the simulator — reads the same context, so the ID joins the four
// per-request observability surfaces without any layer knowing about HTTP:
//
//	X-Request-ID response header  (internal/serve)
//	canonical wide-event log line (FieldReqID)
//	/debug/requests inspector     (internal/serve inspector record)
//	trace stream                  (trace.MetaInfo.RequestID)
//
// obsv owns the key because it is the one observability package everything
// already imports and that imports nothing.

// reqIDKey is the private context key type; a private type makes collisions
// with foreign context values impossible.
type reqIDKey struct{}

// WithRequestID returns a context carrying the request ID. An empty id
// returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request ID carried by ctx ("" when absent or ctx
// is nil).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
