package compile

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

func smallProblem(t *testing.T, n int, seed int64) *qaoa.Problem {
	t.Helper()
	g := graphs.MustRandomRegular(n, 3, rand.New(rand.NewSource(seed)))
	return mustProblem(t, g)
}

func TestCompileContextExpiredDeadline(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // guarantee the deadline is spent before compiling
	_, err := CompileContext(ctx, prob, p1Params(0.5, 0.2), device.Tokyo20(),
		PresetIC.Options(rand.New(rand.NewSource(1))))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestCompileHookErrorSurfaces(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	boom := errors.New("boom")
	opts := PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Hook = func(stage string) error {
		if stage == StageRoute {
			return boom
		}
		return nil
	}
	_, err := CompileContext(context.Background(), prob, p1Params(0.5, 0.2), device.Tokyo20(), opts)
	if !errors.Is(err, boom) {
		t.Fatalf("want hook error, got %v", err)
	}
}

func TestCompilePanicBecomesTypedError(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	opts := PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Hook = func(stage string) error {
		panic(fmt.Sprintf("injected in %s", stage))
	}
	_, err := CompileContext(context.Background(), prob, p1Params(0.5, 0.2), device.Tokyo20(), opts)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Stage != StageMap {
		t.Fatalf("panic stage = %q, want %q", pe.Stage, StageMap)
	}
}

func TestCompileDisconnectedDeviceNoPanic(t *testing.T) {
	// 6-qubit device broken into a 4-chain and a 2-chain: a 4-node problem
	// must compile onto the large component; a 5-node problem must fail with
	// a typed error, and nothing may panic.
	g := graphs.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(4, 5)
	dev := &device.Device{Name: "split6", Coupling: g}

	probFit := smallProblem(t, 4, 7)
	for _, preset := range Presets {
		if preset == PresetVIC {
			continue // needs calibration
		}
		res, err := Compile(probFit, p1Params(0.5, 0.2), dev, preset.Options(rand.New(rand.NewSource(2))))
		if err != nil {
			t.Fatalf("%v on largest component: %v", preset, err)
		}
		if err := dev.VerifyCompliant(res.Circuit); err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
	}

	probBig := smallProblem(t, 6, 7)
	_, err := Compile(probBig, p1Params(0.5, 0.2), dev, PresetIC.Options(rand.New(rand.NewSource(2))))
	var ie *InsufficientQubitsError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InsufficientQubitsError, got %v", err)
	}
	if ie.Usable != 4 || ie.Total != 6 {
		t.Fatalf("error fields = %+v", ie)
	}
}

func TestCompileDeadQubitMelbourneNoPanic(t *testing.T) {
	// Kill qubit 0 of ibmq_16_melbourne by severing its edges; a 12-node
	// problem still fits the surviving 14-qubit component.
	healthy := device.Melbourne15()
	g := graphs.New(healthy.NQubits())
	for _, e := range healthy.Coupling.Edges() {
		if e.U == 0 || e.V == 0 {
			continue
		}
		g.MustAddEdge(e.U, e.V)
	}
	dev := &device.Device{Name: "melbourne/dead0", Coupling: g, Calib: healthy.Calib}
	prob := smallProblem(t, 12, 11)
	for _, preset := range Presets {
		res, err := Compile(prob, p1Params(0.5, 0.2), dev, preset.Options(rand.New(rand.NewSource(3))))
		if err != nil {
			t.Fatalf("%v with dead qubit: %v", preset, err)
		}
		for _, gate := range res.Circuit.Gates {
			if gate.Q0 == 0 || (gate.Arity() == 2 && gate.Q1 == 0) {
				t.Fatalf("%v: gate %v touches dead qubit 0", preset, gate)
			}
		}
	}
}

func TestCompileMissingCNOTCalibrationNoPanic(t *testing.T) {
	// VIC on a device whose calibration lost one edge entry: the pessimistic
	// reliability weighting must carry it, not panic or error.
	rng := rand.New(rand.NewSource(9))
	dev := device.Melbourne15()
	cal := &device.Calibration{
		CNOTError:        make(map[[2]int]float64, len(dev.Calib.CNOTError)),
		SingleQubitError: dev.Calib.SingleQubitError,
		ReadoutError:     dev.Calib.ReadoutError,
	}
	for k, v := range dev.Calib.CNOTError {
		cal.CNOTError[k] = v
	}
	e0 := dev.Coupling.Edges()[0]
	delete(cal.CNOTError, [2]int{e0.U, e0.V})
	partial := &device.Device{Name: "melbourne/partial-calib", Coupling: dev.Coupling, Calib: cal}

	prob := smallProblem(t, 10, 13)
	res, err := Compile(prob, p1Params(0.5, 0.2), partial, PresetVIC.Options(rng))
	if err != nil {
		t.Fatalf("VIC with missing calibration entry: %v", err)
	}
	if err := partial.VerifyCompliant(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestLadderShapes(t *testing.T) {
	cases := map[Preset][]Preset{
		PresetVIC:     {PresetVIC, PresetIC, PresetIP, PresetNaive},
		PresetIC:      {PresetIC, PresetIP, PresetNaive},
		PresetIP:      {PresetIP, PresetNaive},
		PresetQAIM:    {PresetQAIM, PresetNaive},
		PresetGreedyV: {PresetGreedyV, PresetNaive},
		PresetNaive:   {PresetNaive},
	}
	for p, want := range cases {
		got := Ladder(p)
		if len(got) != len(want) {
			t.Fatalf("Ladder(%v) = %v, want %v", p, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Ladder(%v) = %v, want %v", p, got, want)
			}
		}
	}
}

func TestCompileResilientDirectSuccess(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	res, err := CompileResilient(context.Background(), prob, p1Params(0.5, 0.2),
		device.Tokyo20(), PresetIC, FallbackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.Fallback
	if fb == nil {
		t.Fatal("resilient result missing FallbackInfo")
	}
	if fb.Degraded || fb.Effective != PresetIC || len(fb.Attempts) != 0 {
		t.Fatalf("unexpected fallback info %+v", fb)
	}
}

func TestCompileResilientVICWithoutCalibrationDegrades(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	res, err := CompileResilient(context.Background(), prob, p1Params(0.5, 0.2),
		device.Tokyo20(), PresetVIC, FallbackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.Fallback
	if fb == nil || !fb.Degraded {
		t.Fatalf("want degraded fallback, got %+v", fb)
	}
	if fb.Requested != PresetVIC || fb.Effective != PresetIC {
		t.Fatalf("want VIC→IC, got %v→%v", fb.Requested, fb.Effective)
	}
	if fb.Reason == "" || len(fb.Attempts) != 1 {
		t.Fatalf("fallback bookkeeping %+v", fb)
	}
}

func TestCompileResilientRetriesThenSucceeds(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	fails := 0
	fo := FallbackOptions{
		Backoff: time.Microsecond,
		Hook: func(stage string) error {
			if stage == StageMap && fails < 1 {
				fails++
				return errors.New("transient")
			}
			return nil
		},
	}
	res, err := CompileResilient(context.Background(), prob, p1Params(0.5, 0.2),
		device.Tokyo20(), PresetIC, fo)
	if err != nil {
		t.Fatal(err)
	}
	fb := res.Fallback
	if fb.Degraded {
		t.Fatalf("retry within the rung should not degrade: %+v", fb)
	}
	if len(fb.Attempts) != 1 || fb.Attempts[0].Retry != 0 {
		t.Fatalf("attempts = %+v", fb.Attempts)
	}
}

func TestCompileResilientLadderExhausted(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	fo := FallbackOptions{
		Backoff: time.Microsecond,
		Hook:    func(string) error { return errors.New("always down") },
	}
	_, err := CompileResilient(context.Background(), prob, p1Params(0.5, 0.2),
		device.Tokyo20(), PresetIP, fo)
	var le *LadderError
	if !errors.As(err, &le) {
		t.Fatalf("want *LadderError, got %v", err)
	}
	// Ladder(IP) has 2 rungs × (1 + 1 retry) attempts each.
	if le.Requested != PresetIP || len(le.Attempts) != 4 {
		t.Fatalf("ladder error %+v", le)
	}
}

func TestCompileResilientAbortsOnDeadline(t *testing.T) {
	prob := smallProblem(t, 8, 3)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err := CompileResilient(ctx, prob, p1Params(0.5, 0.2),
		device.Tokyo20(), PresetIC, FallbackOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestCompileResilientInsufficientQubitsAborts(t *testing.T) {
	// No ladder rung can fix a problem larger than the device: fail fast.
	prob := smallProblem(t, 8, 3)
	_, err := CompileResilient(context.Background(), prob, p1Params(0.5, 0.2),
		device.Linear(4), PresetIC, FallbackOptions{})
	var ie *InsufficientQubitsError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InsufficientQubitsError, got %v", err)
	}
}
