// Package compile implements the paper's four QAOA compilation
// methodologies on top of the conventional layered backend in package
// router:
//
//   - QAIM — integrated Qubit Allocation and Initial Mapping (§IV-A)
//   - IP   — Instruction Parallelization by first-fit-decreasing bin
//     packing of the commuting CPhase gates (§IV-B)
//   - IC   — Incremental Compilation, forming one CPhase layer at a time
//     under the live post-SWAP layout (§IV-C)
//   - VIC  — Variation-aware IC over reliability-weighted distances (§IV-D)
//
// plus the NAIVE and GreedyV baselines the paper compares against. The five
// named configurations of the evaluation are exposed as Presets.
package compile

import (
	"fmt"
	"math/rand"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// Mapper selects the initial logical-to-physical mapping policy.
type Mapper int

const (
	// MapRandom places logical qubits on a random subset of physical qubits
	// (the NAIVE baseline's initial mapping).
	MapRandom Mapper = iota
	// MapGreedyV places the heaviest logical qubits on the highest-degree
	// physical qubits (Murali et al., ASPLOS'19).
	MapGreedyV
	// MapQAIM is the paper's integrated qubit allocation + initial mapping.
	MapQAIM
	// MapReverse refines a random mapping by reverse traversal (Li et al.,
	// ASPLOS'19) — a higher-cost baseline the paper discusses in §III.
	MapReverse
)

// String names the mapper.
func (m Mapper) String() string {
	switch m {
	case MapRandom:
		return "random"
	case MapGreedyV:
		return "greedyV"
	case MapQAIM:
		return "qaim"
	case MapReverse:
		return "reverse-traversal"
	}
	return fmt.Sprintf("mapper(%d)", int(m))
}

// Strategy selects how the commuting CPhase gates are ordered and routed.
type Strategy int

const (
	// WholeRandom compiles the complete circuit with randomly ordered
	// CPhase gates in a single backend call.
	WholeRandom Strategy = iota
	// WholeIP pre-orders the CPhase gates into packed parallel layers (IP)
	// and compiles the complete circuit in a single backend call.
	WholeIP
	// Incremental forms one CPhase layer at a time from the gates whose
	// endpoints are closest under the current layout, compiling and
	// stitching partial circuits (IC).
	Incremental
	// IncrementalVariation is Incremental over reliability-weighted
	// distances (VIC); it requires device calibration.
	IncrementalVariation
	// WholeColor pre-orders the CPhase gates by Misra–Gries edge coloring
	// (color classes are matchings, so the cost block schedules in ≤ Δ+1
	// layers — Vizing's guarantee, vs IP's first-fit heuristic) and
	// compiles the complete circuit in a single backend call.
	WholeColor
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case WholeRandom:
		return "whole-random"
	case WholeIP:
		return "ip"
	case Incremental:
		return "ic"
	case IncrementalVariation:
		return "vic"
	case WholeColor:
		return "vizing"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Hook observes pass boundaries during compilation. It is called with the
// stage about to run ("map", "order", "route"); a non-nil return aborts the
// compilation with that error. Fault-injection harnesses use hooks to
// simulate pass crashes (panics are recovered at the compile boundary and
// converted to *PanicError) and latency; nil disables the mechanism.
type Hook func(stage string) error

// Hook stage names.
const (
	StageMap   = "map"
	StageOrder = "order"
	StageRoute = "route"
)

// Options configures a compilation run.
type Options struct {
	Mapper   Mapper
	Strategy Strategy
	// PackingLimit caps the CPhase gates per formed layer in IP/IC/VIC
	// (0 = unlimited, i.e. pack to the fullest as in §V).
	PackingLimit int
	// StrengthRadius is the neighbourhood radius of QAIM's connectivity
	// strength metric (default 2 — first plus second neighbours).
	StrengthRadius int
	// LookaheadWeight is passed to the router (default 0.5; negative
	// disables lookahead).
	LookaheadWeight float64
	// ReverseIterations is the number of forward/reverse passes for
	// MapReverse (default 3, as in Li et al.).
	ReverseIterations int
	// RouterTrials > 1 lets the backend route each (partial) circuit that
	// many times with randomized tie-breaking and keep the fewest-SWAP
	// attempt (stochastic-swap). The attempts run in parallel across
	// GOMAXPROCS workers with deterministically pre-drawn per-trial
	// shuffles, and attempts that can no longer beat the best-so-far swap
	// count are pruned early, so the result is byte-identical to a
	// sequential best-of-N loop at well below N× the single-shot cost
	// (see DESIGN.md §11).
	RouterTrials int
	// Rng drives random tie-breaking and the NAIVE random choices; a nil
	// value gets a fixed-seed source so runs are reproducible by default.
	Rng *rand.Rand
	// Measure appends measurement gates after compilation when true.
	Measure bool
	// Optimize applies peephole rewrites (gate cancellation and rotation
	// merging, circuit.Peephole) to the compiled circuit and its native
	// decomposition — the analogue of a conventional compiler's higher
	// optimization levels.
	Optimize bool
	// Hook, when non-nil, is invoked at every pass boundary (see Hook).
	Hook Hook
	// Obs, when non-nil, receives per-pass spans (compile/map, compile/order,
	// compile/route, compile/stitch, compile/total) and counters (swaps,
	// gates, layers stitched) for this compilation, and is forwarded to the
	// routing backend. A nil collector costs nothing (see internal/obsv).
	Obs *obsv.Collector
	// Trace, when non-nil, receives the per-decision event stream of this
	// compilation — initial-placement choices, incremental layer formation,
	// every SWAP with its before/after layout, stitch boundaries — and is
	// forwarded to the routing backend. A nil tracer costs nothing (see
	// internal/trace).
	Trace *trace.Tracer
}

func (o Options) withDefaults() Options {
	if o.StrengthRadius <= 0 {
		o.StrengthRadius = 2
	}
	if o.LookaheadWeight == 0 {
		o.LookaheadWeight = 0.5
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Preset names the five evaluated configurations of the paper.
type Preset int

const (
	// PresetNaive is random mapping + random order through the backend.
	PresetNaive Preset = iota
	// PresetGreedyV is GreedyV mapping + random order.
	PresetGreedyV
	// PresetQAIM is QAIM mapping + random order.
	PresetQAIM
	// PresetIP is QAIM mapping + instruction-parallelized order.
	PresetIP
	// PresetIC is QAIM mapping + incremental compilation.
	PresetIC
	// PresetVIC is QAIM mapping + variation-aware incremental compilation.
	PresetVIC
)

// String names the preset as in the paper.
func (p Preset) String() string {
	switch p {
	case PresetNaive:
		return "NAIVE"
	case PresetGreedyV:
		return "GreedyV"
	case PresetQAIM:
		return "QAIM"
	case PresetIP:
		return "IP"
	case PresetIC:
		return "IC"
	case PresetVIC:
		return "VIC"
	}
	return fmt.Sprintf("preset(%d)", int(p))
}

// Presets lists all presets in paper order.
var Presets = []Preset{PresetNaive, PresetGreedyV, PresetQAIM, PresetIP, PresetIC, PresetVIC}

// Options expands the preset into concrete options sharing the given rng.
func (p Preset) Options(rng *rand.Rand) Options {
	o := Options{Rng: rng}
	switch p {
	case PresetNaive:
		o.Mapper, o.Strategy = MapRandom, WholeRandom
	case PresetGreedyV:
		o.Mapper, o.Strategy = MapGreedyV, WholeRandom
	case PresetQAIM:
		o.Mapper, o.Strategy = MapQAIM, WholeRandom
	case PresetIP:
		o.Mapper, o.Strategy = MapQAIM, WholeIP
	case PresetIC:
		o.Mapper, o.Strategy = MapQAIM, Incremental
	case PresetVIC:
		o.Mapper, o.Strategy = MapQAIM, IncrementalVariation
	default:
		panic("compile: unknown preset")
	}
	return o
}
