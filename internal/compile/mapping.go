package compile

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/router"
	"repro/internal/trace"
)

// InsufficientQubitsError reports a problem too large for the usable
// (connected) portion of a device — on a healthy machine Usable equals
// Total, on a degraded one it is the largest surviving coupling component.
type InsufficientQubitsError struct {
	Device        string
	Need          int
	Usable, Total int
}

func (e *InsufficientQubitsError) Error() string {
	if e.Usable < e.Total {
		return fmt.Sprintf("compile: %d logical qubits exceed the %d usable of degraded device %s (%d total)",
			e.Need, e.Usable, e.Device, e.Total)
	}
	return fmt.Sprintf("compile: %d logical qubits exceed device %s (%d)", e.Need, e.Device, e.Total)
}

// usablePhysical returns the placement-eligible physical qubits (the whole
// register, or the largest coupling component of a degraded device) and a
// typed error when n does not fit on them. All mapping policies place only
// on these qubits, so a device with dead qubits or severed edges keeps
// compiling as long as its healthy part is big enough.
func usablePhysical(n int, dev *device.Device) ([]int, error) {
	usable := dev.UsableQubits()
	if n > len(usable) {
		return nil, &InsufficientQubitsError{Device: dev.Name, Need: n, Usable: len(usable), Total: dev.NQubits()}
	}
	return usable, nil
}

// RandomMapping places the n logical qubits on a uniformly random subset of
// usable physical qubits — the NAIVE baseline's initial mapping.
func RandomMapping(n int, dev *device.Device, rng *rand.Rand) (*router.Layout, error) {
	usable, err := usablePhysical(n, dev)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(len(usable))
	l2p := make([]int, n)
	for i := range l2p {
		l2p[i] = usable[perm[i]]
	}
	return router.NewLayout(n, dev.NQubits(), l2p)
}

// GreedyVMapping implements the GreedyV policy of Murali et al. (ASPLOS'19):
// logical qubits sorted by operation count (problem-graph degree) descending
// are placed on physical qubits sorted by coupling degree descending.
// Ties are broken by index for determinism.
func GreedyVMapping(g *graphs.Graph, dev *device.Device) (*router.Layout, error) {
	n := g.N()
	usable, err := usablePhysical(n, dev)
	if err != nil {
		return nil, err
	}
	logical := sortedByDesc(n, func(q int) int { return g.Degree(q) })
	physical := append([]int(nil), usable...)
	sort.SliceStable(physical, func(a, b int) bool {
		return dev.Coupling.Degree(physical[a]) > dev.Coupling.Degree(physical[b])
	})
	l2p := make([]int, n)
	for i, q := range logical {
		l2p[q] = physical[i]
	}
	return router.NewLayout(n, dev.NQubits(), l2p)
}

// QAIMMapping implements the paper's integrated Qubit Allocation and
// Initial Mapping (§IV-A):
//
//  1. Logical qubits are sorted by CPhase operation count (= problem-graph
//     degree), descending.
//  2. The first is assigned to the free physical qubit with the highest
//     connectivity strength (distinct qubits within strengthRadius hops).
//  3. Each next logical qubit with already-placed logical neighbours is
//     assigned to the free physical neighbour of those placements that
//     maximizes strength / (cumulative hop distance to the placed
//     neighbours); without placed neighbours it takes the strongest free
//     physical qubit.
//
// Ties are broken uniformly at random via rng (pass a fixed seed for
// reproducibility), matching the paper's "picked randomly" tie rule.
func QAIMMapping(g *graphs.Graph, dev *device.Device, strengthRadius int, rng *rand.Rand) (*router.Layout, error) {
	return qaimMapping(g, dev, strengthRadius, rng, nil)
}

// qaimMapping is QAIMMapping emitting one trace placement event per
// decision when tr is enabled.
func qaimMapping(g *graphs.Graph, dev *device.Device, strengthRadius int, rng *rand.Rand, tr *trace.Tracer) (*router.Layout, error) {
	n := g.N()
	usable, err := usablePhysical(n, dev)
	if err != nil {
		return nil, err
	}
	eligible := make([]bool, dev.NQubits())
	for _, p := range usable {
		eligible[p] = true
	}
	if strengthRadius <= 0 {
		strengthRadius = 2
	}
	strength := dev.StrengthProfile(strengthRadius)
	dist := dev.HopDistances()

	// Step 1: logical qubits by degree descending (stable; equal-degree
	// order randomized).
	logical := make([]int, n)
	for i := range logical {
		logical[i] = i
	}
	rng.Shuffle(n, func(i, j int) { logical[i], logical[j] = logical[j], logical[i] })
	sort.SliceStable(logical, func(a, b int) bool { return g.Degree(logical[a]) > g.Degree(logical[b]) })

	l2p := make([]int, n)
	for i := range l2p {
		l2p[i] = -1
	}
	used := make([]bool, dev.NQubits())

	pickStrongestFree := func() int {
		best, bestS := -1, -1
		count := 0
		for p := 0; p < dev.NQubits(); p++ {
			if used[p] || !eligible[p] {
				continue
			}
			switch {
			case strength[p] > bestS:
				best, bestS, count = p, strength[p], 1
			case strength[p] == bestS:
				// Reservoir-sample among ties for the paper's random pick.
				count++
				if rng.Intn(count) == 0 {
					best = p
				}
			}
		}
		return best
	}

	// Scratch buffers reused across placement steps: candMark deduplicates
	// candidate positions (cleared per step by walking cands, not the whole
	// device) and placed/cands grow once to their high-water mark.
	candMark := make([]bool, dev.NQubits())
	cands := make([]int, 0, dev.NQubits())
	var placed []int
	for _, q := range logical {
		// Collect already-placed logical neighbours.
		placed = placed[:0]
		for _, nb := range g.Neighbors(q) {
			if l2p[nb] != -1 {
				placed = append(placed, l2p[nb])
			}
		}
		var chosen int
		var score float64
		candidates := 0
		if len(placed) == 0 {
			chosen = pickStrongestFree()
			for p := 0; p < dev.NQubits(); p++ {
				if !used[p] && eligible[p] {
					candidates++
				}
			}
		} else {
			// Candidates: free physical neighbours of the placed positions.
			cands = cands[:0]
			for _, p := range placed {
				for _, nb := range dev.Coupling.Neighbors(p) {
					if !used[nb] && eligible[nb] && !candMark[nb] {
						candMark[nb] = true
						cands = append(cands, nb)
					}
				}
			}
			if len(cands) == 0 {
				// All surrounding qubits taken: fall back to any free usable
				// qubit, still scored by the QAIM cost metric.
				for p := 0; p < dev.NQubits(); p++ {
					if !used[p] && eligible[p] {
						cands = append(cands, p)
					}
				}
				// Fallback candidates are already distinct and ascending; no
				// marks were set for them.
			} else {
				for _, p := range cands {
					candMark[p] = false
				}
			}
			chosen = -1
			bestScore := 0.0
			count := 0
			// Deterministic candidate iteration order with random tie-break.
			sort.Ints(cands)
			for _, p := range cands {
				var cum float64
				for _, pp := range placed {
					cum += dist.Dist(p, pp)
				}
				score := float64(strength[p]) / cum
				switch {
				case chosen == -1 || score > bestScore:
					chosen, bestScore, count = p, score, 1
				case score == bestScore:
					count++
					if rng.Intn(count) == 0 {
						chosen = p
					}
				}
			}
			score, candidates = bestScore, len(cands)
		}
		l2p[q] = chosen
		used[chosen] = true
		if tr.Enabled() {
			tr.Placement(trace.PlacementInfo{
				Logical:    q,
				Phys:       chosen,
				Strength:   strength[chosen],
				Score:      score,
				Candidates: candidates,
				// placed is a reused scratch buffer — the event gets its own copy.
				PlacedNeighbors: append([]int(nil), placed...),
			})
		}
	}
	return router.NewLayout(n, dev.NQubits(), l2p)
}

// buildMapping dispatches on the configured mapper.
func buildMapping(g *graphs.Graph, dev *device.Device, o Options) (*router.Layout, error) {
	switch o.Mapper {
	case MapRandom:
		return RandomMapping(g.N(), dev, o.Rng)
	case MapGreedyV:
		return GreedyVMapping(g, dev)
	case MapQAIM:
		return qaimMapping(g, dev, o.StrengthRadius, o.Rng, o.Trace)
	default:
		return nil, fmt.Errorf("compile: unknown mapper %v", o.Mapper)
	}
}

// sortedByDesc returns 0..n-1 sorted by key descending (stable on index).
func sortedByDesc(n int, key func(int) int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })
	return idx
}
