package compile

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graphs"
)

// RandomOrder returns the problem edges in uniformly random order — the
// NAIVE/QAIM gate sequence.
func RandomOrder(g *graphs.Graph, rng *rand.Rand) []graphs.Edge {
	order := append([]graphs.Edge(nil), g.Edges()...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// IPTermLayers implements the paper's Instruction Parallelization (§IV-B)
// over generic commuting ZZ terms: the operations are ranked by the
// cumulative operation count of their endpoints (descending, ties random)
// and packed first-fit into MOQ layers (MOQ = the maximum operations on any
// qubit — the lower bound on the layer count). Operations that fit no layer
// are re-packed into fresh rounds of layers until none remain. packingLimit
// (>0) caps the terms per layer.
func IPTermLayers(n int, terms []ZZTerm, rng *rand.Rand, packingLimit int) [][]ZZTerm {
	pending := append([]ZZTerm(nil), terms...)
	var layers [][]ZZTerm
	for len(pending) > 0 {
		// Qubit usage statistics for this round.
		ops := make([]int, n)
		for _, t := range pending {
			ops[t.U]++
			ops[t.V]++
		}
		moq := 0
		for _, c := range ops {
			if c > moq {
				moq = c
			}
		}

		// Rank: cumulative operations on the two endpoints, descending;
		// equal ranks ordered randomly.
		rng.Shuffle(len(pending), func(i, j int) {
			pending[i], pending[j] = pending[j], pending[i]
		})
		sort.SliceStable(pending, func(a, b int) bool {
			ra := ops[pending[a].U] + ops[pending[a].V]
			rb := ops[pending[b].U] + ops[pending[b].V]
			return ra > rb
		})

		// MOQ empty layers of qubit bins; first-fit decreasing.
		round := make([][]ZZTerm, moq)
		occupied := make([]map[int]bool, moq)
		for i := range occupied {
			occupied[i] = make(map[int]bool)
		}
		var unassigned []ZZTerm
		for _, t := range pending {
			placed := false
			for li := 0; li < moq; li++ {
				if packingLimit > 0 && len(round[li]) >= packingLimit {
					continue
				}
				if !occupied[li][t.U] && !occupied[li][t.V] {
					round[li] = append(round[li], t)
					occupied[li][t.U], occupied[li][t.V] = true, true
					placed = true
					break
				}
			}
			if !placed {
				unassigned = append(unassigned, t)
			}
		}
		for _, l := range round {
			if len(l) > 0 {
				layers = append(layers, l)
			}
		}
		pending = unassigned
	}
	return layers
}

func flattenTermLayers(layers [][]ZZTerm) []ZZTerm {
	var out []ZZTerm
	for _, l := range layers {
		out = append(out, l...)
	}
	return out
}

// IPLayers is the MaxCut view of IPTermLayers: it packs the problem-graph
// edges (unit ZZ terms) and returns layers of edges.
func IPLayers(g *graphs.Graph, rng *rand.Rand, packingLimit int) [][]graphs.Edge {
	terms := make([]ZZTerm, 0, g.M())
	for _, e := range g.Edges() {
		terms = append(terms, ZZTerm{U: e.U, V: e.V})
	}
	termLayers := IPTermLayers(g.N(), terms, rng, packingLimit)
	layers := make([][]graphs.Edge, len(termLayers))
	for i, tl := range termLayers {
		layers[i] = make([]graphs.Edge, len(tl))
		for j, t := range tl {
			layers[i][j] = graphs.Edge{U: t.U, V: t.V, Weight: 1}
		}
	}
	return layers
}

// IPOrder flattens IPLayers into the gate sequence handed to the backend.
func IPOrder(g *graphs.Graph, rng *rand.Rand, packingLimit int) []graphs.Edge {
	var order []graphs.Edge
	for _, layer := range IPLayers(g, rng, packingLimit) {
		order = append(order, layer...)
	}
	return order
}

// MOQ returns the maximum number of CPhase operations on any single qubit —
// the lower bound on the number of cost layers (§IV-B Step 1).
func MOQ(g *graphs.Graph) int {
	return g.MaxDegree()
}

// ColorTermOrder orders commuting ZZ terms by Misra–Gries edge coloring:
// the terms of each color class form a matching and are emitted together,
// so the cost block schedules in at most Δ+1 concurrent layers — Vizing's
// guarantee, against which IP's first-fit bin packing is a heuristic.
// Duplicate pairs (several terms on the same qubit pair) are not supported.
func ColorTermOrder(n int, terms []ZZTerm) ([]ZZTerm, error) {
	g := graphs.New(n)
	termAt := make(map[[2]int]ZZTerm, len(terms))
	for _, t := range terms {
		u, v := t.U, t.V
		if u > v {
			u, v = v, u
		}
		if _, dup := termAt[[2]int{u, v}]; dup {
			return nil, fmt.Errorf("compile: duplicate ZZ term (%d,%d) in coloring order", t.U, t.V)
		}
		termAt[[2]int{u, v}] = t
		if err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	colors, err := graphs.EdgeColoring(g)
	if err != nil {
		return nil, err
	}
	maxColor := 0
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	var out []ZZTerm
	for c := 1; c <= maxColor; c++ {
		for i, e := range g.Edges() {
			if colors[i] == c {
				out = append(out, termAt[[2]int{e.U, e.V}])
			}
		}
	}
	return out, nil
}
