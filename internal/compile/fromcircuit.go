package compile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/device"
)

// SpecFromCircuit recognizes a QAOA-shaped logical circuit and extracts its
// compiler spec, so externally produced circuits (e.g. imported via OpenQASM
// from another toolchain) can go through the commutation-exploiting
// pipeline. The expected shape is
//
//	H on every qubit
//	repeat p times:
//	    a block of commuting diagonal gates (CPhase terms, RZ/U1/Z locals)
//	    RX(2β) on every qubit with a common β
//	optionally Measure gates at the end.
//
// It returns the spec and whether trailing measurements were present.
func SpecFromCircuit(c *circuit.Circuit) (Spec, bool, error) {
	n := c.NQubits
	gates := c.Gates
	i := 0

	// Hadamard prefix covering every qubit exactly once.
	seenH := make([]bool, n)
	hCount := 0
	for i < len(gates) && gates[i].Kind == circuit.H {
		q := gates[i].Q0
		if seenH[q] {
			return Spec{}, false, fmt.Errorf("compile: duplicate H on qubit %d in prefix", q)
		}
		seenH[q] = true
		hCount++
		i++
	}
	if hCount != n {
		return Spec{}, false, fmt.Errorf("compile: H prefix covers %d of %d qubits", hCount, n)
	}

	spec := Spec{N: n}
	for i < len(gates) && gates[i].Kind != circuit.Measure {
		level, next, err := parseLevel(gates, i, n)
		if err != nil {
			return Spec{}, false, err
		}
		spec.Levels = append(spec.Levels, level)
		i = next
	}
	if len(spec.Levels) == 0 {
		return Spec{}, false, fmt.Errorf("compile: no cost/mixer level found")
	}

	// Optional measurement suffix.
	hasMeasure := false
	for ; i < len(gates); i++ {
		if gates[i].Kind != circuit.Measure {
			return Spec{}, false, fmt.Errorf("compile: gate %v after measurements", gates[i])
		}
		hasMeasure = true
	}
	return spec, hasMeasure, nil
}

// parseLevel consumes one diagonal block plus its mixer layer.
func parseLevel(gates []circuit.Gate, i, n int) (LevelSpec, int, error) {
	level := LevelSpec{}
	var local []float64
	hasLocal := false
	for i < len(gates) {
		g := gates[i]
		if !g.IsDiagonal() {
			break
		}
		switch g.Kind {
		case circuit.CPhase:
			level.ZZ = append(level.ZZ, ZZTerm{U: g.Q0, V: g.Q1, Theta: g.Params[0]})
		case circuit.CZ:
			// CZ = CPhase(π) up to local phases; reject rather than guess.
			return LevelSpec{}, 0, fmt.Errorf("compile: bare CZ in cost block; use CPhase")
		default: // RZ, U1, Z on one qubit
			if local == nil {
				local = make([]float64, n)
			}
			hasLocal = true
			switch g.Kind {
			case circuit.RZ:
				local[g.Q0] += g.Params[0]
			case circuit.U1:
				local[g.Q0] += g.Params[0]
			case circuit.Z:
				local[g.Q0] += math.Pi
			}
		}
		i++
	}
	if len(level.ZZ) == 0 && !hasLocal {
		return LevelSpec{}, 0, fmt.Errorf("compile: empty cost block before gate %d", i)
	}
	if hasLocal {
		level.Local = local
	}

	// Mixer: RX on every qubit with one shared angle.
	seen := make([]bool, n)
	count := 0
	theta := math.NaN()
	for i < len(gates) && gates[i].Kind == circuit.RX {
		g := gates[i]
		if seen[g.Q0] {
			return LevelSpec{}, 0, fmt.Errorf("compile: duplicate mixer RX on qubit %d", g.Q0)
		}
		seen[g.Q0] = true
		if math.IsNaN(theta) {
			theta = g.Params[0]
		} else if math.Abs(theta-g.Params[0]) > 1e-12 {
			return LevelSpec{}, 0, fmt.Errorf("compile: mixer angles differ (%v vs %v)", theta, g.Params[0])
		}
		count++
		i++
	}
	if count != n {
		return LevelSpec{}, 0, fmt.Errorf("compile: mixer covers %d of %d qubits", count, n)
	}
	level.MixerBeta = theta / 2
	return level, i, nil
}

// CompileCircuit compiles an externally built QAOA-shaped logical circuit
// (see SpecFromCircuit) through the configured methodology. Trailing
// measurements in the input turn on Options.Measure.
func CompileCircuit(c *circuit.Circuit, dev *device.Device, opts Options) (*Result, error) {
	spec, hasMeasure, err := SpecFromCircuit(c)
	if err != nil {
		return nil, err
	}
	if hasMeasure {
		opts.Measure = true
	}
	return CompileSpec(spec, dev, opts)
}
