package compile

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
	"repro/internal/router"
)

// requireSameResult asserts got is byte-identical to want: every gate of
// both circuits, both layouts, and the routed metrics. This is the
// skeleton correctness contract — Bind must be indistinguishable from a
// fresh concrete compile.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !slices.Equal(got.Circuit.Gates, want.Circuit.Gates) {
		t.Fatalf("%s: bound circuit differs from oracle\nbound:\n%s\noracle:\n%s", label, got.Circuit, want.Circuit)
	}
	if got.Circuit.NQubits != want.Circuit.NQubits {
		t.Fatalf("%s: bound circuit register %d, oracle %d", label, got.Circuit.NQubits, want.Circuit.NQubits)
	}
	if !slices.Equal(got.Native.Gates, want.Native.Gates) {
		t.Fatalf("%s: bound native circuit differs from oracle", label)
	}
	if got.Circuit.String() != want.Circuit.String() || got.Native.String() != want.Native.String() {
		t.Fatalf("%s: textual rendering differs from oracle", label)
	}
	requireSameLayout(t, label+" initial", got.Initial, want.Initial)
	requireSameLayout(t, label+" final", got.Final, want.Final)
	if got.SwapCount != want.SwapCount || got.Depth != want.Depth || got.GateCount != want.GateCount {
		t.Fatalf("%s: metrics (swaps=%d depth=%d gates=%d) differ from oracle (swaps=%d depth=%d gates=%d)",
			label, got.SwapCount, got.Depth, got.GateCount, want.SwapCount, want.Depth, want.GateCount)
	}
}

func requireSameLayout(t *testing.T, label string, got, want *router.Layout) {
	t.Helper()
	if !slices.Equal(got.L2P, want.L2P) || !slices.Equal(got.P2L, want.P2L) {
		t.Fatalf("%s: layout %v/%v differs from oracle %v/%v", label, got.L2P, got.P2L, want.L2P, want.P2L)
	}
}

// The tentpole oracle: for every preset, device, seed, level count and a
// spread of angle sets, binding the one-time skeleton is byte-identical
// to running the full pipeline on the concrete angles with the same seed.
func TestSkeletonBindMatchesCompileOracle(t *testing.T) {
	devices := []*device.Device{device.Melbourne15(), device.Tokyo20()}
	graphsUnderTest := []*graphs.Graph{
		graphs.ErdosRenyi(8, 0.5, rand.New(rand.NewSource(3))),
		graphs.MustRandomRegular(10, 3, rand.New(rand.NewSource(4))),
	}
	angleSets := []qaoa.Params{
		{Gamma: []float64{0.8, 0.37}, Beta: []float64{0.4, 0.19}},
		{Gamma: []float64{-1.2, 2.5}, Beta: []float64{0.05, -0.7}},
		{Gamma: []float64{0, 0}, Beta: []float64{0, 0}}, // zero angles must not change structure
	}
	ctx := context.Background()
	for _, dev := range devices {
		for _, g := range graphsUnderTest {
			prob := mustProblem(t, g)
			for _, preset := range Presets {
				if preset == PresetVIC && dev.Calib == nil {
					continue
				}
				for _, seed := range []int64{1, 7} {
					for _, p := range []int{1, 2} {
						ps, err := ParamSpecFromMaxCut(prob, p)
						if err != nil {
							t.Fatal(err)
						}
						sk, err := CompileSkeleton(ctx, ps, dev, preset.Options(rand.New(rand.NewSource(seed))))
						if err != nil {
							t.Fatalf("%s/%v seed=%d p=%d: skeleton: %v", dev.Name, preset, seed, p, err)
						}
						var buf BindBuffer
						for _, full := range angleSets {
							params := qaoa.Params{Gamma: full.Gamma[:p], Beta: full.Beta[:p]}
							bound, err := sk.BindTo(&buf, params)
							if err != nil {
								t.Fatalf("%s/%v seed=%d p=%d: bind: %v", dev.Name, preset, seed, p, err)
							}
							oracle, err := CompileContext(ctx, prob, params, dev, preset.Options(rand.New(rand.NewSource(seed))))
							if err != nil {
								t.Fatalf("%s/%v seed=%d p=%d: oracle: %v", dev.Name, preset, seed, p, err)
							}
							requireSameResult(t, dev.Name+"/"+preset.String(), bound, oracle)
						}
					}
				}
			}
		}
	}
}

// Weighted terms and measured circuits must round-trip too: the qaoad
// request path compiles weighted specs with measurement, so the oracle
// contract covers Options.Measure and non-unit weights.
func TestSkeletonBindWeightedMeasuredMatchesOracle(t *testing.T) {
	ps := ParamSpec{
		N: 6, P: 2,
		Terms: []WeightedTerm{
			{U: 0, V: 1, Weight: 1},
			{U: 1, V: 2, Weight: 0.5},
			{U: 2, V: 3, Weight: 2.25},
			{U: 3, V: 4, Weight: -1.3},
			{U: 4, V: 5, Weight: 0.001},
			{U: 5, V: 0, Weight: 3.7},
		},
	}
	dev := device.Melbourne15()
	ctx := context.Background()
	params := qaoa.Params{Gamma: []float64{0.81, -0.29}, Beta: []float64{0.33, 0.12}}
	for _, preset := range Presets {
		opts := preset.Options(rand.New(rand.NewSource(11)))
		opts.Measure = true
		sk, err := CompileSkeleton(ctx, ps, dev, opts)
		if err != nil {
			t.Fatalf("%v: skeleton: %v", preset, err)
		}
		bound, err := sk.Bind(params)
		if err != nil {
			t.Fatalf("%v: bind: %v", preset, err)
		}
		spec, err := ps.Spec(params)
		if err != nil {
			t.Fatal(err)
		}
		oracleOpts := preset.Options(rand.New(rand.NewSource(11)))
		oracleOpts.Measure = true
		oracle, err := CompileSpecContext(ctx, spec, dev, oracleOpts)
		if err != nil {
			t.Fatalf("%v: oracle: %v", preset, err)
		}
		requireSameResult(t, preset.String(), bound, oracle)
	}
}

// The resilient skeleton must walk the same ladder as CompileResilient:
// requesting VIC on an uncalibrated device degrades both paths to IC, and
// the bound circuit matches the resilient oracle byte for byte, fallback
// record included.
func TestSkeletonResilientMatchesResilientOracle(t *testing.T) {
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(9)))
	prob := mustProblem(t, g)
	dev := device.Tokyo20() // no calibration: VIC must step down
	params := p1Params(0.7, 0.25)
	ctx := context.Background()

	ps, err := ParamSpecFromMaxCut(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := CompileSkeletonResilient(ctx, ps, dev, PresetVIC, FallbackOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := sk.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := CompileResilient(ctx, prob, params, dev, PresetVIC, FallbackOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "resilient", bound, oracle)

	if bound.Fallback == nil || sk.Fallback() == nil {
		t.Fatal("resilient skeleton must carry fallback info on the skeleton and every bound result")
	}
	if bound.Fallback.Effective != oracle.Fallback.Effective ||
		bound.Fallback.Degraded != oracle.Fallback.Degraded ||
		len(bound.Fallback.Attempts) != len(oracle.Fallback.Attempts) {
		t.Fatalf("fallback mismatch: bound %+v, oracle %+v", bound.Fallback, oracle.Fallback)
	}
	if !bound.Fallback.Degraded || bound.Fallback.Effective != PresetIC {
		t.Fatalf("expected VIC→IC degradation, got %+v", bound.Fallback)
	}
}

func TestSkeletonRejectsOptimize(t *testing.T) {
	ps := ParamSpec{N: 2, P: 1, Terms: []WeightedTerm{{U: 0, V: 1, Weight: 1}}}
	dev := device.Melbourne15()
	opts := PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Optimize = true
	if _, err := CompileSkeleton(context.Background(), ps, dev, opts); !errors.Is(err, ErrSkeletonOptimize) {
		t.Fatalf("CompileSkeleton with Optimize: err = %v, want ErrSkeletonOptimize", err)
	}
	if _, err := CompileSkeletonResilient(context.Background(), ps, dev, PresetIC, FallbackOptions{Optimize: true}); !errors.Is(err, ErrSkeletonOptimize) {
		t.Fatalf("CompileSkeletonResilient with Optimize: err = %v, want ErrSkeletonOptimize", err)
	}
}

func TestSkeletonBindValidatesParams(t *testing.T) {
	g := graphs.MustRandomRegular(6, 3, rand.New(rand.NewSource(2)))
	prob := mustProblem(t, g)
	ps, err := ParamSpecFromMaxCut(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := CompileSkeleton(context.Background(), ps, device.Melbourne15(), PresetIC.Options(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Bind(p1Params(0.5, 0.2)); err == nil {
		t.Fatal("binding 1-level params on a 2-level skeleton must fail")
	}
	if _, err := sk.Bind(qaoa.Params{}); err == nil {
		t.Fatal("binding empty params must fail")
	}
	if _, err := sk.Bind(qaoa.Params{Gamma: []float64{1, 2}, Beta: []float64{1}}); err == nil {
		t.Fatal("binding ragged params must fail")
	}
}

func TestParamSpecValidate(t *testing.T) {
	cases := []ParamSpec{
		{N: 0, P: 1},
		{N: 3, P: 0},
		{N: 3, P: 1, Terms: []WeightedTerm{{U: 0, V: 3, Weight: 1}}},
		{N: 3, P: 1, Terms: []WeightedTerm{{U: 1, V: 1, Weight: 1}}},
	}
	for i, ps := range cases {
		if err := ps.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted invalid spec %+v", i, ps)
		}
	}
}

// The bind path is a per-evaluation hot path: once the buffer has reached
// its high-water mark, BindTo must not allocate at all.
func TestSkeletonBindZeroAlloc(t *testing.T) {
	g := graphs.MustRandomRegular(10, 3, rand.New(rand.NewSource(5)))
	prob := mustProblem(t, g)
	ps, err := ParamSpecFromMaxCut(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := CompileSkeleton(context.Background(), ps, device.Tokyo20(), PresetIC.Options(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	params := qaoa.Params{Gamma: []float64{0.8, 0.2}, Beta: []float64{0.4, 0.1}}
	var buf BindBuffer
	if _, err := sk.BindTo(&buf, params); err != nil { // reach the high-water mark
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sk.BindTo(&buf, params); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BindTo allocates %.1f times per bind, want 0", allocs)
	}
}

// Satellite invariant: the whole pipeline is angle-independent. Two
// compiles differing only in their angle sets must agree on layouts, SWAP
// schedule, and the full gate structure — kinds and qubits gate for gate,
// with rotation phases as the only difference. This is the property the
// skeleton layer is built on.
func TestRoutingIsAngleIndependent(t *testing.T) {
	dev := device.Melbourne15()
	ctx := context.Background()
	for trial := int64(0); trial < 3; trial++ {
		g := graphs.ErdosRenyi(9, 0.4, rand.New(rand.NewSource(100+trial)))
		prob := mustProblem(t, g)
		a := qaoa.Params{Gamma: []float64{0.8, -0.3}, Beta: []float64{0.4, 0.9}}
		b := qaoa.Params{Gamma: []float64{2.31, 0.001}, Beta: []float64{-1.17, 0.55}}
		for _, preset := range Presets {
			seed := 50 + trial
			ra, err := CompileContext(ctx, prob, a, dev, preset.Options(rand.New(rand.NewSource(seed))))
			if err != nil {
				t.Fatalf("%v: %v", preset, err)
			}
			rb, err := CompileContext(ctx, prob, b, dev, preset.Options(rand.New(rand.NewSource(seed))))
			if err != nil {
				t.Fatalf("%v: %v", preset, err)
			}
			requireSameLayout(t, preset.String()+" initial", ra.Initial, rb.Initial)
			requireSameLayout(t, preset.String()+" final", ra.Final, rb.Final)
			if ra.SwapCount != rb.SwapCount || ra.Depth != rb.Depth || ra.GateCount != rb.GateCount {
				t.Fatalf("%v: metrics differ across angle sets: (%d,%d,%d) vs (%d,%d,%d)",
					preset, ra.SwapCount, ra.Depth, ra.GateCount, rb.SwapCount, rb.Depth, rb.GateCount)
			}
			requireSameStructure(t, preset.String()+" circuit", ra.Circuit, rb.Circuit)
			requireSameStructure(t, preset.String()+" native", ra.Native, rb.Native)
		}
	}
}

// requireSameStructure asserts two circuits are identical up to rotation
// phases: same length, and gate for gate the same kind and qubits.
func requireSameStructure(t *testing.T, label string, a, b *circuit.Circuit) {
	t.Helper()
	if len(a.Gates) != len(b.Gates) {
		t.Fatalf("%s: %d gates vs %d gates", label, len(a.Gates), len(b.Gates))
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Kind != gb.Kind || ga.Q0 != gb.Q0 || ga.Q1 != gb.Q1 {
			t.Fatalf("%s: gate %d is %v(%d,%d) vs %v(%d,%d)", label, i, ga.Kind, ga.Q0, ga.Q1, gb.Kind, gb.Q0, gb.Q1)
		}
	}
}

func mustSkeletonBench(b *testing.B, p int) (*Skeleton, *qaoa.Problem, qaoa.Params) {
	b.Helper()
	g := graphs.MustRandomRegular(12, 3, rand.New(rand.NewSource(17)))
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		b.Fatal(err)
	}
	ps, err := ParamSpecFromMaxCut(prob, p)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := CompileSkeleton(context.Background(), ps, device.Tokyo20(), PresetIC.Options(rand.New(rand.NewSource(17))))
	if err != nil {
		b.Fatal(err)
	}
	params := qaoa.Params{Gamma: make([]float64, p), Beta: make([]float64, p)}
	for l := 0; l < p; l++ {
		params.Gamma[l] = 0.8 / float64(l+1)
		params.Beta[l] = 0.4 / float64(l+1)
	}
	return sk, prob, params
}

// BenchmarkSkeletonBindTo measures the per-evaluation cost of the bind
// path; the CI gate pins its allocs/op at zero.
func BenchmarkSkeletonBindTo(b *testing.B) {
	sk, _, params := mustSkeletonBench(b, 2)
	var buf BindBuffer
	if _, err := sk.BindTo(&buf, params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.BindTo(&buf, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePerPoint is the work BindTo replaces: a full concrete
// compile per angle set, re-seeded every iteration so the router work
// counters stay deterministic.
func BenchmarkCompilePerPoint(b *testing.B) {
	_, prob, params := mustSkeletonBench(b, 2)
	dev := device.Tokyo20()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileContext(ctx, prob, params, dev, PresetIC.Options(rand.New(rand.NewSource(17)))); err != nil {
			b.Fatal(err)
		}
	}
}
