package compile

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/trace"
)

// compileTraced runs one fixed-seed compilation with a fresh tracer and
// returns the recorded events.
func compileTraced(t *testing.T, preset Preset, seed int64, trials int) ([]trace.Event, *Result) {
	t.Helper()
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(7)))
	prob := mustProblem(t, g)
	dev := device.Tokyo20()
	opts := preset.Options(rand.New(rand.NewSource(seed)))
	opts.RouterTrials = trials
	tr := trace.New()
	opts.Trace = tr
	res, err := Compile(prob, p1Params(0.5, 0.2), dev, opts)
	if err != nil {
		t.Fatalf("%v: %v", preset, err)
	}
	return tr.Events(), res
}

// Two fixed-seed runs must produce byte-identical JSONL once timestamps are
// stripped — the property the CI trace-determinism gate relies on.
func TestTraceDeterministicWithSeed(t *testing.T) {
	for _, preset := range []Preset{PresetIC, PresetIP, PresetNaive} {
		var streams [2][]byte
		for i := range streams {
			events, _ := compileTraced(t, preset, 42, 1)
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, events, true); err != nil {
				t.Fatal(err)
			}
			streams[i] = buf.Bytes()
		}
		if !bytes.Equal(streams[0], streams[1]) {
			t.Errorf("%v: stripped JSONL differs across identical fixed-seed runs", preset)
		}
	}
}

// The trace must open with meta, bracket every pass, and carry one placement
// event per logical qubit for QAIM plus a stitch per incremental layer.
func TestTraceStructureIC(t *testing.T) {
	events, res := compileTraced(t, PresetIC, 3, 1)
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	if events[0].Kind != trace.KindMeta {
		t.Fatalf("first event is %q, want meta", events[0].Kind)
	}
	m := events[0].Meta
	if m.Device != "ibmq_20_tokyo" || m.NQubits != 20 || m.NLogical != 8 {
		t.Errorf("meta = %+v", m)
	}
	if len(m.Coupling) == 0 {
		t.Error("meta carries no coupling edges")
	}
	counts := map[trace.Kind]int{}
	open := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
		switch e.Kind {
		case trace.KindPassBegin:
			open[e.Pass]++
		case trace.KindPassEnd:
			open[e.Pass]--
			if open[e.Pass] < 0 {
				t.Fatalf("pass %q ended before it began", e.Pass)
			}
		}
	}
	for pass, n := range open {
		if n != 0 {
			t.Errorf("pass %q left %d unclosed brackets", pass, n)
		}
	}
	if counts[trace.KindPlacement] != 8 {
		t.Errorf("%d placement events, want one per logical qubit (8)", counts[trace.KindPlacement])
	}
	if counts[trace.KindLayer] == 0 {
		t.Error("no layer-formation events for IC")
	}
	if counts[trace.KindLayer] != counts[trace.KindStitch] {
		t.Errorf("%d layer events but %d stitch events", counts[trace.KindLayer], counts[trace.KindStitch])
	}
	if counts[trace.KindSwap] != res.SwapCount {
		t.Errorf("%d swap events, result reports %d SWAPs", counts[trace.KindSwap], res.SwapCount)
	}
}

// Every SWAP event's before/after layouts must differ exactly at the swapped
// positions, and consecutive events must chain (the layout history replays).
func TestTraceSwapLayoutsChain(t *testing.T) {
	events, _ := compileTraced(t, PresetIC, 11, 1)
	var prev []int
	for _, e := range events {
		if e.Kind != trace.KindSwap {
			continue
		}
		s := e.Swap
		if len(s.Before) != len(s.After) {
			t.Fatalf("swap %d↔%d: layout lengths differ", s.P1, s.P2)
		}
		for q, p := range s.Before {
			want := p
			switch p {
			case s.P1:
				want = s.P2
			case s.P2:
				want = s.P1
			}
			if s.After[q] != want {
				t.Errorf("swap %d↔%d: logical %d went %d→%d, want %d", s.P1, s.P2, q, p, s.After[q], want)
			}
		}
		if prev != nil {
			// SWAPs within one routing call chain exactly; across incremental
			// layers the layout carries over unchanged, so they still chain.
			same := len(prev) == len(s.Before)
			if same {
				for i := range prev {
					if prev[i] != s.Before[i] {
						same = false
						break
					}
				}
			}
			if !same {
				t.Errorf("swap %d↔%d: before-layout does not chain from previous after-layout", s.P1, s.P2)
			}
		}
		prev = s.After
	}
}

// With stochastic router trials, tracing must not change the chosen result:
// attempts run untraced and only the winner is re-routed with tracing.
func TestTraceDoesNotPerturbRouterTrials(t *testing.T) {
	_, plain := compileTraced(t, PresetIC, 5, 4)
	events, traced := compileTraced(t, PresetIC, 5, 4)
	if plain.SwapCount != traced.SwapCount || plain.Depth != traced.Depth || plain.GateCount != traced.GateCount {
		t.Errorf("tracing changed the trials outcome: swaps %d vs %d, depth %d vs %d, gates %d vs %d",
			plain.SwapCount, traced.SwapCount, plain.Depth, traced.Depth, plain.GateCount, traced.GateCount)
	}
	swaps := 0
	for _, e := range events {
		if e.Kind == trace.KindSwap {
			swaps++
		}
	}
	if swaps != traced.SwapCount {
		t.Errorf("trace carries %d swap events, result has %d SWAPs", swaps, traced.SwapCount)
	}
}

// The chrome export of a real compilation must be valid JSON with events.
func TestTraceChromeExportFromCompilation(t *testing.T) {
	events, _ := compileTraced(t, PresetIC, 9, 1)
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= len(events) {
		// metadata events come on top of the converted stream
		t.Errorf("chrome export has %d events for %d trace events", len(doc.TraceEvents), len(events))
	}
}

// The fallback ladder must leave its path in the trace: a VIC request on an
// uncalibrated device records the skip and the final effective preset.
func TestTraceFallbackLadder(t *testing.T) {
	g := graphs.MustRandomRegular(8, 3, rand.New(rand.NewSource(7)))
	prob := mustProblem(t, g)
	spec, err := SpecFromMaxCut(prob, p1Params(0.5, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	res, err := CompileSpecResilient(context.Background(), spec, device.Tokyo20(), PresetVIC,
		FallbackOptions{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback.Degraded {
		t.Fatal("VIC on uncalibrated tokyo should degrade")
	}
	var fails, finals int
	var finalPreset string
	for _, e := range tr.Events() {
		if e.Kind != trace.KindFallback {
			continue
		}
		if e.Fallback.Final {
			finals++
			finalPreset = e.Fallback.Preset
		} else {
			fails++
		}
	}
	if fails == 0 {
		t.Error("no failed-attempt fallback events for the VIC skip")
	}
	if finals != 1 {
		t.Errorf("%d final fallback events, want exactly 1", finals)
	}
	if finalPreset != res.Fallback.Effective.String() {
		t.Errorf("final fallback event names %q, result says %q", finalPreset, res.Fallback.Effective)
	}
}
