package compile

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/qaoa"
	"repro/internal/trace"
)

// Attempt records one try of the degradation ladder: which preset ran, the
// zero-based retry index within its rung, and the error it failed with.
type Attempt struct {
	Preset Preset
	Retry  int
	Err    string
}

// FallbackInfo reports how CompileResilient arrived at its result.
type FallbackInfo struct {
	// Requested is the preset the caller asked for; Effective is the preset
	// that produced the returned circuit.
	Requested, Effective Preset
	// Degraded is true when Effective differs from Requested.
	Degraded bool
	// Reason is the error that forced the first step down the ladder
	// (empty when not degraded).
	Reason string
	// Attempts lists every failed try before the success, in order.
	Attempts []Attempt
}

// FallbackOptions tunes the degradation ladder of CompileResilient.
type FallbackOptions struct {
	// Retries is the number of extra attempts per rung after the first,
	// each on a fresh deterministic seed (default 1; negative disables
	// retries).
	Retries int
	// Backoff is the pause before a retry, doubling per retry within a rung
	// and honoring ctx (default 5ms; the first attempt of each rung never
	// waits).
	Backoff time.Duration
	// AttemptTimeout bounds each individual attempt (0 = only the caller's
	// ctx bounds it). When an attempt times out but the caller's ctx is
	// still live, the ladder treats it like any other failure and moves on.
	AttemptTimeout time.Duration
	// Seed derives the per-attempt rngs, keeping the whole ladder
	// reproducible (default 1).
	Seed int64
	// PackingLimit, Measure, Optimize, Hook and Obs carry through to the
	// underlying Options of every attempt. Obs additionally receives the
	// ladder's own counters: compile/fallback_attempts (failed tries before
	// the success), compile/fallback_degraded (ladders that stepped down)
	// and compile/fallback_depth_total (rungs descended).
	PackingLimit int
	Measure      bool
	Optimize     bool
	Hook         Hook
	Obs          *obsv.Collector
	// Trace carries through to every attempt's Options and additionally
	// receives one fallback event per failed attempt plus a final event for
	// the attempt that produced the returned circuit, so the ladder's path
	// is readable straight off the stream.
	Trace *trace.Tracer
}

func (fo FallbackOptions) withDefaults() FallbackOptions {
	if fo.Retries == 0 {
		fo.Retries = 1
	}
	if fo.Retries < 0 {
		fo.Retries = 0
	}
	if fo.Backoff == 0 {
		fo.Backoff = 5 * time.Millisecond
	}
	if fo.Seed == 0 {
		fo.Seed = 1
	}
	return fo
}

// Ladder returns the preset fallback sequence starting at p: each step
// trades compilation quality for robustness, ending at NAIVE, which needs
// neither calibration nor clever layer formation. The variation-aware and
// incremental strategies degrade along the paper's own quality ordering
// VIC → IC → IP → NAIVE; the pure mapping presets fall straight to NAIVE.
func Ladder(p Preset) []Preset {
	switch p {
	case PresetVIC:
		return []Preset{PresetVIC, PresetIC, PresetIP, PresetNaive}
	case PresetIC:
		return []Preset{PresetIC, PresetIP, PresetNaive}
	case PresetIP:
		return []Preset{PresetIP, PresetNaive}
	case PresetQAIM:
		return []Preset{PresetQAIM, PresetNaive}
	case PresetGreedyV:
		return []Preset{PresetGreedyV, PresetNaive}
	default:
		return []Preset{PresetNaive}
	}
}

// LadderError reports that every rung of the degradation ladder failed.
type LadderError struct {
	Requested Preset
	Attempts  []Attempt
}

func (e *LadderError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compile: all fallbacks for %v failed (%d attempts):", e.Requested, len(e.Attempts))
	for _, a := range e.Attempts {
		fmt.Fprintf(&b, " [%v#%d: %s]", a.Preset, a.Retry, a.Err)
	}
	return b.String()
}

// CompileResilient compiles prob with the requested preset, surviving the
// failure modes of degraded devices: each rung of the preset's fallback
// ladder is attempted with bounded retries (fresh seed per retry, backoff
// between them), and on persistent failure the next rung runs. The returned
// Result always carries a FallbackInfo recording the effective preset and
// every failed attempt. Context deadline/cancellation aborts the whole
// ladder immediately; unrecoverable shape errors (problem larger than the
// usable device) do too, since no preset can fix them.
func CompileResilient(ctx context.Context, prob *qaoa.Problem, params qaoa.Params, dev *device.Device, preset Preset, fo FallbackOptions) (*Result, error) {
	spec, err := SpecFromMaxCut(prob, params)
	if err != nil {
		return nil, err
	}
	return CompileSpecResilient(ctx, spec, dev, preset, fo)
}

// CompileSpecResilient is CompileResilient for arbitrary commuting-cost
// specs.
func CompileSpecResilient(ctx context.Context, spec Spec, dev *device.Device, preset Preset, fo FallbackOptions) (*Result, error) {
	fo = fo.withDefaults()
	res, fb, err := runLadder(ctx, dev, preset, fo,
		func(ctx context.Context, p Preset, rung, retry int) (*Result, error) {
			return CompileSpecContext(ctx, spec, dev, attemptOptions(p, rung, retry, fo))
		})
	if err != nil {
		return nil, err
	}
	res.Fallback = fb
	return res, nil
}

// CompileSkeletonResilient is CompileSkeleton behind the same graceful-
// degradation ladder CompileSpecResilient runs: each rung compiles a
// skeleton with that rung's preset and per-attempt seed, so the returned
// skeleton binds exactly what CompileSpecResilient would have produced
// under the same fallback path. The skeleton's Fallback (and that of
// every Result it binds) records the ladder's journey.
func CompileSkeletonResilient(ctx context.Context, ps ParamSpec, dev *device.Device, preset Preset, fo FallbackOptions) (*Skeleton, error) {
	if fo.Optimize {
		return nil, ErrSkeletonOptimize
	}
	fo = fo.withDefaults()
	sk, fb, err := runLadder(ctx, dev, preset, fo,
		func(ctx context.Context, p Preset, rung, retry int) (*Skeleton, error) {
			return CompileSkeleton(ctx, ps, dev, attemptOptions(p, rung, retry, fo))
		})
	if err != nil {
		return nil, err
	}
	sk.fallback = fb
	return sk, nil
}

// runLadder walks preset's degradation ladder, running attempt with
// bounded retries per rung, and returns the first success together with
// the FallbackInfo describing the path to it. fo must already carry its
// defaults. It is the shared engine of CompileSpecResilient and
// CompileSkeletonResilient — one set of retry/abort/observability
// semantics, whatever artifact an attempt produces.
func runLadder[T any](ctx context.Context, dev *device.Device, preset Preset, fo FallbackOptions,
	attempt func(ctx context.Context, p Preset, rung, retry int) (T, error)) (T, *FallbackInfo, error) {
	var zero T
	var attempts []Attempt
	var firstFailure string

	for rung, p := range Ladder(preset) {
		if p == PresetVIC && dev.Calib == nil {
			// VIC cannot run without calibration; record why and step down.
			attempts = append(attempts, Attempt{Preset: p, Err: fmt.Sprintf("vic requires device calibration on %s", dev.Name)})
			if firstFailure == "" {
				firstFailure = attempts[len(attempts)-1].Err
			}
			if fo.Trace.Enabled() {
				fo.Trace.Fallback(trace.FallbackInfo{Preset: p.String(), Err: attempts[len(attempts)-1].Err})
			}
			continue
		}
		for retry := 0; retry <= fo.Retries; retry++ {
			if retry > 0 {
				if err := sleepCtx(ctx, fo.Backoff<<uint(retry-1)); err != nil {
					return zero, nil, fmt.Errorf("compile: fallback aborted: %w", err)
				}
			}
			res, err := runAttempt(ctx, fo.AttemptTimeout, p, rung, retry, attempt)
			if err == nil {
				fb := &FallbackInfo{
					Requested: preset,
					Effective: p,
					Degraded:  p != preset,
					Reason:    firstFailure,
					Attempts:  attempts,
				}
				if fo.Obs.Enabled() {
					fo.Obs.Inc(obsv.CntCompileResilient)
					fo.Obs.Add(obsv.CntFallbackAttempts, int64(len(attempts)))
					fo.Obs.Add(obsv.CntFallbackDepthTotal, int64(rung))
					if fb.Degraded {
						fo.Obs.Inc(obsv.CntFallbackDegraded)
					}
				}
				if fo.Trace.Enabled() {
					fo.Trace.Fallback(trace.FallbackInfo{Preset: p.String(), Retry: retry, Final: true})
				}
				return res, fb, nil
			}
			attempts = append(attempts, Attempt{Preset: p, Retry: retry, Err: err.Error()})
			if firstFailure == "" {
				firstFailure = err.Error()
			}
			if fo.Trace.Enabled() {
				fo.Trace.Fallback(trace.FallbackInfo{Preset: p.String(), Retry: retry, Err: err.Error()})
			}
			if ctx.Err() != nil {
				// The caller's deadline is spent; degrading further would
				// only burn more of nothing.
				return zero, nil, fmt.Errorf("compile: fallback aborted after %d attempts: %w", len(attempts), err)
			}
			var insufficient *InsufficientQubitsError
			if errors.As(err, &insufficient) {
				// No preset can conjure missing qubits.
				return zero, nil, err
			}
		}
	}
	return zero, nil, &LadderError{Requested: preset, Attempts: attempts}
}

// runAttempt runs a single ladder attempt under its optional per-attempt
// timeout.
func runAttempt[T any](ctx context.Context, timeout time.Duration, p Preset, rung, retry int,
	attempt func(ctx context.Context, p Preset, rung, retry int) (T, error)) (T, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return attempt(ctx, p, rung, retry)
}

// attemptOptions derives the per-attempt compile options: a fresh
// deterministic rng per (rung, retry) plus the carried-through fallback
// options.
func attemptOptions(p Preset, rung, retry int, fo FallbackOptions) Options {
	rng := rand.New(rand.NewSource(fo.Seed + int64(rung)*1_000_033 + int64(retry)*7_919))
	opts := p.Options(rng)
	opts.PackingLimit = fo.PackingLimit
	opts.Measure = fo.Measure
	opts.Optimize = fo.Optimize
	opts.Hook = fo.Hook
	opts.Obs = fo.Obs
	opts.Trace = fo.Trace
	return opts
}

// sleepCtx pauses for d unless ctx finishes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
