package compile

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

func TestSpecFromCircuitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphs.ErdosRenyi(8, 0.4, rng)
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	params := qaoa.Params{Gamma: []float64{0.5, 0.8}, Beta: []float64{0.2, 0.4}}
	c, err := qaoa.BuildCircuit(prob, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, hasMeasure, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if hasMeasure {
		t.Error("phantom measurements detected")
	}
	if spec.N != 8 || len(spec.Levels) != 2 {
		t.Fatalf("spec shape N=%d levels=%d", spec.N, len(spec.Levels))
	}
	for l, level := range spec.Levels {
		if len(level.ZZ) != g.M() {
			t.Errorf("level %d has %d ZZ terms, want %d", l, len(level.ZZ), g.M())
		}
		if level.Local != nil {
			t.Errorf("level %d has phantom local terms", l)
		}
		if math.Abs(level.MixerBeta-params.Beta[l]) > 1e-12 {
			t.Errorf("level %d mixer β = %v, want %v", l, level.MixerBeta, params.Beta[l])
		}
		for _, term := range level.ZZ {
			if math.Abs(term.Theta+params.Gamma[l]) > 1e-12 {
				t.Errorf("level %d term angle %v, want %v", l, term.Theta, -params.Gamma[l])
			}
		}
	}
}

func TestSpecFromCircuitWithMeasure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graphs.ErdosRenyi(6, 0.5, rng)
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	c, err := qaoa.BuildCircuit(prob, p1Params(0.5, 0.2), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.MeasureAll()
	_, hasMeasure, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMeasure {
		t.Error("measurements not detected")
	}
}

func TestSpecFromCircuitWithLocals(t *testing.T) {
	// H prefix, mixed diagonal block (ZZ + RZ + Z), mixer.
	c := circuit.New(3).Append(
		circuit.NewH(0), circuit.NewH(1), circuit.NewH(2),
		circuit.NewCPhase(0, 1, 0.4),
		circuit.NewRZ(2, 0.7),
		circuit.NewZ(0),
		circuit.NewU1(2, 0.1),
		circuit.NewRX(0, 0.6), circuit.NewRX(1, 0.6), circuit.NewRX(2, 0.6),
	)
	spec, _, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	level := spec.Levels[0]
	if len(level.ZZ) != 1 || level.Local == nil {
		t.Fatalf("level = %+v", level)
	}
	if math.Abs(level.Local[2]-0.8) > 1e-12 {
		t.Errorf("local[2] = %v, want 0.8", level.Local[2])
	}
	if math.Abs(level.Local[0]-math.Pi) > 1e-12 {
		t.Errorf("local[0] = %v, want π", level.Local[0])
	}
	if math.Abs(level.MixerBeta-0.3) > 1e-12 {
		t.Errorf("β = %v, want 0.3", level.MixerBeta)
	}
}

func TestSpecFromCircuitRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"missing H", circuit.New(2).Append(
			circuit.NewH(0),
			circuit.NewCPhase(0, 1, 0.3),
			circuit.NewRX(0, 0.4), circuit.NewRX(1, 0.4))},
		{"duplicate H", circuit.New(2).Append(
			circuit.NewH(0), circuit.NewH(0))},
		{"no level", circuit.New(2).Append(
			circuit.NewH(0), circuit.NewH(1))},
		{"mixer angle mismatch", circuit.New(2).Append(
			circuit.NewH(0), circuit.NewH(1),
			circuit.NewCPhase(0, 1, 0.3),
			circuit.NewRX(0, 0.4), circuit.NewRX(1, 0.5))},
		{"partial mixer", circuit.New(2).Append(
			circuit.NewH(0), circuit.NewH(1),
			circuit.NewCPhase(0, 1, 0.3),
			circuit.NewRX(0, 0.4))},
		{"gate after measure", func() *circuit.Circuit {
			c := circuit.New(2).Append(
				circuit.NewH(0), circuit.NewH(1),
				circuit.NewCPhase(0, 1, 0.3),
				circuit.NewRX(0, 0.4), circuit.NewRX(1, 0.4),
				circuit.NewMeasure(0), circuit.NewH(1))
			return c
		}()},
		{"stray CNOT in cost block", circuit.New(2).Append(
			circuit.NewH(0), circuit.NewH(1),
			circuit.NewCNOT(0, 1),
			circuit.NewRX(0, 0.4), circuit.NewRX(1, 0.4))},
	}
	for _, tc := range cases {
		if _, _, err := SpecFromCircuit(tc.c); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// CompileCircuit on an externally-built circuit must reproduce the exact
// QAOA semantics through the incremental pipeline.
func TestCompileCircuitEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphs.ErdosRenyi(7, 0.5, rng)
	prob := mustProblem(t, g)
	gamma, beta := 0.9, 0.35
	logical, err := qaoa.BuildCircuit(prob, p1Params(gamma, beta), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the commuting cost gates to mimic a foreign tool's ordering.
	costStart, costEnd := 7, 7+g.M()
	rng.Shuffle(g.M(), func(i, j int) {
		logical.Gates[costStart+i], logical.Gates[costStart+j] =
			logical.Gates[costStart+j], logical.Gates[costStart+i]
	})
	_ = costEnd

	dev := device.Melbourne15()
	res, err := CompileCircuit(logical, dev, PresetIC.Options(rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.VerifyCompliant(res.Circuit); err != nil {
		t.Error(err)
	}
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)
	got := sim.NewState(res.Circuit.NQubits).Run(res.Circuit).ExpectationDiagonal(func(y uint64) float64 {
		return prob.Cost(res.ExtractLogical(y))
	})
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("compiled ⟨C⟩ = %v, want %v", got, want)
	}
}
