package compile

import (
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/router"
)

// ReverseTraversalMapping implements the reverse-traversal initial-mapping
// refinement of Li, Ding & Xie (ASPLOS'19), which the paper discusses as
// related work (§III "Initial Mapping"): starting from a random mapping,
// the circuit and its reverse are routed alternately, each pass's final
// layout seeding the next pass's initial layout. Because the reverse of a
// quantum circuit undoes it, the final layout of a reverse pass is a good
// initial layout for the forward circuit. A few iterations (the paper
// quotes 3) converge at the cost of the repeated compilations.
//
// Only the two-qubit cost structure matters for routing, so the traversal
// routes the spec's ZZ terms in their given order.
func ReverseTraversalMapping(spec Spec, dev *device.Device, iterations int, o Options) (*router.Layout, error) {
	if iterations <= 0 {
		iterations = 3
	}
	forward := circuit.New(spec.N)
	for _, level := range spec.Levels {
		for _, t := range level.ZZ {
			forward.Append(circuit.NewCPhase(t.U, t.V, t.Theta))
		}
	}
	reverse := circuit.New(spec.N)
	for i := len(forward.Gates) - 1; i >= 0; i-- {
		reverse.Append(forward.Gates[i])
	}

	current, err := RandomMapping(spec.N, dev, o.Rng)
	if err != nil {
		return nil, err
	}
	r := router.New(dev)
	r.LookaheadWeight = o.LookaheadWeight
	for it := 0; it < iterations; it++ {
		fwd, err := r.Route(forward, current)
		if err != nil {
			return nil, err
		}
		rev, err := r.Route(reverse, fwd.Final)
		if err != nil {
			return nil, err
		}
		current = rev.Final
	}
	return current, nil
}
