package compile

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/qaoa"
	"repro/internal/router"
	"repro/internal/trace"
)

// PanicError wraps a panic recovered at the compile boundary. Pass bugs and
// device-model panics (e.g. a calibration query on a severed edge) surface
// as ordinary errors instead of crashing the caller; Value holds the
// original panic payload so typed panics (like *device.NotCoupledError)
// remain inspectable via errors.As on the Unwrap chain.
type PanicError struct {
	Stage string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("compile: panic in %s pass: %v", e.Stage, e.Value)
}

// Unwrap exposes a panic payload that was itself an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Result is a compiled QAOA circuit with its quality metrics.
type Result struct {
	// Circuit is the hardware-compliant physical circuit over the device
	// register, in high-level gates (H/CPhase/RZ/RX/Swap/Measure).
	Circuit *circuit.Circuit
	// Native is Circuit decomposed into the IBM basis {U1,U2,U3,CNOT}; the
	// depth and gate-count metrics are measured on it, as the paper does.
	Native *circuit.Circuit
	// Initial and Final are the logical-to-physical layouts before and
	// after SWAP insertion. Final tells which physical qubit to read out
	// for each logical qubit.
	Initial, Final *router.Layout
	// SwapCount is the number of inserted SWAP gates.
	SwapCount int
	// Depth and GateCount are measured on Native.
	Depth, GateCount int
	// CompileTime is the total wall-clock compilation duration;
	// MapTime, OrderTime and RouteTime break it down into the initial
	// mapping pass, the gate-ordering/layer-formation pass, and the
	// backend SWAP-insertion routing. The backend share is what a
	// conventional compiler's runtime corresponds to (see EXPERIMENTS.md
	// on compile-time normalization).
	CompileTime time.Duration
	MapTime     time.Duration
	OrderTime   time.Duration
	RouteTime   time.Duration
	// Fallback records how the graceful-degradation ladder arrived at this
	// result (requested vs effective preset, retries, reasons). It is nil
	// for direct Compile/CompileSpec calls, and always set by
	// CompileResilient — even on the happy path, where Degraded is false.
	Fallback *FallbackInfo
}

// ExtractLogical converts a measured physical bitstring y (bit p = physical
// qubit p) into the logical bitstring (bit v = vertex v) using the final
// layout — the read-out rule for compiled-circuit samples.
func (r *Result) ExtractLogical(y uint64) uint64 {
	var x uint64
	for q := 0; q < r.Final.NLogical(); q++ {
		if y&(1<<uint(r.Final.Phys(q))) != 0 {
			x |= 1 << uint(q)
		}
	}
	return x
}

// Compile lowers the QAOA MaxCut circuit for prob with the given angles
// onto dev using the configured methodology, and returns the compiled
// circuit with metrics. It is the MaxCut entry point; CompileSpec accepts
// arbitrary commuting cost Hamiltonians.
func Compile(prob *qaoa.Problem, params qaoa.Params, dev *device.Device, opts Options) (*Result, error) {
	return CompileContext(context.Background(), prob, params, dev, opts)
}

// CompileContext is Compile honoring a deadline/cancellation: the mapping,
// ordering and routing passes check ctx and return a ctx-wrapped error as
// soon as it is done.
func CompileContext(ctx context.Context, prob *qaoa.Problem, params qaoa.Params, dev *device.Device, opts Options) (*Result, error) {
	spec, err := SpecFromMaxCut(prob, params)
	if err != nil {
		return nil, err
	}
	return CompileSpecContext(ctx, spec, dev, opts)
}

// CompileSpec lowers an arbitrary commuting-cost QAOA circuit onto dev,
// tying together mapping (QAIM/GreedyV/random), term ordering (random/IP)
// and routing (whole-circuit or incremental).
func CompileSpec(spec Spec, dev *device.Device, opts Options) (*Result, error) {
	return CompileSpecContext(context.Background(), spec, dev, opts)
}

// CompileSpecContext is CompileSpec honoring ctx. It is also the recover
// boundary of the pipeline: a panic in any pass (or injected through
// Options.Hook) is converted into a *PanicError instead of escaping to the
// caller, so one bad compilation cannot take down a batch or a service.
func CompileSpecContext(ctx context.Context, spec Spec, dev *device.Device, opts Options) (res *Result, err error) {
	stage := StageMap
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Stage: stage, Value: r}
		}
	}()
	o := opts.withDefaults()
	total := o.Obs.StartSpan(obsv.SpanCompileTotal)
	defer total.End()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.N > dev.NQubits() {
		return nil, &InsufficientQubitsError{Device: dev.Name, Need: spec.N, Usable: dev.NQubits(), Total: dev.NQubits()}
	}
	if o.Strategy == IncrementalVariation && dev.Calib == nil {
		return nil, fmt.Errorf("compile: VIC requires device calibration on %s", dev.Name)
	}
	if err := checkpoint(ctx, StageMap, o.Hook); err != nil {
		return nil, err
	}
	traceStart := o.Trace.Len()
	if o.Trace.Enabled() {
		o.Trace.Meta(traceMeta(ctx, spec, dev, o))
	}
	start := time.Now() //lint:allow determinism: measured pass span, stripped by the gates

	o.Trace.BeginPass(StageMap)
	var initial *router.Layout
	if o.Mapper == MapReverse {
		initial, err = ReverseTraversalMapping(spec, dev, o.ReverseIterations, o)
	} else {
		initial, err = buildMapping(spec.InteractionGraph(), dev, o)
	}
	o.Trace.EndPass(StageMap)
	if err != nil {
		return nil, err
	}
	mapTime := time.Since(start) //lint:allow determinism: measured pass span, stripped by the gates
	o.Obs.RecordSpan(obsv.SpanCompileMap, mapTime)

	switch o.Strategy {
	case WholeRandom, WholeIP, WholeColor:
		stage = StageOrder
		res, err = compileWhole(ctx, spec, dev, initial, o, &stage)
	case Incremental, IncrementalVariation:
		stage = StageRoute
		res, err = compileIncremental(ctx, spec, dev, initial, o)
	default:
		return nil, fmt.Errorf("compile: unknown strategy %v", o.Strategy)
	}
	if err != nil {
		return nil, err
	}

	if o.Optimize {
		res.Circuit = circuit.Peephole(res.Circuit)
	}
	res.Native = res.Circuit.Decompose(circuit.BasisIBM)
	if o.Optimize {
		res.Native = circuit.Peephole(res.Native)
	}
	res.Depth = res.Native.Depth()
	res.GateCount = res.Native.GateCount()
	res.CompileTime = time.Since(start) //lint:allow determinism: measured pass span, stripped by the gates
	res.MapTime = mapTime
	if o.Obs.Enabled() {
		o.Obs.RecordSpan(obsv.SpanCompileOrder, res.OrderTime)
		o.Obs.RecordSpan(obsv.SpanCompileRoute, res.RouteTime)
		o.Obs.Inc(obsv.CntCompilations)
		o.Obs.Add(obsv.CntCompileSwaps, int64(res.SwapCount))
		o.Obs.Add(obsv.CntCompileGates, int64(res.GateCount))
		o.Obs.Add(obsv.CntCompileDepthTotal, int64(res.Depth))
		if o.Trace.Enabled() {
			o.Obs.Add(obsv.CntTraceEvents, int64(o.Trace.Len()-traceStart))
		}
	}
	return res, nil
}

// traceMeta describes the compilation for the trace stream, including the
// coupling graph so the exporters are self-contained. A request ID carried
// by ctx (service compilations) is stamped into the meta event, joining the
// trace to the request's log line and inspector record.
func traceMeta(ctx context.Context, spec Spec, dev *device.Device, o Options) trace.MetaInfo {
	edges := dev.Coupling.Edges()
	coupling := make([][2]int, len(edges))
	for i, e := range edges {
		coupling[i] = [2]int{e.U, e.V}
	}
	return trace.MetaInfo{
		Device:    dev.Name,
		NQubits:   dev.NQubits(),
		Coupling:  coupling,
		NLogical:  spec.N,
		Mapper:    o.Mapper.String(),
		Strategy:  o.Strategy.String(),
		RequestID: obsv.RequestID(ctx),
	}
}

// checkpoint enforces ctx and fires the pass hook at a stage boundary.
func checkpoint(ctx context.Context, stage string, hook Hook) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("compile: %s pass: %w", stage, err)
	}
	if hook != nil {
		if err := hook(stage); err != nil {
			return fmt.Errorf("compile: %s pass: %w", stage, err)
		}
		// A latency-injecting hook may outlive the deadline; re-check.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("compile: %s pass: %w", stage, err)
		}
	}
	return nil
}

// emitLocals appends the level's RZ phases mapped through the layout.
func emitLocals(out *circuit.Circuit, level LevelSpec, phys func(int) int) {
	if level.Local == nil {
		return
	}
	for q, theta := range level.Local {
		if theta != 0 {
			out.Append(circuit.NewRZ(phys(q), theta))
		}
	}
}

// compileWhole builds the complete logical circuit (with the strategy's
// ZZ-term order) and routes it in a single backend call — the NAIVE/QAIM/IP
// flow of Fig. 2. stage tracks the running pass for panic attribution.
func compileWhole(ctx context.Context, spec Spec, dev *device.Device, initial *router.Layout, o Options, stage *string) (*Result, error) {
	if err := checkpoint(ctx, StageOrder, o.Hook); err != nil {
		return nil, err
	}
	o.Trace.BeginPass(StageOrder)
	orderStart := time.Now() //lint:allow determinism: measured pass span, stripped by the gates
	logical := circuit.New(spec.N)
	for q := 0; q < spec.N; q++ {
		logical.Append(circuit.NewH(q))
	}
	for _, level := range spec.Levels {
		var ordered []ZZTerm
		switch o.Strategy {
		case WholeRandom:
			ordered = RandomTermOrder(level.ZZ, o.Rng)
		case WholeIP:
			ordered = flattenTermLayers(IPTermLayers(spec.N, level.ZZ, o.Rng, o.PackingLimit))
		case WholeColor:
			var err error
			ordered, err = ColorTermOrder(spec.N, level.ZZ)
			if err != nil {
				return nil, err
			}
		}
		emitLocals(logical, level, func(q int) int { return q })
		for _, t := range ordered {
			logical.Append(circuit.NewCPhase(t.U, t.V, t.Theta))
		}
		for q := 0; q < spec.N; q++ {
			logical.Append(circuit.NewRX(q, 2*level.MixerBeta))
		}
	}
	if o.Measure {
		logical.MeasureAll()
	}
	orderTime := time.Since(orderStart) //lint:allow determinism: measured pass span, stripped by the gates
	o.Trace.EndPass(StageOrder)

	*stage = StageRoute
	if err := checkpoint(ctx, StageRoute, o.Hook); err != nil {
		return nil, err
	}
	r := router.New(dev)
	r.LookaheadWeight = o.LookaheadWeight
	r.Trials, r.Rng = o.RouterTrials, o.Rng
	r.Obs = o.Obs
	r.Trace = o.Trace
	o.Trace.BeginPass(StageRoute)
	routeStart := time.Now() //lint:allow determinism: measured pass span, stripped by the gates
	routed, err := r.RouteContext(ctx, logical, initial)
	o.Trace.EndPass(StageRoute)
	if err != nil {
		return nil, err
	}
	return &Result{
		Circuit:   routed.Circuit,
		Initial:   routed.Initial,
		Final:     routed.Final,
		SwapCount: routed.SwapCount,
		OrderTime: orderTime,
		RouteTime: time.Since(routeStart), //lint:allow determinism: measured pass span, stripped by the gates
	}, nil
}

// compileIncremental is the IC/VIC flow of Fig. 2: ZZ layers are formed
// one at a time from the terms whose endpoints are closest under the
// current layout, each layer is routed as a partial circuit, and the
// partial circuits are stitched. VIC differs only in the distance matrix
// (reliability-weighted) handed to layer formation and routing.
func compileIncremental(ctx context.Context, spec Spec, dev *device.Device, initial *router.Layout, o Options) (*Result, error) {
	dist := dev.HopDistances()
	if o.Strategy == IncrementalVariation {
		dist = dev.ReliabilityDistances()
	}
	r := &router.Router{
		Dev: dev, Dist: dist, LookaheadWeight: o.LookaheadWeight,
		Trials: o.RouterTrials, Rng: o.Rng, Obs: o.Obs, Trace: o.Trace,
	}

	n := spec.N
	out := circuit.New(dev.NQubits())
	layout := initial.Clone()
	swaps := 0
	layerIdx := 0
	var orderTime, routeTime time.Duration

	// Initial H layer, mapped through the initial layout.
	for q := 0; q < n; q++ {
		out.Append(circuit.NewH(layout.Phys(q)))
	}

	// Layer-formation scratch, reused across every pack of the compile:
	// the occupancy flags, the packed-layer buffer, and the single-layer
	// partial circuit (the router copies what it needs out of it).
	occupied := make([]bool, n)
	var layerBuf []ZZTerm
	partial := circuit.New(n)
	for li, level := range spec.Levels {
		emitLocals(out, level, layout.Phys)
		remaining := append([]ZZTerm(nil), level.ZZ...)
		for len(remaining) > 0 {
			if err := checkpoint(ctx, StageRoute, o.Hook); err != nil {
				return nil, err
			}
			o.Trace.BeginPass(StageOrder)
			orderStart := time.Now() //lint:allow determinism: measured pass span, stripped by the gates
			layer, rest := nextIncrementalLayer(remaining, layout, dist, o, occupied, layerBuf)
			layerBuf = layer // keep the high-water scratch for the next pack
			// Route the single-layer partial circuit from the live layout.
			partial.Gates = partial.Gates[:0]
			for _, t := range layer {
				partial.Append(circuit.NewCPhase(t.U, t.V, t.Theta))
			}
			orderTime += time.Since(orderStart) //lint:allow determinism: measured pass span, stripped by the gates
			o.Trace.EndPass(StageOrder)
			if o.Trace.Enabled() {
				o.Trace.Layer(traceLayer(layerIdx, li, layer, rest, layout, dist))
			}
			o.Trace.BeginPass(StageRoute)
			routeStart := time.Now() //lint:allow determinism: measured pass span, stripped by the gates
			routed, err := r.RouteContext(ctx, partial, layout)
			if err != nil {
				o.Trace.EndPass(StageRoute)
				return nil, err
			}
			routeTime += time.Since(routeStart) //lint:allow determinism: measured pass span, stripped by the gates
			o.Trace.EndPass(StageRoute)
			stitch := o.Obs.StartSpan(obsv.SpanCompileStitch)
			out.AppendCircuit(routed.Circuit)
			stitch.End()
			o.Obs.Inc(obsv.CntCompileLayers)
			if o.Trace.Enabled() {
				o.Trace.Stitch(trace.StitchInfo{
					Layer: layerIdx,
					Gates: len(routed.Circuit.Gates),
					Swaps: routed.SwapCount,
				})
			}
			layerIdx++
			layout = routed.Final
			swaps += routed.SwapCount
			remaining = rest
		}
		// Mixer layer under the current layout.
		for q := 0; q < n; q++ {
			out.Append(circuit.NewRX(layout.Phys(q), 2*level.MixerBeta))
		}
	}
	if o.Measure {
		for q := 0; q < n; q++ {
			out.Append(circuit.NewMeasure(layout.Phys(q)))
		}
	}
	return &Result{
		Circuit:   out,
		Initial:   initial,
		Final:     layout,
		SwapCount: swaps,
		OrderTime: orderTime,
		RouteTime: routeTime,
	}, nil
}

// traceLayer snapshots one incremental layer-formation decision: the
// selected terms with the live distances that ranked them, and how much
// work was deferred.
func traceLayer(index, level int, layer, rest []ZZTerm, layout *router.Layout, dist *graphs.DistanceMatrix) trace.LayerInfo {
	terms := make([]trace.TermInfo, len(layer))
	for i, t := range layer {
		pu, pv := layout.Phys(t.U), layout.Phys(t.V)
		terms[i] = trace.TermInfo{U: t.U, V: t.V, PU: pu, PV: pv, Dist: dist.Dist(pu, pv)}
	}
	return trace.LayerInfo{Index: index, Level: level, Terms: terms, Deferred: len(rest)}
}

// nextIncrementalLayer sorts the remaining ZZ terms by the current physical
// distance of their endpoints (ascending, ties random) and packs one layer
// greedily. The layer lands in layerBuf's storage and the deferred terms are
// compacted into remaining's own storage (safe: the write cursor never
// passes the read cursor), so the packing loop allocates nothing once the
// caller's scratch reaches its high-water mark. occupied is caller-owned
// per-logical-qubit scratch, handed back all-false.
func nextIncrementalLayer(remaining []ZZTerm, layout *router.Layout, dist *graphs.DistanceMatrix, o Options, occupied []bool, layerBuf []ZZTerm) (layer, rest []ZZTerm) {
	o.Rng.Shuffle(len(remaining), func(i, j int) {
		remaining[i], remaining[j] = remaining[j], remaining[i]
	})
	sort.SliceStable(remaining, func(a, b int) bool {
		da := dist.Dist(layout.Phys(remaining[a].U), layout.Phys(remaining[a].V))
		db := dist.Dist(layout.Phys(remaining[b].U), layout.Phys(remaining[b].V))
		return da < db
	})
	layer = layerBuf[:0]
	rest = remaining[:0]
	for _, t := range remaining {
		if (o.PackingLimit > 0 && len(layer) >= o.PackingLimit) ||
			occupied[t.U] || occupied[t.V] {
			rest = append(rest, t)
			continue
		}
		layer = append(layer, t)
		occupied[t.U], occupied[t.V] = true, true
	}
	for _, t := range layer {
		occupied[t.U], occupied[t.V] = false, false
	}
	return layer, rest
}
