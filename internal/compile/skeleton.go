package compile

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/qaoa"
	"repro/internal/router"
)

// This file is the parameterized-compilation layer: a QAOA circuit's
// structure is fixed per (problem, device, preset, seed) — across the
// hundreds of optimizer evaluations and sweep points only the angles
// (γ, β) change, and every pass of the pipeline (mapping, layer
// formation, routing, stitching, decomposition) is provably
// angle-independent (see TestRoutingIsAngleIndependent). CompileSkeleton
// therefore pays the full pipeline once, recording where each rotation
// angle lands in the routed circuit, and Skeleton.Bind materializes a
// concrete Result for any angle set by writing phases into a preallocated
// gate buffer — zero routing work, near-zero allocation per evaluation.
//
// The mechanism: the skeleton is compiled from a spec whose rotation
// angles are unique sentinel values (large exact integers no real angle
// schedule produces). The pipeline carries angles through untouched —
// CPhase(θ) decomposes to CNOT·U1(θ)·CNOT and RX(θ) to U3(θ,−π/2,π/2),
// with no normalization or arithmetic on θ — so scanning the routed
// high-level and native circuits for the sentinels recovers exactly which
// gate slot belongs to which (level, role, term), no matter how the
// ordering passes permuted the terms. Peephole optimization merges
// rotations by value and is the one angle-dependent pass, so
// CompileSkeleton rejects Options.Optimize.

// ErrSkeletonOptimize rejects skeleton compilation with peephole
// optimization: peephole merges and cancels rotations based on their
// concrete angles, so an optimized circuit's structure is not
// angle-independent and cannot be rebound.
var ErrSkeletonOptimize = errors.New("compile: skeleton compilation is incompatible with peephole optimization (gate structure would depend on the angles)")

// WeightedTerm is one ZZ interaction of a parameterized cost Hamiltonian:
// at bind time the level-l cost phase of the (U,V) term is −γ[l]·Weight.
// MaxCut has unit weights; weighted MaxCut (the qaoad request schema)
// scales each edge's phase by its weight.
type WeightedTerm struct {
	U, V   int
	Weight float64
}

// ParamSpec is the angle-independent half of a Spec: the interaction
// structure and per-term weights, with the 2p angles left symbolic. The
// concrete Spec for an angle set is Spec(params); CompileSkeleton compiles
// the structure once so any angle set can be bound in microseconds.
//
// ParamSpec has no per-qubit linear (RZ) terms: the concrete pipeline
// drops zero-angle locals, so a circuit's structure would depend on which
// locals vanish at a given angle set — exactly the angle-dependence the
// skeleton contract forbids. Specs with linear terms must use the
// per-angle-set CompileSpec path.
type ParamSpec struct {
	// N is the number of logical qubits.
	N int
	// P is the number of QAOA levels; every level applies the same Terms.
	P int
	// Terms are the ZZ interactions of one cost layer.
	Terms []WeightedTerm
}

// ParamSpecFromMaxCut builds the p-level parameterized spec of a MaxCut
// problem: one unit-weight term per graph edge, matching SpecFromMaxCut
// term for term so a skeleton bind is byte-identical to the concrete
// compile.
func ParamSpecFromMaxCut(prob *qaoa.Problem, p int) (ParamSpec, error) {
	ps := ParamSpec{N: prob.NumQubits(), P: p, Terms: make([]WeightedTerm, 0, prob.G.M())}
	for _, e := range prob.G.Edges() {
		ps.Terms = append(ps.Terms, WeightedTerm{U: e.U, V: e.V, Weight: 1})
	}
	if err := ps.Validate(); err != nil {
		return ParamSpec{}, err
	}
	return ps, nil
}

// Validate checks qubit indices and level count.
func (ps ParamSpec) Validate() error {
	if ps.N <= 0 {
		return fmt.Errorf("compile: param spec has %d qubits", ps.N)
	}
	if ps.P <= 0 {
		return fmt.Errorf("compile: param spec has %d levels", ps.P)
	}
	for i, t := range ps.Terms {
		if t.U < 0 || t.U >= ps.N || t.V < 0 || t.V >= ps.N || t.U == t.V {
			return fmt.Errorf("compile: param spec term %d has invalid pair (%d,%d)", i, t.U, t.V)
		}
	}
	if ps.P*(len(ps.Terms)+1) >= maxSkeletonSlots {
		return fmt.Errorf("compile: param spec needs %d angle slots, beyond the %d the sentinel encoding distinguishes", ps.P*(len(ps.Terms)+1), maxSkeletonSlots)
	}
	return nil
}

// Spec concretizes the parameterized spec for one angle set, with the
// exact arithmetic Bind uses (cost phase −γ[l]·Weight, mixer β[l]) so the
// per-angle-set pipeline remains a bit-identical oracle for the skeleton.
func (ps ParamSpec) Spec(params qaoa.Params) (Spec, error) {
	if err := ps.Validate(); err != nil {
		return Spec{}, err
	}
	if err := params.Validate(); err != nil {
		return Spec{}, err
	}
	if params.P() != ps.P {
		return Spec{}, fmt.Errorf("compile: %d-level params for a %d-level param spec", params.P(), ps.P)
	}
	s := Spec{N: ps.N, Levels: make([]LevelSpec, ps.P)}
	for l := range s.Levels {
		terms := make([]ZZTerm, len(ps.Terms))
		for k, t := range ps.Terms {
			terms[k] = ZZTerm{U: t.U, V: t.V, Theta: -params.Gamma[l] * t.Weight}
		}
		s.Levels[l] = LevelSpec{ZZ: terms, MixerBeta: params.Beta[l]}
	}
	return s, nil
}

// Sentinel encoding: each angle slot of the skeleton compile carries a
// unique exact-integer float64 far outside any real angle schedule. Cost
// slot (level l, term k) maps to costSentinelBase + l·T + k + 1 and the
// level-l mixer to mixerSentinelBase + l + 1; the bases are two apart in
// exponent so the ranges cannot collide, and every value (including the
// 2×mixer the RX layer emits) stays an exact integer well below 2^53.
const (
	costSentinelBase  = float64(1 << 40)
	mixerSentinelBase = float64(1 << 41)
	maxSkeletonSlots  = 1 << 38
)

func (ps ParamSpec) costSentinel(l, k int) float64 {
	return costSentinelBase + float64(l*len(ps.Terms)+k+1)
}

func (ps ParamSpec) mixerSentinel(l int) float64 {
	return mixerSentinelBase + float64(l+1)
}

// sentinelSpec builds the concrete Spec whose angles are the slot
// sentinels.
func (ps ParamSpec) sentinelSpec() Spec {
	s := Spec{N: ps.N, Levels: make([]LevelSpec, ps.P)}
	for l := range s.Levels {
		terms := make([]ZZTerm, len(ps.Terms))
		for k, t := range ps.Terms {
			terms[k] = ZZTerm{U: t.U, V: t.V, Theta: ps.costSentinel(l, k)}
		}
		s.Levels[l] = LevelSpec{ZZ: terms, MixerBeta: ps.mixerSentinel(l)}
	}
	return s
}

// costSlot records that template gate Gate carries the cost phase of
// (level Level, Terms[Term]); mixSlot that it carries the level-Level
// mixer angle.
type costSlot struct {
	gate  int32
	level int32
	term  int32
}

type mixSlot struct {
	gate  int32
	level int32
}

// Skeleton is a routed, stitched QAOA circuit with symbolic angle slots:
// the one-time product of the full mapping/ordering/routing pipeline for
// a (ParamSpec, device, options) triple. Bind writes a concrete angle set
// into the slots, yielding a Result byte-identical to compiling that
// angle set from scratch. A Skeleton is immutable after construction and
// safe for concurrent Bind calls with distinct buffers.
type Skeleton struct {
	n, p  int
	terms []WeightedTerm

	// circ and native are the sentinel-angle templates; Bind copies their
	// gate slices and overwrites the slots, never mutating the templates.
	circ, native         *circuit.Circuit
	circCost, nativeCost []costSlot
	circMix, nativeMix   []mixSlot

	// initial and final are shared by reference with every bound Result;
	// layouts are treated as immutable after compilation.
	initial, final *router.Layout

	swapCount, depth, gateCount                int
	compileTime, mapTime, orderTime, routeTime time.Duration

	fallback *FallbackInfo
	obs      *obsv.Collector
}

// N returns the number of logical qubits.
func (s *Skeleton) N() int { return s.n }

// P returns the number of QAOA levels an angle set must have to bind.
func (s *Skeleton) P() int { return s.p }

// SwapCount, Depth and GateCount report the routed metrics, which are
// angle-independent and therefore shared by every bound Result.
func (s *Skeleton) SwapCount() int { return s.swapCount }

// Depth is documented with SwapCount.
func (s *Skeleton) Depth() int { return s.depth }

// GateCount is documented with SwapCount.
func (s *Skeleton) GateCount() int { return s.gateCount }

// Fallback reports how the degradation ladder arrived at this skeleton
// (nil for direct CompileSkeleton calls, always set by
// CompileSkeletonResilient).
func (s *Skeleton) Fallback() *FallbackInfo { return s.fallback }

// CompileSkeleton runs the full pipeline once for the parameterized spec
// and returns the reusable skeleton. opts are the usual compile options;
// Optimize is rejected (see ErrSkeletonOptimize). The routing rng is
// consumed exactly as a concrete compile would consume it, so a skeleton
// compiled with a given seed binds to the byte-identical circuit that a
// concrete compile with the same seed would produce.
func CompileSkeleton(ctx context.Context, ps ParamSpec, dev *device.Device, opts Options) (*Skeleton, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if opts.Optimize {
		return nil, ErrSkeletonOptimize
	}
	res, err := CompileSpecContext(ctx, ps.sentinelSpec(), dev, opts)
	if err != nil {
		return nil, err
	}
	sk, err := newSkeleton(ps, res, opts.Obs)
	if err != nil {
		return nil, err
	}
	opts.Obs.Inc(obsv.CntSkeletonCompiles)
	return sk, nil
}

// newSkeleton locates every sentinel in the routed circuits and freezes
// the result into a bindable skeleton.
func newSkeleton(ps ParamSpec, res *Result, obs *obsv.Collector) (*Skeleton, error) {
	costIdx := make(map[float64]costSlot, ps.P*len(ps.Terms))
	mixIdx := make(map[float64]int32, ps.P)
	for l := 0; l < ps.P; l++ {
		for k := range ps.Terms {
			costIdx[ps.costSentinel(l, k)] = costSlot{level: int32(l), term: int32(k)}
		}
		// The pipeline emits the mixer as RX(2β), and U3 keeps the RX
		// angle verbatim, so both circuits carry twice the sentinel.
		mixIdx[2*ps.mixerSentinel(l)] = int32(l)
	}
	sk := &Skeleton{
		n: ps.N, p: ps.P,
		terms:   append([]WeightedTerm(nil), ps.Terms...),
		circ:    res.Circuit,
		native:  res.Native,
		initial: res.Initial, final: res.Final,
		swapCount: res.SwapCount, depth: res.Depth, gateCount: res.GateCount,
		compileTime: res.CompileTime, mapTime: res.MapTime,
		orderTime: res.OrderTime, routeTime: res.RouteTime,
		obs: obs,
	}
	var err error
	if sk.circCost, sk.circMix, err = scanSlots(res.Circuit, costIdx, mixIdx); err != nil {
		return nil, fmt.Errorf("compile: skeleton scan of routed circuit: %w", err)
	}
	if sk.nativeCost, sk.nativeMix, err = scanSlots(res.Native, costIdx, mixIdx); err != nil {
		return nil, fmt.Errorf("compile: skeleton scan of native circuit: %w", err)
	}
	// Every slot of every level must surface in both circuits: a missing
	// slot means a pass transformed an angle, which would bind silently
	// wrong — fail loud instead.
	want := ps.P * len(ps.Terms)
	if len(sk.circCost) != want || len(sk.nativeCost) != want {
		return nil, fmt.Errorf("compile: skeleton recovered %d/%d cost slots in the routed circuit and %d/%d in the native circuit", len(sk.circCost), want, len(sk.nativeCost), want)
	}
	if len(sk.circMix) != ps.P*ps.N || len(sk.nativeMix) != ps.P*ps.N {
		return nil, fmt.Errorf("compile: skeleton recovered %d mixer slots in the routed circuit and %d in the native circuit, want %d", len(sk.circMix), len(sk.nativeMix), ps.P*ps.N)
	}
	return sk, nil
}

// scanSlots maps each parameterized gate of a template back to its angle
// slot via the sentinel it carries. Any rotation whose angle is not a
// known sentinel means the pipeline transformed an angle the skeleton
// contract says it must carry verbatim.
func scanSlots(c *circuit.Circuit, costIdx map[float64]costSlot, mixIdx map[float64]int32) ([]costSlot, []mixSlot, error) {
	var costs []costSlot
	var mixes []mixSlot
	for i, g := range c.Gates {
		switch g.Kind {
		case circuit.CPhase, circuit.U1:
			cs, ok := costIdx[g.Params[0]]
			if !ok {
				return nil, nil, fmt.Errorf("gate %d: %v carries phase %v, not a cost sentinel", i, g.Kind, g.Params[0])
			}
			cs.gate = int32(i)
			costs = append(costs, cs)
		case circuit.RX, circuit.U3:
			l, ok := mixIdx[g.Params[0]]
			if !ok {
				return nil, nil, fmt.Errorf("gate %d: %v carries angle %v, not a mixer sentinel", i, g.Kind, g.Params[0])
			}
			mixes = append(mixes, mixSlot{gate: int32(i), level: l})
		case circuit.RZ, circuit.RY:
			return nil, nil, fmt.Errorf("gate %d: unexpected parameterized %v in a skeleton template", i, g.Kind)
		}
	}
	return costs, mixes, nil
}

// BindBuffer holds the reusable storage of a bind: the two materialized
// gate lists and the Result shell. A buffer reaches its high-water
// allocation on the first bind and allocates nothing afterwards; it may
// be reused across binds (each bind invalidates the previous Result) but
// not across goroutines.
type BindBuffer struct {
	circ, native circuit.Circuit
	res          Result
}

// Bind materializes the skeleton for one angle set into fresh storage.
// For per-evaluation binding use BindTo with a reused buffer.
func (s *Skeleton) Bind(params qaoa.Params) (*Result, error) {
	return s.BindTo(new(BindBuffer), params)
}

// BindTo materializes a concrete compiled circuit for params in buf and
// returns buf's Result: gate-for-gate and byte-for-byte what
// CompileSpecContext would produce for the concrete spec with the same
// options and seed, at the cost of two gate-slice copies. The Result
// shares the skeleton's layouts (immutable) and reports the skeleton's
// one-time pass timings; it is valid until buf's next bind.
//
//qaoa:hotpath
func (s *Skeleton) BindTo(buf *BindBuffer, params qaoa.Params) (*Result, error) {
	//lint:allow hotpath: once-per-bind prologue outside the per-slot loops; Validate allocates only when rejecting
	if err := params.Validate(); err != nil {
		return nil, err
	}
	//lint:allow hotpath: Params.P is a len accessor
	if params.P() != s.p {
		return nil, fmt.Errorf("compile: binding %d-level params on a %d-level skeleton", params.P(), s.p) //lint:allow hotpath: guarded cold error path
	}
	buf.circ.NQubits = s.circ.NQubits
	//lint:allow hotpath: high-water reuse — the copy grows buf once, then binds are allocation-free (BenchmarkSkeletonBindTo)
	buf.circ.Gates = append(buf.circ.Gates[:0], s.circ.Gates...)
	buf.native.NQubits = s.native.NQubits
	//lint:allow hotpath: high-water reuse — the copy grows buf once, then binds are allocation-free (BenchmarkSkeletonBindTo)
	buf.native.Gates = append(buf.native.Gates[:0], s.native.Gates...)
	writeSlots(buf.circ.Gates, s.circCost, s.circMix, s.terms, params)
	writeSlots(buf.native.Gates, s.nativeCost, s.nativeMix, s.terms, params)
	s.obs.Inc(obsv.CntCompileBinds)
	buf.res = Result{
		Circuit: &buf.circ, Native: &buf.native,
		Initial: s.initial, Final: s.final,
		SwapCount: s.swapCount, Depth: s.depth, GateCount: s.gateCount,
		CompileTime: s.compileTime, MapTime: s.mapTime,
		OrderTime: s.orderTime, RouteTime: s.routeTime,
		Fallback: s.fallback,
	}
	return &buf.res, nil
}

// writeSlots overwrites the angle slots of a materialized gate list with
// the concrete angles, using exactly the arithmetic the concrete pipeline
// uses (−γ[l]·w cost phases, 2β[l] mixer rotations) so equality is
// bitwise, not just numeric.
//
//qaoa:hotpath
func writeSlots(gates []circuit.Gate, costs []costSlot, mixes []mixSlot, terms []WeightedTerm, params qaoa.Params) {
	for _, cs := range costs {
		gates[cs.gate].Params[0] = -params.Gamma[cs.level] * terms[cs.term].Weight
	}
	for _, ms := range mixes {
		gates[ms.gate].Params[0] = 2 * params.Beta[ms.level]
	}
}
