package compile

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

func TestReverseTraversalMappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphs.MustRandomRegular(10, 3, rng)
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	spec, err := SpecFromMaxCut(prob, p1Params(0.5, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	dev := device.Tokyo20()
	o := Options{Rng: rng}.withDefaults()
	l, err := ReverseTraversalMapping(spec, dev, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for q := 0; q < 10; q++ {
		p := l.Phys(q)
		if p < 0 || p >= 20 || seen[p] {
			t.Fatalf("invalid layout %v", l)
		}
		seen[p] = true
	}
}

// Reverse traversal must reduce routing cost versus the raw random mapping
// it starts from, on average.
func TestReverseTraversalReducesSwaps(t *testing.T) {
	dev := device.Tokyo20()
	var randomSwaps, refinedSwaps int
	const trials = 10
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i) * 71))
		g := graphs.MustRandomRegular(14, 3, rng)
		prob := &qaoa.Problem{G: g, MaxCut: 1}

		naive, err := Compile(prob, p1Params(0.5, 0.2), dev, PresetNaive.Options(rand.New(rand.NewSource(int64(i)))))
		if err != nil {
			t.Fatal(err)
		}
		opts := PresetNaive.Options(rand.New(rand.NewSource(int64(i))))
		opts.Mapper = MapReverse
		refined, err := Compile(prob, p1Params(0.5, 0.2), dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		randomSwaps += naive.SwapCount
		refinedSwaps += refined.SwapCount
	}
	if refinedSwaps >= randomSwaps {
		t.Errorf("reverse traversal swaps %d not below random %d", refinedSwaps, randomSwaps)
	}
}

// Semantics must hold through the reverse-traversal mapper like any other.
func TestReverseTraversalSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphs.ErdosRenyi(7, 0.5, rng)
	prob := mustProblem(t, g)
	gamma, beta := 0.7, 0.25
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)
	opts := PresetIC.Options(rng)
	opts.Mapper = MapReverse
	res, err := Compile(prob, p1Params(gamma, beta), device.Melbourne15(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := physicalExpectation(prob, res); math.Abs(got-want) > 1e-8 {
		t.Errorf("physical ⟨C⟩ = %v, want %v", got, want)
	}
}

func TestMapReverseString(t *testing.T) {
	if MapReverse.String() != "reverse-traversal" {
		t.Errorf("name = %q", MapReverse.String())
	}
}
