package compile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

func p1Params(gamma, beta float64) qaoa.Params {
	return qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
}

func mustProblem(t *testing.T, g *graphs.Graph) *qaoa.Problem {
	t.Helper()
	p, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// physicalExpectation computes ⟨C⟩ of the compiled physical circuit, reading
// logical qubit v out of physical qubit Final.Phys(v).
func physicalExpectation(prob *qaoa.Problem, res *Result) float64 {
	s := sim.NewState(res.Circuit.NQubits).Run(res.Circuit)
	return s.ExpectationDiagonal(func(y uint64) float64 {
		var x uint64
		for q := 0; q < prob.NumQubits(); q++ {
			if y&(1<<uint(res.Final.Phys(q))) != 0 {
				x |= 1 << uint(q)
			}
		}
		return prob.Cost(x)
	})
}

// Compiled circuits must preserve QAOA semantics exactly: the physical
// expectation equals the analytic p=1 expectation, for every preset.
func TestCompileSemanticsAllPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphs.ErdosRenyi(7, 0.45, rng)
	prob := mustProblem(t, g)
	dev := device.Melbourne15()
	gamma, beta := 0.8, 0.3
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)
	for _, preset := range Presets {
		opts := preset.Options(rand.New(rand.NewSource(5)))
		res, err := Compile(prob, p1Params(gamma, beta), dev, opts)
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		if err := dev.VerifyCompliant(res.Circuit); err != nil {
			t.Errorf("%v: %v", preset, err)
		}
		if got := physicalExpectation(prob, res); math.Abs(got-want) > 1e-8 {
			t.Errorf("%v: physical ⟨C⟩ = %v, want %v", preset, got, want)
		}
	}
}

func TestCompileGateBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graphs.MustRandomRegular(10, 3, rng)
	prob := mustProblem(t, g)
	dev := device.Tokyo20()
	params := qaoa.Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.2, 0.5}}
	for _, preset := range []Preset{PresetNaive, PresetIP, PresetIC} {
		res, err := Compile(prob, params, dev, preset.Options(rng))
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		if got := res.Circuit.CountKind(circuit.CPhase); got != 2*g.M() {
			t.Errorf("%v: CPhase count %d, want %d", preset, got, 2*g.M())
		}
		if got := res.Circuit.CountKind(circuit.H); got != 10 {
			t.Errorf("%v: H count %d, want 10", preset, got)
		}
		if got := res.Circuit.CountKind(circuit.RX); got != 20 {
			t.Errorf("%v: RX count %d, want 20", preset, got)
		}
		if got := res.Circuit.CountKind(circuit.Swap); got != res.SwapCount {
			t.Errorf("%v: SwapCount %d vs %d swap gates", preset, res.SwapCount, got)
		}
		if res.Circuit.CountKind(circuit.Measure) != 0 {
			t.Errorf("%v: unexpected measurements", preset)
		}
	}
}

func TestCompileWithMeasurements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphs.ErdosRenyi(6, 0.5, rng)
	prob := mustProblem(t, g)
	dev := device.Melbourne15()
	opts := PresetIC.Options(rng)
	opts.Measure = true
	res, err := Compile(prob, p1Params(0.5, 0.2), dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Circuit.CountKind(circuit.Measure); got != 6 {
		t.Fatalf("measure count %d, want 6", got)
	}
	// Every measured physical qubit must be a final position of a logical
	// qubit.
	want := make(map[int]bool)
	for q := 0; q < 6; q++ {
		want[res.Final.Phys(q)] = true
	}
	for _, gate := range res.Circuit.Gates {
		if gate.Kind == circuit.Measure && !want[gate.Q0] {
			t.Errorf("measurement on physical %d which holds no logical qubit", gate.Q0)
		}
	}
}

func TestCompileMetricsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graphs.MustRandomRegular(12, 3, rng)
	prob := mustProblem(t, g)
	res, err := Compile(prob, p1Params(0.4, 0.3), device.Tokyo20(), PresetIC.Options(rng))
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != res.Native.Depth() {
		t.Errorf("Depth %d != Native depth %d", res.Depth, res.Native.Depth())
	}
	if res.GateCount != res.Native.GateCount() {
		t.Errorf("GateCount %d != Native count %d", res.GateCount, res.Native.GateCount())
	}
	if res.CompileTime <= 0 {
		t.Error("CompileTime not recorded")
	}
	// Native circuit contains only basis gates.
	for _, gate := range res.Native.Gates {
		switch gate.Kind {
		case circuit.U1, circuit.U2, circuit.U3, circuit.CNOT, circuit.Measure:
		default:
			t.Fatalf("non-native gate %v", gate)
		}
	}
}

func TestVICRequiresCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphs.ErdosRenyi(6, 0.5, rng)
	prob := mustProblem(t, g)
	if _, err := Compile(prob, p1Params(0.5, 0.2), device.Tokyo20(), PresetVIC.Options(rng)); err == nil {
		t.Error("VIC without calibration accepted")
	}
}

func TestCompileRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graphs.ErdosRenyi(5, 0.5, rng)
	prob := mustProblem(t, g)
	if _, err := Compile(prob, qaoa.Params{}, device.Melbourne15(), PresetIC.Options(rng)); err == nil {
		t.Error("empty params accepted")
	}
}

func TestCompileOversizedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphs.ErdosRenyi(16, 0.3, rng)
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	if _, err := Compile(prob, p1Params(0.5, 0.2), device.Melbourne15(), PresetIC.Options(rng)); err == nil {
		t.Error("16 qubits on melbourne accepted")
	}
}

func TestICPackingLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graphs.MustRandomRegular(12, 4, rng)
	prob := mustProblem(t, g)
	opts := PresetIC.Options(rng)
	opts.PackingLimit = 1
	res, err := Compile(prob, p1Params(0.5, 0.2), device.Tokyo20(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := device.Tokyo20().VerifyCompliant(res.Circuit); err != nil {
		t.Error(err)
	}
	if got := res.Circuit.CountKind(circuit.CPhase); got != g.M() {
		t.Errorf("CPhase count %d, want %d", got, g.M())
	}
}

func TestCompileDeterministicWithSeed(t *testing.T) {
	g := graphs.MustRandomRegular(10, 3, rand.New(rand.NewSource(9)))
	prob := mustProblem(t, g)
	run := func() *Result {
		res, err := Compile(prob, p1Params(0.5, 0.2), device.Tokyo20(), PresetIC.Options(rand.New(rand.NewSource(10))))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Circuit.Len() != b.Circuit.Len() || a.Depth != b.Depth || a.GateCount != b.GateCount {
		t.Error("same-seed compilations differ")
	}
	for i := range a.Circuit.Gates {
		if a.Circuit.Gates[i] != b.Circuit.Gates[i] {
			t.Fatal("same-seed gate sequences differ")
		}
	}
}

// Property: for random problems and all presets, compilation yields
// compliant circuits whose CPhase multiset covers exactly the problem
// edges (under the evolving layout — verified by count here, exactness by
// the semantic test above).
func TestCompileComplianceProperty(t *testing.T) {
	devs := []*device.Device{device.Melbourne15(), device.Tokyo20(), device.Grid(4, 4)}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := devs[rng.Intn(len(devs))]
		n := 4 + rng.Intn(8)
		g := graphs.ErdosRenyi(n, 0.4, rng)
		prob := &qaoa.Problem{G: g, MaxCut: 1}
		presets := []Preset{PresetNaive, PresetGreedyV, PresetQAIM, PresetIP, PresetIC}
		if dev.Calib != nil {
			presets = append(presets, PresetVIC)
		}
		for _, preset := range presets {
			res, err := Compile(prob, p1Params(0.7, 0.3), dev, preset.Options(rng))
			if err != nil {
				return false
			}
			if dev.VerifyCompliant(res.Circuit) != nil {
				return false
			}
			if res.Circuit.CountKind(circuit.CPhase) != g.M() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// IC should never do worse than NAIVE on depth for structured sparse
// problems (averaged over instances) — the paper's headline effect.
func TestICBeatsNaiveOnAverage(t *testing.T) {
	dev := device.Tokyo20()
	rng := rand.New(rand.NewSource(20))
	var naiveDepth, icDepth float64
	const trials = 12
	for i := 0; i < trials; i++ {
		g := graphs.MustRandomRegular(16, 4, rng)
		prob := &qaoa.Problem{G: g, MaxCut: 1}
		rn, err := Compile(prob, p1Params(0.5, 0.2), dev, PresetNaive.Options(rng))
		if err != nil {
			t.Fatal(err)
		}
		ric, err := Compile(prob, p1Params(0.5, 0.2), dev, PresetIC.Options(rng))
		if err != nil {
			t.Fatal(err)
		}
		naiveDepth += float64(rn.Depth)
		icDepth += float64(ric.Depth)
	}
	if icDepth >= naiveDepth {
		t.Errorf("IC mean depth %v not below NAIVE %v", icDepth/trials, naiveDepth/trials)
	}
}

func TestPresetStrings(t *testing.T) {
	want := []string{"NAIVE", "GreedyV", "QAIM", "IP", "IC", "VIC"}
	for i, p := range Presets {
		if p.String() != want[i] {
			t.Errorf("preset %d name %q, want %q", i, p.String(), want[i])
		}
	}
	if Strategy(99).String() == "" || Mapper(99).String() == "" {
		t.Error("unknown enum names empty")
	}
}

// Optimize must preserve semantics while never increasing the native gate
// count, and typically reducing it (SWAP/CPhase CNOT fusion).
func TestCompileOptimizeFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := graphs.MustRandomRegular(12, 4, rng)
	prob := mustProblem(t, g)
	dev := device.Melbourne15()
	gamma, beta := 0.8, 0.3
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)

	plain, err := Compile(prob, p1Params(gamma, beta), dev, PresetIC.Options(rand.New(rand.NewSource(31))))
	if err != nil {
		t.Fatal(err)
	}
	opts := PresetIC.Options(rand.New(rand.NewSource(31)))
	opts.Optimize = true
	optimized, err := Compile(prob, p1Params(gamma, beta), dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.GateCount > plain.GateCount {
		t.Errorf("optimize grew gate count %d → %d", plain.GateCount, optimized.GateCount)
	}
	if err := dev.VerifyCompliant(optimized.Circuit); err != nil {
		t.Error(err)
	}
	if got := physicalExpectation(prob, optimized); math.Abs(got-want) > 1e-8 {
		t.Errorf("optimized ⟨C⟩ = %v, want %v", got, want)
	}
}

// RouterTrials must keep semantics; for the whole-circuit strategies (one
// backend call, trial 0 = the deterministic attempt) it can never increase
// the swap count. For IC the choice is per-layer-greedy, so only semantics
// are guaranteed.
func TestCompileRouterTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := graphs.MustRandomRegular(14, 4, rng)
	prob := mustProblem(t, g)
	gamma, beta := 0.6, 0.25
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)

	single, err := Compile(prob, p1Params(gamma, beta), device.Tokyo20(), PresetIP.Options(rand.New(rand.NewSource(41))))
	if err != nil {
		t.Fatal(err)
	}
	opts := PresetIP.Options(rand.New(rand.NewSource(41)))
	opts.RouterTrials = 4
	multi, err := Compile(prob, p1Params(gamma, beta), device.Tokyo20(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if multi.SwapCount > single.SwapCount {
		t.Errorf("trials swaps %d worse than deterministic %d", multi.SwapCount, single.SwapCount)
	}
	// Semantic check on a small instance.
	g2 := graphs.ErdosRenyi(7, 0.5, rng)
	prob2 := mustProblem(t, g2)
	opts2 := PresetIC.Options(rand.New(rand.NewSource(42)))
	opts2.RouterTrials = 4
	res2, err := Compile(prob2, p1Params(gamma, beta), device.Melbourne15(), opts2)
	if err != nil {
		t.Fatal(err)
	}
	want = qaoa.ExpectationP1Analytic(g2, gamma, beta)
	if got := physicalExpectation(prob2, res2); math.Abs(got-want) > 1e-8 {
		t.Errorf("trials ⟨C⟩ = %v, want %v", got, want)
	}
}

// Multi-level semantics: every preset must preserve the p=2 QAOA state
// exactly (each level's commuting block re-ordered independently).
func TestCompileSemanticsP2AllPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := graphs.ErdosRenyi(6, 0.5, rng)
	prob := mustProblem(t, g)
	params := qaoa.Params{Gamma: []float64{0.7, 0.4}, Beta: []float64{0.3, 0.15}}
	want, err := qaoa.Expectation(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.Melbourne15()
	for _, preset := range Presets {
		res, err := Compile(prob, params, dev, preset.Options(rand.New(rand.NewSource(51))))
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		got := physicalExpectation(prob, res)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("%v: p=2 ⟨C⟩ = %v, want %v", preset, got, want)
		}
	}
}

// Graphs with isolated vertices still compile: the isolated qubit gets H and
// mixer gates but no cost interactions.
func TestCompileIsolatedVertices(t *testing.T) {
	g := graphs.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2) // vertices 3, 4 isolated
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	res, err := Compile(prob, p1Params(0.5, 0.2), device.Melbourne15(),
		PresetIC.Options(rand.New(rand.NewSource(52))))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Circuit.CountKind(circuit.H); got != 5 {
		t.Errorf("H count %d, want 5 (isolated qubits included)", got)
	}
	if got := res.Circuit.CountKind(circuit.CPhase); got != 2 {
		t.Errorf("CPhase count %d, want 2", got)
	}
}

// An edgeless problem has no cost gates at all but remains a valid circuit.
func TestCompileEdgelessGraph(t *testing.T) {
	prob := &qaoa.Problem{G: graphs.New(4), MaxCut: 1}
	res, err := Compile(prob, p1Params(0.5, 0.2), device.Melbourne15(),
		PresetIP.Options(rand.New(rand.NewSource(53))))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 || res.Circuit.CountKind(circuit.CPhase) != 0 {
		t.Errorf("edgeless compile: swaps=%d cphase=%d", res.SwapCount, res.Circuit.CountKind(circuit.CPhase))
	}
}
