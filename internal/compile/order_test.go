package compile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

// fig4Graph is the worked IP example of Fig. 4: CPhase list
// {(1,5),(2,3),(1,4),(2,4)} on qubits 1..5, relabelled to 0..4.
func fig4Graph() *graphs.Graph {
	g := graphs.New(5)
	g.MustAddEdge(0, 4) // (1,5)
	g.MustAddEdge(1, 2) // (2,3)
	g.MustAddEdge(0, 3) // (1,4)
	g.MustAddEdge(1, 3) // (2,4)
	return g
}

func TestMOQFig4(t *testing.T) {
	if got := MOQ(fig4Graph()); got != 2 {
		t.Errorf("MOQ = %d, want 2", got)
	}
}

// The Fig. 4 example must pack into exactly MOQ = 2 layers of 2 gates.
func TestIPLayersFig4(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		layers := IPLayers(fig4Graph(), rand.New(rand.NewSource(seed)), 0)
		if len(layers) != 2 {
			t.Fatalf("seed %d: %d layers, want 2 (%v)", seed, len(layers), layers)
		}
		for _, l := range layers {
			if len(l) != 2 {
				t.Fatalf("seed %d: layer sizes %d/%d, want 2/2", seed, len(layers[0]), len(layers[1]))
			}
		}
	}
}

func validLayers(g *graphs.Graph, layers [][]graphs.Edge) bool {
	seen := make(map[[2]int]int)
	for _, layer := range layers {
		occupied := make(map[int]bool)
		for _, e := range layer {
			if occupied[e.U] || occupied[e.V] {
				return false // qubit reused within a layer
			}
			occupied[e.U], occupied[e.V] = true, true
			seen[[2]int{e.U, e.V}]++
		}
	}
	if len(seen) != g.M() {
		return false
	}
	for _, c := range seen {
		if c != 1 {
			return false
		}
	}
	return true
}

// Property: IP layers partition the edge set, never share a qubit within a
// layer, and never use fewer than MOQ layers.
func TestIPLayersInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := graphs.ErdosRenyi(n, 0.15+0.6*rng.Float64(), rng)
		layers := IPLayers(g, rng, 0)
		if !validLayers(g, layers) {
			return false
		}
		if g.M() > 0 && len(layers) < MOQ(g) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// For regular graphs, first-fit-decreasing typically reaches close to MOQ;
// assert a sane upper bound (≤ MOQ+2) on mid-size instances.
func TestIPLayersNearOptimalOnRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := graphs.MustRandomRegular(16, 5, rng)
		layers := IPLayers(g, rng, 0)
		if len(layers) > MOQ(g)+2 {
			t.Errorf("trial %d: %d layers for MOQ %d", trial, len(layers), MOQ(g))
		}
	}
}

func TestIPLayersPackingLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graphs.MustRandomRegular(12, 4, rng)
	layers := IPLayers(g, rng, 2)
	if !validLayers(g, layers) {
		t.Fatal("invalid layers under packing limit")
	}
	for i, l := range layers {
		if len(l) > 2 {
			t.Errorf("layer %d has %d gates, limit 2", i, len(l))
		}
	}
}

func TestIPOrderCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graphs.ErdosRenyi(10, 0.5, rng)
	order := IPOrder(g, rng, 0)
	if len(order) != g.M() {
		t.Fatalf("order has %d edges, graph has %d", len(order), g.M())
	}
	seen := make(map[[2]int]bool)
	for _, e := range order {
		seen[[2]int{e.U, e.V}] = true
	}
	for _, e := range g.Edges() {
		if !seen[[2]int{e.U, e.V}] {
			t.Errorf("edge (%d,%d) missing from IP order", e.U, e.V)
		}
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := graphs.ErdosRenyi(9, 0.5, rng)
	order := RandomOrder(g, rng)
	if len(order) != g.M() {
		t.Fatalf("length %d, want %d", len(order), g.M())
	}
	seen := make(map[[2]int]bool)
	for _, e := range order {
		if seen[[2]int{e.U, e.V}] {
			t.Fatalf("duplicate edge in random order")
		}
		seen[[2]int{e.U, e.V}] = true
	}
	// Original graph untouched.
	if len(g.Edges()) != g.M() {
		t.Error("RandomOrder mutated the graph")
	}
}

func TestIPLayersEmptyGraph(t *testing.T) {
	g := graphs.New(5)
	layers := IPLayers(g, rand.New(rand.NewSource(1)), 0)
	if len(layers) != 0 {
		t.Errorf("edgeless graph produced %d layers", len(layers))
	}
}

func TestColorTermOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graphs.MustRandomRegular(14, 5, rng)
	terms := make([]ZZTerm, 0, g.M())
	for _, e := range g.Edges() {
		terms = append(terms, ZZTerm{U: e.U, V: e.V, Theta: 0.5})
	}
	ordered, err := ColorTermOrder(14, terms)
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered) != len(terms) {
		t.Fatalf("order lost terms: %d of %d", len(ordered), len(terms))
	}
	seen := map[[2]int]bool{}
	for _, tm := range ordered {
		k := [2]int{tm.U, tm.V}
		if seen[k] {
			t.Fatalf("duplicate term %v", k)
		}
		seen[k] = true
	}
}

func TestColorTermOrderRejectsDuplicates(t *testing.T) {
	terms := []ZZTerm{{U: 0, V: 1}, {U: 1, V: 0}}
	if _, err := ColorTermOrder(2, terms); err == nil {
		t.Error("duplicate pair accepted")
	}
}

// The Vizing order must schedule the pure cost block within Δ+1 layers on
// fully-connected hardware — tighter than or equal to IP.
func TestColorOrderLayerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		g := graphs.MustRandomRegular(16, 6, rng)
		terms := make([]ZZTerm, 0, g.M())
		for _, e := range g.Edges() {
			terms = append(terms, ZZTerm{U: e.U, V: e.V, Theta: 0.3})
		}
		ordered, err := ColorTermOrder(16, terms)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(16)
		for _, tm := range ordered {
			c.Append(circuit.NewCPhase(tm.U, tm.V, tm.Theta))
		}
		if d := c.Depth(); d > g.MaxDegree()+1 {
			t.Errorf("trial %d: colored cost block depth %d > Δ+1 = %d", trial, d, g.MaxDegree()+1)
		}
	}
}

// Compilation through the Vizing strategy preserves semantics.
func TestWholeColorSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graphs.ErdosRenyi(7, 0.5, rng)
	prob := mustProblem2(t, g)
	gamma, beta := 0.6, 0.3
	opts := Options{Mapper: MapQAIM, Strategy: WholeColor, Rng: rng}
	res, err := Compile(prob, qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}}, device.Melbourne15(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := qaoa.ExpectationP1Analytic(g, gamma, beta)
	if got := physicalExpectation(prob, res); math.Abs(got-want) > 1e-8 {
		t.Errorf("vizing ⟨C⟩ = %v, want %v", got, want)
	}
	if WholeColor.String() != "vizing" {
		t.Error("strategy name wrong")
	}
}

func mustProblem2(t *testing.T, g *graphs.Graph) *qaoa.Problem {
	t.Helper()
	p, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
