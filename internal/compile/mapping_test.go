package compile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/graphs"
)

func ring5() *graphs.Graph {
	g := graphs.New(5)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)
	}
	return g
}

func star5() *graphs.Graph {
	g := graphs.New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

func TestRandomMappingValid(t *testing.T) {
	dev := device.Tokyo20()
	rng := rand.New(rand.NewSource(1))
	l, err := RandomMapping(12, dev, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.NLogical() != 12 || l.NPhysical() != 20 {
		t.Errorf("layout shape (%d,%d)", l.NLogical(), l.NPhysical())
	}
	if _, err := RandomMapping(21, dev, rng); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestGreedyVMappingHeaviestFirst(t *testing.T) {
	// Star graph: vertex 0 has degree 4 and must land on the
	// highest-degree physical qubit.
	dev := device.Tokyo20()
	l, err := GreedyVMapping(star5(), dev)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for p := 0; p < dev.NQubits(); p++ {
		if d := dev.Coupling.Degree(p); d > maxDeg {
			maxDeg = d
		}
	}
	if got := dev.Coupling.Degree(l.Phys(0)); got != maxDeg {
		t.Errorf("heaviest logical qubit on degree-%d physical, want %d", got, maxDeg)
	}
}

func TestQAIMFirstPlacementMaxStrength(t *testing.T) {
	dev := device.Tokyo20()
	strength := dev.StrengthProfile(2)
	maxS := 0
	for _, s := range strength {
		if s > maxS {
			maxS = s
		}
	}
	rng := rand.New(rand.NewSource(2))
	l, err := QAIMMapping(star5(), dev, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Logical 0 (highest degree) is placed first.
	if got := strength[l.Phys(0)]; got != maxS {
		t.Errorf("first QAIM placement has strength %d, want max %d", got, maxS)
	}
}

// QAIM must keep logical neighbours physically adjacent whenever the device
// has room: on a ring problem mapped to tokyo, the mean physical distance of
// problem edges must be well below what random mapping yields on average.
func TestQAIMKeepsNeighborsClose(t *testing.T) {
	dev := device.Tokyo20()
	dist := dev.HopDistances()
	g := ring5()
	avgEdgeDist := func(l2p func(int) int) float64 {
		var s float64
		for _, e := range g.Edges() {
			s += dist.Dist(l2p(e.U), l2p(e.V))
		}
		return s / float64(g.M())
	}
	rng := rand.New(rand.NewSource(3))
	ql, err := QAIMMapping(g, dev, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	qaimDist := avgEdgeDist(ql.Phys)
	var randDist float64
	const trials = 30
	for i := 0; i < trials; i++ {
		rl, err := RandomMapping(g.N(), dev, rng)
		if err != nil {
			t.Fatal(err)
		}
		randDist += avgEdgeDist(rl.Phys)
	}
	randDist /= trials
	if qaimDist >= randDist {
		t.Errorf("QAIM mean edge distance %v not below random %v", qaimDist, randDist)
	}
	if qaimDist > 1.5 {
		t.Errorf("QAIM mean edge distance %v too large for a 5-ring on tokyo", qaimDist)
	}
}

// Property: every mapper yields a valid injective in-range layout on
// assorted devices and graphs.
func TestMappersProduceValidLayouts(t *testing.T) {
	devs := []*device.Device{device.Tokyo20(), device.Melbourne15(), device.Grid(6, 6), device.Ring(8)}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := devs[rng.Intn(len(devs))]
		n := 2 + rng.Intn(dev.NQubits()-2)
		g := graphs.ErdosRenyi(n, 0.4, rng)
		for _, mapper := range []Mapper{MapRandom, MapGreedyV, MapQAIM} {
			o := Options{Mapper: mapper, Rng: rng}.withDefaults()
			l, err := buildMapping(g, dev, o)
			if err != nil {
				return false
			}
			seen := make(map[int]bool)
			for q := 0; q < n; q++ {
				p := l.Phys(q)
				if p < 0 || p >= dev.NQubits() || seen[p] {
					return false
				}
				seen[p] = true
				if l.LogicalAt(p) != q {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQAIMDeterministicWithSeed(t *testing.T) {
	dev := device.Melbourne15()
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	g := graphs.ErdosRenyi(10, 0.4, rand.New(rand.NewSource(9)))
	a, err := QAIMMapping(g, dev, 2, rng1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QAIMMapping(g, dev, 2, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same-seed QAIM mappings differ")
	}
}

func TestMapperStrings(t *testing.T) {
	if MapRandom.String() != "random" || MapGreedyV.String() != "greedyV" || MapQAIM.String() != "qaim" {
		t.Error("mapper names wrong")
	}
	if Mapper(99).String() == "" {
		t.Error("unknown mapper name empty")
	}
}
