package compile

import (
	"fmt"

	"repro/internal/graphs"
	"repro/internal/qaoa"
)

// ZZTerm is one commuting two-qubit cost gate: CPhase(Theta) between
// logical qubits U and V.
type ZZTerm struct {
	U, V  int
	Theta float64
}

// LevelSpec describes one QAOA level of a generic commuting cost
// Hamiltonian: the ZZ interactions, optional per-qubit Z phases (RZ
// angles; nil when the Hamiltonian has no linear terms), and the mixer
// angle.
type LevelSpec struct {
	ZZ        []ZZTerm
	Local     []float64
	MixerBeta float64
}

// Spec is a compiler-facing description of a full QAOA circuit for an
// arbitrary Ising-form cost Hamiltonian (§VI "Applicability beyond
// QAOA-MaxCut"): all ZZ terms within a level commute, which is what the
// ordering passes exploit. MaxCut is the special case with unit couplings
// and no linear terms.
type Spec struct {
	N      int
	Levels []LevelSpec
}

// Validate checks qubit indices and level shapes.
func (s Spec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("compile: spec has %d qubits", s.N)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("compile: spec has no levels")
	}
	for li, l := range s.Levels {
		for _, t := range l.ZZ {
			if t.U < 0 || t.U >= s.N || t.V < 0 || t.V >= s.N || t.U == t.V {
				return fmt.Errorf("compile: level %d has invalid ZZ term (%d,%d)", li, t.U, t.V)
			}
		}
		if l.Local != nil && len(l.Local) != s.N {
			return fmt.Errorf("compile: level %d local terms length %d, want %d", li, len(l.Local), s.N)
		}
	}
	return nil
}

// InteractionGraph returns the union of all ZZ pairs across levels — the
// graph the mapping passes (QAIM, GreedyV) profile.
func (s Spec) InteractionGraph() *graphs.Graph {
	g := graphs.New(s.N)
	for _, l := range s.Levels {
		for _, t := range l.ZZ {
			if !g.HasEdge(t.U, t.V) {
				g.MustAddEdge(t.U, t.V)
			}
		}
	}
	return g
}

// SpecFromMaxCut converts a MaxCut problem and angle set into the generic
// spec: one ZZ term of angle −γ per edge per level (see qaoa.CostLayer for
// the sign convention) and no linear terms.
func SpecFromMaxCut(prob *qaoa.Problem, params qaoa.Params) (Spec, error) {
	if err := params.Validate(); err != nil {
		return Spec{}, err
	}
	s := Spec{N: prob.NumQubits(), Levels: make([]LevelSpec, params.P())}
	for l := range s.Levels {
		terms := make([]ZZTerm, 0, prob.G.M())
		for _, e := range prob.G.Edges() {
			terms = append(terms, ZZTerm{U: e.U, V: e.V, Theta: -params.Gamma[l]})
		}
		s.Levels[l] = LevelSpec{ZZ: terms, MixerBeta: params.Beta[l]}
	}
	return s, nil
}

// RandomTermOrder shuffles a copy of the terms.
func RandomTermOrder(terms []ZZTerm, rng interface{ Shuffle(int, func(i, j int)) }) []ZZTerm {
	out := append([]ZZTerm(nil), terms...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
