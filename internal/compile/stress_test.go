// Combined-stress coverage for CompileResilient: injected pass faults and
// panics crossed with near-expired deadlines and seeded device degradation.
// The contract under test is all-or-nothing: every call returns either a
// typed error or a fully valid routed circuit — never a partial result,
// never a panic escaping, never a circuit that violates the device.
//
// This lives in package compile_test (not compile) because faultinject
// imports compile; the external test package breaks the cycle.
package compile_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

// stressProblem builds a seeded 3-regular MaxCut instance.
func stressProblem(t *testing.T, n int, seed int64) *qaoa.Problem {
	t.Helper()
	g := graphs.MustRandomRegular(n, 3, rand.New(rand.NewSource(seed)))
	p, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// stressDevices returns the device axis: healthy, calibrated, and two
// seeded faultinject degradations (dead qubits, dropped couplers, calib
// drift). Degradation is deterministic per seed, so failures reproduce.
func stressDevices(t *testing.T) map[string]*device.Device {
	t.Helper()
	degTokyo, _, err := faultinject.Spec{Seed: 11, DeadQubits: 2, DropEdgeFrac: 0.15}.Apply(device.Tokyo20())
	if err != nil {
		t.Fatal(err)
	}
	degMelb, _, err := faultinject.Spec{Seed: 13, DeadQubits: 2, DropEdgeFrac: 0.1, DriftSigma: 0.2}.Apply(device.Melbourne15())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*device.Device{
		"tokyo":              device.Tokyo20(),
		"melbourne":          device.Melbourne15(),
		"tokyo-degraded":     degTokyo,
		"melbourne-degraded": degMelb,
	}
}

// checkAllOrNothing is the single invariant: err XOR fully valid result.
func checkAllOrNothing(t *testing.T, dev *device.Device, res *compile.Result, err error) {
	t.Helper()
	if err != nil {
		if res != nil {
			t.Fatalf("error AND result returned together: err=%v", err)
		}
		// The error must be one of the typed failures this stack produces.
		var (
			pe *compile.PanicError
			le *compile.LadderError
			ie *compile.InsufficientQubitsError
		)
		switch {
		case errors.Is(err, faultinject.ErrInjected),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled),
			errors.As(err, &pe),
			errors.As(err, &le),
			errors.As(err, &ie):
		default:
			t.Fatalf("untyped error escaped: %T %v", err, err)
		}
		return
	}
	if res == nil {
		t.Fatal("nil error and nil result")
	}
	if res.Circuit == nil {
		t.Fatal("success with nil circuit")
	}
	if verr := dev.VerifyCompliant(res.Circuit); verr != nil {
		t.Fatalf("success with non-compliant circuit: %v", verr)
	}
	if res.Depth <= 0 || res.GateCount <= 0 {
		t.Fatalf("success with empty accounting: depth=%d gates=%d", res.Depth, res.GateCount)
	}
	if res.Initial == nil || res.Final == nil {
		t.Fatal("success without layouts")
	}
	if res.Fallback == nil {
		t.Fatal("resilient success without FallbackInfo")
	}
	if res.Fallback.Degraded && res.Fallback.Reason == "" {
		t.Fatalf("degraded without a reason: %+v", res.Fallback)
	}
}

func TestCompileResilientCombinedStress(t *testing.T) {
	devices := stressDevices(t)
	params := qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}}

	faultAxis := []struct {
		name string
		make func() *faultinject.PassFaults
	}{
		{"clean", func() *faultinject.PassFaults { return &faultinject.PassFaults{} }},
		{"errors", func() *faultinject.PassFaults { return &faultinject.PassFaults{ErrorEvery: 3} }},
		{"panics", func() *faultinject.PassFaults { return &faultinject.PassFaults{PanicEvery: 4} }},
		{"storm", func() *faultinject.PassFaults {
			return &faultinject.PassFaults{ErrorEvery: 5, PanicEvery: 7, Latency: 200 * time.Microsecond}
		}},
	}
	deadlineAxis := []struct {
		name string
		d    time.Duration // 0 = none, -1 = pre-expired
	}{
		{"no-deadline", 0},
		{"near-expired", 2 * time.Millisecond},
		{"expired", -1},
	}

	// Fixed iteration order: the per-subtest seed depends on position, and
	// randomized map order would make failures non-reproducible.
	devOrder := []string{"tokyo", "melbourne", "tokyo-degraded", "melbourne-degraded"}
	seed := int64(0)
	for _, devName := range devOrder {
		dev := devices[devName]
		for _, fc := range faultAxis {
			for _, dc := range deadlineAxis {
				for _, preset := range compile.Presets {
					seed++
					name := devName + "/" + fc.name + "/" + dc.name + "/" + preset.String()
					localSeed := seed
					t.Run(name, func(t *testing.T) {
						prob := stressProblem(t, 8, localSeed)
						ctx := context.Background()
						switch {
						case dc.d > 0:
							var cancel context.CancelFunc
							ctx, cancel = context.WithTimeout(ctx, dc.d)
							defer cancel()
						case dc.d < 0:
							var cancel context.CancelFunc
							ctx, cancel = context.WithTimeout(ctx, time.Nanosecond)
							defer cancel()
							<-ctx.Done()
						}
						faults := fc.make()
						res, err := compile.CompileResilient(ctx, prob, params, dev, preset,
							compile.FallbackOptions{
								Seed:    localSeed,
								Retries: 1,
								Backoff: 100 * time.Microsecond,
								Hook:    faults.Hook(),
							})
						checkAllOrNothing(t, dev, res, err)
						if dc.d < 0 && err == nil {
							t.Fatal("compile succeeded on a pre-expired context")
						}
					})
				}
			}
		}
	}
}

// TestCompileResilientStressDeterminism re-runs a faulty configuration and
// demands bit-identical outcomes: same error chain or same circuit text.
// Fault injection is call-counted, so a fresh PassFaults per run replays
// the identical fault schedule.
func TestCompileResilientStressDeterminism(t *testing.T) {
	devices := stressDevices(t)
	params := qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}}
	for _, devName := range []string{"tokyo", "melbourne-degraded"} {
		dev := devices[devName]
		for run := 0; run < 2; run++ {
			var firstErr, secondErr string
			var firstCirc, secondCirc string
			for i := 0; i < 2; i++ {
				prob := stressProblem(t, 10, 42)
				faults := &faultinject.PassFaults{ErrorEvery: 4}
				res, err := compile.CompileResilient(context.Background(), prob, params, dev,
					compile.PresetVIC, compile.FallbackOptions{
						Seed: 42, Retries: 1, Backoff: time.Microsecond, Hook: faults.Hook(),
					})
				errText, circText := "", ""
				if err != nil {
					errText = err.Error()
				} else {
					circText = res.Circuit.String()
				}
				if i == 0 {
					firstErr, firstCirc = errText, circText
				} else {
					secondErr, secondCirc = errText, circText
				}
			}
			if firstErr != secondErr || firstCirc != secondCirc {
				t.Fatalf("%s: non-deterministic under identical fault schedule:\nerr %q vs %q",
					devName, firstErr, secondErr)
			}
		}
	}
}
