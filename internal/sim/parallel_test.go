package sim

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// Parallel and serial gate application must agree bit for bit (the chunked
// loops touch disjoint amplitude pairs).
func TestParallelMatchesSerial(t *testing.T) {
	saved := ParallelThreshold
	defer func() { ParallelThreshold = saved }()

	rng := rand.New(rand.NewSource(1))
	const n = 10
	c := randomCircuit(n, 60, rng)

	ParallelThreshold = 1 << 30 // force serial
	serial := NewState(n).Run(c)
	ParallelThreshold = 1 // force parallel on every gate
	parallel := NewState(n).Run(c)

	for i := range serial.Amp {
		if cmplx.Abs(serial.Amp[i]-parallel.Amp[i]) > 1e-12 {
			t.Fatalf("amplitude %d differs: %v vs %v", i, serial.Amp[i], parallel.Amp[i])
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	saved := ParallelThreshold
	defer func() { ParallelThreshold = saved }()
	ParallelThreshold = 4

	hits := make([]int32, 1000)
	parallelFor(len(hits), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	// Serial path (n below threshold after restore).
	ParallelThreshold = 1 << 30
	count := 0
	parallelFor(10, func(lo, hi int) { count += hi - lo })
	if count != 10 {
		t.Errorf("serial path covered %d of 10", count)
	}
}

// BenchmarkApply1QLarge exercises the parallel fan-out on a 20-qubit state.
func BenchmarkApply1QLarge(b *testing.B) {
	s := NewState(20)
	s.Apply1Q(0, matH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply1Q(i%20, matH)
	}
}

// BenchmarkApplyZZLarge exercises the parallel diagonal path.
func BenchmarkApplyZZLarge(b *testing.B) {
	s := NewState(20)
	for q := 0; q < 20; q++ {
		s.Apply1Q(q, matH)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyZZ(i%20, (i+1)%20, 0.3)
	}
}
