package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func TestNewStateGround(t *testing.T) {
	s := NewState(3)
	if len(s.Amp) != 8 {
		t.Fatalf("amp len = %d", len(s.Amp))
	}
	if s.Amp[0] != 1 {
		t.Errorf("amp[0] = %v", s.Amp[0])
	}
	if !approx(s.Norm(), 1) {
		t.Errorf("norm = %v", s.Norm())
	}
	if !approx(s.Probability(0), 1) {
		t.Errorf("P(0) = %v", s.Probability(0))
	}
}

func TestNewStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized state accepted")
		}
	}()
	NewState(MaxQubits + 1)
}

func TestHadamardUniform(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(0, matH)
	s.Apply1Q(1, matH)
	for x := uint64(0); x < 4; x++ {
		if !approx(s.Probability(x), 0.25) {
			t.Errorf("P(%d) = %v, want 0.25", x, s.Probability(x))
		}
	}
}

func TestHadamardInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomState(3, rng)
	ref := s.Clone()
	s.Apply1Q(1, matH)
	s.Apply1Q(1, matH)
	if f := FidelityOverlap(s, ref); !approx(f, 1) {
		t.Errorf("HH != I, overlap %v", f)
	}
}

func TestXFlip(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(1, matX)
	if !approx(s.Probability(2), 1) {
		t.Errorf("X on qubit 1: P(10b) = %v", s.Probability(2))
	}
}

func TestCNOTTruthTable(t *testing.T) {
	for in := uint64(0); in < 4; in++ {
		s := NewState(2)
		if in&1 != 0 {
			s.Apply1Q(0, matX)
		}
		if in&2 != 0 {
			s.Apply1Q(1, matX)
		}
		s.ApplyCNOT(0, 1) // control qubit 0, target qubit 1
		want := in
		if in&1 != 0 {
			want ^= 2
		}
		if !approx(s.Probability(want), 1) {
			t.Errorf("CNOT|%02b⟩: P(%02b) = %v", in, want, s.Probability(want))
		}
	}
}

func TestCZPhase(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(0, matX)
	s.Apply1Q(1, matX) // |11⟩
	s.ApplyCZ(0, 1)
	if !approx(real(s.Amp[3]), -1) {
		t.Errorf("CZ|11⟩ amp = %v, want -1", s.Amp[3])
	}
	s2 := NewState(2)
	s2.Apply1Q(0, matX) // |01⟩
	s2.ApplyCZ(0, 1)
	if !approx(real(s2.Amp[1]), 1) {
		t.Errorf("CZ|01⟩ amp = %v, want 1", s2.Amp[1])
	}
}

func TestSwap(t *testing.T) {
	s := NewState(3)
	s.Apply1Q(0, matX) // |001⟩
	s.ApplySwap(0, 2)
	if !approx(s.Probability(4), 1) {
		t.Errorf("Swap: P(100b) = %v", s.Probability(4))
	}
}

func TestZZPhases(t *testing.T) {
	theta := 0.7
	for x := uint64(0); x < 4; x++ {
		s := NewState(2)
		if x&1 != 0 {
			s.Apply1Q(0, matX)
		}
		if x&2 != 0 {
			s.Apply1Q(1, matX)
		}
		s.ApplyZZ(0, 1, theta)
		sign := -1.0 // bits agree
		if (x&1 != 0) != (x&2 != 0) {
			sign = 1.0
		}
		want := cmplx.Exp(complex(0, sign*theta/2))
		if cmplx.Abs(s.Amp[x]-want) > 1e-9 {
			t.Errorf("ZZ|%02b⟩ amp = %v, want %v", x, s.Amp[x], want)
		}
	}
}

// ZZ must equal its CNOT·RZ·CNOT decomposition exactly (not just up to
// global phase) — the identity the compiler relies on.
func TestZZEqualsCNOTDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomState(3, rng)
	b := a.Clone()
	theta := 1.234
	a.ApplyZZ(0, 2, theta)
	b.ApplyCNOT(0, 2)
	b.Apply1Q(2, MatRZ(theta))
	b.ApplyCNOT(0, 2)
	for i := range a.Amp {
		if cmplx.Abs(a.Amp[i]-b.Amp[i]) > 1e-9 {
			t.Fatalf("amp %d differs: %v vs %v", i, a.Amp[i], b.Amp[i])
		}
	}
}

func TestU3SpecialCases(t *testing.T) {
	// U3(π,0,π) = X up to global phase; U2(0,π) = H exactly.
	rng := rand.New(rand.NewSource(3))
	a := RandomState(2, rng)
	b := a.Clone()
	a.Apply1Q(0, matX)
	b.Apply1Q(0, MatU3(math.Pi, 0, math.Pi))
	if f := FidelityOverlap(a, b); !approx(f, 1) {
		t.Errorf("U3(π,0,π) vs X overlap = %v", f)
	}
	a2 := RandomState(2, rng)
	b2 := a2.Clone()
	a2.Apply1Q(1, matH)
	b2.Apply1Q(1, MatU2(0, math.Pi))
	if f := FidelityOverlap(a2, b2); !approx(f, 1) {
		t.Errorf("U2(0,π) vs H overlap = %v", f)
	}
}

func TestU1IsRZUpToPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandomState(2, rng)
	b := a.Clone()
	a.Apply1Q(0, MatRZ(0.9))
	b.Apply1Q(0, MatU1(0.9))
	if f := FidelityOverlap(a, b); !approx(f, 1) {
		t.Errorf("RZ vs U1 overlap = %v", f)
	}
}

func randomCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.Append(circuit.NewH(rng.Intn(n)))
		case 1:
			c.Append(circuit.NewRX(rng.Intn(n), rng.Float64()*2*math.Pi))
		case 2:
			c.Append(circuit.NewRZ(rng.Intn(n), rng.Float64()*2*math.Pi))
		case 3:
			c.Append(circuit.NewRY(rng.Intn(n), rng.Float64()*2*math.Pi))
		case 4:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCNOT(a, b))
		case 5:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCPhase(a, b, rng.Float64()*2*math.Pi))
		case 6:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewSwap(a, b))
		default:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCZ(a, b))
		}
	}
	return c
}

func twoDistinct(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Property: unitarity — random circuits preserve the norm.
func TestRandomCircuitPreservesNorm(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(n, 30, rng)
		s := NewState(n).Run(c)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the IBM-basis decomposition is equivalent up to global phase.
func TestDecomposeEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(n, 25, rng)
		a := NewState(n).Run(c)
		b := NewState(n).Run(c.Decompose(circuit.BasisIBM))
		return math.Abs(FidelityOverlap(a, b)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: CPhase gates commute — any permutation of a cost layer yields
// the identical state. This is the physical fact the whole paper exploits.
func TestCPhaseCommutation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		// Build a random set of CPhase gates.
		var gs []circuit.Gate
		for i := 0; i < 8; i++ {
			a, b := twoDistinct(n, rng)
			gs = append(gs, circuit.NewCPhase(a, b, rng.Float64()*2*math.Pi))
		}
		c1 := circuit.New(n)
		for q := 0; q < n; q++ {
			c1.Append(circuit.NewH(q))
		}
		c2 := c1.Clone()
		c1.Append(gs...)
		perm := rng.Perm(len(gs))
		for _, i := range perm {
			c2.Append(gs[i])
		}
		a := NewState(n).Run(c1)
		b := NewState(n).Run(c2)
		for i := range a.Amp {
			if cmplx.Abs(a.Amp[i]-b.Amp[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewState(1)
	s.Apply1Q(0, matH)
	samples := s.Sample(rng, 20000)
	ones := 0
	for _, x := range samples {
		if x == 1 {
			ones++
		}
	}
	frac := float64(ones) / 20000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("|+⟩ sampling gave %v ones fraction", frac)
	}
}

func TestSampleDeterministicState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewState(3)
	s.Apply1Q(0, matX)
	s.Apply1Q(2, matX)
	for _, x := range s.Sample(rng, 100) {
		if x != 5 {
			t.Fatalf("sample %b from |101⟩", x)
		}
	}
}

func TestExpectationDiagonal(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(0, matH)
	s.Apply1Q(1, matH)
	// f(x) = popcount; uniform state over 2 qubits has mean 1.
	got := s.ExpectationDiagonal(func(x uint64) float64 {
		return float64((x & 1) + (x>>1)&1)
	})
	if !approx(got, 1) {
		t.Errorf("⟨popcount⟩ = %v, want 1", got)
	}
}

func TestResetAndClone(t *testing.T) {
	s := NewState(2)
	s.Apply1Q(0, matH)
	c := s.Clone()
	s.Reset()
	if !approx(s.Probability(0), 1) {
		t.Error("Reset did not restore ground state")
	}
	if approx(c.Probability(0), 1) {
		t.Error("Clone shares storage with original")
	}
}

func TestRunPanicsOnOversizedCircuit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run accepted circuit larger than state")
		}
	}()
	NewState(2).Run(circuit.New(3))
}
