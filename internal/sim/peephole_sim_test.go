package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// Property: Peephole preserves the circuit's action up to global phase and
// never increases the gate count. Lives here (not in package circuit)
// because the check needs the simulator.
func TestPeepholePreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(n, 40, rng)
		// Inject deliberate redundancy so the optimizer has work to do.
		for i := 0; i < 6; i++ {
			q := rng.Intn(n)
			c.Append(circuit.NewH(q), circuit.NewH(q))
		}
		opt := circuit.Peephole(c)
		if opt.Len() > c.Len() {
			return false
		}
		a := NewState(n).Run(c)
		b := NewState(n).Run(opt)
		return math.Abs(FidelityOverlap(a, b)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Peephole after decomposition must also preserve semantics (the U1 merges
// and CNOT cancellations interact).
func TestPeepholeNativeSemantics(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomCircuit(n, 30, rng).Decompose(circuit.BasisIBM)
		opt := circuit.Peephole(c)
		a := NewState(n).Run(c)
		b := NewState(n).Run(opt)
		return math.Abs(FidelityOverlap(a, b)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
