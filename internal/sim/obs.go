package sim

import (
	"sync/atomic"

	"repro/internal/obsv"
)

// Package-level observability collector. The simulator is called from deep
// inside the sweep harness and the optimization loop, whose call chains
// mirror the paper's experiment signatures; rather than threading a
// collector through every one of them, it is installed here (mirroring the
// exp fault-report collector). Atomic, so concurrent trajectory fan-outs
// may run while it is swapped.
var simObs atomic.Pointer[obsv.Collector]

// SetCollector installs (or, with nil, removes) the collector that receives
// the simulator counters: sim/runs, sim/gates, sim/amp_ops (gate count ×
// state-vector length — the work measure of a run), sim/noisy_shots and
// sim/trajectories. Counters are batched once per run/sampling call, so the
// per-amplitude hot loops never touch the collector.
func SetCollector(c *obsv.Collector) { simObs.Store(c) }

// Collector returns the installed collector (nil when observability is
// disabled).
func Collector() *obsv.Collector { return simObs.Load() }
