package sim

import (
	"fmt"
	"math/cmplx"
)

// ExpectationPauli returns ⟨ψ|P|ψ⟩ for a Pauli string P given as a text
// label over {I,X,Y,Z}, where label[k] acts on qubit k (so "ZZI" measures
// Z₀Z₁). The result of a Hermitian observable is real; the real part is
// returned. Useful for verifying that compiled circuits preserve arbitrary
// observables, not just the diagonal cost.
func (s *State) ExpectationPauli(label string) (float64, error) {
	if len(label) != s.N {
		return 0, fmt.Errorf("sim: Pauli label %q has %d terms for %d qubits", label, len(label), s.N)
	}
	// φ = P|ψ⟩ computed amplitude-wise: P maps basis state |x⟩ to
	// phase(x)·|x⊕flip⟩ where flip has a bit per X/Y and the phase collects
	// i per Y (sign by bit) and −1 per Z-bit set.
	var flip uint64
	var yMask, zMask uint64
	for k := 0; k < s.N; k++ {
		switch label[k] {
		case 'I', 'i':
		case 'X', 'x':
			flip |= 1 << uint(k)
		case 'Y', 'y':
			flip |= 1 << uint(k)
			yMask |= 1 << uint(k)
		case 'Z', 'z':
			zMask |= 1 << uint(k)
		default:
			return 0, fmt.Errorf("sim: invalid Pauli %q at position %d", label[k], k)
		}
	}
	var dot complex128
	for x := range s.Amp {
		ux := uint64(x)
		// amplitude of P|ψ⟩ at x comes from ψ[x⊕flip].
		src := ux ^ flip
		phase := complex(1, 0)
		// Y contributes i·(−1)^{bit of source}: Y|0⟩=i|1⟩, Y|1⟩=−i|0⟩.
		for m := yMask; m != 0; m &= m - 1 {
			bit := m & -m
			if src&bit != 0 {
				phase *= complex(0, -1)
			} else {
				phase *= complex(0, 1)
			}
		}
		for m := zMask; m != 0; m &= m - 1 {
			bit := m & -m
			if src&bit != 0 {
				phase = -phase
			}
		}
		dot += cmplx.Conj(s.Amp[ux]) * phase * s.Amp[src]
	}
	return real(dot), nil
}
