package sim

import (
	"math"
	"math/cmplx"
)

// Fixed one-qubit unitaries.
var (
	invSqrt2 = complex(1/math.Sqrt2, 0)

	matH = [2][2]complex128{
		{invSqrt2, invSqrt2},
		{invSqrt2, -invSqrt2},
	}
	matX = [2][2]complex128{
		{0, 1},
		{1, 0},
	}
	matY = [2][2]complex128{
		{0, complex(0, -1)},
		{complex(0, 1), 0},
	}
	matZ = [2][2]complex128{
		{1, 0},
		{0, -1},
	}
)

// MatRX returns the X-rotation exp(-i θ/2 X).
func MatRX(theta float64) [2][2]complex128 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return [2][2]complex128{{c, s}, {s, c}}
}

// MatRY returns the Y-rotation exp(-i θ/2 Y).
func MatRY(theta float64) [2][2]complex128 {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return [2][2]complex128{{c, -s}, {s, c}}
}

// MatRZ returns the Z-rotation exp(-i θ/2 Z) = diag(e^{-iθ/2}, e^{iθ/2}).
func MatRZ(theta float64) [2][2]complex128 {
	return [2][2]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

// MatU1 returns the IBM phase gate diag(1, e^{iλ}) — RZ(λ) up to global
// phase.
func MatU1(lambda float64) [2][2]complex128 {
	return [2][2]complex128{
		{1, 0},
		{0, cmplx.Exp(complex(0, lambda))},
	}
}

// MatU2 returns the IBM gate U2(φ,λ) = U3(π/2, φ, λ).
func MatU2(phi, lambda float64) [2][2]complex128 {
	return MatU3(math.Pi/2, phi, lambda)
}

// MatU3 returns the general IBM one-qubit gate
//
//	U3(θ,φ,λ) = [[cos(θ/2),            -e^{iλ}   sin(θ/2)],
//	             [e^{iφ} sin(θ/2),      e^{i(φ+λ)} cos(θ/2)]].
func MatU3(theta, phi, lambda float64) [2][2]complex128 {
	c := math.Cos(theta / 2)
	s := math.Sin(theta / 2)
	return [2][2]complex128{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(s, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(s, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	}
}
