package sim

import (
	"fmt"
	"math"
)

// Histogram counts measurement outcomes.
func Histogram(samples []uint64) map[uint64]int {
	h := make(map[uint64]int)
	for _, x := range samples {
		h[x]++
	}
	return h
}

// TotalVariation returns the total-variation distance between two outcome
// histograms (each normalized to a distribution first): ½ Σ|p−q| ∈ [0,1].
func TotalVariation(p, q map[uint64]int) float64 {
	var np, nq float64
	for _, c := range p {
		np += float64(c)
	}
	for _, c := range q {
		nq += float64(c)
	}
	if np == 0 || nq == 0 {
		return 0
	}
	keys := make(map[uint64]bool, len(p)+len(q))
	for k := range p {
		keys[k] = true
	}
	for k := range q {
		keys[k] = true
	}
	var tv float64
	for k := range keys {
		tv += math.Abs(float64(p[k])/np - float64(q[k])/nq)
	}
	return tv / 2
}

// MitigateReadout inverts independent per-qubit readout errors on a
// measured histogram: each qubit's confusion matrix [[1−e, e],[e, 1−e]] is
// inverted and applied to the outcome distribution, recovering an unbiased
// estimate of the pre-readout probabilities (the standard tensored
// measurement-error mitigation). The result is a quasi-probability vector
// over all 2^n outcomes — entries may dip slightly below zero at finite
// shots; ClampDistribution projects it back to a proper distribution.
// Error rates must be below 0.5 (beyond that the channel is not invertible
// in a useful direction).
func MitigateReadout(counts map[uint64]int, n int, readout []float64) ([]float64, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d outside (0,%d]", n, MaxQubits)
	}
	if len(readout) != n {
		return nil, fmt.Errorf("sim: %d readout errors for %d qubits", len(readout), n)
	}
	total := 0
	for x, c := range counts {
		if x >= 1<<uint(n) {
			return nil, fmt.Errorf("sim: outcome %b exceeds %d qubits", x, n)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("sim: empty histogram")
	}
	p := make([]float64, 1<<uint(n))
	for x, c := range counts {
		p[x] = float64(c) / float64(total)
	}
	for q, e := range readout {
		if e < 0 || e >= 0.5 {
			return nil, fmt.Errorf("sim: readout error %v on qubit %d outside [0, 0.5)", e, q)
		}
		if e == 0 {
			continue
		}
		// Inverse confusion matrix: 1/(1−2e) · [[1−e, −e], [−e, 1−e]].
		inv := 1 / (1 - 2*e)
		a := (1 - e) * inv
		b := -e * inv
		bit := 1 << uint(q)
		for i := range p {
			if i&bit != 0 {
				continue
			}
			j := i | bit
			p0, p1 := p[i], p[j]
			p[i] = a*p0 + b*p1
			p[j] = b*p0 + a*p1
		}
	}
	return p, nil
}

// ClampDistribution projects a quasi-probability vector onto the
// probability simplex by zeroing negative entries and renormalizing.
func ClampDistribution(p []float64) []float64 {
	out := make([]float64, len(p))
	var sum float64
	for i, v := range p {
		if v > 0 {
			out[i] = v
			sum += v
		}
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}

// ExpectationFromDistribution evaluates a diagonal observable against an
// outcome distribution (mitigated or raw).
func ExpectationFromDistribution(p []float64, f func(x uint64) float64) float64 {
	var e float64
	for x, v := range p {
		if v != 0 {
			e += v * f(uint64(x))
		}
	}
	return e
}
