package sim

import (
	"runtime"
	"sync"
)

// ParallelThreshold is the amplitude count above which gate application
// fans out across CPU cores. States at or below it (≤ 17 qubits, the scale
// of the paper's experiments) stay single-threaded — goroutine overhead
// dominates there.
var ParallelThreshold = 1 << 18

// parallelFor runs f over [0,n) in contiguous chunks across GOMAXPROCS
// goroutines when n exceeds ParallelThreshold, serially otherwise.
func parallelFor(n int, f func(lo, hi int)) {
	if n <= ParallelThreshold {
		f(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// apply1QParallel is the fan-out variant of Apply1Q: amplitude pair k is
// (i, i|bit) with i = (k &^ (bit−1))<<1 | (k & (bit−1)); pairs are
// independent, so chunking over k is safe.
//
//qaoa:hotpath
func (s *State) apply1QParallel(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	mask := bit - 1
	pairs := len(s.Amp) >> 1
	parallelFor(pairs, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i := (k&^mask)<<1 | (k & mask)
			j := i | bit
			a0, a1 := s.Amp[i], s.Amp[j]
			s.Amp[i] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[j] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}
