package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestExpectationPauliSingleQubit(t *testing.T) {
	zero := NewState(1)
	one := NewState(1)
	one.Apply1Q(0, matX)
	plus := NewState(1)
	plus.Apply1Q(0, matH)
	iPlus := NewState(1) // (|0⟩ + i|1⟩)/√2 = RX(-π/2)|0⟩
	iPlus.Apply1Q(0, MatRX(-math.Pi/2))

	cases := []struct {
		name  string
		s     *State
		label string
		want  float64
	}{
		{"⟨0|Z|0⟩", zero, "Z", 1},
		{"⟨1|Z|1⟩", one, "Z", -1},
		{"⟨0|X|0⟩", zero, "X", 0},
		{"⟨+|X|+⟩", plus, "X", 1},
		{"⟨+|Z|+⟩", plus, "Z", 0},
		{"⟨i|Y|i⟩", iPlus, "Y", 1},
		{"⟨0|I|0⟩", zero, "I", 1},
	}
	for _, tc := range cases {
		got, err := tc.s.ExpectationPauli(tc.label)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestExpectationPauliBell(t *testing.T) {
	bell := NewState(2)
	bell.Apply1Q(0, matH)
	bell.ApplyCNOT(0, 1)
	for _, tc := range []struct {
		label string
		want  float64
	}{
		{"ZZ", 1}, {"XX", 1}, {"YY", -1}, {"ZI", 0}, {"IZ", 0}, {"XY", 0},
	} {
		got, err := bell.ExpectationPauli(tc.label)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Bell ⟨%s⟩ = %v, want %v", tc.label, got, tc.want)
		}
	}
}

func TestExpectationPauliErrors(t *testing.T) {
	s := NewState(2)
	if _, err := s.ExpectationPauli("Z"); err == nil {
		t.Error("short label accepted")
	}
	if _, err := s.ExpectationPauli("ZQ"); err == nil {
		t.Error("invalid Pauli accepted")
	}
}

// Z-string expectations must agree with the diagonal-observable path.
func TestExpectationPauliMatchesDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := RandomState(5, rng)
	for trial := 0; trial < 20; trial++ {
		var mask uint64
		label := make([]byte, 5)
		for k := range label {
			if rng.Intn(2) == 0 {
				label[k] = 'I'
			} else {
				label[k] = 'Z'
				mask |= 1 << uint(k)
			}
		}
		want := s.ExpectationDiagonal(func(x uint64) float64 {
			if popcount(x&mask)%2 == 0 {
				return 1
			}
			return -1
		})
		got, err := s.ExpectationPauli(string(label))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("⟨%s⟩ = %v, diagonal path %v", label, got, want)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Expectations of Hermitian Paulis on random states stay within [-1, 1].
func TestExpectationPauliBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := RandomState(4, rng)
	paulis := []string{"XYZI", "YYYY", "XXZZ", "IZXI"}
	for _, p := range paulis {
		got, err := s.ExpectationPauli(p)
		if err != nil {
			t.Fatal(err)
		}
		if got < -1-1e-9 || got > 1+1e-9 {
			t.Errorf("⟨%s⟩ = %v outside [-1,1]", p, got)
		}
	}
}
