package sim

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/device"
)

// NoiseModel is a stochastic Pauli error model: after each gate a random
// Pauli fault is injected with the gate's error probability, and measured
// bits are flipped with the per-qubit readout error. Error accumulation
// therefore grows with gate count, and longer idle-free circuits decohere
// more — the coupling the ARG experiments of Fig. 11(b) rely on.
type NoiseModel struct {
	// OneQubit is the fault probability per one-qubit gate.
	OneQubit float64
	// TwoQubit maps canonical physical edges {u<v} to the per-CNOT fault
	// probability; gates that decompose into k CNOTs draw k times.
	TwoQubit map[[2]int]float64
	// TwoQubitDefault is used for edges absent from TwoQubit.
	TwoQubitDefault float64
	// Readout is the per-qubit measurement bit-flip probability (nil: ideal).
	Readout []float64
}

// NoiseFromDevice builds a NoiseModel from a device's calibration snapshot.
// It panics if the device has no calibration.
func NoiseFromDevice(d *device.Device) *NoiseModel {
	if d.Calib == nil {
		panic("sim: device " + d.Name + " has no calibration")
	}
	nm := &NoiseModel{
		OneQubit: d.Calib.SingleQubitError,
		TwoQubit: make(map[[2]int]float64, len(d.Calib.CNOTError)),
	}
	for k, v := range d.Calib.CNOTError {
		nm.TwoQubit[k] = v
	}
	if d.Calib.ReadoutError != nil {
		nm.Readout = append([]float64(nil), d.Calib.ReadoutError...)
	}
	return nm
}

func (nm *NoiseModel) twoQubitError(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if e, ok := nm.TwoQubit[[2]int{a, b}]; ok {
		return e
	}
	return nm.TwoQubitDefault
}

// injectPauli2 applies a uniformly random non-identity two-qubit Pauli
// (one of the 15 products P⊗Q ≠ I⊗I) to qubits a, b.
func injectPauli2(s *State, a, b int, rng *rand.Rand) {
	k := 1 + rng.Intn(15) // 1..15, base-4 digits choose I/X/Y/Z per qubit
	applyPauliDigit(s, a, k&3)
	applyPauliDigit(s, b, (k>>2)&3)
}

func applyPauliDigit(s *State, q, digit int) {
	switch digit {
	case 1:
		s.Apply1Q(q, matX)
	case 2:
		s.Apply1Q(q, matY)
	case 3:
		s.Apply1Q(q, matZ)
	}
}

// RunNoisy executes one noisy trajectory of c from |0…0⟩: every gate is
// applied ideally and followed by a probabilistic Pauli fault. The returned
// state is a single sample of the noisy process; average observables over
// many trajectories. The fault sites are drawn up front (the state
// evolution consumes no randomness, so the caller's RNG stream is consumed
// draw-for-draw as in the interleaved formulation). A fault-free trajectory
// runs entirely through the fused fast path; a faulty one applies the
// gates up to its first fault site directly and finishes through the fused
// fault suffix — the exact computation the Executor's checkpoint replay
// performs, so the two agree bit for bit on the same plan.
func RunNoisy(c *circuit.Circuit, nm *NoiseModel, rng *rand.Rand) *State {
	faults := drawFaults(c, nm, rng, nil)
	s := NewState(c.NQubits)
	if len(faults) == 0 {
		return Fuse(c).RunOn(s)
	}
	for gi := 0; gi <= faults[0].gate; gi++ {
		s.ApplyGate(c.Gates[gi])
	}
	faultSuffixProgram(c, faults).apply(s)
	return s
}

// SampleNoisy draws shots measurement outcomes from the noisy execution of
// c, spreading them over the given number of independent Pauli-fault
// trajectories and applying readout bit-flips to every sample. It is the
// one-shot form of Executor.SampleNoisy (which amortizes the fused program
// and ideal state across calls); see there for the trajectory substream and
// checkpoint-replay semantics.
func SampleNoisy(c *circuit.Circuit, nm *NoiseModel, shots, trajectories int, rng *rand.Rand) []uint64 {
	return NewExecutor(c).SampleNoisy(nm, shots, trajectories, rng)
}

func flipReadout(x uint64, readout []float64, rng *rand.Rand) uint64 {
	for q, e := range readout {
		if e > 0 && rng.Float64() < e {
			x ^= 1 << uint(q)
		}
	}
	return x
}
