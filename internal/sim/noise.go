package sim

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/obsv"
)

// NoiseModel is a stochastic Pauli error model: after each gate a random
// Pauli fault is injected with the gate's error probability, and measured
// bits are flipped with the per-qubit readout error. Error accumulation
// therefore grows with gate count, and longer idle-free circuits decohere
// more — the coupling the ARG experiments of Fig. 11(b) rely on.
type NoiseModel struct {
	// OneQubit is the fault probability per one-qubit gate.
	OneQubit float64
	// TwoQubit maps canonical physical edges {u<v} to the per-CNOT fault
	// probability; gates that decompose into k CNOTs draw k times.
	TwoQubit map[[2]int]float64
	// TwoQubitDefault is used for edges absent from TwoQubit.
	TwoQubitDefault float64
	// Readout is the per-qubit measurement bit-flip probability (nil: ideal).
	Readout []float64
}

// NoiseFromDevice builds a NoiseModel from a device's calibration snapshot.
// It panics if the device has no calibration.
func NoiseFromDevice(d *device.Device) *NoiseModel {
	if d.Calib == nil {
		panic("sim: device " + d.Name + " has no calibration")
	}
	nm := &NoiseModel{
		OneQubit: d.Calib.SingleQubitError,
		TwoQubit: make(map[[2]int]float64, len(d.Calib.CNOTError)),
	}
	for k, v := range d.Calib.CNOTError {
		nm.TwoQubit[k] = v
	}
	if d.Calib.ReadoutError != nil {
		nm.Readout = append([]float64(nil), d.Calib.ReadoutError...)
	}
	return nm
}

func (nm *NoiseModel) twoQubitError(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if e, ok := nm.TwoQubit[[2]int{a, b}]; ok {
		return e
	}
	return nm.TwoQubitDefault
}

// injectPauli1 applies a uniformly random non-identity Pauli to qubit q.
func injectPauli1(s *State, q int, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		s.Apply1Q(q, matX)
	case 1:
		s.Apply1Q(q, matY)
	default:
		s.Apply1Q(q, matZ)
	}
}

// injectPauli2 applies a uniformly random non-identity two-qubit Pauli
// (one of the 15 products P⊗Q ≠ I⊗I) to qubits a, b.
func injectPauli2(s *State, a, b int, rng *rand.Rand) {
	k := 1 + rng.Intn(15) // 1..15, base-4 digits choose I/X/Y/Z per qubit
	applyPauliDigit(s, a, k&3)
	applyPauliDigit(s, b, (k>>2)&3)
}

func applyPauliDigit(s *State, q, digit int) {
	switch digit {
	case 1:
		s.Apply1Q(q, matX)
	case 2:
		s.Apply1Q(q, matY)
	case 3:
		s.Apply1Q(q, matZ)
	}
}

// RunNoisy executes one noisy trajectory of c from |0…0⟩: every gate is
// applied ideally and followed by a probabilistic Pauli fault. The returned
// state is a single sample of the noisy process; average observables over
// many trajectories.
func RunNoisy(c *circuit.Circuit, nm *NoiseModel, rng *rand.Rand) *State {
	s := NewState(c.NQubits)
	for _, g := range c.Gates {
		s.ApplyGate(g)
		switch {
		case g.Kind == circuit.Barrier || g.Kind == circuit.Measure:
		case g.Arity() == 2:
			e := nm.twoQubitError(g.Q0, g.Q1)
			for i := 0; i < circuit.NativeCNOTCost(g.Kind); i++ {
				if rng.Float64() < e {
					injectPauli2(s, g.Q0, g.Q1, rng)
				}
			}
		default:
			if nm.OneQubit > 0 && rng.Float64() < nm.OneQubit {
				injectPauli1(s, g.Q0, rng)
			}
		}
	}
	return s
}

// SampleNoisy draws shots measurement outcomes from the noisy execution of
// c, spreading them over the given number of independent Pauli-fault
// trajectories and applying readout bit-flips to every sample.
func SampleNoisy(c *circuit.Circuit, nm *NoiseModel, shots, trajectories int, rng *rand.Rand) []uint64 {
	if trajectories < 1 {
		trajectories = 1
	}
	if trajectories > shots {
		trajectories = shots
	}
	out := make([]uint64, 0, shots)
	base := shots / trajectories
	extra := shots % trajectories
	for t := 0; t < trajectories; t++ {
		k := base
		if t < extra {
			k++
		}
		if k == 0 {
			continue
		}
		s := RunNoisy(c, nm, rng)
		samples := s.Sample(rng, k)
		if nm.Readout != nil {
			for i, x := range samples {
				samples[i] = flipReadout(x, nm.Readout, rng)
			}
		}
		out = append(out, samples...)
	}
	if col := Collector(); col.Enabled() {
		col.Add(obsv.CntSimNoisyShots, int64(len(out)))
		col.Add(obsv.CntSimTrajectories, int64(trajectories))
	}
	return out
}

func flipReadout(x uint64, readout []float64, rng *rand.Rand) uint64 {
	for q, e := range readout {
		if e > 0 && rng.Float64() < e {
			x ^= 1 << uint(q)
		}
	}
	return x
}
