package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
)

func bellCircuit() *circuit.Circuit {
	return circuit.New(2).Append(circuit.NewH(0), circuit.NewCNOT(0, 1))
}

func TestNoiseFromDevice(t *testing.T) {
	d := device.Melbourne15()
	nm := NoiseFromDevice(d)
	if got := nm.twoQubitError(1, 0); got != 1.87e-2 {
		t.Errorf("twoQubitError(1,0) = %v", got)
	}
	if nm.Readout == nil || len(nm.Readout) != 15 {
		t.Errorf("readout errors not copied")
	}
	if nm.OneQubit != d.Calib.SingleQubitError {
		t.Errorf("one-qubit error not copied")
	}
}

func TestNoiseFromDevicePanicsWithoutCalib(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for uncalibrated device")
		}
	}()
	NoiseFromDevice(device.Tokyo20())
}

func TestZeroNoiseMatchesIdeal(t *testing.T) {
	nm := &NoiseModel{}
	c := bellCircuit()
	rng := rand.New(rand.NewSource(1))
	noisy := RunNoisy(c, nm, rng)
	ideal := NewState(2).Run(c)
	if f := FidelityOverlap(noisy, ideal); math.Abs(f-1) > 1e-9 {
		t.Errorf("zero-noise trajectory diverges, overlap %v", f)
	}
}

func TestNoisyNormPreserved(t *testing.T) {
	nm := &NoiseModel{OneQubit: 0.3, TwoQubitDefault: 0.3}
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(4, 40, rng)
	s := RunNoisy(c, nm, rng)
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Errorf("noisy norm = %v", s.Norm())
	}
}

func TestNoiseDegradesFidelity(t *testing.T) {
	// With heavy noise, the average overlap with the ideal Bell state over
	// trajectories must drop well below 1.
	nm := &NoiseModel{TwoQubitDefault: 0.5}
	c := bellCircuit()
	ideal := NewState(2).Run(c)
	rng := rand.New(rand.NewSource(3))
	var avg float64
	const trials = 200
	for i := 0; i < trials; i++ {
		f := FidelityOverlap(RunNoisy(c, nm, rng), ideal)
		avg += f * f
	}
	avg /= trials
	if avg > 0.9 {
		t.Errorf("heavy noise kept average fidelity %v", avg)
	}
}

func TestSampleNoisyShotCount(t *testing.T) {
	nm := &NoiseModel{TwoQubitDefault: 0.05}
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ shots, traj int }{{100, 7}, {64, 64}, {10, 100}, {1, 1}} {
		got := SampleNoisy(bellCircuit(), nm, tc.shots, tc.traj, rng)
		if len(got) != tc.shots {
			t.Errorf("shots=%d traj=%d: got %d samples", tc.shots, tc.traj, len(got))
		}
	}
}

func TestSampleNoisyIdealBell(t *testing.T) {
	// Without noise, Bell samples are only 00 or 11 and roughly balanced.
	nm := &NoiseModel{}
	rng := rand.New(rand.NewSource(5))
	samples := SampleNoisy(bellCircuit(), nm, 4000, 4, rng)
	var n00, n11 int
	for _, x := range samples {
		switch x {
		case 0:
			n00++
		case 3:
			n11++
		default:
			t.Fatalf("ideal Bell sample %02b", x)
		}
	}
	if n00 < 1600 || n11 < 1600 {
		t.Errorf("Bell counts unbalanced: %d/%d", n00, n11)
	}
}

func TestReadoutErrorFlipsBits(t *testing.T) {
	// Certain readout error on qubit 0 deterministically flips it.
	nm := &NoiseModel{Readout: []float64{1, 0}}
	rng := rand.New(rand.NewSource(6))
	c := circuit.New(2) // state |00⟩
	samples := SampleNoisy(c, nm, 50, 1, rng)
	for _, x := range samples {
		if x != 1 {
			t.Fatalf("sample %02b, want 01 after certain flip of qubit 0", x)
		}
	}
}

func TestNoiseDeterministicWithSeed(t *testing.T) {
	nm := &NoiseModel{OneQubit: 0.05, TwoQubitDefault: 0.1, Readout: []float64{0.02, 0.02}}
	a := SampleNoisy(bellCircuit(), nm, 100, 10, rand.New(rand.NewSource(7)))
	b := SampleNoisy(bellCircuit(), nm, 100, 10, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed noisy sampling differs")
		}
	}
}

func TestInjectPauli2CoversBothQubits(t *testing.T) {
	// Statistically, two-qubit faults must sometimes touch each qubit.
	rng := rand.New(rand.NewSource(8))
	touched0, touched1 := false, false
	for i := 0; i < 200 && !(touched0 && touched1); i++ {
		s := NewState(2)
		injectPauli2(s, 0, 1, rng)
		// A fault changes the ground state iff it includes X or Y.
		if s.Probability(0) < 0.5 {
			p1 := s.Probability(1) + s.Probability(3)
			p2 := s.Probability(2) + s.Probability(3)
			if p1 > 0.5 {
				touched0 = true
			}
			if p2 > 0.5 {
				touched1 = true
			}
		}
	}
	if !touched0 || !touched1 {
		t.Error("two-qubit Pauli injection never flipped one of the qubits")
	}
}
