// Package sim implements a state-vector quantum-circuit simulator with a
// stochastic Pauli noise model. It provides the "ideal execution" and
// "noisy hardware execution" oracles used to compute the paper's
// Approximation Ratio Gap (ARG) metric, and is exact (up to float rounding)
// for the gate set of package circuit.
//
// Qubit q corresponds to bit q (1<<q) of a basis-state index, so basis state
// |b_{n-1} … b_1 b_0⟩ has index Σ b_q·2^q.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
)

// State is an n-qubit state vector of 2^n complex amplitudes.
type State struct {
	N   int
	Amp []complex128
}

// MaxQubits bounds the register size (2^24 amplitudes ≈ 256 MiB).
const MaxQubits = 24

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("sim: qubit count %d outside [0,%d]", n, MaxQubits))
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{N: n, Amp: amp}
}

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	amp := make([]complex128, len(s.Amp))
	copy(amp, s.Amp)
	return &State{N: s.N, Amp: amp}
}

// Reset returns s to |0…0⟩.
func (s *State) Reset() {
	for i := range s.Amp {
		s.Amp[i] = 0
	}
	s.Amp[0] = 1
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.Amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |⟨x|ψ⟩|² for basis state x.
func (s *State) Probability(x uint64) float64 {
	a := s.Amp[x]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Apply1Q applies the 2×2 unitary m to qubit q, fanning out across cores
// for large registers (see ParallelThreshold). The serial path dispatches
// on the matrix structure: the compiled gate set is dominated by real
// matrices (H, X, RY) and real-diagonal/imaginary-off-diagonal ones (RX),
// whose scalar kernels cost half the flops of a generic complex 2×2.
//
//qaoa:hotpath
func (s *State) Apply1Q(q int, m [2][2]complex128) {
	if len(s.Amp) > ParallelThreshold {
		s.apply1QParallel(q, m)
		return
	}
	bit := 1 << uint(q)
	if imag(m[0][0]) == 0 && imag(m[0][1]) == 0 && imag(m[1][0]) == 0 && imag(m[1][1]) == 0 {
		s.apply1QReal(bit, real(m[0][0]), real(m[0][1]), real(m[1][0]), real(m[1][1]))
		return
	}
	if imag(m[0][0]) == 0 && imag(m[1][1]) == 0 && real(m[0][1]) == 0 && real(m[1][0]) == 0 {
		s.apply1QCross(bit, real(m[0][0]), imag(m[0][1]), imag(m[1][0]), real(m[1][1]))
		return
	}
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	n := len(s.Amp)
	for base := 0; base < n; base += bit << 1 {
		lo := s.Amp[base : base+bit]
		hi := s.Amp[base+bit : base+bit+bit][:len(lo)]
		for k := range lo {
			a0, a1 := lo[k], hi[k]
			lo[k] = m00*a0 + m01*a1
			hi[k] = m10*a0 + m11*a1
		}
	}
}

// apply1QReal is Apply1Q for an all-real matrix: each output component is a
// real linear combination, so a pair costs 8 real multiplies instead of 16.
//
//qaoa:hotpath
func (s *State) apply1QReal(bit int, m00, m01, m10, m11 float64) {
	n := len(s.Amp)
	for base := 0; base < n; base += bit << 1 {
		lo := s.Amp[base : base+bit]
		hi := s.Amp[base+bit : base+bit+bit][:len(lo)]
		for k := range lo {
			a0, a1 := lo[k], hi[k]
			lo[k] = complex(m00*real(a0)+m01*real(a1), m00*imag(a0)+m01*imag(a1))
			hi[k] = complex(m10*real(a0)+m11*real(a1), m10*imag(a0)+m11*imag(a1))
		}
	}
}

// apply1QCross is Apply1Q for m = [[a, i·b], [i·c, d]] with a, b, c, d real
// (RX and Y have this shape): i·b·a1 contributes (-b·Im a1, b·Re a1), so the
// pair again costs 8 real multiplies.
//
//qaoa:hotpath
func (s *State) apply1QCross(bit int, a, b, c, d float64) {
	n := len(s.Amp)
	for base := 0; base < n; base += bit << 1 {
		lo := s.Amp[base : base+bit]
		hi := s.Amp[base+bit : base+bit+bit][:len(lo)]
		for k := range lo {
			a0, a1 := lo[k], hi[k]
			lo[k] = complex(a*real(a0)-b*imag(a1), a*imag(a0)+b*real(a1))
			hi[k] = complex(d*real(a1)-c*imag(a0), d*imag(a1)+c*real(a0))
		}
	}
}

// expand2 inserts zero bits at the two (distinct) bit positions given by
// the masks loBit < hiBit, mapping a compact index k ∈ [0, 2^{n-2}) to the
// unique basis index with both bits clear and the remaining bits of k in
// order. Combined with parallelFor this iterates exactly the touched
// subset of a two-qubit kernel instead of scanning all 2^n amplitudes.
//
//qaoa:hotpath
func expand2(k, loBit, hiBit int) int {
	loMask, hiMask := loBit-1, hiBit-1
	i := (k&^loMask)<<1 | (k & loMask)
	return (i&^hiMask)<<1 | (i & hiMask)
}

// sortBits returns the two bit masks in increasing order.
//
//qaoa:hotpath
func sortBits(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// ApplyCNOT applies CNOT with control c, target t. Iteration is over the
// 2^{n-2} swapped pairs only (control bit set, target bit clear), so no
// amplitude is visited without being moved.
//
//qaoa:hotpath
func (s *State) ApplyCNOT(c, t int) {
	cb, tb := 1<<uint(c), 1<<uint(t)
	lo, hi := sortBits(cb, tb)
	parallelFor(len(s.Amp)>>2, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			i := expand2(k, lo, hi) | cb
			j := i | tb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	})
}

// ApplyCZ applies a controlled-Z between a and b, visiting only the
// 2^{n-2} amplitudes with both bits set.
//
//qaoa:hotpath
func (s *State) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	lo, hi := sortBits(ab, bb)
	parallelFor(len(s.Amp)>>2, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			i := expand2(k, lo, hi) | ab | bb
			s.Amp[i] = -s.Amp[i]
		}
	})
}

// ApplyZZ applies exp(-i θ/2 Z⊗Z) between a and b: amplitudes where the two
// bits agree pick up e^{-iθ/2}, disagreeing ones e^{+iθ/2}.
//
//qaoa:hotpath
func (s *State) ApplyZZ(a, b int, theta float64) {
	same := cmplx.Exp(complex(0, -theta/2))
	diff := cmplx.Exp(complex(0, +theta/2))
	ab, bb := 1<<uint(a), 1<<uint(b)
	parallelFor(len(s.Amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&ab != 0) == (i&bb != 0) {
				s.Amp[i] *= same
			} else {
				s.Amp[i] *= diff
			}
		}
	})
}

// ApplySwap exchanges qubits a and b, visiting only the 2^{n-2} swapped
// pairs (bit a set, bit b clear, and the mirror image).
//
//qaoa:hotpath
func (s *State) ApplySwap(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	lo, hi := sortBits(ab, bb)
	parallelFor(len(s.Amp)>>2, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			i := expand2(k, lo, hi) | ab
			j := (i &^ ab) | bb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	})
}

// ApplyGate dispatches a single IR gate. Measure and Barrier gates are
// no-ops at the state level (sampling is performed separately).
func (s *State) ApplyGate(g circuit.Gate) {
	switch g.Kind {
	case circuit.H:
		s.Apply1Q(g.Q0, matH)
	case circuit.X:
		s.Apply1Q(g.Q0, matX)
	case circuit.Y:
		s.Apply1Q(g.Q0, matY)
	case circuit.Z:
		s.Apply1Q(g.Q0, matZ)
	case circuit.RX:
		s.Apply1Q(g.Q0, MatRX(g.Params[0]))
	case circuit.RY:
		s.Apply1Q(g.Q0, MatRY(g.Params[0]))
	case circuit.RZ:
		s.Apply1Q(g.Q0, MatRZ(g.Params[0]))
	case circuit.U1:
		s.Apply1Q(g.Q0, MatU1(g.Params[0]))
	case circuit.U2:
		s.Apply1Q(g.Q0, MatU2(g.Params[0], g.Params[1]))
	case circuit.U3:
		s.Apply1Q(g.Q0, MatU3(g.Params[0], g.Params[1], g.Params[2]))
	case circuit.CNOT:
		s.ApplyCNOT(g.Q0, g.Q1)
	case circuit.CZ:
		s.ApplyCZ(g.Q0, g.Q1)
	case circuit.CPhase:
		s.ApplyZZ(g.Q0, g.Q1, g.Params[0])
	case circuit.Swap:
		s.ApplySwap(g.Q0, g.Q1)
	case circuit.Measure, circuit.Barrier:
		// no-op
	default:
		panic("sim: cannot simulate " + g.Kind.String())
	}
}

// Run executes c through the gate-fusion pre-pass (see Fuse) and returns s
// for chaining. Semantically identical (up to float rounding) to applying
// every gate in order with ApplyGate.
func (s *State) Run(c *circuit.Circuit) *State {
	if c.NQubits > s.N {
		panic(fmt.Sprintf("sim: circuit needs %d qubits, state has %d", c.NQubits, s.N))
	}
	return Fuse(c).RunOn(s)
}

// Sample draws shots basis states from the measurement distribution.
func (s *State) Sample(rng *rand.Rand, shots int) []uint64 {
	return s.SampleInto(rng, shots, make([]uint64, 0, shots), nil)
}

// SampleInto appends shots basis states drawn from the measurement
// distribution to out and returns it, using cdf as the CDF scratch buffer
// when it has capacity for the full state (allocating otherwise). Callers
// on a hot path pass out[:0] and a reused cdf to make sampling
// allocation-free; Sample is the convenience form.
//
//qaoa:hotpath
func (s *State) SampleInto(rng *rand.Rand, shots int, out []uint64, cdf []float64) []uint64 {
	if cap(cdf) >= len(s.Amp) {
		cdf = cdf[:len(s.Amp)]
	} else {
		cdf = make([]float64, len(s.Amp))
	}
	acc := buildCDF(s.Amp, cdf)
	for k := 0; k < shots; k++ {
		out = append(out, uint64(searchCDF(cdf, rng.Float64()*acc))) //lint:allow hotpath: appends into the caller's presized buffer; grows only when the caller under-allocates
	}
	return out
}

// buildCDF fills cdf (len(amp) entries) with the cumulative measurement
// distribution and returns the total mass (1 up to rounding for a
// normalized state).
//
//qaoa:hotpath
func buildCDF(amp []complex128, cdf []float64) float64 {
	var acc float64
	for i, a := range amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cdf[i] = acc
	}
	return acc
}

// sampleCDFInto fills out with draws from a prebuilt CDF — the shared-CDF
// fast path of Executor for trajectories that reuse the ideal state.
//
//qaoa:hotpath
func sampleCDFInto(cdf []float64, rng *rand.Rand, out []uint64) {
	total := cdf[len(cdf)-1]
	for k := range out {
		out[k] = uint64(searchCDF(cdf, rng.Float64()*total))
	}
}

// searchCDF returns the smallest index i with cdf[i] > r.
//
//qaoa:hotpath
func searchCDF(cdf []float64, r float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ExpectationDiagonal returns Σ_x |⟨x|ψ⟩|² f(x) for a diagonal observable f
// — e.g. the MaxCut cost of bitstring x.
func (s *State) ExpectationDiagonal(f func(x uint64) float64) float64 {
	var e float64
	for i, a := range s.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			e += p * f(uint64(i))
		}
	}
	return e
}

// ExpectationTable returns Σ_x |⟨x|ψ⟩|² vals[x] for a precomputed diagonal
// observable — the table-lookup fast path of ExpectationDiagonal (same
// summation order, so results are bit-identical for vals[x] == f(x)).
func (s *State) ExpectationTable(vals []float64) float64 {
	if len(vals) < len(s.Amp) {
		panic(fmt.Sprintf("sim: expectation table has %d entries, state needs %d", len(vals), len(s.Amp)))
	}
	var e float64
	for i, a := range s.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			e += p * vals[i]
		}
	}
	return e
}

// FidelityOverlap returns |⟨a|b⟩| — 1 when the states match up to global
// phase.
func FidelityOverlap(a, b *State) float64 {
	if len(a.Amp) != len(b.Amp) {
		panic("sim: overlap of states with different sizes")
	}
	var dot complex128
	for i := range a.Amp {
		dot += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	return cmplx.Abs(dot)
}

// RandomState returns a Haar-ish random normalized state for testing.
func RandomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	var norm float64
	for i := range s.Amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.Amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	norm = math.Sqrt(norm)
	for i := range s.Amp {
		s.Amp[i] /= complex(norm, 0)
	}
	return s
}
