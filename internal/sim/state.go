// Package sim implements a state-vector quantum-circuit simulator with a
// stochastic Pauli noise model. It provides the "ideal execution" and
// "noisy hardware execution" oracles used to compute the paper's
// Approximation Ratio Gap (ARG) metric, and is exact (up to float rounding)
// for the gate set of package circuit.
//
// Qubit q corresponds to bit q (1<<q) of a basis-state index, so basis state
// |b_{n-1} … b_1 b_0⟩ has index Σ b_q·2^q.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/obsv"
)

// State is an n-qubit state vector of 2^n complex amplitudes.
type State struct {
	N   int
	Amp []complex128
}

// MaxQubits bounds the register size (2^24 amplitudes ≈ 256 MiB).
const MaxQubits = 24

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > MaxQubits {
		panic(fmt.Sprintf("sim: qubit count %d outside [0,%d]", n, MaxQubits))
	}
	amp := make([]complex128, 1<<uint(n))
	amp[0] = 1
	return &State{N: n, Amp: amp}
}

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	amp := make([]complex128, len(s.Amp))
	copy(amp, s.Amp)
	return &State{N: s.N, Amp: amp}
}

// Reset returns s to |0…0⟩.
func (s *State) Reset() {
	for i := range s.Amp {
		s.Amp[i] = 0
	}
	s.Amp[0] = 1
}

// Norm returns the 2-norm of the state (1 for any valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.Amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |⟨x|ψ⟩|² for basis state x.
func (s *State) Probability(x uint64) float64 {
	a := s.Amp[x]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Apply1Q applies the 2×2 unitary m to qubit q, fanning out across cores
// for large registers (see ParallelThreshold).
func (s *State) Apply1Q(q int, m [2][2]complex128) {
	if len(s.Amp) > ParallelThreshold {
		s.apply1QParallel(q, m)
		return
	}
	bit := 1 << uint(q)
	n := len(s.Amp)
	for base := 0; base < n; base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a0, a1 := s.Amp[i], s.Amp[i|bit]
			s.Amp[i] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// ApplyCNOT applies CNOT with control c, target t. Each amplitude pair
// (i, i|tb) is touched exactly once (at the member with the target bit
// clear), so chunked iteration is safe.
func (s *State) ApplyCNOT(c, t int) {
	cb, tb := 1<<uint(c), 1<<uint(t)
	parallelFor(len(s.Amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&cb != 0 && i&tb == 0 {
				j := i | tb
				s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
			}
		}
	})
}

// ApplyCZ applies a controlled-Z between a and b.
func (s *State) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.Amp {
		if i&ab != 0 && i&bb != 0 {
			s.Amp[i] = -s.Amp[i]
		}
	}
}

// ApplyZZ applies exp(-i θ/2 Z⊗Z) between a and b: amplitudes where the two
// bits agree pick up e^{-iθ/2}, disagreeing ones e^{+iθ/2}.
func (s *State) ApplyZZ(a, b int, theta float64) {
	same := cmplx.Exp(complex(0, -theta/2))
	diff := cmplx.Exp(complex(0, +theta/2))
	ab, bb := 1<<uint(a), 1<<uint(b)
	parallelFor(len(s.Amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if (i&ab != 0) == (i&bb != 0) {
				s.Amp[i] *= same
			} else {
				s.Amp[i] *= diff
			}
		}
	})
}

// ApplySwap exchanges qubits a and b.
func (s *State) ApplySwap(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.Amp {
		if i&ab != 0 && i&bb == 0 {
			j := (i &^ ab) | bb
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	}
}

// ApplyGate dispatches a single IR gate. Measure and Barrier gates are
// no-ops at the state level (sampling is performed separately).
func (s *State) ApplyGate(g circuit.Gate) {
	switch g.Kind {
	case circuit.H:
		s.Apply1Q(g.Q0, matH)
	case circuit.X:
		s.Apply1Q(g.Q0, matX)
	case circuit.Y:
		s.Apply1Q(g.Q0, matY)
	case circuit.Z:
		s.Apply1Q(g.Q0, matZ)
	case circuit.RX:
		s.Apply1Q(g.Q0, MatRX(g.Params[0]))
	case circuit.RY:
		s.Apply1Q(g.Q0, MatRY(g.Params[0]))
	case circuit.RZ:
		s.Apply1Q(g.Q0, MatRZ(g.Params[0]))
	case circuit.U1:
		s.Apply1Q(g.Q0, MatU1(g.Params[0]))
	case circuit.U2:
		s.Apply1Q(g.Q0, MatU2(g.Params[0], g.Params[1]))
	case circuit.U3:
		s.Apply1Q(g.Q0, MatU3(g.Params[0], g.Params[1], g.Params[2]))
	case circuit.CNOT:
		s.ApplyCNOT(g.Q0, g.Q1)
	case circuit.CZ:
		s.ApplyCZ(g.Q0, g.Q1)
	case circuit.CPhase:
		s.ApplyZZ(g.Q0, g.Q1, g.Params[0])
	case circuit.Swap:
		s.ApplySwap(g.Q0, g.Q1)
	case circuit.Measure, circuit.Barrier:
		// no-op
	default:
		panic("sim: cannot simulate " + g.Kind.String())
	}
}

// Run applies every gate of c in order and returns s for chaining.
func (s *State) Run(c *circuit.Circuit) *State {
	if c.NQubits > s.N {
		panic(fmt.Sprintf("sim: circuit needs %d qubits, state has %d", c.NQubits, s.N))
	}
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
	if col := Collector(); col.Enabled() {
		col.Inc(obsv.CntSimRuns)
		col.Add(obsv.CntSimGates, int64(len(c.Gates)))
		col.Add(obsv.CntSimAmpOps, int64(len(c.Gates))*int64(len(s.Amp)))
	}
	return s
}

// Sample draws shots basis states from the measurement distribution.
func (s *State) Sample(rng *rand.Rand, shots int) []uint64 {
	cdf := make([]float64, len(s.Amp))
	var acc float64
	for i, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cdf[i] = acc
	}
	out := make([]uint64, shots)
	for k := 0; k < shots; k++ {
		out[k] = uint64(searchCDF(cdf, rng.Float64()*acc))
	}
	return out
}

// searchCDF returns the smallest index i with cdf[i] > r.
func searchCDF(cdf []float64, r float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > r {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ExpectationDiagonal returns Σ_x |⟨x|ψ⟩|² f(x) for a diagonal observable f
// — e.g. the MaxCut cost of bitstring x.
func (s *State) ExpectationDiagonal(f func(x uint64) float64) float64 {
	var e float64
	for i, a := range s.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			e += p * f(uint64(i))
		}
	}
	return e
}

// FidelityOverlap returns |⟨a|b⟩| — 1 when the states match up to global
// phase.
func FidelityOverlap(a, b *State) float64 {
	if len(a.Amp) != len(b.Amp) {
		panic("sim: overlap of states with different sizes")
	}
	var dot complex128
	for i := range a.Amp {
		dot += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	return cmplx.Abs(dot)
}

// RandomState returns a Haar-ish random normalized state for testing.
func RandomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	var norm float64
	for i := range s.Amp {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		s.Amp[i] = complex(re, im)
		norm += re*re + im*im
	}
	norm = math.Sqrt(norm)
	for i := range s.Amp {
		s.Amp[i] /= complex(norm, 0)
	}
	return s
}
