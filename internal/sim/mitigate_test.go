package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

func TestHistogram(t *testing.T) {
	h := Histogram([]uint64{3, 3, 0, 7, 3})
	if h[3] != 3 || h[0] != 1 || h[7] != 1 || len(h) != 3 {
		t.Errorf("Histogram = %v", h)
	}
}

func TestTotalVariation(t *testing.T) {
	a := map[uint64]int{0: 50, 1: 50}
	if tv := TotalVariation(a, a); tv != 0 {
		t.Errorf("TV(a,a) = %v", tv)
	}
	b := map[uint64]int{2: 10}
	if tv := TotalVariation(a, b); math.Abs(tv-1) > 1e-12 {
		t.Errorf("TV(disjoint) = %v, want 1", tv)
	}
	c := map[uint64]int{0: 100}
	if tv := TotalVariation(a, c); math.Abs(tv-0.5) > 1e-12 {
		t.Errorf("TV = %v, want 0.5", tv)
	}
	if tv := TotalVariation(a, map[uint64]int{}); tv != 0 {
		t.Errorf("TV against empty = %v", tv)
	}
}

func TestMitigateReadoutExactInversion(t *testing.T) {
	// True state |0⟩ on 1 qubit, e = 0.2 → expected measured distribution
	// (0.8, 0.2); at those exact frequencies mitigation recovers (1, 0).
	counts := map[uint64]int{0: 800, 1: 200}
	p, err := MitigateReadout(counts, 1, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-1) > 1e-12 || math.Abs(p[1]) > 1e-12 {
		t.Errorf("mitigated = %v, want [1 0]", p)
	}
}

func TestMitigateReadoutIdentityWhenNoError(t *testing.T) {
	counts := map[uint64]int{0: 30, 3: 70}
	p, err := MitigateReadout(counts, 2, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.3) > 1e-12 || math.Abs(p[3]-0.7) > 1e-12 {
		t.Errorf("no-error mitigation changed distribution: %v", p)
	}
}

func TestMitigateReadoutErrors(t *testing.T) {
	counts := map[uint64]int{0: 1}
	if _, err := MitigateReadout(counts, 0, nil); err == nil {
		t.Error("zero qubits accepted")
	}
	if _, err := MitigateReadout(counts, 2, []float64{0.1}); err == nil {
		t.Error("wrong readout length accepted")
	}
	if _, err := MitigateReadout(counts, 1, []float64{0.6}); err == nil {
		t.Error("error ≥ 0.5 accepted")
	}
	if _, err := MitigateReadout(map[uint64]int{}, 1, []float64{0.1}); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := MitigateReadout(map[uint64]int{4: 1}, 2, []float64{0, 0}); err == nil {
		t.Error("out-of-range outcome accepted")
	}
}

func TestClampDistribution(t *testing.T) {
	p := ClampDistribution([]float64{0.6, -0.1, 0.5})
	if p[1] != 0 {
		t.Errorf("negative entry survived: %v", p)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("not renormalized: sum %v", sum)
	}
	if z := ClampDistribution([]float64{-1, -2}); z[0] != 0 || z[1] != 0 {
		t.Errorf("all-negative input: %v", z)
	}
}

// End-to-end: mitigation must pull the sampled distribution of a Bell state
// under readout noise closer to the ideal one.
func TestMitigationImprovesBellFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bell := circuit.New(2).Append(circuit.NewH(0), circuit.NewCNOT(0, 1))
	ideal := NewState(2).Run(bell)
	idealCounts := Histogram(ideal.Sample(rng, 40000))

	readout := []float64{0.08, 0.12}
	nm := &NoiseModel{Readout: readout}
	noisy := Histogram(SampleNoisy(bell, nm, 40000, 1, rng))

	mitigated, err := MitigateReadout(noisy, 2, readout)
	if err != nil {
		t.Fatal(err)
	}
	clamped := ClampDistribution(mitigated)
	// Convert to pseudo-count histograms for the TV comparison.
	mitCounts := map[uint64]int{}
	for x, v := range clamped {
		mitCounts[uint64(x)] = int(v * 1e6)
	}
	before := TotalVariation(noisy, idealCounts)
	after := TotalVariation(mitCounts, idealCounts)
	if after >= before {
		t.Errorf("mitigation did not help: TV %v → %v", before, after)
	}
	if after > 0.02 {
		t.Errorf("mitigated TV distance %v still large", after)
	}
}

func TestExpectationFromDistribution(t *testing.T) {
	p := []float64{0.25, 0.75}
	got := ExpectationFromDistribution(p, func(x uint64) float64 { return float64(x) })
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("expectation = %v", got)
	}
}
