package sim

import (
	"fmt"
	"math/bits"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/obsv"
)

// Gate fusion. QAOA circuits are dominated by long runs of mutually
// commuting diagonal gates (the CPhase cost layers, plus the RZ/U1 chains
// the IBM decomposition produces) interleaved with per-qubit 1Q gates. The
// naive executor pays one full pass over the 2^n amplitudes per gate; the
// fusion pre-pass below rewrites a circuit into a shorter Program whose ops
// each cost one pass:
//
//   - consecutive 1Q gates on the same qubit fold into a single 2×2 matrix;
//   - maximal runs of diagonal gates (Z, RZ, U1, CZ, CPhase) coalesce into
//     one per-amplitude phase sweep: a global factor times a product of
//     per-term factors selected by bit masks of the basis index;
//   - CNOT and Swap stay as dedicated permutation kernels.
//
// Correctness is by per-qubit order preservation: a gate may only be folded
// into an earlier op when no op in between touches any of its qubits
// (tracked via lastTouch), so the reordering only ever commutes ops on
// disjoint qubits, which trivially commute. Diagonal gates folded into the
// same run commute with each other by definition.

// opKind discriminates the fused operation types.
type opKind uint8

const (
	op1Q opKind = iota
	opCNOT
	opSwap
	opDiag
)

// diagTerm is one multiplicative factor of a diagonal sweep. For a basis
// index x the term contributes fac[sel(x)], where sel is 1 when
// (x&mask)==mask (parity=false: "all bits set", the controlled-phase shape)
// or when popcount(x&mask) is odd (parity=true: the ZZ-interaction shape),
// and 0 otherwise. fac[0] is always 1, so the selection is branch-free.
type diagTerm struct {
	mask   uint64
	fac    [2]complex128
	parity bool
}

// fusedOp is one executable unit of a Program.
type fusedOp struct {
	kind   opKind
	q0, q1 int
	m      [2][2]complex128 // op1Q
	global complex128       // opDiag
	terms  []diagTerm       // opDiag
}

// Program is a fused execution plan for one circuit. Build with Fuse,
// execute with RunOn. A Program is immutable after Fuse and safe for
// concurrent RunOn calls on distinct states.
type Program struct {
	n     int // qubits the source circuit declared
	gates int // simulable (non-barrier, non-measure) gates covered
	ops   []fusedOp
}

// NQubits returns the qubit count of the source circuit.
func (p *Program) NQubits() int { return p.n }

// Gates returns the number of simulable gates the program covers.
func (p *Program) Gates() int { return p.gates }

// Ops returns the number of fused operations (≤ Gates; the fusion win is
// the ratio).
func (p *Program) Ops() int { return len(p.ops) }

// mat1Q returns the 2×2 unitary of a non-diagonal one-qubit gate.
func mat1Q(g circuit.Gate) [2][2]complex128 {
	switch g.Kind {
	case circuit.H:
		return matH
	case circuit.X:
		return matX
	case circuit.Y:
		return matY
	case circuit.RX:
		return MatRX(g.Params[0])
	case circuit.RY:
		return MatRY(g.Params[0])
	case circuit.U2:
		return MatU2(g.Params[0], g.Params[1])
	case circuit.U3:
		return MatU3(g.Params[0], g.Params[1], g.Params[2])
	}
	panic("sim: mat1Q on " + g.Kind.String())
}

// matMul returns a·b (b applied first).
func matMul(a, b [2][2]complex128) [2][2]complex128 {
	return [2][2]complex128{
		{a[0][0]*b[0][0] + a[0][1]*b[1][0], a[0][0]*b[0][1] + a[0][1]*b[1][1]},
		{a[1][0]*b[0][0] + a[1][1]*b[1][0], a[1][0]*b[0][1] + a[1][1]*b[1][1]},
	}
}

// diag1Q returns the diagonal (d0, d1) of a diagonal one-qubit gate.
func diag1Q(g circuit.Gate) (complex128, complex128) {
	switch g.Kind {
	case circuit.Z:
		return 1, -1
	case circuit.RZ:
		return cmplx.Exp(complex(0, -g.Params[0]/2)), cmplx.Exp(complex(0, g.Params[0]/2))
	case circuit.U1:
		return 1, cmplx.Exp(complex(0, g.Params[0]))
	}
	panic("sim: diag1Q on " + g.Kind.String())
}

// fuser carries the bookkeeping of one Fuse pass.
type fuser struct {
	prog *Program
	// lastTouch[q] is the index in prog.ops of the last op touching qubit q
	// (-1: untouched). A gate may fold into op i only when lastTouch[q] ≤ i
	// for all its qubits.
	lastTouch []int
	// open1Q[q] is the index of an op1Q on q that is still the last op on q
	// (-1 or stale otherwise): the fold target for further 1Q gates.
	open1Q []int
	// openDiag is the index of the trailing diagonal run (-1: none open).
	openDiag int
}

// Fuse compiles c into a fused Program. Measure and Barrier gates are
// dropped (they are no-ops at the state level, matching ApplyGate).
func Fuse(c *circuit.Circuit) *Program {
	f := &fuser{
		prog:      &Program{n: c.NQubits},
		lastTouch: make([]int, c.NQubits),
		open1Q:    make([]int, c.NQubits),
		openDiag:  -1,
	}
	for q := range f.lastTouch {
		f.lastTouch[q], f.open1Q[q] = -1, -1
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.Measure, circuit.Barrier:
			continue
		}
		f.prog.gates++
		switch g.Kind {
		case circuit.Z, circuit.RZ, circuit.U1:
			d0, d1 := diag1Q(g)
			if i := f.open1Q[g.Q0]; i >= 0 && i == f.lastTouch[g.Q0] {
				// Scale the rows of the open matrix: diag(d0,d1)·M.
				m := &f.prog.ops[i].m
				m[0][0] *= d0
				m[0][1] *= d0
				m[1][0] *= d1
				m[1][1] *= d1
			} else {
				// d0·(term d1/d0 on bit q). For Z and U1 d0 is exactly 1.
				f.foldDiag(d0, diagTerm{mask: 1 << uint(g.Q0), fac: [2]complex128{1, d1 / d0}}, g.Q0)
			}
		case circuit.CZ:
			f.foldDiag(1, diagTerm{mask: 1<<uint(g.Q0) | 1<<uint(g.Q1), fac: [2]complex128{1, -1}}, g.Q0, g.Q1)
		case circuit.CPhase:
			// exp(-iθ/2 Z⊗Z): e^{-iθ/2} on agreeing bits, e^{+iθ/2} on
			// disagreeing ones = global e^{-iθ/2} times e^{+iθ} on odd parity.
			theta := g.Params[0]
			f.foldDiag(cmplx.Exp(complex(0, -theta/2)),
				diagTerm{mask: 1<<uint(g.Q0) | 1<<uint(g.Q1), fac: [2]complex128{1, cmplx.Exp(complex(0, theta))}, parity: true},
				g.Q0, g.Q1)
		case circuit.CNOT:
			f.appendOp(fusedOp{kind: opCNOT, q0: g.Q0, q1: g.Q1}, g.Q0, g.Q1)
		case circuit.Swap:
			f.appendOp(fusedOp{kind: opSwap, q0: g.Q0, q1: g.Q1}, g.Q0, g.Q1)
		default:
			if g.Arity() != 1 {
				panic("sim: cannot fuse " + g.Kind.String())
			}
			m := mat1Q(g)
			if i := f.open1Q[g.Q0]; i >= 0 && i == f.lastTouch[g.Q0] {
				f.prog.ops[i].m = matMul(m, f.prog.ops[i].m)
			} else {
				i := f.appendOp(fusedOp{kind: op1Q, q0: g.Q0, m: m}, g.Q0)
				f.open1Q[g.Q0] = i
			}
		}
	}
	// Finalize: bake each diagonal run's global phase into its first term so
	// the sweep spends exactly one complex multiply per term per amplitude.
	for i := range f.prog.ops {
		op := &f.prog.ops[i]
		if op.kind == opDiag && len(op.terms) > 0 && op.global != 1 {
			op.terms[0].fac[0] *= op.global
			op.terms[0].fac[1] *= op.global
			op.global = 1
		}
	}
	return f.prog
}

// appendOp adds a fresh op touching the given qubits and returns its index.
func (f *fuser) appendOp(op fusedOp, qs ...int) int {
	f.prog.ops = append(f.prog.ops, op)
	i := len(f.prog.ops) - 1
	for _, q := range qs {
		f.lastTouch[q] = i
		f.open1Q[q] = -1
	}
	return i
}

// foldDiag merges one diagonal gate (global factor + term) into the open
// diagonal run, reusing it when no later op touches the gate's qubits and
// opening a fresh run otherwise.
func (f *fuser) foldDiag(global complex128, t diagTerm, qs ...int) {
	d := f.openDiag
	for _, q := range qs {
		if f.lastTouch[q] > d {
			d = -1
			break
		}
	}
	if d < 0 {
		d = f.appendOp(fusedOp{kind: opDiag, global: 1})
		f.openDiag = d
	}
	op := &f.prog.ops[d]
	op.global *= global
	merged := false
	for i := range op.terms {
		if op.terms[i].mask == t.mask && op.terms[i].parity == t.parity {
			op.terms[i].fac[1] *= t.fac[1]
			merged = true
			break
		}
	}
	if !merged {
		op.terms = append(op.terms, t)
	}
	for _, q := range qs {
		f.lastTouch[q] = d
		f.open1Q[q] = -1
	}
}

// termFac returns the term's factor for basis index x.
//
//qaoa:hotpath
func termFac(t *diagTerm, x uint64) complex128 {
	var sel int
	if t.parity {
		sel = bits.OnesCount64(x&t.mask) & 1
	} else if x&t.mask == t.mask {
		sel = 1
	}
	return t.fac[sel]
}

// diagSweepMin is the state size (in amplitudes) above which a multi-term
// diagonal run executes as one combined per-amplitude sweep. Below it the
// state lives in cache and per-term subset passes win: every term mask has
// at most two bits (1Q diagonals and controlled phases), so a term touches
// only the half or quarter of the state its factors actually change, with
// no per-amplitude selection logic at all. Above it the state streams from
// memory and a single pass over the amplitudes beats re-streaming them once
// per term.
const diagSweepMin = 1 << 20

// applyDiag multiplies every amplitude by the run's phase: the global
// factor (1 after Fuse's finalize pass whenever terms exist) times each
// term's mask-selected factor.
//
//qaoa:hotpath
func (s *State) applyDiag(global complex128, terms []diagTerm) {
	if len(terms) == 0 {
		if global == 1 {
			return
		}
		parallelFor(len(s.Amp), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s.Amp[i] *= global
			}
		})
		return
	}
	if len(terms) > 1 && len(s.Amp) >= diagSweepMin {
		s.diagSweep(global, terms)
		return
	}
	for t := range terms {
		tm := &terms[t]
		f0, f1 := tm.fac[0], tm.fac[1]
		if f0 == 1 && f1 == 1 {
			continue // merged to identity (e.g. CZ·CZ)
		}
		switch bits.OnesCount64(tm.mask) {
		case 1:
			s.applyTerm1(int(tm.mask), f0, f1)
		case 2:
			s.applyTerm2(tm.mask, tm.parity, f0, f1)
		default:
			t0 := *tm
			parallelFor(len(s.Amp), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s.Amp[i] *= termFac(&t0, uint64(i))
				}
			})
		}
	}
}

// applyTerm1 applies a single-bit diagonal term: fac[0] on the bit-clear
// half, fac[1] on the bit-set half.
//
//qaoa:hotpath
func (s *State) applyTerm1(b int, f0, f1 complex128) {
	bm := b - 1
	if f0 == 1 {
		parallelFor(len(s.Amp)>>1, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				s.Amp[(k&^bm)<<1|k&bm|b] *= f1
			}
		})
		return
	}
	parallelFor(len(s.Amp)>>1, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			i := (k&^bm)<<1 | k&bm
			s.Amp[i] *= f0
			s.Amp[i|b] *= f1
		}
	})
}

// applyTerm2 applies a two-bit diagonal term by quarter-state subsets:
// parity terms put fac[1] on the two mixed-bit quarters, subset terms on
// the both-set quarter.
//
//qaoa:hotpath
func (s *State) applyTerm2(mask uint64, parity bool, f0, f1 complex128) {
	lo := int(mask & -mask)
	hi := int(mask) &^ lo
	both := int(mask)
	switch {
	case f0 == 1 && parity:
		parallelFor(len(s.Amp)>>2, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				i := expand2(k, lo, hi)
				s.Amp[i|lo] *= f1
				s.Amp[i|hi] *= f1
			}
		})
	case f0 == 1:
		parallelFor(len(s.Amp)>>2, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				s.Amp[expand2(k, lo, hi)|both] *= f1
			}
		})
	case parity:
		parallelFor(len(s.Amp)>>2, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				i := expand2(k, lo, hi)
				s.Amp[i] *= f0
				s.Amp[i|lo] *= f1
				s.Amp[i|hi] *= f1
				s.Amp[i|both] *= f0
			}
		})
	default:
		parallelFor(len(s.Amp)>>2, func(klo, khi int) {
			for k := klo; k < khi; k++ {
				i := expand2(k, lo, hi)
				s.Amp[i] *= f0
				s.Amp[i|lo] *= f0
				s.Amp[i|hi] *= f0
				s.Amp[i|both] *= f1
			}
		})
	}
}

// diagSweep is the single-pass form of a multi-term run for
// memory-bound state sizes: per amplitude the term factors accumulate into
// four independent products so the complex multiplies pipeline instead of
// forming one serial dependency chain.
//
//qaoa:hotpath
func (s *State) diagSweep(global complex128, terms []diagTerm) {
	parallelFor(len(s.Amp), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := uint64(i)
			f0, f1, f2, f3 := global, complex(1, 0), complex(1, 0), complex(1, 0)
			t := 0
			for ; t+4 <= len(terms); t += 4 {
				f0 *= termFac(&terms[t], x)
				f1 *= termFac(&terms[t+1], x)
				f2 *= termFac(&terms[t+2], x)
				f3 *= termFac(&terms[t+3], x)
			}
			for ; t < len(terms); t++ {
				f0 *= termFac(&terms[t], x)
			}
			s.Amp[i] *= (f0 * f1) * (f2 * f3)
		}
	})
}

// apply executes the fused ops on s without touching the counters — the
// building block shared by RunOn and the noisy-trajectory suffix replay.
//
//qaoa:hotpath
func (p *Program) apply(s *State) {
	for i := range p.ops {
		op := &p.ops[i]
		switch op.kind {
		case op1Q:
			s.Apply1Q(op.q0, op.m)
		case opCNOT:
			s.ApplyCNOT(op.q0, op.q1)
		case opSwap:
			s.ApplySwap(op.q0, op.q1)
		case opDiag:
			s.applyDiag(op.global, op.terms)
		}
	}
}

// RunOn executes the program on s and returns s for chaining. Like
// State.Run it batches the simulator counters once per call; sim/amp_ops
// counts fused passes (ops × state length) — the work actually done.
func (p *Program) RunOn(s *State) *State {
	if p.n > s.N {
		panic(fmt.Sprintf("sim: program needs %d qubits, state has %d", p.n, s.N))
	}
	p.apply(s)
	if col := Collector(); col.Enabled() {
		col.Inc(obsv.CntSimRuns)
		col.Add(obsv.CntSimGates, int64(p.gates))
		col.Add(obsv.CntSimFusedOps, int64(len(p.ops)))
		col.Add(obsv.CntSimAmpOps, int64(len(p.ops))*int64(len(s.Amp)))
	}
	return s
}
