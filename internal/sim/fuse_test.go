package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// randCircuit samples a circuit over the full simulable gate set (plus
// no-op barriers and measures) — the property-test workload for fusion.
func randCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		p := rng.Intn(n - 1)
		if p >= q {
			p++
		}
		th := (rng.Float64() - 0.5) * 4 * math.Pi
		ph := (rng.Float64() - 0.5) * 4 * math.Pi
		la := (rng.Float64() - 0.5) * 4 * math.Pi
		switch rng.Intn(16) {
		case 0:
			c.Append(circuit.NewH(q))
		case 1:
			c.Append(circuit.NewX(q))
		case 2:
			c.Append(circuit.NewY(q))
		case 3:
			c.Append(circuit.NewZ(q))
		case 4:
			c.Append(circuit.NewRX(q, th))
		case 5:
			c.Append(circuit.NewRY(q, th))
		case 6:
			c.Append(circuit.NewRZ(q, th))
		case 7:
			c.Append(circuit.NewU1(q, la))
		case 8:
			c.Append(circuit.NewU2(q, ph, la))
		case 9:
			c.Append(circuit.NewU3(q, th, ph, la))
		case 10:
			c.Append(circuit.NewCNOT(q, p))
		case 11:
			c.Append(circuit.NewCZ(q, p))
		case 12:
			c.Append(circuit.NewCPhase(q, p, th))
		case 13:
			c.Append(circuit.NewSwap(q, p))
		case 14:
			c.Append(circuit.Gate{Kind: circuit.Barrier, Q0: -1, Q1: -1})
		case 15:
			c.Append(circuit.NewMeasure(q))
		}
	}
	return c
}

// randDiagHeavy samples a circuit dominated by diagonal gates with sparse
// non-diagonal interruptions — the shape that exercises diagonal-run
// coalescing and its order-preservation bookkeeping hardest.
func randDiagHeavy(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		p := rng.Intn(n - 1)
		if p >= q {
			p++
		}
		th := (rng.Float64() - 0.5) * 4 * math.Pi
		switch rng.Intn(12) {
		case 0:
			c.Append(circuit.NewZ(q))
		case 1, 2:
			c.Append(circuit.NewRZ(q, th))
		case 3, 4:
			c.Append(circuit.NewU1(q, th))
		case 5, 6:
			c.Append(circuit.NewCZ(q, p))
		case 7, 8, 9:
			c.Append(circuit.NewCPhase(q, p, th))
		case 10:
			c.Append(circuit.NewH(q))
		case 11:
			c.Append(circuit.NewCNOT(q, p))
		}
	}
	return c
}

// referenceRun applies every gate in order with the unfused per-gate
// kernels — the semantics Fuse must preserve.
func referenceRun(c *circuit.Circuit) *State {
	s := NewState(c.NQubits)
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
	return s
}

func maxAmpDiff(a, b *State) float64 {
	worst := 0.0
	for i := range a.Amp {
		if d := cAbs(a.Amp[i] - b.Amp[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func cAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestFuseMatchesReferenceRandomCircuits(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 2 + rng.Intn(5)
		c := randCircuit(rng, n, 30+rng.Intn(120))
		want := referenceRun(c)
		got := Fuse(c).RunOn(NewState(n))
		if d := maxAmpDiff(want, got); d > 1e-12 {
			t.Fatalf("trial %d (n=%d, %d gates): fused state deviates by %g", trial, n, c.Len(), d)
		}
	}
}

func TestFuseMatchesReferenceDiagonalHeavy(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		n := 2 + rng.Intn(5)
		c := randDiagHeavy(rng, n, 40+rng.Intn(160))
		want := referenceRun(c)
		got := Fuse(c).RunOn(NewState(n))
		if d := maxAmpDiff(want, got); d > 1e-12 {
			t.Fatalf("trial %d (n=%d, %d gates): fused state deviates by %g", trial, n, c.Len(), d)
		}
	}
}

// TestFuseOrderPreservation pins the tricky interleavings by hand: folds
// must never commute a gate past an op on a shared qubit.
func TestFuseOrderPreservation(t *testing.T) {
	c := circuit.New(3)
	c.Append(
		circuit.NewRZ(0, 0.3),
		circuit.NewCNOT(0, 1),
		circuit.NewRZ(0, 0.5), // must NOT merge with the first RZ across the CNOT
		circuit.NewH(1),
		circuit.NewCZ(1, 2), // must NOT fold into the pre-H diagonal run
		circuit.NewZ(1),     // folds into the H matrix? no — scales it (diag after matrix)
		circuit.NewH(1),     // must multiply into the scaled matrix only if still open
		circuit.NewCPhase(0, 2, 1.1),
		circuit.NewSwap(0, 2),
		circuit.NewU1(2, 0.7),
	)
	want := referenceRun(c)
	got := Fuse(c).RunOn(NewState(3))
	if d := maxAmpDiff(want, got); d > 1e-12 {
		t.Fatalf("fused state deviates by %g", d)
	}
}

// TestFuseShrinksQAOALayer asserts the fusion win on the workload the pass
// exists for: a QAOA layer's cost phases coalesce into a handful of sweeps.
func TestFuseShrinksQAOALayer(t *testing.T) {
	n := 8
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%2 == 0 {
				c.Append(circuit.NewCPhase(u, v, 0.4))
			}
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.NewRX(q, 0.9))
	}
	p := Fuse(c)
	if p.Gates() != c.Len() {
		t.Fatalf("Gates() = %d, want %d", p.Gates(), c.Len())
	}
	// n H ops + 1 diagonal sweep + n RX ops.
	if want := 2*n + 1; p.Ops() != want {
		t.Fatalf("Ops() = %d, want %d (all CPhase gates in one sweep)", p.Ops(), want)
	}
	want := referenceRun(c)
	got := p.RunOn(NewState(n))
	if d := maxAmpDiff(want, got); d > 1e-12 {
		t.Fatalf("fused state deviates by %g", d)
	}
}

// TestFuse1QChainsCollapse: consecutive 1Q gates on one qubit become one op.
func TestFuse1QChainsCollapse(t *testing.T) {
	c := circuit.New(2)
	c.Append(
		circuit.NewH(0), circuit.NewRZ(0, 0.2), circuit.NewRX(0, 0.3),
		circuit.NewU3(0, 0.1, 0.2, 0.3), circuit.NewZ(0),
	)
	p := Fuse(c)
	if p.Ops() != 1 {
		t.Fatalf("Ops() = %d, want 1", p.Ops())
	}
	want := referenceRun(c)
	got := p.RunOn(NewState(2))
	if d := maxAmpDiff(want, got); d > 1e-12 {
		t.Fatalf("fused state deviates by %g", d)
	}
}

func TestRunUsesFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randCircuit(rng, 5, 200)
	want := referenceRun(c)
	got := NewState(5).Run(c)
	if d := maxAmpDiff(want, got); d > 1e-12 {
		t.Fatalf("Run deviates from reference by %g", d)
	}
}

func BenchmarkFuse(b *testing.B) {
	c := qaoaLayerCircuit(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fuse(c)
	}
}

func ExampleProgram() {
	c := circuit.New(2)
	c.Append(circuit.NewH(0), circuit.NewH(1), circuit.NewCPhase(0, 1, 0.8), circuit.NewRZ(0, 0.1), circuit.NewRZ(1, 0.2))
	p := Fuse(c)
	fmt.Println(p.Gates(), p.Ops())
	// Output: 5 3
}
