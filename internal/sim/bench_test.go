package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// qaoaLayerCircuit builds an uncompiled p=1 QAOA-shaped circuit over n
// qubits: H wall, a ring+chord CPhase cost layer, and an RX mixer — the
// diagonal-run-dominated shape the fusion pre-pass targets.
func qaoaLayerCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.NewCPhase(q, (q+1)%n, 0.7))
		if o := (q + 3) % n; o != q {
			c.Append(circuit.NewCPhase(q, o, 0.7))
		}
	}
	for q := 0; q < n; q++ {
		c.Append(circuit.NewRX(q, 0.4))
	}
	return c
}

// compiledStyleCircuit mimics a routed physical circuit: 1Q gate runs,
// CNOT/CZ/Swap interleavings, RZ chains — the native-gate shape MeasureARG
// executes.
func compiledStyleCircuit(n, gates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(42))
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.Append(circuit.NewU2(rng.Intn(n), 0.3, 0.9))
		case 1:
			c.Append(circuit.NewRZ(rng.Intn(n), 0.5))
		case 2:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCNOT(a, b))
		case 3:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCZ(a, b))
		case 4:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewSwap(a, b))
		default:
			a, b := twoDistinct(n, rng)
			c.Append(circuit.NewCPhase(a, b, 0.7))
		}
	}
	return c
}

// BenchmarkRunQAOALayer measures ideal execution of the QAOA-shaped circuit
// (16 qubits, serial path).
func BenchmarkRunQAOALayer(b *testing.B) {
	c := qaoaLayerCircuit(16)
	s := NewState(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.Run(c)
	}
}

// BenchmarkRunCompiledStyle measures ideal execution of a routed-flavor
// circuit (15 qubits, 300 gates — the melbourne ARG scale).
func BenchmarkRunCompiledStyle(b *testing.B) {
	c := compiledStyleCircuit(15, 300)
	s := NewState(15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.Run(c)
	}
}

func benchApply2Q(b *testing.B, apply func(s *State, a, t int)) {
	s := NewState(16)
	for q := 0; q < 16; q++ {
		s.Apply1Q(q, matH)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(s, i%16, (i+5)%16)
	}
}

func BenchmarkApplyCNOT(b *testing.B) {
	benchApply2Q(b, func(s *State, a, t int) {
		if a == t {
			t = (t + 1) % 16
		}
		s.ApplyCNOT(a, t)
	})
}

func BenchmarkApplyCZ(b *testing.B) {
	benchApply2Q(b, func(s *State, a, t int) {
		if a == t {
			t = (t + 1) % 16
		}
		s.ApplyCZ(a, t)
	})
}

func BenchmarkApplySwap(b *testing.B) {
	benchApply2Q(b, func(s *State, a, t int) {
		if a == t {
			t = (t + 1) % 16
		}
		s.ApplySwap(a, t)
	})
}

// BenchmarkSampleShots measures drawing 512 shots from a 15-qubit state
// (CDF build + binary searches), the per-trajectory sampling cost.
func BenchmarkSampleShots(b *testing.B) {
	s := NewState(15)
	for q := 0; q < 15; q++ {
		s.Apply1Q(q, matH)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng, 512)
	}
}

// BenchmarkExpectationDiagonal measures the diagonal-observable sweep with a
// nontrivial per-basis-state cost function.
func BenchmarkExpectationDiagonal(b *testing.B) {
	s := NewState(16)
	for q := 0; q < 16; q++ {
		s.Apply1Q(q, matH)
	}
	f := func(x uint64) float64 {
		var v float64
		for k := 0; k < 16; k++ {
			if x&(1<<uint(k)) != 0 {
				v += math.Sqrt(float64(k + 1))
			}
		}
		return v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExpectationDiagonal(f)
	}
}
