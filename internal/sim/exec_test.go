package sim

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
)

// testNoiseModel returns a model noisy enough that a sizable fraction of
// trajectories draw faults while many stay fault-free — exercising both the
// ideal-reuse and the checkpoint/replay paths of the executor.
func testNoiseModel() *NoiseModel {
	return &NoiseModel{
		OneQubit:        0.01,
		TwoQubitDefault: 0.05,
		Readout:         []float64{0.02, 0.01, 0.03, 0.02, 0.01},
	}
}

// naiveSampleNoisy re-derives the executor's specified semantics with the
// straightforward implementation: every trajectory seeds its private
// substream from one base draw, then runs the whole circuit gate by gate
// with interleaved fault draws, samples its shots and flips readout bits.
// The executor's ideal-reuse and checkpoint/replay shortcuts must reproduce
// this byte for byte.
func naiveSampleNoisy(c *circuit.Circuit, nm *NoiseModel, shots, trajectories int, rng *rand.Rand) []uint64 {
	if trajectories < 1 {
		trajectories = 1
	}
	if trajectories > shots {
		trajectories = shots
	}
	base := rng.Int63()
	out := make([]uint64, 0, shots)
	nb, extra := shots/trajectories, shots%trajectories
	for t := 0; t < trajectories; t++ {
		k := nb
		if t < extra {
			k++
		}
		if k == 0 {
			continue
		}
		trng := rand.New(rand.NewSource(substreamSeed(base, int64(t))))
		s := RunNoisy(c, nm, trng)
		samples := s.Sample(trng, k)
		flipReadoutAll(samples, nm, trng)
		out = append(out, samples...)
	}
	return out
}

func noisyTestCircuit(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for l := 0; l < layers; l++ {
		for q := 0; q+1 < n; q += 2 {
			c.Append(circuit.NewCNOT(q, q+1))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.NewRZ(q, rng.Float64()*2))
		}
		for q := 1; q+1 < n; q += 2 {
			c.Append(circuit.NewCZ(q, q+1))
		}
		for q := 0; q < n; q++ {
			c.Append(circuit.NewRX(q, rng.Float64()))
		}
	}
	return c
}

func TestSampleNoisyMatchesNaive(t *testing.T) {
	c := noisyTestCircuit(5, 3, 77)
	nm := testNoiseModel()
	for _, seed := range []int64{1, 2, 3, 11, 12345} {
		want := naiveSampleNoisy(c, nm, 600, 24, rand.New(rand.NewSource(seed)))
		got := NewExecutor(c).SampleNoisy(nm, 600, 24, rand.New(rand.NewSource(seed)))
		if len(want) != len(got) {
			t.Fatalf("seed %d: length %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: sample %d = %#x, naive has %#x", seed, i, got[i], want[i])
			}
		}
	}
}

func TestSampleNoisyPackageHelperMatchesExecutor(t *testing.T) {
	c := noisyTestCircuit(4, 2, 5)
	nm := testNoiseModel()
	a := SampleNoisy(c, nm, 300, 10, rand.New(rand.NewSource(9)))
	b := NewExecutor(c).SampleNoisy(nm, 300, 10, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestSampleNoisyIndependentOfGOMAXPROCS: the per-trajectory substreams make
// the fan-out schedule irrelevant to the results.
func TestSampleNoisyIndependentOfGOMAXPROCS(t *testing.T) {
	c := noisyTestCircuit(5, 3, 99)
	nm := testNoiseModel()
	run := func(procs int) []uint64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return NewExecutor(c).SampleNoisy(nm, 800, 32, rand.New(rand.NewSource(4242)))
	}
	want := run(1)
	for _, procs := range []int{2, 4, 8} {
		got := run(procs)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d = %#x, GOMAXPROCS=1 has %#x", procs, i, got[i], want[i])
			}
		}
	}
}

// TestExecutorIdealReuse: SampleIdeal and fault-free noisy trajectories
// share one ideal execution, and repeated calls never recompute it.
func TestExecutorIdealReuse(t *testing.T) {
	c := noisyTestCircuit(4, 2, 3)
	ex := NewExecutor(c)
	st := ex.Ideal()
	if ex.Ideal() != st {
		t.Fatal("Ideal() recomputed the state")
	}
	want := referenceRun(c)
	if d := maxAmpDiff(want, st); d > 1e-12 {
		t.Fatalf("ideal state deviates from reference by %g", d)
	}
	// With a zero noise model every trajectory reuses the ideal state and the
	// samples match plain ideal sampling draw for draw.
	nm := &NoiseModel{}
	rng1 := rand.New(rand.NewSource(7))
	noisy := ex.SampleNoisy(nm, 200, 8, rng1)
	rng2 := rand.New(rand.NewSource(7))
	base := rng2.Int63()
	var ideal []uint64
	for t9 := 0; t9 < 8; t9++ {
		trng := rand.New(rand.NewSource(substreamSeed(base, int64(t9))))
		drawFaults(c, nm, trng, nil) // advance past the (empty) fault plan draws
		ideal = append(ideal, ex.SampleIdeal(trng, 25)...)
	}
	for i := range ideal {
		if noisy[i] != ideal[i] {
			t.Fatalf("fault-free trajectory sample %d = %#x, ideal draw %#x", i, noisy[i], ideal[i])
		}
	}
}

func TestRunNoisyZeroNoiseMatchesRun(t *testing.T) {
	c := noisyTestCircuit(4, 2, 21)
	want := NewState(4).Run(c)
	got := RunNoisy(c, &NoiseModel{}, rand.New(rand.NewSource(1)))
	if d := maxAmpDiff(want, got); d != 0 {
		t.Fatalf("fault-free RunNoisy deviates from Run by %g", d)
	}
}

func TestSubstreamSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 1 << 40} {
		for t9 := int64(0); t9 < 64; t9++ {
			s := substreamSeed(base, t9)
			if s < 0 {
				t.Fatalf("negative seed %d", s)
			}
			if seen[s] {
				t.Fatalf("substream collision at base=%d t=%d", base, t9)
			}
			seen[s] = true
		}
	}
}

func TestSampleIntoMatchesSample(t *testing.T) {
	s := RandomState(6, rand.New(rand.NewSource(8)))
	want := s.Sample(rand.New(rand.NewSource(31)), 500)
	cdf := make([]float64, len(s.Amp))
	out := s.SampleInto(rand.New(rand.NewSource(31)), 500, make([]uint64, 0, 500), cdf)
	if len(want) != len(out) {
		t.Fatalf("length %d vs %d", len(out), len(want))
	}
	for i := range want {
		if want[i] != out[i] {
			t.Fatalf("sample %d differs: %#x vs %#x", i, out[i], want[i])
		}
	}
}

func TestSampleIntoZeroAlloc(t *testing.T) {
	s := RandomState(8, rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(5))
	out := make([]uint64, 0, 256)
	cdf := make([]float64, len(s.Amp))
	allocs := testing.AllocsPerRun(20, func() {
		out = s.SampleInto(rng, 256, out[:0], cdf)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestExpectationTableMatchesDiagonal(t *testing.T) {
	s := RandomState(7, rand.New(rand.NewSource(17)))
	cost := func(x uint64) float64 { return float64((x*2654435761)%97) - 48 }
	tbl := make([]float64, len(s.Amp))
	for x := range tbl {
		tbl[x] = cost(uint64(x))
	}
	want := s.ExpectationDiagonal(cost)
	got := s.ExpectationTable(tbl)
	if d := want - got; d > 1e-12 || d < -1e-12 {
		t.Fatalf("ExpectationTable = %g, ExpectationDiagonal = %g", got, want)
	}
}
