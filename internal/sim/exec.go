package sim

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/obsv"
)

// Fault-sparse noisy trajectories. At realistic error rates most
// trajectories draw no Pauli fault at all, and the ones that do draw their
// first fault well into the circuit. The old SampleNoisy nevertheless
// re-simulated every trajectory from |0…0⟩. The Executor below draws every
// trajectory's fault sites up front (the state-vector evolution consumes no
// randomness, so plan-then-replay draws the exact same RNG stream as
// interleaved draw-and-apply):
//
//   - fault-free trajectories sample from one shared ideal final state and
//     its prebuilt CDF — zero gate applications;
//   - faulty trajectories replay only from a checkpoint at their first
//     fault site: trajectories are sorted by first-fault gate and a single
//     rolling prefix state advances monotonically through the circuit, so
//     each prefix gate is applied once per SampleNoisy call no matter how
//     many trajectories branch off it;
//   - each trajectory owns a private RNG substream derived from one draw of
//     the caller's generator (splitmix64 over the trajectory index), so
//     trajectories fan out across cores with results that are byte-identical
//     regardless of GOMAXPROCS.
//
// The substream derivation intentionally changes the RNG stream relative to
// the pre-fusion SampleNoisy (which threaded one shared *rand.Rand through
// every trajectory sequentially); BENCH_baseline.json was refreshed in the
// same change. RunNoisy still consumes the caller's stream exactly as
// before and stays draw-for-draw compatible.

// fault is one planned Pauli injection: after applying circuit gate index
// gate, apply Pauli digit d0 to q0 and (for two-qubit faults, q1 ≥ 0) d1 to
// q1. Digits are base-4: 0=I, 1=X, 2=Y, 3=Z.
type fault struct {
	gate   int
	q0, q1 int
	d0, d1 int
}

// drawFaults samples the fault plan of one trajectory, consuming rng in the
// exact per-gate order of the original interleaved implementation (per
// CNOT-equivalent for two-qubit gates; see NoiseModel).
func drawFaults(c *circuit.Circuit, nm *NoiseModel, rng *rand.Rand, buf []fault) []fault {
	buf = buf[:0]
	for gi, g := range c.Gates {
		switch {
		case g.Kind == circuit.Barrier || g.Kind == circuit.Measure:
		case g.Arity() == 2:
			e := nm.twoQubitError(g.Q0, g.Q1)
			for i := 0; i < circuit.NativeCNOTCost(g.Kind); i++ {
				if rng.Float64() < e {
					k := 1 + rng.Intn(15)
					buf = append(buf, fault{gate: gi, q0: g.Q0, q1: g.Q1, d0: k & 3, d1: (k >> 2) & 3})
				}
			}
		default:
			if nm.OneQubit > 0 && rng.Float64() < nm.OneQubit {
				buf = append(buf, fault{gate: gi, q0: g.Q0, q1: -1, d0: rng.Intn(3) + 1})
			}
		}
	}
	return buf
}

// pauliGate maps a fault digit to its gate (ok=false for identity).
func pauliGate(q, d int) (circuit.Gate, bool) {
	switch d {
	case 1:
		return circuit.NewX(q), true
	case 2:
		return circuit.NewY(q), true
	case 3:
		return circuit.NewZ(q), true
	}
	return circuit.Gate{}, false
}

// appendFault appends the fault's Pauli digits to c as plain gates.
func appendFault(c *circuit.Circuit, f fault) {
	if g, ok := pauliGate(f.q0, f.d0); ok {
		c.Append(g)
	}
	if f.q1 >= 0 {
		if g, ok := pauliGate(f.q1, f.d1); ok {
			c.Append(g)
		}
	}
}

// faultSuffixProgram fuses the tail of c that follows the plan's first
// fault site: the first-site Pauli injections, then every remaining gate
// with its planned faults interleaved as gates. Both RunNoisy and the
// executor's trajectory replay build their suffix through this one helper,
// so the two paths produce bit-identical states from the same fault plan.
func faultSuffixProgram(c *circuit.Circuit, faults []fault) *Program {
	sc := circuit.New(c.NQubits)
	sc.Gates = make([]circuit.Gate, 0, len(c.Gates)+2*len(faults))
	fi := 0
	fg := faults[0].gate
	for fi < len(faults) && faults[fi].gate == fg {
		appendFault(sc, faults[fi])
		fi++
	}
	for gi := fg + 1; gi < len(c.Gates); gi++ {
		sc.Append(c.Gates[gi])
		for fi < len(faults) && faults[fi].gate == gi {
			appendFault(sc, faults[fi])
			fi++
		}
	}
	return Fuse(sc)
}

// substreamSeed derives the trajectory-t seed from one base draw of the
// caller's generator via splitmix64 — independent-looking streams from a
// single documented seed, stable across trajectory counts.
func substreamSeed(base, t int64) int64 {
	z := uint64(base) + (uint64(t)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z >> 1)
}

// Scratch pools shared by all executors: trajectory replay states and CDF
// buffers are recycled so steady-state noisy sampling allocates only its
// output slice.
var (
	statePool sync.Pool
	cdfPool   sync.Pool
)

// getState returns a pooled state of n qubits with undefined contents —
// callers overwrite every amplitude (copy or Reset) before use.
func getState(n int) *State {
	if v := statePool.Get(); v != nil {
		if s := v.(*State); s.N == n {
			return s
		}
	}
	return NewState(n)
}

func putState(s *State) { statePool.Put(s) }

// getCDF returns a pooled float64 buffer of length n, contents undefined.
func getCDF(n int) []float64 {
	if v := cdfPool.Get(); v != nil {
		if b := *v.(*[]float64); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func putCDF(b []float64) { cdfPool.Put(&b) }

// Executor caches the fused program, the ideal final state and its sampling
// CDF for one circuit, so repeated ideal and noisy sampling of the same
// compiled circuit (the ARG measurement pattern: one noiseless run, many
// noisy trajectories) shares a single ideal execution. Not safe for
// concurrent use; the parallelism lives inside SampleNoisy.
type Executor struct {
	circ     *circuit.Circuit
	prog     *Program
	ideal    *State
	idealCDF []float64
}

// NewExecutor fuses c and returns an executor over it.
func NewExecutor(c *circuit.Circuit) *Executor {
	return &Executor{circ: c, prog: Fuse(c)}
}

// Program returns the fused execution plan.
func (e *Executor) Program() *Program { return e.prog }

// Ideal returns the shared noiseless final state, computing it on first
// use. Callers must treat it as read-only.
func (e *Executor) Ideal() *State {
	if e.ideal == nil {
		sp := Collector().StartSpan(obsv.SpanSimIdealRun)
		e.ideal = e.prog.RunOn(NewState(e.circ.NQubits))
		sp.End()
	}
	return e.ideal
}

// idealCDFBuf returns the shared CDF of the ideal state, building it on
// first use.
func (e *Executor) idealCDFBuf() []float64 {
	if e.idealCDF == nil {
		st := e.Ideal()
		e.idealCDF = make([]float64, len(st.Amp))
		buildCDF(st.Amp, e.idealCDF)
	}
	return e.idealCDF
}

// SampleIdeal draws shots noiseless samples from the cached ideal state.
func (e *Executor) SampleIdeal(rng *rand.Rand, shots int) []uint64 {
	out := make([]uint64, shots)
	sampleCDFInto(e.idealCDFBuf(), rng, out)
	return out
}

// trajPlan is one trajectory's predrawn execution plan: its private RNG
// substream (already advanced past the fault draws), its fault sites, and
// the slice of the shared output it fills.
type trajPlan struct {
	rng    *rand.Rand
	faults []fault
	out    []uint64
}

// SampleNoisy draws shots measurement outcomes from the noisy execution of
// the executor's circuit, spread over the given number of independent
// Pauli-fault trajectories, applying readout bit-flips to every sample.
// Results are deterministic in rng's state and independent of GOMAXPROCS.
func (e *Executor) SampleNoisy(nm *NoiseModel, shots, trajectories int, rng *rand.Rand) []uint64 {
	col := Collector()
	span := col.StartSpan(obsv.SpanSimSampleNoisy)
	defer span.End()
	if trajectories < 1 {
		trajectories = 1
	}
	if trajectories > shots {
		trajectories = shots
	}
	base := rng.Int63()
	out := make([]uint64, shots)
	nb, extra := shots/trajectories, shots%trajectories
	plans := make([]trajPlan, 0, trajectories)
	off := 0
	for t := 0; t < trajectories; t++ {
		k := nb
		if t < extra {
			k++
		}
		if k == 0 {
			continue
		}
		trng := rand.New(rand.NewSource(substreamSeed(base, int64(t))))
		plans = append(plans, trajPlan{rng: trng, faults: drawFaults(e.circ, nm, trng, nil), out: out[off : off+k]})
		off += k
	}

	var idle, faulty []*trajPlan
	for i := range plans {
		if len(plans[i].faults) == 0 {
			idle = append(idle, &plans[i])
		} else {
			faulty = append(faulty, &plans[i])
		}
	}

	if len(idle) > 0 {
		cdf := e.idealCDFBuf()
		forEachPlan(idle, func(p *trajPlan) {
			sampleCDFInto(cdf, p.rng, p.out)
			flipReadoutAll(p.out, nm, p.rng)
		})
	}

	var replayGates int64
	if len(faulty) > 0 {
		replayGates = e.replayFaulty(faulty, nm)
	}

	if col.Enabled() {
		col.Add(obsv.CntSimNoisyShots, int64(len(out)))
		col.Add(obsv.CntSimTrajectories, int64(len(plans)))
		col.Add(obsv.CntSimIdealReuses, int64(len(idle)))
		col.Add(obsv.CntSimReplays, int64(len(faulty)))
		col.Add(obsv.CntSimCheckpoints, int64(len(faulty)))
		col.Add(obsv.CntSimReplayGates, replayGates)
	}
	return out
}

// replayFaulty runs the faulty trajectories in waves of GOMAXPROCS: a
// serial phase advances the rolling prefix state to each trajectory's first
// fault site (sorted order keeps the prefix monotone) and checkpoints it
// into the worker's scratch state; the parallel phase replays each suffix,
// samples and applies readout noise. Returns the number of gate
// applications spent on prefix advancement plus suffix replay.
func (e *Executor) replayFaulty(faulty []*trajPlan, nm *NoiseModel) int64 {
	sort.SliceStable(faulty, func(i, j int) bool {
		return faulty[i].faults[0].gate < faulty[j].faults[0].gate
	})
	gates := e.circ.Gates
	workers := runtime.GOMAXPROCS(0)
	if workers > len(faulty) {
		workers = len(faulty)
	}
	n := e.circ.NQubits
	prefix := getState(n)
	defer putState(prefix)
	prefix.Reset()
	prefixGate := -1
	scratch := make([]*State, workers)
	cdfs := make([][]float64, workers)
	for i := range scratch {
		scratch[i] = getState(n)
		cdfs[i] = getCDF(len(prefix.Amp))
		defer putState(scratch[i])
		defer putCDF(cdfs[i])
	}
	var replayGates int64
	for w0 := 0; w0 < len(faulty); w0 += workers {
		wave := faulty[w0:min(w0+workers, len(faulty))]
		for slot, p := range wave {
			fg := p.faults[0].gate
			for gi := prefixGate + 1; gi <= fg; gi++ {
				prefix.ApplyGate(gates[gi])
				replayGates++
			}
			prefixGate = fg
			copy(scratch[slot].Amp, prefix.Amp)
			replayGates += int64(len(gates) - 1 - fg)
		}
		if len(wave) == 1 {
			e.finishTrajectory(scratch[0], cdfs[0], wave[0], nm)
			continue
		}
		var wg sync.WaitGroup
		for slot, p := range wave {
			wg.Add(1)
			go func(slot int, p *trajPlan) {
				defer wg.Done()
				e.finishTrajectory(scratch[slot], cdfs[slot], p, nm)
			}(slot, p)
		}
		wg.Wait()
	}
	return replayGates
}

// finishTrajectory replays the fused fault suffix on the checkpointed state
// s, then samples the trajectory's shots and applies readout flips — all
// with the trajectory's private RNG substream.
func (e *Executor) finishTrajectory(s *State, cdf []float64, p *trajPlan, nm *NoiseModel) {
	faultSuffixProgram(e.circ, p.faults).apply(s)
	acc := buildCDF(s.Amp, cdf)
	for k := range p.out {
		p.out[k] = uint64(searchCDF(cdf, p.rng.Float64()*acc))
	}
	flipReadoutAll(p.out, nm, p.rng)
}

// forEachPlan applies f to every plan, fanning out across cores when there
// is more than one worker available. Plans write disjoint output regions
// and own their RNGs, so the result is order-independent.
func forEachPlan(plans []*trajPlan, f func(*trajPlan)) {
	if runtime.GOMAXPROCS(0) == 1 || len(plans) == 1 {
		for _, p := range plans {
			f(p)
		}
		return
	}
	var wg sync.WaitGroup
	for _, p := range plans {
		wg.Add(1)
		go func(p *trajPlan) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// flipReadoutAll applies per-qubit readout bit-flips to every sample.
func flipReadoutAll(samples []uint64, nm *NoiseModel, rng *rand.Rand) {
	if nm.Readout == nil {
		return
	}
	for i, x := range samples {
		samples[i] = flipReadout(x, nm.Readout, rng)
	}
}
