// Package ising models general Ising-form cost Hamiltonians
//
//	H(s) = Σ_i h_i·s_i + Σ_{i<j} J_ij·s_i·s_j,   s_i ∈ {−1,+1},
//
// the form every combinatorial optimization problem reduces to before QAOA
// (§II "QAOA-circuits", §VI "Applicability beyond QAOA-MaxCut"). It
// provides QUBO conversion, problem constructors (MaxCut, number
// partitioning), brute-force ground states for validation, and the bridge
// to the compiler: every quadratic term becomes one commuting CPhase gate,
// every linear term a virtual RZ.
//
// Bit convention: bit b_i of a basis state maps to spin s_i = 1 − 2·b_i
// (|0⟩ ↔ +1), matching the simulator's Z eigenvalues.
package ising

import (
	"fmt"
	"math"

	"repro/internal/compile"
	"repro/internal/graphs"
	"repro/internal/qaoa"
)

// Coupling is one quadratic term J·s_I·s_J with I < J.
type Coupling struct {
	I, J int
	Val  float64
}

// Model is an Ising Hamiltonian over N spins.
type Model struct {
	N     int
	field []float64
	coup  map[[2]int]float64
	order [][2]int // insertion order of couplings, for deterministic output
}

// New returns a zero Hamiltonian over n spins.
func New(n int) *Model {
	if n <= 0 || n > 63 {
		panic(fmt.Sprintf("ising: spin count %d outside [1,63]", n))
	}
	return &Model{N: n, field: make([]float64, n), coup: make(map[[2]int]float64)}
}

// SetField sets the linear coefficient h_i.
func (m *Model) SetField(i int, h float64) error {
	if i < 0 || i >= m.N {
		return fmt.Errorf("ising: spin %d out of range", i)
	}
	m.field[i] = h
	return nil
}

// Field returns h_i.
func (m *Model) Field(i int) float64 { return m.field[i] }

// SetCoupling sets the quadratic coefficient J_ij (i ≠ j). A zero value
// removes the term.
func (m *Model) SetCoupling(i, j int, val float64) error {
	if i < 0 || i >= m.N || j < 0 || j >= m.N || i == j {
		return fmt.Errorf("ising: invalid coupling (%d,%d)", i, j)
	}
	if i > j {
		i, j = j, i
	}
	key := [2]int{i, j}
	_, existed := m.coup[key]
	if val == 0 {
		if existed {
			delete(m.coup, key)
			for k, o := range m.order {
				if o == key {
					m.order = append(m.order[:k], m.order[k+1:]...)
					break
				}
			}
		}
		return nil
	}
	if !existed {
		m.order = append(m.order, key)
	}
	m.coup[key] = val
	return nil
}

// Coupling returns J_ij and whether the term exists.
func (m *Model) Coupling(i, j int) (float64, bool) {
	if i > j {
		i, j = j, i
	}
	v, ok := m.coup[[2]int{i, j}]
	return v, ok
}

// Couplings returns all quadratic terms in insertion order.
func (m *Model) Couplings() []Coupling {
	out := make([]Coupling, 0, len(m.order))
	for _, key := range m.order {
		out = append(out, Coupling{I: key[0], J: key[1], Val: m.coup[key]})
	}
	return out
}

// Spin returns s_i of basis state x: +1 for bit 0, −1 for bit 1.
func Spin(x uint64, i int) float64 {
	if x&(1<<uint(i)) != 0 {
		return -1
	}
	return 1
}

// Energy evaluates H at the spin configuration encoded by x.
func (m *Model) Energy(x uint64) float64 {
	var e float64
	for i, h := range m.field {
		if h != 0 {
			e += h * Spin(x, i)
		}
	}
	for _, key := range m.order {
		e += m.coup[key] * Spin(x, key[0]) * Spin(x, key[1])
	}
	return e
}

// InteractionGraph returns the graph of non-zero couplings — what the
// compiler's mapping passes profile.
func (m *Model) InteractionGraph() *graphs.Graph {
	g := graphs.New(m.N)
	for _, key := range m.order {
		g.MustAddEdge(key[0], key[1])
	}
	return g
}

// GroundState finds the minimum-energy configuration by exhaustive search
// (N ≤ 26).
func (m *Model) GroundState() (energy float64, state uint64, err error) {
	if m.N > 26 {
		return 0, 0, fmt.Errorf("ising: exhaustive ground state limited to 26 spins, got %d", m.N)
	}
	energy = math.Inf(1)
	for x := uint64(0); x < 1<<uint(m.N); x++ {
		if e := m.Energy(x); e < energy {
			energy, state = e, x
		}
	}
	return energy, state, nil
}

// CompileSpec converts the model into the compiler's generic cost spec for
// the given QAOA angles: the level-l cost unitary e^{-iγ_l·H} maps each
// J_ij term to CPhase(2γ_l·J_ij) and each h_i term to RZ(2γ_l·h_i).
func (m *Model) CompileSpec(params qaoa.Params) (compile.Spec, error) {
	if err := params.Validate(); err != nil {
		return compile.Spec{}, err
	}
	spec := compile.Spec{N: m.N, Levels: make([]compile.LevelSpec, params.P())}
	hasField := false
	for _, h := range m.field {
		if h != 0 {
			hasField = true
			break
		}
	}
	for l := range spec.Levels {
		gamma := params.Gamma[l]
		level := compile.LevelSpec{MixerBeta: params.Beta[l]}
		for _, c := range m.Couplings() {
			level.ZZ = append(level.ZZ, compile.ZZTerm{U: c.I, V: c.J, Theta: 2 * gamma * c.Val})
		}
		if hasField {
			level.Local = make([]float64, m.N)
			for q, h := range m.field {
				level.Local[q] = 2 * gamma * h
			}
		}
		spec.Levels[l] = level
	}
	return spec, nil
}

// FromQUBO converts a QUBO objective f(x) = Σ_ij Q_ij·x_i·x_j over binary
// x ∈ {0,1}^n (diagonal entries are the linear part) into an Ising model
// and constant offset such that f(x) = offset + Energy(x) for every x under
// the bit↔spin convention x_i = (1−s_i)/2.
func FromQUBO(q [][]float64) (*Model, float64, error) {
	n := len(q)
	if n == 0 {
		return nil, 0, fmt.Errorf("ising: empty QUBO")
	}
	for i, row := range q {
		if len(row) != n {
			return nil, 0, fmt.Errorf("ising: QUBO row %d has %d entries, want %d", i, len(row), n)
		}
	}
	m := New(n)
	offset := 0.0
	for i := 0; i < n; i++ {
		// Linear part from the diagonal: Q_ii·x_i = Q_ii·(1−s_i)/2.
		offset += q[i][i] / 2
		hi := -q[i][i] / 2
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// Off-diagonal (i,j) and (j,i) both contribute to the pair.
			hi -= (q[i][j] + q[j][i]) / 4
		}
		if err := m.SetField(i, hi); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			qij := q[i][j] + q[j][i]
			offset += qij / 4
			if qij != 0 {
				if err := m.SetCoupling(i, j, qij/4); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	return m, offset, nil
}

// MaxCut returns the Ising form of the MaxCut objective: cut(x) = offset −
// Energy(x) with J_uv = w_uv/2 and offset = TotalWeight/2, so *maximizing*
// the cut is *minimizing* the energy (the ground state is the maximum cut).
func MaxCut(g *graphs.Graph) (*Model, float64) {
	m := New(g.N())
	for _, e := range g.Edges() {
		if err := m.SetCoupling(e.U, e.V, e.Weight/2); err != nil {
			panic(err) // graph edges are always valid couplings
		}
	}
	return m, g.TotalWeight() / 2
}

// NumberPartition returns the Ising form of the two-way number-partitioning
// objective (Σ_i s_i·w_i)² = offset + Energy(x) with J_ij = 2·w_i·w_j and
// offset = Σ w_i². A perfect partition has Energy = −offset.
func NumberPartition(weights []float64) (*Model, float64) {
	m := New(len(weights))
	offset := 0.0
	for i, w := range weights {
		offset += w * w
		for j := i + 1; j < len(weights); j++ {
			if w*weights[j] != 0 {
				if err := m.SetCoupling(i, j, 2*w*weights[j]); err != nil {
					panic(err)
				}
			}
		}
	}
	return m, offset
}
