package ising

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

func TestSpinConvention(t *testing.T) {
	if Spin(0, 0) != 1 || Spin(1, 0) != -1 || Spin(2, 1) != -1 || Spin(2, 0) != 1 {
		t.Error("spin convention broken")
	}
}

func TestEnergyFieldOnly(t *testing.T) {
	m := New(2)
	if err := m.SetField(0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetField(1, -0.5); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    uint64
		want float64
	}{
		{0b00, 1.0},  // +1.5 − 0.5
		{0b01, -2.0}, // −1.5 − 0.5
		{0b10, 2.0},  // +1.5 + 0.5
		{0b11, -1.0}, // −1.5 + 0.5
	}
	for _, tc := range cases {
		if got := m.Energy(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Energy(%02b) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestEnergyCoupling(t *testing.T) {
	m := New(2)
	if err := m.SetCoupling(1, 0, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := m.Energy(0b00); got != 2 {
		t.Errorf("aligned energy %v", got)
	}
	if got := m.Energy(0b01); got != -2 {
		t.Errorf("anti-aligned energy %v", got)
	}
	v, ok := m.Coupling(0, 1)
	if !ok || v != 2 {
		t.Errorf("Coupling = (%v,%v)", v, ok)
	}
}

func TestSetCouplingRemove(t *testing.T) {
	m := New(3)
	if err := m.SetCoupling(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoupling(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoupling(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	cs := m.Couplings()
	if len(cs) != 1 || cs[0].I != 1 || cs[0].J != 2 {
		t.Errorf("Couplings after removal = %v", cs)
	}
	if _, ok := m.Coupling(0, 1); ok {
		t.Error("removed coupling still present")
	}
	if m.InteractionGraph().M() != 1 {
		t.Error("interaction graph wrong after removal")
	}
}

func TestSetErrors(t *testing.T) {
	m := New(3)
	if err := m.SetField(3, 1); err == nil {
		t.Error("out-of-range field accepted")
	}
	if err := m.SetCoupling(0, 0, 1); err == nil {
		t.Error("self-coupling accepted")
	}
	if err := m.SetCoupling(-1, 2, 1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestGroundStateSimple(t *testing.T) {
	// Ferromagnet with field: J_01 = −1 favors alignment, h_0 = −0.5
	// favors s_0 = +1 → ground state s = (+1,+1) = x=00, energy −1.5.
	m := New(2)
	if err := m.SetCoupling(0, 1, -1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetField(0, -0.5); err != nil {
		t.Fatal(err)
	}
	e, x, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 || math.Abs(e+1.5) > 1e-12 {
		t.Errorf("ground state (%v, %b)", e, x)
	}
}

// Property: FromQUBO preserves the objective exactly at every binary point.
func TestFromQUBOEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		q := make([][]float64, n)
		for i := range q {
			q[i] = make([]float64, n)
			for j := range q[i] {
				q[i][j] = math.Round(rng.NormFloat64()*4) / 2
			}
		}
		m, offset, err := FromQUBO(q)
		if err != nil {
			return false
		}
		for x := uint64(0); x < 1<<uint(n); x++ {
			var want float64
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					xi := float64((x >> uint(i)) & 1)
					xj := float64((x >> uint(j)) & 1)
					want += q[i][j] * xi * xj
				}
			}
			if math.Abs(want-(offset+m.Energy(x))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFromQUBOErrors(t *testing.T) {
	if _, _, err := FromQUBO(nil); err == nil {
		t.Error("empty QUBO accepted")
	}
	if _, _, err := FromQUBO([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged QUBO accepted")
	}
}

// Property: the MaxCut Ising form satisfies cut(x) = offset − Energy(x).
func TestMaxCutModelEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := graphs.ErdosRenyi(n, 0.5, rng)
		m, offset := MaxCut(g)
		for trial := 0; trial < 30; trial++ {
			x := rng.Uint64() & ((1 << uint(n)) - 1)
			cut := float64(graphs.CutValueBits(g, x))
			if math.Abs(cut-(offset-m.Energy(x))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaxCutGroundStateIsMaxCut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphs.ErdosRenyi(9, 0.5, rng)
	best, _, err := graphs.MaxCutExact(g)
	if err != nil {
		t.Fatal(err)
	}
	m, offset := MaxCut(g)
	e, x, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if got := offset - e; math.Abs(got-float64(best)) > 1e-9 {
		t.Errorf("ground-state cut %v, want %d", got, best)
	}
	if graphs.CutValueBits(g, x) != best {
		t.Errorf("ground state %b cuts %d, want %d", x, graphs.CutValueBits(g, x), best)
	}
}

func TestNumberPartitionPerfect(t *testing.T) {
	// {4, 5, 6, 7, 8} splits as {4,7,8} vs {5,6}? 19 vs 11 — no. Use
	// {1,2,3,4} → {1,4} vs {2,3}: perfect.
	weights := []float64{1, 2, 3, 4}
	m, offset := NumberPartition(weights)
	e, x, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+offset) > 1e-9 {
		t.Errorf("perfect partition energy %v, want %v", e, -offset)
	}
	// Verify the split is balanced.
	var a, b float64
	for i, w := range weights {
		if x&(1<<uint(i)) != 0 {
			a += w
		} else {
			b += w
		}
	}
	if a != b {
		t.Errorf("partition %b: %v vs %v", x, a, b)
	}
}

func TestNumberPartitionObjective(t *testing.T) {
	weights := []float64{2, 3, 5}
	m, offset := NumberPartition(weights)
	for x := uint64(0); x < 8; x++ {
		var diff float64
		for i, w := range weights {
			diff += Spin(x, i) * w
		}
		if math.Abs(diff*diff-(offset+m.Energy(x))) > 1e-9 {
			t.Errorf("x=%03b: (Σsw)² = %v, offset+E = %v", x, diff*diff, offset+m.Energy(x))
		}
	}
}

// The compiled general-Ising QAOA circuit must produce the same energy
// expectation as direct logical simulation, through every compilation
// strategy — the §VI generalization works end to end.
func TestCompileSpecSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(6)
	for i := 0; i < 6; i++ {
		if err := m.SetField(i, math.Round(rng.NormFloat64()*2)/2); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 9; trial++ {
		i, j := rng.Intn(6), rng.Intn(6)
		if i != j {
			if err := m.SetCoupling(i, j, math.Round(rng.NormFloat64()*2)/2); err != nil {
				t.Fatal(err)
			}
		}
	}
	params := qaoa.Params{Gamma: []float64{0.37}, Beta: []float64{0.21}}
	spec, err := m.CompileSpec(params)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: build the logical circuit by hand and simulate.
	logical := buildLogical(m, params)
	want := sim.NewState(m.N).Run(logical).ExpectationDiagonal(m.Energy)

	dev := device.Melbourne15()
	for _, preset := range compile.Presets {
		res, err := compile.CompileSpec(spec, dev, preset.Options(rand.New(rand.NewSource(11))))
		if err != nil {
			t.Fatalf("%v: %v", preset, err)
		}
		s := sim.NewState(res.Circuit.NQubits).Run(res.Circuit)
		got := s.ExpectationDiagonal(func(y uint64) float64 {
			return m.Energy(res.ExtractLogical(y))
		})
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("%v: compiled ⟨H⟩ = %v, want %v", preset, got, want)
		}
	}
}

// buildLogical constructs the reference QAOA circuit for m without the
// compiler: H on all, then e^{-iγH} term by term, then the mixer.
func buildLogical(m *Model, params qaoa.Params) *circuit.Circuit {
	c := circuit.New(m.N)
	for q := 0; q < m.N; q++ {
		c.Append(circuit.NewH(q))
	}
	for l := 0; l < params.P(); l++ {
		gamma := params.Gamma[l]
		for q := 0; q < m.N; q++ {
			if h := m.Field(q); h != 0 {
				c.Append(circuit.NewRZ(q, 2*gamma*h))
			}
		}
		for _, cp := range m.Couplings() {
			c.Append(circuit.NewCPhase(cp.I, cp.J, 2*gamma*cp.Val))
		}
		for q := 0; q < m.N; q++ {
			c.Append(circuit.NewRX(q, 2*params.Beta[l]))
		}
	}
	return c
}

// Weighted MaxCut goes through the Ising path end to end: the ground state
// must be the weighted optimum and the compiled circuit must preserve the
// energy expectation.
func TestWeightedMaxCutEndToEnd(t *testing.T) {
	g := graphs.New(4)
	if err := g.AddWeightedEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(2, 3, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 3, 1); err != nil {
		t.Fatal(err)
	}
	m, offset := MaxCut(g)
	e, x, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal weighted cut: separate {0,2} from {1,3} → cut = 3+1+3+1 = 8.
	if got := offset - e; math.Abs(got-8) > 1e-9 {
		t.Errorf("weighted optimum = %v, want 8", got)
	}
	if got := float64(graphs.CutValueBits(g, x)); got != 4 {
		// All 4 edges crossed (unweighted count).
		t.Errorf("ground state crosses %v edges, want 4", got)
	}

	params := qaoa.Params{Gamma: []float64{0.21}, Beta: []float64{0.34}}
	spec, err := m.CompileSpec(params)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.NewState(4).Run(buildLogical(m, params)).ExpectationDiagonal(m.Energy)
	res, err := compile.CompileSpec(spec, device.Melbourne15(),
		compile.PresetIC.Options(rand.New(rand.NewSource(61))))
	if err != nil {
		t.Fatal(err)
	}
	got := sim.NewState(res.Circuit.NQubits).Run(res.Circuit).ExpectationDiagonal(func(y uint64) float64 {
		return m.Energy(res.ExtractLogical(y))
	})
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("weighted compiled ⟨H⟩ = %v, want %v", got, want)
	}
}
