package exp

import (
	"context"
	"testing"

	"repro/internal/obsv"
)

// The evidence suite's per-record counter deltas must add up exactly: in
// legacy mode every evaluation/point is a full compile and nothing binds;
// in skeleton mode compiles collapse to one per problem instance and every
// evaluation/point is a bind. This is the accounting the committed
// BENCH_parambind_before/after.json pair rests on.
func TestParamBindSuiteCounterAccounting(t *testing.T) {
	cfg := ParamBindConfig{
		Instances: 1, Nodes: 8, Restarts: 1, MaxIter: 6,
		Shots: 32, Trajectories: 2,
		SweepInstances: 1, SweepNodes: 8, GammaSteps: 3, BetaSteps: 3,
		Seed: 29,
	}
	for _, perEval := range []bool{true, false} {
		cfg.CompilePerEval = perEval
		obs := obsv.New()
		SetCollector(obs)
		rep := obsv.NewReport("test", "dev", nil)
		if err := RunParamBindSuite(context.Background(), cfg, rep); err != nil {
			SetCollector(nil)
			t.Fatalf("perEval=%v: %v", perEval, err)
		}
		SetCollector(nil)
		if len(rep.Benchmarks) != 2 {
			t.Fatalf("perEval=%v: %d records, want 2", perEval, len(rep.Benchmarks))
		}
		for _, b := range rep.Benchmarks {
			if b.Evaluations <= 0 {
				t.Errorf("perEval=%v: %s ran %d evaluations", perEval, b.Name, b.Evaluations)
			}
			if perEval {
				if b.Compilations != b.Evaluations || b.SkeletonCompiles != 0 || b.Binds != 0 {
					t.Errorf("perEval: %s compiles=%d skeletons=%d binds=%d, want evals=%d compiles, no skeleton work",
						b.Name, b.Compilations, b.SkeletonCompiles, b.Binds, b.Evaluations)
				}
				continue
			}
			// Skeleton mode: one pipeline run per problem instance (counted
			// both as a compilation and a skeleton compile), one bind per
			// evaluation/point.
			if b.Compilations != int64(b.Instances) || b.SkeletonCompiles != int64(b.Instances) {
				t.Errorf("bind: %s compiles=%d skeletons=%d, want %d each",
					b.Name, b.Compilations, b.SkeletonCompiles, b.Instances)
			}
			if b.Binds != b.Evaluations {
				t.Errorf("bind: %s binds=%d, want one per evaluation (%d)", b.Name, b.Binds, b.Evaluations)
			}
		}
	}
}
