package exp

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/crosstalk"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// The Ext* runners go beyond the paper's printed evaluation: they cover the
// extensions §VI sketches (multi-level circuits, crosstalk serialization)
// and the design-choice ablations listed in DESIGN.md §5, using the same
// harness conventions as the figure runners.

// ExtLevelsConfig parameterizes the multi-level (p > 1) depth-scaling study.
type ExtLevelsConfig struct {
	Nodes     int
	Degree    int
	Instances int
	Levels    []int
	Seed      int64
}

// DefaultExtLevels returns a 16-node 3-regular sweep over p = 1..4.
func DefaultExtLevels() ExtLevelsConfig {
	return ExtLevelsConfig{Nodes: 16, Degree: 3, Instances: 20, Levels: []int{1, 2, 3, 4}, Seed: 21}
}

// ExtLevels measures how NAIVE and IC compiled depth and gate count scale
// with the QAOA level count p; the IC advantage compounds because every
// level's cost layer is re-ordered under the live layout.
func ExtLevels(ctx context.Context, cfg ExtLevelsConfig) (*Table, error) {
	dev := device.Tokyo20()
	t := &Table{
		ID:      "ext-levels",
		Title:   "depth/gates vs QAOA level count p (NAIVE vs IC)",
		Columns: []string{"NAIVE dep", "IC dep", "NAIVE gat", "IC gat", "IC/NAIVE dep"},
	}
	for _, p := range cfg.Levels {
		params := qaoa.NewParams(p)
		for l := 0; l < p; l++ {
			params.Gamma[l] = 0.5
			params.Beta[l] = 0.2
		}
		var naive, ic []metrics.Sample
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed+int64(p)*97, i)
			g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			for _, preset := range []compile.Preset{compile.PresetNaive, compile.PresetIC} {
				res, err := compile.CompileContext(ctx, prob, params, dev, preset.Options(instanceRNG(cfg.Seed, i*10+int(preset))))
				if err != nil {
					return nil, err
				}
				s := metrics.Sample{Depth: res.Depth, GateCount: res.GateCount}
				if preset == compile.PresetNaive {
					naive = append(naive, s)
				} else {
					ic = append(ic, s)
				}
			}
		}
		na, ia := metrics.Collect(naive), metrics.Collect(ic)
		t.Add(fmt.Sprintf("p=%d", p),
			na.Depth.Mean, ia.Depth.Mean, na.GateCount.Mean, ia.GateCount.Mean,
			metrics.Ratio(ia.Depth.Mean, na.Depth.Mean))
	}
	return t, nil
}

// ExtMappersConfig parameterizes the initial-mapping ablation.
type ExtMappersConfig struct {
	Nodes     int
	Degree    int
	Instances int
	Seed      int64
}

// DefaultExtMappers returns a 20-node 3-regular configuration.
func DefaultExtMappers() ExtMappersConfig {
	return ExtMappersConfig{Nodes: 20, Degree: 3, Instances: 20, Seed: 22}
}

// ExtMappers ablates the initial-mapping policy — random, GreedyV, QAIM and
// reverse traversal (Li et al.) — under a fixed ordering strategy (random),
// reporting compiled depth, swaps, and the mapping pass's own cost.
func ExtMappers(ctx context.Context, cfg ExtMappersConfig) (*Table, error) {
	dev := device.Tokyo20()
	mappers := []compile.Mapper{compile.MapRandom, compile.MapGreedyV, compile.MapQAIM, compile.MapReverse}
	t := &Table{
		ID:      "ext-mappers",
		Title:   "initial-mapping ablation (random CPhase order, tokyo)",
		Columns: []string{"depth", "gates", "swaps", "map ms"},
	}
	for _, mapper := range mappers {
		var samples []metrics.Sample
		var mapMillis float64
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			opts := compile.Options{
				Mapper:   mapper,
				Strategy: compile.WholeRandom,
				Rng:      instanceRNG(cfg.Seed, i*10+int(mapper)),
			}
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev, opts)
			if err != nil {
				return nil, err
			}
			samples = append(samples, metrics.Sample{
				Depth: res.Depth, GateCount: res.GateCount, SwapCount: res.SwapCount,
			})
			mapMillis += float64(res.MapTime.Microseconds()) / 1000
		}
		agg := metrics.Collect(samples)
		t.Add(mapper.String(), agg.Depth.Mean, agg.GateCount.Mean, agg.SwapCount.Mean,
			mapMillis/float64(cfg.Instances))
	}
	return t, nil
}

// ExtCrosstalkConfig parameterizes the crosstalk-serialization study.
type ExtCrosstalkConfig struct {
	Nodes      int
	EdgeProb   float64
	Instances  int
	ProneFracs []float64 // fraction of adjacent coupler pairs marked prone
	Seed       int64
}

// DefaultExtCrosstalk mirrors the Murali et al. observation that only a few
// couplings are prone: fractions from 0 to 25%.
func DefaultExtCrosstalk() ExtCrosstalkConfig {
	return ExtCrosstalkConfig{Nodes: 12, EdgeProb: 0.5, Instances: 20,
		ProneFracs: []float64{0, 0.05, 0.1, 0.25}, Seed: 23}
}

// ExtCrosstalk measures the depth cost of crosstalk-aware serialization
// (§VI): IC-compiled circuits on melbourne are re-scheduled so no prone
// coupler pair runs concurrently, for growing prone-set sizes.
func ExtCrosstalk(ctx context.Context, cfg ExtCrosstalkConfig) (*Table, error) {
	dev := device.Melbourne15()
	var edges [][2]int
	for _, e := range dev.Coupling.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	candidates := crosstalk.AdjacentCouplerPairs(edges, dev.Connected)

	t := &Table{
		ID:      "ext-crosstalk",
		Title:   "crosstalk-aware schedule depth vs prone-pair fraction (IC, melbourne)",
		Columns: []string{"prone pairs", "depth", "depth overhead %"},
	}
	for _, frac := range cfg.ProneFracs {
		prng := rand.New(rand.NewSource(cfg.Seed * 31))
		prone := crosstalk.NewPronePairs()
		for _, pr := range candidates {
			if prng.Float64() < frac {
				prone.Add(pr[0][0], pr[0][1], pr[1][0], pr[1][1])
			}
		}
		var baseSum, xtSum float64
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := sampleGraph(ErdosRenyi, cfg.Nodes, cfg.EdgeProb, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev,
				compile.PresetIC.Options(instanceRNG(cfg.Seed, i*10)))
			if err != nil {
				return nil, err
			}
			baseSum += float64(res.Circuit.Depth())
			xtSum += float64(crosstalk.Depth(res.Circuit, prone))
		}
		base := baseSum / float64(cfg.Instances)
		xt := xtSum / float64(cfg.Instances)
		t.Add(fmt.Sprintf("f=%.2f", frac), float64(prone.Len()), xt,
			metrics.PercentChange(base, xt))
	}
	return t, nil
}

// ExtOptimizeConfig parameterizes the peephole-optimizer gains study.
type ExtOptimizeConfig struct {
	Nodes     int
	Degree    int
	Instances int
	Seed      int64
}

// DefaultExtOptimize returns a 16-node 4-regular configuration.
func DefaultExtOptimize() ExtOptimizeConfig {
	return ExtOptimizeConfig{Nodes: 16, Degree: 4, Instances: 20, Seed: 24}
}

// ExtOptimize measures the native gate-count reduction the peephole
// optimizer achieves on top of each compilation methodology.
func ExtOptimize(ctx context.Context, cfg ExtOptimizeConfig) (*Table, error) {
	dev := device.Tokyo20()
	t := &Table{
		ID:      "ext-optimize",
		Title:   "peephole gains: native gate count plain vs optimized",
		Columns: []string{"plain gates", "opt gates", "reduction %"},
	}
	for _, preset := range []compile.Preset{compile.PresetNaive, compile.PresetQAIM, compile.PresetIP, compile.PresetIC} {
		var plainSum, optSum float64
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			plainOpts := preset.Options(instanceRNG(cfg.Seed, i*10+int(preset)))
			plain, err := compile.CompileContext(ctx, prob, structuralParams, dev, plainOpts)
			if err != nil {
				return nil, err
			}
			optOpts := preset.Options(instanceRNG(cfg.Seed, i*10+int(preset)))
			optOpts.Optimize = true
			opt, err := compile.CompileContext(ctx, prob, structuralParams, dev, optOpts)
			if err != nil {
				return nil, err
			}
			plainSum += float64(plain.GateCount)
			optSum += float64(opt.GateCount)
		}
		plainMean := plainSum / float64(cfg.Instances)
		optMean := optSum / float64(cfg.Instances)
		t.Add(preset.String(), plainMean, optMean, -metrics.PercentChange(plainMean, optMean))
	}
	return t, nil
}

// ExtDevicesConfig parameterizes the topology-comparison study.
type ExtDevicesConfig struct {
	Nodes     int
	Degree    int
	Instances int
	Seed      int64
}

// DefaultExtDevices returns a 14-node 3-regular configuration that fits
// every compared device.
func DefaultExtDevices() ExtDevicesConfig {
	return ExtDevicesConfig{Nodes: 14, Degree: 3, Instances: 20, Seed: 25}
}

// ExtDevices compares IC-compiled circuit quality across device topologies
// of different connectivity: tokyo's dense mesh, melbourne's ladder, the
// heavy-hex falcon generation, and a plain grid. Sparser coupling costs
// SWAPs — quantifying how much the paper's tokyo results depend on its
// rich connectivity.
func ExtDevices(ctx context.Context, cfg ExtDevicesConfig) (*Table, error) {
	devs := []*device.Device{
		device.Tokyo20(), device.Melbourne15(), device.Falcon27(), device.Grid(4, 4),
	}
	t := &Table{
		ID:      "ext-devices",
		Title:   "IC compiled quality across device topologies (14-node 3-regular)",
		Columns: []string{"qubits", "couplers", "depth", "gates", "swaps"},
	}
	for _, dev := range devs {
		var samples []metrics.Sample
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev,
				compile.PresetIC.Options(instanceRNG(cfg.Seed, i*10)))
			if err != nil {
				return nil, err
			}
			samples = append(samples, metrics.Sample{
				Depth: res.Depth, GateCount: res.GateCount, SwapCount: res.SwapCount,
			})
		}
		agg := metrics.Collect(samples)
		t.Add(dev.Name, float64(dev.NQubits()), float64(dev.Coupling.M()),
			agg.Depth.Mean, agg.GateCount.Mean, agg.SwapCount.Mean)
	}
	return t, nil
}

// ExtOrderingConfig parameterizes the IP-vs-Vizing ordering ablation.
type ExtOrderingConfig struct {
	Nodes     int
	Degree    int
	Instances int
	Seed      int64
}

// DefaultExtOrdering returns a 18-node 6-regular configuration (dense
// enough that the layer-count difference matters).
func DefaultExtOrdering() ExtOrderingConfig {
	return ExtOrderingConfig{Nodes: 18, Degree: 6, Instances: 20, Seed: 26}
}

// ExtOrdering ablates the cost-block ordering pass: IP's first-fit bin
// packing vs Misra–Gries edge coloring (Vizing's Δ+1 guarantee), reporting
// the logical layer count against the MOQ = Δ lower bound and the routed
// depth on tokyo.
func ExtOrdering(ctx context.Context, cfg ExtOrderingConfig) (*Table, error) {
	dev := device.Tokyo20()
	t := &Table{
		ID:      "ext-ordering",
		Title:   "cost-block ordering: IP bin packing vs Vizing coloring",
		Columns: []string{"cost layers", "MOQ bound", "routed depth", "routed gates"},
	}
	type strat struct {
		name     string
		strategy compile.Strategy
	}
	for _, st := range []strat{{"IP", compile.WholeIP}, {"vizing", compile.WholeColor}} {
		var layerSum, moqSum float64
		var samples []metrics.Sample
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			opts := compile.Options{Mapper: compile.MapQAIM, Strategy: st.strategy,
				Rng: instanceRNG(cfg.Seed, i*10)}
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev, opts)
			if err != nil {
				return nil, err
			}
			// Logical cost-block layer count: order the terms with the
			// strategy and measure the ASAP depth of the bare block.
			var ordered []compile.ZZTerm
			terms := make([]compile.ZZTerm, 0, g.M())
			for _, e := range g.Edges() {
				ordered = nil
				terms = append(terms, compile.ZZTerm{U: e.U, V: e.V, Theta: 0.5})
			}
			if st.strategy == compile.WholeIP {
				layers := compile.IPTermLayers(cfg.Nodes, terms, instanceRNG(cfg.Seed, i*10+1), 0)
				layerSum += float64(len(layers))
			} else {
				ordered, err = compile.ColorTermOrder(cfg.Nodes, terms)
				if err != nil {
					return nil, err
				}
				block := circuitFromTerms(cfg.Nodes, ordered)
				layerSum += float64(block.Depth())
			}
			moqSum += float64(compile.MOQ(g))
			samples = append(samples, metrics.Sample{Depth: res.Depth, GateCount: res.GateCount})
		}
		agg := metrics.Collect(samples)
		t.Add(st.name, layerSum/float64(cfg.Instances), moqSum/float64(cfg.Instances),
			agg.Depth.Mean, agg.GateCount.Mean)
	}
	return t, nil
}

// ExtMitigationConfig parameterizes the readout-mitigation study.
type ExtMitigationConfig struct {
	Nodes        int
	Degree       int
	Instances    int
	Shots        int
	Trajectories int
	Seed         int64
}

// DefaultExtMitigation returns a 12-node 3-regular configuration.
func DefaultExtMitigation() ExtMitigationConfig {
	return ExtMitigationConfig{Nodes: 12, Degree: 3, Instances: 10,
		Shots: 8192, Trajectories: 32, Seed: 27}
}

// ExtMitigation measures how much of the approximation-ratio gap tensored
// readout-error mitigation recovers: VIC-compiled circuits run on the noisy
// melbourne model, ARG computed from raw counts and from mitigated counts.
// Gate errors remain, so mitigation closes only the readout share.
func ExtMitigation(ctx context.Context, cfg ExtMitigationConfig) (*Table, error) {
	dev := device.Melbourne15()
	nm := sim.NoiseFromDevice(dev)
	var rawSum, mitSum float64
	count := 0
	for i := 0; i < cfg.Instances; i++ {
		rng := instanceRNG(cfg.Seed, i)
		g, err := graphs.RandomRegular(cfg.Nodes, cfg.Degree, rng)
		if err != nil {
			return nil, err
		}
		prob, err := qaoa.NewMaxCut(g)
		if err != nil {
			return nil, err
		}
		if prob.MaxCut == 0 {
			continue
		}
		gamma, beta, _, err := optimize.MaximizeP1(func(gm, bt float64) float64 {
			return qaoa.ExpectationP1Analytic(g, gm, bt)
		}, 16)
		if err != nil {
			return nil, err
		}
		res, err := compile.CompileContext(ctx, prob, qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}},
			dev, compile.PresetVIC.Options(instanceRNG(cfg.Seed, i*10)))
		if err != nil {
			return nil, err
		}
		srng := instanceRNG(cfg.Seed, i*10+5)
		ex := sim.NewExecutor(res.Circuit)
		r0, err := approxRatioPhysical(prob, res, ex.SampleIdeal(srng, cfg.Shots))
		if err != nil {
			return nil, err
		}
		noisySamples := ex.SampleNoisy(nm, cfg.Shots, cfg.Trajectories, srng)
		rhRaw, err := approxRatioPhysical(prob, res, noisySamples)
		if err != nil {
			return nil, err
		}
		mitigated, err := sim.MitigateReadout(sim.Histogram(noisySamples), dev.NQubits(), dev.Calib.ReadoutError)
		if err != nil {
			return nil, err
		}
		// Use the unclamped quasi-probabilities: their expectation is an
		// unbiased estimator, whereas clamping a sparse 2^15-outcome
		// histogram at finite shots introduces bias.
		meanCut := sim.ExpectationFromDistribution(mitigated, func(y uint64) float64 {
			return prob.Cost(res.ExtractLogical(y))
		})
		rhMit := meanCut / float64(prob.MaxCut)
		rawSum += qaoa.ARG(r0, rhRaw)
		mitSum += qaoa.ARG(r0, rhMit)
		count++
	}
	t := &Table{
		ID:      "ext-mitigation",
		Title:   "ARG with and without readout-error mitigation (VIC, melbourne)",
		Columns: []string{"ARG %"},
	}
	t.Add("raw", rawSum/float64(count))
	t.Add("mitigated", mitSum/float64(count))
	return t, nil
}

// ExtWorkloadsConfig parameterizes the workload-family sensitivity study.
type ExtWorkloadsConfig struct {
	Nodes     int
	Instances int
	Seed      int64
}

// DefaultExtWorkloads returns a 16-node configuration.
func DefaultExtWorkloads() ExtWorkloadsConfig {
	return ExtWorkloadsConfig{Nodes: 16, Instances: 20, Seed: 28}
}

// ExtWorkloads compares IC-compiled quality across problem-graph families
// with matched edge budgets: Erdős–Rényi, random regular, Watts–Strogatz
// small-world, and Barabási–Albert scale-free. Hub-heavy instances force
// more cost layers (MOQ = max degree), the workload effect §V-E attributes
// to disproportionate node connectivity.
func ExtWorkloads(ctx context.Context, cfg ExtWorkloadsConfig) (*Table, error) {
	dev := device.Tokyo20()
	n := cfg.Nodes
	families := []struct {
		name   string
		sample func(rng *rand.Rand) (*graphs.Graph, error)
	}{
		{"er", func(rng *rand.Rand) (*graphs.Graph, error) {
			return graphs.ErdosRenyi(n, 4.0/float64(n-1), rng), nil // mean degree ≈ 4
		}},
		{"regular", func(rng *rand.Rand) (*graphs.Graph, error) {
			return graphs.RandomRegular(n, 4, rng)
		}},
		{"smallworld", func(rng *rand.Rand) (*graphs.Graph, error) {
			return graphs.WattsStrogatz(n, 4, 0.2, rng)
		}},
		{"scalefree", func(rng *rand.Rand) (*graphs.Graph, error) {
			return graphs.BarabasiAlbert(n, 2, rng) // ≈ 2 edges per node
		}},
	}
	t := &Table{
		ID:      "ext-workloads",
		Title:   "IC quality across workload families (16 nodes, tokyo)",
		Columns: []string{"mean edges", "mean MOQ", "depth", "gates", "swaps"},
	}
	for _, fam := range families {
		var edgeSum, moqSum float64
		var samples []metrics.Sample
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(cfg.Seed, i)
			g, err := fam.sample(rng)
			if err != nil {
				return nil, err
			}
			prob := &qaoa.Problem{G: g, MaxCut: 1}
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev,
				compile.PresetIC.Options(instanceRNG(cfg.Seed, i*10)))
			if err != nil {
				return nil, err
			}
			edgeSum += float64(g.M())
			moqSum += float64(compile.MOQ(g))
			samples = append(samples, metrics.Sample{
				Depth: res.Depth, GateCount: res.GateCount, SwapCount: res.SwapCount,
			})
		}
		agg := metrics.Collect(samples)
		t.Add(fam.name, edgeSum/float64(cfg.Instances), moqSum/float64(cfg.Instances),
			agg.Depth.Mean, agg.GateCount.Mean, agg.SwapCount.Mean)
	}
	return t, nil
}
