package exp

import (
	"fmt"
	"strings"
	"sync"
)

// InstanceFailure records one instance×preset compilation that kept failing
// after every retry, or an instance whose goroutine panicked (Preset "-").
type InstanceFailure struct {
	Instance int
	Preset   string
	Attempts int
	Err      string
}

// PointReport is the structured fault summary of one sweep point: how many
// instance×preset compilations were requested, how many failed, and the
// specific failures. Points that fail partially still contribute their
// surviving samples to the aggregates; the report is how the loss is
// surfaced instead of silently shrinking N.
type PointReport struct {
	Device    string
	Workload  string
	N         int
	Param     float64
	Instances int // requested instances
	Presets   int // presets per instance
	Failed    int // failed instance×preset pairs
	Failures  []InstanceFailure
}

// Summary renders the report as "N-of-M" plus one line per failure.
func (r *PointReport) Summary() string {
	total := r.Instances * r.Presets
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s n=%d param=%v: %d/%d compilations ok (%d failed)",
		r.Device, r.Workload, r.N, r.Param, total-r.Failed, total, r.Failed)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  instance %d preset %s after %d attempts: %s", f.Instance, f.Preset, f.Attempts, f.Err)
	}
	return b.String()
}

// Package-level fault collector. runPoint runs deep inside the figure
// generators, whose signatures mirror the paper's tables; rather than
// threading a report through every one of them, partial failures are
// recorded here and drained by the caller (cmd/qaoa-exp prints them after
// each figure). Safe for concurrent use.
var (
	reportMu     sync.Mutex
	faultReports []*PointReport
)

func recordReport(r *PointReport) {
	reportMu.Lock()
	defer reportMu.Unlock()
	faultReports = append(faultReports, r)
}

// DrainFaultReports returns and clears the fault reports accumulated by
// runPoint since the previous drain.
func DrainFaultReports() []*PointReport {
	reportMu.Lock()
	defer reportMu.Unlock()
	out := faultReports
	faultReports = nil
	return out
}
