package exp

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/obsv"
)

// reducedBenchConfig keeps the suite fast enough for the unit-test tier.
func reducedBenchConfig() BenchConfig {
	cfg := DefaultBenchConfig()
	cfg.Instances = 2
	cfg.Nodes = 12
	cfg.ARGShots = 128
	cfg.ARGTrajectories = 2
	return cfg
}

func runSuiteOnce(t *testing.T) []byte {
	t.Helper()
	c := obsv.New()
	SetCollector(c)
	defer SetCollector(nil)
	rep := obsv.NewReport("bench-test", "r", nil)
	rep.TimeUnitSec = 0.01 // fixed stand-in; stripped before comparison anyway
	if err := RunBenchSuite(context.Background(), reducedBenchConfig(), rep); err != nil {
		t.Fatal(err)
	}
	rep.AttachCollector(c)
	rep.StripTimings()
	rep.CreatedAt = ""
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The whole suite is seeded, so two runs must agree byte for byte once the
// wall-clock fields are stripped — the property the CI gate's swap/depth
// thresholds rely on.
func TestBenchSuiteDeterministic(t *testing.T) {
	a := runSuiteOnce(t)
	b := runSuiteOnce(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("stripped reports differ between identical runs:\n%s\n---\n%s", a, b)
	}
}

func TestBenchSuiteRecordsAllFigures(t *testing.T) {
	c := obsv.New()
	SetCollector(c)
	defer SetCollector(nil)
	rep := obsv.NewReport("bench-test", "r", nil)
	if err := RunBenchSuite(context.Background(), reducedBenchConfig(), rep); err != nil {
		t.Fatal(err)
	}
	rep.AttachCollector(c)
	for _, name := range []string{
		"fig7-er/NAIVE", "fig7-er/GreedyV", "fig7-er/QAIM",
		"fig7-reg/NAIVE", "fig7-reg/GreedyV", "fig7-reg/QAIM",
		"fig8/NAIVE", "fig8/GreedyV", "fig8/QAIM",
		"fig9/QAIM", "fig9/IP", "fig9/IC",
	} {
		b, ok := rep.Benchmark(name)
		if !ok {
			t.Fatalf("record %s missing", name)
		}
		if b.Gates <= 0 || b.Depth <= 0 {
			t.Errorf("%s: empty structural metrics %+v", name, b)
		}
		if b.ARGPct == 0 || b.SuccessProb == 0 {
			t.Errorf("%s: ARG/success not measured: arg=%v succ=%v", name, b.ARGPct, b.SuccessProb)
		}
	}
	if c.Counter("compile/compilations") == 0 || c.Counter("router/routes") == 0 {
		t.Error("suite ran without feeding the collector")
	}
	if c.Counter("device/hopdist_hits") == 0 {
		t.Error("device cache counters never recorded a hit across the suite")
	}
}

// The exp fan-out hammers one collector from GOMAXPROCS goroutines; under
// -race this is the concurrency-safety check for the whole instrumentation
// path (collector, router counters, device cache counters).
func TestCollectorSafeUnderSweepFanOut(t *testing.T) {
	c := obsv.New()
	SetCollector(c)
	defer SetCollector(nil)
	dev := device.Tokyo20()
	dev.Obs = c
	presets := []compile.Preset{compile.PresetNaive, compile.PresetQAIM, compile.PresetIC}
	if _, err := runPoint(Regular, 12, 3, dev, presets, 8, 3, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Counter("exp/instances"); got != 8 {
		t.Errorf("exp/instances = %d, want 8", got)
	}
	if got := c.Counter("compile/compilations"); got != int64(8*len(presets)) {
		t.Errorf("compile/compilations = %d, want %d", got, 8*len(presets))
	}
	snap := c.Snapshot()
	var instSpan *obsv.SpanStat
	for i := range snap.Spans {
		if snap.Spans[i].Name == "exp/instance" {
			instSpan = &snap.Spans[i]
		}
	}
	if instSpan == nil || instSpan.Count != 8 {
		t.Errorf("exp/instance span = %+v, want count 8", instSpan)
	}
}

// The sweep A/B pair: the same (γ,β) landscape evaluated with a full
// compile per grid point versus one skeleton compile per instance plus a
// bind per point. The outputs are byte-identical (see sweep_test.go); the
// difference is pure compile work, so this is the end-to-end wall-clock
// evidence for parameterized compilation.
func benchAngleSweep(b *testing.B, perPoint bool) {
	cfg := AngleSweepConfig{Nodes: 10, Degree: 3, Instances: 1,
		GammaSteps: 8, BetaSteps: 8, Seed: 17, CompilePerPoint: perPoint}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AngleSweep(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAngleSweepCompilePerPoint(b *testing.B) { benchAngleSweep(b, true) }

func BenchmarkAngleSweepBindPerPoint(b *testing.B) { benchAngleSweep(b, false) }
