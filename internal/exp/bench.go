package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// BenchConfig parameterizes the CI benchmark suite: reduced-scale versions
// of the Fig. 7/8/9 workloads whose structural results (swaps, depth, gate
// count) are fully deterministic under the fixed seed, so any drift in a
// BENCH_*.json record is a real behavioral change.
type BenchConfig struct {
	// Instances is the number of workload graphs per record (default 4).
	Instances int
	// Nodes is the graph size of the tokyo records (default 16; Fig. 8 uses
	// Nodes+2 to keep a size sweep flavor).
	Nodes int
	// Seed fixes every random stream of the suite (default 11).
	Seed int64
	// ARGNodes, ARGShots and ARGTrajectories size the reduced noisy
	// melbourne workload on which each record's ARG and success probability
	// are measured (defaults 10, 4096, 256 — enough trajectory averaging
	// that the recorded ARG is stable to well under a percentage point, so
	// the baseline gate sees signal, not sampling noise). ARGNodes must
	// stay small enough for the exact MaxCut optimum (≤ ~20).
	ARGNodes        int
	ARGShots        int
	ARGTrajectories int
	// RouterTrials routes every circuit that many times with randomized
	// tie-breaking and keeps the fewest-SWAP attempt (0 or 1 = single-shot
	// deterministic routing, the default). Trials run in parallel across
	// GOMAXPROCS workers with a schedule-independent result, so suite
	// records stay byte-identical across core counts.
	RouterTrials int
}

// DefaultBenchConfig returns the CI-scale configuration.
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{
		Instances:       4,
		Nodes:           16,
		Seed:            11,
		ARGNodes:        10,
		ARGShots:        4096,
		ARGTrajectories: 256,
	}
}

func (cfg BenchConfig) withDefaults() BenchConfig {
	def := DefaultBenchConfig()
	if cfg.Instances <= 0 {
		cfg.Instances = def.Instances
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.ARGNodes <= 0 {
		cfg.ARGNodes = def.ARGNodes
	}
	if cfg.ARGShots <= 0 {
		cfg.ARGShots = def.ARGShots
	}
	if cfg.ARGTrajectories <= 0 {
		cfg.ARGTrajectories = def.ARGTrajectories
	}
	return cfg
}

// benchCase is one figure-flavored workload family of the suite.
type benchCase struct {
	id      string
	w       Workload
	n       int
	param   float64
	presets []compile.Preset
}

func benchCases(cfg BenchConfig) []benchCase {
	mapping := []compile.Preset{compile.PresetNaive, compile.PresetGreedyV, compile.PresetQAIM}
	ordering := []compile.Preset{compile.PresetQAIM, compile.PresetIP, compile.PresetIC}
	return []benchCase{
		{id: "fig7-er", w: ErdosRenyi, n: cfg.Nodes, param: 0.5, presets: mapping},
		{id: "fig7-reg", w: Regular, n: cfg.Nodes, param: 4, presets: mapping},
		{id: "fig8", w: Regular, n: cfg.Nodes + 2, param: 3, presets: mapping},
		{id: "fig9", w: Regular, n: cfg.Nodes, param: 4, presets: ordering},
	}
}

// RunBenchSuite runs the reduced Fig. 7/8/9 benchmarks on ibmq_20_tokyo and
// appends one record per figure×preset to rep, named "<fig>/<preset>". Each
// record aggregates cfg.Instances compiled instances (mean per-pass times,
// swaps, depth, gates) and carries an ARG and success probability measured
// on a reduced calibrated-melbourne instance of the same workload family.
// Instances run sequentially so the report's counters are deterministic;
// compilation forwards the collector installed via SetCollector.
func RunBenchSuite(ctx context.Context, cfg BenchConfig, rep *obsv.Report) error {
	cfg = cfg.withDefaults()
	tokyo := device.Tokyo20()
	tokyo.Obs = Collector()
	for _, bc := range benchCases(cfg) {
		// Shared instance graphs: every preset of the case compiles the same
		// set, so records compare like with like.
		gs := make([]*graphs.Graph, cfg.Instances)
		for i := range gs {
			g, err := sampleGraph(bc.w, bc.n, bc.param, instanceRNG(cfg.Seed, i))
			if err != nil {
				return fmt.Errorf("exp: bench %s: %w", bc.id, err)
			}
			gs[i] = g
		}
		for _, preset := range bc.presets {
			rec, err := runBenchRecord(ctx, bc, preset, gs, tokyo, cfg)
			if err != nil {
				return err
			}
			if rep.TimeUnitSec > 0 {
				rec.CompileUnits = rec.CompileSec / rep.TimeUnitSec
				rec.SimUnits = rec.SimSec / rep.TimeUnitSec
			}
			rep.AddBenchmark(rec)
		}
	}
	return nil
}

// runBenchRecord compiles every instance of one figure×preset point and
// aggregates the record.
func runBenchRecord(ctx context.Context, bc benchCase, preset compile.Preset, gs []*graphs.Graph, tokyo *device.Device, cfg BenchConfig) (obsv.Benchmark, error) {
	rec := obsv.Benchmark{
		Name:      bc.id + "/" + preset.String(),
		Instances: len(gs),
	}
	for i, g := range gs {
		prob := &qaoa.Problem{G: g, MaxCut: 1} // optimum unused for structural metrics
		opts := preset.Options(instanceRNG(cfg.Seed+int64(i)*101, 1000+int(preset)))
		opts.RouterTrials = cfg.RouterTrials
		opts.Obs = Collector()
		res, err := compile.CompileContext(ctx, prob, structuralParams, tokyo, opts)
		if err != nil {
			return rec, fmt.Errorf("exp: bench %s/%v instance %d: %w", bc.id, preset, i, err)
		}
		rec.CompileSec += res.CompileTime.Seconds()
		rec.MapSec += res.MapTime.Seconds()
		rec.OrderSec += res.OrderTime.Seconds()
		rec.RouteSec += res.RouteTime.Seconds()
		rec.Swaps += float64(res.SwapCount)
		rec.Depth += float64(res.Depth)
		rec.Gates += float64(res.GateCount)
	}
	n := float64(len(gs))
	rec.CompileSec /= n
	rec.MapSec /= n
	rec.OrderSec /= n
	rec.RouteSec /= n
	rec.Swaps /= n
	rec.Depth /= n
	rec.Gates /= n

	arg, succ, simSec, err := benchARG(ctx, bc, preset, cfg)
	if err != nil {
		return rec, err
	}
	rec.ARGPct = arg
	rec.SuccessProb = succ
	rec.SimSec = simSec
	return rec, nil
}

// benchARG measures the record's ARG and success probability on a reduced
// instance of the same workload family, compiled for the calibrated
// ibmq_16_melbourne (the tokyo benchmarks carry no calibration, so noisy
// execution is measured on the smaller device instead). simSec is the
// wall-clock time of the simulation portion (ideal run + sampling + noisy
// trajectories) — the record's sim_sec field.
func benchARG(ctx context.Context, bc benchCase, preset compile.Preset, cfg BenchConfig) (arg, succ, simSec float64, err error) {
	rng := instanceRNG(cfg.Seed+7777, int(preset))
	param := bc.param
	if bc.w == Regular && param >= float64(cfg.ARGNodes) {
		param = float64(cfg.ARGNodes - 1)
	}
	g, err := sampleGraph(bc.w, cfg.ARGNodes, param, rng)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("exp: bench %s arg graph: %w", bc.id, err)
	}
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("exp: bench %s arg optimum: %w", bc.id, err)
	}
	mel := device.Melbourne15()
	mel.Obs = Collector()
	opts := preset.Options(rng)
	opts.RouterTrials = cfg.RouterTrials
	opts.Obs = Collector()
	res, err := compile.CompileContext(ctx, prob, structuralParams, mel, opts)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("exp: bench %s arg compile: %w", bc.id, err)
	}
	simStart := time.Now() //lint:allow determinism: measured sim wall time, gated with slack
	arg, err = MeasureARG(prob, res, sim.NoiseFromDevice(mel), cfg.ARGShots, cfg.ARGTrajectories, rng)
	simSec = time.Since(simStart).Seconds() //lint:allow determinism: measured sim wall time, gated with slack
	if err != nil {
		return 0, 0, 0, fmt.Errorf("exp: bench %s arg measure: %w", bc.id, err)
	}
	return arg, mel.SuccessProbability(res.Native), simSec, nil
}

// CalibrateTimeUnit times a fixed CPU-bound workload (Floyd–Warshall over
// a deterministic 160-node graph) and returns its duration in seconds.
// Stored as Report.TimeUnitSec, it converts wall-clock compile and sim
// times into machine-normalized units so regression gates stay meaningful
// between hosts of different speeds. The unit is three times the minimum
// of five repetitions: the minimum is robust against scheduling noise,
// which would otherwise inflate the unit and silently loosen every
// normalized gate on that run.
func CalibrateTimeUnit() float64 {
	const n = 160
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		if j := (i*7 + 3) % n; j != i && !g.HasEdge(i, j) {
			g.MustAddEdge(i, j)
		}
	}
	best := math.Inf(1)
	for rep := 0; rep < 5; rep++ {
		start := time.Now() //lint:allow determinism: machine-speed calibration is wall-clock by design
		graphs.FloydWarshall(g, false)
		if d := time.Since(start).Seconds(); d < best { //lint:allow determinism: machine-speed calibration is wall-clock by design
			best = d
		}
	}
	return 3 * best
}
