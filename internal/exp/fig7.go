package exp

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/metrics"
)

// Fig7Config parameterizes the initial-mapping comparison of Fig. 7:
// NAIVE vs GreedyV vs QAIM on 20-node graphs targeting ibmq_20_tokyo.
type Fig7Config struct {
	Nodes     int       // graph size (paper: 20)
	Instances int       // instances per data point (paper: 50)
	EdgeProbs []float64 // erdos-renyi sweep (paper: 0.1..0.6)
	Degrees   []int     // regular-graph sweep (paper: 3..8)
	Seed      int64
}

// DefaultFig7 returns the paper's configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Nodes:     20,
		Instances: 50,
		EdgeProbs: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Degrees:   []int{3, 4, 5, 6, 7, 8},
		Seed:      7,
	}
}

var fig7Columns = []string{
	"Gv/NAIVE dep", "QAIM/NAIVE dep", "Gv/NAIVE gat", "QAIM/NAIVE gat",
}

// Fig7 reproduces Fig. 7(a–d): mean depth and gate-count ratios of GreedyV
// and QAIM against NAIVE, for erdos-renyi (first table) and regular graphs
// (second table) on ibmq_20_tokyo.
func Fig7(cfg Fig7Config) ([]*Table, error) {
	dev := device.Tokyo20()
	presets := []compile.Preset{compile.PresetNaive, compile.PresetGreedyV, compile.PresetQAIM}

	er := &Table{ID: "fig7-er", Title: "mapping ratios, erdos-renyi (rows: edge prob)", Columns: fig7Columns}
	for _, p := range cfg.EdgeProbs {
		aggs, err := runPoint(ErdosRenyi, cfg.Nodes, p, dev, presets, cfg.Instances, cfg.Seed+int64(p*1000), 0)
		if err != nil {
			return nil, err
		}
		er.Add(fmt.Sprintf("p=%.1f", p), mappingRatios(aggs)...)
	}

	reg := &Table{ID: "fig7-reg", Title: "mapping ratios, regular (rows: edges/node)", Columns: fig7Columns}
	for _, d := range cfg.Degrees {
		aggs, err := runPoint(Regular, cfg.Nodes, float64(d), dev, presets, cfg.Instances, cfg.Seed+int64(d)*31, 0)
		if err != nil {
			return nil, err
		}
		reg.Add(fmt.Sprintf("d=%d", d), mappingRatios(aggs)...)
	}
	return []*Table{er, reg}, nil
}

func mappingRatios(aggs map[compile.Preset]metrics.Aggregate) []float64 {
	naive := aggs[compile.PresetNaive]
	gv := aggs[compile.PresetGreedyV]
	qm := aggs[compile.PresetQAIM]
	return []float64{
		metrics.Ratio(gv.Depth.Mean, naive.Depth.Mean),
		metrics.Ratio(qm.Depth.Mean, naive.Depth.Mean),
		metrics.Ratio(gv.GateCount.Mean, naive.GateCount.Mean),
		metrics.Ratio(qm.GateCount.Mean, naive.GateCount.Mean),
	}
}

// Fig8Config parameterizes the problem-size sweep of Fig. 8 (3-regular
// graphs of growing size on ibmq_20_tokyo).
type Fig8Config struct {
	Sizes     []int // node counts (paper: 12..20; odd sizes skipped — no 3-regular graph exists)
	Instances int   // per size (paper: 20)
	Seed      int64
}

// DefaultFig8 returns the paper's configuration (even sizes 12–20; a
// 3-regular graph needs an even vertex count).
func DefaultFig8() Fig8Config {
	return Fig8Config{Sizes: []int{12, 14, 16, 18, 20}, Instances: 20, Seed: 8}
}

// Fig8 reproduces Fig. 8(a,b): depth and gate-count ratios vs problem size
// for 3-regular graphs.
func Fig8(cfg Fig8Config) (*Table, error) {
	dev := device.Tokyo20()
	presets := []compile.Preset{compile.PresetNaive, compile.PresetGreedyV, compile.PresetQAIM}
	t := &Table{ID: "fig8", Title: "mapping ratios vs problem size, 3-regular", Columns: fig7Columns}
	for _, n := range cfg.Sizes {
		aggs, err := runPoint(Regular, n, 3, dev, presets, cfg.Instances, cfg.Seed+int64(n)*13, 0)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("n=%d", n), mappingRatios(aggs)...)
	}
	return t, nil
}
