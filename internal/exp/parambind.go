package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/loop"
	"repro/internal/obsv"
	"repro/internal/qaoa"
)

// Parameterized-compilation evidence suite: the two workloads whose
// compile work the skeleton/bind split collapses — the hybrid
// optimization loop (one compile per objective evaluation before, one
// skeleton compile plus one bind per evaluation after) and the angle-grid
// sweep (one compile per grid point before, one skeleton per instance
// after) — runnable in either mode from one binary, so
// `qaoa-bench -parambind before` / `-parambind after` produce the
// committed BENCH_parambind_before/after.json pair. The per-record
// Evaluations/Compilations/SkeletonCompiles/Binds counter deltas are
// deterministic under the fixed seed; only the wall-clock fields vary
// between hosts.

// ParamBindConfig sizes the parameterized-compilation evidence suite.
type ParamBindConfig struct {
	// CompilePerEval selects the legacy mode ("before"): every loop
	// evaluation and every sweep grid point runs the full mapping/
	// ordering/routing pipeline. False is the skeleton/bind mode
	// ("after"). Both modes run the byte-identical circuit per point.
	CompilePerEval bool
	// Instances is the number of hybrid-loop problem instances (default 4).
	Instances int
	// Nodes is the problem size of both workloads (default 12).
	Nodes int
	// Restarts and MaxIter bound each instance's Nelder–Mead optimization
	// (defaults 2, 40).
	Restarts int
	MaxIter  int
	// Shots and Trajectories size each noisy loop evaluation (defaults
	// 128, 4 — small, so compile work rather than sampling dominates the
	// measured difference).
	Shots        int
	Trajectories int
	// SweepInstances, SweepNodes, GammaSteps and BetaSteps shape the
	// angle-sweep workload (defaults 2, 10, 12, 12). SweepNodes is
	// separate from Nodes: the sweep's exact simulation costs 2^n per
	// point while routing costs only poly(n), so a slightly smaller n
	// keeps compile work — the thing the skeleton removes — the dominant
	// per-point cost.
	SweepInstances int
	SweepNodes     int
	GammaSteps     int
	BetaSteps      int
	// Seed fixes every random stream of the suite (default 29).
	Seed int64
}

// DefaultParamBind returns the CI-scale evidence-suite configuration.
func DefaultParamBind() ParamBindConfig {
	return ParamBindConfig{
		Instances:      4,
		Nodes:          12,
		Restarts:       2,
		MaxIter:        40,
		Shots:          128,
		Trajectories:   4,
		SweepInstances: 2,
		SweepNodes:     10,
		GammaSteps:     12,
		BetaSteps:      12,
		Seed:           29,
	}
}

func (cfg ParamBindConfig) withDefaults() ParamBindConfig {
	def := DefaultParamBind()
	if cfg.Instances <= 0 {
		cfg.Instances = def.Instances
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = def.Restarts
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = def.MaxIter
	}
	if cfg.Shots <= 0 {
		cfg.Shots = def.Shots
	}
	if cfg.Trajectories <= 0 {
		cfg.Trajectories = def.Trajectories
	}
	if cfg.SweepInstances <= 0 {
		cfg.SweepInstances = def.SweepInstances
	}
	if cfg.SweepNodes <= 0 {
		cfg.SweepNodes = def.SweepNodes
	}
	if cfg.GammaSteps <= 0 {
		cfg.GammaSteps = def.GammaSteps
	}
	if cfg.BetaSteps <= 0 {
		cfg.BetaSteps = def.BetaSteps
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return cfg
}

// compileWork is a snapshot of the three compile-work counters; deltas
// between snapshots attribute work to one phase of the suite.
type compileWork struct{ compilations, skeletons, binds int64 }

func snapshotWork(obs *obsv.Collector) compileWork {
	return compileWork{
		compilations: obs.Counter(obsv.CntCompilations),
		skeletons:    obs.Counter(obsv.CntSkeletonCompiles),
		binds:        obs.Counter(obsv.CntCompileBinds),
	}
}

func (w compileWork) since(prev compileWork) compileWork {
	return compileWork{
		compilations: w.compilations - prev.compilations,
		skeletons:    w.skeletons - prev.skeletons,
		binds:        w.binds - prev.binds,
	}
}

// RunParamBindSuite runs both evidence workloads in the configured mode
// and appends the "parambind/loop" and "parambind/sweep" records to rep.
// Compilation and sampling forward the collector installed via
// SetCollector, so the records' counter deltas and the report's counter
// dump agree.
func RunParamBindSuite(ctx context.Context, cfg ParamBindConfig, rep *obsv.Report) error {
	cfg = cfg.withDefaults()
	obs := Collector()
	mel := device.Melbourne15()
	mel.Obs = obs

	// Hybrid loop: Nelder–Mead over noisy melbourne evaluations. The
	// evaluation count is deterministic (seeded sampling), so the compile
	// counter deltas are exact across runs and hosts.
	before := snapshotWork(obs)
	var evals int64
	loopStart := time.Now() //lint:allow determinism: measured wall time, gated loosely if at all
	for i := 0; i < cfg.Instances; i++ {
		g, err := sampleGraph(Regular, cfg.Nodes, 3, instanceRNG(cfg.Seed, i))
		if err != nil {
			return fmt.Errorf("exp: parambind loop graph %d: %w", i, err)
		}
		prob, err := qaoa.NewMaxCut(g)
		if err != nil {
			return fmt.Errorf("exp: parambind loop optimum %d: %w", i, err)
		}
		ev := &loop.HardwareEvaluator{
			Prob: prob, Dev: mel, Preset: compile.PresetIC, P: 1,
			Shots: cfg.Shots, Trajectories: cfg.Trajectories,
			Rng: instanceRNG(cfg.Seed+101, i), Ctx: ctx, Obs: obs,
			CompilePerEval: cfg.CompilePerEval,
		}
		res, err := loop.RunContext(ctx, ev, prob, loop.Options{
			Restarts: cfg.Restarts, MaxIter: cfg.MaxIter,
			Rng: instanceRNG(cfg.Seed+202, i),
		})
		if err != nil {
			return fmt.Errorf("exp: parambind loop instance %d: %w", i, err)
		}
		evals += int64(res.Evaluations)
	}
	loopSec := time.Since(loopStart).Seconds() //lint:allow determinism: measured wall time, gated loosely if at all
	work := snapshotWork(obs).since(before)
	rep.AddBenchmark(obsv.Benchmark{
		Name: "parambind/loop", Instances: cfg.Instances,
		CompileSec: loopSec, ReqPerSec: float64(evals) / loopSec,
		Evaluations: evals, Compilations: work.compilations,
		SkeletonCompiles: work.skeletons, Binds: work.binds,
	})

	// Angle sweep: exact ⟨C⟩ over a γ×β grid on the swap-heavy ring.
	scfg := AngleSweepConfig{
		Nodes: cfg.SweepNodes, Degree: 3, Instances: cfg.SweepInstances,
		GammaSteps: cfg.GammaSteps, BetaSteps: cfg.BetaSteps,
		Preset: compile.PresetIC, Seed: cfg.Seed + 5000,
		CompilePerPoint: cfg.CompilePerEval,
	}
	before = snapshotWork(obs)
	sweepStart := time.Now() //lint:allow determinism: measured wall time, gated loosely if at all
	if _, err := AngleSweep(ctx, scfg); err != nil {
		return fmt.Errorf("exp: parambind sweep: %w", err)
	}
	sweepSec := time.Since(sweepStart).Seconds() //lint:allow determinism: measured wall time, gated loosely if at all
	work = snapshotWork(obs).since(before)
	points := int64(scfg.Instances * scfg.GammaSteps * scfg.BetaSteps)
	rep.AddBenchmark(obsv.Benchmark{
		Name: "parambind/sweep", Instances: scfg.Instances,
		CompileSec: sweepSec, ReqPerSec: float64(points) / sweepSec,
		Evaluations: points, Compilations: work.compilations,
		SkeletonCompiles: work.skeletons, Binds: work.binds,
	})
	return nil
}
