package exp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// oldStyleSampleNoisy reimplements the pre-executor noisy sampling
// semantics: one shared RNG threaded sequentially through every trajectory
// (interleaved fault draws, full re-simulation, per-sample readout flips).
// The executor intentionally switched to per-trajectory substreams, so the
// two are statistically — not byte — equivalent.
func oldStyleSampleNoisy(c *circuit.Circuit, nm *sim.NoiseModel, shots, traj int, rng *rand.Rand) []uint64 {
	out := make([]uint64, 0, shots)
	nb, extra := shots/traj, shots%traj
	for t := 0; t < traj; t++ {
		k := nb
		if t < extra {
			k++
		}
		s := sim.RunNoisy(c, nm, rng)
		for _, x := range s.Sample(rng, k) {
			out = append(out, flipReadoutBits(x, nm.Readout, rng))
		}
	}
	return out
}

func flipReadoutBits(x uint64, ro []float64, rng *rand.Rand) uint64 {
	for q, p := range ro {
		if p > 0 && rng.Float64() < p {
			x ^= 1 << uint(q)
		}
	}
	return x
}

// TestMeasureARGStatisticallyMatchesOldStyle pins the intentional RNG-stream
// change of the fault-sparse executor: on the Fig. 7 ER ARG workload, the
// mean ARG over a batch of seeds must agree between the executor path
// (MeasureARG) and the old sequential shared-RNG semantics within sampling
// noise. The seeds are fixed, so the test is deterministic.
func TestMeasureARGStatisticallyMatchesOldStyle(t *testing.T) {
	prob, res, nm := argWorkload(t)
	const shots, traj = 2048, 16
	seeds := []int64{101, 202, 303, 404, 505}

	var newSum, oldSum float64
	for _, seed := range seeds {
		arg, err := MeasureARG(prob, res, nm, shots, traj, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		newSum += arg

		rng := rand.New(rand.NewSource(seed))
		r0, err := approxRatioPhysical(prob, res, sim.NewState(res.Circuit.NQubits).Run(res.Circuit).Sample(rng, shots))
		if err != nil {
			t.Fatal(err)
		}
		rh, err := approxRatioPhysical(prob, res, oldStyleSampleNoisy(res.Circuit, nm, shots, traj, rng))
		if err != nil {
			t.Fatal(err)
		}
		oldSum += qaoa.ARG(r0, rh)
	}
	newMean := newSum / float64(len(seeds))
	oldMean := oldSum / float64(len(seeds))
	if d := math.Abs(newMean - oldMean); d > 1.5 {
		t.Fatalf("mean ARG %.3f%% (executor) vs %.3f%% (old-style) differ by %.3f points", newMean, oldMean, d)
	}
	// Both must see real noise on this calibrated workload.
	if newMean <= 0 || oldMean <= 0 {
		t.Fatalf("degenerate ARGs: executor %.3f%%, old-style %.3f%%", newMean, oldMean)
	}
}
