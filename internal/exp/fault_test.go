package exp

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/qaoa"
)

// The acceptance scenario of the fault-tolerance work: a tokyo device that
// lost two qubits and 20% of its calibration entries must still yield
// partial aggregates and a structured failure summary — never a panic, and
// never a fully aborted sweep point.
func TestRunPointOnDegradedTokyo(t *testing.T) {
	base := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(3)), 1e-2, 0.5e-2)
	spec := faultinject.Spec{Seed: 99, DeadQubits: 2, DeleteCalibFrac: 0.2}
	dev, rep, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dead) != 2 || len(rep.DeletedCalib) == 0 {
		t.Fatalf("unexpected degradation %v", rep)
	}

	DrainFaultReports() // isolate this test's reports
	const instances = 6
	aggs, err := runPoint(ErdosRenyi, 16, 0.4, dev, compile.Presets, instances, 5, 0)
	if err != nil {
		t.Fatalf("runPoint on degraded device: %v", err)
	}
	for _, p := range compile.Presets {
		agg, ok := aggs[p]
		if !ok {
			t.Fatalf("no aggregate for %v", p)
		}
		if agg.N == 0 {
			t.Errorf("%v: zero surviving samples", p)
		}
	}
	// Whether any instance×preset pair failed depends on the degradation;
	// what matters is the accounting: reports only exist alongside failures,
	// and they render a sensible N-of-M summary.
	for _, r := range DrainFaultReports() {
		if r.Failed != len(r.Failures) {
			t.Fatalf("report counts %d failed but lists %d", r.Failed, len(r.Failures))
		}
		s := r.Summary()
		if !strings.Contains(s, "compilations ok") {
			t.Fatalf("summary %q", s)
		}
	}
}

// An unusable device (problem larger than its biggest component) must fail
// with an error carrying the failure details — not panic, not return empty
// aggregates silently.
func TestRunPointAllFailing(t *testing.T) {
	dev := device.Linear(4) // 16-node problems cannot fit
	DrainFaultReports()
	_, err := runPoint(ErdosRenyi, 16, 0.4, dev, []compile.Preset{compile.PresetIC}, 2, 5, 0)
	if err == nil {
		t.Fatal("want error when every compilation fails")
	}
	if !strings.Contains(err.Error(), "every compilation failed") {
		t.Fatalf("error %v", err)
	}
	reports := DrainFaultReports()
	if len(reports) != 1 || reports[0].Failed != 2 {
		t.Fatalf("reports = %+v", reports)
	}
}

// A pass hook that panics on some calls must be contained by the compile
// boundary as a typed error, never escaping to crash a sweep goroutine.
func TestPassPanicContainedAsError(t *testing.T) {
	pf := &faultinject.PassFaults{PanicEvery: 4}
	dev := device.Tokyo20()
	rng := rand.New(rand.NewSource(2))
	g, err := sampleGraph(ErdosRenyi, 10, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	prob := &qaoa.Problem{G: g, MaxCut: 1}
	okCount, failCount := 0, 0
	for i := 0; i < 8; i++ {
		opts := compile.PresetIP.Options(instanceRNG(5, i))
		opts.Hook = pf.Hook()
		_, err := compile.CompileContext(context.Background(),
			prob, structuralParams, dev, opts)
		if err == nil {
			okCount++
			continue
		}
		failCount++
		var pe *compile.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("compile %d failed with %v, want *PanicError", i, err)
		}
	}
	if okCount == 0 || failCount == 0 {
		t.Fatalf("every-4th panic hook: %d ok, %d failed — injection not exercised", okCount, failCount)
	}
}

// Context cancellation stops retrying immediately instead of burning the
// retry budget against a dead deadline.
func TestRunPointCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	DrainFaultReports()
	_, err := runPointCtx(ctx, ErdosRenyi, 16, 0.4, device.Tokyo20(), []compile.Preset{compile.PresetIC}, 2, 5, 0)
	if err == nil {
		t.Fatal("want error on cancelled context")
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "every compilation failed") {
		t.Fatalf("error %v", err)
	}
	DrainFaultReports()
}
