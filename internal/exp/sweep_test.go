package exp

import (
	"context"
	"testing"

	"repro/internal/obsv"
)

// The sweep's two paths must produce the same landscape: the bind path is
// byte-identical to the compile path per point (the skeleton oracle
// contract), so the tables agree exactly.
func TestAngleSweepBindMatchesCompilePerPoint(t *testing.T) {
	cfg := AngleSweepConfig{Nodes: 8, Degree: 3, Instances: 2, GammaSteps: 3, BetaSteps: 3, Seed: 17}
	bind, err := AngleSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompilePerPoint = true
	legacy, err := AngleSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bind.Rows) != len(legacy.Rows) {
		t.Fatalf("row count: bind %d legacy %d", len(bind.Rows), len(legacy.Rows))
	}
	for i := range bind.Rows {
		br, lr := bind.Rows[i], legacy.Rows[i]
		for j := range br.Values {
			if br.Values[j] != lr.Values[j] && !(br.Values[j] != br.Values[j] && lr.Values[j] != lr.Values[j]) {
				t.Fatalf("row %d col %d: bind %v legacy %v", i, j, br.Values[j], lr.Values[j])
			}
		}
	}
}

// The sweep compiles once per instance and binds per grid point — the
// compile-work collapse the skeleton layer exists for.
func TestAngleSweepCompilesOncePerInstance(t *testing.T) {
	obs := obsv.New()
	SetCollector(obs)
	defer SetCollector(nil)
	cfg := AngleSweepConfig{Nodes: 8, Degree: 3, Instances: 2, GammaSteps: 3, BetaSteps: 4, Seed: 17}
	if _, err := AngleSweep(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := obs.Counter(obsv.CntSkeletonCompiles); got != 2 {
		t.Errorf("skeleton compiles = %d, want 2 (one per instance)", got)
	}
	if got := obs.Counter(obsv.CntCompileBinds); got != 2*3*4 {
		t.Errorf("binds = %d, want %d (one per grid point)", got, 2*3*4)
	}
	// The skeleton compile itself runs the spec pipeline once per instance;
	// no per-point compilations happen on the bind path.
	if got := obs.Counter(obsv.CntCompilations); got != 2 {
		t.Errorf("pipeline compilations = %d, want 2 (skeleton compiles only)", got)
	}
}
