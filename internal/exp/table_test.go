package exp

import (
	"math"
	"strings"
	"testing"
)

func TestTableRenderAndLookup(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tb.Add("row1", 1.5, 2.0)
	tb.Add("row2", math.NaN(), 1234567)
	s := tb.Render()
	for _, want := range []string{"x", "demo", "a", "b", "row1", "1.5000", "-", "1234567"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q:\n%s", want, s)
		}
	}
	v, ok := tb.Lookup("row1", "b")
	if !ok || v != 2.0 {
		t.Errorf("Lookup = (%v,%v)", v, ok)
	}
	if _, ok := tb.Lookup("row1", "zzz"); ok {
		t.Error("Lookup found missing column")
	}
	if _, ok := tb.Lookup("zzz", "a"); ok {
		t.Error("Lookup found missing row")
	}
	col := tb.Column(0)
	if len(col) != 2 || col[0] != 1.5 || !math.IsNaN(col[1]) {
		t.Errorf("Column = %v", col)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := &Table{ID: "f", Title: "demo", Columns: []string{"a"}}
	tb.Add("r1", 0.5)
	tb.Add("r2", math.NaN())
	md := tb.RenderMarkdown()
	for _, want := range []string{"### f — demo", "| | a |", "|---|---|", "| r1 | 0.5000 |", "| r2 | - |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{ID: "f,1", Columns: []string{`col"x`}}
	tb.Add("row,1", 2.5)
	tb.Add("rowN", math.NaN())
	csv := tb.RenderCSV()
	for _, want := range []string{`"f,1"`, `"col""x"`, `"row,1",2.5`, "rowN,\n"} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv missing %q:\n%s", want, csv)
		}
	}
}
