package exp

import (
	"context"
	"math"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// AngleSweepConfig parameterizes the p=1 (γ,β) landscape sweep: for each
// random-regular instance the full grid of angle points is evaluated on the
// compiled circuit, the workload an angle-tuning client sends at a
// compiler. The circuit structure is angle-independent, so the sweep
// compiles a routed skeleton once per instance and binds each grid point
// into a reused buffer; CompilePerPoint recovers the legacy
// full-compile-per-point flow for A/B benchmarking (the outputs are
// byte-identical — see the skeleton oracle tests).
type AngleSweepConfig struct {
	Nodes      int
	Degree     int
	Instances  int
	GammaSteps int // grid points over γ ∈ (0, π]
	BetaSteps  int // grid points over β ∈ (0, π/2]
	Preset     compile.Preset
	Seed       int64
	// CompilePerPoint disables skeleton reuse: every grid point runs the
	// full mapping/ordering/routing pipeline. Kept as the benchmark
	// baseline and test oracle.
	CompilePerPoint bool
}

// DefaultAngleSweep returns a sweep sized like one angle-tuning session:
// a 12×12 grid over 10-node 3-regular instances on the ring device (the
// swap-heavy topology of the §VI comparison, where routing dominates).
func DefaultAngleSweep() AngleSweepConfig {
	return AngleSweepConfig{
		Nodes:      10,
		Degree:     3,
		Instances:  4,
		GammaSteps: 12,
		BetaSteps:  12,
		Preset:     compile.PresetIC,
		Seed:       17,
	}
}

// AngleSweep evaluates the exact ⟨C⟩ landscape of each instance over the
// (γ,β) grid using the compiled physical circuit, and reports the best
// point found per instance plus the mean best approximation ratio. The
// compile-work counters (compile/compilations vs compile/binds) expose the
// skeleton win: Instances compiles instead of Instances×GammaSteps×BetaSteps.
func AngleSweep(ctx context.Context, cfg AngleSweepConfig) (*Table, error) {
	dev := device.Ring(cfg.Nodes)
	t := &Table{
		ID:      "ext-sweep",
		Title:   "p=1 (γ,β) landscape sweep on the ring (skeleton bind per point)",
		Columns: []string{"best ⟨C⟩", "ratio", "γ*", "β*"},
	}
	var ratioSum float64
	rows := 0
	for i := 0; i < cfg.Instances; i++ {
		g, err := sampleGraph(Regular, cfg.Nodes, float64(cfg.Degree), instanceRNG(cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		prob, err := qaoa.NewMaxCut(g)
		if err != nil {
			return nil, err
		}
		best, bestGamma, bestBeta := math.Inf(-1), 0.0, 0.0

		var skel *compile.Skeleton
		var buf compile.BindBuffer
		if !cfg.CompilePerPoint {
			ps, err := compile.ParamSpecFromMaxCut(prob, 1)
			if err != nil {
				return nil, err
			}
			opts := cfg.Preset.Options(instanceRNG(cfg.Seed, i*10+1))
			opts.Obs = Collector()
			skel, err = compile.CompileSkeleton(ctx, ps, dev, opts)
			if err != nil {
				return nil, err
			}
		}
		for gi := 0; gi < cfg.GammaSteps; gi++ {
			gamma := math.Pi * float64(gi+1) / float64(cfg.GammaSteps)
			for bi := 0; bi < cfg.BetaSteps; bi++ {
				beta := math.Pi / 2 * float64(bi+1) / float64(cfg.BetaSteps)
				params := qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
				var res *compile.Result
				var err error
				if cfg.CompilePerPoint {
					// Fresh identically-seeded options per point: the legacy
					// flow routes every point from the same rng state, which
					// is what makes it byte-comparable to the bind path.
					opts := cfg.Preset.Options(instanceRNG(cfg.Seed, i*10+1))
					opts.Obs = Collector()
					res, err = compile.CompileContext(ctx, prob, params, dev, opts)
				} else {
					res, err = skel.BindTo(&buf, params)
				}
				if err != nil {
					return nil, err
				}
				st := sim.NewState(res.Circuit.NQubits)
				st.Run(res.Circuit)
				exp := st.ExpectationDiagonal(func(x uint64) float64 {
					return prob.Cost(res.ExtractLogical(x))
				})
				if exp > best {
					best, bestGamma, bestBeta = exp, gamma, beta
				}
			}
		}
		ratio := best / float64(prob.MaxCut)
		ratioSum += ratio
		rows++
		t.Add("instance", best, ratio, bestGamma, bestBeta)
	}
	if rows > 0 {
		t.Add("mean ratio", nan(), ratioSum/float64(rows), nan(), nan())
	}
	return t, nil
}
