package exp

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// argWorkload compiles the reduced Fig. 7 ER ARG workload exactly as
// benchARG does: a 10-node erdos-renyi instance on calibrated melbourne.
// This is the sim-dominated inner loop of every BENCH record, so the
// benchmarks below are the before/after evidence for simulator work.
func argWorkload(b testing.TB) (*qaoa.Problem, *compile.Result, *sim.NoiseModel) {
	b.Helper()
	rng := rand.New(rand.NewSource(7788))
	g, err := sampleGraph(ErdosRenyi, 10, 0.5, rng)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		b.Fatal(err)
	}
	mel := device.Melbourne15()
	res, err := compile.Compile(prob, structuralParams, mel, compile.PresetIC.Options(rng))
	if err != nil {
		b.Fatal(err)
	}
	return prob, res, sim.NoiseFromDevice(mel)
}

// BenchmarkMeasureARG times one full ARG measurement (ideal run + sampling
// plus noisy trajectories) at the BENCH suite's reduced scale.
func BenchmarkMeasureARG(b *testing.B) {
	prob, res, nm := argWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureARG(prob, res, nm, 512, 4, rand.New(rand.NewSource(9))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleNoisyARG times the noisy-trajectory sampling alone at the
// Fig. 11(b)-style trajectory count.
func BenchmarkSampleNoisyARG(b *testing.B) {
	_, res, nm := argWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SampleNoisy(res.Circuit, nm, 1024, 16, rand.New(rand.NewSource(13)))
	}
}
