package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/metrics"
	"repro/internal/qaoa"
)

// fixed structural angles: circuit depth/gate-count/time metrics do not
// depend on the angle values, so every structural experiment uses these.
var structuralParams = qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}}

// Workload identifies the two random-graph families of the evaluation.
type Workload int

const (
	// ErdosRenyi graphs G(n, p) with the given edge probability.
	ErdosRenyi Workload = iota
	// Regular graphs with a fixed number of edges per node.
	Regular
)

// instanceRNG derives an independent deterministic stream per (seed, index).
func instanceRNG(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(index)*7919 + 17))
}

// sampleGraph draws one workload graph.
func sampleGraph(w Workload, n int, param float64, rng *rand.Rand) (*graphs.Graph, error) {
	switch w {
	case ErdosRenyi:
		return graphs.ErdosRenyi(n, param, rng), nil
	case Regular:
		return graphs.RandomRegular(n, int(param), rng)
	default:
		return nil, fmt.Errorf("exp: unknown workload %d", w)
	}
}

// compileSample compiles one instance with a preset and returns its quality
// metrics. Success probability is measured on the native circuit when the
// device is calibrated, 1 otherwise.
func compileSample(g *graphs.Graph, dev *device.Device, preset compile.Preset, rng *rand.Rand, packing int) (metrics.Sample, *compile.Result, error) {
	prob := &qaoa.Problem{G: g, MaxCut: 1} // optimum unused for structural metrics
	opts := preset.Options(rng)
	opts.PackingLimit = packing
	res, err := compile.Compile(prob, structuralParams, dev, opts)
	if err != nil {
		return metrics.Sample{}, nil, err
	}
	s := metrics.Sample{
		Depth:       res.Depth,
		GateCount:   res.GateCount,
		SwapCount:   res.SwapCount,
		CompileTime: res.CompileTime,
		RouteTime:   res.RouteTime,
	}
	if dev.Calib != nil {
		s.SuccessProb = dev.SuccessProbability(res.Native)
	} else {
		s.SuccessProb = 1
	}
	return s, res, nil
}

// runPoint compiles `instances` fresh workload graphs with every preset in
// `presets` and returns one aggregate per preset. The same graph instance is
// fed to all presets so ratios compare like with like. Instances run in
// parallel (each derives its own deterministic rng, so results are
// independent of scheduling); per-preset sample order is by instance index,
// keeping aggregates deterministic.
func runPoint(w Workload, n int, param float64, dev *device.Device, presets []compile.Preset, instances int, seed int64, packing int) (map[compile.Preset]metrics.Aggregate, error) {
	collected := make(map[compile.Preset][]metrics.Sample, len(presets))
	for _, p := range presets {
		collected[p] = make([]metrics.Sample, instances)
	}
	errs := make([]error, instances)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < instances; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := instanceRNG(seed, i)
			g, err := sampleGraph(w, n, param, rng)
			if err != nil {
				errs[i] = err
				return
			}
			for _, preset := range presets {
				s, _, err := compileSample(g, dev, preset, instanceRNG(seed, i*100+int(preset)), packing)
				if err != nil {
					errs[i] = fmt.Errorf("exp: %v on n=%d param=%v: %w", preset, n, param, err)
					return
				}
				collected[preset][i] = s
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[compile.Preset]metrics.Aggregate, len(presets))
	for p, ss := range collected {
		out[p] = metrics.Collect(ss)
	}
	return out, nil
}

// circuitFromTerms builds a bare CPhase block for layer counting.
func circuitFromTerms(n int, terms []compile.ZZTerm) *circuit.Circuit {
	c := circuit.New(n)
	for _, t := range terms {
		c.Append(circuit.NewCPhase(t.U, t.V, t.Theta))
	}
	return c
}
