package exp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/qaoa"
)

// fixed structural angles: circuit depth/gate-count/time metrics do not
// depend on the angle values, so every structural experiment uses these.
var structuralParams = qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}}

// Workload identifies the two random-graph families of the evaluation.
type Workload int

const (
	// ErdosRenyi graphs G(n, p) with the given edge probability.
	ErdosRenyi Workload = iota
	// Regular graphs with a fixed number of edges per node.
	Regular
)

// String names the workload family.
func (w Workload) String() string {
	switch w {
	case ErdosRenyi:
		return "erdos-renyi"
	case Regular:
		return "regular"
	}
	return fmt.Sprintf("workload(%d)", int(w))
}

// instanceRNG derives an independent deterministic stream per (seed, index).
func instanceRNG(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(index)*7919 + 17))
}

// sampleGraph draws one workload graph.
func sampleGraph(w Workload, n int, param float64, rng *rand.Rand) (*graphs.Graph, error) {
	switch w {
	case ErdosRenyi:
		return graphs.ErdosRenyi(n, param, rng), nil
	case Regular:
		return graphs.RandomRegular(n, int(param), rng)
	default:
		return nil, fmt.Errorf("exp: unknown workload %d", w)
	}
}

// compileSample compiles one instance with a preset and returns its quality
// metrics. Success probability is measured on the native circuit when the
// device is calibrated, 1 otherwise.
func compileSample(ctx context.Context, g *graphs.Graph, dev *device.Device, preset compile.Preset, rng *rand.Rand, packing int) (metrics.Sample, *compile.Result, error) {
	prob := &qaoa.Problem{G: g, MaxCut: 1} // optimum unused for structural metrics
	opts := preset.Options(rng)
	opts.PackingLimit = packing
	opts.Obs = Collector()
	res, err := compile.CompileContext(ctx, prob, structuralParams, dev, opts)
	if err != nil {
		return metrics.Sample{}, nil, err
	}
	s := metrics.Sample{
		Depth:       res.Depth,
		GateCount:   res.GateCount,
		SwapCount:   res.SwapCount,
		CompileTime: res.CompileTime,
		RouteTime:   res.RouteTime,
	}
	if dev.Calib != nil {
		s.SuccessProb = dev.SuccessProbability(res.Native)
	} else {
		s.SuccessProb = 1
	}
	return s, res, nil
}

// instanceRetries is the number of extra compile attempts (each on a fresh
// derived seed) before an instance×preset pair is recorded as failed.
const instanceRetries = 2

// runPoint compiles `instances` fresh workload graphs with every preset in
// `presets` and returns one aggregate per preset. The same graph instance is
// fed to all presets so ratios compare like with like. Instances run in
// parallel (each derives its own deterministic rng, so results are
// independent of scheduling); per-preset sample order is by instance index,
// keeping aggregates deterministic.
func runPoint(w Workload, n int, param float64, dev *device.Device, presets []compile.Preset, instances int, seed int64, packing int) (map[compile.Preset]metrics.Aggregate, error) {
	// The figure API (Fig7..Fig12) is deliberately deadline-free; this is
	// its single detachment point. Deadline-aware callers use runPointCtx.
	return runPointCtx(context.Background(), w, n, param, dev, presets, instances, seed, packing) //lint:allow ctxflow: boundary shim of the ctx-free figure API
}

// runPointCtx is runPoint with a deadline, and is resilient against faulty
// devices and pass bugs: a failing compilation is retried on fresh seeds,
// persistent failures are dropped from the aggregates and recorded in a
// PointReport (drained via DrainFaultReports) instead of discarding the
// whole sweep point, and a panicking instance goroutine is contained the
// same way. It errors only when the configuration itself is broken (unknown
// workload, impossible graph family) or no instance compiled at all.
func runPointCtx(ctx context.Context, w Workload, n int, param float64, dev *device.Device, presets []compile.Preset, instances int, seed int64, packing int) (map[compile.Preset]metrics.Aggregate, error) {
	collected := make(map[compile.Preset][]metrics.Sample, len(presets))
	valid := make(map[compile.Preset][]bool, len(presets))
	for _, p := range presets {
		collected[p] = make([]metrics.Sample, instances)
		valid[p] = make([]bool, instances)
	}
	fatals := make([]error, instances)
	failures := make([][]InstanceFailure, instances)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < instances; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			obs := Collector()
			span := obs.StartSpan(obsv.SpanExpInstance)
			defer span.End()
			obs.Inc(obsv.CntExpInstances)
			// Contain instance panics: one bad instance must not take down
			// the sweep (or the process).
			defer func() {
				if r := recover(); r != nil {
					failures[i] = append(failures[i], InstanceFailure{
						Instance: i, Preset: "-", Attempts: 1,
						Err: fmt.Sprintf("instance goroutine panicked: %v", r),
					})
				}
			}()
			rng := instanceRNG(seed, i)
			g, err := sampleGraph(w, n, param, rng)
			if err != nil {
				fatals[i] = err
				return
			}
			for _, preset := range presets {
				attempts := 0
				var lastErr error
				for retry := 0; retry <= instanceRetries; retry++ {
					attempts++
					// Retry 0 reproduces the historical stream; retries
					// re-seed so a seed-dependent failure isn't replayed.
					s, _, err := compileSample(ctx, g, dev, preset,
						instanceRNG(seed+int64(retry)*999_983, i*100+int(preset)), packing)
					if err == nil {
						collected[preset][i] = s
						valid[preset][i] = true
						lastErr = nil
						break
					}
					lastErr = err
					if ctx.Err() != nil {
						break // deadline spent; retrying cannot help
					}
				}
				obs.Add(obsv.CntExpRetries, int64(attempts-1))
				if lastErr != nil {
					obs.Inc(obsv.CntExpFailures)
					failures[i] = append(failures[i], InstanceFailure{
						Instance: i, Preset: preset.String(), Attempts: attempts,
						Err: lastErr.Error(),
					})
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range fatals {
		if err != nil {
			return nil, fmt.Errorf("exp: n=%d param=%v: %w", n, param, err)
		}
	}

	var allFailures []InstanceFailure
	for _, fs := range failures {
		allFailures = append(allFailures, fs...)
	}
	out := make(map[compile.Preset]metrics.Aggregate, len(presets))
	ok := 0
	for p, ss := range collected {
		kept := make([]metrics.Sample, 0, instances)
		for i, s := range ss {
			if valid[p][i] {
				kept = append(kept, s)
			}
		}
		ok += len(kept)
		out[p] = metrics.Collect(kept)
	}
	if len(allFailures) > 0 {
		recordReport(&PointReport{
			Device: dev.Name, Workload: w.String(), N: n, Param: param,
			Instances: instances, Presets: len(presets),
			Failed: len(allFailures), Failures: allFailures,
		})
	}
	if ok == 0 && instances > 0 && len(presets) > 0 {
		return nil, fmt.Errorf("exp: every compilation failed at n=%d param=%v on %s: %s",
			n, param, dev.Name, allFailures[0].Err)
	}
	return out, nil
}

// circuitFromTerms builds a bare CPhase block for layer counting.
func circuitFromTerms(n int, terms []compile.ZZTerm) *circuit.Circuit {
	c := circuit.New(n)
	for _, t := range terms {
		c.Append(circuit.NewCPhase(t.U, t.V, t.Theta))
	}
	return c
}
