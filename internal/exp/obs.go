package exp

import (
	"sync/atomic"

	"repro/internal/obsv"
)

// Package-level observability collector. Sweep entry points (Fig7, Fig8,
// tables, …) keep the paper's experiment signatures, so the collector is
// installed here rather than threaded through every call — the same shape
// as the fault-report collector in report.go. Atomic, so the exp semaphore
// fan-out may run while it is swapped.
var expObs atomic.Pointer[obsv.Collector]

// SetCollector installs (or, with nil, removes) the collector that receives
// the sweep instrumentation: the exp/instance span (one per workload
// instance, covering graph sampling and every preset's compilation) and the
// counters exp/instances, exp/retries (compile attempts beyond the first)
// and exp/failures (instance×preset pairs dropped after all retries). The
// collector is also forwarded into every compilation's Options.Obs.
func SetCollector(c *obsv.Collector) { expObs.Store(c) }

// Collector returns the installed collector (nil when observability is
// disabled).
func Collector() *obsv.Collector { return expObs.Load() }
