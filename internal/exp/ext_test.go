package exp

import (
	"context"
	"testing"
)

func TestExtLevelsScaling(t *testing.T) {
	cfg := ExtLevelsConfig{Nodes: 12, Degree: 3, Instances: 6, Levels: []int{1, 3}, Seed: 21}
	tb, err := ExtLevels(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1ic, _ := tb.Lookup("p=1", "IC dep")
	d3ic, _ := tb.Lookup("p=3", "IC dep")
	if d3ic <= d1ic {
		t.Errorf("IC depth should grow with p: %v vs %v", d1ic, d3ic)
	}
	// IC must stay ahead of NAIVE at every level.
	for _, row := range tb.Rows {
		ratio := row.Values[4]
		if ratio >= 1 {
			t.Errorf("%s: IC/NAIVE depth ratio %v not < 1", row.Label, ratio)
		}
	}
	// Depth should scale roughly linearly in p (within 2x of proportional).
	if d3ic > 4*d1ic || d3ic < 1.5*d1ic {
		t.Errorf("suspicious depth scaling: p=1 %v → p=3 %v", d1ic, d3ic)
	}
}

func TestExtMappersOrdering(t *testing.T) {
	cfg := ExtMappersConfig{Nodes: 18, Degree: 3, Instances: 8, Seed: 22}
	tb, err := ExtMappers(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	randSwaps, _ := tb.Lookup("random", "swaps")
	qaimSwaps, _ := tb.Lookup("qaim", "swaps")
	revSwaps, _ := tb.Lookup("reverse-traversal", "swaps")
	if qaimSwaps >= randSwaps {
		t.Errorf("QAIM swaps %v not below random %v", qaimSwaps, randSwaps)
	}
	if revSwaps >= randSwaps {
		t.Errorf("reverse traversal swaps %v not below random %v", revSwaps, randSwaps)
	}
	// Reverse traversal pays in mapping time (it routes the circuit 2k
	// times); QAIM must be far cheaper.
	qaimMs, _ := tb.Lookup("qaim", "map ms")
	revMs, _ := tb.Lookup("reverse-traversal", "map ms")
	if revMs <= qaimMs {
		t.Errorf("reverse traversal map time %v not above QAIM %v", revMs, qaimMs)
	}
}

func TestExtCrosstalkMonotone(t *testing.T) {
	cfg := ExtCrosstalkConfig{Nodes: 10, EdgeProb: 0.5, Instances: 5,
		ProneFracs: []float64{0, 1}, Seed: 23}
	tb, err := ExtCrosstalk(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := tb.Lookup("f=0.00", "depth")
	d1, _ := tb.Lookup("f=1.00", "depth")
	if d1 <= d0 {
		t.Errorf("fully-prone depth %v not above baseline %v", d1, d0)
	}
	o0, _ := tb.Lookup("f=0.00", "depth overhead %")
	if o0 != 0 {
		t.Errorf("zero prone pairs should add zero overhead, got %v%%", o0)
	}
}

func TestExtOptimizeReduces(t *testing.T) {
	cfg := ExtOptimizeConfig{Nodes: 14, Degree: 4, Instances: 6, Seed: 24}
	tb, err := ExtOptimize(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, row := range tb.Rows {
		reduction := row.Values[2]
		if reduction < 0 {
			t.Errorf("%s: optimizer grew gate count (%v%%)", row.Label, reduction)
		}
		total += reduction
	}
	// The fusable patterns (SWAP·CPhase on one pair, U1 merges) are rare in
	// routed circuits, so gains are small but must be real somewhere.
	if total <= 0 {
		t.Errorf("peephole achieved no reduction on any preset")
	}
}

func TestExtDevicesConnectivityMatters(t *testing.T) {
	cfg := ExtDevicesConfig{Nodes: 14, Degree: 3, Instances: 6, Seed: 25}
	tb, err := ExtDevices(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	tokyoSwaps, _ := tb.Lookup("ibmq_20_tokyo", "swaps")
	falconSwaps, _ := tb.Lookup("ibmq_falcon27", "swaps")
	if falconSwaps <= tokyoSwaps {
		t.Errorf("heavy-hex swaps %v not above tokyo %v — connectivity should matter", falconSwaps, tokyoSwaps)
	}
	for _, row := range tb.Rows {
		if row.Values[2] <= 0 || row.Values[3] <= 0 {
			t.Errorf("%s: degenerate metrics %v", row.Label, row.Values)
		}
	}
}

func TestExtOrderingVizingAtBound(t *testing.T) {
	cfg := ExtOrderingConfig{Nodes: 16, Degree: 6, Instances: 6, Seed: 26}
	tb, err := ExtOrdering(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	vizLayers, _ := tb.Lookup("vizing", "cost layers")
	moq, _ := tb.Lookup("vizing", "MOQ bound")
	if vizLayers > moq+1 {
		t.Errorf("vizing layers %v exceed Δ+1 = %v", vizLayers, moq+1)
	}
	ipLayers, _ := tb.Lookup("IP", "cost layers")
	if vizLayers > ipLayers {
		t.Errorf("vizing layers %v above IP %v", vizLayers, ipLayers)
	}
}

func TestExtMitigationHelps(t *testing.T) {
	cfg := ExtMitigationConfig{Nodes: 8, Degree: 3, Instances: 2,
		Shots: 2048, Trajectories: 16, Seed: 27}
	tb, err := ExtMitigation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := tb.Lookup("raw", "ARG %")
	mit, _ := tb.Lookup("mitigated", "ARG %")
	if mit >= raw {
		t.Errorf("mitigated ARG %v not below raw %v", mit, raw)
	}
	if mit <= 0 {
		t.Errorf("mitigated ARG %v not positive (gate errors remain)", mit)
	}
}

func TestExtWorkloadsHubsCostLayers(t *testing.T) {
	cfg := ExtWorkloadsConfig{Nodes: 16, Instances: 6, Seed: 28}
	tb, err := ExtWorkloads(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	regMOQ, _ := tb.Lookup("regular", "mean MOQ")
	sfMOQ, _ := tb.Lookup("scalefree", "mean MOQ")
	if sfMOQ <= regMOQ {
		t.Errorf("scale-free MOQ %v not above regular %v (hubs should dominate)", sfMOQ, regMOQ)
	}
	for _, row := range tb.Rows {
		if row.Values[2] <= 0 {
			t.Errorf("%s: degenerate depth", row.Label)
		}
	}
}
