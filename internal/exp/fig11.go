package exp

import (
	"context"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/optimize"
	"repro/internal/qaoa"
	"repro/internal/sim"
)

// Fig11aConfig parameterizes the performance summary of Fig. 11(a): every
// methodology over a mixed 20-node workload on ibmq_20_tokyo, normalized by
// NAIVE. VIC uses a synthetic calibration (CNOT errors ~ N(1e-2, 0.5e-2) as
// in the paper).
type Fig11aConfig struct {
	Nodes             int
	InstancesPerPoint int // paper: 50 per (workload, parameter) point → 600 total
	EdgeProbs         []float64
	Degrees           []int
	Seed              int64
}

// DefaultFig11a returns the paper's configuration (600 instances total).
func DefaultFig11a() Fig11aConfig {
	return Fig11aConfig{
		Nodes:             20,
		InstancesPerPoint: 50,
		EdgeProbs:         []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Degrees:           []int{3, 4, 5, 6, 7, 8},
		Seed:              11,
	}
}

// Fig11a reproduces the Fig. 11(a) table: mean circuit depth, gate count
// and compilation time of QAIM, IP, IC and VIC normalized by the NAIVE
// values, over the combined erdos-renyi + regular workload.
func Fig11a(cfg Fig11aConfig) (*Table, error) {
	dev := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(cfg.Seed)), 1e-2, 0.5e-2)
	presets := compile.Presets

	sums := make(map[compile.Preset]*metrics.Aggregate)
	var all = make(map[compile.Preset][]metrics.Sample)
	point := func(w Workload, param float64, seed int64) error {
		for i := 0; i < cfg.InstancesPerPoint; i++ {
			rng := instanceRNG(seed, i)
			g, err := sampleGraph(w, cfg.Nodes, param, rng)
			if err != nil {
				return err
			}
			for _, preset := range presets {
				s, _, err := compileSample(context.Background(), g, dev, preset, instanceRNG(seed, i*100+int(preset)), 0)
				if err != nil {
					return err
				}
				all[preset] = append(all[preset], s)
			}
		}
		return nil
	}
	for _, p := range cfg.EdgeProbs {
		if err := point(ErdosRenyi, p, cfg.Seed+int64(p*1000)); err != nil {
			return nil, err
		}
	}
	for _, d := range cfg.Degrees {
		if err := point(Regular, float64(d), cfg.Seed+int64(d)*41); err != nil {
			return nil, err
		}
	}
	for p, ss := range all {
		agg := metrics.Collect(ss)
		sums[p] = &agg
	}

	naive := sums[compile.PresetNaive]
	t := &Table{
		ID:      "fig11a",
		Title:   "performance normalized by NAIVE, 20-node mixed workload on tokyo",
		Columns: []string{"depth", "gates", "time"},
	}
	for _, preset := range []compile.Preset{compile.PresetNaive, compile.PresetQAIM, compile.PresetIP, compile.PresetIC, compile.PresetVIC} {
		a := sums[preset]
		t.Add(preset.String(),
			metrics.Ratio(a.Depth.Mean, naive.Depth.Mean),
			metrics.Ratio(a.GateCount.Mean, naive.GateCount.Mean),
			metrics.Ratio(a.CompileSec.Mean, naive.CompileSec.Mean))
	}
	return t, nil
}

// Fig11bConfig parameterizes the hardware-validation ARG experiment of
// Fig. 11(b), run here against the noisy simulator standing in for
// ibmq_16_melbourne (see DESIGN.md substitutions).
type Fig11bConfig struct {
	Nodes         int // paper: 12
	Instances     int // per workload (paper: 20)
	EdgeProb      float64
	RegularDegree int
	Shots         int // paper: 40960
	Trajectories  int // independent noise trajectories the shots spread over
	Seed          int64
}

// DefaultFig11b returns the paper's configuration with a trajectory count
// that keeps the noisy simulation tractable.
func DefaultFig11b() Fig11bConfig {
	return Fig11bConfig{
		Nodes:         12,
		Instances:     20,
		EdgeProb:      0.5,
		RegularDegree: 6,
		Shots:         40960,
		Trajectories:  64,
		Seed:          1111,
	}
}

// Fig11b reproduces Fig. 11(b): the mean Approximation Ratio Gap of
// QAIM-, IP-, IC- and VIC-compiled circuits executed on the noisy melbourne
// model, over 12-node erdos-renyi and 6-regular MaxCut instances with
// analytically optimized p=1 angles.
func Fig11b(cfg Fig11bConfig) (*Table, error) {
	dev := device.Melbourne15()
	nm := sim.NoiseFromDevice(dev)
	presets := []compile.Preset{compile.PresetQAIM, compile.PresetIP, compile.PresetIC, compile.PresetVIC}

	type accum struct {
		sum float64
		n   int
	}
	args := make(map[compile.Preset]*accum)
	for _, p := range presets {
		args[p] = &accum{}
	}

	run := func(w Workload, param float64, seed int64) error {
		for i := 0; i < cfg.Instances; i++ {
			rng := instanceRNG(seed, i)
			g, err := sampleGraph(w, cfg.Nodes, param, rng)
			if err != nil {
				return err
			}
			prob, err := qaoa.NewMaxCut(g)
			if err != nil {
				return err
			}
			if prob.MaxCut == 0 {
				continue
			}
			gamma, beta, _, err := optimize.MaximizeP1(func(gm, bt float64) float64 {
				return qaoa.ExpectationP1Analytic(g, gm, bt)
			}, 20)
			if err != nil {
				return err
			}
			params := qaoa.Params{Gamma: []float64{gamma}, Beta: []float64{beta}}
			for _, preset := range presets {
				opts := preset.Options(instanceRNG(seed, i*100+int(preset)))
				res, err := compile.Compile(prob, params, dev, opts)
				if err != nil {
					return err
				}
				arg, err := MeasureARG(prob, res, nm, cfg.Shots, cfg.Trajectories, instanceRNG(seed, i*100+int(preset)+50))
				if err != nil {
					return err
				}
				args[preset].sum += arg
				args[preset].n++
			}
		}
		return nil
	}
	if err := run(ErdosRenyi, cfg.EdgeProb, cfg.Seed); err != nil {
		return nil, err
	}
	if cfg.Nodes*cfg.RegularDegree%2 == 0 {
		if err := run(Regular, float64(cfg.RegularDegree), cfg.Seed+999); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:      "fig11b",
		Title:   "mean approximation-ratio gap (%) on noisy melbourne model",
		Columns: []string{"ARG %"},
	}
	for _, preset := range presets {
		a := args[preset]
		v := nan()
		if a.n > 0 {
			v = a.sum / float64(a.n)
		}
		t.Add(preset.String(), v)
	}
	return t, nil
}

// MeasureARG computes the paper's ARG metric for one compiled circuit:
// the approximation ratio r0 from noiseless sampling of the compiled
// circuit and rh from noisy sampling under nm, both with the same shot
// budget, combined as 100·(r0−rh)/r0. One Executor serves both
// measurements, so the noiseless run is executed once and its final state
// is shared with every fault-free noisy trajectory.
func MeasureARG(prob *qaoa.Problem, res *compile.Result, nm *sim.NoiseModel, shots, trajectories int, rng *rand.Rand) (float64, error) {
	ex := sim.NewExecutor(res.Circuit)
	idealSamples := ex.SampleIdeal(rng, shots)
	r0, err := approxRatioPhysical(prob, res, idealSamples)
	if err != nil {
		return 0, err
	}
	noisySamples := ex.SampleNoisy(nm, shots, trajectories, rng)
	rh, err := approxRatioPhysical(prob, res, noisySamples)
	if err != nil {
		return 0, err
	}
	return qaoa.ARG(r0, rh), nil
}

func approxRatioPhysical(prob *qaoa.Problem, res *compile.Result, physical []uint64) (float64, error) {
	logical := make([]uint64, len(physical))
	for i, y := range physical {
		logical[i] = res.ExtractLogical(y)
	}
	return qaoa.ApproximationRatio(prob, logical)
}
