package exp

import (
	"context"
	"math"
	"testing"
)

// Scaled-down configs: the tests assert the paper's qualitative shapes
// (who wins, in which regime) on reduced instance counts; cmd/qaoa-exp
// regenerates the full-size figures.

func TestFig7Shapes(t *testing.T) {
	cfg := Fig7Config{
		Nodes:     20,
		Instances: 8,
		EdgeProbs: []float64{0.1, 0.5},
		Degrees:   []int{3, 8},
		Seed:      7,
	}
	tables, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	er, reg := tables[0], tables[1]
	// Sparse regime: QAIM beats NAIVE on both depth and gates.
	for _, tc := range []struct {
		tab *Table
		row string
	}{{er, "p=0.1"}, {reg, "d=3"}} {
		dep, ok := tc.tab.Lookup(tc.row, "QAIM/NAIVE dep")
		if !ok {
			t.Fatalf("missing %s", tc.row)
		}
		gat, _ := tc.tab.Lookup(tc.row, "QAIM/NAIVE gat")
		if dep >= 1.0 {
			t.Errorf("%s %s: QAIM depth ratio %v not < 1", tc.tab.ID, tc.row, dep)
		}
		if gat >= 1.0 {
			t.Errorf("%s %s: QAIM gate ratio %v not < 1", tc.tab.ID, tc.row, gat)
		}
	}
	// Dense regime: all approaches converge (ratio near 1, within 15%).
	if dep, _ := er.Lookup("p=0.5", "QAIM/NAIVE dep"); math.Abs(dep-1) > 0.15 {
		t.Errorf("dense ER QAIM depth ratio %v far from 1", dep)
	}
}

func TestFig8Shapes(t *testing.T) {
	cfg := Fig8Config{Sizes: []int{12, 20}, Instances: 8, Seed: 8}
	tb, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Small problems: QAIM clearly better than NAIVE.
	dep, _ := tb.Lookup("n=12", "QAIM/NAIVE dep")
	gat, _ := tb.Lookup("n=12", "QAIM/NAIVE gat")
	if dep >= 1 || gat >= 1 {
		t.Errorf("n=12 QAIM ratios dep=%v gat=%v, want < 1", dep, gat)
	}
}

func TestFig9Shapes(t *testing.T) {
	cfg := Fig9Config{
		Nodes:     20,
		Instances: 8,
		EdgeProbs: []float64{0.5},
		Degrees:   []int{3, 8},
		Seed:      9,
	}
	tables, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	er, reg := tables[0], tables[1]
	// Both IP and IC cut depth sharply vs QAIM-only, most on dense graphs.
	for _, col := range []string{"IP/QAIM dep", "IC/QAIM dep"} {
		if v, _ := er.Lookup("p=0.5", col); v >= 0.9 {
			t.Errorf("ER p=0.5 %s = %v, want clearly < 1", col, v)
		}
		if v, _ := reg.Lookup("d=8", col); v >= 0.9 {
			t.Errorf("regular d=8 %s = %v, want clearly < 1", col, v)
		}
	}
	// Depth benefit grows with density (paper: 39% at d=3 → 68% at d=8).
	d3, _ := reg.Lookup("d=3", "IC/QAIM dep")
	d8, _ := reg.Lookup("d=8", "IC/QAIM dep")
	if d8 >= d3 {
		t.Errorf("IC depth ratio should fall with density: d3=%v d8=%v", d3, d8)
	}
	// IC gate count not above QAIM's.
	if v, _ := reg.Lookup("d=8", "IC/QAIM gat"); v > 1.0 {
		t.Errorf("IC gate ratio %v > 1", v)
	}
}

func TestFig10VICImprovesSuccess(t *testing.T) {
	// Success probabilities span orders of magnitude across instances, so
	// per-row ratios are noisy at small sample sizes; assert that no row is
	// badly below parity and that VIC wins clearly overall.
	cfg := Fig10Config{Sizes: []int{13, 14}, Instances: 12, EdgeProb: 0.5, RegularDegree: 6, Seed: 10}
	tb, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var count int
	for _, row := range tb.Rows {
		for j, v := range row.Values {
			if math.IsNaN(v) {
				continue
			}
			if v < 0.7 {
				t.Errorf("%s %s SPR = %v, far below parity", row.Label, tb.Columns[j], v)
			}
			sum += v
			count++
		}
	}
	if count == 0 {
		t.Fatal("no SPR values produced")
	}
	if mean := sum / float64(count); mean <= 1.0 {
		t.Errorf("mean SPR = %v, want > 1 (VIC more reliable on average)", mean)
	}
}

func TestFig11aSummaryShape(t *testing.T) {
	cfg := Fig11aConfig{
		Nodes:             20,
		InstancesPerPoint: 4,
		EdgeProbs:         []float64{0.3},
		Degrees:           []int{4},
		Seed:              11,
	}
	tb, err := Fig11a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(row, col string) float64 {
		v, ok := tb.Lookup(row, col)
		if !ok {
			t.Fatalf("missing %s/%s", row, col)
		}
		return v
	}
	if get("NAIVE", "depth") != 1 || get("NAIVE", "gates") != 1 {
		t.Error("NAIVE row not normalized to 1")
	}
	// The headline: IC/VIC reduce both depth and gate count well below NAIVE.
	for _, m := range []string{"IC", "VIC"} {
		if d := get(m, "depth"); d >= 0.85 {
			t.Errorf("%s depth %v, want well below 1", m, d)
		}
		if g := get(m, "gates"); g >= 1.0 {
			t.Errorf("%s gates %v, want < 1", m, g)
		}
	}
	if d := get("IP", "depth"); d >= 0.9 {
		t.Errorf("IP depth %v, want well below 1", d)
	}
}

func TestFig11bNoiseCreatesGap(t *testing.T) {
	cfg := Fig11bConfig{
		Nodes:         8,
		Instances:     2,
		EdgeProb:      0.5,
		RegularDegree: 4,
		Shots:         1024,
		Trajectories:  16,
		Seed:          123,
	}
	tb, err := Fig11b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Noise must open a positive gap for every methodology: the noisy ratio
	// falls below the ideal one.
	for _, row := range tb.Rows {
		if math.IsNaN(row.Values[0]) || row.Values[0] <= 0 {
			t.Errorf("%s ARG = %v, want > 0", row.Label, row.Values[0])
		}
		if row.Values[0] > 100 {
			t.Errorf("%s ARG = %v, implausibly large", row.Label, row.Values[0])
		}
	}
}

func TestFig12PackingTradeoffs(t *testing.T) {
	cfg := Fig12Config{
		Nodes:         36,
		Instances:     3,
		EdgeProb:      0.5,
		RegularDegree: 15,
		PackingLimits: []int{1, 9, 18},
		Seed:          12,
	}
	tb, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Depth at packing limit 1 (fully serial layers) must exceed depth at
	// a generous limit; compile time must not grow with packing.
	d1, _ := tb.Lookup("limit=1", "er depth")
	d9, _ := tb.Lookup("limit=9", "er depth")
	if d1 <= d9 {
		t.Errorf("ER depth limit=1 (%v) not above limit=9 (%v)", d1, d9)
	}
	g1, _ := tb.Lookup("limit=1", "reg gates")
	g18, _ := tb.Lookup("limit=18", "reg gates")
	if g1 <= 0 || g18 <= 0 {
		t.Error("gate counts not positive")
	}
	t1, _ := tb.Lookup("limit=1", "reg time(s)")
	t18, _ := tb.Lookup("limit=18", "reg time(s)")
	if t18 > t1*1.5 {
		t.Errorf("packing more slowed compilation: %v → %v", t1, t18)
	}
}

func TestDiscussionICBeatsNaiveOnRing(t *testing.T) {
	cfg := DiscussionConfig{Nodes: 8, Edges: 8, Instances: 20, Seed: 6}
	tb, err := Discussion(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	naiveDepth, _ := tb.Lookup("NAIVE", "depth")
	icDepth, _ := tb.Lookup("IC", "depth")
	if icDepth >= naiveDepth {
		t.Errorf("IC depth %v not below NAIVE %v", icDepth, naiveDepth)
	}
	red, _ := tb.Lookup("reduction %", "depth")
	if red <= 0 {
		t.Errorf("depth reduction %v%% not positive", red)
	}
}

func TestSampleGraphUnknownWorkload(t *testing.T) {
	if _, err := sampleGraph(Workload(99), 5, 0.5, instanceRNG(1, 0)); err == nil {
		t.Error("unknown workload accepted")
	}
}
