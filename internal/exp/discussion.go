package exp

import (
	"context"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
	"repro/internal/metrics"
	"repro/internal/qaoa"
)

// DiscussionConfig parameterizes the §VI comparative analysis: IC (+QAIM)
// against the NAIVE flow on an 8-qubit cyclic architecture, over 8-node
// erdos-renyi graphs with exactly 8 edges (the workload of the
// temporal-planner comparison against Venturelli et al.).
type DiscussionConfig struct {
	Nodes     int // paper: 8
	Edges     int // paper: exactly 8
	Instances int // paper: 50
	Seed      int64
}

// DefaultDiscussion returns the paper's configuration.
func DefaultDiscussion() DiscussionConfig {
	return DiscussionConfig{Nodes: 8, Edges: 8, Instances: 50, Seed: 6}
}

// Discussion reproduces the §VI comparison: mean depth and gate count of
// IC (+QAIM) vs the NAIVE flow on the 8-qubit ring, plus the percentage
// reductions (the paper reports 8.51% depth and 12.99% gate-count savings
// against the temporal-planner baseline on the same workload).
func Discussion(ctx context.Context, cfg DiscussionConfig) (*Table, error) {
	dev := device.Ring(cfg.Nodes)
	var naiveS, icS []metrics.Sample
	for i := 0; i < cfg.Instances; i++ {
		rng := instanceRNG(cfg.Seed, i)
		g, err := graphs.ErdosRenyiExactEdges(cfg.Nodes, cfg.Edges, rng)
		if err != nil {
			return nil, err
		}
		prob := &qaoa.Problem{G: g, MaxCut: 1}
		for _, preset := range []compile.Preset{compile.PresetNaive, compile.PresetIC} {
			opts := preset.Options(instanceRNG(cfg.Seed, i*10+int(preset)))
			res, err := compile.CompileContext(ctx, prob, structuralParams, dev, opts)
			if err != nil {
				return nil, err
			}
			s := metrics.Sample{Depth: res.Depth, GateCount: res.GateCount,
				SwapCount: res.SwapCount, CompileTime: res.CompileTime, SuccessProb: 1}
			if preset == compile.PresetNaive {
				naiveS = append(naiveS, s)
			} else {
				icS = append(icS, s)
			}
		}
	}
	na := metrics.Collect(naiveS)
	ic := metrics.Collect(icS)
	t := &Table{
		ID:      "disc",
		Title:   "IC vs NAIVE on 8-qubit ring, 8-node/8-edge graphs",
		Columns: []string{"depth", "gates", "time(s)"},
	}
	t.Add("NAIVE", na.Depth.Mean, na.GateCount.Mean, na.CompileSec.Mean)
	t.Add("IC", ic.Depth.Mean, ic.GateCount.Mean, ic.CompileSec.Mean)
	t.Add("reduction %",
		-metrics.PercentChange(na.Depth.Mean, ic.Depth.Mean),
		-metrics.PercentChange(na.GateCount.Mean, ic.GateCount.Mean),
		-metrics.PercentChange(na.CompileSec.Mean, ic.CompileSec.Mean))
	return t, nil
}
