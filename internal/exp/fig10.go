package exp

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/metrics"
)

// Fig10Config parameterizes the variation-awareness study of Fig. 10:
// VIC vs IC compiled-circuit success probability on ibmq_16_melbourne with
// its Fig. 10(a) calibration snapshot.
type Fig10Config struct {
	Sizes         []int   // node counts (paper: 13, 14, 15)
	Instances     int     // per size (paper: 20)
	EdgeProb      float64 // erdos-renyi density (paper: 0.5)
	RegularDegree int     // paper: 6
	Seed          int64
}

// DefaultFig10 returns the paper's configuration.
func DefaultFig10() Fig10Config {
	return Fig10Config{Sizes: []int{13, 14, 15}, Instances: 20, EdgeProb: 0.5, RegularDegree: 6, Seed: 10}
}

// Fig10 reproduces Fig. 10(b,c): the ratio of mean compiled-circuit success
// probability between VIC (+QAIM) and IC (+QAIM), for erdos-renyi (col 1)
// and regular graphs (col 2). Regular entries whose (n, degree) pair admits
// no regular graph (odd n·d) render as "-".
func Fig10(cfg Fig10Config) (*Table, error) {
	dev := device.Melbourne15()
	presets := []compile.Preset{compile.PresetIC, compile.PresetVIC}
	t := &Table{
		ID:      "fig10",
		Title:   "VIC/IC success-probability ratio on melbourne (rows: nodes)",
		Columns: []string{"SPR er", "SPR regular"},
	}
	for _, n := range cfg.Sizes {
		erAggs, err := runPoint(ErdosRenyi, n, cfg.EdgeProb, dev, presets, cfg.Instances, cfg.Seed+int64(n)*11, 0)
		if err != nil {
			return nil, err
		}
		spErr := metrics.Ratio(erAggs[compile.PresetVIC].SuccessProb.Mean, erAggs[compile.PresetIC].SuccessProb.Mean)

		spReg := nan()
		if n*cfg.RegularDegree%2 == 0 {
			regAggs, err := runPoint(Regular, n, float64(cfg.RegularDegree), dev, presets, cfg.Instances, cfg.Seed+int64(n)*17, 0)
			if err != nil {
				return nil, err
			}
			spReg = metrics.Ratio(regAggs[compile.PresetVIC].SuccessProb.Mean, regAggs[compile.PresetIC].SuccessProb.Mean)
		}
		t.Add(fmt.Sprintf("n=%d", n), spErr, spReg)
	}
	return t, nil
}

func nan() float64 { return metrics.Ratio(1, 0) }
