// Package exp is the experiment harness: for every table and figure of the
// paper's evaluation (Figs. 7–12 and the §VI comparison) it generates the
// corresponding workload, runs the compilation methodologies, and renders
// the measured series. Instance counts and seeds are configurable so the
// same runners back both the fast benchmarks and the full regeneration in
// cmd/qaoa-exp.
package exp

import (
	"fmt"
	"math"
	"strings"
)

// Table is a labelled numeric result grid for one figure panel.
type Table struct {
	ID      string   // e.g. "fig7-er"
	Title   string   // human description
	Columns []string // value column headers
	Rows    []Row
}

// Row is one labelled line of a Table.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 12
	labelWidth := 8
	for _, r := range t.Rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelWidth+2, r.Label)
		for _, v := range r.Values {
			switch {
			case math.IsNaN(v):
				fmt.Fprintf(&b, "%*s", width, "-")
			case math.Abs(v) >= 1000:
				fmt.Fprintf(&b, "%*.0f", width, v)
			default:
				fmt.Fprintf(&b, "%*.4f", width, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Column returns the values of column j across rows.
func (t *Table) Column(j int) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[j]
	}
	return out
}

// Lookup returns the value at (rowLabel, colName) and whether it exists.
func (t *Table) Lookup(rowLabel, colName string) (float64, bool) {
	col := -1
	for j, c := range t.Columns {
		if c == colName {
			col = j
			break
		}
	}
	if col == -1 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// RenderMarkdown formats the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for _, v := range r.Values {
			if math.IsNaN(v) {
				b.WriteString(" - |")
			} else {
				fmt.Fprintf(&b, " %.4f |", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCSV formats the table as CSV with a header row; the first column
// holds the row labels.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.ID))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			b.WriteByte(',')
			if math.IsNaN(v) {
				// empty field for missing values
			} else {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
