package exp

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/metrics"
)

// Fig9Config parameterizes the ordering-strategy comparison of Fig. 9:
// QAIM (+random order) vs IP (+QAIM) vs IC (+QAIM) on 20-node graphs,
// ibmq_20_tokyo.
type Fig9Config struct {
	Nodes     int
	Instances int
	EdgeProbs []float64
	Degrees   []int
	Seed      int64
}

// DefaultFig9 returns the paper's configuration.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Nodes:     20,
		Instances: 50,
		EdgeProbs: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Degrees:   []int{3, 4, 5, 6, 7, 8},
		Seed:      9,
	}
}

// fig9Columns: "tim" is total compile time (mapping + ordering + routing);
// "rt" is backend routing time alone. The paper's compile times are
// backend-dominated (qiskit, seconds), so "rt" is the comparable series —
// see EXPERIMENTS.md.
var fig9Columns = []string{
	"IP/QAIM dep", "IC/QAIM dep", "IP/QAIM gat", "IC/QAIM gat",
	"IP/QAIM tim", "IC/QAIM tim", "IP/QAIM rt", "IC/QAIM rt",
}

// Fig9 reproduces Fig. 9(a–f): depth, gate-count and compilation-time
// ratios of IP and IC against QAIM-only compilation.
func Fig9(cfg Fig9Config) ([]*Table, error) {
	dev := device.Tokyo20()
	presets := []compile.Preset{compile.PresetQAIM, compile.PresetIP, compile.PresetIC}

	er := &Table{ID: "fig9-er", Title: "ordering ratios, erdos-renyi (rows: edge prob)", Columns: fig9Columns}
	for _, p := range cfg.EdgeProbs {
		aggs, err := runPoint(ErdosRenyi, cfg.Nodes, p, dev, presets, cfg.Instances, cfg.Seed+int64(p*1000), 0)
		if err != nil {
			return nil, err
		}
		er.Add(fmt.Sprintf("p=%.1f", p), orderingRatios(aggs)...)
	}

	reg := &Table{ID: "fig9-reg", Title: "ordering ratios, regular (rows: edges/node)", Columns: fig9Columns}
	for _, d := range cfg.Degrees {
		aggs, err := runPoint(Regular, cfg.Nodes, float64(d), dev, presets, cfg.Instances, cfg.Seed+int64(d)*37, 0)
		if err != nil {
			return nil, err
		}
		reg.Add(fmt.Sprintf("d=%d", d), orderingRatios(aggs)...)
	}
	return []*Table{er, reg}, nil
}

func orderingRatios(aggs map[compile.Preset]metrics.Aggregate) []float64 {
	qm := aggs[compile.PresetQAIM]
	ip := aggs[compile.PresetIP]
	ic := aggs[compile.PresetIC]
	return []float64{
		metrics.Ratio(ip.Depth.Mean, qm.Depth.Mean),
		metrics.Ratio(ic.Depth.Mean, qm.Depth.Mean),
		metrics.Ratio(ip.GateCount.Mean, qm.GateCount.Mean),
		metrics.Ratio(ic.GateCount.Mean, qm.GateCount.Mean),
		metrics.Ratio(ip.CompileSec.Mean, qm.CompileSec.Mean),
		metrics.Ratio(ic.CompileSec.Mean, qm.CompileSec.Mean),
		metrics.Ratio(ip.RouteSec.Mean, qm.RouteSec.Mean),
		metrics.Ratio(ic.RouteSec.Mean, qm.RouteSec.Mean),
	}
}

// Fig12Config parameterizes the packing-density study of Fig. 12 on the
// hypothetical 36-qubit grid.
type Fig12Config struct {
	Nodes         int     // paper: 36
	Instances     int     // per packing limit (paper: 20)
	EdgeProb      float64 // erdos-renyi density (paper: 0.5)
	RegularDegree int     // paper: 15
	PackingLimits []int   // sweep (paper: up to layer-size maximum 18)
	Seed          int64
}

// DefaultFig12 returns the paper's configuration.
func DefaultFig12() Fig12Config {
	return Fig12Config{
		Nodes:         36,
		Instances:     20,
		EdgeProb:      0.5,
		RegularDegree: 15,
		PackingLimits: []int{1, 3, 5, 7, 9, 11, 13, 15, 18},
		Seed:          12,
	}
}

// Fig12 reproduces Fig. 12(a–c): mean compiled depth, gate count and
// compilation time of IC (+QAIM) against the per-layer packing limit, on a
// 6×6 grid, for both workloads.
func Fig12(cfg Fig12Config) (*Table, error) {
	dev := device.Grid(6, 6)
	t := &Table{
		ID:    "fig12",
		Title: "packing-limit sweep, IC on 6x6 grid (rows: max CPhase/layer)",
		Columns: []string{
			"er depth", "er gates", "er time(s)",
			"reg depth", "reg gates", "reg time(s)",
		},
	}
	for _, lim := range cfg.PackingLimits {
		erAgg, err := runPoint(ErdosRenyi, cfg.Nodes, cfg.EdgeProb, dev,
			[]compile.Preset{compile.PresetIC}, cfg.Instances, cfg.Seed+int64(lim)*101, lim)
		if err != nil {
			return nil, err
		}
		regAgg, err := runPoint(Regular, cfg.Nodes, float64(cfg.RegularDegree), dev,
			[]compile.Preset{compile.PresetIC}, cfg.Instances, cfg.Seed+int64(lim)*103, lim)
		if err != nil {
			return nil, err
		}
		er := erAgg[compile.PresetIC]
		reg := regAgg[compile.PresetIC]
		t.Add(fmt.Sprintf("limit=%d", lim),
			er.Depth.Mean, er.GateCount.Mean, er.CompileSec.Mean,
			reg.Depth.Mean, reg.GateCount.Mean, reg.CompileSec.Mean)
	}
	return t, nil
}
