// Package dag builds commutation-aware dependency graphs of quantum
// circuits. A conventional dependency analysis orders any two gates that
// share a qubit; here, gates that share a qubit but commute (e.g. the
// diagonal CPhase cost gates of QAOA) impose no ordering, which is exactly
// the freedom the paper's compilation passes exploit ("the compiler has to
// check for the commutative gates in the given circuit", §I). The package
// provides the commutation test, the relaxed dependency DAG, a
// commutation-aware depth lower bound, and extraction of the maximal
// commuting gate groups an external circuit can be re-ordered within.
package dag

import (
	"repro/internal/circuit"
)

// Commute reports whether gates a and b can be exchanged without changing
// the circuit's unitary. Gates on disjoint qubits always commute. For
// overlapping gates the test is conservative (false negatives allowed,
// never false positives):
//
//   - two diagonal gates commute (Z, RZ, U1, CZ, CPhase),
//   - equal-axis one-qubit rotations on the same qubit commute (RX·RX etc.),
//   - a CNOT commutes with diagonal gates on its control qubit only,
//   - a CNOT commutes with X/RX on its target qubit only,
//   - two CNOTs sharing only their control commute; sharing only their
//     target also commute.
func Commute(a, b circuit.Gate) bool {
	if !a.SharesQubit(b) {
		return true
	}
	if a.IsDiagonal() && b.IsDiagonal() {
		return true
	}
	if ok, decided := cnotCommute(a, b); decided {
		return ok
	}
	if ok, decided := cnotCommute(b, a); decided {
		return ok
	}
	// Same-axis one-qubit rotations on the same qubit.
	if a.Arity() == 1 && b.Arity() == 1 && a.Q0 == b.Q0 {
		return sameAxis(a.Kind, b.Kind)
	}
	return false
}

// cnotCommute handles the cases where a is a CNOT; decided=false means the
// rule does not apply.
func cnotCommute(a, b circuit.Gate) (ok, decided bool) {
	if a.Kind != circuit.CNOT {
		return false, false
	}
	switch {
	case b.Kind == circuit.CNOT:
		// Shares only control → commute; only target → commute; otherwise
		// (control of one is target of the other) they do not.
		sharedControl := a.Q0 == b.Q0
		sharedTarget := a.Q1 == b.Q1
		crossed := a.Q0 == b.Q1 || a.Q1 == b.Q0
		return (sharedControl || sharedTarget) && !crossed, true
	case b.Arity() == 1 && b.On(a.Q0) && !b.On(a.Q1):
		// Touches the control only: diagonal gates pass through.
		return b.IsDiagonal(), true
	case b.Arity() == 1 && b.On(a.Q1) && !b.On(a.Q0):
		// Touches the target only: X-axis gates pass through.
		return b.Kind == circuit.X || b.Kind == circuit.RX, true
	case b.Arity() == 2 && b.IsDiagonal():
		// Diagonal two-qubit gate overlapping the CNOT: commutes when it
		// avoids the target (Z-type on the control line).
		return !b.On(a.Q1), true
	}
	return false, false
}

func sameAxis(a, b circuit.Kind) bool {
	switch a {
	case circuit.RX:
		return b == circuit.RX || b == circuit.X
	case circuit.X:
		return b == circuit.RX || b == circuit.X
	case circuit.RY:
		return b == circuit.RY || b == circuit.Y
	case circuit.Y:
		return b == circuit.RY || b == circuit.Y
	case circuit.RZ, circuit.U1, circuit.Z:
		return b == circuit.RZ || b == circuit.U1 || b == circuit.Z
	}
	return false
}

// DAG is the commutation-relaxed dependency graph of a circuit: edge i→j
// (i < j) means gate j must run after gate i.
type DAG struct {
	Circuit *circuit.Circuit
	// Succ[i] lists the direct successors of gate i (ascending).
	Succ [][]int
	// Pred counts direct predecessors of each gate.
	Pred []int
}

// New builds the DAG. For each pair of gates in program order, a dependency
// is added iff they share a qubit and do not commute, unless an existing
// path already orders them (transitive reduction is approximated by the
// per-qubit frontier: each gate depends on the latest non-commuting gate on
// each of its qubits).
func New(c *circuit.Circuit) *DAG {
	n := len(c.Gates)
	d := &DAG{
		Circuit: c,
		Succ:    make([][]int, n),
		Pred:    make([]int, n),
	}
	// For each qubit, the gates currently "open" on it — gates that later
	// non-commuting gates must wait for. Commuting gates accumulate; a
	// non-commuting gate clears the list.
	open := make([][]int, c.NQubits)
	for j, g := range c.Gates {
		if g.Kind == circuit.Barrier {
			// Depend on everything open, then clear all.
			seen := map[int]bool{}
			for q := range open {
				for _, i := range open[q] {
					if !seen[i] {
						seen[i] = true
						d.addEdge(i, j)
					}
				}
				open[q] = []int{j}
			}
			continue
		}
		seen := map[int]bool{}
		for _, q := range g.Qubits() {
			var keep []int
			for _, i := range open[q] {
				if Commute(c.Gates[i], g) {
					keep = append(keep, i)
					continue
				}
				if !seen[i] {
					seen[i] = true
					d.addEdge(i, j)
				}
			}
			open[q] = append(keep, j)
		}
	}
	return d
}

func (d *DAG) addEdge(i, j int) {
	d.Succ[i] = append(d.Succ[i], j)
	d.Pred[j]++
}

// Layers returns a commutation-aware greedy schedule: at each time step,
// all dependency-free gates are considered together (a superset of what
// naive program order exposes, since commuting gates impose no ordering)
// and a maximal qubit-disjoint subset is packed into the layer, first-fit
// in index order. Its length approximates the minimum depth achievable by
// re-ordering commuting gates on fully-connected hardware — for a QAOA cost
// block this is the edge-coloring schedule IP approximates.
func (d *DAG) Layers() [][]int {
	c := d.Circuit
	n := len(c.Gates)
	pred := append([]int(nil), d.Pred...)
	done := make([]bool, n)
	remaining := n

	release := func(i int) {
		done[i] = true
		remaining--
		for _, j := range d.Succ[i] {
			pred[j]--
		}
	}
	// Barriers complete as soon as their dependencies do; they occupy no
	// layer of their own.
	drainBarriers := func() {
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				if !done[i] && pred[i] == 0 && c.Gates[i].Kind == circuit.Barrier {
					release(i)
					changed = true
				}
			}
		}
	}

	var layers [][]int
	drainBarriers()
	for remaining > 0 {
		used := make(map[int]bool)
		var layer []int
		for i := 0; i < n; i++ {
			if done[i] || pred[i] != 0 {
				continue
			}
			free := true
			for _, q := range c.Gates[i].Qubits() {
				if used[q] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for _, q := range c.Gates[i].Qubits() {
				used[q] = true
			}
			layer = append(layer, i)
		}
		if len(layer) == 0 {
			panic("dag: no schedulable gate (cycle impossible for program-ordered edges)")
		}
		for _, i := range layer {
			release(i)
		}
		layers = append(layers, layer)
		drainBarriers()
	}
	return layers
}

// Depth returns the commutation-aware depth lower bound.
func (d *DAG) Depth() int { return len(d.Layers()) }

// CommutingGroups returns the maximal runs of mutually commuting gates that
// are interchangeable: group k is a set of gate indices such that every
// pair within the set commutes, and the set is closed under the program
// order (no non-member gate sharing a qubit sits between two members).
// For a QAOA circuit this recovers exactly the per-level CPhase cost
// blocks.
func (d *DAG) CommutingGroups() [][]int {
	c := d.Circuit
	var groups [][]int
	var current []int
	flush := func() {
		if len(current) > 1 {
			groups = append(groups, current)
		}
		current = nil
	}
	for i, g := range c.Gates {
		if g.Kind == circuit.Barrier || g.Kind == circuit.Measure {
			flush()
			continue
		}
		ok := true
		for _, j := range current {
			if !Commute(c.Gates[j], g) {
				ok = false
				break
			}
		}
		if ok {
			current = append(current, i)
		} else {
			flush()
			current = []int{i}
		}
	}
	flush()
	return groups
}
