package dag

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestCommuteDisjoint(t *testing.T) {
	if !Commute(circuit.NewH(0), circuit.NewCNOT(1, 2)) {
		t.Error("disjoint gates must commute")
	}
}

func TestCommuteDiagonal(t *testing.T) {
	pairs := [][2]circuit.Gate{
		{circuit.NewCPhase(0, 1, 0.3), circuit.NewCPhase(1, 2, 0.5)},
		{circuit.NewCZ(0, 1), circuit.NewRZ(0, 0.4)},
		{circuit.NewZ(2), circuit.NewCPhase(2, 3, 0.1)},
		{circuit.NewU1(1, 0.2), circuit.NewZ(1)},
	}
	for _, p := range pairs {
		if !Commute(p[0], p[1]) || !Commute(p[1], p[0]) {
			t.Errorf("diagonal gates %v and %v must commute", p[0], p[1])
		}
	}
}

func TestCommuteCNOTRules(t *testing.T) {
	cases := []struct {
		a, b circuit.Gate
		want bool
	}{
		{circuit.NewCNOT(0, 1), circuit.NewRZ(0, 0.3), true},       // diag on control
		{circuit.NewCNOT(0, 1), circuit.NewRZ(1, 0.3), false},      // diag on target
		{circuit.NewCNOT(0, 1), circuit.NewRX(1, 0.3), true},       // X on target
		{circuit.NewCNOT(0, 1), circuit.NewRX(0, 0.3), false},      // X on control
		{circuit.NewCNOT(0, 1), circuit.NewCNOT(0, 2), true},       // shared control
		{circuit.NewCNOT(0, 2), circuit.NewCNOT(1, 2), true},       // shared target
		{circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 2), false},      // crossed
		{circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0), false},      // crossed both
		{circuit.NewCNOT(0, 1), circuit.NewCPhase(0, 2, 1), true},  // ZZ off target
		{circuit.NewCNOT(0, 1), circuit.NewCPhase(1, 2, 1), false}, // ZZ on target
		{circuit.NewCNOT(0, 1), circuit.NewH(0), false},
	}
	for _, tc := range cases {
		if got := Commute(tc.a, tc.b); got != tc.want {
			t.Errorf("Commute(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := Commute(tc.b, tc.a); got != tc.want {
			t.Errorf("Commute(%v, %v) = %v, want %v (symmetric)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestCommuteSameAxisRotations(t *testing.T) {
	if !Commute(circuit.NewRX(0, 0.3), circuit.NewRX(0, 0.8)) {
		t.Error("RX·RX on the same qubit must commute")
	}
	if !Commute(circuit.NewRY(1, 0.3), circuit.NewY(1)) {
		t.Error("RY·Y must commute")
	}
	if Commute(circuit.NewRX(0, 0.3), circuit.NewRY(0, 0.8)) {
		t.Error("RX·RY must not commute")
	}
}

// Property: whenever Commute says true, exchanging the two gates leaves the
// unitary unchanged — verified against the simulator on random states.
func TestCommuteSoundness(t *testing.T) {
	gens := []func(rng *rand.Rand, n int) circuit.Gate{
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewH(r.Intn(n)) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewX(r.Intn(n)) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewZ(r.Intn(n)) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewRX(r.Intn(n), r.Float64()*3) },
		func(r *rand.Rand, n int) circuit.Gate { return circuit.NewRZ(r.Intn(n), r.Float64()*3) },
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := two(n, r)
			return circuit.NewCNOT(a, b)
		},
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := two(n, r)
			return circuit.NewCPhase(a, b, r.Float64()*3)
		},
		func(r *rand.Rand, n int) circuit.Gate {
			a, b := two(n, r)
			return circuit.NewCZ(a, b)
		},
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		a := gens[rng.Intn(len(gens))](rng, n)
		b := gens[rng.Intn(len(gens))](rng, n)
		if !Commute(a, b) {
			return true // only soundness is claimed
		}
		s1 := sim.RandomState(n, rng)
		s2 := s1.Clone()
		s1.ApplyGate(a)
		s1.ApplyGate(b)
		s2.ApplyGate(b)
		s2.ApplyGate(a)
		for i := range s1.Amp {
			if cmplx.Abs(s1.Amp[i]-s2.Amp[i]) > 1e-9 {
				t.Logf("claimed commuting pair %v, %v does not commute", a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func two(n int, r *rand.Rand) (int, int) {
	a := r.Intn(n)
	b := r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// The headline capability: a randomly ordered K4 cost layer has naive ASAP
// depth 6 but commutation-aware depth 3 (3 perfect matchings of K4).
func TestDAGDepthExploitsCommutation(t *testing.T) {
	c := circuit.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}} {
		c.Append(circuit.NewCPhase(e[0], e[1], 0.5))
	}
	naive := c.Depth()
	aware := New(c).Depth()
	if naive <= 3 {
		t.Fatalf("test setup: naive depth %d unexpectedly low", naive)
	}
	if aware != 3 {
		t.Errorf("commutation-aware depth = %d, want 3", aware)
	}
}

func TestDAGLayersValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		c := circuit.New(n)
		for i := 0; i < 20; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Append(circuit.NewH(rng.Intn(n)))
			case 1:
				a, b := two(n, rng)
				c.Append(circuit.NewCPhase(a, b, 0.4))
			default:
				a, b := two(n, rng)
				c.Append(circuit.NewCNOT(a, b))
			}
		}
		d := New(c)
		layers := d.Layers()
		// Each layer must not double-book qubits; every gate appears once.
		total := 0
		for _, layer := range layers {
			used := map[int]bool{}
			for _, gi := range layer {
				total++
				for _, q := range c.Gates[gi].Qubits() {
					if used[q] {
						return false
					}
					used[q] = true
				}
			}
		}
		if total != c.Len() {
			return false
		}
		// The relaxed depth can never exceed the naive ASAP depth.
		return len(layers) <= c.Depth()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDAGBarrier(t *testing.T) {
	c := circuit.New(2).Append(circuit.NewCPhase(0, 1, 0.3))
	c.Gates = append(c.Gates, circuit.Gate{Kind: circuit.Barrier})
	c.Append(circuit.NewCPhase(0, 1, 0.5))
	d := New(c)
	if got := d.Depth(); got != 2 {
		t.Errorf("barrier-separated commuting gates scheduled at depth %d, want 2", got)
	}
}

// CommutingGroups must recover the cost blocks of a QAOA circuit.
func TestCommutingGroupsQAOA(t *testing.T) {
	// H layer, 4 commuting CPhases, RX layer, 4 commuting CPhases.
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.Append(circuit.NewH(q))
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		c.Append(circuit.NewCPhase(e[0], e[1], 0.5))
	}
	for q := 0; q < 4; q++ {
		c.Append(circuit.NewRX(q, 0.4))
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		c.Append(circuit.NewCPhase(e[0], e[1], 0.7))
	}
	groups := New(c).CommutingGroups()
	// Expect at least the two 4-gate CPhase blocks among the groups.
	blocks := 0
	for _, g := range groups {
		if len(g) >= 4 {
			allCPhase := true
			for _, gi := range g {
				if c.Gates[gi].Kind != circuit.CPhase {
					allCPhase = false
				}
			}
			if allCPhase {
				blocks++
			}
		}
	}
	if blocks != 2 {
		t.Errorf("recovered %d CPhase blocks, want 2 (groups: %v)", blocks, groups)
	}
}

// Reordering within a commuting group must preserve the circuit unitary.
func TestCommutingGroupsReorderSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for i := 0; i < 8; i++ {
		a, b := two(n, rng)
		c.Append(circuit.NewCPhase(a, b, rng.Float64()))
	}
	groups := New(c).CommutingGroups()
	if len(groups) == 0 {
		t.Fatal("no commuting groups found")
	}
	// Shuffle the largest group in place.
	var big []int
	for _, g := range groups {
		if len(g) > len(big) {
			big = g
		}
	}
	shuffled := c.Clone()
	perm := rng.Perm(len(big))
	for k, p := range perm {
		shuffled.Gates[big[k]] = c.Gates[big[p]]
	}
	a := sim.NewState(n).Run(c)
	b := sim.NewState(n).Run(shuffled)
	if f := sim.FidelityOverlap(a, b); math.Abs(f-1) > 1e-9 {
		t.Errorf("reordered commuting group changed the state (overlap %v)", f)
	}
}
