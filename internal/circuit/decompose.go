package circuit

import "math"

// Basis identifies a native gate set for decomposition.
type Basis int

const (
	// BasisIBM is {U1, U2, U3, CNOT} — the native set of the IBM devices
	// targeted in the paper (ibmq_20_tokyo, ibmq_16_melbourne).
	BasisIBM Basis = iota
)

// Decompose rewrites the circuit into the given native basis and returns a
// new circuit. The rewriting is exact up to global phase:
//
//	H          → U2(0, π)
//	X          → U3(π, 0, π)
//	Y          → U3(π, π/2, π/2)
//	Z          → U1(π)
//	RZ(θ)      → U1(θ)
//	RX(θ)      → U3(θ, -π/2, π/2)
//	RY(θ)      → U3(θ, 0, 0)
//	CZ         → U2 · CNOT · U2 on the target (H-conjugation)
//	CPhase(θ)  → CNOT · U1(θ) on target · CNOT   (exact ZZ identity)
//	Swap       → 3 CNOTs
//
// Barriers are dropped; measurements pass through unchanged.
func (c *Circuit) Decompose(basis Basis) *Circuit {
	if basis != BasisIBM {
		panic("circuit: unknown basis")
	}
	out := New(c.NQubits)
	for _, g := range c.Gates {
		switch g.Kind {
		case H:
			out.Append(NewU2(g.Q0, 0, math.Pi))
		case X:
			out.Append(NewU3(g.Q0, math.Pi, 0, math.Pi))
		case Y:
			out.Append(NewU3(g.Q0, math.Pi, math.Pi/2, math.Pi/2))
		case Z:
			out.Append(NewU1(g.Q0, math.Pi))
		case RZ:
			out.Append(NewU1(g.Q0, g.Params[0]))
		case RX:
			out.Append(NewU3(g.Q0, g.Params[0], -math.Pi/2, math.Pi/2))
		case RY:
			out.Append(NewU3(g.Q0, g.Params[0], 0, 0))
		case U1, U2, U3, CNOT, Measure:
			out.Append(g)
		case CZ:
			out.Append(
				NewU2(g.Q1, 0, math.Pi),
				NewCNOT(g.Q0, g.Q1),
				NewU2(g.Q1, 0, math.Pi),
			)
		case CPhase:
			out.Append(
				NewCNOT(g.Q0, g.Q1),
				NewU1(g.Q1, g.Params[0]),
				NewCNOT(g.Q0, g.Q1),
			)
		case Swap:
			out.Append(
				NewCNOT(g.Q0, g.Q1),
				NewCNOT(g.Q1, g.Q0),
				NewCNOT(g.Q0, g.Q1),
			)
		case Barrier:
			// dropped
		default:
			panic("circuit: cannot decompose " + g.Kind.String())
		}
	}
	return out
}

// NativeCNOTCost returns how many native CNOTs the gate kind costs after
// decomposition into BasisIBM. Used by reliability models that only charge
// two-qubit errors.
func NativeCNOTCost(k Kind) int {
	switch k {
	case CNOT, CZ:
		return 1
	case CPhase:
		return 2
	case Swap:
		return 3
	default:
		return 0
	}
}
