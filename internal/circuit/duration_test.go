package circuit

import (
	"math"
	"testing"
)

func TestExecutionTimeSerial(t *testing.T) {
	d := Durations{H: 50, CNOT: 300}
	c := New(2).Append(NewH(0), NewCNOT(0, 1), NewH(1))
	if got := c.ExecutionTime(d); got != 400 {
		t.Errorf("serial time = %v, want 400", got)
	}
}

func TestExecutionTimeParallel(t *testing.T) {
	d := Durations{H: 50, CNOT: 300}
	c := New(4).Append(NewH(0), NewCNOT(2, 3)) // disjoint → overlap
	if got := c.ExecutionTime(d); got != 300 {
		t.Errorf("parallel time = %v, want 300", got)
	}
}

func TestExecutionTimeVirtualGatesFree(t *testing.T) {
	d := IBMDurations()
	c := New(1).Append(NewRZ(0, 0.5), NewU1(0, 0.3), NewZ(0))
	if got := c.ExecutionTime(d); got != 0 {
		t.Errorf("virtual-only circuit time = %v, want 0", got)
	}
}

func TestExecutionTimeBarrier(t *testing.T) {
	d := Durations{H: 50}
	c := New(2).Append(NewH(0))
	c.Gates = append(c.Gates, Gate{Kind: Barrier})
	c.Append(NewH(1))
	if got := c.ExecutionTime(d); got != 100 {
		t.Errorf("barrier time = %v, want 100", got)
	}
}

func TestIBMDurationsRegime(t *testing.T) {
	d := IBMDurations()
	if d[CNOT] <= d[H] {
		t.Error("CNOT should dominate one-qubit gates")
	}
	if d[Swap] != 3*d[CNOT] || d[CPhase] != 2*d[CNOT] {
		t.Error("composite gates should cost their decomposition")
	}
	if d[RZ] != 0 || d[U1] != 0 {
		t.Error("Z rotations are virtual")
	}
}

// Execution time and decomposed execution time agree for composite gates
// whose decomposition is all-CNOT (Swap), since the model prices them as
// their decomposition.
func TestExecutionTimeConsistentWithDecomposition(t *testing.T) {
	d := IBMDurations()
	c := New(2).Append(NewSwap(0, 1))
	direct := c.ExecutionTime(d)
	decomposed := c.Decompose(BasisIBM).ExecutionTime(d)
	if math.Abs(direct-decomposed) > 1e-9 {
		t.Errorf("swap time %v vs decomposed %v", direct, decomposed)
	}
}

// A shorter-depth compiled circuit must also have a shorter execution time
// when gate mixes are similar — the depth↔time correlation the paper uses.
func TestExecutionTimeTracksDepth(t *testing.T) {
	d := IBMDurations()
	serialCost := New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		serialCost.Append(NewCPhase(e[0], e[1], 0.5))
	}
	parallelCost := New(4).Append(NewCPhase(0, 1, 0.5), NewCPhase(2, 3, 0.5), NewCPhase(1, 2, 0.5))
	st := serialCost.ExecutionTime(d)
	pt := parallelCost.ExecutionTime(d)
	if pt >= st {
		t.Errorf("parallel-friendly order time %v not below serial %v", pt, st)
	}
}
