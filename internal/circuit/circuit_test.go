package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestKindArityAndParams(t *testing.T) {
	cases := []struct {
		k       Kind
		arity   int
		nparams int
	}{
		{H, 1, 0}, {X, 1, 0}, {Y, 1, 0}, {Z, 1, 0},
		{RX, 1, 1}, {RY, 1, 1}, {RZ, 1, 1},
		{U1, 1, 1}, {U2, 1, 2}, {U3, 1, 3},
		{CNOT, 2, 0}, {CZ, 2, 0}, {CPhase, 2, 1}, {Swap, 2, 0},
		{Measure, 1, 0}, {Barrier, 0, 0},
	}
	for _, tc := range cases {
		if got := tc.k.Arity(); got != tc.arity {
			t.Errorf("%v.Arity() = %d, want %d", tc.k, got, tc.arity)
		}
		if got := tc.k.NumParams(); got != tc.nparams {
			t.Errorf("%v.NumParams() = %d, want %d", tc.k, got, tc.nparams)
		}
	}
}

func TestGateQubitsAndOn(t *testing.T) {
	g := NewCNOT(2, 5)
	if !g.On(2) || !g.On(5) || g.On(3) {
		t.Error("On misreports CNOT qubits")
	}
	qs := g.Qubits()
	if len(qs) != 2 || qs[0] != 2 || qs[1] != 5 {
		t.Errorf("Qubits = %v", qs)
	}
	h := NewH(1)
	if h.On(0) || !h.On(1) {
		t.Error("On misreports H qubit")
	}
	if len(NewMeasure(0).Qubits()) != 1 {
		t.Error("Measure should touch one qubit")
	}
}

func TestSharesQubit(t *testing.T) {
	a := NewCPhase(0, 1, 0.3)
	b := NewCPhase(2, 3, 0.3)
	c := NewCPhase(1, 2, 0.3)
	if a.SharesQubit(b) {
		t.Error("disjoint gates reported as sharing")
	}
	if !a.SharesQubit(c) || !b.SharesQubit(c) {
		t.Error("overlapping gates reported as disjoint")
	}
}

func TestIsDiagonal(t *testing.T) {
	diag := []Gate{NewZ(0), NewRZ(0, 1), NewU1(0, 1), NewCZ(0, 1), NewCPhase(0, 1, 1)}
	for _, g := range diag {
		if !g.IsDiagonal() {
			t.Errorf("%v not reported diagonal", g)
		}
	}
	nondiag := []Gate{NewH(0), NewX(0), NewRX(0, 1), NewCNOT(0, 1), NewSwap(0, 1)}
	for _, g := range nondiag {
		if g.IsDiagonal() {
			t.Errorf("%v reported diagonal", g)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := NewH(3).Validate(3); err == nil {
		t.Error("out-of-range 1q gate accepted")
	}
	if err := NewCNOT(0, 3).Validate(3); err == nil {
		t.Error("out-of-range 2q gate accepted")
	}
	if err := NewCNOT(1, 1).Validate(3); err == nil {
		t.Error("same-qubit CNOT accepted")
	}
	if err := NewCNOT(0, 2).Validate(3); err != nil {
		t.Errorf("valid CNOT rejected: %v", err)
	}
}

func TestAppendPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append of invalid gate did not panic")
		}
	}()
	New(2).Append(NewCNOT(0, 2))
}

// qaoaCost builds H-layer + the given CPhase edge order + RX layer +
// measurement, the p=1 QAOA-MaxCut template of Fig. 1.
func qaoaCost(n int, order [][2]int) *Circuit {
	c := New(n)
	for q := 0; q < n; q++ {
		c.Append(NewH(q))
	}
	for _, e := range order {
		c.Append(NewCPhase(e[0], e[1], 0.5))
	}
	for q := 0; q < n; q++ {
		c.Append(NewRX(q, 0.3))
	}
	return c.MeasureAll()
}

// The Fig. 1 example: a randomly ordered K4 cost layer needs 9 time steps
// while the intelligently ordered one needs 6 (measurement included).
func TestDepthFig1Example(t *testing.T) {
	random := qaoaCost(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}})
	if got := random.Depth(); got != 9 {
		t.Errorf("circ-1 depth = %d, want 9", got)
	}
	smart := qaoaCost(4, [][2]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}})
	if got := smart.Depth(); got != 6 {
		t.Errorf("circ-2 depth = %d, want 6", got)
	}
}

func TestDepthEmptyAndSingle(t *testing.T) {
	if d := New(3).Depth(); d != 0 {
		t.Errorf("empty depth = %d", d)
	}
	c := New(1).Append(NewH(0), NewH(0), NewH(0))
	if d := c.Depth(); d != 3 {
		t.Errorf("serial depth = %d, want 3", d)
	}
}

func TestDepthParallel(t *testing.T) {
	c := New(4).Append(NewH(0), NewH(1), NewH(2), NewH(3))
	if d := c.Depth(); d != 1 {
		t.Errorf("parallel depth = %d, want 1", d)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := New(2).Append(NewH(0))
	c.Gates = append(c.Gates, Gate{Kind: Barrier})
	c.Append(NewH(1))
	if d := c.Depth(); d != 2 {
		t.Errorf("depth with barrier = %d, want 2", d)
	}
	// Without the barrier the H gates overlap.
	c2 := New(2).Append(NewH(0), NewH(1))
	if d := c2.Depth(); d != 1 {
		t.Errorf("depth without barrier = %d, want 1", d)
	}
}

func TestLayersConsistentWithDepth(t *testing.T) {
	c := qaoaCost(4, [][2]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 3}, {1, 2}})
	layers := c.Layers()
	if len(layers) != c.Depth() {
		t.Fatalf("len(Layers) = %d, Depth = %d", len(layers), c.Depth())
	}
	// No two gates within a layer may share a qubit.
	total := 0
	for li, layer := range layers {
		total += len(layer)
		for i := 0; i < len(layer); i++ {
			for j := i + 1; j < len(layer); j++ {
				if c.Gates[layer[i]].SharesQubit(c.Gates[layer[j]]) {
					t.Errorf("layer %d: gates %v and %v share a qubit", li, c.Gates[layer[i]], c.Gates[layer[j]])
				}
			}
		}
	}
	if total != c.Len() {
		t.Errorf("layers cover %d gates, circuit has %d", total, c.Len())
	}
}

func TestCounts(t *testing.T) {
	c := qaoaCost(4, [][2]int{{0, 1}, {2, 3}})
	if got := c.CountKind(H); got != 4 {
		t.Errorf("H count = %d, want 4", got)
	}
	if got := c.CountKind(CPhase); got != 2 {
		t.Errorf("CPhase count = %d, want 2", got)
	}
	if got := c.TwoQubitCount(); got != 2 {
		t.Errorf("two-qubit count = %d, want 2", got)
	}
	if got := c.GateCount(); got != 4+2+4+4 {
		t.Errorf("GateCount = %d, want 14", got)
	}
	hist := c.Counts()
	if hist[Measure] != 4 || hist[RX] != 4 {
		t.Errorf("Counts = %v", hist)
	}
}

func TestAppendCircuitStitching(t *testing.T) {
	a := New(3).Append(NewH(0))
	b := New(3).Append(NewCNOT(0, 1), NewCNOT(1, 2))
	a.AppendCircuit(b)
	if a.Len() != 3 {
		t.Errorf("stitched length = %d, want 3", a.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("stitching mismatched registers did not panic")
		}
	}()
	a.AppendCircuit(New(4))
}

func TestCloneIndependence(t *testing.T) {
	a := New(2).Append(NewH(0))
	b := a.Clone()
	b.Append(NewH(1))
	if a.Len() != 1 || b.Len() != 2 {
		t.Errorf("clone not independent: %d, %d", a.Len(), b.Len())
	}
}

func TestString(t *testing.T) {
	c := New(2).Append(NewCPhase(0, 1, math.Pi/4), NewMeasure(0))
	s := c.String()
	for _, want := range []string{"qreg q[2];", "zz(0.78540) q[0],q[1];", "measure q[0];"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q in:\n%s", want, s)
		}
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, tc := range cases {
		if got := NormalizeAngle(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDecomposeCounts(t *testing.T) {
	c := New(3).Append(
		NewH(0),
		NewCPhase(0, 1, 0.7),
		NewSwap(1, 2),
		NewRX(0, 0.3),
		NewCZ(0, 2),
		NewMeasure(1),
	)
	d := c.Decompose(BasisIBM)
	// H→1 U2; CPhase→2 CNOT+1 U1; Swap→3 CNOT; RX→1 U3; CZ→2 U2+1 CNOT.
	if got := d.CountKind(CNOT); got != 6 {
		t.Errorf("CNOT count = %d, want 6", got)
	}
	if got := d.CountKind(U2); got != 3 {
		t.Errorf("U2 count = %d, want 3", got)
	}
	if got := d.CountKind(U1); got != 1 {
		t.Errorf("U1 count = %d, want 1", got)
	}
	if got := d.CountKind(U3); got != 1 {
		t.Errorf("U3 count = %d, want 1", got)
	}
	if got := d.CountKind(Measure); got != 1 {
		t.Errorf("Measure count = %d, want 1", got)
	}
	// Only native kinds remain.
	for _, g := range d.Gates {
		switch g.Kind {
		case U1, U2, U3, CNOT, Measure:
		default:
			t.Errorf("non-native gate %v in decomposed circuit", g)
		}
	}
}

func TestNativeCNOTCost(t *testing.T) {
	cases := []struct {
		k    Kind
		want int
	}{{CNOT, 1}, {CZ, 1}, {CPhase, 2}, {Swap, 3}, {H, 0}, {Measure, 0}}
	for _, tc := range cases {
		if got := NativeCNOTCost(tc.k); got != tc.want {
			t.Errorf("NativeCNOTCost(%v) = %d, want %d", tc.k, got, tc.want)
		}
	}
}
