package circuit

import (
	"strings"
	"testing"
)

func TestDrawBell(t *testing.T) {
	c := New(2).Append(NewH(0), NewCNOT(0, 1), NewMeasure(0), NewMeasure(1))
	art := c.Draw()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("drew %d lines, want 2:\n%s", len(lines), art)
	}
	if !strings.HasPrefix(lines[0], "q0: ") || !strings.HasPrefix(lines[1], "q1: ") {
		t.Errorf("missing labels:\n%s", art)
	}
	if !strings.Contains(lines[0], "H") || !strings.Contains(lines[0], "●") || !strings.Contains(lines[0], "M") {
		t.Errorf("q0 wire missing tokens:\n%s", art)
	}
	if !strings.Contains(lines[1], "⊕") {
		t.Errorf("target marker missing:\n%s", art)
	}
}

func TestDrawVerticalConnector(t *testing.T) {
	// CNOT(0,2) spans qubit 1 → its wire carries │ in that column.
	c := New(3).Append(NewCNOT(0, 2))
	art := c.Draw()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if !strings.Contains(lines[1], "│") {
		t.Errorf("spanned wire lacks connector:\n%s", art)
	}
}

func TestDrawColumnsAligned(t *testing.T) {
	c := New(3).Append(
		NewH(0), NewRZ(1, 0.5), NewH(2),
		NewCPhase(0, 1, 0.25),
		NewSwap(1, 2),
	)
	art := c.Draw()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	w := len([]rune(lines[0]))
	for i, l := range lines {
		if len([]rune(l)) != w {
			t.Errorf("line %d width %d != %d:\n%s", i, len([]rune(l)), w, art)
		}
	}
	if !strings.Contains(art, "Z(0.25)") {
		t.Errorf("CPhase angle missing:\n%s", art)
	}
	if strings.Count(art, "×") != 2 {
		t.Errorf("swap markers missing:\n%s", art)
	}
}

func TestDrawEmpty(t *testing.T) {
	art := New(2).Draw()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("empty circuit drew %d lines", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "─") {
			t.Errorf("bare wire missing: %q", l)
		}
	}
}
