package circuit

import (
	"fmt"
	"strings"
)

// Draw renders the circuit as ASCII art, one wire per qubit, one column per
// ASAP layer:
//
//	q0: ─H─────●──────M─
//	q1: ─H─────Z(0.5)─M─
//	q2: ─H─×────────────
//	q3: ─H─×────────────
//
// Two-qubit gates mark the first operand with ● (control for CNOT/CPhase)
// and the second with their symbol (⊕ for CNOT targets, ● for CZ, × for
// SWAP); wires strictly between the operands carry │ in that column.
// Intended for small circuits — the output width grows with depth.
func (c *Circuit) Draw() string {
	layers := c.Layers()
	n := c.NQubits
	// cells[q][col] holds the token for qubit q in that column.
	cells := make([][]string, n)
	for q := range cells {
		cells[q] = make([]string, len(layers))
	}
	for col, layer := range layers {
		for _, gi := range layer {
			g := c.Gates[gi]
			switch g.Arity() {
			case 1:
				cells[g.Q0][col] = token1(g)
			case 2:
				a, b := tokens2(g)
				cells[g.Q0][col] = a
				cells[g.Q1][col] = b
				lo, hi := g.Q0, g.Q1
				if lo > hi {
					lo, hi = hi, lo
				}
				for q := lo + 1; q < hi; q++ {
					if cells[q][col] == "" {
						cells[q][col] = "│"
					}
				}
			}
		}
	}

	widths := make([]int, len(layers))
	for col := range widths {
		for q := 0; q < n; q++ {
			if w := runeLen(cells[q][col]); w > widths[col] {
				widths[col] = w
			}
		}
	}

	labelW := len(fmt.Sprintf("q%d: ", n-1))
	var b strings.Builder
	for q := 0; q < n; q++ {
		label := fmt.Sprintf("q%d: ", q)
		b.WriteString(label)
		b.WriteString(strings.Repeat(" ", labelW-len(label)))
		b.WriteString("─")
		for col := range layers {
			tok := cells[q][col]
			fill := "─"
			if tok == "│" {
				fill = " "
			}
			if tok == "" {
				tok = ""
				fill = "─"
			}
			b.WriteString(tok)
			pad := widths[col] - runeLen(tok)
			b.WriteString(strings.Repeat(fill, pad))
			b.WriteString("─")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func token1(g Gate) string {
	switch g.Kind {
	case H, X, Y, Z:
		return strings.ToUpper(g.Kind.String())
	case Measure:
		return "M"
	case RX, RY, RZ, U1:
		return fmt.Sprintf("%s(%.2g)", strings.ToUpper(g.Kind.String()[:1])+g.Kind.String()[1:], g.Params[0])
	case U2:
		return fmt.Sprintf("U2(%.2g,%.2g)", g.Params[0], g.Params[1])
	case U3:
		return fmt.Sprintf("U3(%.2g,%.2g,%.2g)", g.Params[0], g.Params[1], g.Params[2])
	default:
		return g.Kind.String()
	}
}

func tokens2(g Gate) (string, string) {
	switch g.Kind {
	case CNOT:
		return "●", "⊕"
	case CZ:
		return "●", "●"
	case CPhase:
		return "●", fmt.Sprintf("Z(%.2g)", g.Params[0])
	case Swap:
		return "×", "×"
	default:
		return g.Kind.String(), g.Kind.String()
	}
}

func runeLen(s string) int { return len([]rune(s)) }
