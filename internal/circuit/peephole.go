package circuit

import "math"

// Peephole returns an optimized copy of c with local gate-level rewrites
// applied, preserving the circuit's unitary up to global phase:
//
//   - adjacent self-inverse pairs cancel (H·H, X·X, Y·Y, Z·Z, CNOT·CNOT,
//     CZ·CZ, SWAP·SWAP on the same operands),
//   - adjacent rotations about the same axis merge (RX/RY/RZ/U1/CPhase),
//   - rotations by multiples of 2π vanish (a global phase at most).
//
// "Adjacent" means no intervening gate touches any shared qubit, so
// cancellations cascade (e.g. the trailing CNOT of a decomposed SWAP
// annihilates the leading CNOT of a following decomposed CPhase on the same
// pair — the rewrite conventional transpilers perform at higher
// optimization levels). Measurements block rewrites on their qubit;
// barriers block rewrites everywhere.
func Peephole(c *Circuit) *Circuit {
	out := make([]Gate, 0, len(c.Gates))
	alive := make([]bool, 0, len(c.Gates))
	// history[q] holds indices into out of alive gates touching q, in order.
	history := make([][]int, c.NQubits)

	last := func(q int) int {
		h := history[q]
		if len(h) == 0 {
			return -1
		}
		return h[len(h)-1]
	}
	pop := func(idx int) {
		alive[idx] = false
		for _, q := range out[idx].Qubits() {
			h := history[q]
			if len(h) > 0 && h[len(h)-1] == idx {
				history[q] = h[:len(h)-1]
			}
		}
	}
	push := func(g Gate) {
		out = append(out, g)
		alive = append(alive, true)
		for _, q := range g.Qubits() {
			history[q] = append(history[q], len(out)-1)
		}
	}

	for _, g := range c.Gates {
		switch {
		case g.Kind == Barrier:
			for q := range history {
				history[q] = nil
			}
			push(g)
			continue
		case g.Kind == Measure:
			push(g)
			continue
		}

		// Zero rotations vanish immediately.
		if isRotation(g.Kind) && negligibleAngle(g.Params[0]) {
			continue
		}

		prev := -1
		switch g.Arity() {
		case 1:
			prev = last(g.Q0)
		case 2:
			p0, p1 := last(g.Q0), last(g.Q1)
			if p0 == p1 {
				prev = p0
			}
		}
		if prev >= 0 && alive[prev] {
			pg := out[prev]
			if cancels(pg, g) {
				pop(prev)
				continue
			}
			if merged, ok := merge(pg, g); ok {
				pop(prev)
				if !(isRotation(merged.Kind) && negligibleAngle(merged.Params[0])) {
					push(merged)
				}
				continue
			}
		}
		push(g)
	}

	res := New(c.NQubits)
	for i, g := range out {
		if alive[i] {
			res.Gates = append(res.Gates, g)
		}
	}
	return res
}

func isRotation(k Kind) bool {
	switch k {
	case RX, RY, RZ, U1, CPhase:
		return true
	}
	return false
}

// negligibleAngle reports whether the rotation is an identity up to global
// phase (angle ≡ 0 mod 2π; U1 and CPhase phases are exactly periodic in 2π,
// RX/RY/RZ(2π) = −I, a pure global phase).
func negligibleAngle(theta float64) bool {
	return math.Abs(NormalizeAngle(theta)) < 1e-12
}

// cancels reports whether g undoes prev exactly (self-inverse pair on the
// same operands).
func cancels(prev, g Gate) bool {
	if prev.Kind != g.Kind {
		return false
	}
	switch g.Kind {
	case H, X, Y, Z:
		return prev.Q0 == g.Q0
	case CNOT:
		return prev.Q0 == g.Q0 && prev.Q1 == g.Q1
	case CZ, Swap:
		return samePair(prev, g)
	}
	return false
}

// merge combines two same-axis rotations on the same operands.
func merge(prev, g Gate) (Gate, bool) {
	if prev.Kind != g.Kind || !isRotation(g.Kind) {
		return Gate{}, false
	}
	switch g.Kind {
	case RX, RY, RZ, U1:
		if prev.Q0 != g.Q0 {
			return Gate{}, false
		}
	case CPhase:
		if !samePair(prev, g) {
			return Gate{}, false
		}
	}
	m := prev
	m.Params[0] = NormalizeAngle(prev.Params[0] + g.Params[0])
	return m, true
}

// samePair reports whether two symmetric two-qubit gates act on the same
// unordered pair.
func samePair(a, b Gate) bool {
	return (a.Q0 == b.Q0 && a.Q1 == b.Q1) || (a.Q0 == b.Q1 && a.Q1 == b.Q0)
}
