// Package circuit defines the quantum-circuit intermediate representation
// used by the QAOA compiler: gates, circuits, ASAP layering, depth and
// gate-count metrics, and decomposition into the IBM native basis
// {U1, U2, U3, CNOT}.
//
// Gates act on logical or physical qubit indices depending on the pipeline
// stage; the IR itself is agnostic. Angles are radians.
package circuit

import (
	"fmt"
	"math"
)

// Kind enumerates the gate set understood by the IR, the router and the
// simulator.
type Kind int

// Gate kinds. CPhase is the commuting two-qubit cost gate of QAOA: the
// ZZ-interaction exp(-i θ/2 Z⊗Z), which equals the MaxCut cost unitary up to
// a global phase and decomposes exactly as CNOT·(I⊗RZ(θ))·CNOT.
const (
	Invalid Kind = iota
	H
	X
	Y
	Z
	RX
	RY
	RZ
	U1
	U2
	U3
	CNOT
	CZ
	CPhase
	Swap
	Measure
	Barrier
)

var kindNames = map[Kind]string{
	Invalid: "invalid",
	H:       "h",
	X:       "x",
	Y:       "y",
	Z:       "z",
	RX:      "rx",
	RY:      "ry",
	RZ:      "rz",
	U1:      "u1",
	U2:      "u2",
	U3:      "u3",
	CNOT:    "cx",
	CZ:      "cz",
	CPhase:  "zz",
	Swap:    "swap",
	Measure: "measure",
	Barrier: "barrier",
}

// String returns the lowercase OpenQASM-style mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Arity returns the number of qubits the kind acts on (Barrier is treated
// as 0-ary; it spans the whole register).
func (k Kind) Arity() int {
	switch k {
	case CNOT, CZ, CPhase, Swap:
		return 2
	case Barrier:
		return 0
	case Invalid:
		return 0
	default:
		return 1
	}
}

// NumParams returns the number of angle parameters the kind carries.
func (k Kind) NumParams() int {
	switch k {
	case RX, RY, RZ, U1, CPhase:
		return 1
	case U2:
		return 2
	case U3:
		return 3
	default:
		return 0
	}
}

// Gate is a single operation. For two-qubit gates Q0 is the control (or the
// first operand for symmetric gates) and Q1 the target; for one-qubit gates
// Q1 is -1.
type Gate struct {
	Kind   Kind
	Q0, Q1 int
	Params [3]float64
}

// Arity returns the number of qubits the gate touches.
func (g Gate) Arity() int { return g.Kind.Arity() }

// Qubits returns the touched qubits (1 or 2 entries; none for barriers).
func (g Gate) Qubits() []int {
	switch g.Arity() {
	case 1:
		return []int{g.Q0}
	case 2:
		return []int{g.Q0, g.Q1}
	default:
		return nil
	}
}

// On reports whether the gate touches qubit q.
func (g Gate) On(q int) bool {
	switch g.Arity() {
	case 1:
		return g.Q0 == q
	case 2:
		return g.Q0 == q || g.Q1 == q
	default:
		return false
	}
}

// SharesQubit reports whether g and h touch a common qubit.
func (g Gate) SharesQubit(h Gate) bool {
	for _, q := range h.Qubits() {
		if g.On(q) {
			return true
		}
	}
	return false
}

// IsDiagonal reports whether the gate's unitary is diagonal in the
// computational basis. Diagonal gates mutually commute — the property the
// paper's passes exploit for the CPhase cost layer.
func (g Gate) IsDiagonal() bool {
	switch g.Kind {
	case Z, RZ, U1, CZ, CPhase:
		return true
	default:
		return false
	}
}

// String renders the gate OpenQASM-style, e.g. "zz(0.78540) q[1],q[4]".
func (g Gate) String() string {
	s := g.Kind.String()
	if n := g.Kind.NumParams(); n > 0 {
		s += "("
		for i := 0; i < n; i++ {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%.5f", g.Params[i])
		}
		s += ")"
	}
	switch g.Arity() {
	case 1:
		s += fmt.Sprintf(" q[%d]", g.Q0)
	case 2:
		s += fmt.Sprintf(" q[%d],q[%d]", g.Q0, g.Q1)
	}
	return s
}

// Constructors.

// NewH returns a Hadamard on q.
func NewH(q int) Gate { return Gate{Kind: H, Q0: q, Q1: -1} }

// NewX returns a Pauli-X on q.
func NewX(q int) Gate { return Gate{Kind: X, Q0: q, Q1: -1} }

// NewY returns a Pauli-Y on q.
func NewY(q int) Gate { return Gate{Kind: Y, Q0: q, Q1: -1} }

// NewZ returns a Pauli-Z on q.
func NewZ(q int) Gate { return Gate{Kind: Z, Q0: q, Q1: -1} }

// NewRX returns an X-rotation by theta on q.
func NewRX(q int, theta float64) Gate {
	return Gate{Kind: RX, Q0: q, Q1: -1, Params: [3]float64{theta}}
}

// NewRY returns a Y-rotation by theta on q.
func NewRY(q int, theta float64) Gate {
	return Gate{Kind: RY, Q0: q, Q1: -1, Params: [3]float64{theta}}
}

// NewRZ returns a Z-rotation by theta on q.
func NewRZ(q int, theta float64) Gate {
	return Gate{Kind: RZ, Q0: q, Q1: -1, Params: [3]float64{theta}}
}

// NewU1 returns the IBM virtual-Z phase gate diag(1, e^{iλ}).
func NewU1(q int, lambda float64) Gate {
	return Gate{Kind: U1, Q0: q, Q1: -1, Params: [3]float64{lambda}}
}

// NewU2 returns the IBM single-pulse gate U2(φ, λ).
func NewU2(q int, phi, lambda float64) Gate {
	return Gate{Kind: U2, Q0: q, Q1: -1, Params: [3]float64{phi, lambda}}
}

// NewU3 returns the IBM general one-qubit gate U3(θ, φ, λ).
func NewU3(q int, theta, phi, lambda float64) Gate {
	return Gate{Kind: U3, Q0: q, Q1: -1, Params: [3]float64{theta, phi, lambda}}
}

// NewCNOT returns a CNOT with control c and target t.
func NewCNOT(c, t int) Gate { return Gate{Kind: CNOT, Q0: c, Q1: t} }

// NewCZ returns a controlled-Z between a and b.
func NewCZ(a, b int) Gate { return Gate{Kind: CZ, Q0: a, Q1: b} }

// NewCPhase returns the QAOA cost gate exp(-i θ/2 Z⊗Z) between a and b.
func NewCPhase(a, b int, theta float64) Gate {
	return Gate{Kind: CPhase, Q0: a, Q1: b, Params: [3]float64{theta}}
}

// NewSwap returns a SWAP between a and b.
func NewSwap(a, b int) Gate { return Gate{Kind: Swap, Q0: a, Q1: b} }

// NewMeasure returns a computational-basis measurement of q.
func NewMeasure(q int) Gate { return Gate{Kind: Measure, Q0: q, Q1: -1} }

// Validate checks qubit indices against a register of n qubits.
func (g Gate) Validate(n int) error {
	switch g.Arity() {
	case 1:
		if g.Q0 < 0 || g.Q0 >= n {
			return fmt.Errorf("circuit: gate %s qubit out of range [0,%d)", g, n)
		}
	case 2:
		if g.Q0 < 0 || g.Q0 >= n || g.Q1 < 0 || g.Q1 >= n {
			return fmt.Errorf("circuit: gate %s qubit out of range [0,%d)", g, n)
		}
		if g.Q0 == g.Q1 {
			return fmt.Errorf("circuit: gate %s uses the same qubit twice", g)
		}
	}
	return nil
}

// NormalizeAngle maps an angle to (-π, π] for stable comparisons.
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
