package circuit

import (
	"math"
	"testing"
)

func TestPeepholeCancellations(t *testing.T) {
	cases := []struct {
		name string
		in   []Gate
		want int // surviving gate count
	}{
		{"HH", []Gate{NewH(0), NewH(0)}, 0},
		{"HHH", []Gate{NewH(0), NewH(0), NewH(0)}, 1},
		{"HHHH cascade", []Gate{NewH(0), NewH(0), NewH(0), NewH(0)}, 0},
		{"XX", []Gate{NewX(1), NewX(1)}, 0},
		{"YY", []Gate{NewY(0), NewY(0)}, 0},
		{"ZZ", []Gate{NewZ(0), NewZ(0)}, 0},
		{"CNOT pair", []Gate{NewCNOT(0, 1), NewCNOT(0, 1)}, 0},
		{"CNOT reversed no cancel", []Gate{NewCNOT(0, 1), NewCNOT(1, 0)}, 2},
		{"CZ symmetric", []Gate{NewCZ(0, 1), NewCZ(1, 0)}, 0},
		{"SWAP pair", []Gate{NewSwap(0, 1), NewSwap(1, 0)}, 0},
		{"H on different qubits", []Gate{NewH(0), NewH(1)}, 2},
		{"blocked by intervening gate", []Gate{NewH(0), NewX(0), NewH(0)}, 3},
		{"blocked by shared 2q", []Gate{NewCNOT(0, 1), NewH(1), NewCNOT(0, 1)}, 3},
	}
	for _, tc := range cases {
		c := New(3).Append(tc.in...)
		got := Peephole(c)
		if got.Len() != tc.want {
			t.Errorf("%s: %d gates survive, want %d (%v)", tc.name, got.Len(), tc.want, got.Gates)
		}
	}
}

func TestPeepholeRotationMerging(t *testing.T) {
	c := New(2).Append(NewRZ(0, 0.3), NewRZ(0, 0.5))
	got := Peephole(c)
	if got.Len() != 1 || math.Abs(got.Gates[0].Params[0]-0.8) > 1e-12 {
		t.Errorf("RZ merge: %v", got.Gates)
	}
	// Opposite rotations annihilate.
	c2 := New(2).Append(NewRX(1, 0.7), NewRX(1, -0.7))
	if got := Peephole(c2); got.Len() != 0 {
		t.Errorf("RX annihilation: %v", got.Gates)
	}
	// CPhase merges across orientation.
	c3 := New(2).Append(NewCPhase(0, 1, 0.2), NewCPhase(1, 0, 0.3))
	got3 := Peephole(c3)
	if got3.Len() != 1 || math.Abs(got3.Gates[0].Params[0]-0.5) > 1e-12 {
		t.Errorf("CPhase merge: %v", got3.Gates)
	}
}

func TestPeepholeZeroRotationsDropped(t *testing.T) {
	c := New(1).Append(NewRZ(0, 0), NewU1(0, 2*math.Pi), NewRX(0, 4*math.Pi))
	if got := Peephole(c); got.Len() != 0 {
		t.Errorf("identity rotations survive: %v", got.Gates)
	}
}

func TestPeepholeMeasureBlocks(t *testing.T) {
	c := New(1).Append(NewH(0), NewMeasure(0), NewH(0))
	if got := Peephole(c); got.Len() != 3 {
		t.Errorf("measurement did not block cancellation: %v", got.Gates)
	}
}

func TestPeepholeBarrierBlocks(t *testing.T) {
	c := New(2).Append(NewH(0))
	c.Gates = append(c.Gates, Gate{Kind: Barrier})
	c.Append(NewH(0))
	got := Peephole(c)
	if got.CountKind(H) != 2 {
		t.Errorf("barrier did not block cancellation: %v", got.Gates)
	}
}

// The SWAP/CPhase fusion the compiler produces: SWAP then CPhase on the
// same pair loses a CNOT pair once decomposed.
func TestPeepholeSwapCPhaseFusion(t *testing.T) {
	c := New(2).Append(NewSwap(0, 1), NewCPhase(0, 1, 0.4)).Decompose(BasisIBM)
	before := c.CountKind(CNOT) // 3 + 2
	got := Peephole(c)
	after := got.CountKind(CNOT)
	if before != 5 || after != 3 {
		t.Errorf("CNOT count %d → %d, want 5 → 3", before, after)
	}
}

func TestPeepholePreservesOtherGates(t *testing.T) {
	c := New(3).Append(
		NewH(0), NewCNOT(0, 1), NewCPhase(1, 2, 0.3), NewRX(2, 0.5), NewMeasure(0),
	)
	got := Peephole(c)
	if got.Len() != c.Len() {
		t.Errorf("irreducible circuit changed: %d → %d gates", c.Len(), got.Len())
	}
}
