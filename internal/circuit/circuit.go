package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered gate list over a register of NQubits qubits.
type Circuit struct {
	NQubits int
	Gates   []Gate
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{NQubits: n}
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NQubits: c.NQubits, Gates: make([]Gate, len(c.Gates))}
	copy(out.Gates, c.Gates)
	return out
}

// Append adds gates to the end of the circuit, panicking on invalid qubit
// indices (construction bugs, not runtime conditions).
func (c *Circuit) Append(gs ...Gate) *Circuit {
	for _, g := range gs {
		if err := g.Validate(c.NQubits); err != nil {
			panic(err)
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

// AppendCircuit concatenates other's gates onto c ("stitching" in the
// paper's incremental-compilation flow). The register sizes must match.
func (c *Circuit) AppendCircuit(other *Circuit) *Circuit {
	if other.NQubits != c.NQubits {
		panic(fmt.Sprintf("circuit: stitching %d-qubit circuit onto %d-qubit circuit", other.NQubits, c.NQubits))
	}
	c.Gates = append(c.Gates, other.Gates...)
	return c
}

// Len returns the number of gates (barriers included).
func (c *Circuit) Len() int { return len(c.Gates) }

// GateCount returns the number of non-barrier operations.
func (c *Circuit) GateCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind != Barrier {
			n++
		}
	}
	return n
}

// CountKind returns the number of gates of kind k.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// TwoQubitCount returns the number of two-qubit operations.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Arity() == 2 {
			n++
		}
	}
	return n
}

// Counts returns a histogram of gate kinds.
func (c *Circuit) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range c.Gates {
		m[g.Kind]++
	}
	return m
}

// Depth returns the length of the critical path: gates are scheduled
// as-soon-as-possible and the number of resulting time steps is returned.
// Barriers synchronize all qubits but occupy no time step of their own.
// Measurements count as ordinary one-qubit operations, matching the paper's
// "including the measurement operations" accounting.
func (c *Circuit) Depth() int {
	level := make([]int, c.NQubits)
	depth := 0
	for _, g := range c.Gates {
		switch g.Arity() {
		case 0: // barrier
			max := 0
			for _, l := range level {
				if l > max {
					max = l
				}
			}
			for i := range level {
				level[i] = max
			}
		case 1:
			level[g.Q0]++
			if level[g.Q0] > depth {
				depth = level[g.Q0]
			}
		case 2:
			l := level[g.Q0]
			if level[g.Q1] > l {
				l = level[g.Q1]
			}
			l++
			level[g.Q0], level[g.Q1] = l, l
			if l > depth {
				depth = l
			}
		}
	}
	return depth
}

// Layers groups gate indices into ASAP time steps: layer t holds the gates
// scheduled at depth t+1. Barriers are skipped (they only synchronize).
func (c *Circuit) Layers() [][]int {
	level := make([]int, c.NQubits)
	var layers [][]int
	for i, g := range c.Gates {
		switch g.Arity() {
		case 0:
			max := 0
			for _, l := range level {
				if l > max {
					max = l
				}
			}
			for j := range level {
				level[j] = max
			}
			continue
		case 1:
			level[g.Q0]++
			layers = placeAt(layers, level[g.Q0]-1, i)
		case 2:
			l := level[g.Q0]
			if level[g.Q1] > l {
				l = level[g.Q1]
			}
			l++
			level[g.Q0], level[g.Q1] = l, l
			layers = placeAt(layers, l-1, i)
		}
	}
	return layers
}

func placeAt(layers [][]int, t, gate int) [][]int {
	for len(layers) <= t {
		layers = append(layers, nil)
	}
	layers[t] = append(layers[t], gate)
	return layers
}

// MeasureAll appends a measurement on every qubit.
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NQubits; q++ {
		c.Append(NewMeasure(q))
	}
	return c
}

// String renders the circuit one gate per line in OpenQASM-like syntax.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NQubits)
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteString(";\n")
	}
	return b.String()
}
