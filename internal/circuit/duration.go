package circuit

// Durations assigns an execution time to each gate kind, in arbitrary time
// units (e.g. nanoseconds). Kinds absent from the map execute in zero time
// (virtual gates — IBM's U1/RZ frame changes are free on hardware).
type Durations map[Kind]float64

// IBMDurations models the superconducting-hardware timing regime of the
// paper's devices: one-qubit pulses ≈ 50 ns, CNOTs ≈ 300 ns, measurement
// ≈ 1 µs, and Z rotations free (virtual). Composite gates cost their
// decomposition.
func IBMDurations() Durations {
	return Durations{
		H: 50, X: 50, Y: 50, RX: 50, RY: 50, U2: 50, U3: 50,
		RZ: 0, U1: 0, Z: 0,
		CNOT: 300, CZ: 300,
		CPhase: 600, Swap: 900, // 2 and 3 CNOTs respectively
		Measure: 1000,
	}
}

// ExecutionTime returns the circuit's critical-path duration under the
// model: the ASAP schedule where each gate occupies its own duration on
// every qubit it touches. Unlike Depth — which counts time steps — this
// captures that two-qubit gates and measurements dominate wall-clock time,
// the quantity decoherence actually cares about (§II). Barriers
// synchronize all qubits.
func (c *Circuit) ExecutionTime(d Durations) float64 {
	busyUntil := make([]float64, c.NQubits)
	var total float64
	for _, g := range c.Gates {
		switch g.Arity() {
		case 0: // barrier
			var max float64
			for _, t := range busyUntil {
				if t > max {
					max = t
				}
			}
			for q := range busyUntil {
				busyUntil[q] = max
			}
		default:
			start := 0.0
			for _, q := range g.Qubits() {
				if busyUntil[q] > start {
					start = busyUntil[q]
				}
			}
			end := start + d[g.Kind]
			for _, q := range g.Qubits() {
				busyUntil[q] = end
			}
			if end > total {
				total = end
			}
		}
	}
	return total
}
