package qaoa

import (
	"repro/internal/circuit"
	"repro/internal/sim"
)

// simExpectation runs the circuit on the state-vector simulator and
// evaluates the diagonal observable. Kept in its own file so the qaoa
// package's dependency on the simulator is explicit and minimal.
func simExpectation(c *circuit.Circuit, cost func(uint64) float64) float64 {
	return sim.NewState(c.NQubits).Run(c).ExpectationDiagonal(cost)
}
