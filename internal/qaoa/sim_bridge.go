package qaoa

import (
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/graphs"
	"repro/internal/obsv"
	"repro/internal/sim"
)

// This file holds everything that couples qaoa to the simulator — the
// expectation bridge and the cut-value table feeding its diagonal sweep —
// so the package's dependency on sim stays explicit and minimal.

// CostTableMaxQubits bounds the dense cut-value table: 2^22 float64 is
// 32 MiB, comfortably beyond the ≤ 20-qubit instances of the paper's
// experiments. Larger problems fall back to per-sample edge scans.
const CostTableMaxQubits = 22

// CostTable returns the dense table tbl[x] = cut value of bitstring x for
// every x < 2^n, building and caching it on first use; nil when the graph
// exceeds CostTableMaxQubits. The build is O(1) per entry: with h the
// highest set bit of x, flipping vertex h to side 1 changes the cut by
// deg(h) minus twice the number of h's neighbors already on side 1, all
// read off precomputed neighbor bitmasks.
//
// The table turns both the simulator's diagonal expectation sweep and
// large-sample approximation ratios from O(edges) per bitstring into one
// lookup; Cost consults it transparently once built.
func (p *Problem) CostTable() []float64 {
	if t := p.costTab.Load(); t != nil {
		return *t
	}
	n := p.G.N()
	if n > CostTableMaxQubits {
		return nil
	}
	tbl := buildCutTable(p.G)
	p.costTab.Store(&tbl)
	if col := sim.Collector(); col.Enabled() {
		col.Inc(obsv.CntSimCutTableBuilds)
	}
	return tbl
}

// buildCutTable computes the full cut-value table by the highest-bit DP
// described on CostTable.
func buildCutTable(g *graphs.Graph) []float64 {
	n := g.N()
	nbr := make([]uint64, n)
	for _, e := range g.Edges() {
		nbr[e.U] |= 1 << uint(e.V)
		nbr[e.V] |= 1 << uint(e.U)
	}
	tbl := make([]float64, 1<<uint(n))
	for x := uint64(1); x < uint64(len(tbl)); x++ {
		h := bits.Len64(x) - 1
		rest := x &^ (1 << uint(h))
		delta := bits.OnesCount64(nbr[h]) - 2*bits.OnesCount64(nbr[h]&rest)
		tbl[x] = tbl[rest] + float64(delta)
	}
	return tbl
}

// simExpectation runs the circuit on the state-vector simulator and
// evaluates the MaxCut observable, through the cached cut-value table when
// the instance fits it.
func simExpectation(c *circuit.Circuit, p *Problem) float64 {
	st := sim.NewState(c.NQubits).Run(c)
	if tbl := p.CostTable(); tbl != nil && len(tbl) >= len(st.Amp) {
		return st.ExpectationTable(tbl)
	}
	return st.ExpectationDiagonal(p.Cost)
}
