package qaoa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/graphs"
	"repro/internal/sim"
)

func k4() *graphs.Graph {
	g := graphs.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestNewMaxCut(t *testing.T) {
	p, err := NewMaxCut(k4())
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxCut != 4 {
		t.Errorf("K4 MaxCut = %d, want 4", p.MaxCut)
	}
	if p.NumQubits() != 4 {
		t.Errorf("NumQubits = %d", p.NumQubits())
	}
	if got := p.Cost(0b0101); got != 4 {
		t.Errorf("Cost(0101) = %v, want 4", got)
	}
	if got := p.Cost(0); got != 0 {
		t.Errorf("Cost(0000) = %v, want 0", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Gamma: []float64{1}, Beta: []float64{1}}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{Gamma: []float64{1}, Beta: nil}).Validate(); err == nil {
		t.Error("mismatched params accepted")
	}
	if err := (Params{}).Validate(); err == nil {
		t.Error("empty params accepted")
	}
	if NewParams(3).P() != 3 {
		t.Error("NewParams(3).P() != 3")
	}
}

func TestBuildCircuitStructure(t *testing.T) {
	p, _ := NewMaxCut(k4())
	params := Params{Gamma: []float64{0.4, 0.2}, Beta: []float64{0.1, 0.3}}
	c, err := BuildCircuit(p, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountKind(circuit.H); got != 4 {
		t.Errorf("H count = %d, want 4", got)
	}
	if got := c.CountKind(circuit.CPhase); got != 12 {
		t.Errorf("CPhase count = %d, want 12 (6 edges × 2 levels)", got)
	}
	if got := c.CountKind(circuit.RX); got != 8 {
		t.Errorf("RX count = %d, want 8", got)
	}
	// Gate angles: CPhase carries −γ, RX carries 2β.
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.CPhase:
			if g.Params[0] != -0.4 && g.Params[0] != -0.2 {
				t.Errorf("CPhase angle %v", g.Params[0])
			}
		case circuit.RX:
			if g.Params[0] != 0.2 && g.Params[0] != 0.6 {
				t.Errorf("RX angle %v", g.Params[0])
			}
		}
	}
}

func TestBuildCircuitCustomOrder(t *testing.T) {
	p, _ := NewMaxCut(k4())
	order := []graphs.Edge{{U: 2, V: 3}, {U: 0, V: 1}}
	c, err := BuildCircuit(p, Params{Gamma: []float64{0.5}, Beta: []float64{0.5}}, order)
	if err != nil {
		t.Fatal(err)
	}
	// First CPhase must act on (2,3).
	for _, g := range c.Gates {
		if g.Kind == circuit.CPhase {
			if g.Q0 != 2 || g.Q1 != 3 {
				t.Errorf("first CPhase on (%d,%d), want (2,3)", g.Q0, g.Q1)
			}
			break
		}
	}
	if got := c.CountKind(circuit.CPhase); got != 2 {
		t.Errorf("custom order CPhase count = %d, want 2", got)
	}
}

func TestBuildCircuitRejectsBadParams(t *testing.T) {
	p, _ := NewMaxCut(k4())
	if _, err := BuildCircuit(p, Params{}, nil); err == nil {
		t.Error("empty params accepted")
	}
}

// At γ=0 the QAOA state is uniform: every cut is equally likely and the
// expectation is half the edge count.
func TestZeroGammaUniform(t *testing.T) {
	g := k4()
	p, _ := NewMaxCut(g)
	c, err := BuildCircuit(p, Params{Gamma: []float64{0}, Beta: []float64{0.7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewState(4).Run(c)
	got := s.ExpectationDiagonal(p.Cost)
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("⟨C⟩ at γ=0 = %v, want 3 (= m/2)", got)
	}
}

// The analytic p=1 formula must agree with direct simulation — this pins
// both the formula and the circuit sign conventions.
func TestAnalyticMatchesSimulator(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := graphs.ErdosRenyi(n, 0.5, rng)
		if g.M() == 0 {
			return true
		}
		gamma := (rng.Float64() - 0.5) * 2 * math.Pi
		beta := (rng.Float64() - 0.5) * math.Pi
		prob := &Problem{G: g, MaxCut: 1}
		c, err := BuildCircuit(prob, Params{Gamma: []float64{gamma}, Beta: []float64{beta}}, nil)
		if err != nil {
			return false
		}
		simVal := sim.NewState(n).Run(c).ExpectationDiagonal(prob.Cost)
		anaVal := ExpectationP1Analytic(g, gamma, beta)
		return math.Abs(simVal-anaVal) < 1e-8
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticSingleEdgeClosedForm(t *testing.T) {
	g := graphs.New(2)
	g.MustAddEdge(0, 1)
	for _, tc := range []struct{ gamma, beta float64 }{{0.3, 0.2}, {1.1, -0.4}, {-0.8, 0.9}} {
		want := 0.5 + 0.5*math.Sin(4*tc.beta)*math.Sin(tc.gamma)
		if got := ExpectationP1Analytic(g, tc.gamma, tc.beta); math.Abs(got-want) > 1e-12 {
			t.Errorf("single edge ⟨C⟩(%v,%v) = %v, want %v", tc.gamma, tc.beta, got, want)
		}
	}
}

// The single-edge optimum is ⟨C⟩=1 at γ=π/2, β=π/8.
func TestSingleEdgeOptimum(t *testing.T) {
	g := graphs.New(2)
	g.MustAddEdge(0, 1)
	got := ExpectationP1Analytic(g, math.Pi/2, math.Pi/8)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("single-edge optimum = %v, want 1", got)
	}
}

func TestApproximationRatio(t *testing.T) {
	p, _ := NewMaxCut(k4())
	// Samples: two optimal cuts (value 4) and two zero cuts.
	r, err := ApproximationRatio(p, []uint64{0b0101, 0b1010, 0, 0b1111})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("ratio = %v, want 0.5", r)
	}
	if _, err := ApproximationRatio(p, nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := ApproximationRatio(&Problem{G: k4()}, []uint64{0}); err == nil {
		t.Error("zero optimum accepted")
	}
}

func TestARG(t *testing.T) {
	if got := ARG(0.8, 0.6); math.Abs(got-25) > 1e-12 {
		t.Errorf("ARG(0.8,0.6) = %v, want 25", got)
	}
	if got := ARG(0.8, 0.8); got != 0 {
		t.Errorf("ARG equal ratios = %v", got)
	}
	if got := ARG(0, 0.5); got != 0 {
		t.Errorf("ARG with r0=0 = %v, want 0", got)
	}
	if got := ARG(0.5, 0.6); got >= 0 {
		t.Errorf("ARG should be negative when hardware beats ideal, got %v", got)
	}
}

// Full pipeline sanity: optimized angles on a triangle give a ratio above
// the uniform-sampling baseline of 0.5·m/optimum = 0.75.
func TestQAOAImprovesOverUniform(t *testing.T) {
	g := graphs.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	p, _ := NewMaxCut(g)
	bestVal := math.Inf(-1)
	var bestG, bestB float64
	for i := 0; i < 60; i++ {
		for j := 0; j < 30; j++ {
			gamma := float64(i) / 60 * 2 * math.Pi
			beta := float64(j) / 30 * math.Pi
			if v := ExpectationP1Analytic(g, gamma, beta); v > bestVal {
				bestVal, bestG, bestB = v, gamma, beta
			}
		}
	}
	c, err := BuildCircuit(p, Params{Gamma: []float64{bestG}, Beta: []float64{bestB}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewState(3).Run(c)
	ratio := s.ExpectationDiagonal(p.Cost) / float64(p.MaxCut)
	uniform := 0.5 * 3 / 2 // m/2 over optimum
	if ratio <= uniform+0.05 {
		t.Errorf("optimized ratio %v not above uniform baseline %v", ratio, uniform)
	}
}

func TestExpectationMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graphs.ErdosRenyi(8, 0.4, rng)
	prob := &Problem{G: g, MaxCut: 1}
	params := Params{Gamma: []float64{0.6}, Beta: []float64{0.25}}
	got, err := Expectation(prob, params)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectationP1Analytic(g, 0.6, 0.25)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("Expectation = %v, want %v", got, want)
	}
	if _, err := Expectation(prob, Params{}); err == nil {
		t.Error("empty params accepted")
	}
}

func TestExpectationSampled(t *testing.T) {
	g := graphs.New(2)
	g.MustAddEdge(0, 1)
	prob := &Problem{G: g, MaxCut: 1}
	// Half the samples cut (cost 1), half don't (cost 0).
	samples := []uint64{0b01, 0b10, 0b00, 0b11}
	mean, stderr, err := ExpectationSampled(prob, samples)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 0.5 {
		t.Errorf("mean = %v, want 0.5", mean)
	}
	if math.Abs(stderr-0.25) > 1e-12 {
		t.Errorf("stderr = %v, want 0.25", stderr)
	}
	// Deterministic samples: zero spread.
	_, se2, err := ExpectationSampled(prob, []uint64{1, 1, 1})
	if err != nil || se2 != 0 {
		t.Errorf("constant samples stderr = %v (%v)", se2, err)
	}
	if _, _, err := ExpectationSampled(prob, nil); err == nil {
		t.Error("empty samples accepted")
	}
}
