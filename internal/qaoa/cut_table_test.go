package qaoa

import (
	"math/rand"
	"testing"

	"repro/internal/graphs"
)

func TestCostTableMatchesCutValueBits(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		n := 2 + rng.Intn(9)
		g := graphs.ErdosRenyi(n, 0.4, rng)
		p := &Problem{G: g, MaxCut: 1}
		tbl := p.CostTable()
		if tbl == nil {
			t.Fatalf("trial %d: nil table for n=%d", trial, n)
		}
		if len(tbl) != 1<<uint(n) {
			t.Fatalf("trial %d: table length %d, want %d", trial, len(tbl), 1<<uint(n))
		}
		for x := uint64(0); x < uint64(len(tbl)); x++ {
			if want := float64(graphs.CutValueBits(g, x)); tbl[x] != want {
				t.Fatalf("trial %d: tbl[%#x] = %g, CutValueBits = %g", trial, x, tbl[x], want)
			}
		}
	}
}

func TestCostTableCachedAndUsedByCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphs.ErdosRenyi(8, 0.5, rng)
	p := &Problem{G: g, MaxCut: 1}
	before := make([]float64, 1<<8)
	for x := range before {
		before[x] = p.Cost(uint64(x))
	}
	tbl := p.CostTable()
	if &tbl[0] != &p.CostTable()[0] {
		t.Fatal("CostTable rebuilt on second call")
	}
	for x := range before {
		if got := p.Cost(uint64(x)); got != before[x] {
			t.Fatalf("Cost(%#x) changed from %g to %g after table build", x, before[x], got)
		}
	}
}

func TestCostTableNilAboveCap(t *testing.T) {
	g := graphs.New(CostTableMaxQubits + 1)
	g.MustAddEdge(0, 1)
	p := &Problem{G: g, MaxCut: 1}
	if tbl := p.CostTable(); tbl != nil {
		t.Fatalf("expected nil table for %d qubits, got length %d", CostTableMaxQubits+1, len(tbl))
	}
	// Cost still works through the edge-scan fallback.
	if got := p.Cost(1); got != 1 {
		t.Fatalf("fallback Cost = %g, want 1", got)
	}
}

func TestApproximationRatioTableAndScanAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphs.ErdosRenyi(10, 0.5, rng)
	prob, err := NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	// Large sample set: triggers the table build inside ApproximationRatio.
	samples := make([]uint64, 5000)
	for i := range samples {
		samples[i] = uint64(rng.Intn(1 << 10))
	}
	viaTable, err := ApproximationRatio(prob, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Independent problem value, small batches: stays on the edge scan.
	scan := NewMaxCutBounded(g, prob.MaxCut)
	var sum float64
	for _, x := range samples {
		sum += scan.Cost(x)
	}
	want := sum / float64(len(samples)) / float64(prob.MaxCut)
	if d := viaTable - want; d > 1e-12 || d < -1e-12 {
		t.Fatalf("ApproximationRatio = %g, edge-scan mean ratio = %g", viaTable, want)
	}
}
