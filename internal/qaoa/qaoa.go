// Package qaoa builds Quantum Approximate Optimization Algorithm circuits
// for MaxCut problems and evaluates their quality: cost functions,
// expectation values (simulated and analytic for p=1), approximation ratios
// over sample sets, and the paper's Approximation Ratio Gap (ARG) metric.
package qaoa

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/graphs"
)

// Problem is a MaxCut instance: the problem graph plus its exact optimum
// (needed for approximation ratios).
type Problem struct {
	G      *graphs.Graph
	MaxCut int

	// costTab caches the dense per-bitstring cut-value table (see
	// CostTable). Lazily built; atomic so concurrent evaluations of a
	// shared Problem stay race-free.
	costTab atomic.Pointer[[]float64]
}

// NewMaxCut wraps g as a MaxCut problem, computing the exact optimum by
// exhaustive search (n ≤ 26).
func NewMaxCut(g *graphs.Graph) (*Problem, error) {
	best, _, err := graphs.MaxCutExact(g)
	if err != nil {
		return nil, err
	}
	return &Problem{G: g, MaxCut: best}, nil
}

// NewMaxCutBounded wraps g with a caller-supplied optimum (for instances too
// large for exhaustive search).
func NewMaxCutBounded(g *graphs.Graph, optimum int) *Problem {
	return &Problem{G: g, MaxCut: optimum}
}

// NumQubits returns the number of logical qubits (= graph vertices).
func (p *Problem) NumQubits() int { return p.G.N() }

// Cost returns the cut value of bitstring x (bit v = side of vertex v).
// When the cut-value table has been built (see CostTable) this is a single
// array lookup instead of an O(edges) scan.
func (p *Problem) Cost(x uint64) float64 {
	if t := p.costTab.Load(); t != nil {
		if tbl := *t; x < uint64(len(tbl)) {
			return tbl[x]
		}
	}
	return float64(graphs.CutValueBits(p.G, x))
}

// Params are the 2p QAOA angles: Gamma[l] drives the cost layer of level l
// and Beta[l] the mixer layer.
type Params struct {
	Gamma []float64
	Beta  []float64
}

// NewParams returns zeroed parameters for p levels.
func NewParams(p int) Params {
	return Params{Gamma: make([]float64, p), Beta: make([]float64, p)}
}

// P returns the number of QAOA levels.
func (p Params) P() int { return len(p.Gamma) }

// Validate checks that gamma and beta have equal, positive length.
func (p Params) Validate() error {
	if len(p.Gamma) != len(p.Beta) {
		return fmt.Errorf("qaoa: %d gammas but %d betas", len(p.Gamma), len(p.Beta))
	}
	if len(p.Gamma) == 0 {
		return fmt.Errorf("qaoa: zero-level parameter set")
	}
	return nil
}

// CostLayer returns the commuting CPhase gates implementing the level-l cost
// unitary e^{-iγC} for MaxCut cost C = Σ_e (1−Z_uZ_v)/2, one gate per edge
// in the given order. The gate angle is −γ because our CPhase(θ) is
// exp(-iθ/2 Z⊗Z) and e^{-iγC} = (global phase)·Π_e exp(+iγ/2 Z_uZ_v).
func CostLayer(g *graphs.Graph, gamma float64, order []graphs.Edge) []circuit.Gate {
	if order == nil {
		order = g.Edges()
	}
	gates := make([]circuit.Gate, 0, len(order))
	for _, e := range order {
		gates = append(gates, circuit.NewCPhase(e.U, e.V, -gamma))
	}
	return gates
}

// MixerLayer returns RX(2β) on every qubit — the transverse-field mixer
// e^{-iβ ΣX}.
func MixerLayer(n int, beta float64) []circuit.Gate {
	gates := make([]circuit.Gate, 0, n)
	for q := 0; q < n; q++ {
		gates = append(gates, circuit.NewRX(q, 2*beta))
	}
	return gates
}

// BuildCircuit constructs the full p-level QAOA state-preparation circuit
// (no measurements): H on all qubits, then per level the cost layer (edges
// in the supplied order, or the graph's edge order when order is nil)
// followed by the mixer layer.
func BuildCircuit(p *Problem, params Params, order []graphs.Edge) (*circuit.Circuit, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := p.NumQubits()
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.NewH(q))
	}
	for l := 0; l < params.P(); l++ {
		c.Append(CostLayer(p.G, params.Gamma[l], order)...)
		c.Append(MixerLayer(n, params.Beta[l])...)
	}
	return c, nil
}

// ApproximationRatio returns (mean cut over samples) / optimum — the
// paper's QAOA performance measure. It returns an error for a problem with
// a non-positive recorded optimum or an empty sample set.
func ApproximationRatio(p *Problem, samples []uint64) (float64, error) {
	if p.MaxCut <= 0 {
		return 0, fmt.Errorf("qaoa: problem optimum %d not positive", p.MaxCut)
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("qaoa: empty sample set")
	}
	// A dense cut table costs 2^n O(1) steps once; the per-sample scan costs
	// O(edges) each. Build (and cache on p) when the sample set is large
	// enough to amortize the construction.
	if n := p.G.N(); n <= CostTableMaxQubits && len(samples)*4 >= 1<<uint(n) {
		p.CostTable()
	}
	var sum float64
	for _, x := range samples {
		sum += p.Cost(x)
	}
	return sum / float64(len(samples)) / float64(p.MaxCut), nil
}

// ARG is the Approximation Ratio Gap: the percentage drop from the
// noiseless approximation ratio r0 to the hardware (noisy) ratio rh,
// 100·(r0−rh)/r0. Lower is better.
func ARG(r0, rh float64) float64 {
	if r0 == 0 {
		return 0
	}
	return 100 * (r0 - rh) / r0
}

// ExpectationP1Analytic evaluates the closed-form p=1 MaxCut expectation
// ⟨C⟩(γ,β) (Wang, Hadfield, Jiang & Rieffel, PRA 97, 022304 (2018)):
//
//	⟨C_uv⟩ = 1/2 + 1/4 sin4β sinγ (cos^{du}γ + cos^{dv}γ)
//	        − 1/4 sin²2β cos^{du+dv−2λ}γ (1 − cos^λ 2γ)
//
// where du = deg(u)−1, dv = deg(v)−1 and λ is the number of triangles
// through edge (u,v). The total is the sum over edges. This matches
// simulation of BuildCircuit exactly and lets experiments pick optimal
// angles without a simulator call per candidate.
func ExpectationP1Analytic(g *graphs.Graph, gamma, beta float64) float64 {
	tri := g.Triangles()
	s4b := math.Sin(4 * beta)
	s2b := math.Sin(2 * beta)
	sg := math.Sin(gamma)
	cg := math.Cos(gamma)
	c2g := math.Cos(2 * gamma)
	var total float64
	for i, e := range g.Edges() {
		du := float64(g.Degree(e.U) - 1)
		dv := float64(g.Degree(e.V) - 1)
		lam := float64(tri[i])
		term := 0.5
		term += 0.25 * s4b * sg * (math.Pow(cg, du) + math.Pow(cg, dv))
		term -= 0.25 * s2b * s2b * math.Pow(cg, du+dv-2*lam) * (1 - math.Pow(c2g, lam))
		total += term
	}
	return total
}

// Expectation simulates the logical QAOA circuit exactly and returns ⟨C⟩.
// Limited by the simulator's register cap (≤ 24 qubits).
func Expectation(p *Problem, params Params) (float64, error) {
	c, err := BuildCircuit(p, params, nil)
	if err != nil {
		return 0, err
	}
	return simExpectation(c, p), nil
}

// ExpectationSampled estimates ⟨C⟩ from measurement samples along with the
// standard error of the mean — what a finite-shot hardware run reports.
func ExpectationSampled(p *Problem, samples []uint64) (mean, stderr float64, err error) {
	if len(samples) == 0 {
		return 0, 0, fmt.Errorf("qaoa: empty sample set")
	}
	var sum, sq float64
	for _, x := range samples {
		c := p.Cost(x)
		sum += c
		sq += c * c
	}
	n := float64(len(samples))
	mean = sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr = math.Sqrt(variance / n)
	return mean, stderr, nil
}
