package qaoa

import (
	"math/rand"
	"testing"

	"repro/internal/graphs"
)

// BenchmarkExpectation measures one exact ⟨C⟩ evaluation on a 16-node
// 4-regular instance at p=2 — the inner loop of SimEvaluator-driven
// optimization, dominated by circuit execution plus the diagonal
// cost-expectation sweep.
func BenchmarkExpectation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := graphs.RandomRegular(16, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	prob := &Problem{G: g, MaxCut: 1}
	params := Params{Gamma: []float64{0.4, 0.7}, Beta: []float64{0.3, 0.1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expectation(prob, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApproximationRatio measures cost aggregation over a 40960-shot
// sample set (the Fig. 11(b) shot budget).
func BenchmarkApproximationRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := graphs.RandomRegular(14, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	prob := &Problem{G: g, MaxCut: 10}
	samples := make([]uint64, 40960)
	for i := range samples {
		samples[i] = rng.Uint64() & ((1 << 14) - 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproximationRatio(prob, samples); err != nil {
			b.Fatal(err)
		}
	}
}
