// Package faultinject produces degraded device models and failing compiler
// passes for robustness testing: real backends lose qubits, drop coupling
// edges, and serve stale or missing calibration between daily calibration
// runs, and a production compilation service must survive all of it. Every
// injection is driven by a seeded Spec so failures reproduce exactly in
// tests and incident replays.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/graphs"
)

// Spec describes a reproducible device degradation. The zero value injects
// nothing; Apply with the same Spec always yields the same degraded device.
type Spec struct {
	// Seed drives every random choice below.
	Seed int64
	// DeadQubits kills this many randomly chosen qubits: all their coupling
	// edges are dropped, leaving them isolated (as a bad qubit is on a real
	// backend — present in the register, unusable for entanglement).
	DeadQubits int
	// Qubits lists explicitly dead qubits, in addition to DeadQubits.
	Qubits []int
	// DropEdges severs this many randomly chosen surviving coupling edges.
	DropEdges int
	// DropEdgeFrac severs this fraction (0..1) of surviving coupling edges,
	// on top of DropEdges.
	DropEdgeFrac float64
	// DeleteCalibFrac deletes this fraction (0..1) of the surviving CNOT
	// calibration entries — the "stale calibration" fault, where an edge
	// exists but its error rate is unknown.
	DeleteCalibFrac float64
	// DriftSigma multiplies every surviving CNOT error by exp(N(0,σ)),
	// modelling day-to-day calibration drift (§V of the paper is motivated
	// by exactly this drift). Results are clamped to [1e-5, 0.5].
	DriftSigma float64
}

// Report lists what Apply actually degraded, for logging and assertions.
type Report struct {
	Dead         []int
	DroppedEdges [][2]int
	DeletedCalib [][2]int
	DriftedEdges int
}

// String renders the report compactly.
func (r *Report) String() string {
	return fmt.Sprintf("faultinject: dead=%v dropped=%d calib-deleted=%d calib-drifted=%d",
		r.Dead, len(r.DroppedEdges), len(r.DeletedCalib), r.DriftedEdges)
}

// Apply returns a degraded copy of dev according to the spec, leaving dev
// untouched. The copy keeps the original qubit numbering (dead qubits stay
// in the register, isolated), so layouts and readout extraction remain
// comparable with the healthy device.
func (s Spec) Apply(dev *device.Device) (*device.Device, *Report, error) {
	nq := dev.NQubits()
	if s.DeadQubits < 0 || s.DeadQubits > nq {
		return nil, nil, fmt.Errorf("faultinject: dead qubit count %d out of range for %d qubits", s.DeadQubits, nq)
	}
	if s.DropEdgeFrac < 0 || s.DropEdgeFrac > 1 || s.DeleteCalibFrac < 0 || s.DeleteCalibFrac > 1 {
		return nil, nil, fmt.Errorf("faultinject: fractions must be in [0,1]")
	}
	for _, q := range s.Qubits {
		if q < 0 || q >= nq {
			return nil, nil, fmt.Errorf("faultinject: dead qubit %d out of range for %d qubits", q, nq)
		}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rep := &Report{}

	// Choose dead qubits: explicit ones first, then random extras.
	dead := make(map[int]bool, s.DeadQubits+len(s.Qubits))
	for _, q := range s.Qubits {
		dead[q] = true
	}
	for _, q := range rng.Perm(nq) {
		if len(dead) >= s.DeadQubits+len(s.Qubits) {
			break
		}
		dead[q] = true
	}
	for q := 0; q < nq; q++ {
		if dead[q] {
			rep.Dead = append(rep.Dead, q)
		}
	}

	// Surviving edges after qubit deaths.
	var alive []graphs.Edge
	for _, e := range dev.Coupling.Edges() {
		if dead[e.U] || dead[e.V] {
			rep.DroppedEdges = append(rep.DroppedEdges, [2]int{e.U, e.V})
			continue
		}
		alive = append(alive, e)
	}

	// Random edge drops among the survivors.
	drops := s.DropEdges + int(s.DropEdgeFrac*float64(len(alive)))
	if drops > len(alive) {
		drops = len(alive)
	}
	if drops > 0 {
		order := rng.Perm(len(alive))
		cut := make(map[int]bool, drops)
		for _, i := range order[:drops] {
			cut[i] = true
		}
		kept := alive[:0]
		for i, e := range alive {
			if cut[i] {
				rep.DroppedEdges = append(rep.DroppedEdges, [2]int{e.U, e.V})
				continue
			}
			kept = append(kept, e)
		}
		alive = kept
	}

	g := graphs.New(nq)
	for _, e := range alive {
		if err := g.AddWeightedEdge(e.U, e.V, e.Weight); err != nil {
			return nil, nil, fmt.Errorf("faultinject: rebuilding coupling graph: %w", err)
		}
	}

	out := &device.Device{Name: dev.Name + "/degraded", Coupling: g}
	if cal := dev.Calib; cal != nil {
		out.Calib = degradeCalibration(cal, g, s, rng, rep)
	}
	return out, rep, nil
}

// degradeCalibration copies cal restricted to the surviving edges, then
// deletes and drifts entries per the spec.
func degradeCalibration(cal *device.Calibration, g *graphs.Graph, s Spec, rng *rand.Rand, rep *Report) *device.Calibration {
	out := &device.Calibration{
		SingleQubitError: cal.SingleQubitError,
		ReadoutError:     append([]float64(nil), cal.ReadoutError...),
		T1:               append([]float64(nil), cal.T1...),
		T2:               append([]float64(nil), cal.T2...),
		GateTime:         cal.GateTime,
	}
	if cal.CNOTError == nil {
		return out
	}
	out.CNOTError = make(map[[2]int]float64, len(cal.CNOTError))
	// Deterministic iteration: walk the graph's edge list, not the map.
	var surviving [][2]int
	for _, e := range g.Edges() {
		if v, ok := cal.LookupCNOT(e.U, e.V); ok {
			key := [2]int{e.U, e.V}
			out.CNOTError[key] = v
			surviving = append(surviving, key)
		}
	}
	deletions := int(s.DeleteCalibFrac * float64(len(surviving)))
	if deletions > 0 {
		order := rng.Perm(len(surviving))
		for _, i := range order[:deletions] {
			delete(out.CNOTError, surviving[i])
			rep.DeletedCalib = append(rep.DeletedCalib, surviving[i])
		}
	}
	if s.DriftSigma > 0 {
		for _, key := range surviving {
			v, ok := out.CNOTError[key]
			if !ok {
				continue // deleted above
			}
			v *= math.Exp(s.DriftSigma * rng.NormFloat64())
			if v < 1e-5 {
				v = 1e-5
			}
			if v > 0.5 {
				v = 0.5
			}
			out.CNOTError[key] = v
			rep.DriftedEdges++
		}
	}
	return out
}

// ErrInjected is the sentinel error returned by fault-injecting pass hooks.
var ErrInjected = errors.New("faultinject: injected pass failure")

// PassFaults builds a compile.Hook that deterministically misbehaves:
// every ErrorEvery-th call returns ErrInjected, every PanicEvery-th call
// panics (exercising the compile boundary's recover), and every call adds
// Latency (exercising deadlines). Counters are shared across goroutines, so
// one PassFaults value injects a predictable total failure rate into a
// concurrent sweep.
type PassFaults struct {
	ErrorEvery int
	PanicEvery int
	Latency    time.Duration

	calls atomic.Int64
}

// Hook returns the compile pass hook implementing the configured faults.
func (p *PassFaults) Hook() compile.Hook {
	return func(stage string) error {
		n := p.calls.Add(1)
		if p.Latency > 0 {
			time.Sleep(p.Latency)
		}
		if p.PanicEvery > 0 && n%int64(p.PanicEvery) == 0 {
			panic(fmt.Sprintf("faultinject: injected panic in %s pass (call %d)", stage, n))
		}
		if p.ErrorEvery > 0 && n%int64(p.ErrorEvery) == 0 {
			return fmt.Errorf("%w (stage %s, call %d)", ErrInjected, stage, n)
		}
		return nil
	}
}

// Calls reports how many times the hook has fired.
func (p *PassFaults) Calls() int64 { return p.calls.Load() }
