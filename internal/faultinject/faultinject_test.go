package faultinject

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/device"
	"repro/internal/qaoa"
)

func TestApplyDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, DeadQubits: 2, DropEdges: 3, DeleteCalibFrac: 0.2, DriftSigma: 0.1}
	base := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(1)), 1e-2, 0.5e-2)

	d1, r1, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	d2, r2, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same spec, different reports:\n%v\n%v", r1, r2)
	}
	if !reflect.DeepEqual(d1.Calib.CNOTError, d2.Calib.CNOTError) {
		t.Fatal("same spec, different degraded calibrations")
	}
	if d1.Coupling.M() != d2.Coupling.M() {
		t.Fatalf("edge counts differ: %d vs %d", d1.Coupling.M(), d2.Coupling.M())
	}
}

func TestApplyShape(t *testing.T) {
	base := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(1)), 1e-2, 0.5e-2)
	spec := Spec{Seed: 7, DeadQubits: 2, DeleteCalibFrac: 0.2}
	deg, rep, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if deg.NQubits() != base.NQubits() {
		t.Fatalf("degraded register shrank: %d vs %d", deg.NQubits(), base.NQubits())
	}
	if len(rep.Dead) != 2 {
		t.Fatalf("dead = %v", rep.Dead)
	}
	for _, q := range rep.Dead {
		if deg.Coupling.Degree(q) != 0 {
			t.Fatalf("dead qubit %d still has %d edges", q, deg.Coupling.Degree(q))
		}
	}
	if len(rep.DeletedCalib) == 0 {
		t.Fatal("no calibration entries deleted at frac 0.2")
	}
	if missing := deg.MissingCNOTCalibration(); len(missing) != len(rep.DeletedCalib) {
		t.Fatalf("device reports %d missing entries, report says %d", len(missing), len(rep.DeletedCalib))
	}
	// The base device must be untouched.
	if base.Coupling.M() != device.Tokyo20().Coupling.M() {
		t.Fatal("Apply mutated the base coupling graph")
	}
	if !base.CalibrationComplete() {
		t.Fatal("Apply mutated the base calibration")
	}
}

func TestApplyExplicitQubits(t *testing.T) {
	spec := Spec{Seed: 1, Qubits: []int{3, 8}}
	deg, rep, err := spec.Apply(device.Tokyo20())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Dead, []int{3, 8}) {
		t.Fatalf("dead = %v, want [3 8]", rep.Dead)
	}
	if deg.Coupling.Degree(3) != 0 || deg.Coupling.Degree(8) != 0 {
		t.Fatal("explicit dead qubits still coupled")
	}
}

func TestApplyValidation(t *testing.T) {
	if _, _, err := (Spec{DeadQubits: 99}).Apply(device.Tokyo20()); err == nil {
		t.Fatal("absurd dead count accepted")
	}
	if _, _, err := (Spec{DeleteCalibFrac: 1.5}).Apply(device.Tokyo20()); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, _, err := (Spec{Qubits: []int{-1}}).Apply(device.Tokyo20()); err == nil {
		t.Fatal("negative qubit accepted")
	}
}

func TestDriftStaysInRange(t *testing.T) {
	base := device.Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(1)), 1e-2, 0.5e-2)
	deg, rep, err := Spec{Seed: 5, DriftSigma: 3}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DriftedEdges != base.Coupling.M() {
		t.Fatalf("drifted %d of %d edges", rep.DriftedEdges, base.Coupling.M())
	}
	for k, v := range deg.Calib.CNOTError {
		if v < 1e-5 || v > 0.5 {
			t.Fatalf("drifted error %v on %v escaped the clamp", v, k)
		}
	}
}

func testProblem(t *testing.T) *qaoa.Problem {
	t.Helper()
	g := device.Linear(6).Coupling // a path graph is a fine tiny workload
	prob, err := qaoa.NewMaxCut(g)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

func params() qaoa.Params {
	return qaoa.Params{Gamma: []float64{0.5}, Beta: []float64{0.2}}
}

func TestPassFaultsError(t *testing.T) {
	pf := &PassFaults{ErrorEvery: 1}
	opts := compile.PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Hook = pf.Hook()
	_, err := compile.CompileContext(context.Background(), testProblem(t), params(), device.Tokyo20(), opts)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if pf.Calls() == 0 {
		t.Fatal("hook never fired")
	}
}

func TestPassFaultsPanicRecovered(t *testing.T) {
	pf := &PassFaults{PanicEvery: 1}
	opts := compile.PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Hook = pf.Hook()
	_, err := compile.CompileContext(context.Background(), testProblem(t), params(), device.Tokyo20(), opts)
	var pe *compile.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

func TestPassFaultsLatencyTripsDeadline(t *testing.T) {
	pf := &PassFaults{Latency: 50 * time.Millisecond}
	opts := compile.PresetIC.Options(rand.New(rand.NewSource(1)))
	opts.Hook = pf.Hook()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := compile.CompileContext(ctx, testProblem(t), params(), device.Tokyo20(), opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestPassFaultsEveryNth(t *testing.T) {
	pf := &PassFaults{ErrorEvery: 3}
	hook := pf.Hook()
	var errs int
	for i := 0; i < 9; i++ {
		if hook("map") != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("got %d errors in 9 calls with ErrorEvery=3", errs)
	}
}

// A degraded device must serve distances computed from its own degraded
// topology and calibration, never ones cached on the base device before the
// fault — and injecting the fault must not corrupt the base's caches.
func TestApplyNeverServesStaleDistances(t *testing.T) {
	base := device.Melbourne15()
	baseHop := base.HopDistances()
	baseRel := base.ReliabilityDistances() // primes the base caches

	spec := Spec{Seed: 5, Qubits: []int{0}}
	degraded, _, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	// Every route into the dead qubit is gone on the degraded device.
	hop := degraded.HopDistances()
	for v := 1; v < degraded.NQubits(); v++ {
		if !math.IsInf(hop.Dist(0, v), 1) {
			t.Fatalf("degraded hop distance 0->%d = %v, want +Inf (stale cache?)", v, hop.Dist(0, v))
		}
	}
	rel := degraded.ReliabilityDistances()
	if !math.IsInf(rel.Dist(0, 1), 1) {
		t.Fatalf("degraded reliability distance 0->1 = %v, want +Inf", rel.Dist(0, 1))
	}
	// The base device's cached matrices survive untouched.
	if math.IsInf(base.HopDistances().Dist(0, 1), 1) || base.HopDistances() != baseHop {
		t.Fatal("fault injection disturbed the base device's hop cache")
	}
	if base.ReliabilityDistances() != baseRel {
		t.Fatal("fault injection disturbed the base device's reliability cache")
	}
}
