package device

import (
	"math"
	"testing"

	"repro/internal/obsv"
)

// A device whose calibration is swapped must never serve reliability
// distances computed from the old error rates — VIC routing decisions would
// silently optimize for a machine that no longer exists.
func TestSetCalibrationInvalidatesReliabilityCache(t *testing.T) {
	d := Melbourne15()
	before := d.ReliabilityDistances() // primes the cache

	// Uniform near-perfect CNOTs: every reliability distance collapses
	// toward the hop count.
	cal := &Calibration{
		CNOTError:        make(map[[2]int]float64, d.Coupling.M()),
		SingleQubitError: 1e-4,
	}
	for _, e := range d.Coupling.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		cal.CNOTError[[2]int{u, v}] = 1e-4
	}
	if err := d.SetCalibration(cal); err != nil {
		t.Fatal(err)
	}
	after := d.ReliabilityDistances()
	changed := false
	for u := 0; u < d.NQubits() && !changed; u++ {
		for v := 0; v < d.NQubits(); v++ {
			if math.Abs(before.Dist(u, v)-after.Dist(u, v)) > 1e-12 {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("reliability distances unchanged after SetCalibration: stale cache served")
	}
}

func TestSetCalibrationRejectsInvalid(t *testing.T) {
	d := Melbourne15()
	orig := d.Calib
	d.ReliabilityDistances() // prime the cache

	bad := &Calibration{ReadoutError: []float64{0.1}} // wrong length
	if err := d.SetCalibration(bad); err == nil {
		t.Fatal("invalid calibration accepted")
	}
	if d.Calib != orig {
		t.Fatal("failed SetCalibration replaced the calibration anyway")
	}
}

// Cache hit/build counters let the report prove the caches behave: one
// build then hits, and an invalidation forces a rebuild.
func TestDistanceCacheCounters(t *testing.T) {
	d := Melbourne15()
	c := obsv.New()
	d.Obs = c

	d.HopDistances()
	d.HopDistances()
	d.ReliabilityDistances()
	d.ReliabilityDistances()
	if got := c.Counter("device/hopdist_builds"); got != 1 {
		t.Errorf("hopdist_builds = %d, want 1", got)
	}
	if got := c.Counter("device/hopdist_hits"); got != 1 {
		t.Errorf("hopdist_hits = %d, want 1", got)
	}
	if got := c.Counter("device/reldist_builds"); got != 1 {
		t.Errorf("reldist_builds = %d, want 1", got)
	}
	if got := c.Counter("device/reldist_hits"); got != 1 {
		t.Errorf("reldist_hits = %d, want 1", got)
	}

	d.InvalidateCaches()
	d.HopDistances()
	d.ReliabilityDistances()
	if got := c.Counter("device/cache_invalidations"); got != 1 {
		t.Errorf("cache_invalidations = %d, want 1", got)
	}
	if got := c.Counter("device/hopdist_builds"); got != 2 {
		t.Errorf("hopdist_builds after invalidation = %d, want 2", got)
	}
	if got := c.Counter("device/reldist_builds"); got != 2 {
		t.Errorf("reldist_builds after invalidation = %d, want 2", got)
	}
}
