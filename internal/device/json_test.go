package device

import (
	"encoding/json"
	"testing"
)

func TestDeviceJSONRoundTrip(t *testing.T) {
	orig := Melbourne15()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.NQubits() != orig.NQubits() || back.Coupling.M() != orig.Coupling.M() {
		t.Fatalf("shape mismatch: %s %d/%d", back.Name, back.NQubits(), back.Coupling.M())
	}
	for _, e := range orig.Coupling.Edges() {
		if !back.Connected(e.U, e.V) {
			t.Fatalf("edge (%d,%d) lost", e.U, e.V)
		}
		if back.CNOTError(e.U, e.V) != orig.CNOTError(e.U, e.V) {
			t.Fatalf("error rate lost on (%d,%d)", e.U, e.V)
		}
	}
	if back.Calib.GateTime != orig.Calib.GateTime {
		t.Error("gate time lost")
	}
	if len(back.Calib.T1) != 15 || len(back.Calib.ReadoutError) != 15 {
		t.Error("per-qubit arrays lost")
	}
}

func TestDeviceJSONNoCalibration(t *testing.T) {
	orig := Tokyo20()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Calib != nil {
		t.Error("phantom calibration after round trip")
	}
	if back.Coupling.M() != orig.Coupling.M() {
		t.Error("edges lost")
	}
}

func TestDeviceJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", "{"},
		{"zero qubits", `{"name":"x","qubits":0,"edges":[]}`},
		{"bad edge", `{"name":"x","qubits":2,"edges":[[0,2]]}`},
		{"self loop", `{"name":"x","qubits":2,"edges":[[1,1]]}`},
		{"calibrated non-edge", `{"name":"x","qubits":3,"edges":[[0,1]],"calibration":{"cnot_error":[{"u":1,"v":2,"error":0.1}]}}`},
		{"bad readout length", `{"name":"x","qubits":3,"edges":[[0,1]],"calibration":{"readout_error":[0.1]}}`},
		{"cnot error ≥ 1", `{"name":"x","qubits":2,"edges":[[0,1]],"calibration":{"cnot_error":[{"u":0,"v":1,"error":1.0}]}}`},
		{"negative cnot error", `{"name":"x","qubits":2,"edges":[[0,1]],"calibration":{"cnot_error":[{"u":0,"v":1,"error":-0.1}]}}`},
		{"readout error ≥ 1", `{"name":"x","qubits":2,"edges":[[0,1]],"calibration":{"readout_error":[0.1,1.2]}}`},
		{"negative t1", `{"name":"x","qubits":2,"edges":[[0,1]],"calibration":{"t1":[-5,10]}}`},
	}
	for _, tc := range cases {
		if _, err := FromJSON([]byte(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// A loaded device must be fully usable: distances, reliability, compile.
func TestDeviceJSONUsable(t *testing.T) {
	src := `{
		"name": "custom-t",
		"qubits": 4,
		"edges": [[0,1],[1,2],[1,3]],
		"calibration": {
			"cnot_error": [{"u":0,"v":1,"error":0.01},{"u":1,"v":2,"error":0.05},{"u":1,"v":3,"error":0.02}],
			"single_qubit_error": 0.001
		}
	}`
	d, err := FromJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.HopDistances().Dist(0, 2) != 2 {
		t.Error("distances wrong on loaded device")
	}
	if d.CNOTError(2, 1) != 0.05 {
		t.Error("calibration lookup wrong")
	}
	rel := d.ReliabilityDistances()
	if rel.Dist(0, 1) >= rel.Dist(1, 3)*2 {
		t.Error("reliability weights not applied")
	}
}
