package device

import (
	"encoding/json"
	"fmt"

	"repro/internal/graphs"
)

// deviceJSON is the on-disk form of a Device, so users can target custom
// hardware (their own coupling map + calibration snapshot) from the CLI.
type deviceJSON struct {
	Name        string     `json:"name"`
	Qubits      int        `json:"qubits"`
	Edges       [][2]int   `json:"edges"`
	Calibration *calibJSON `json:"calibration,omitempty"`
}

type calibJSON struct {
	CNOTError        []edgeError `json:"cnot_error,omitempty"`
	SingleQubitError float64     `json:"single_qubit_error,omitempty"`
	ReadoutError     []float64   `json:"readout_error,omitempty"`
	T1               []float64   `json:"t1,omitempty"`
	T2               []float64   `json:"t2,omitempty"`
	GateTime         float64     `json:"gate_time,omitempty"`
}

type edgeError struct {
	U int     `json:"u"`
	V int     `json:"v"`
	E float64 `json:"error"`
}

// MarshalJSON serializes the device (coupling map + calibration).
func (d *Device) MarshalJSON() ([]byte, error) {
	dj := deviceJSON{Name: d.Name, Qubits: d.NQubits()}
	for _, e := range d.Coupling.Edges() {
		dj.Edges = append(dj.Edges, [2]int{e.U, e.V})
	}
	if d.Calib != nil {
		cj := &calibJSON{
			SingleQubitError: d.Calib.SingleQubitError,
			ReadoutError:     d.Calib.ReadoutError,
			T1:               d.Calib.T1,
			T2:               d.Calib.T2,
			GateTime:         d.Calib.GateTime,
		}
		for _, e := range d.Coupling.Edges() {
			if err, ok := d.Calib.CNOTError[[2]int{e.U, e.V}]; ok {
				cj.CNOTError = append(cj.CNOTError, edgeError{U: e.U, V: e.V, E: err})
			}
		}
		dj.Calibration = cj
	}
	return json.MarshalIndent(dj, "", "  ")
}

// UnmarshalJSON deserializes a device, validating the coupling map.
func (d *Device) UnmarshalJSON(data []byte) error {
	var dj deviceJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return fmt.Errorf("device: %w", err)
	}
	if dj.Qubits <= 0 {
		return fmt.Errorf("device: non-positive qubit count %d", dj.Qubits)
	}
	g := graphs.New(dj.Qubits)
	for _, e := range dj.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	d.Name = dj.Name
	d.Coupling = g
	d.Calib = nil
	if cj := dj.Calibration; cj != nil {
		cal := &Calibration{
			SingleQubitError: cj.SingleQubitError,
			ReadoutError:     cj.ReadoutError,
			T1:               cj.T1,
			T2:               cj.T2,
			GateTime:         cj.GateTime,
		}
		if len(cj.CNOTError) > 0 {
			cal.CNOTError = make(map[[2]int]float64, len(cj.CNOTError))
			for _, ee := range cj.CNOTError {
				u, v := ee.U, ee.V
				if u > v {
					u, v = v, u
				}
				if !g.HasEdge(u, v) {
					return fmt.Errorf("device: calibration for non-edge (%d,%d)", ee.U, ee.V)
				}
				cal.CNOTError[[2]int{u, v}] = ee.E
			}
		}
		if err := cal.Validate(dj.Qubits, g); err != nil {
			return fmt.Errorf("device %s: %w", dj.Name, err)
		}
		d.Calib = cal
	}
	d.InvalidateCaches()
	return nil
}

// FromJSON parses a device description.
func FromJSON(data []byte) (*Device, error) {
	d := &Device{}
	if err := d.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return d, nil
}
