package device

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graphs"
)

func TestCNOTErrorCheckedOffEdge(t *testing.T) {
	d := Tokyo20()
	_, err := d.CNOTErrorChecked(0, 19)
	var nce *NotCoupledError
	if !errors.As(err, &nce) {
		t.Fatalf("want *NotCoupledError, got %v", err)
	}
	if nce.Device != d.Name || nce.A != 0 || nce.B != 19 {
		t.Fatalf("error fields = %+v", nce)
	}
	if e, err := d.CNOTErrorChecked(0, 1); err != nil || e != 0 {
		t.Fatalf("on-edge uncalibrated: e=%v err=%v", e, err)
	}
}

func TestCNOTErrorPanicsWithTypedValue(t *testing.T) {
	d := Tokyo20()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		err, ok := r.(error)
		var nce *NotCoupledError
		if !ok || !errors.As(err, &nce) {
			t.Fatalf("panic value %T, want *NotCoupledError", r)
		}
	}()
	d.CNOTError(0, 19)
}

func TestUsableQubitsConnected(t *testing.T) {
	d := Melbourne15()
	usable := d.UsableQubits()
	if len(usable) != d.NQubits() {
		t.Fatalf("healthy device: %d usable of %d", len(usable), d.NQubits())
	}
	for i, q := range usable {
		if q != i {
			t.Fatalf("usable[%d] = %d", i, q)
		}
	}
}

func TestUsableQubitsDisconnected(t *testing.T) {
	// Chain 0-1-2 plus chain 3-4: the larger component wins.
	g := graphs.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	d := &Device{Name: "split", Coupling: g}
	usable := d.UsableQubits()
	if len(usable) != 3 || usable[0] != 0 || usable[2] != 2 {
		t.Fatalf("usable = %v, want [0 1 2]", usable)
	}
}

func TestMissingCNOTCalibration(t *testing.T) {
	d := Tokyo20()
	if got := d.MissingCNOTCalibration(); got != nil {
		t.Fatalf("uncalibrated device should report no missing edges, got %v", got)
	}
	d.Calib = &Calibration{CNOTError: map[[2]int]float64{{0, 1}: 0.01}}
	missing := d.MissingCNOTCalibration()
	if len(missing) != d.Coupling.M()-1 {
		t.Fatalf("got %d missing, want %d", len(missing), d.Coupling.M()-1)
	}
	if d.CalibrationComplete() {
		t.Fatal("CalibrationComplete with missing entries")
	}
}

func TestReliabilityDistancesPessimisticOnMissingEntry(t *testing.T) {
	// Path 0-1-2 with one calibrated (bad) edge: the uncalibrated edge must
	// be charged the worst recorded error, not treated as perfect.
	g := graphs.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	d := &Device{Name: "path", Coupling: g, Calib: &Calibration{
		CNOTError: map[[2]int]float64{{0, 1}: 0.2},
	}}
	dist := d.ReliabilityDistances()
	wantEdge := 1 / (0.8 * 0.8)
	if got := dist.D[1][2]; math.Abs(got-wantEdge) > 1e-12 {
		t.Fatalf("missing-entry edge weight = %v, want worst-case %v", got, wantEdge)
	}
	if got := dist.D[0][2]; math.Abs(got-2*wantEdge) > 1e-12 {
		t.Fatalf("path weight = %v, want %v", got, 2*wantEdge)
	}
}

func TestCalibrationValidate(t *testing.T) {
	g := graphs.New(2)
	g.MustAddEdge(0, 1)
	cases := []struct {
		name string
		cal  *Calibration
		ok   bool
	}{
		{"nil", nil, true},
		{"good", &Calibration{CNOTError: map[[2]int]float64{{0, 1}: 0.02}, ReadoutError: []float64{0.1, 0.1}}, true},
		{"cnot ge 1", &Calibration{CNOTError: map[[2]int]float64{{0, 1}: 1.0}}, false},
		{"cnot negative", &Calibration{CNOTError: map[[2]int]float64{{0, 1}: -0.1}}, false},
		{"cnot NaN", &Calibration{CNOTError: map[[2]int]float64{{0, 1}: math.NaN()}}, false},
		{"cnot non-edge", &Calibration{CNOTError: map[[2]int]float64{{0, 2}: 0.01}}, false},
		{"readout wrong len", &Calibration{ReadoutError: []float64{0.1}}, false},
		{"readout out of range", &Calibration{ReadoutError: []float64{0.1, 1.5}}, false},
		{"single-qubit bad", &Calibration{SingleQubitError: -1}, false},
		{"t1 wrong len", &Calibration{T1: []float64{1}}, false},
		{"t1 negative", &Calibration{T1: []float64{-1, 2}}, false},
		{"gate time negative", &Calibration{GateTime: -3}, false},
	}
	for _, tc := range cases {
		err := tc.cal.Validate(2, g)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}
