// Package device models the target quantum hardware: coupling graphs,
// native gate sets, and calibration data (per-edge CNOT error rates,
// one-qubit and readout errors). It provides the profiling primitives the
// paper's passes consume — connectivity strength, hop distances, and
// reliability-weighted distances — plus the standard devices used in the
// evaluation: ibmq_20_tokyo, ibmq_16_melbourne (with the Fig. 10(a)
// calibration snapshot), and hypothetical grid/linear/ring architectures.
package device

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/circuit"
	"repro/internal/graphs"
	"repro/internal/obsv"
)

// NotCoupledError reports a calibration or gate query for a qubit pair that
// shares no coupling edge. Device.CNOTError panics with a *NotCoupledError
// value so recover-at-the-boundary code (compile, router) can convert it
// into a plain error without losing the diagnosis.
type NotCoupledError struct {
	Device string
	A, B   int
}

func (e *NotCoupledError) Error() string {
	return fmt.Sprintf("device %s: (%d,%d) is not a coupling edge", e.Device, e.A, e.B)
}

// Calibration holds device error data. Error rates are probabilities in
// [0,1); success = 1 − error.
type Calibration struct {
	// CNOTError maps a canonical coupling edge {u<v} to the CNOT error rate
	// on that edge.
	CNOTError map[[2]int]float64
	// SingleQubitError is the error rate charged per one-qubit native gate.
	SingleQubitError float64
	// ReadoutError is the per-qubit measurement error rate (len NQubits; nil
	// means ideal readout).
	ReadoutError []float64
	// T1 and T2 are per-qubit relaxation and dephasing times and GateTime
	// the duration of one circuit time step, all in the same (arbitrary)
	// unit. nil/zero disables decoherence modelling.
	T1, T2   []float64
	GateTime float64
}

// LookupCNOT returns the calibrated error for canonicalized edge (a,b) and
// whether an entry exists. A degraded device may have entries deleted; the
// second return distinguishes "measured as 0" from "never measured".
func (c *Calibration) LookupCNOT(a, b int) (float64, bool) {
	if c == nil || c.CNOTError == nil {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	e, ok := c.CNOTError[[2]int{a, b}]
	return e, ok
}

// WorstCNOTError returns the largest recorded CNOT error rate (0 when no
// entries exist). Used as the pessimistic stand-in for edges whose
// calibration entry is missing or stale.
func (c *Calibration) WorstCNOTError() float64 {
	worst := 0.0
	if c != nil {
		for _, e := range c.CNOTError {
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Validate checks the calibration against a device shape: error rates must
// be probabilities in [0,1), per-qubit arrays must have nq entries, T1/T2
// must be non-negative, and every CNOT entry must sit on a coupling edge of
// g (when g is non-nil). It returns a descriptive error for the first
// violation found.
func (c *Calibration) Validate(nq int, g *graphs.Graph) error {
	if c == nil {
		return nil
	}
	badRate := func(e float64) bool { return e < 0 || e >= 1 || math.IsNaN(e) }
	if badRate(c.SingleQubitError) {
		return fmt.Errorf("calibration: single-qubit error %v outside [0,1)", c.SingleQubitError)
	}
	for edge, e := range c.CNOTError {
		if badRate(e) {
			return fmt.Errorf("calibration: CNOT error %v on edge (%d,%d) outside [0,1)", e, edge[0], edge[1])
		}
		if g != nil && !g.HasEdge(edge[0], edge[1]) {
			return fmt.Errorf("calibration: entry for non-edge (%d,%d)", edge[0], edge[1])
		}
	}
	for name, arr := range map[string][]float64{"readout_error": c.ReadoutError, "t1": c.T1, "t2": c.T2} {
		if arr != nil && len(arr) != nq {
			return fmt.Errorf("calibration: %s has %d entries, want %d", name, len(arr), nq)
		}
	}
	for q, e := range c.ReadoutError {
		if badRate(e) {
			return fmt.Errorf("calibration: readout error %v on qubit %d outside [0,1)", e, q)
		}
	}
	for q, t := range c.T1 {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("calibration: negative T1 %v on qubit %d", t, q)
		}
	}
	for q, t := range c.T2 {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("calibration: negative T2 %v on qubit %d", t, q)
		}
	}
	if c.GateTime < 0 || math.IsNaN(c.GateTime) {
		return fmt.Errorf("calibration: negative gate time %v", c.GateTime)
	}
	return nil
}

// Device is a hardware target: a coupling graph plus calibration.
type Device struct {
	Name     string
	Coupling *graphs.Graph
	Calib    *Calibration
	// Obs, when non-nil, receives distance-matrix cache counters
	// (device/hopdist_hits, device/hopdist_builds, device/reldist_hits,
	// device/reldist_builds, device/cache_invalidations). Set it before the
	// device is shared across goroutines.
	Obs *obsv.Collector

	mu       sync.Mutex // guards the lazily computed caches
	hopDist  *graphs.DistanceMatrix
	relDist  *graphs.DistanceMatrix
	strength map[int][]int // StrengthProfile cache by radius
}

// NQubits returns the number of physical qubits.
func (d *Device) NQubits() int { return d.Coupling.N() }

// Connected reports whether physical qubits a and b share a coupling edge.
func (d *Device) Connected(a, b int) bool { return d.Coupling.HasEdge(a, b) }

// CNOTError returns the calibrated CNOT error rate for edge (a,b), or 0 when
// no calibration is attached. It panics with a *NotCoupledError if (a,b) is
// not a coupling edge; CNOTErrorChecked is the non-panicking form.
func (d *Device) CNOTError(a, b int) float64 {
	e, err := d.CNOTErrorChecked(a, b)
	if err != nil {
		panic(err)
	}
	return e
}

// CNOTErrorChecked is CNOTError returning a typed error instead of
// panicking when (a,b) is not a coupling edge.
func (d *Device) CNOTErrorChecked(a, b int) (float64, error) {
	if !d.Connected(a, b) {
		return 0, &NotCoupledError{Device: d.Name, A: a, B: b}
	}
	e, _ := d.Calib.LookupCNOT(a, b)
	return e, nil
}

// CPhaseSuccess returns the success rate of a CPhase (ZZ) operation on edge
// (a,b): the CPhase decomposes into two CNOTs, so success = (1−e)².
func (d *Device) CPhaseSuccess(a, b int) float64 {
	e := d.CNOTError(a, b)
	return (1 - e) * (1 - e)
}

// ConnectivityStrength returns the paper's connectivity-strength metric of
// physical qubit q: the number of distinct qubits within the given hop
// radius (radius 2 — first plus second neighbours — is the paper's choice
// for the device sizes studied).
func (d *Device) ConnectivityStrength(q, radius int) int {
	return graphs.NeighborhoodSize(d.Coupling, q, radius)
}

// StrengthProfile returns (and caches) the connectivity strength of every
// qubit at the given radius. This is the "hardware profiling" table of
// Fig. 3(b), computed once per device: the per-qubit BFS is repeated only
// after InvalidateCaches. The returned slice is shared — treat it as
// read-only, like the matrices of HopDistances. Safe for concurrent use.
func (d *Device) StrengthProfile(radius int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.strength[radius]; ok {
		return p
	}
	p := make([]int, d.NQubits())
	for q := range p {
		p[q] = d.ConnectivityStrength(q, radius)
	}
	if d.strength == nil {
		d.strength = make(map[int][]int)
	}
	d.strength[radius] = p
	return p
}

// UsableQubits returns the physical qubits eligible for logical placement:
// every qubit when the coupling graph is connected, otherwise the largest
// connected component (sorted ascending). Dead qubits and severed regions of
// a degraded device are excluded, so compilation can proceed on the healthy
// part of the machine.
func (d *Device) UsableQubits() []int {
	if d.Coupling.IsConnected() {
		all := make([]int, d.NQubits())
		for q := range all {
			all[q] = q
		}
		return all
	}
	return d.Coupling.LargestComponent()
}

// MissingCNOTCalibration lists the coupling edges without a CNOTError entry.
// Nil calibration (or a nil CNOTError map) counts every edge as missing only
// when some entries exist — an entirely uncalibrated device is a deliberate
// ideal model, not a fault, and reports no missing edges.
func (d *Device) MissingCNOTCalibration() [][2]int {
	if d.Calib == nil || len(d.Calib.CNOTError) == 0 {
		return nil
	}
	var missing [][2]int
	for _, e := range d.Coupling.Edges() {
		if _, ok := d.Calib.LookupCNOT(e.U, e.V); !ok {
			missing = append(missing, [2]int{e.U, e.V})
		}
	}
	return missing
}

// CalibrationComplete reports whether every coupling edge has a CNOT
// calibration entry (vacuously true for uncalibrated devices).
func (d *Device) CalibrationComplete() bool { return len(d.MissingCNOTCalibration()) == 0 }

// HopDistances returns (and caches) the unweighted all-pairs shortest-path
// matrix of the coupling graph. Safe for concurrent use.
func (d *Device) HopDistances() *graphs.DistanceMatrix {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hopDist == nil {
		d.Obs.Inc(obsv.CntDeviceHopDistBuilds)
		d.hopDist = graphs.FloydWarshall(d.Coupling, false)
	} else {
		d.Obs.Inc(obsv.CntDeviceHopDistHits)
	}
	return d.hopDist
}

// ReliabilityDistances returns (and caches) the all-pairs shortest-path
// matrix over the coupling graph with each edge weighted by the inverse of
// its CPhase success rate (1/R, Fig. 6(d)). Higher success ⇒ shorter
// distance, so the variation-aware pass prefers reliable links. Without
// calibration every edge weighs 1 and this degenerates to HopDistances.
//
// Edges whose calibration entry is missing (deleted or stale on a degraded
// device) are charged the worst recorded CNOT error: an unmeasured link
// cannot be assumed reliable, so the variation-aware pass deprioritizes it
// without disconnecting the routing graph.
func (d *Device) ReliabilityDistances() *graphs.DistanceMatrix {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.relDist != nil {
		d.Obs.Inc(obsv.CntDeviceRelDistHits)
		return d.relDist
	}
	d.Obs.Inc(obsv.CntDeviceRelDistBuilds)
	worst := d.Calib.WorstCNOTError()
	w := d.Coupling.Clone()
	for _, e := range w.Edges() {
		cnotErr, ok := d.Calib.LookupCNOT(e.U, e.V)
		if !ok {
			cnotErr = worst
		}
		r := (1 - cnotErr) * (1 - cnotErr)
		weight := math.Inf(1)
		if r > 0 {
			weight = 1 / r
		}
		if err := w.SetEdgeWeight(e.U, e.V, weight); err != nil {
			panic(err)
		}
	}
	d.relDist = graphs.FloydWarshall(w, true)
	return d.relDist
}

// InvalidateCaches clears the lazily computed distance matrices; call after
// mutating Coupling or Calib. Every in-place mutation path must end here —
// SetCalibration does it for calibration reloads, faultinject builds fresh
// devices (whose caches start empty), and WithRandomCalibration calls it
// directly — otherwise routing would keep scoring SWAPs against the
// pre-mutation reliability distances.
func (d *Device) InvalidateCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Obs.Inc(obsv.CntDeviceInvalidations)
	d.hopDist, d.relDist, d.strength = nil, nil, nil
}

// SetCalibration validates cal against the device shape, attaches it, and
// invalidates the distance caches — the safe calibration-reload path. Use
// this instead of assigning Calib directly: a direct assignment after
// ReliabilityDistances has been called leaves the cached reliability
// distances describing the old calibration.
func (d *Device) SetCalibration(cal *Calibration) error {
	if err := cal.Validate(d.NQubits(), d.Coupling); err != nil {
		return fmt.Errorf("device %s: %w", d.Name, err)
	}
	d.Calib = cal
	d.InvalidateCaches()
	return nil
}

// SuccessProbability estimates the probability that the circuit executes
// without any gate error: the product of per-gate success rates
// (Tannu & Qureshi, ASPLOS'19). Two-qubit gates are charged their native
// CNOT cost on their edge; one-qubit gates are charged SingleQubitError;
// measurements are charged their readout error. Gates on non-coupled pairs
// panic — the circuit must already be hardware-compliant.
func (d *Device) SuccessProbability(c *circuit.Circuit) float64 {
	p := 1.0
	var e1 float64
	if d.Calib != nil {
		e1 = d.Calib.SingleQubitError
	}
	for _, g := range c.Gates {
		switch {
		case g.Kind == circuit.Barrier:
		case g.Kind == circuit.Measure:
			if d.Calib != nil && d.Calib.ReadoutError != nil {
				p *= 1 - d.Calib.ReadoutError[g.Q0]
			}
		case g.Arity() == 2:
			se := 1 - d.CNOTError(g.Q0, g.Q1)
			for i := 0; i < circuit.NativeCNOTCost(g.Kind); i++ {
				p *= se
			}
		default:
			p *= 1 - e1
		}
	}
	return p
}

// DecoherenceFactor estimates the probability that no qubit decoheres
// while the circuit executes: the circuit runs for depth·GateTime, and each
// qubit survives with probability exp(−t/T1)·exp(−t/T2). This is the
// depth-driven error mechanism of §II — deeper circuits decohere more —
// complementing the gate-count-driven SuccessProbability.
func (d *Device) DecoherenceFactor(c *circuit.Circuit) float64 {
	cal := d.Calib
	if cal == nil || cal.GateTime <= 0 || (cal.T1 == nil && cal.T2 == nil) {
		return 1
	}
	t := float64(c.Depth()) * cal.GateTime
	factor := 1.0
	for q := 0; q < d.NQubits(); q++ {
		if cal.T1 != nil && cal.T1[q] > 0 {
			factor *= math.Exp(-t / cal.T1[q])
		}
		if cal.T2 != nil && cal.T2[q] > 0 {
			factor *= math.Exp(-t / cal.T2[q])
		}
	}
	return factor
}

// EstimateFidelity combines gate-error success probability with the
// decoherence factor — the overall likelihood the circuit runs cleanly.
func (d *Device) EstimateFidelity(c *circuit.Circuit) float64 {
	return d.SuccessProbability(c) * d.DecoherenceFactor(c)
}

// VerifyCompliant checks that every two-qubit gate in c acts on a coupling
// edge of d and that the register fits the device.
func (d *Device) VerifyCompliant(c *circuit.Circuit) error {
	if c.NQubits > d.NQubits() {
		return fmt.Errorf("device %s: circuit uses %d qubits, device has %d", d.Name, c.NQubits, d.NQubits())
	}
	for i, g := range c.Gates {
		if g.Arity() == 2 && !d.Connected(g.Q0, g.Q1) {
			return fmt.Errorf("device %s: gate %d (%s) not on a coupling edge", d.Name, i, g)
		}
	}
	return nil
}

// WithRandomCalibration attaches a synthetic calibration where each CNOT
// edge error is drawn from a normal distribution N(mu, sigma) truncated to
// [floor, 0.5] — the μ=1e-2, σ=0.5e-2 model of Fig. 11 — and returns d.
func (d *Device) WithRandomCalibration(rng *rand.Rand, mu, sigma float64) *Device {
	const floor = 1e-4
	cal := &Calibration{
		CNOTError:        make(map[[2]int]float64, d.Coupling.M()),
		SingleQubitError: mu / 10,
		ReadoutError:     make([]float64, d.NQubits()),
	}
	for _, e := range d.Coupling.Edges() {
		v := mu + sigma*rng.NormFloat64()
		if v < floor {
			v = floor
		}
		if v > 0.5 {
			v = 0.5
		}
		cal.CNOTError[[2]int{e.U, e.V}] = v
	}
	for q := range cal.ReadoutError {
		v := 2*mu + 2*sigma*rng.NormFloat64()
		if v < floor {
			v = floor
		}
		if v > 0.5 {
			v = 0.5
		}
		cal.ReadoutError[q] = v
	}
	d.Calib = cal
	d.InvalidateCaches()
	return d
}
