package device

import "repro/internal/graphs"

// tokyoEdges is the coupling map of the 20-qubit ibmq_20_tokyo device
// (Fig. 3(a)): a 4×5 lattice with diagonal couplers inside alternate
// plaquettes.
var tokyoEdges = [][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 4},
	{0, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 7}, {3, 8}, {3, 9}, {4, 8}, {4, 9},
	{5, 6}, {6, 7}, {7, 8}, {8, 9},
	{5, 10}, {5, 11}, {6, 10}, {6, 11}, {7, 12}, {7, 13}, {8, 12}, {8, 13}, {9, 14},
	{10, 11}, {11, 12}, {12, 13}, {13, 14},
	{10, 15}, {11, 16}, {11, 17}, {12, 16}, {12, 17}, {13, 18}, {13, 19}, {14, 18}, {14, 19},
	{15, 16}, {16, 17}, {17, 18}, {18, 19},
}

// melbourneEdges is the coupling map of the 15-qubit ibmq_16_melbourne
// device (Fig. 10(a)): two rows of qubits with ladder rungs.
var melbourneEdges = [][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
	{6, 8}, {7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}, {13, 14},
	{0, 14}, {1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9},
}

// melbourneCNOTErrors is the single-day calibration snapshot reported in
// Fig. 10(a) (CNOT error rates on 4/8/2020), assigned to melbourneEdges in
// order.
var melbourneCNOTErrors = []float64{
	1.87e-2, 1.77e-2, 2.85e-2, 7.63e-2, 8.29e-2, 1.54e-2,
	8.60e-2, 2.26e-2, 5.03e-2, 4.16e-2, 7.63e-2, 5.80e-2, 2.96e-2, 3.68e-2,
	4.11e-2, 4.70e-2, 7.78e-2, 3.46e-2, 3.89e-2, 2.87e-2,
}

func fromEdges(name string, n int, edges [][2]int) *Device {
	g := graphs.New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return &Device{Name: name, Coupling: g}
}

// Tokyo20 returns the 20-qubit ibmq_20_tokyo topology (no calibration).
func Tokyo20() *Device { return fromEdges("ibmq_20_tokyo", 20, tokyoEdges) }

// Melbourne15 returns the 15-qubit ibmq_16_melbourne topology with the
// Fig. 10(a) CNOT calibration snapshot attached.
func Melbourne15() *Device {
	d := fromEdges("ibmq_16_melbourne", 15, melbourneEdges)
	cal := &Calibration{
		CNOTError:        make(map[[2]int]float64, len(melbourneEdges)),
		SingleQubitError: 1e-3,
		ReadoutError:     make([]float64, 15),
	}
	for i, e := range melbourneEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		cal.CNOTError[[2]int{u, v}] = melbourneCNOTErrors[i]
	}
	for q := range cal.ReadoutError {
		cal.ReadoutError[q] = 3e-2
	}
	// Representative coherence figures for the device generation (µs) and a
	// two-qubit-gate-scale time step.
	cal.T1 = make([]float64, 15)
	cal.T2 = make([]float64, 15)
	for q := range cal.T1 {
		cal.T1[q] = 50
		cal.T2[q] = 60
	}
	cal.GateTime = 0.3
	d.Calib = cal
	return d
}

// Grid returns an r×c nearest-neighbour grid device (the paper's
// hypothetical 36-qubit machine is Grid(6,6)).
func Grid(r, c int) *Device {
	g := graphs.New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			q := i*c + j
			if j+1 < c {
				g.MustAddEdge(q, q+1)
			}
			if i+1 < r {
				g.MustAddEdge(q, q+c)
			}
		}
	}
	return &Device{Name: "grid", Coupling: g}
}

// Linear returns an n-qubit chain.
func Linear(n int) *Device {
	g := graphs.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return &Device{Name: "linear", Coupling: g}
}

// Ring returns an n-qubit cycle (the 8-qubit cyclic architecture of the
// §VI comparison against temporal planners).
func Ring(n int) *Device {
	d := Linear(n)
	d.Name = "ring"
	if n > 2 {
		d.Coupling.MustAddEdge(0, n-1)
	}
	return d
}

// FullyConnected returns an all-to-all coupled device, useful as an ideal
// baseline where no SWAPs are ever required.
func FullyConnected(n int) *Device {
	g := graphs.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return &Device{Name: "full", Coupling: g}
}

// falcon27Edges is the coupling map of IBM's 27-qubit Falcon processors
// (ibmq_montreal / ibmq_mumbai generation) — a heavy-hex lattice where
// every qubit has degree ≤ 3. Included as a forward-looking target beyond
// the paper's devices: heavy-hex trades connectivity for lower crosstalk,
// which stresses the SWAP-insertion passes harder than tokyo's rich mesh.
var falcon27Edges = [][2]int{
	{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8}, {6, 7},
	{7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {12, 15},
	{13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21}, {19, 20},
	{19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
}

// Falcon27 returns the 27-qubit heavy-hex topology (no calibration).
func Falcon27() *Device { return fromEdges("ibmq_falcon27", 27, falcon27Edges) }
