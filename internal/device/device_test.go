package device

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

func TestTokyoTopology(t *testing.T) {
	d := Tokyo20()
	if d.NQubits() != 20 {
		t.Fatalf("tokyo qubits = %d", d.NQubits())
	}
	if !d.Coupling.IsConnected() {
		t.Error("tokyo coupling graph disconnected")
	}
	if !d.Connected(0, 1) || !d.Connected(1, 0) {
		t.Error("edge (0,1) missing")
	}
	if d.Connected(0, 19) {
		t.Error("phantom edge (0,19)")
	}
}

// The paper works the connectivity-strength example for tokyo qubit 0:
// first neighbours {1,5}, second neighbours {2,6,7,10,11} → strength 7
// (Fig. 3(b) discussion in §IV-A).
func TestTokyoConnectivityStrengthQubit0(t *testing.T) {
	d := Tokyo20()
	if got := d.ConnectivityStrength(0, 1); got != 2 {
		t.Errorf("radius-1 strength of qubit 0 = %d, want 2", got)
	}
	if got := d.ConnectivityStrength(0, 2); got != 7 {
		t.Errorf("connectivity strength of qubit 0 = %d, want 7", got)
	}
}

func TestStrengthProfileSymmetry(t *testing.T) {
	d := Grid(4, 4)
	p := d.StrengthProfile(2)
	// Corners of a 4x4 grid are equivalent under symmetry.
	corners := []int{0, 3, 12, 15}
	for _, q := range corners[1:] {
		if p[q] != p[corners[0]] {
			t.Errorf("corner strengths differ: q%d=%d vs q0=%d", q, p[q], p[corners[0]])
		}
	}
	// Center qubits see strictly more neighbours than corners.
	if p[5] <= p[0] {
		t.Errorf("center strength %d not greater than corner %d", p[5], p[0])
	}
}

func TestMelbourneCalibration(t *testing.T) {
	d := Melbourne15()
	if d.NQubits() != 15 {
		t.Fatalf("melbourne qubits = %d", d.NQubits())
	}
	if d.Coupling.M() != 20 {
		t.Fatalf("melbourne edges = %d, want 20", d.Coupling.M())
	}
	if !d.Coupling.IsConnected() {
		t.Error("melbourne coupling graph disconnected")
	}
	if got := d.CNOTError(0, 1); got != 1.87e-2 {
		t.Errorf("CNOTError(0,1) = %v, want 1.87e-2", got)
	}
	if got := d.CNOTError(1, 0); got != 1.87e-2 {
		t.Errorf("CNOTError symmetric lookup failed: %v", got)
	}
	for _, e := range d.Coupling.Edges() {
		er := d.CNOTError(e.U, e.V)
		if er <= 0 || er >= 0.1 {
			t.Errorf("edge (%d,%d) error %v outside plausible range", e.U, e.V, er)
		}
	}
}

func TestCNOTErrorPanicsOffEdge(t *testing.T) {
	d := Melbourne15()
	defer func() {
		if recover() == nil {
			t.Error("CNOTError on non-edge did not panic")
		}
	}()
	d.CNOTError(0, 7)
}

func TestCPhaseSuccess(t *testing.T) {
	d := Melbourne15()
	e := d.CNOTError(0, 1)
	want := (1 - e) * (1 - e)
	if got := d.CPhaseSuccess(0, 1); math.Abs(got-want) > 1e-15 {
		t.Errorf("CPhaseSuccess = %v, want %v", got, want)
	}
}

func TestGridLinearRingTopologies(t *testing.T) {
	g := Grid(6, 6)
	if g.NQubits() != 36 || g.Coupling.M() != 60 {
		t.Errorf("grid(6,6): %d qubits, %d edges; want 36, 60", g.NQubits(), g.Coupling.M())
	}
	l := Linear(5)
	if l.Coupling.M() != 4 || l.Coupling.Degree(0) != 1 || l.Coupling.Degree(2) != 2 {
		t.Errorf("linear(5) malformed")
	}
	r := Ring(8)
	if r.Coupling.M() != 8 {
		t.Errorf("ring(8) edges = %d, want 8", r.Coupling.M())
	}
	for q := 0; q < 8; q++ {
		if r.Coupling.Degree(q) != 2 {
			t.Errorf("ring(8) degree(%d) = %d", q, r.Coupling.Degree(q))
		}
	}
	f := FullyConnected(5)
	if f.Coupling.M() != 10 {
		t.Errorf("full(5) edges = %d, want 10", f.Coupling.M())
	}
}

func TestHopDistancesCachedAndCorrect(t *testing.T) {
	d := Linear(6)
	m1 := d.HopDistances()
	if m1.Dist(0, 5) != 5 {
		t.Errorf("hop Dist(0,5) = %v, want 5", m1.Dist(0, 5))
	}
	if m2 := d.HopDistances(); m2 != m1 {
		t.Error("HopDistances not cached")
	}
	d.InvalidateCaches()
	if m3 := d.HopDistances(); m3 == m1 {
		t.Error("InvalidateCaches did not clear the cache")
	}
}

func TestReliabilityDistancesPreferReliableDetour(t *testing.T) {
	// Triangle 0-1-2 where the direct link 0-2 is very unreliable: the
	// reliability distance 0→2 must route around it while the hop distance
	// stays 1.
	d := Ring(3)
	d.Calib = &Calibration{CNOTError: map[[2]int]float64{
		{0, 1}: 0.01,
		{1, 2}: 0.01,
		{0, 2}: 0.40,
	}}
	hop := d.HopDistances()
	rel := d.ReliabilityDistances()
	if hop.Dist(0, 2) != 1 {
		t.Errorf("hop Dist(0,2) = %v", hop.Dist(0, 2))
	}
	direct := 1 / (0.6 * 0.6)
	detour := 2 / (0.99 * 0.99)
	if detour >= direct {
		t.Fatal("test construction broken: detour not cheaper")
	}
	if math.Abs(rel.Dist(0, 2)-detour) > 1e-12 {
		t.Errorf("reliability Dist(0,2) = %v, want detour cost %v", rel.Dist(0, 2), detour)
	}
	path := rel.Path(0, 2)
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("reliability path = %v, want [0 1 2]", path)
	}
}

func TestReliabilityDistancesNoCalibEqualsHops(t *testing.T) {
	d := Grid(3, 3)
	hop := d.HopDistances()
	rel := d.ReliabilityDistances()
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if hop.Dist(i, j) != rel.Dist(i, j) {
				t.Fatalf("uncalibrated reliability distance differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSuccessProbability(t *testing.T) {
	d := Linear(3)
	d.Calib = &Calibration{
		CNOTError:        map[[2]int]float64{{0, 1}: 0.1, {1, 2}: 0.2},
		SingleQubitError: 0.01,
		ReadoutError:     []float64{0.05, 0.05, 0.05},
	}
	c := circuit.New(3).Append(
		circuit.NewH(0),              // 0.99
		circuit.NewCNOT(0, 1),        // 0.9
		circuit.NewCPhase(1, 2, 0.5), // 0.8^2
		circuit.NewSwap(0, 1),        // 0.9^3
		circuit.NewMeasure(2),        // 0.95
	)
	want := 0.99 * 0.9 * 0.8 * 0.8 * 0.9 * 0.9 * 0.9 * 0.95
	if got := d.SuccessProbability(c); math.Abs(got-want) > 1e-12 {
		t.Errorf("SuccessProbability = %v, want %v", got, want)
	}
}

func TestSuccessProbabilityNoCalibIsOne(t *testing.T) {
	d := Linear(2)
	c := circuit.New(2).Append(circuit.NewCNOT(0, 1), circuit.NewMeasure(0))
	if got := d.SuccessProbability(c); got != 1 {
		t.Errorf("uncalibrated success probability = %v, want 1", got)
	}
}

func TestVerifyCompliant(t *testing.T) {
	d := Linear(4)
	good := circuit.New(4).Append(circuit.NewCNOT(1, 2), circuit.NewH(0))
	if err := d.VerifyCompliant(good); err != nil {
		t.Errorf("compliant circuit rejected: %v", err)
	}
	bad := circuit.New(4).Append(circuit.NewCNOT(0, 3))
	if err := d.VerifyCompliant(bad); err == nil {
		t.Error("non-compliant circuit accepted")
	}
	big := circuit.New(5)
	if err := d.VerifyCompliant(big); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestWithRandomCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := Tokyo20().WithRandomCalibration(rng, 1e-2, 0.5e-2)
	if d.Calib == nil {
		t.Fatal("calibration not attached")
	}
	if len(d.Calib.CNOTError) != d.Coupling.M() {
		t.Errorf("calibrated %d edges, want %d", len(d.Calib.CNOTError), d.Coupling.M())
	}
	var sum float64
	for _, e := range d.Coupling.Edges() {
		v := d.CNOTError(e.U, e.V)
		if v < 1e-4 || v > 0.5 {
			t.Errorf("edge (%d,%d) error %v out of truncation range", e.U, e.V, v)
		}
		sum += v
	}
	mean := sum / float64(d.Coupling.M())
	if mean < 0.5e-2 || mean > 2e-2 {
		t.Errorf("mean synthetic error %v far from 1e-2", mean)
	}
	// Determinism: same seed, same calibration.
	d2 := Tokyo20().WithRandomCalibration(rand.New(rand.NewSource(42)), 1e-2, 0.5e-2)
	for k, v := range d.Calib.CNOTError {
		if d2.Calib.CNOTError[k] != v {
			t.Fatal("same-seed calibrations differ")
		}
	}
}

func TestDecoherenceFactor(t *testing.T) {
	d := Linear(2)
	shallow := circuit.New(2).Append(circuit.NewH(0))
	deep := circuit.New(2).Append(circuit.NewH(0), circuit.NewH(0), circuit.NewH(0), circuit.NewH(0))
	if got := d.DecoherenceFactor(deep); got != 1 {
		t.Errorf("uncalibrated decoherence factor = %v, want 1", got)
	}
	d.Calib = &Calibration{GateTime: 1, T1: []float64{10, 10}, T2: []float64{20, 20}}
	fs := d.DecoherenceFactor(shallow)
	fd := d.DecoherenceFactor(deep)
	if fs <= fd {
		t.Errorf("deeper circuit should decohere more: shallow %v vs deep %v", fs, fd)
	}
	// Exact value for depth 1: per qubit exp(-1/10)·exp(-1/20), two qubits.
	want := math.Exp(-1.0/10) * math.Exp(-1.0/20)
	want *= want
	if math.Abs(fs-want) > 1e-12 {
		t.Errorf("shallow factor = %v, want %v", fs, want)
	}
}

func TestEstimateFidelityCombines(t *testing.T) {
	d := Linear(2)
	d.Calib = &Calibration{
		CNOTError: map[[2]int]float64{{0, 1}: 0.1},
		GateTime:  1, T2: []float64{100, 100},
	}
	c := circuit.New(2).Append(circuit.NewCNOT(0, 1))
	want := d.SuccessProbability(c) * d.DecoherenceFactor(c)
	if got := d.EstimateFidelity(c); math.Abs(got-want) > 1e-15 {
		t.Errorf("EstimateFidelity = %v, want %v", got, want)
	}
	if want >= 0.9 || want <= 0 {
		t.Errorf("implausible combined fidelity %v", want)
	}
}

func TestMelbourneCoherenceAttached(t *testing.T) {
	d := Melbourne15()
	if d.Calib.T1 == nil || d.Calib.T2 == nil || d.Calib.GateTime <= 0 {
		t.Fatal("melbourne calibration lacks coherence data")
	}
	c := circuit.New(2).Append(circuit.NewCNOT(0, 1))
	if f := d.DecoherenceFactor(c); f >= 1 || f <= 0 {
		t.Errorf("melbourne decoherence factor = %v", f)
	}
}

func TestFalcon27Topology(t *testing.T) {
	d := Falcon27()
	if d.NQubits() != 27 || d.Coupling.M() != 28 {
		t.Fatalf("falcon27: %d qubits, %d edges; want 27, 28", d.NQubits(), d.Coupling.M())
	}
	if !d.Coupling.IsConnected() {
		t.Error("falcon27 disconnected")
	}
	if got := d.Coupling.MaxDegree(); got != 3 {
		t.Errorf("heavy-hex max degree = %d, want 3", got)
	}
}
