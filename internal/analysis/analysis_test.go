package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestPkgNamed(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/compile", true},
		{"compile", true},
		{"repro/internal/compile/sub", false},
		{"repro/internal/device", false},
		{"trace", true},
	}
	for _, tc := range cases {
		if got := PkgNamed(tc.path, "compile", "trace"); got != tc.want {
			t.Errorf("PkgNamed(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestAllowIndex(t *testing.T) {
	const src = `package p

func f() {
	a() //lint:allow determinism: measured span
	//lint:allow determinism
	b()
	c() //lint:allow otherchecker
	d()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildAllowIndex(fset, []*ast.File{f}, "determinism")
	// a() on line 4 (same-line escape), b() on line 6 (escape on the line
	// above); c() carries an escape for a different analyzer and d() none.
	for line, want := range map[int]bool{4: true, 6: true, 7: false, 8: false} {
		if got := idx[allowKey{"p.go", line}]; got != want {
			t.Errorf("line %d allowed = %v, want %v", line, got, want)
		}
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Position: token.Position{Filename: "b.go", Line: 1, Column: 1}},
		{Position: token.Position{Filename: "a.go", Line: 9, Column: 2}},
		{Position: token.Position{Filename: "a.go", Line: 9, Column: 1}},
		{Position: token.Position{Filename: "a.go", Line: 2, Column: 5}},
	}
	SortDiagnostics(ds)
	got := ""
	for _, d := range ds {
		got += d.Position.String() + " "
	}
	want := "a.go:2:5 a.go:9:1 a.go:9:2 b.go:1:1 "
	if got != want {
		t.Errorf("sorted order = %q, want %q", got, want)
	}
}
