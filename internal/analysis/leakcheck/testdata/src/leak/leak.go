// Package leak exercises the leakcheck analyzer: every go statement must
// reach a completion signal on all paths, or carry a documented allow.
package leak

import (
	"context"
	"os"
	"sync"
)

var jobs = make(chan int)
var results = make(chan int)
var done = make(chan struct{})

func leakPlain() {
	go func() { // want `goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive`
		work()
	}()
}

func leakForever() {
	go func() { // want `goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive`
		for {
			work()
		}
	}()
}

func leakBranch(b bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive`
		if b {
			wg.Done() // only one path signals
		}
	}()
	wg.Wait()
}

func leakSelectLoop() {
	go func() { // want `goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive`
		for {
			select {
			case j := <-jobs: // draining work is not an exit signal
				_ = j
			}
		}
	}()
}

func leakUnanalyzable(fn func()) {
	go fn() // want `goroutine body is not analyzable`
}

func okWGDefer() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func okClose() {
	go func() {
		work()
		close(results)
	}()
}

func okSend() {
	go func() {
		results <- compute()
	}()
}

func okDoneChan() {
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func okCtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func okRange() {
	go func() {
		for j := range jobs { // blocks until close: the head is a signal
			_ = j
		}
	}()
}

func okExitPath(bad bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if bad {
			os.Exit(1) // the goroutine never outlives the process
		}
		wg.Done()
	}()
	wg.Wait()
}

// named is a same-package body the analyzer follows one level.
func named(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func okNamed() {
	var wg sync.WaitGroup
	wg.Add(1)
	go named(&wg)
	wg.Wait()
}

// leakNamed follows the call one level and finds no signal inside.
func leakNamed() {
	go work() // want `goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive`
}

func allowed(fn func()) {
	//lint:allow leakcheck: fixture-sanctioned — fn is documented to return when the listener closes
	go fn()
}

func work()        {}
func compute() int { return 1 }
