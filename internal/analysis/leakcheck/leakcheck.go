// Package leakcheck enforces goroutine exit discipline: every `go`
// statement must reach a completion signal — a WaitGroup.Done, a channel
// close or send, a receive from a cancellation channel (a Done() call or a
// struct{}-element done channel), or a range over a channel — on all
// paths. A goroutine that can run to completion, or spin forever, without
// ever signalling is invisible to Drain/Wait machinery: under churn those
// leak one at a time until the race detector or an fd limit notices.
//
// The body is resolved structurally: a `go func(){…}()` literal is
// analyzed directly, a `go s.method(x)` call into a same-package function
// is followed one level, and anything else (cross-package calls, function
// values) is unanalyzable and must carry an explicit //lint:allow
// leakcheck with a rationale. Paths ending in panic/os.Exit/log.Fatal are
// not leaks (the goroutine never outlives them). A select that offers a
// cancellation receive in any clause satisfies the discipline for every
// clause of that select — the canonical worker loop
// `for { select { case <-ctx.Done(): return; case job := <-jobs: … } }`
// re-offers cancellation on every iteration.
//
// The check assumes loops with conditions (and range loops) terminate;
// only `for {}`-style loops count as potential infinite executions.
// Test files are exempt.
package leakcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer flags goroutines without a guaranteed completion signal.
var Analyzer = &analysis.Analyzer{
	Name: "leakcheck",
	Doc:  "every go statement must reach a WaitGroup.Done, channel close/send, or cancellation receive on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	cg := pass.CallGraph()
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, cg, g)
			return true
		})
	}
	return nil, nil
}

func checkGo(pass *analysis.Pass, cg *analysis.CallGraph, g *ast.GoStmt) {
	body := resolveBody(pass, cg, g.Call)
	if body == nil {
		pass.Reportf(g.Pos(), "goroutine body is not analyzable (call through a function value or another package); document its exit with //lint:allow leakcheck")
		return
	}
	graph := dataflow.New(body)
	for _, call := range graph.Defers {
		if isSignalCall(pass.TypesInfo, call) {
			return // a deferred Done/close covers every exit at once
		}
	}
	offers := offeringSelects(pass.TypesInfo, body)
	match := func(n ast.Node) bool {
		found := false
		dataflow.Inspect(n, func(sub ast.Node) bool {
			if found {
				return false
			}
			if offers[sub] {
				found = true
				return false
			}
			if isSignalNode(pass.TypesInfo, sub) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
		// A range over a channel blocks until close: its head is a signal.
		if r, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypesInfo.TypeOf(r.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
		}
		return false
	}
	if graph.PathAvoiding(match) {
		pass.Reportf(g.Pos(), "goroutine may finish or loop forever without reaching a WaitGroup.Done, channel close/send, or cancellation receive")
	}
}

// resolveBody finds the function body a go statement runs: a literal, or
// the declaration of a same-package callee (one level).
func resolveBody(pass *analysis.Pass, cg *analysis.CallGraph, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	fn, dyn := analysis.StaticCallee(pass.TypesInfo, call)
	if fn == nil || dyn {
		return nil
	}
	if decl := cg.DeclOf(fn); decl != nil {
		return decl.Body
	}
	return nil
}

// isSignalNode reports whether a single expression/statement node is a
// completion signal.
func isSignalNode(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.CallExpr:
		return isSignalCall(info, n)
	case *ast.UnaryExpr:
		return n.Op == token.ARROW && isCancellationRecv(info, n.X)
	}
	return false
}

// isSignalCall matches wg.Done() (any sync.WaitGroup receiver) and
// close(ch).
func isSignalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "close" {
			if _, ok := info.Uses[fn].(*types.Builtin); ok {
				return true
			}
		}
	case *ast.SelectorExpr:
		if fn.Sel.Name != "Done" {
			return false
		}
		t := info.TypeOf(fn.X)
		if t == nil {
			return false
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	}
	return false
}

// isCancellationRecv reports whether receiving from e observes
// cancellation: e is a call to a Done() method (context.Context and
// friends) or a channel whose element type is struct{} — the done-channel
// convention. Receives from data channels (time.Ticker.C, job queues) do
// not count: draining work is not an exit signal.
func isCancellationRecv(info *types.Info, e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok {
		return st.NumFields() == 0
	}
	return false
}

// offeringSelects finds selects with a cancellation receive in some
// clause and marks every comm statement of those selects as satisfying:
// a blocked goroutine sitting in such a select always has the exit door
// open, whichever clause actually fires.
func offeringSelects(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		offering := false
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if commIsCancellation(info, cc.Comm) {
				offering = true
				break
			}
		}
		if !offering {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm := cl.(*ast.CommClause).Comm; comm != nil {
				out[comm] = true
			}
		}
		return true
	})
	return out
}

// commIsCancellation reports whether a select comm statement receives a
// cancellation signal.
func commIsCancellation(info *types.Info, comm ast.Stmt) bool {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	default:
		return false
	}
	u, ok := expr.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return isCancellationRecv(info, u.X)
}
