package leakcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/leakcheck"
)

func TestLeakCheck(t *testing.T) {
	analysistest.Run(t, leakcheck.Analyzer, "leak")
}
