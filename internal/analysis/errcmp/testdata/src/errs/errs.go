// Package errs exercises the errcmp analyzer with a fixture twin of the
// pipeline's typed error set.
package errs

import "errors"

// NotCoupledError mirrors device.NotCoupledError.
type NotCoupledError struct{ A, B int }

func (e *NotCoupledError) Error() string { return "not coupled" }

// plainError is a non-struct error type: outside the typed set.
type plainError string

func (e plainError) Error() string { return string(e) }

var sentinel = &NotCoupledError{}

func compare(err error, a, b *NotCoupledError) bool {
	if a == b { // want `NotCoupledError compared with ==`
		return true
	}
	if a != nil { // nil presence check, not matching: fine
		return false
	}
	if _, ok := err.(*NotCoupledError); ok { // want `type assertion on NotCoupledError; use errors.As`
		return true
	}
	switch err.(type) {
	case *NotCoupledError: // want `type switch case on NotCoupledError; use errors.As`
		return true
	case plainError: // non-struct error type: fine
		return false
	}
	var nce *NotCoupledError
	return errors.As(err, &nce) // the sanctioned form
}

func compareEscaped(a *NotCoupledError) bool {
	return a == sentinel //lint:allow errcmp: identity against the package sentinel is intentional
}
