// Package errcmp enforces wrap-transparent error matching for the
// pipeline's typed error set (device.NotCoupledError,
// router.DisconnectedError, compile.InsufficientQubitsError,
// compile.PanicError, and any future sibling). The compile boundary wraps
// causes — PanicError carries the original payload on its Unwrap chain,
// fmt.Errorf("%w") adds context in exp — so identity comparison or a
// direct type assertion silently stops matching the moment a wrapping
// layer appears. errors.Is / errors.As are the only future-proof forms.
//
// A "typed pipeline error" is any struct type named *Error that
// implements the error interface (value or pointer receiver). Flagged,
// tests included:
//
//   - x == y / x != y where either side has type T or *T (comparing a
//     concrete *T against nil is fine: that is a presence check, not a
//     match);
//   - type assertions v.(*T) or v.(T) — use errors.As;
//   - *T / T cases in a type switch — use errors.As (or errors.Is).
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces errors.Is/errors.As over ==, type assertions and type
// switches for the typed error set.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "typed pipeline errors must be matched with errors.Is/errors.As, never == or type switches",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkComparison(pass, n)
		case *ast.TypeAssertExpr:
			checkAssertion(pass, n)
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(pass, n)
		}
		return true
	})
	return nil, nil
}

// isTypedError reports whether t (or its pointee) is a struct type named
// "...Error" implementing the error interface, returning the type name.
func isTypedError(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if !strings.HasSuffix(obj.Name(), "Error") || obj.Pkg() == nil {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return "", false
	}
	if !types.Implements(named, errorInterface) && !types.Implements(types.NewPointer(named), errorInterface) {
		return "", false
	}
	return obj.Name(), true
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt := pass.TypesInfo.Types[be.X]
	yt := pass.TypesInfo.Types[be.Y]
	name, ok := isTypedError(xt.Type)
	if !ok {
		if name, ok = isTypedError(yt.Type); !ok {
			return
		}
	}
	// A nil presence check on a concrete pointer is not error matching.
	if xt.IsNil() || yt.IsNil() {
		return
	}
	pass.Reportf(be.OpPos,
		"%s compared with %s; match typed pipeline errors with errors.Is (wrapping breaks identity)",
		name, be.Op)
}

func checkAssertion(pass *analysis.Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // the v.(type) of a type switch; handled there
	}
	tv, ok := pass.TypesInfo.Types[ta.Type]
	if !ok {
		return
	}
	if name, isErr := isTypedError(tv.Type); isErr {
		pass.Reportf(ta.Pos(),
			"type assertion on %s; use errors.As so wrapped instances still match", name)
	}
}

func checkTypeSwitch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok {
				continue
			}
			if name, isErr := isTypedError(tv.Type); isErr {
				pass.Reportf(expr.Pos(),
					"type switch case on %s; use errors.As so wrapped instances still match", name)
			}
		}
	}
}
