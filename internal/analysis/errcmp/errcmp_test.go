package errcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errcmp"
)

func TestErrCmp(t *testing.T) {
	analysistest.Run(t, errcmp.Analyzer, "errs")
}
