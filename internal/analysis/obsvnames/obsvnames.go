// Package obsvnames is the static half of the metric-name registry gate.
// Every counter, gauge and span name the pipeline records must be a
// constant declared in internal/obsv (names.go): the registry keyed on
// those constants drives the BENCH compare gate, the Prometheus endpoint
// and the dashboards, so a string literal at a producer would silently
// fork a metric. The runtime complement (obsv_names_test.go) still runs a
// slim end-to-end pass; this analyzer catches the same drift at vet speed
// on every file, including paths no test exercises.
//
// Flagged: any call to a recording or lookup method of obsv.Collector
// (Add, Inc, Set, Observe, RecordSpan, StartSpan, Counter, Gauge) or to a
// field-attaching method of obsv.WideEvent (Str, Int, Float, Bool, DurMS)
// whose name argument is neither a constant declared in the obsv package
// nor a call to an obsv-package name-builder function (HistServePresetMS
// and friends, which derive registered names from a preset). The obsv
// package itself and _test.go files are exempt (internal plumbing forwards
// names through variables; tests use scratch collectors).
package obsvnames

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// nameMethods are the Collector methods whose first argument is a metric
// name.
var nameMethods = map[string]bool{
	"Add": true, "Inc": true, "Set": true, "Observe": true,
	"RecordSpan": true, "StartSpan": true,
	"Counter": true, "Gauge": true,
}

// wideMethods are the WideEvent methods whose first argument is a log
// field name.
var wideMethods = map[string]bool{
	"Str": true, "Int": true, "Float": true, "Bool": true, "DurMS": true,
}

// Analyzer enforces that metric names are registry constants.
var Analyzer = &analysis.Analyzer{
	Name: "obsvnames",
	Doc:  "metric and wide-event field names passed to obsv must be registry constants from internal/obsv/names.go",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PkgNamed(pass.Pkg.Path(), "obsv") {
		return nil, nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, call)
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.IsTestFile(call.Pos()) || len(call.Args) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	var kind string // what the first argument names, for the message
	switch {
	case nameMethods[fn.Name()] && isObsvNamed(sig.Recv().Type(), "Collector"):
		kind = "metric name for Collector."
	case wideMethods[fn.Name()] && isObsvNamed(sig.Recv().Type(), "WideEvent"):
		kind = "field name for WideEvent."
	default:
		return
	}
	arg := ast.Unparen(call.Args[0])
	if nameFromObsv(pass, arg) {
		return
	}
	pass.Reportf(call.Args[0].Pos(),
		"%s%s must be a constant from internal/obsv/names.go, not %s",
		kind, fn.Name(), describeArg(pass, arg))
}

// isObsvNamed reports whether t is the obsv-package type name (or a
// pointer to it).
func isObsvNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && analysis.PkgNamed(obj.Pkg().Path(), "obsv")
}

// nameFromObsv reports whether expr is an identifier or selector bound to
// a constant declared in the obsv package, or a call to an obsv-package
// function (the name builders — HistServePresetMS and friends — derive
// registered per-preset names, so their results are registry-vetted).
func nameFromObsv(pass *analysis.Pass, expr ast.Expr) bool {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.CallExpr:
		switch f := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		default:
			return false
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		return ok && fn.Pkg() != nil && analysis.PkgNamed(fn.Pkg().Path(), "obsv")
	default:
		return false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && analysis.PkgNamed(c.Pkg().Path(), "obsv")
}

func describeArg(pass *analysis.Pass, arg ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return "literal " + tv.Value.String()
	}
	return "a non-constant expression"
}
