// Package obsv is a fixture miniature of the real registry package: the
// analyzer recognizes it by package name, exactly as it does the real one.
package obsv

import "time"

// Registered metric names.
const (
	CntCompilations = "compile/compilations"
	SpanCompile     = "compile/total"
)

// Collector is the fixture twin of obsv.Collector.
type Collector struct{}

func (c *Collector) Inc(name string)                         {}
func (c *Collector) Add(name string, v float64)              {}
func (c *Collector) Counter(name string) float64             { return 0 }
func (c *Collector) RecordSpan(name string, d time.Duration) {}
