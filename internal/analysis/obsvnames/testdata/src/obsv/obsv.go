// Package obsv is a fixture miniature of the real registry package: the
// analyzer recognizes it by package name, exactly as it does the real one.
package obsv

import "time"

// Registered metric names.
const (
	CntCompilations      = "compile/compilations"
	CntSkeletonCompiles  = "compile/skeleton_compiles"
	CntCompileBinds      = "compile/binds"
	CntServeSkeletonHits = "serve/skeleton_hits"
	SpanCompile          = "compile/total"
	HistRequestMS        = "serve/request_ms"
	FieldReqID           = "req_id"
	FieldOutcome         = "outcome"
	FieldSkeletonHit     = "skeleton_hit"
)

// HistPresetMS is the fixture twin of the per-preset name builders
// (HistServePresetMS and friends): a registry function deriving a
// registered name, accepted by the analyzer as a name argument.
func HistPresetMS(preset string) string { return "serve/preset_" + preset + "_ms" }

// Collector is the fixture twin of obsv.Collector.
type Collector struct{}

func (c *Collector) Inc(name string)                         {}
func (c *Collector) Add(name string, v float64)              {}
func (c *Collector) Counter(name string) float64             { return 0 }
func (c *Collector) RecordSpan(name string, d time.Duration) {}
func (c *Collector) Observe(name string, v float64)          {}
func (c *Collector) Set(name string, v float64)              {}
func (c *Collector) Gauge(name string) float64               { return 0 }
func (c *Collector) StartSpan(name string)                   {}

// WideEvent is the fixture twin of obsv.WideEvent.
type WideEvent struct{}

func (e *WideEvent) Str(name, v string) *WideEvent                 { return e }
func (e *WideEvent) Int(name string, v int64) *WideEvent           { return e }
func (e *WideEvent) Float(name string, v float64) *WideEvent       { return e }
func (e *WideEvent) Bool(name string, v bool) *WideEvent           { return e }
func (e *WideEvent) DurMS(name string, d time.Duration) *WideEvent { return e }
