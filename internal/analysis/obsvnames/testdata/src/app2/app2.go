// Package app2 extends the obsvnames fixture tree: an aliased registry
// import and the recording methods app.go leaves out (Set, Gauge,
// StartSpan) must resolve exactly like the plain-import cases.
package app2

import (
	o "obsv"
)

func gauges(c *o.Collector) {
	// Aliased import: constants still resolve to the obsv package.
	c.Set(o.HistRequestMS, 3.0)
	_ = c.Gauge(o.HistRequestMS)
	c.StartSpan(o.SpanCompile)

	c.Set("serve/queue_depth", 4)  // want `metric name for Collector.Set must be a constant from internal/obsv/names.go, not literal "serve/queue_depth"`
	_ = c.Gauge("serve/rogue")     // want `metric name for Collector.Gauge must be a constant`
	c.StartSpan("compile/scratch") // want `metric name for Collector.StartSpan must be a constant`
}
