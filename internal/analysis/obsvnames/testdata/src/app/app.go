// Package app exercises the obsvnames analyzer against the fixture
// registry package.
package app

import (
	"time"

	"obsv"
)

// localName is a constant, but not from the registry package.
const localName = "app/rogue"

func record(c *obsv.Collector) {
	// Registry constants: fine.
	c.Inc(obsv.CntCompilations)
	c.Inc(obsv.CntSkeletonCompiles)
	c.Inc(obsv.CntCompileBinds)
	c.Inc(obsv.CntServeSkeletonHits)
	c.RecordSpan(obsv.SpanCompile, time.Second)
	c.Observe(obsv.HistRequestMS, 1.5)
	// Registry name-builder calls: fine.
	c.Observe(obsv.HistPresetMS("IC"), 2.5)

	c.Inc("compile/compilations")    // want `metric name for Collector.Inc must be a constant from internal/obsv/names.go, not literal "compile/compilations"`
	c.Add(localName, 1)              // want `metric name for Collector.Add must be a constant from internal/obsv/names.go, not literal "app/rogue"`
	_ = c.Counter("app/" + "x")      // want `metric name for Collector.Counter must be a constant`
	c.Observe("serve/rogue_ms", 1.0) // want `metric name for Collector.Observe must be a constant`
	c.Observe(deriveName("IC"), 1.0) // want `metric name for Collector.Observe must be a constant`

	c.Inc("scratch/debug") //lint:allow obsvnames: throwaway metric in a debugging harness
}

// deriveName builds a name outside the registry package — not accepted.
func deriveName(p string) string { return "serve/" + p }

func wide(e *obsv.WideEvent) {
	// Registry field constants: fine (values may be anything).
	e.Str(obsv.FieldReqID, "req-1").
		Str(obsv.FieldOutcome, "ok").
		Bool(obsv.FieldSkeletonHit, true).
		Float(obsv.HistRequestMS, 1.5)

	e.Str("req_id", "req-2")        // want `field name for WideEvent.Str must be a constant from internal/obsv/names.go, not literal "req_id"`
	e.Int(localName, 3)             // want `field name for WideEvent.Int must be a constant`
	e.Bool("cache_hit", true)       // want `field name for WideEvent.Bool must be a constant`
	e.DurMS("wait_ms", time.Second) // want `field name for WideEvent.DurMS must be a constant`

	e.Float("scratch_ms", 1.0) //lint:allow obsvnames: throwaway field in a debugging harness
}
