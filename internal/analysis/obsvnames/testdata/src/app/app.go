// Package app exercises the obsvnames analyzer against the fixture
// registry package.
package app

import (
	"time"

	"obsv"
)

// localName is a constant, but not from the registry package.
const localName = "app/rogue"

func record(c *obsv.Collector) {
	// Registry constants: fine.
	c.Inc(obsv.CntCompilations)
	c.RecordSpan(obsv.SpanCompile, time.Second)

	c.Inc("compile/compilations") // want `metric name for Collector.Inc must be a constant from internal/obsv/names.go, not literal "compile/compilations"`
	c.Add(localName, 1)           // want `metric name for Collector.Add must be a constant from internal/obsv/names.go, not literal "app/rogue"`
	_ = c.Counter("app/" + "x")   // want `metric name for Collector.Counter must be a constant`

	c.Inc("scratch/debug") //lint:allow obsvnames: throwaway metric in a debugging harness
}
