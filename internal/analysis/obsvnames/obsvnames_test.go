package obsvnames_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obsvnames"
)

func TestObsvNames(t *testing.T) {
	analysistest.Run(t, obsvnames.Analyzer, "app", "app2")
}
