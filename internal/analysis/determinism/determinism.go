// Package determinism statically enforces the reproduction's core
// scientific invariant: compilation, routing, tracing, experiment sweeps,
// simulation and graph generation are pure functions of their seeds. The
// CI gates (byte-identical stripped BENCH reports, seed-deterministic
// trace JSONL) only hold if no wall clock and no global RNG leaks into
// those paths, and if nothing iterates a Go map in an order-sensitive way.
//
// Inside the deterministic packages (compile, router, trace, exp, sim,
// graphs) the analyzer flags:
//
//   - time.Now / time.Since calls — wall clock. Measured spans that the
//     determinism gates explicitly strip (compile-time fields, trace
//     timestamps) carry a //lint:allow determinism escape stating so.
//   - package-level math/rand functions (rand.Intn, rand.Shuffle, ...) —
//     the process-global source. Seeded *rand.Rand values (rand.New) are
//     the sanctioned alternative and are not flagged.
//   - range over a map that feeds an order-sensitive sink: appending to a
//     slice that is not subsequently sorted in the same function, or
//     emitting directly (fmt.Fprint*, an Encode method, or a trace.Tracer
//     event) from inside the loop body.
//
// Test files are exempt: the invariant guards production compile paths.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// deterministicPkgs are the packages whose outputs must be pure functions
// of their seeds.
var deterministicPkgs = []string{"compile", "router", "trace", "exp", "sim", "graphs"}

// globalRandFuncs are the math/rand (and v2) package-level functions that
// consult the process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "Uint": true, "UintN": true,
}

// Analyzer flags wall-clock, global-RNG and unsorted-map-order leaks in
// the deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand and order-sensitive map ranges in seed-deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgNamed(pass.Pkg.Path(), deterministicPkgs...) {
		return nil, nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || pass.IsTestFile(call.Pos()) {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in deterministic package %s (inject a clock, or //lint:allow determinism for a measured span the gates strip)",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global rand.%s in deterministic package %s (thread a seeded *rand.Rand instead)",
				fn.Name(), pass.Pkg.Name())
		}
	}
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkMapRange flags `range m` over a map when the body feeds an
// order-sensitive sink.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	if pass.IsTestFile(rng.Pos()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	enclosing := analysis.EnclosingFuncDecl(stack)

	// Order-sensitive sinks inside the body: direct emission, or appends
	// to slices declared outside the loop.
	var appended []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sinkName := emitSink(pass, call); sinkName != "" {
			pass.Reportf(rng.Pos(),
				"range over map emits through %s in iteration order; sort the keys first (or //lint:allow determinism)",
				sinkName)
			return true
		}
		if id := appendTarget(pass, call, rng); id != nil {
			appended = append(appended, id)
		}
		return true
	})

	for _, id := range appended {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || enclosing == nil {
			continue
		}
		if !sortedAfter(pass, enclosing, obj, rng.End()) {
			pass.Reportf(rng.Pos(),
				"range over map appends to %s in iteration order and %s is never sorted afterwards; sort it (or //lint:allow determinism)",
				id.Name, id.Name)
		}
	}
}

// emitSink reports a non-empty sink name when call writes output whose
// order follows the enclosing iteration: fmt.Fprint*, any Encode method,
// or a trace event emission (a method on a type from a trace package).
func emitSink(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case fn.Pkg().Path() == "fmt" && (fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln"):
		return "fmt." + fn.Name()
	case sig != nil && sig.Recv() != nil && fn.Name() == "Encode":
		return "(" + sig.Recv().Type().String() + ").Encode"
	case sig != nil && sig.Recv() != nil && analysis.PkgNamed(fn.Pkg().Path(), "trace"):
		return "trace event " + fn.Name()
	}
	return ""
}

// appendTarget returns the identifier x in `x = append(x, ...)` when x is
// a plain identifier declared outside the range statement. Appends into
// map entries (per-key accumulation) are order-insensitive and ignored.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) *ast.Ident {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
		return nil // declared inside the loop: scoped per iteration
	}
	return target
}

// sortedAfter reports whether obj appears as an argument to a sort.* or
// slices.Sort* call after pos within fn's body.
func sortedAfter(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
