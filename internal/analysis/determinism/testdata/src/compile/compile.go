// Package compile is a determinism fixture mirroring the real pipeline
// package of the same name (the analyzer scopes by the last path element).
package compile

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// wallClock leaks the wall clock twice.
func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock time.Now in deterministic package compile`
	return time.Since(start) // want `wall-clock time.Since in deterministic package compile`
}

// measuredSpan is the sanctioned escape: a measured span the gates strip.
func measuredSpan() time.Time {
	return time.Now() //lint:allow determinism: measured span stripped by the gates
}

// globalRand consults the process-global source.
func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in deterministic package compile`
}

// seededRand threads a seeded source: the sanctioned alternative.
func seededRand() int {
	rng := rand.New(rand.NewSource(7))
	return rng.Intn(10)
}

// unsortedKeys leaks map iteration order into its result.
func unsortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m { // want `appends to keys in iteration order`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the compliant form: append then sort.
func sortedKeys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// perKeyAppend accumulates into map entries — order-insensitive.
func perKeyAppend(m map[int][]int, edges map[int]bool) {
	for k := range edges {
		m[k] = append(m[k], k)
	}
}

// emitUnsorted writes output in map iteration order.
func emitUnsorted(m map[string]int) {
	for k, v := range m { // want `emits through fmt.Fprintln in iteration order`
		fmt.Fprintln(os.Stdout, k, v)
	}
}

// emitEscaped declares the order irrelevant.
func emitEscaped(m map[string]int) {
	//lint:allow determinism: diagnostic dump, order irrelevant
	for k := range m {
		fmt.Fprintln(os.Stderr, k)
	}
}
