// Package sim exercises the hotpath analyzer against a miniature of the
// simulator's kernel layout.
package sim

import (
	"fmt"
	"math"

	"sim2"
)

// parallelFor is the fixture twin of the simulator's fan-out harness.
func parallelFor(n int, f func(lo, hi int)) { f(0, n) }

var amps = make([]float64, 1024)

// kernel is a compliant hot kernel: the parallelFor closure is the one
// sanctioned literal.
//
//qaoa:hotpath
func kernel(scale float64) {
	parallelFor(len(amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			amps[i] *= scale
		}
	})
}

// slowKernel collects the rejected constructs.
//
//qaoa:hotpath
func slowKernel(scale float64) {
	defer fmt.Println("done")        // want `defer in hotpath function slowKernel` `fmt.Println call in hotpath function slowKernel`
	f := func() { amps[0] *= scale } // want `closure allocated in hotpath function slowKernel`
	f()                              // want `call through a function value in hotpath function slowKernel`
	parallelFor(len(amps), func(lo, hi int) {
		g := func(i int) { amps[i] *= scale } // want `closure allocated in hotpath function slowKernel`
		for i := lo; i < hi; i++ {
			g(i) // want `call through a function value in hotpath function slowKernel`
		}
	})
	_ = interface{}(scale) // want `conversion to interface type interface\{\} in hotpath function slowKernel`
	logv(scale)            // want `call to logv boxes arguments into \.\.\.interface\{\} in hotpath function slowKernel`
}

// coldPath is unannotated: the same constructs pass unflagged.
func coldPath() {
	defer fmt.Println("done")
}

// escapedKernel keeps one fmt call on a guarded cold path behind the
// explicit escape.
//
//qaoa:hotpath
func escapedKernel(bad bool) {
	if bad {
		fmt.Println("corrupt register") //lint:allow hotpath: guarded cold error path
	}
}

func logv(args ...interface{}) {}

// expand is an annotated helper: calling it from another kernel is the
// proven transitive step.
//
//qaoa:hotpath
func expand(k int) int { return k << 1 }

// helper is a plain function: calling it from a kernel breaks the proof.
func helper(k int) int { return k + 1 }

// stringer is dynamic dispatch bait.
type stringer interface{ Len() int }

// growKernel exercises the v2 allocation checks: append growth, map
// writes, and the transitive callee proof.
//
//qaoa:hotpath
func growKernel(buf []float64, m map[int]int, s stringer) []float64 {
	buf = append(buf, 1) // want `append in hotpath function growKernel may grow its backing array`
	m[1] = 2             // want `map write in hotpath function growKernel may rehash and allocate`
	m[1]++               // want `map write in hotpath function growKernel may rehash and allocate`
	_ = expand(3)        // proven: annotated callee
	_ = helper(3)        // want `call to helper in hotpath function growKernel: callee is not annotated //qaoa:hotpath`
	_ = math.Sqrt(2)        // allowlisted foreign package
	_ = sim2.Fidelity(buf)  // want `call to sim2\.Fidelity in hotpath function growKernel: foreign callee is outside the hotpath allowlist`
	_ = s.Len()             // want `dynamic dispatch to Len in hotpath function growKernel: interface targets cannot be proven allocation-free`
	return buf
}

// highWater keeps an amortized append behind the explicit escape.
//
//qaoa:hotpath
func highWater(buf []float64) []float64 {
	buf = append(buf, 1) //lint:allow hotpath: amortized high-water append
	return buf
}
