// Package sim exercises the hotpath analyzer against a miniature of the
// simulator's kernel layout.
package sim

import "fmt"

// parallelFor is the fixture twin of the simulator's fan-out harness.
func parallelFor(n int, f func(lo, hi int)) { f(0, n) }

var amps = make([]float64, 1024)

// kernel is a compliant hot kernel: the parallelFor closure is the one
// sanctioned literal.
//
//qaoa:hotpath
func kernel(scale float64) {
	parallelFor(len(amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			amps[i] *= scale
		}
	})
}

// slowKernel collects the rejected constructs.
//
//qaoa:hotpath
func slowKernel(scale float64) {
	defer fmt.Println("done")        // want `defer in hotpath function slowKernel` `fmt.Println call in hotpath function slowKernel`
	f := func() { amps[0] *= scale } // want `closure allocated in hotpath function slowKernel`
	f()
	parallelFor(len(amps), func(lo, hi int) {
		g := func(i int) { amps[i] *= scale } // want `closure allocated in hotpath function slowKernel`
		for i := lo; i < hi; i++ {
			g(i)
		}
	})
	_ = interface{}(scale) // want `conversion to interface type interface\{\} in hotpath function slowKernel`
	logv(scale)            // want `call to logv boxes arguments into \.\.\.interface\{\} in hotpath function slowKernel`
}

// coldPath is unannotated: the same constructs pass unflagged.
func coldPath() {
	defer fmt.Println("done")
}

// escapedKernel keeps one fmt call on a guarded cold path behind the
// explicit escape.
//
//qaoa:hotpath
func escapedKernel(bad bool) {
	if bad {
		fmt.Println("corrupt register") //lint:allow hotpath: guarded cold error path
	}
}

func logv(args ...interface{}) {}
