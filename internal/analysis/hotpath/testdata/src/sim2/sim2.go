// Package sim2 is a foreign fixture package: its functions are outside
// the hotpath allowlist, so calling them from a kernel breaks the proof.
package sim2

// Fidelity is deliberately allocation-free — the analyzer still rejects
// it, because vet cannot see across the package boundary.
func Fidelity(buf []float64) float64 {
	var s float64
	for _, v := range buf {
		s += v * v
	}
	return s
}
