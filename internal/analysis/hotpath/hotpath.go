// Package hotpath guards the simulator's per-amplitude kernels — the
// code the sim-work regression gate and the BENCH wall-time backstop
// watch. A function annotated
//
//	//qaoa:hotpath
//
// in its doc comment declares itself allocation- and dispatch-free; the
// analyzer then rejects the constructs that historically crept in and
// silently cost 2-10× on the fused kernels:
//
//   - defer — per-call overhead and a closure allocation in loops;
//   - function literals — a heap allocation per evaluation once captured
//     variables escape. Closures passed directly to parallelFor are the
//     one sanctioned exception: that is the fan-out harness itself, one
//     closure per kernel invocation, amortized over ≥ParallelThreshold
//     amplitudes;
//   - any call into package fmt — formatting allocates and walks
//     reflection;
//   - explicit conversions to an interface type, and calls whose final
//     variadic parameter is ...interface{} — both box their operand.
//
// Escapes: //lint:allow hotpath on the offending line, for the rare case
// where a kernel legitimately needs one of these off the per-amplitude
// loop (say, a guarded cold error path).
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// directive is the annotation marking a function as a hot kernel.
const directive = "//qaoa:hotpath"

// Analyzer rejects allocation and dynamic dispatch in annotated kernels.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated //qaoa:hotpath must not defer, allocate closures, call fmt, or box into interfaces",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hotpath function %s", name)
		case *ast.FuncLit:
			// Allowed only as a direct argument to parallelFor.
			return true // reported (or not) at the enclosing CallExpr below
		case *ast.CallExpr:
			checkCall(pass, n, name)
		}
		return true
	})
	// Closures: a second pass so the parallelFor carve-out can look at the
	// closure's call-argument position.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isParallelFor(pass, call) {
			// Descend into the closure body but skip reporting the literal
			// itself.
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkNestedLits(pass, fl.Body, name)
				}
			}
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			pass.Reportf(fl.Pos(), "closure allocated in hotpath function %s (only parallelFor fan-out closures are exempt)", name)
			return false
		}
		return true
	})
}

// checkNestedLits reports closures nested inside an exempted parallelFor
// closure body.
func checkNestedLits(pass *analysis.Pass, body *ast.BlockStmt, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			pass.Reportf(fl.Pos(), "closure allocated in hotpath function %s (only parallelFor fan-out closures are exempt)", name)
			return false
		}
		return true
	})
}

func isParallelFor(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Name() == "parallelFor"
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, name string) {
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			pass.Reportf(call.Pos(), "conversion to interface type %s in hotpath function %s", tv.Type, name)
		}
		return
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hotpath function %s", fn.Name(), name)
		return
	}
	// Variadic ...interface{} parameters box every argument.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && len(call.Args) > 0 {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok {
			if iface, ok := slice.Elem().Underlying().(*types.Interface); ok && iface.Empty() {
				pass.Reportf(call.Pos(), "call to %s boxes arguments into ...interface{} in hotpath function %s", fn.Name(), name)
			}
		}
	}
}
