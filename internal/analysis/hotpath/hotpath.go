// Package hotpath guards the per-amplitude and per-bind kernels — the
// code the work-counter regression gates and the zero-alloc benchmarks
// (TestScoringKernelZeroAlloc, BenchmarkSkeletonBindTo) watch. A function
// annotated
//
//	//qaoa:hotpath
//
// in its doc comment declares itself allocation- and dispatch-free; the
// analyzer then proves the claim transitively: besides rejecting the
// constructs that historically crept in and silently cost 2-10× on the
// fused kernels, every callee must itself be proven.
//
// Per-body checks:
//
//   - defer — per-call overhead and a closure allocation in loops;
//   - function literals — a heap allocation per evaluation once captured
//     variables escape. Closures passed directly to parallelFor are the
//     one sanctioned exception: that is the fan-out harness itself, one
//     closure per kernel invocation, amortized over ≥ParallelThreshold
//     amplitudes;
//   - any call into package fmt — formatting allocates and walks
//     reflection;
//   - explicit conversions to an interface type, and calls whose final
//     variadic parameter is ...interface{} — both box their operand;
//   - append — may grow, which is an allocation; amortized high-water
//     appends carry a //lint:allow hotpath stating why they are safe;
//   - map writes — may trigger rehashing and bucket allocation.
//
// Call-graph checks (the transitive proof):
//
//   - a call to a same-package function must target another //qaoa:hotpath
//     function (or parallelFor), so the allocation-free property is
//     inductively established over the whole call tree;
//   - a call into another package must be on the allowlist of packages
//     known allocation-free (math, math/bits, math/cmplx, math/rand,
//     sync/atomic) or be an obsv.Collector counter update; vet analyzes
//     one package at a time, so foreign bodies cannot be inspected and
//     anything else needs an explicit //lint:allow hotpath;
//   - dynamic dispatch — interface method calls and calls through
//     function values — is flagged: the target is unprovable.
//
// Escapes: //lint:allow hotpath on the offending line, for the rare case
// where a kernel legitimately needs one of these off the per-amplitude
// loop (say, a guarded cold error path).
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// directive is the annotation marking a function as a hot kernel.
const directive = "//qaoa:hotpath"

// allowedPackages are foreign packages whose functions are known
// allocation-free and safe to call from a hot kernel.
var allowedPackages = []string{"math", "math/bits", "math/cmplx", "math/rand", "sync/atomic"}

// allowedMethods are foreign methods provable by measurement rather than
// inspection: obsv counter updates are lock-free adds the zero-alloc
// benchmarks already cover.
var allowedMethods = map[string]map[string]bool{
	"obsv": {"Inc": true, "Add": true},
}

// Analyzer rejects allocation and dynamic dispatch in annotated kernels
// and proves the claim across the package call graph.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "functions annotated //qaoa:hotpath must be allocation- and dispatch-free, transitively over the call graph",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	annotated := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				annotated[fn] = true
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkBody(pass, fd, annotated)
		}
	}
	return nil, nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, annotated map[*types.Func]bool) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hotpath function %s", name)
		case *ast.FuncLit:
			// Allowed only as a direct argument to parallelFor.
			return true // reported (or not) at the enclosing CallExpr below
		case *ast.CallExpr:
			checkCall(pass, n, name, annotated)
		case *ast.AssignStmt:
			checkMapWrite(pass, n, name)
		case *ast.IncDecStmt:
			if isMapIndex(pass, n.X) {
				pass.Reportf(n.Pos(), "map write in hotpath function %s may rehash and allocate", name)
			}
		}
		return true
	})
	// Closures: a second pass so the parallelFor carve-out can look at the
	// closure's call-argument position.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isParallelFor(pass, call) {
			// Descend into the closure body but skip reporting the literal
			// itself.
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkNestedLits(pass, fl.Body, name)
				}
			}
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			pass.Reportf(fl.Pos(), "closure allocated in hotpath function %s (only parallelFor fan-out closures are exempt)", name)
			return false
		}
		return true
	})
}

// checkNestedLits reports closures nested inside an exempted parallelFor
// closure body.
func checkNestedLits(pass *analysis.Pass, body *ast.BlockStmt, name string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			pass.Reportf(fl.Pos(), "closure allocated in hotpath function %s (only parallelFor fan-out closures are exempt)", name)
			return false
		}
		return true
	})
}

func isParallelFor(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Name() == "parallelFor"
}

// checkMapWrite flags assignments through a map index.
func checkMapWrite(pass *analysis.Pass, as *ast.AssignStmt, name string) {
	for _, lhs := range as.Lhs {
		if isMapIndex(pass, lhs) {
			pass.Reportf(lhs.Pos(), "map write in hotpath function %s may rehash and allocate", name)
		}
	}
}

func isMapIndex(pass *analysis.Pass, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, name string, annotated map[*types.Func]bool) {
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			pass.Reportf(call.Pos(), "conversion to interface type %s in hotpath function %s", tv.Type, name)
		}
		return
	}
	// Builtins: append may grow; the rest are free.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				pass.Reportf(call.Pos(), "append in hotpath function %s may grow its backing array", name)
			}
			return
		}
	}
	fn, dynamic := analysis.StaticCallee(pass.TypesInfo, call)
	if dynamic {
		if fn != nil {
			pass.Reportf(call.Pos(), "dynamic dispatch to %s in hotpath function %s: interface targets cannot be proven allocation-free", fn.Name(), name)
		} else if !isParallelFor(pass, call) {
			pass.Reportf(call.Pos(), "call through a function value in hotpath function %s: the target cannot be proven allocation-free", name)
		}
		return
	}
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hotpath function %s", fn.Name(), name)
		return
	}
	// Variadic ...interface{} parameters box every argument.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && len(call.Args) > 0 {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok {
			if iface, ok := slice.Elem().Underlying().(*types.Interface); ok && iface.Empty() {
				pass.Reportf(call.Pos(), "call to %s boxes arguments into ...interface{} in hotpath function %s", fn.Name(), name)
				return
			}
		}
	}
	// The transitive proof: same-package callees must carry the
	// annotation; foreign callees must be allowlisted.
	if fn.Pkg() == pass.Pkg {
		if annotated[fn] || fn.Name() == "parallelFor" {
			return
		}
		pass.Reportf(call.Pos(), "call to %s in hotpath function %s: callee is not annotated //qaoa:hotpath", fn.Name(), name)
		return
	}
	if fn.Pkg() == nil {
		return // universe scope (error.Error etc. resolve as dynamic above)
	}
	if analysis.PkgNamed(fn.Pkg().Path(), allowedPackages...) {
		return
	}
	if methods, ok := allowedMethods[lastElem(fn.Pkg().Path())]; ok && methods[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "call to %s.%s in hotpath function %s: foreign callee is outside the hotpath allowlist", lastElem(fn.Pkg().Path()), fn.Name(), name)
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
