package analysis

import "go/ast"

// WalkStack traverses every file of the pass in source order, calling f
// with each node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false from f prunes the subtree.
func WalkStack(files []*ast.File, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := f(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// EnclosingFuncDecl returns the innermost *ast.FuncDecl on the stack, or
// nil when the node is not inside a function declaration (e.g. package
// level var initializer).
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}
