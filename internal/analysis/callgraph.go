package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static call graph of one package: every function or
// method declared with a body, with the call sites its body contains.
// Cross-package callees appear as edge targets (their *types.Func comes
// from export data) but have no node of their own — an analyzer that needs
// their bodies must treat them as opaque. Calls through function values
// have a nil Callee; calls through interface methods resolve to the
// interface method object and are marked Dynamic.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
}

// CallNode is one declared function and its outgoing call sites, in
// source order. Sites inside nested function literals are included — the
// literal's calls happen on behalf of whoever runs the closure, and the
// analyzers that care (hotpath) re-derive closure structure themselves.
type CallNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Out  []CallSite
}

// CallSite is one call expression inside a node's body.
type CallSite struct {
	Call    *ast.CallExpr
	Callee  *types.Func // nil for calls through function values and builtins
	Dynamic bool        // true for interface-method and function-value calls
}

// CallGraph returns the package call graph, built once per pass.
func (p *Pass) CallGraph() *CallGraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	cg := &CallGraph{Nodes: map[*types.Func]*CallNode{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Func: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, dyn := StaticCallee(p.TypesInfo, call)
				if callee == nil && !dyn {
					// Conversion or builtin: not a call edge.
					if isConversionOrBuiltin(p.TypesInfo, call) {
						return true
					}
					dyn = true // function value
				}
				node.Out = append(node.Out, CallSite{Call: call, Callee: callee, Dynamic: dyn})
				return true
			})
			cg.Nodes[fn] = node
		}
	}
	p.callgraph = cg
	return cg
}

// DeclOf returns the package-local declaration of fn, or nil when fn is
// not declared (with a body) in this package.
func (cg *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	if n, ok := cg.Nodes[fn]; ok {
		return n.Decl
	}
	return nil
}

// StaticCallee resolves the target of a call expression. dynamic is true
// when the target is an interface method (fn set to the method object) or
// a function value (fn nil); both mean the concrete body is unknown
// statically. Conversions and builtins return (nil, false).
func StaticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	switch fe := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fe].(*types.Func); ok {
			return f, false
		}
		if _, ok := info.Uses[fe].(*types.Var); ok {
			return nil, true // call through a local function value
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fe]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				recv := f.Type().(*types.Signature).Recv()
				return f, recv != nil && types.IsInterface(recv.Type())
			}
			if _, ok := sel.Obj().(*types.Var); ok {
				return nil, true // call through a struct-field function value
			}
		} else if f, ok := info.Uses[fe.Sel].(*types.Func); ok {
			return f, false // package-qualified call
		} else if _, ok := info.Uses[fe.Sel].(*types.Var); ok {
			return nil, true // package-level function variable
		}
	}
	return nil, false
}

// isConversionOrBuiltin distinguishes T(x) and len/append/... from real
// calls.
func isConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	switch fe := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fe].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fe.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr, *ast.FuncType, *ast.InterfaceType:
		return true
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
