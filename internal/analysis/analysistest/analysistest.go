// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments — a
// stdlib-only miniature of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout, relative to the analyzer's package directory:
//
//	testdata/src/<pkg>/*.go
//
// An import path inside a fixture resolves to a sibling fixture directory
// when one exists (import "obsv" → testdata/src/obsv) and to the standard
// library otherwise. Expectations are comments on the offending line:
//
//	time.Now() // want `wall-clock`
//
// The quoted text is a regular expression matched against the diagnostic
// message; several expectations may share one line. Every diagnostic must
// be wanted and every want must fire, or the test fails.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package and applies analyzer, enforcing the
// // want expectations of that package's files.
func Run(t *testing.T, analyzer *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Helper()
			runOne(t, analyzer, name)
		})
	}
}

func runOne(t *testing.T, analyzer *analysis.Analyzer, name string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := newFixtureLoader(root)
	pkg, err := ld.load(name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := analyzer.Run(pass); err != nil {
		t.Fatalf("%s: %v", analyzer.Name, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Syntax)
	for _, d := range got {
		pos := d.Position
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.re.MatchString(d.Message) && !w.used {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants extracts // want expectations from file comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]want {
	t.Helper()
	wants := map[wantKey][]want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos.String(), strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, at, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var tok string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquote in want: %s", at, s)
			}
			tok, s = s[1:1+end], s[2+end:]
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			for end >= 0 && end > 0 && rest[end-1] == '\\' {
				next := strings.IndexByte(rest[end+1:], '"')
				if next < 0 {
					end = -1
					break
				}
				end += 1 + next
			}
			if end < 0 {
				t.Fatalf("%s: unterminated quote in want: %s", at, s)
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s: bad quoted want %q: %v", at, s[:end+2], err)
			}
			tok, s = unq, s[end+2:]
		default:
			t.Fatalf("%s: want expectations must be quoted: %s", at, s)
		}
		out = append(out, tok)
		s = strings.TrimSpace(s)
	}
	return out
}

// fixtureLoader type-checks fixture packages, resolving sibling fixture
// imports locally and everything else through gc export data obtained
// from `go list -export`.
type fixtureLoader struct {
	root    string // testdata/src
	fset    *token.FileSet
	local   map[string]*analysis.Package
	loading map[string]bool
	exports map[string]string
	gc      types.ImporterFrom // shared so stdlib type identities agree across fixtures
}

func newFixtureLoader(root string) *fixtureLoader {
	l := &fixtureLoader{
		root:    root,
		fset:    token.NewFileSet(),
		local:   map[string]*analysis.Package{},
		loading: map[string]bool{},
		exports: map[string]string{},
	}
	lookup := func(ipath string) (io.ReadCloser, error) {
		file, ok := l.exports[ipath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", ipath)
		}
		return os.Open(file)
	}
	l.gc = importer.ForCompiler(l.fset, "gc", lookup).(types.ImporterFrom)
	return l
}

func (l *fixtureLoader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

func (l *fixtureLoader) load(path string) (*analysis.Package, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	stdlib := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if l.isLocal(ipath) {
				if _, err := l.load(ipath); err != nil {
					return nil, err
				}
			} else {
				stdlib[ipath] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %q has no Go files", path)
	}
	if err := l.fetchExports(stdlib); err != nil {
		return nil, err
	}

	conf := types.Config{Importer: (*fixtureImporter)(l)}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	pkg := &analysis.Package{Path: path, Fset: l.fset, Syntax: files, Types: tpkg, Info: info}
	l.local[path] = pkg
	return pkg, nil
}

// fetchExports ensures export data paths are known for the given standard
// library (or otherwise non-fixture) import paths.
func (l *fixtureLoader) fetchExports(paths map[string]bool) error {
	var missing []string
	for p := range paths {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %v\n%s", missing, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// fixtureImporter adapts fixtureLoader to types.Importer.
type fixtureImporter fixtureLoader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*fixtureLoader)(fi)
	if l.isLocal(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gc.ImportFrom(path, "", 0)
}
