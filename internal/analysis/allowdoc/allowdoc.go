// Package allowdoc audits the escape hatch itself. Every //lint:allow
// comment must name a registered analyzer and carry a trailing rationale
// — an allow is a reviewed exception, and an exception nobody can explain
// is indistinguishable from a silenced bug. A typo'd analyzer name is
// worse: the comment suppresses nothing and reads as if it did.
//
// allowdoc findings deliberately ignore //lint:allow escapes: a malformed
// allow must not be able to silence the auditor that flags malformed
// allows.
package allowdoc

import (
	"fmt"
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// New builds the analyzer for a given set of registered analyzer names.
// The driver passes every analyzer it runs (including allowdoc itself, so
// an allowdoc allow can be allowed — and must be documented like any
// other).
func New(names ...string) *analysis.Analyzer {
	known := map[string]bool{}
	for _, n := range names {
		known[n] = true
	}
	return &analysis.Analyzer{
		Name: "allowdoc",
		Doc:  "every //lint:allow must name a registered analyzer and state a rationale",
		Run: func(pass *analysis.Pass) (any, error) {
			return run(pass, known)
		},
	}
}

func run(pass *analysis.Pass, known map[string]bool) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkComment(pass, c, known)
			}
		}
	}
	return nil, nil
}

func checkComment(pass *analysis.Pass, c *ast.Comment, known map[string]bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "lint:allow") {
		return
	}
	// Report directly: an escape comment must not suppress the audit of
	// escape comments.
	report := func(format string, args ...any) {
		pass.Report(analysis.Diagnostic{
			Position: pass.Fset.Position(c.Pos()),
			Message:  fmt.Sprintf(format, args...),
			Analyzer: pass.Analyzer.Name,
		})
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
	if rest == "" {
		report("lint:allow names no analyzer")
		return
	}
	name, rationale, _ := strings.Cut(rest, " ")
	name = strings.TrimSuffix(name, ":")
	if !known[name] {
		report("lint:allow names unknown analyzer %q", name)
		return
	}
	if strings.TrimSpace(rationale) == "" {
		report("lint:allow %s has no rationale: state why the invariant does not apply", name)
	}
}
