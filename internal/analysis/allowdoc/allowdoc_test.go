// allowdoc cannot use the analysistest fixture harness: a // want
// expectation and the //lint:allow comment under test would have to share
// one line comment, which Go's grammar has no room for. The test drives
// the analyzer over parsed sources directly instead.
package allowdoc_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/allowdoc"
)

func runOn(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	analyzer := allowdoc.New("allowdoc", "poolsafe", "leakcheck")
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  analyzer,
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := analyzer.Run(pass); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func TestAllowDoc(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings, one per expected diagnostic
	}{
		{
			name: "documented allow is clean",
			src: `func f() {
	//lint:allow poolsafe: callee copies before the defer runs
	_ = 1
}`,
		},
		{
			name: "colon form is clean",
			src: `func f() {
	_ = 1 //lint:allow leakcheck: server goroutine exits on listener close
}`,
		},
		{
			name: "undocumented allow is a diagnostic",
			src: `func f() {
	_ = 1 //lint:allow poolsafe
}`,
			want: []string{"lint:allow poolsafe has no rationale"},
		},
		{
			name: "unknown analyzer name",
			src: `func f() {
	_ = 1 //lint:allow poolsfae: typo'd name suppresses nothing
}`,
			want: []string{`lint:allow names unknown analyzer "poolsfae"`},
		},
		{
			name: "no analyzer at all",
			src: `func f() {
	_ = 1 //lint:allow
}`,
			want: []string{"lint:allow names no analyzer"},
		},
		{
			name: "bare allow cannot silence allowdoc itself",
			src: `func f() {
	//lint:allow allowdoc
	_ = 1
}`,
			want: []string{"lint:allow allowdoc has no rationale"},
		},
		{
			name: "documented allowdoc allow still audited clean",
			src: `func f() {
	//lint:allow allowdoc: reviewed meta-escape
	_ = 1
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runOn(t, tc.src)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d: %+v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if !strings.Contains(got[i].Message, w) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, got[i].Message, w)
				}
			}
		})
	}
}
