// Package ctxflow enforces the context discipline of the compilation
// pipeline's public packages (compile, router, exp, loop): deadlines and
// cancellation must flow from the API boundary down, never be minted
// mid-pipeline.
//
// Two rules, production files only:
//
//   - A function that accepts a context.Context must take it as its first
//     parameter (after the receiver), matching the stdlib convention the
//     rest of the pipeline relies on.
//   - context.Background() / context.TODO() may appear only inside an
//     exported function that itself has no context parameter — i.e. a
//     boundary convenience wrapper (Compile → CompileContext) that mints
//     the root context for callers who opted out of deadlines. Anywhere
//     deeper, a fresh Background would silently detach the call tree from
//     the caller's deadline; thread the ctx parameter instead, or carry a
//     //lint:allow ctxflow escape stating why detachment is intended.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// ctxPkgs are the packages holding the context-threaded pipeline API.
var ctxPkgs = []string{"compile", "router", "exp", "loop"}

// Analyzer enforces ctx-first signatures and boundary-only Background/TODO.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context first in signatures; context.Background/TODO only in exported no-ctx boundary wrappers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PkgNamed(pass.Pkg.Path(), ctxPkgs...) {
		return nil, nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkSignature(pass, n)
		case *ast.CallExpr:
			checkMint(pass, n, stack)
		}
		return true
	})
	return nil, nil
}

// checkSignature flags a context.Context parameter that is not first.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	if pass.IsTestFile(fd.Pos()) {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if isContextType(pass, field.Type) && idx != 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of %s", fd.Name.Name)
		}
		idx += names
	}
}

// checkMint flags context.Background()/TODO() below the API boundary.
func checkMint(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if pass.IsTestFile(call.Pos()) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	enclosing := analysis.EnclosingFuncDecl(stack)
	if enclosing != nil && enclosing.Name.IsExported() && !hasContextParam(pass, enclosing) {
		return // boundary wrapper minting the root context
	}
	where := "package-level initialization"
	if enclosing != nil {
		where = enclosing.Name.Name
	}
	pass.Reportf(call.Pos(),
		"context.%s below the API boundary (in %s): thread the caller's ctx (or //lint:allow ctxflow if detachment is intended)",
		fn.Name(), where)
}

func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass, field.Type) {
			return true
		}
	}
	return false
}

func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
