// Package loop exercises the ctxflow analyzer's boundary rules (the
// analyzer scopes by the last path element).
package loop

import "context"

// Run is an exported ctx-free boundary wrapper: minting the root context
// here is the sanctioned pattern.
func Run() error {
	return RunContext(context.Background())
}

// RunContext is the deadline-aware form.
func RunContext(ctx context.Context) error {
	_ = ctx
	return nil
}

// badSignature takes its context late.
func badSignature(n int, ctx context.Context) {} // want `context.Context must be the first parameter of badSignature`

// helper mints a context below the boundary.
func helper() context.Context {
	return context.Background() // want `context.Background below the API boundary \(in helper\)`
}

// Reset is exported but already ctx-aware, so a fresh root would detach
// the call tree from the caller's deadline.
func Reset(ctx context.Context) {
	_ = context.TODO() // want `context.TODO below the API boundary \(in Reset\)`
}

// detach documents an intended detachment with the escape.
func detach() context.Context {
	return context.Background() //lint:allow ctxflow: spawned job must outlive the request
}
