// Package pool exercises the poolsafe analyzer against the repo's pooling
// idioms: direct sync.Pool use, hand-rolled get/put wrappers, derived
// views, and the borrow-vs-transfer ownership split.
package pool

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// getBuf and putBuf are the hand-rolled wrapper pair the classifier must
// discover: getBuf reaches Pool.Get and returns; putBuf Puts its param.
func getBuf() []byte      { return bufPool.Get().([]byte)[:0] }
func putBuf(b []byte)     { bufPool.Put(b[:0]) }
func recycle(b []byte)    { putBuf(b) } // a releaser through a releaser
func view(b []byte) []byte { return b[:len(b):len(b)] }

var sink []byte
var ch = make(chan []byte, 1)

type holder struct{ b []byte }

func useAfterPut() {
	b := getBuf()
	b = append(b, 1)
	putBuf(b)
	_ = b[0] // want `use of pooled value "b" after it was returned to the pool`
}

func doublePut() {
	b := getBuf()
	putBuf(b)
	putBuf(b) // want `pooled value "b" returned to the pool twice`
}

func deferDouble() {
	b := getBuf()
	defer putBuf(b)
	putBuf(b) // want `pooled value "b" returned to the pool twice: a deferred Put is also pending`
}

func aliasPut() {
	b := getBuf()
	c := b
	putBuf(b)
	putBuf(c) // want `pooled value "c" returned to the pool twice`
}

func wrappedRelease() {
	b := getBuf()
	recycle(b)
	_ = b[0] // want `use of pooled value "b" after it was returned to the pool`
}

func escapeReturn() []byte {
	b := getBuf()
	defer putBuf(b)
	return b // want `pooled value "b" escapes via return but is returned to the pool in this function`
}

func derivedEscape() []byte {
	b := getBuf()
	defer putBuf(b)
	v := view(b)
	return v // want `pooled value "v" escapes via return but is returned to the pool in this function`
}

func escapeSend() {
	b := getBuf()
	ch <- b // want `pooled value "b" escapes via channel send but is returned to the pool in this function`
	putBuf(b)
}

func escapeHeap(h *holder) {
	b := getBuf()
	h.b = b // want `pooled value "b" escapes via heap assignment but is returned to the pool in this function`
	putBuf(b)
}

// okBorrow acquires, works, releases: the canonical loan.
func okBorrow() int {
	b := getBuf()
	defer putBuf(b)
	b = append(b, 1)
	return len(b) // a scalar derived from the buffer is not the buffer
}

// okTransfer hands the value to the caller without ever Putting it:
// ownership transfer, the caller releases.
func okTransfer() []byte {
	return getBuf()
}

// okBranch releases on the failure path and transfers on success — the
// two exits are disjoint, so the success return is not an escape.
func okBranch(fail bool) []byte {
	b := getBuf()
	if fail {
		putBuf(b)
		return nil
	}
	return b
}

// okReacquire reuses the variable for a fresh value after the Put: the
// reassignment kills the released fact.
func okReacquire() {
	b := getBuf()
	putBuf(b)
	b = getBuf()
	_ = b[:0]
	putBuf(b)
}

// okSelfStore mutates the pooled object's own storage — not an escape.
func okSelfStore(h *holder) {
	b := getBuf()
	defer putBuf(b)
	b = append(b, 1)
	_ = h
}

// allowEscape documents a sanctioned borrow with the explicit escape.
func allowEscape() []byte {
	b := getBuf()
	defer putBuf(b)
	//lint:allow poolsafe: fixture-sanctioned — callee copies before the defer runs
	return b
}
