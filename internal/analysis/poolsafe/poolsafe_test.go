package poolsafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolsafe"
)

func TestPoolSafe(t *testing.T) {
	analysistest.Run(t, poolsafe.Analyzer, "pool")
}
