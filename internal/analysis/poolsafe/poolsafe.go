// Package poolsafe checks the lifetime discipline of pooled values: for
// sync.Pool and the hand-rolled wrappers around it (router's scorer/
// layout/circuit pools, sim's state/CDF pools, compile's bind buffers), a
// value obtained from a pool must not be used after it is Put back, must
// not be Put twice, and — in a function that borrows (acquires and
// releases) — must not escape through a return value, a channel send, or
// a heap assignment while the function also returns it to the pool, since
// the pool will hand the same memory to an unrelated caller.
//
// The analysis is intraprocedural over the dataflow CFG with must-alias
// groups: `buf2 := buf` shares buf's fate, and the results of a call that
// takes a pooled argument (`res, err := skel.BindTo(buf, …)`) join the
// buffer's group, so returning a derived view of pooled memory is flagged
// too. Wrapper functions are classified per package: a function whose
// body reaches a Pool.Get and returns a value is an acquirer (getLayout,
// getState, …); a function that Puts one of its parameters is a releaser
// (putScorer, putCDF, …). Only groups the current function releases can
// produce diagnostics — handing an acquired value to your caller is the
// normal ownership transfer, and callers who never Put are not borrowing.
//
// Known holes, accepted for simplicity: values stored into or released
// through composite structures (recycleTrials putting fields of a result
// slice) and pool events split across closures are not tracked.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer flags use-after-Put, double-Put, and escaping pooled values.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "pooled values must not be used after Put, Put twice, or escape a borrowing function",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	cls := classify(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, cls, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, cls, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// classifier is the package's pool vocabulary.
type classifier struct {
	pass      *analysis.Pass
	acquirers map[*types.Func]bool
	releasers map[*types.Func]int // function -> index of the released parameter
}

// classify finds the package's pool wrappers by fixpoint over the call
// graph: a function whose body reaches Pool.Get (directly or through an
// acquirer) and returns a value acquires; a function that Puts one of its
// own parameters (directly or through a releaser) releases.
func classify(pass *analysis.Pass) *classifier {
	cls := &classifier{
		pass:      pass,
		acquirers: map[*types.Func]bool{},
		releasers: map[*types.Func]int{},
	}
	cg := pass.CallGraph()
	for changed := true; changed; {
		changed = false
		for fn, node := range cg.Nodes {
			if !cls.acquirers[fn] && fn.Type().(*types.Signature).Results().Len() > 0 {
				for _, site := range node.Out {
					if cls.isAcquire(site.Call) {
						cls.acquirers[fn] = true
						changed = true
						break
					}
				}
			}
			if _, done := cls.releasers[fn]; !done {
				if idx, ok := cls.releasedParam(node); ok {
					cls.releasers[fn] = idx
					changed = true
				}
			}
		}
	}
	return cls
}

// isAcquire reports whether call obtains a value from a pool: sync.Pool
// Get or a package acquirer.
func (c *classifier) isAcquire(call *ast.CallExpr) bool {
	if isPoolMethod(c.pass.TypesInfo, call, "Get") {
		return true
	}
	fn, _ := analysis.StaticCallee(c.pass.TypesInfo, call)
	return fn != nil && c.acquirers[fn]
}

// releaseArg returns the argument expression call returns to a pool, or
// nil: the argument of sync.Pool.Put or the released parameter of a
// package releaser.
func (c *classifier) releaseArg(call *ast.CallExpr) ast.Expr {
	if isPoolMethod(c.pass.TypesInfo, call, "Put") && len(call.Args) == 1 {
		return call.Args[0]
	}
	fn, _ := analysis.StaticCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if idx, ok := c.releasers[fn]; ok && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// releasedParam finds which parameter of node's function its body releases.
func (c *classifier) releasedParam(node *analysis.CallNode) (int, bool) {
	sig := node.Func.Type().(*types.Signature)
	params := map[*types.Var]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = i
	}
	for _, site := range node.Out {
		arg := c.releaseArg(site.Call)
		if arg == nil {
			continue
		}
		if v := identVar(c.pass.TypesInfo, unwrapReleaseArg(arg)); v != nil {
			if idx, ok := params[v]; ok {
				return idx, true
			}
		}
	}
	return 0, false
}

// isPoolMethod reports a call of sync.Pool's method name.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// unwrapReleaseArg strips the address-of and reslice wrappers release
// helpers use (cdfPool.Put(&b), pool.Put(s[:0])).
func unwrapReleaseArg(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return e
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// unwrapAcquireRHS strips the type assertion and pointer-deref wrappers
// acquire sites use (pool.Get().(*T), *v.(*[]float64)).
func unwrapAcquireRHS(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// event is one pool-relevant action inside a block node, in execution
// order.
type event struct {
	kind eventKind
	v    *types.Var // group representative
	name string     // the identifier at the event site (diagnostics)
	pos  token.Pos
}

type eventKind int

const (
	evUse     eventKind = iota // a read of a tracked variable
	evRelease                  // the variable goes back to the pool
	evKill                     // the variable is reassigned (fresh value)
)

// checker carries the per-function state.
type checker struct {
	pass *analysis.Pass
	cls  *classifier
	find func(*types.Var) *types.Var
	// extra unions layered over the syntactic aliases: call results join
	// the group of pooled arguments they derive from.
	extra map[*types.Var]*types.Var

	pooled   map[*types.Var]bool // group reps acquired from a pool
	released map[*types.Var]bool // group reps with a release event in this function
	deferred map[*types.Var]token.Pos
}

func (c *checker) rep(v *types.Var) *types.Var {
	r := c.find(v)
	for {
		p, ok := c.extra[r]
		if !ok || p == r {
			return r
		}
		r = p
	}
}

func (c *checker) union(a, b *types.Var) {
	ra, rb := c.rep(a), c.rep(b)
	if ra != rb {
		c.extra[ra] = rb
	}
}

func checkBody(pass *analysis.Pass, cls *classifier, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		cls:      cls,
		find:     dataflow.Aliases(body, pass.TypesInfo),
		extra:    map[*types.Var]*types.Var{},
		pooled:   map[*types.Var]bool{},
		released: map[*types.Var]bool{},
		deferred: map[*types.Var]token.Pos{},
	}
	g := dataflow.New(body)

	// Vocabulary fixpoint: acquired groups and call-derived members can
	// cascade (res := derive(buf); out := view(res)), so rescan until
	// stable.
	for changed := true; changed; {
		changed = false
		for _, bl := range g.Blocks {
			for _, n := range bl.Nodes {
				if c.scanVocabulary(n) {
					changed = true
				}
			}
		}
	}
	for _, call := range g.Defers {
		if arg := c.cls.releaseArg(call); arg != nil {
			if v := identVar(pass.TypesInfo, unwrapReleaseArg(arg)); v != nil && c.pooled[c.rep(v)] {
				r := c.rep(v)
				c.released[r] = true
				if _, ok := c.deferred[r]; !ok {
					c.deferred[r] = call.Pos()
				}
			}
		}
	}
	if len(c.pooled) == 0 {
		return
	}

	// Released-set dataflow: which groups may already be back in the pool
	// when a block starts.
	ins := dataflow.ForwardUnion(g, func(bl *dataflow.Block, in dataflow.Set[*types.Var]) dataflow.Set[*types.Var] {
		for _, n := range bl.Nodes {
			for _, ev := range c.events(n) {
				switch ev.kind {
				case evRelease:
					in[ev.v] = true
				case evKill:
					delete(in, ev.v)
				}
			}
		}
		return in
	})

	// Replay over the stable in-sets, reporting.
	for _, bl := range g.Blocks {
		in := ins[bl].Clone()
		for _, n := range bl.Nodes {
			for _, ev := range c.events(n) {
				switch ev.kind {
				case evUse:
					if in[ev.v] {
						c.pass.Reportf(ev.pos, "use of pooled value %q after it was returned to the pool", ev.name)
					}
				case evRelease:
					if in[ev.v] {
						c.pass.Reportf(ev.pos, "pooled value %q returned to the pool twice", ev.name)
					} else if _, hasDefer := c.deferred[ev.v]; hasDefer {
						c.pass.Reportf(ev.pos, "pooled value %q returned to the pool twice: a deferred Put is also pending", ev.name)
					}
					in[ev.v] = true
				case evKill:
					delete(in, ev.v)
				}
			}
		}
	}

	// Escape checks: only groups this function releases are borrowed; a
	// borrowed value leaving through a return, send, or heap assignment
	// outlives its loan.
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			c.checkEscape(n)
		}
	}
}

// scanVocabulary records acquires, releases, and derived aliases found in
// one block node; reports whether anything new was learned.
func (c *checker) scanVocabulary(n ast.Node) bool {
	changed := false
	dataflow.Inspect(n, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unwrapAcquireRHS(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.cls.isAcquire(call) {
			for _, lhs := range as.Lhs {
				if v := identVar(c.pass.TypesInfo, lhs); v != nil && !c.pooled[c.rep(v)] {
					c.pooled[c.rep(v)] = true
					changed = true
				}
			}
			return true
		}
		// A call fed a pooled argument produces derived views of the same
		// memory: its non-trivial results join the argument's group.
		if c.cls.releaseArg(call) != nil {
			return true // releasing is not deriving
		}
		var src *types.Var
		for _, arg := range call.Args {
			if v := identVar(c.pass.TypesInfo, arg); v != nil && c.pooled[c.rep(v)] {
				src = v
				break
			}
		}
		if src == nil {
			return true
		}
		for _, lhs := range as.Lhs {
			v := identVar(c.pass.TypesInfo, lhs)
			if v == nil || !sharesMemory(v.Type()) {
				continue
			}
			if c.rep(v) != c.rep(src) {
				c.union(v, src)
				changed = true
			}
		}
		return true
	})
	// Track releases at node granularity too (for the released set).
	for _, ev := range c.events(n) {
		if ev.kind == evRelease && !c.released[ev.v] {
			c.released[ev.v] = true
			changed = true
		}
	}
	return changed
}

// sharesMemory reports whether a value of type t can alias other storage:
// anything but basic scalars/strings and error.
func sharesMemory(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Interface:
		// error interface handled above; other interfaces may carry the
		// pooled value.
		return true
	}
	return true
}

// events lists the pool events of one block node in execution order: for
// assignments the right side is evaluated (uses) before the left side is
// defined (kill); a release consumes its argument without counting it as
// a use.
func (c *checker) events(n ast.Node) []event {
	var out []event
	switch n := n.(type) {
	case *ast.DeferStmt:
		return nil // runs at exit; handled via Graph.Defers
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			out = append(out, c.exprEvents(rhs)...)
		}
		for _, lhs := range n.Lhs {
			if v := identVar(c.pass.TypesInfo, lhs); v != nil {
				if r := c.rep(v); c.pooled[r] {
					out = append(out, event{kind: evKill, v: r, pos: lhs.Pos()})
				}
				continue
			}
			// Index/selector targets: the base is read, not redefined.
			out = append(out, c.exprEvents(lhs)...)
		}
		return out
	default:
		dataflow.Inspect(n, func(sub ast.Node) bool {
			if e, ok := sub.(ast.Expr); ok {
				evs, recursed := c.exprTop(e)
				if recursed {
					out = append(out, evs...)
					return false
				}
			}
			return true
		})
		return out
	}
}

// exprEvents walks one expression for uses and releases.
func (c *checker) exprEvents(e ast.Expr) []event {
	var out []event
	dataflow.Inspect(e, func(sub ast.Node) bool {
		if x, ok := sub.(ast.Expr); ok {
			evs, recursed := c.exprTop(x)
			if recursed {
				out = append(out, evs...)
				return false
			}
		}
		return true
	})
	return out
}

// exprTop handles the expression forms that need custom ordering. It
// returns (events, true) when it fully handled the subtree.
func (c *checker) exprTop(e ast.Expr) ([]event, bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if arg := c.cls.releaseArg(e); arg != nil {
			var out []event
			for _, a := range e.Args {
				if a == arg {
					continue
				}
				out = append(out, c.exprEvents(a)...)
			}
			if v := identVar(c.pass.TypesInfo, unwrapReleaseArg(arg)); v != nil {
				if r := c.rep(v); c.pooled[r] {
					out = append(out, event{kind: evRelease, v: r, name: v.Name(), pos: e.Pos()})
				}
			}
			return out, true
		}
	case *ast.Ident:
		if v := identVar(c.pass.TypesInfo, e); v != nil {
			if r := c.rep(v); c.pooled[r] {
				return []event{{kind: evUse, v: r, name: v.Name(), pos: e.Pos()}}, true
			}
		}
		return nil, true
	}
	return nil, false
}

// checkEscape flags borrowed pooled values leaving the function.
func (c *checker) checkEscape(n ast.Node) {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		// A return escape is only hazardous when a deferred release still
		// runs after the return value is handed out; a Put on a disjoint
		// error path is the normal transfer-on-success pattern.
		for _, res := range n.Results {
			c.flagEscapes(res, "return", nil, true)
		}
	case *ast.SendStmt:
		c.flagEscapes(n.Value, "channel send", nil, false)
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				// Writing into the pooled object's own storage
				// (out.Gates = append(out.Gates, g)) is mutation, not escape.
				exempt := c.rootGroup(lhs)
				if i < len(n.Rhs) {
					c.flagEscapes(n.Rhs[i], "heap assignment", exempt, false)
				} else if len(n.Rhs) == 1 {
					c.flagEscapes(n.Rhs[0], "heap assignment", exempt, false)
				}
			}
		}
	}
}

// rootGroup resolves the base variable a selector/index/deref target
// writes into, returning its group representative when pooled.
func (c *checker) rootGroup(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			if v := identVar(c.pass.TypesInfo, x); v != nil {
				if r := c.rep(v); c.pooled[r] {
					return r
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// flagEscapes reports pooled group members inside e. With deferredOnly,
// only groups with a pending deferred release count (the return case);
// otherwise any released group does. exempt suppresses the group that owns
// the assignment target.
func (c *checker) flagEscapes(e ast.Expr, how string, exempt *types.Var, deferredOnly bool) {
	dataflow.Inspect(e, func(sub ast.Node) bool {
		// A subexpression whose type cannot carry memory (len(buf.Amp),
		// buf.n) cannot leak the pooled storage, whatever idents it reads.
		if x, ok := sub.(ast.Expr); ok {
			if t := c.pass.TypesInfo.TypeOf(x); t != nil && !sharesMemory(t) {
				return false
			}
		}
		id, ok := sub.(*ast.Ident)
		if !ok {
			return true
		}
		v := identVar(c.pass.TypesInfo, id)
		if v == nil {
			return true
		}
		r := c.rep(v)
		if !c.pooled[r] || r == exempt {
			return true
		}
		if deferredOnly {
			if _, ok := c.deferred[r]; !ok {
				return true
			}
		} else if !c.released[r] {
			return true
		}
		c.pass.Reportf(id.Pos(), "pooled value %q escapes via %s but is returned to the pool in this function", id.Name, how)
		return true
	})
}
