package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked analysis unit.
type Package struct {
	// Path is the import path with any test-variant suffix stripped
	// ("repro/internal/sim [repro/internal/sim.test]" → "repro/internal/sim").
	Path   string
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listedPackage mirrors the fields of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
}

// Load resolves patterns (e.g. "./...") relative to dir with
// `go list -export -deps -test` and type-checks every non-standard package
// against the compiler's own export data. Test variants replace their base
// package (so _test.go files are analyzed too); synthesized .test binaries
// are skipped. Load requires the go command but no network: the module has
// no external dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Export,Standard,ForTest,GoFiles,ImportMap"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		q := p
		listed = append(listed, &q)
	}

	// Pick analysis units: module packages only, preferring the in-package
	// test variant "P [P.test]" over plain P, keeping external test
	// packages "P_test [P.test]", dropping .test binaries.
	hasTestVariant := map[string]bool{}
	for _, p := range listed {
		if p.ForTest != "" && basePath(p.ImportPath) == p.ForTest {
			hasTestVariant[p.ForTest] = true
		}
	}
	var units []*listedPackage
	for _, p := range listed {
		switch {
		case p.Standard, strings.HasSuffix(p.ImportPath, ".test"):
			continue
		case p.ForTest == "" && hasTestVariant[p.ImportPath]:
			continue // superseded by its test variant
		}
		units = append(units, p)
	}

	var pkgs []*Package
	for _, u := range units {
		pkg, err := checkUnit(u.Dir, basePath(u.ImportPath), u.GoFiles, u.ImportMap, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// basePath strips the " [P.test]" suffix go list gives test variants.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// checkUnit parses and type-checks one package against gc export data.
// importMap translates source-level import paths to the keys of exports
// (identity for normal builds, test-variant redirects under -test).
func checkUnit(dir, path string, goFiles []string, importMap map[string]string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	lookup := func(ipath string) (io.ReadCloser, error) {
		if mapped, ok := importMap[ipath]; ok {
			ipath = mapped
		}
		file, ok := exports[ipath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", ipath)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := NewInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Syntax: files, Types: tpkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map analyzers consume populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
