// Package dataflow is the intraprocedural core under qaoalint's
// dataflow-grade analyzers (poolsafe, leakcheck, lockorder): a control-flow
// graph built from go/ast, a generic forward may-analysis solver, reaching
// definitions, and must-alias facts. Stdlib-only, like the rest of
// internal/analysis — it models exactly the Go subset this repository
// uses, trading full-language fidelity (goto is conservative) for zero
// dependencies and a CFG small enough to audit.
package dataflow

import (
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a sequence of atomic nodes executed in order.
// Nodes are statements, plus the condition/tag/range expressions of the
// control statement that ends the block's straight-line run — an analyzer
// walking a block sees every expression the execution evaluates there.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body. Exit is the single
// synthetic block every normal return reaches; Defers lists the deferred
// calls in lexical order (they run at every exit and are checked
// separately by analyzers — the graph does not splice them in).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.CallExpr

	// finite records the back edges of loops with a condition (or a range
	// clause): executions are assumed to take each such edge finitely
	// often, so a cycle containing one is a terminating loop rather than a
	// potential infinite execution. for{} back edges are absent — those
	// loops really can spin forever.
	finite map[[2]int]bool
}

// New builds the control-flow graph of body. Panics and calls that never
// return (os.Exit, log.Fatal*, runtime.Goexit) end their block with no
// successor: executions through them neither reach Exit nor loop, so path
// queries correctly ignore them. goto is handled conservatively as an edge
// to Exit (the repository style does not use it).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{finite: map[[2]int]bool{}}
	b := &builder{g: g}
	g.Exit = &Block{Index: -1}
	g.Entry = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List)
	b.edge(b.cur, g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// PathAvoiding reports whether some execution of the function can proceed
// indefinitely or to completion — reach Exit, or close a cycle (loop
// forever) — without ever executing a node for which match returns true.
// This is the "on all paths" primitive: a guarantee "every execution
// passes a matching node" holds exactly when PathAvoiding is false.
// Deferred calls are not consulted; callers check Graph.Defers themselves
// (a matching deferred call covers every exit at once).
func (g *Graph) PathAvoiding(match func(ast.Node) bool) bool {
	blocked := make([]bool, len(g.Blocks))
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			if match(n) {
				blocked[bl.Index] = true
				break
			}
		}
	}
	const (
		white = iota // unvisited
		grey         // on the DFS stack: reaching it again closes a cycle
		black        // fully explored
	)
	color := make([]int, len(g.Blocks))
	var stack []*Block
	var found bool
	var dfs func(*Block)
	dfs = func(bl *Block) {
		switch color[bl.Index] {
		case grey:
			// The cycle is the stack segment from bl's occurrence to the
			// top, plus the closing edge back to bl. If any edge in it is
			// an assumed-finite back edge the cycle is a terminating loop,
			// not an infinite execution.
			i := len(stack) - 1
			for i >= 0 && stack[i] != bl {
				i--
			}
			finite := false
			for j := i; j < len(stack); j++ {
				to := bl
				if j+1 < len(stack) {
					to = stack[j+1]
				}
				if g.finite[[2]int{stack[j].Index, to.Index}] {
					finite = true
					break
				}
			}
			if !finite {
				found = true
			}
			return
		case black:
			return
		}
		if blocked[bl.Index] {
			color[bl.Index] = black
			return
		}
		if bl == g.Exit {
			found = true
			return
		}
		color[bl.Index] = grey
		stack = append(stack, bl)
		for _, s := range bl.Succs {
			dfs(s)
			if found {
				return
			}
		}
		stack = stack[:len(stack)-1]
		color[bl.Index] = black
	}
	dfs(g.Entry)
	return found
}

// Inspect walks the expression content of one block node, calling f in
// ast.Inspect order. It prunes the pieces that belong to other blocks:
// function literal bodies (separate functions) and the key/value side of a
// range head (Inspect of a range head visits only the ranged expression).
func Inspect(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		ast.Inspect(r.X, wrap(f))
		return
	}
	ast.Inspect(n, wrap(f))
}

func wrap(f func(ast.Node) bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return f(n)
	}
}

type loopFrame struct {
	label string
	brk   *Block // break target; set for loops, switches, selects
	cont  *Block // continue target; nil for switch/select frames
}

type builder struct {
	g            *Graph
	cur          *Block
	frames       []loopFrame
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.EmptyStmt:
	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s.Call)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if neverReturns(s.X) {
			b.cur = b.newBlock()
		}
	default:
		// Assign, Decl, IncDec, Send, Go: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	join := &Block{} // placeholder index fixed below
	thenB := b.newBlock()
	b.edge(head, thenB)
	b.cur = thenB
	b.stmts(s.Body.List)
	thenEnd := b.cur
	var elseEnd *Block
	if s.Else != nil {
		elseB := b.newBlock()
		b.edge(head, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	join.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, join)
	b.edge(thenEnd, join)
	if elseEnd != nil {
		b.edge(elseEnd, join)
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	entry := b.cur
	head := b.newBlock()
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	after := b.newBlock()
	cont := head
	if s.Post != nil {
		cont = b.newBlock()
		save := b.cur
		b.cur = cont
		b.stmt(s.Post)
		b.edge(b.cur, head)
		b.cur = save
	}
	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: cont})
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, cont)
	b.frames = b.frames[:len(b.frames)-1]
	if s.Cond != nil {
		// A for{} without condition has no fallthrough exit: the only way
		// out is break/return, so head gets no edge to after — and its
		// back edges stay out of finite, so its cycles count as possible
		// infinite executions.
		b.edge(head, after)
		b.markBackEdges(head, entry)
	}
	b.cur = after
}

// markBackEdges records every edge into head except the one from entry as
// an assumed-finite loop back edge.
func (b *builder) markBackEdges(head, entry *Block) {
	for _, p := range head.Preds {
		if p != entry {
			b.g.finite[[2]int{p.Index, head.Index}] = true
		}
	}
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	entry := b.cur
	head := b.newBlock()
	b.edge(b.cur, head)
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	b.edge(head, after) // every range form terminates (a channel range on close)
	b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.markBackEdges(head, entry)
	b.cur = after
}

// switchStmt builds both expression switches (tag, possibly nil) and type
// switches (assign).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	clauses := body.List
	starts := make([]*Block, len(clauses))
	for i := range clauses {
		starts[i] = b.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, starts[i])
		for _, e := range cc.List {
			starts[i].Nodes = append(starts[i].Nodes, e)
		}
		b.cur = starts[i]
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:n-1]
			}
		}
		b.stmts(stmts)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, starts[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		start := b.newBlock()
		b.edge(head, start)
		b.cur = start
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	// A select{} with no clauses blocks forever: head keeps no successor.
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.target(name, false); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.g.Exit)
		}
	case token.CONTINUE:
		if t := b.target(name, true); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.g.Exit)
		}
	case token.GOTO:
		// Conservative: a goto may reach anywhere, so give it the weakest
		// useful meaning — it can leave the function.
		b.edge(b.cur, b.g.Exit)
	}
	// token.FALLTHROUGH is consumed by switchStmt; one appearing elsewhere
	// would not compile.
	b.cur = b.newBlock()
}

// target resolves a break (wantCont=false) or continue (wantCont=true)
// destination against the enclosing frame stack.
func (b *builder) target(label string, wantCont bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if label != "" && fr.label != label {
			continue
		}
		if wantCont {
			if fr.cont != nil {
				return fr.cont
			}
			if label != "" {
				return nil
			}
			continue // unlabeled continue skips switch/select frames
		}
		return fr.brk
	}
	return nil
}

// neverReturns reports whether the expression statement is a call that
// terminates the goroutine or process: panic, os.Exit, runtime.Goexit, or
// a log.Fatal variant. Purely syntactic — the loader does not type-check
// against a vendored stdlib, and shadowing these names is not a repo idiom.
func neverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fn.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}
