package dataflow

import (
	"go/ast"
	"go/types"
)

// Set is a fact set over analyzer-chosen fact values.
type Set[T comparable] map[T]bool

// Clone returns an independent copy of s.
func (s Set[T]) Clone() Set[T] {
	out := make(Set[T], len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s Set[T]) equal(o Set[T]) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// ForwardUnion runs a forward may-analysis to fixpoint: a block's in-set
// is the union of its predecessors' out-sets (the entry block starts from
// the empty set), and transfer maps an in-set to an out-set by walking the
// block's nodes. transfer must be monotone in its input and must not
// retain or mutate the passed set beyond returning it (possibly the same
// map, updated). Returns every block's in-set at fixpoint — analyzers
// replay transfer over the stable in-sets to attach diagnostics, so the
// solving pass itself stays silent.
func ForwardUnion[T comparable](g *Graph, transfer func(b *Block, in Set[T]) Set[T]) map[*Block]Set[T] {
	ins := make([]Set[T], len(g.Blocks))
	outs := make([]Set[T], len(g.Blocks))
	inWork := make([]bool, len(g.Blocks))
	var work []*Block
	// Seed in index order: index order is roughly topological for the
	// reducible graphs the builder produces, so the fixpoint is cheap.
	for _, bl := range g.Blocks {
		work = append(work, bl)
		inWork[bl.Index] = true
	}
	for len(work) > 0 {
		bl := work[0]
		work = work[1:]
		inWork[bl.Index] = false
		in := Set[T]{}
		for _, p := range bl.Preds {
			for k := range outs[p.Index] {
				in[k] = true
			}
		}
		ins[bl.Index] = in
		out := transfer(bl, in.Clone())
		if out.equal(outs[bl.Index]) && outs[bl.Index] != nil {
			continue
		}
		outs[bl.Index] = out
		for _, s := range bl.Succs {
			if !inWork[s.Index] {
				work = append(work, s)
				inWork[s.Index] = true
			}
		}
	}
	res := make(map[*Block]Set[T], len(g.Blocks))
	for _, bl := range g.Blocks {
		if ins[bl.Index] == nil {
			ins[bl.Index] = Set[T]{}
		}
		res[bl] = ins[bl.Index]
	}
	return res
}

// Def is one definition event: an assignment (or declaration) that gives
// Var a value at Node.
type Def struct {
	Var  *types.Var
	Node ast.Node
}

// ReachingDefs computes, for every block, the set of definitions that may
// reach its entry: the classic gen/kill reaching-definitions analysis,
// with assignments and value-spec declarations as definition events.
// Compound assignments (+=) and IncDec count as definitions too — they
// change the value — but definitions through pointers or via range
// key/value clauses are not modeled.
func ReachingDefs(g *Graph, info *types.Info) map[*Block]Set[Def] {
	return ForwardUnion(g, func(b *Block, in Set[Def]) Set[Def] {
		for _, n := range b.Nodes {
			for _, d := range defsOf(n, info) {
				for k := range in {
					if k.Var == d.Var {
						delete(in, k)
					}
				}
				in[d] = true
			}
		}
		return in
	})
}

// defsOf lists the variables a single block node defines.
func defsOf(n ast.Node, info *types.Info) []Def {
	var out []Def
	record := func(e ast.Expr, at ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			out = append(out, Def{Var: v, Node: at})
		} else if v, ok := info.Uses[id].(*types.Var); ok {
			out = append(out, Def{Var: v, Node: at})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			record(lhs, n)
		}
	case *ast.IncDecStmt:
		record(n.X, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						record(name, vs)
					}
				}
			}
		}
	}
	return out
}
