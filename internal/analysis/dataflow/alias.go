package dataflow

import (
	"go/ast"
	"go/types"
)

// Aliases computes must-alias groups of local variables inside one
// function body: a flow-insensitive union-find where `x := y` and `x = y`
// with pointer-like types (pointer, slice, map, channel, interface) join x
// and y into one group. Flow-insensitivity over-approximates — a variable
// reassigned away from the group stays in it — which is the safe direction
// for poolsafe (an alias of a pooled value stays suspect). The returned
// function maps each variable to its group representative; variables never
// unioned represent themselves.
func Aliases(body ast.Node, info *types.Info) func(*types.Var) *types.Var {
	parent := map[*types.Var]*types.Var{}
	var find func(*types.Var) *types.Var
	find = func(v *types.Var) *types.Var {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	union := func(a, b *types.Var) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	asVar := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			l, r := asVar(as.Lhs[i]), asVar(as.Rhs[i])
			if l == nil || r == nil || !pointerLike(l.Type()) {
				continue
			}
			union(l, r)
		}
		return true
	})
	return find
}

// pointerLike reports whether values of t share underlying storage when
// copied.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}
