package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// build parses src (the body of package p with a function f), builds f's
// CFG, and returns it with the type info.
func build(t *testing.T, src string) (*Graph, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", "package p\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("no func f in source")
	}
	return New(fn.Body), info, fset
}

// isMark matches a call to the function named mark, scanning the node's
// expression content the way analyzers do.
func isMark(n ast.Node) bool {
	found := false
	Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
				found = true
			}
		}
		return true
	})
	return found
}

func TestPathAvoiding(t *testing.T) {
	const prelude = `
func mark() {}
func work() {}
func cond() bool { return true }
`
	cases := []struct {
		name  string
		body  string
		avoid bool // some execution avoids mark()
	}{
		{"straight line", `work(); mark()`, false},
		{"if without else", `if cond() { mark() }`, true},
		{"if else both", `if cond() { mark() } else { mark() }`, false},
		{"if else one side", `if cond() { mark() } else { work() }`, true},
		{"early return", `if cond() { return }; mark()`, true},
		{"infinite loop passes mark", `for { work(); mark() }`, false},
		{"infinite loop misses mark", `for { work() }; mark()`, true},
		{"cond loop zero iterations", `for cond() { mark() }`, true},
		{"loop then mark", `for cond() { work() }; mark()`, false},
		{"break skips mark", `for { if cond() { break }; work() }; work()`, true},
		{"break after mark", `for { mark(); if cond() { break } }`, false},
		{"panic path ignored", `if cond() { panic("x") }; mark()`, false},
		{"dead-end loop avoids", `if cond() { mark(); return }; for { work() }`, true},
		{"switch no default", `switch { case cond(): mark() }`, true},
		{"switch all cases and default", `switch { case cond(): mark(); default: mark() }`, false},
		{"switch fallthrough", `switch { case cond(): work(); fallthrough; default: mark() }`, false},
		{"labeled break", `L: for { for { if cond() { break L }; mark() } }`, true},
		{"continue keeps cycle", `for { if cond() { continue }; mark() }`, true},
		{"range body may not run", `var xs []int; for range xs { mark() }`, true},
		{"mark after range", `var xs []int; for range xs { work() }; mark()`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _, _ := build(t, prelude+"func f() {\n"+tc.body+"\n}")
			if got := g.PathAvoiding(isMark); got != tc.avoid {
				t.Errorf("PathAvoiding = %v, want %v", got, tc.avoid)
			}
		})
	}
}

func TestNoReturnCalls(t *testing.T) {
	// A path ending in os.Exit never completes: it neither reaches the
	// exit block nor loops, so it cannot be the avoiding execution.
	g, _, _ := build(t, `
import "os"
func mark() {}
func cond() bool { return true }
func f() {
	if cond() {
		os.Exit(1)
	}
	mark()
}`)
	if g.PathAvoiding(isMark) {
		t.Error("os.Exit path must not count as an execution avoiding mark")
	}
}

func TestSelectCommNodes(t *testing.T) {
	// Both select clauses begin with a receive; matching any receive must
	// block every path through the select, proving comm statements land in
	// their clause blocks rather than the head.
	g, _, _ := build(t, `
func f(a, b chan int) {
	select {
	case <-a:
	case v := <-b:
		_ = v
	}
}`)
	isRecv := func(n ast.Node) bool {
		found := false
		Inspect(n, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return true
		})
		return found
	}
	if g.PathAvoiding(isRecv) {
		t.Error("select with receives in every clause should not be avoidable")
	}
}

func TestSelectWithDefaultAvoidable(t *testing.T) {
	g, _, _ := build(t, `
func f(a chan int) {
	select {
	case <-a:
	default:
	}
}`)
	isRecv := func(n ast.Node) bool {
		found := false
		Inspect(n, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return true
		})
		return found
	}
	if !g.PathAvoiding(isRecv) {
		t.Error("select with a default clause must be avoidable")
	}
}

func TestDefersRecorded(t *testing.T) {
	g, _, _ := build(t, `
func mark() {}
func f() {
	defer mark()
	if true {
		defer mark()
	}
}`)
	if len(g.Defers) != 2 {
		t.Errorf("Defers = %d, want 2", len(g.Defers))
	}
}

func TestFuncLitBodiesExcluded(t *testing.T) {
	// A mark inside a closure is not an execution of the enclosing
	// function; Inspect must prune it.
	g, _, _ := build(t, `
func mark() {}
func f() {
	g := func() { mark() }
	g()
}`)
	if !g.PathAvoiding(isMark) {
		t.Error("mark inside a closure must not count for the enclosing function")
	}
}

func TestReachingDefs(t *testing.T) {
	g, info, _ := build(t, `
func cond() bool { return true }
func f() int {
	x := 1
	if cond() {
		x = 2
	}
	return x
}`)
	ins := ReachingDefs(g, info)
	// At the exit block's entry both definitions of x may reach.
	byVar := map[string]int{}
	for d := range ins[g.Exit] {
		byVar[d.Var.Name()]++
	}
	if byVar["x"] != 2 {
		t.Errorf("defs of x reaching exit = %d, want 2", byVar["x"])
	}
}

func TestReachingDefsKill(t *testing.T) {
	g, info, _ := build(t, `
func f() int {
	x := 1
	x = 2
	return x
}`)
	ins := ReachingDefs(g, info)
	n := 0
	for d := range ins[g.Exit] {
		if d.Var.Name() == "x" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("defs of x reaching exit = %d, want 1 (straight-line redefinition kills)", n)
	}
}

func TestAliases(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", `package p
type T struct{ n int }
func f() {
	a := &T{}
	b := a
	c := &T{}
	x := 1
	y := x
	_, _, _, _ = b, c, x, y
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	vars := map[string]*types.Var{}
	for id, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok {
			vars[id.Name] = v
		}
	}
	var body ast.Node
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			body = fd.Body
		}
	}
	find := Aliases(body, info)
	if find(vars["a"]) != find(vars["b"]) {
		t.Error("a and b should alias")
	}
	if find(vars["a"]) == find(vars["c"]) {
		t.Error("a and c should not alias")
	}
	if find(vars["x"]) == find(vars["y"]) {
		t.Error("int copies are not aliases")
	}
}
