// Package analysis is a self-contained, stdlib-only miniature of
// golang.org/x/tools/go/analysis: enough of the Analyzer/Pass/Diagnostic
// contract to host the repo's invariant checkers (cmd/qaoalint) without an
// external dependency. An Analyzer inspects one type-checked package at a
// time and reports diagnostics; the loader (Load) resolves packages and
// their import graph through `go list -export`, so type information is
// exactly what the compiler built, and the same analyzers also run under
// `go vet -vettool` via the unitchecker-style driver in cmd/qaoalint.
//
// Escape hatch: a diagnostic is suppressed when the offending line, or the
// line immediately above it, carries a comment of the form
//
//	//lint:allow <analyzer> [reason...]
//
// Reasons are free text but conventionally state why the invariant does
// not apply (e.g. a measured wall-clock span that determinism gates strip).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// escapes. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package of pass and reports findings through
	// pass.Report/Reportf. The returned value is unused (kept for parity
	// with x/tools signatures).
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)

	// ReportSuppressed, when set by the driver, receives the diagnostics
	// an //lint:allow escape suppressed (with Allowed true) — the
	// machine-readable output modes surface them so an allow's blast
	// radius stays visible.
	ReportSuppressed func(Diagnostic)

	allowed   allowIndex
	callgraph *CallGraph
}

// Diagnostic is one finding. Position is resolved against the reporting
// pass's FileSet at report time: token.Pos values are only meaningful
// relative to their own FileSet, and every loaded package has its own.
type Diagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
	// Allowed marks a finding suppressed by an //lint:allow escape; such
	// diagnostics only flow through Pass.ReportSuppressed.
	Allowed bool
}

// Reportf reports a formatted diagnostic at pos unless an //lint:allow
// escape covers it, in which case the suppressed finding goes to
// ReportSuppressed (when the driver asked for it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	}
	if p.Allowed(pos) {
		if p.ReportSuppressed != nil {
			d.Allowed = true
			p.ReportSuppressed(d)
		}
		return
	}
	p.Report(d)
}

// Allowed reports whether pos is covered by a //lint:allow escape for this
// analyzer (same line or the line immediately above).
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allowed == nil {
		p.allowed = buildAllowIndex(p.Fset, p.Files, p.Analyzer.Name)
	}
	position := p.Fset.Position(pos)
	return p.allowed[allowKey{position.Filename, position.Line}]
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

type allowKey struct {
	file string
	line int
}

type allowIndex map[allowKey]bool

// buildAllowIndex records, for every //lint:allow <name> comment, the
// comment's own line and the line below it as suppressed.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, name string) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				// Accept both "lint:allow name reason" and "lint:allow name: reason".
				if len(rest) == 0 || strings.TrimSuffix(rest[0], ":") != name {
					continue
				}
				pos := fset.Position(c.Pos())
				idx[allowKey{pos.Filename, pos.Line}] = true
				idx[allowKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return idx
}

// PkgNamed reports whether path denotes one of the given package names:
// an exact match, or a path whose last element matches (so both
// "repro/internal/compile" and a fixture package "compile" qualify).
func PkgNamed(path string, names ...string) bool {
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	for _, n := range names {
		if path == n || last == n {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersVerbose(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersVerbose is RunAnalyzers plus the findings that //lint:allow
// escapes suppressed, each marked Allowed, so callers (the -json output
// mode) can surface the blast radius of every escape. Both slices come
// back sorted by position.
func RunAnalyzersVerbose(pkgs []*Package, analyzers []*Analyzer) (diags, suppressed []Diagnostic, err error) {
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:         a,
				Fset:             pkg.Fset,
				Files:            pkg.Syntax,
				Pkg:              pkg.Types,
				TypesInfo:        pkg.Info,
				Report:           func(d Diagnostic) { diags = append(diags, d) },
				ReportSuppressed: func(d Diagnostic) { suppressed = append(suppressed, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	SortDiagnostics(diags)
	SortDiagnostics(suppressed)
	return diags, suppressed, nil
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := ds[i].Position, ds[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
