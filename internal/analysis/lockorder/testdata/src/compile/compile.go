// Package compile is the fixture twin of the real compiler: calling into
// it while holding a serve lock is the flagged slow-work pattern.
package compile

// Route stands in for a multi-millisecond compilation pass.
func Route() int { return 1 }
